#!/usr/bin/env python3
"""Adaptive BHSS: stop hopping when the jammer commits to a fixed bandwidth.

Section 6.4.2: "after detection that the jammer is using a fixed
bandwidth, the transmitter could also switch to a fixed bandwidth having
the largest offset to the jammer and therefore maximizing the power
advantage" — which is exactly why a rational jammer is forced into random
hopping (and into Table 2's game).

This example plays that adaptation out:

1. the link hops with the parabolic pattern and estimates the jammer's
   bandwidth from the receiver's spectral control logic;
2. the theory module (eq. 11/12) picks the fixed bandwidth with the best
   improvement factor against the estimate;
3. the link re-pins to that bandwidth and the packet error rate drops.

Run:  python examples/adaptive_transmitter.py
"""

import numpy as np

from repro.utils.rng import make_rng

from repro import BHSSConfig, BandlimitedNoiseJammer, LinkSimulator, theory
from repro.utils import format_table


def estimate_jammer_bandwidth(jammer, sample_rate, jnr_db=22.0, n_samples=262144, seed=0) -> float:
    """Idle-channel sensing: listen while not transmitting.

    With the transmitter silent the received spectrum is jammer + noise,
    so the occupied-bandwidth estimator reads the jammer directly — the
    natural way for a transceiver to scout a *constant* jammer.
    """
    from repro.channel import complex_awgn
    from repro.dsp import welch_psd
    from repro.dsp.spectral import occupied_bandwidth

    rng = make_rng(seed)
    received = jammer.waveform(n_samples, rng) * np.sqrt(10 ** (jnr_db / 10))
    received = received + complex_awgn(n_samples, 1.0, rng)
    freqs, psd = welch_psd(received, sample_rate, nperseg=512)
    return occupied_bandwidth(freqs, psd, fraction=0.95)


def main() -> None:
    snr_db, sjr_db, n_packets = 20.0, -12.0, 16
    config = BHSSConfig.paper_default(pattern="parabolic", seed=31, payload_bytes=8, symbols_per_hop=16)
    bands = config.bandwidth_set
    jammer = BandlimitedNoiseJammer(0.625e6, config.sample_rate)

    # Phase 1: hop, measure, estimate.
    hopping = LinkSimulator(config)
    per_hopping = hopping.run_packets(
        n_packets, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer, seed=1
    ).packet_error_rate
    bj_hat = estimate_jammer_bandwidth(jammer, config.sample_rate)

    # Phase 2: use eq. (11)/(12) to pick the best fixed bandwidth against
    # the estimated jammer.
    rho_j = 10 ** (-sjr_db / 10)
    gammas = {
        bw: theory.improvement_factor(bw, bj_hat, rho_j, 0.01) for bw in bands.bandwidths
    }
    best_bw = max(gammas, key=gammas.get)

    # Phase 3: stop hopping, pin to the chosen bandwidth.
    pinned = LinkSimulator(config.with_fixed_bandwidth(best_bw))
    per_pinned = pinned.run_packets(
        n_packets, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer, seed=2
    ).packet_error_rate

    print(f"True jammer bandwidth      : {jammer.bandwidth / 1e6:.4g} MHz (fixed)")
    print(f"Estimated from control logic: {bj_hat / 1e6:.4g} MHz")
    print()
    rows = [
        [f"{bw / 1e6:.4g}", f"{10 * np.log10(g):+.1f}"] for bw, g in gammas.items()
    ]
    print(format_table(["candidate fixed BW (MHz)", "predicted gamma (dB)"], rows,
                       title="eq. (11)/(12) against the estimated jammer"))
    print()
    print(f"Chosen bandwidth: {best_bw / 1e6:.4g} MHz (largest predicted improvement)")
    print()
    print(format_table(
        ["strategy", "PER"],
        [
            ["parabolic hopping (pre-adaptation)", f"{per_hopping:.2f}"],
            [f"pinned at {best_bw / 1e6:.4g} MHz", f"{per_pinned:.2f}"],
        ],
        title=f"{n_packets} packets, SNR {snr_db:.0f} dB, SJR {sjr_db:.0f} dB",
    ))
    print()
    print("Against a jammer that refuses to hop, the adaptive transmitter does")
    print("even better than random hopping — which is precisely why the paper's")
    print("attacker is ultimately forced into the randomized duel of Table 2.")


if __name__ == "__main__":
    main()
