#!/usr/bin/env python3
"""Hopping-pattern duel: signal pattern vs jammer pattern (mini Table 2).

Both sides hop their bandwidth randomly over the same seven-value set —
the transmitter because fixed-bandwidth links are matched by reactive
jammers, the jammer because fixed-bandwidth jamming is countered by an
adaptive transmitter (Section 6.4.3).  Which *distribution* should each
side use?

This example measures the power advantage (the min-SNR saving at 50 %
packet loss relative to the fixed 10 MHz signal + 10 MHz jammer baseline)
for all 3 x 3 pattern pairings at a reduced packet budget, reproducing
Table 2's game-theoretic structure: exponential is great against linear
jammers but collapses against its own pattern; parabolic maximizes the
worst case.

Run:  python examples/pattern_duel.py            (takes a couple of minutes)
"""

from repro import BHSSConfig, BandlimitedNoiseJammer, HoppingJammer, LinkSimulator
from repro.analysis import ThresholdSearch, min_snr_for_per
from repro.hopping import pattern_weights
from repro.utils import format_table

PATTERNS = ["linear", "exponential", "parabolic"]
JNR_DB = 25.0


def main() -> None:
    search = ThresholdSearch(
        snr_low=-10.0, snr_high=40.0, tolerance_db=1.5, packets_per_point=10
    )

    def base_config(**kw):
        return BHSSConfig.paper_default(seed=5, payload_bytes=8, symbols_per_hop=16, **kw)

    bands = base_config().bandwidth_set
    fs = bands.sample_rate

    baseline = LinkSimulator(base_config().with_fixed_bandwidth(10e6))
    t_base = min_snr_for_per(
        baseline,
        jnr_db=JNR_DB,
        jammer=BandlimitedNoiseJammer(10e6, fs),
        search=search,
        seed=1,
    )
    print(f"baseline threshold (fixed 10 MHz signal and jammer): {t_base:.1f} dB SNR")
    print()

    dwell = 16 * 16 * 4  # one hop dwell at the widest bandwidth, in samples
    rows = []
    worst = {}
    for sig_pattern in PATTERNS:
        link = LinkSimulator(base_config(pattern=sig_pattern))
        row = [sig_pattern]
        for jam_pattern in PATTERNS:
            jammer = HoppingJammer(
                bands.as_array(),
                fs,
                dwell_samples=dwell,
                weights=pattern_weights(jam_pattern, bands.as_array()),
                seed=77,
            )
            t = min_snr_for_per(link, jnr_db=JNR_DB, jammer=jammer, search=search, seed=1)
            adv = t_base - t
            row.append(f"{adv:+.1f}")
            worst[sig_pattern] = min(worst.get(sig_pattern, 99.0), adv)
        rows.append(row)

    print(
        format_table(
            ["signal \\ jammer", *PATTERNS],
            rows,
            title=f"Power advantage (dB) over the fixed baseline, jammer {JNR_DB:.0f} dB above noise",
        )
    )
    print()
    best = max(worst, key=worst.get)
    print(f"Worst-case advantage per signal pattern: "
          + ", ".join(f"{p}: {worst[p]:+.1f} dB" for p in PATTERNS))
    print(f"Maximin choice: the {best} pattern — the paper reaches the same "
          f"conclusion (Table 2: parabolic, worst case 11.4 dB).")


if __name__ == "__main__":
    main()
