#!/usr/bin/env python3
"""Figure-5 demo: watch the bandwidth hop during one packet.

Transmits a single BHSS packet and renders (a) an ASCII spectrogram —
power over time and frequency — showing the occupied bandwidth changing
from hop to hop, and (b) the per-hop Welch spectra with their measured
99 %-power occupancy next to the scheduled bandwidth.

Run:  python examples/spectrum_demo.py
"""

import numpy as np

from repro import BHSSConfig
from repro.core import BHSSTransmitter
from repro.dsp import welch_psd
from repro.dsp.spectral import occupied_bandwidth
from repro.utils import format_table

SHADES = " .:-=+*#%@"


def ascii_spectrogram(waveform: np.ndarray, fs: float, num_cols: int = 72, num_rows: int = 24) -> str:
    """Render |STFT|^2 as characters: time left-to-right, frequency top-down."""
    seg = max(len(waveform) // num_cols, 16)
    cols = []
    for c in range(num_cols):
        block = waveform[c * seg : (c + 1) * seg]
        if block.size < 16:
            break
        spec = np.abs(np.fft.fftshift(np.fft.fft(block * np.hanning(block.size)))) ** 2
        # collapse to num_rows frequency bins
        edges = np.linspace(0, spec.size, num_rows + 1).astype(int)
        col = np.array([spec[a:b].mean() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])])
        cols.append(col)
    grid = np.array(cols).T  # rows = frequency, cols = time
    grid_db = 10 * np.log10(np.maximum(grid, grid.max() * 1e-6))
    lo, hi = grid_db.max() - 40.0, grid_db.max()
    norm = np.clip((grid_db - lo) / (hi - lo), 0, 1)
    lines = []
    for r in range(norm.shape[0]):
        row = "".join(SHADES[int(v * (len(SHADES) - 1))] for v in norm[r])
        freq = (0.5 - (r + 0.5) / norm.shape[0]) * fs / 1e6
        lines.append(f"{freq:+6.1f} MHz |{row}|")
    lines.append(" " * 11 + "+" + "-" * norm.shape[1] + "+")
    lines.append(" " * 12 + "time ->")
    return "\n".join(lines)


def main() -> None:
    config = BHSSConfig.paper_default(
        pattern="linear", seed=2026, payload_bytes=48, symbols_per_hop=16
    )
    packet = BHSSTransmitter(config).transmit()

    print("One BHSS packet, hop schedule derived from the shared seed:")
    print()
    print(ascii_spectrogram(packet.waveform, config.sample_rate))
    print()

    rows = []
    pos = 0
    for seg, count in zip(packet.segments, packet.sample_counts):
        block = packet.waveform[pos : pos + count]
        pos += count
        if block.size >= 1024:
            freqs, psd = welch_psd(block, config.sample_rate, nperseg=min(512, block.size))
            measured = occupied_bandwidth(freqs, psd, fraction=0.99) / 1e6
        else:
            measured = float("nan")
        rows.append(
            [
                seg.start_symbol,
                seg.num_symbols,
                f"{seg.bandwidth / 1e6:.4g}",
                seg.sps,
                f"{measured:.3g}",
                f"{count / config.sample_rate * 1e6:.1f}",
            ]
        )
    print(
        format_table(
            ["start sym", "symbols", "scheduled BW (MHz)", "sps (2*alpha)", "measured 99% BW (MHz)", "dwell (us)"],
            rows,
            title="Per-hop segments (eq. 1: stretching the pulse by alpha divides the bandwidth by alpha)",
        )
    )
    print()
    print("Note how narrow hops dwell longer on air for the same symbol count —")
    print("the rate/robustness trade at the heart of the hopping patterns.")


if __name__ == "__main__":
    main()
