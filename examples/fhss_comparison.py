#!/usr/bin/env python3
"""FHSS vs BHSS: two hopping dimensions, one band.

Both systems occupy the same 10 MHz of spectrum.  FHSS hops a fixed
1.25 MHz signal across 8 *frequency* channels; BHSS hops the signal's
*bandwidth* across the seven octave values.  This example pits them
against three attacker strategies at equal jamming power and shows where
each hopping dimension earns its keep.

Run:  python examples/fhss_comparison.py
"""

from repro import BHSSConfig, BandlimitedNoiseJammer, FHSSLink, FHSSLinkConfig, LinkSimulator
from repro.utils import format_table


def main() -> None:
    fs = 20e6
    snr_db, sjr_db, n_packets = 15.0, -10.0, 12

    fhss = FHSSLink(FHSSLinkConfig(payload_bytes=8, seed=67, symbols_per_hop=4))
    bhss = LinkSimulator(
        BHSSConfig.paper_default(pattern="parabolic", seed=67, payload_bytes=8, symbols_per_hop=16)
    )

    print(f"FHSS: {fhss.config.num_channels} channels x "
          f"{fhss.config.channel_bandwidth / 1e6:g} MHz, "
          f"processing gain {fhss.config.processing_gain_db:.1f} dB")
    print(f"BHSS: bandwidths {[b / 1e6 for b in bhss.config.bandwidth_set.bandwidths]} MHz, "
          f"processing gain {bhss.config.processing_gain_db:.1f} dB + filtering")
    print()

    scenarios = [
        ("full-band 10 MHz noise", BandlimitedNoiseJammer(10e6, fs)),
        ("one-channel 1.25 MHz noise", BandlimitedNoiseJammer(1.25e6, fs, centre=2.5e6)),
        ("narrow 0.156 MHz noise", BandlimitedNoiseJammer(0.15625e6, fs, centre=-1e6)),
    ]
    rows = []
    for label, jammer in scenarios:
        per_fhss, _ = fhss.run_packets(n_packets, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer, seed=4)
        stats = bhss.run_packets(n_packets, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer, seed=4)
        rows.append([label, f"{per_fhss:.2f}", f"{stats.packet_error_rate:.2f}"])

    print(
        format_table(
            ["jammer (10 dB above signal)", "FHSS PER", "BHSS PER"],
            rows,
            title=f"SNR {snr_db:g} dB, SJR {sjr_db:g} dB, {n_packets} packets per cell",
        )
    )
    print()
    print("Full-band jamming: FHSS's 18 dB of raw processing gain shrugs it")
    print("off, and BHSS has nothing to filter.  Concentrated jamming: FHSS")
    print("loses every hop that lands on the jammed channel, while BHSS's")
    print("receiver excises the jammer *inside* the band and keeps the link.")
    print("The benchmark benchmarks/test_ext_fhss_vs_bhss.py runs the same")
    print("duel as min-SNR thresholds.")


if __name__ == "__main__":
    main()
