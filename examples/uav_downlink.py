#!/usr/bin/env python3
"""UAV control downlink under a reactive jammer.

The paper's motivating scenario (Section 2): a ground station sends
control frames to a UAV while a reactive jammer overhears the channel and
matches its noise bandwidth to whatever it senses.  A bandwidth estimate
costs the jammer "a couple of symbols" — modelled here as the fraction of
each hop dwell the jammer needs before it can re-match.

The sweep below varies that reaction speed at a fixed, strong jamming
level, comparing a fixed-bandwidth DSSS link against BHSS:

* reaction fraction 0 — an instantaneous (unrealistically fast) jammer is
  always matched, and neither system survives;
* reaction fraction 1 — the jammer is slower than the hop rate, so it is
  permanently one dwell stale against BHSS, which is exactly the
  bandwidth-offset condition the receiver's filters exploit.  The fixed
  link never changes bandwidth, so the jammer stays matched to it at
  *any* reaction speed.

Run:  python examples/uav_downlink.py
"""

from repro import BHSSConfig, LinkSimulator, MatchedReactiveJammer
from repro.utils import format_table


def main() -> None:
    snr_db, sjr_db, n_packets = 25.0, -10.0, 16
    fs = 20e6

    fixed = LinkSimulator(
        BHSSConfig.paper_default(seed=8, payload_bytes=8, symbols_per_hop=16).with_fixed_bandwidth(10e6)
    )
    bhss = LinkSimulator(
        BHSSConfig.paper_default(pattern="parabolic", seed=8, payload_bytes=8, symbols_per_hop=16)
    )

    rows = []
    for fraction in [0.0, 0.25, 0.5, 0.75, 1.0]:
        def jammer(fraction: float = fraction) -> MatchedReactiveJammer:
            return MatchedReactiveJammer(
                fs, reaction_samples=0, initial_bandwidth=10e6, reaction_fraction=fraction
            )

        per_fixed = fixed.run_packets(
            n_packets, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer(), seed=3
        ).packet_error_rate
        per_bhss = bhss.run_packets(
            n_packets, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer(), seed=3
        ).packet_error_rate
        label = {0.0: "instant (always matched)", 1.0: "slower than one hop"}.get(
            fraction, f"{fraction:.0%} of a dwell"
        )
        rows.append([label, f"{per_fixed:.2f}", f"{per_bhss:.2f}"])

    print(
        format_table(
            ["jammer reaction time", "fixed 10 MHz PER", "BHSS parabolic PER"],
            rows,
            title=(
                f"UAV downlink: SNR {snr_db:.0f} dB, SJR {sjr_db:.0f} dB "
                f"(jammer 10 dB above signal), {n_packets} packets per point"
            ),
        )
    )
    print()
    print("Against any realistic reaction time the fixed-bandwidth link stays")
    print("perfectly matched and dies.  Once the jammer cannot re-estimate the")
    print("bandwidth within one hop dwell, BHSS's receiver sees a stale, offset")
    print("jammer it can excise or low-pass away, and the downlink survives a")
    print("jammer ten times stronger than the signal.")


if __name__ == "__main__":
    main()
