#!/usr/bin/env python3
"""Jammer zoo: every attacker model against the same BHSS link.

Runs the full bestiary — fixed-band noise of three widths, tone, comb,
sweep, pulsed, bandwidth-hopping and the bandwidth-matching reactive
jammer — against one parabolic-pattern BHSS link at a fixed operating
point, and shows each jammer's measured spectrum occupancy next to the
damage it does and the filters the receiver chose against it.

Run:  python examples/jammer_zoo.py
"""

from repro import (
    BHSSConfig,
    BandlimitedNoiseJammer,
    HoppingJammer,
    LinkSimulator,
    MatchedReactiveJammer,
    PulsedJammer,
    SweepJammer,
    ToneJammer,
)
from repro.dsp import welch_psd
from repro.dsp.spectral import occupied_bandwidth
from repro.jamming import CombJammer
from repro.utils import format_table


def measured_occupancy_mhz(jammer, fs, n=131072):
    wave = jammer.waveform(n, rng=0)
    freqs, psd = welch_psd(wave, fs, nperseg=512)
    return occupied_bandwidth(freqs, psd, fraction=0.95) / 1e6


def main() -> None:
    config = BHSSConfig.paper_default(pattern="parabolic", seed=12, payload_bytes=8)
    link = LinkSimulator(config)
    fs = config.sample_rate
    bands = config.bandwidth_set.as_array()
    snr_db, sjr_db, n_packets = 16.0, -10.0, 12

    zoo = [
        BandlimitedNoiseJammer(10e6, fs),
        BandlimitedNoiseJammer(2.5e6, fs),
        BandlimitedNoiseJammer(0.15625e6, fs),
        ToneJammer(1.5e6, fs),
        CombJammer([-4e6, -1e6, 2e6, 5e6], fs, seed=1),
        SweepJammer(-5e6, 5e6, fs, sweep_duration=2e-3),
        PulsedJammer(BandlimitedNoiseJammer(10e6, fs), duty_cycle=0.2, period_samples=20000),
        HoppingJammer(bands, fs, dwell_samples=16384, seed=2),
        MatchedReactiveJammer(fs, reaction_samples=0, initial_bandwidth=10e6, reaction_fraction=1.0),
    ]

    rows = []
    for jammer in zoo:
        occupancy = measured_occupancy_mhz(jammer, fs)
        jammer.reset()
        stats = link.run_packets(
            n_packets, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer, seed=4
        )
        usage = stats.filter_usage
        total = max(sum(usage.values()), 1)
        dominant = max(usage, key=usage.get)
        lo, hi = stats.per_confidence_interval()
        rows.append(
            [
                jammer.description[:46],
                f"{occupancy:.3g}",
                f"{stats.packet_error_rate:.2f}",
                f"[{lo:.2f},{hi:.2f}]",
                f"{dominant} ({usage[dominant] * 100 // total}%)",
            ]
        )

    print(
        format_table(
            ["jammer", "95% occupancy (MHz)", "PER", "95% CI", "dominant filter"],
            rows,
            title=(
                f"BHSS (parabolic) vs the jammer zoo — SNR {snr_db:.0f} dB, "
                f"SJR {sjr_db:.0f} dB, {n_packets} packets each"
            ),
        )
    )
    print()
    print("Tone, comb and sweep jammers are harmless here: the excision filter")
    print("whitens their concentrated spectra away.  The dangerous attackers")
    print("park their power where the parabolic pattern transmits most — note")
    print("the matched 10 MHz and 0.156 MHz noise jammers at the top; that is")
    print("exactly the Figure-14 worst-case structure.")


if __name__ == "__main__":
    main()
