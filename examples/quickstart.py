#!/usr/bin/env python3
"""Quickstart: a BHSS link under a narrow-band jammer.

Builds the paper's default system (7 octave-spaced bandwidths at 20 MS/s,
16-ary DSSS PHY), runs packets through a jammed AWGN channel, and shows
how the filtering receiver recovers packets a conventional spread-spectrum
receiver loses.

Run:  python examples/quickstart.py
"""

from repro import BHSSConfig, BandlimitedNoiseJammer, LinkSimulator
from repro.utils import format_table


def main() -> None:
    # One config describes the whole link; transmitter and receiver share
    # its seed (the pre-shared secret) for hop schedule + PN scrambler.
    config = BHSSConfig.paper_default(pattern="parabolic", seed=42, payload_bytes=16)
    print("BHSS link configuration")
    print(f"  sample rate        : {config.sample_rate / 1e6:.0f} MS/s")
    print(f"  hop bandwidths     : {[b / 1e6 for b in config.bandwidth_set.bandwidths]} MHz")
    print(f"  hop range          : {config.bandwidth_set.hop_range:.0f}x")
    print(f"  processing gain    : {config.processing_gain_db:.1f} dB (spreading factor 8)")
    print()

    # A 0.625 MHz Gaussian-noise jammer, 12 dB stronger than the signal.
    jammer = BandlimitedNoiseJammer(bandwidth=0.625e6, sample_rate=config.sample_rate)
    snr_db, sjr_db, n = 15.0, -10.0, 20

    rows = []
    for label, link_config in [
        ("BHSS (hopping + filtering)", config),
        ("conventional SS (no filtering)", config.without_filtering()),
    ]:
        stats = LinkSimulator(link_config).run_packets(
            n, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer, seed=7
        )
        rows.append(
            [
                label,
                f"{stats.packet_error_rate:.2f}",
                f"{stats.bit_error_rate:.4f}",
                f"{stats.throughput_bps / 1e3:.0f} kb/s",
            ]
        )

    print(
        format_table(
            ["receiver", "PER", "BER", "goodput"],
            rows,
            title=f"{n} packets, SNR {snr_db:.0f} dB, SJR {sjr_db:.0f} dB, "
            f"jammer {jammer.description}",
        )
    )
    print()
    print("The BHSS receiver spectrally estimates the jammer per hop and")
    print("whitens it away (eq. 3) or low-pass filters it (eq. 4) before")
    print("despreading; the conventional receiver eats the full jammer power.")


if __name__ == "__main__":
    main()
