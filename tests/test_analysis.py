"""Unit tests for the analysis harness (thresholds, sweeps)."""

import os

import numpy as np
import pytest

from repro.analysis import (
    SweepResult,
    ThresholdSearch,
    env_scale,
    min_snr_for_per,
    power_advantage_db,
    run_sweep,
    write_csv,
)
from repro.core import BHSSConfig, LinkSimulator
from repro.jamming import BandlimitedNoiseJammer


def make_link(**kw):
    filtering = kw.pop("filtering", True)
    cfg = BHSSConfig.paper_default(payload_bytes=4, seed=21, **kw)
    if not filtering:
        cfg = cfg.without_filtering()
    return LinkSimulator(cfg)


FAST = ThresholdSearch(snr_low=-10.0, snr_high=30.0, tolerance_db=2.0, packets_per_point=6)


class TestThresholdSearch:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdSearch(target_per=0.0)
        with pytest.raises(ValueError):
            ThresholdSearch(snr_low=10.0, snr_high=0.0)
        with pytest.raises(ValueError):
            ThresholdSearch(tolerance_db=0.0)
        with pytest.raises(ValueError):
            ThresholdSearch(packets_per_point=0)

    def test_unjammed_threshold_is_low(self):
        link = make_link(fixed_bandwidth=10e6)
        t = min_snr_for_per(link, search=FAST, seed=1)
        assert t < 15.0

    def test_matched_strong_jammer_censored_high(self):
        link = make_link(fixed_bandwidth=10e6)
        jam = BandlimitedNoiseJammer(10e6, 20e6)
        t = min_snr_for_per(link, sjr_db=-25.0, jammer=jam, search=FAST, seed=2)
        assert t == FAST.snr_high  # hopeless: censored at the top

    def test_threshold_monotone_in_jammer_power(self):
        link = make_link(fixed_bandwidth=10e6, filtering=False)
        jam = BandlimitedNoiseJammer(10e6, 20e6)
        t_weak = min_snr_for_per(link, sjr_db=5.0, jammer=jam, search=FAST, seed=3)
        t_strong = min_snr_for_per(link, sjr_db=-8.0, jammer=jam, search=FAST, seed=3)
        assert t_strong >= t_weak

    def test_power_advantage_of_filtering(self):
        """The paper's core claim at one canonical point: narrow jammer,
        wide signal — filtering buys double-digit dB."""
        jam_factory = lambda: BandlimitedNoiseJammer(0.625e6, 20e6)
        adv, t_base, t_filt = power_advantage_db(
            make_link(fixed_bandwidth=10e6, filtering=False),
            make_link(fixed_bandwidth=10e6),
            sjr_db=-15.0,
            jammer_factory=jam_factory,
            search=FAST,
            seed=4,
        )
        assert adv > 5.0
        assert t_base > t_filt


class TestSweepResult:
    def test_add_and_columns(self):
        r = SweepResult(columns=("a", "b"))
        r.add(a=1, b=2)
        r.add(b=4, a=3)
        assert r.column("a") == [1, 3]
        assert r.as_table_rows() == [[1, 2], [3, 4]]

    def test_missing_column_raises(self):
        r = SweepResult(columns=("a", "b"))
        with pytest.raises(ValueError):
            r.add(a=1)

    def test_unknown_column_raises(self):
        r = SweepResult(columns=("a",))
        with pytest.raises(KeyError):
            r.column("z")

    def test_filtered(self):
        r = SweepResult(columns=("kind", "v"))
        r.add(kind="x", v=1)
        r.add(kind="y", v=2)
        r.add(kind="x", v=3)
        assert r.filtered(kind="x").column("v") == [1, 3]

    def test_run_sweep_scalars(self):
        r = run_sweep(["x", "y"], [1, 2, 3], lambda x: {"x": x, "y": x * x})
        assert r.column("y") == [1, 4, 9]

    def test_run_sweep_tuples(self):
        r = run_sweep(["s"], [(1, 2), (3, 4)], lambda a, b: {"s": a + b})
        assert r.column("s") == [3, 7]

    def test_write_csv(self, tmp_path):
        r = SweepResult(columns=("a", "b"))
        r.add(a=1, b=2.5)
        path = write_csv(r, str(tmp_path / "out" / "r.csv"))
        text = open(path).read()
        assert "a,b" in text and "1,2.5" in text


class TestEnvScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert env_scale() == 2.5

    def test_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(ValueError):
            env_scale()

    def test_nonpositive_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ValueError):
            env_scale()
