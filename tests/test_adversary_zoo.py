"""The adversary zoo: adaptive jammers, spec audits, and the arena.

Three walls in one file:

* **Spec round-trips** — every registered jammer type survives
  ``spec() -> jammer_from_spec -> spec()`` losslessly, audited by
  :func:`verify_spec_roundtrip`; silently dropped constructor fields
  raise *field-named* errors (the regression class behind the
  ``MatchedReactiveJammer.reaction_fraction`` and nested rate-inheritance
  fixes).
* **Driver bit-identity** — each adaptive jammer produces identical
  statistics on the serial, batched, and worker-pool drivers at several
  seeds, extending the batch-equivalence wall to the tournament runner.
* **Semantics** — the zero head of the latent reactive jammer, the
  delayed-copy law of the repeater, tone placement of the multitone
  attacker, and the converge/diverge boundary of the learning follower.

Plus the :class:`~repro.arena.ArenaSpec` validation surface, the
tournament runner (cache, checkpoint, advantage metric), the CLI
``run --tournament`` path, and the frozen golden tournament cells.
"""

import json
import os

import numpy as np
import pytest

from repro.arena import (
    NO_JAMMER,
    TOURNAMENT_COLUMNS,
    ArenaError,
    ArenaSpec,
    TournamentResult,
    evaluate_arena_cell,
    run_tournament,
)
from repro.cli import main
from repro.core import BHSSConfig, LinkSimulator
from repro.core.transmitter import BHSSTransmitter
from repro.hopping.bands import BandwidthSet
from repro.jamming import (
    FollowerJammer,
    Jammer,
    LatentReactiveJammer,
    MatchedReactiveJammer,
    MultiToneJammer,
    RepeaterJammer,
    jammer_from_spec,
    jammer_names,
    verify_spec_roundtrip,
)
from repro.jamming.registry import JAMMER_REGISTRY
from repro.runtime import ParallelExecutor, ResultCache, SweepCheckpoint, stable_hash
from repro.utils.units import signal_power

FS = 20e6

#: deterministic construction specs for the whole registry — the spec
#: round-trip wall sweeps these; extend when registering a new type.
ROUNDTRIP_SPECS = {
    "none": {"type": "none"},
    "noise": {"type": "noise", "bandwidth": 2.5e6, "sample_rate": FS},
    "tone": {"type": "tone", "frequency": 1e6, "sample_rate": FS},
    "sweep": {
        "type": "sweep",
        "f_start": -2e6,
        "f_stop": 2e6,
        "sample_rate": FS,
        "sweep_duration": 1e-3,
    },
    "comb": {"type": "comb", "frequencies": [0.5e6, 2e6], "sample_rate": FS, "seed": 5},
    "hopping": {
        "type": "hopping",
        "bandwidths": [1.25e6, 2.5e6],
        "sample_rate": FS,
        "dwell_samples": 2048,
        "seed": 5,
    },
    "pulsed": {
        "type": "pulsed",
        "inner": {"type": "tone", "frequency": 1.5e6, "sample_rate": FS},
        "duty_cycle": 0.5,
        "period_samples": 4096,
    },
    "reactive": {
        "type": "reactive",
        "sample_rate": FS,
        "reaction_samples": 2048,
        "initial_bandwidth": 2.5e6,
    },
    "latent-reactive": {
        "type": "latent-reactive",
        "sample_rate": FS,
        "bandwidth": 2.5e6,
        "threshold_db": -6.0,
        "sense_window": 64,
        "turnaround_samples": 512,
    },
    "repeater": {"type": "repeater", "delay_samples": 32, "num_taps": 3},
    "multitone": {
        "type": "multitone",
        "sample_rate": FS,
        "placement_bandwidth": 0.15625e6,
        "num_tones": 4,
    },
    "follower": {
        "type": "follower",
        "sample_rate": FS,
        "initial_bandwidth": 2.5e6,
        "learning_rate": 0.5,
        "sense_noise_db": 1.0,
    },
}

ADAPTIVE_TYPES = ("latent-reactive", "repeater", "multitone", "follower")


def small_config(**overrides):
    """A three-band config small enough for many tournaments per test."""
    overrides.setdefault("bandwidth_set", BandwidthSet.paper_default(count=3))
    overrides.setdefault("payload_bytes", 2)
    overrides.setdefault("symbols_per_hop", 2)
    overrides.setdefault("seed", 11)
    return BHSSConfig(**overrides)


def small_arena(jammers, **overrides):
    overrides.setdefault("name", "zoo")
    overrides.setdefault("config", small_config())
    overrides.setdefault("patterns", ("linear",))
    overrides.setdefault("hop_ranges", (1, 3))
    overrides.setdefault("snr_db", 12.0)
    overrides.setdefault("sjr_db", -6.0)
    overrides.setdefault("packets", 3)
    overrides.setdefault("seed", 0)
    return ArenaSpec(jammers=tuple(jammers), **overrides)


def transmit_packet(packet_index=0, config=None):
    """One real victim packet: ``(TransmittedPacket, profile)``."""
    packet = BHSSTransmitter(config or small_config()).transmit(None, packet_index)
    return packet, packet.bandwidth_profile()


# ---------------------------------------------------------------------------
# spec round-trips and the silently-dropped-field audit
# ---------------------------------------------------------------------------

class TestSpecRoundTrips:
    def test_every_registered_type_has_a_roundtrip_spec(self):
        assert sorted(ROUNDTRIP_SPECS) == jammer_names()

    @pytest.mark.parametrize("name", sorted(ROUNDTRIP_SPECS))
    def test_spec_roundtrip_is_lossless(self, name):
        jammer = jammer_from_spec(ROUNDTRIP_SPECS[name])
        audited = verify_spec_roundtrip(jammer)
        assert audited["type"] == name
        rebuilt = jammer_from_spec(audited)
        assert rebuilt.spec() == audited

    @pytest.mark.parametrize("name", ADAPTIVE_TYPES)
    def test_adaptive_spec_lists_every_constructor_field(self, name):
        # The audit in verify_spec_roundtrip only sees dropped fields
        # whose values differ from the default; the zoo's own jammers are
        # held to the stronger bar — every constructor field serialized.
        import inspect

        cls = JAMMER_REGISTRY[name]
        jammer = jammer_from_spec(ROUNDTRIP_SPECS[name])
        params = set(inspect.signature(cls.__init__).parameters) - {"self"}
        assert params <= set(jammer.spec())

    def test_follower_optional_clamp_roundtrips(self):
        jammer = FollowerJammer(
            FS, 10e6, min_bandwidth=0.15625e6, max_bandwidth=10e6
        )
        spec = verify_spec_roundtrip(jammer)
        rebuilt = jammer_from_spec(spec)
        assert rebuilt.min_bandwidth == pytest.approx(0.15625e6)
        assert rebuilt.max_bandwidth == pytest.approx(10e6)

    def test_follower_unclamped_roundtrips_none(self):
        spec = FollowerJammer(FS, 10e6).spec()
        assert spec["min_bandwidth"] is None and spec["max_bandwidth"] is None
        rebuilt = jammer_from_spec(spec)
        assert rebuilt.min_bandwidth is None and rebuilt.max_bandwidth is None

    def test_reactive_fraction_field_is_not_dropped(self):
        # Regression: reaction_fraction is conditional in spec() — the
        # audit must prove it survives when set and defaults when absent.
        jammer = MatchedReactiveJammer(FS, 2048, 10e6, reaction_fraction=0.25)
        spec = verify_spec_roundtrip(jammer)
        assert spec["reaction_fraction"] == pytest.approx(0.25)
        bare = verify_spec_roundtrip(MatchedReactiveJammer(FS, 2048, 10e6))
        assert "reaction_fraction" not in bare

    def test_dropped_field_raises_field_named_error(self):
        class LeakyJammer(LatentReactiveJammer):
            def spec(self):
                out = super().spec()
                out["type"] = "leaky"
                del out["turnaround_samples"]  # the deliberate drop
                return out

        JAMMER_REGISTRY["leaky"] = LeakyJammer
        try:
            jammer = LeakyJammer(FS, 2.5e6, turnaround_samples=999)
            with pytest.raises(ValueError, match="turnaround_samples"):
                verify_spec_roundtrip(jammer)
        finally:
            del JAMMER_REGISTRY["leaky"]

    def test_drifting_field_raises_field_named_error(self):
        class DriftingJammer(MultiToneJammer):
            def spec(self):
                out = super().spec()
                out["type"] = "drifting"
                out["num_tones"] = self.num_tones + 1  # corrupt on the way out
                return out

        JAMMER_REGISTRY["drifting"] = DriftingJammer
        try:
            with pytest.raises(ValueError, match="num_tones"):
                verify_spec_roundtrip(DriftingJammer(FS, 1e6, num_tones=3))
        finally:
            del JAMMER_REGISTRY["drifting"]

    def test_unknown_spec_field_names_the_field(self):
        with pytest.raises(ValueError, match="bogus_knob"):
            jammer_from_spec({"type": "repeater", "bogus_knob": 1})

    def test_unknown_type_lists_registry(self):
        with pytest.raises(ValueError, match="registered types"):
            jammer_from_spec({"type": "quantum"})


class TestRateInheritance:
    """The registry's sample-rate injection, including the nested fix."""

    @pytest.mark.parametrize(
        "name", ["latent-reactive", "multitone", "follower"]
    )
    def test_adaptive_specs_inherit_the_link_rate(self, name):
        spec = {k: v for k, v in ROUNDTRIP_SPECS[name].items() if k != "sample_rate"}
        jammer = jammer_from_spec(spec, sample_rate=FS)
        assert jammer.sample_rate == pytest.approx(FS)

    def test_inner_spec_inherits_rate_one_level(self):
        jammer = jammer_from_spec(
            {
                "type": "pulsed",
                "inner": {"type": "tone", "frequency": 1e6},
                "duty_cycle": 0.5,
                "period_samples": 1024,
            },
            sample_rate=FS,
        )
        assert jammer.inner.sample_rate == pytest.approx(FS)

    def test_nested_inner_specs_inherit_rate(self):
        # Regression: pulsed-in-pulsed previously dropped the injected
        # rate at depth two, because PulsedJammer.from_spec rebuilds its
        # inner jammer without a sample_rate argument.
        jammer = jammer_from_spec(
            {
                "type": "pulsed",
                "inner": {
                    "type": "pulsed",
                    "inner": {"type": "tone", "frequency": 1e6},
                    "duty_cycle": 0.5,
                    "period_samples": 512,
                },
                "duty_cycle": 0.5,
                "period_samples": 1024,
            },
            sample_rate=FS,
        )
        assert jammer.inner.inner.sample_rate == pytest.approx(FS)

    def test_explicit_rate_beats_injection_at_depth(self):
        jammer = jammer_from_spec(
            {
                "type": "pulsed",
                "inner": {"type": "tone", "frequency": 1e6, "sample_rate": 2 * FS},
                "duty_cycle": 0.5,
                "period_samples": 1024,
            },
            sample_rate=FS,
        )
        assert jammer.inner.sample_rate == pytest.approx(2 * FS)

    def test_injection_does_not_mutate_the_caller_spec(self):
        spec = {
            "type": "pulsed",
            "inner": {"type": "tone", "frequency": 1e6},
            "duty_cycle": 0.5,
            "period_samples": 1024,
        }
        jammer_from_spec(spec, sample_rate=FS)
        assert "sample_rate" not in spec["inner"]


# ---------------------------------------------------------------------------
# serial == batched == pool, per adaptive jammer
# ---------------------------------------------------------------------------

class TestDriverBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("name", ADAPTIVE_TYPES)
    def test_serial_equals_batched(self, name, seed):
        stats = {}
        for label, batch in (("serial", 0), ("batched", 2)):
            link = LinkSimulator(small_config())
            stats[label] = link.run_packets_batched(
                5,
                snr_db=8.0,
                sjr_db=-5.0,
                jammer=jammer_from_spec(ROUNDTRIP_SPECS[name]),
                seed=seed,
                batch_size=batch,
                cache=False,
            )
        assert stats["serial"] == stats["batched"]
        assert stats["serial"].filter_usage == stats["batched"].filter_usage

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("name", ADAPTIVE_TYPES)
    def test_pool_equals_serial_through_the_arena(self, name, seed):
        spec = small_arena(
            [("none", dict(NO_JAMMER)), (name, dict(ROUNDTRIP_SPECS[name]))],
            seed=seed,
        )
        serial = run_tournament(
            spec, executor=ParallelExecutor(0), cache=False, checkpoint=False
        )
        if not ParallelExecutor.fork_available():
            pytest.skip("no fork on this platform")
        pooled = run_tournament(
            spec, executor=ParallelExecutor(2), cache=False, checkpoint=False
        )
        assert pooled.records == serial.records


# ---------------------------------------------------------------------------
# latent reactive: detect, turn around, jam the tail
# ---------------------------------------------------------------------------

class TestLatentReactiveSemantics:
    def make(self, **overrides):
        kwargs = dict(
            sample_rate=FS, bandwidth=2.5e6, threshold_db=-6.0,
            sense_window=64, turnaround_samples=256,
        )
        kwargs.update(overrides)
        return LatentReactiveJammer(**kwargs)

    def test_head_is_exactly_zero_until_turnaround(self):
        jammer = self.make()
        packet, profile = transmit_packet()
        jammer.observe_victim(packet.waveform, profile)
        start = jammer.jam_start(packet.num_samples)
        wave = jammer.waveform(packet.num_samples, np.random.default_rng(0))
        assert 0 < start < packet.num_samples
        assert np.all(wave[:start] == 0)
        assert np.any(wave[start:] != 0)

    def test_whole_packet_power_is_unit(self):
        jammer = self.make()
        packet, profile = transmit_packet()
        jammer.observe_victim(packet.waveform, profile)
        wave = jammer.waveform(packet.num_samples, np.random.default_rng(1))
        assert signal_power(wave) == pytest.approx(1.0)

    def test_no_observation_means_no_jamming(self):
        wave = self.make().waveform(4096, np.random.default_rng(0))
        assert np.all(wave == 0)

    def test_silent_observation_is_not_detected(self):
        jammer = self.make()
        jammer.observe_victim(np.zeros(4096, dtype=complex), [(4096, 2.5e6)])
        assert jammer.detect_index() is None
        assert np.all(jammer.waveform(4096, np.random.default_rng(0)) == 0)

    def test_detector_fires_at_the_energy_onset(self):
        jammer = self.make(sense_window=32, turnaround_samples=0)
        observed = np.zeros(4096, dtype=complex)
        observed[500:] = 1.0  # energy arrives at sample 500
        jammer.observe_victim(observed, [(4096, 2.5e6)])
        detect = jammer.detect_index()
        assert detect is not None
        assert 500 <= detect < 500 + 64

    def test_turnaround_beyond_packet_never_jams(self):
        jammer = self.make(turnaround_samples=10**6)
        packet, profile = transmit_packet()
        jammer.observe_victim(packet.waveform, profile)
        assert jammer.jam_start(packet.num_samples) == packet.num_samples
        wave = jammer.waveform(packet.num_samples, np.random.default_rng(0))
        assert np.all(wave == 0)

    def test_more_turnaround_never_jams_earlier(self):
        packet, profile = transmit_packet()
        starts = []
        for tau in (0, 128, 512, 2048):
            jammer = self.make(turnaround_samples=tau)
            jammer.observe_victim(packet.waveform, profile)
            starts.append(jammer.jam_start(packet.num_samples))
        assert starts == sorted(starts)


# ---------------------------------------------------------------------------
# repeater: the victim's waveform, delayed and re-normalized
# ---------------------------------------------------------------------------

class TestRepeaterSemantics:
    def test_single_tap_output_is_a_delayed_scaled_copy(self):
        delay = 64
        jammer = RepeaterJammer(delay_samples=delay, num_taps=1)
        packet, profile = transmit_packet()
        jammer.observe_victim(packet.waveform, profile)
        n = packet.num_samples
        wave = jammer.waveform(n, np.random.default_rng(0))
        assert np.all(wave[:delay] == 0)
        keep = n - delay
        replay = wave[delay:]
        victim = packet.waveform[:keep]
        # One complex gain relates every sample: the replay is the victim.
        scale = replay[np.argmax(np.abs(victim))] / victim[np.argmax(np.abs(victim))]
        np.testing.assert_allclose(replay, scale * victim, rtol=1e-9, atol=1e-12)

    def test_output_power_is_unit(self):
        jammer = RepeaterJammer(delay_samples=32, num_taps=1)
        packet, profile = transmit_packet()
        jammer.observe_victim(packet.waveform, profile)
        wave = jammer.waveform(packet.num_samples, np.random.default_rng(0))
        assert signal_power(wave) == pytest.approx(1.0)

    def test_no_observation_is_silence(self):
        wave = RepeaterJammer().waveform(2048, np.random.default_rng(0))
        assert wave.dtype == np.complex128
        assert np.all(wave == 0)

    def test_delay_beyond_packet_is_silence(self):
        jammer = RepeaterJammer(delay_samples=10**6)
        packet, profile = transmit_packet()
        jammer.observe_victim(packet.waveform, profile)
        assert np.all(jammer.waveform(packet.num_samples, np.random.default_rng(0)) == 0)

    def test_filtered_repeat_is_deterministic_in_the_stream(self):
        packet, profile = transmit_packet()
        waves = []
        for _ in range(2):
            jammer = RepeaterJammer(delay_samples=16, num_taps=5)
            jammer.observe_victim(packet.waveform, profile)
            waves.append(jammer.waveform(packet.num_samples, np.random.default_rng(7)))
        np.testing.assert_array_equal(waves[0], waves[1])
        assert signal_power(waves[0]) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# multitone: K tones inside the placement band
# ---------------------------------------------------------------------------

class TestMultiToneSemantics:
    def test_tones_stay_inside_the_placement_band(self):
        jammer = MultiToneJammer(FS, 0.15625e6, num_tones=6)
        freqs = jammer.tone_frequencies()
        assert freqs.size == 6
        assert np.all(np.abs(freqs) <= 0.15625e6 / 2)
        np.testing.assert_allclose(freqs, -freqs[::-1])  # symmetric placement

    def test_for_hop_range_targets_the_narrowest_band(self):
        bands = BandwidthSet.paper_default().bandwidths
        jammer = MultiToneJammer.for_hop_range(FS, bands, num_tones=4)
        assert jammer.placement_bandwidth == pytest.approx(min(bands))

    def test_unit_power(self):
        wave = MultiToneJammer(FS, 1e6, num_tones=4).waveform(
            8192, np.random.default_rng(0)
        )
        assert wave.dtype == np.complex128
        assert signal_power(wave) == pytest.approx(1.0)

    def test_spectrum_concentrates_at_the_tone_frequencies(self):
        jammer = MultiToneJammer(FS, 2e6, num_tones=3)
        n = 1 << 14
        wave = jammer.waveform(n, np.random.default_rng(3))
        spectrum = np.abs(np.fft.fft(wave))
        grid = np.fft.fftfreq(n, 1.0 / FS)
        peak_freqs = sorted(grid[np.argsort(spectrum)[-3:]])
        np.testing.assert_allclose(
            peak_freqs, sorted(jammer.tone_frequencies()), atol=FS / n + 1.0
        )

    def test_placement_wider_than_nyquist_rejected(self):
        with pytest.raises(ValueError, match="placement_bandwidth"):
            MultiToneJammer(FS, 3 * FS)

    def test_empty_hop_range_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            MultiToneJammer.for_hop_range(FS, [])


# ---------------------------------------------------------------------------
# follower: learn the band, or chase a moving target
# ---------------------------------------------------------------------------

class TestFollowerSemantics:
    def observe_and_jam(self, jammer, bandwidth, packets, rng):
        for _ in range(packets):
            jammer.observe_victim(np.ones(256, dtype=complex), [(256, bandwidth)])
            jammer.waveform(256, rng)

    def test_converges_on_a_static_band(self):
        jammer = FollowerJammer(FS, 10e6, learning_rate=0.5, sense_noise_db=0.0)
        self.observe_and_jam(jammer, 0.625e6, 12, np.random.default_rng(0))
        # 4 octaves of initial error decay as 0.5^12 with a noiseless sensor
        assert jammer.bandwidth_estimate == pytest.approx(0.625e6, rel=1e-2)

    def test_stays_dispersed_under_randomized_hopping(self):
        static = FollowerJammer(FS, 10e6, learning_rate=0.5, sense_noise_db=0.0)
        hopper = FollowerJammer(FS, 10e6, learning_rate=0.5, sense_noise_db=0.0)
        rng = np.random.default_rng(0)
        bands = BandwidthSet.paper_default().bandwidths  # 7 octave-spaced bands
        for k in range(24):
            static.observe_victim(np.ones(256, dtype=complex), [(256, 0.625e6)])
            static.waveform(256, rng)
            hopper.observe_victim(
                np.ones(256, dtype=complex), [(256, bands[(3 * k) % len(bands)])]
            )
            hopper.waveform(256, rng)
        tail = np.log2(static.estimate_history[-8:])
        assert np.ptp(tail) < 0.01  # converged: estimates pinned
        hop_tail = np.log2(hopper.estimate_history[-8:])
        assert np.ptp(hop_tail) > 1.0  # chasing: estimates swing over octaves

    def test_reset_restores_the_initial_estimate(self):
        jammer = FollowerJammer(FS, 10e6, learning_rate=0.9, sense_noise_db=0.0)
        self.observe_and_jam(jammer, 0.3125e6, 5, np.random.default_rng(0))
        assert jammer.bandwidth_estimate != pytest.approx(10e6)
        jammer.reset()
        assert jammer.bandwidth_estimate == pytest.approx(10e6)
        assert jammer.estimate_history == []

    def test_clamp_bounds_the_estimate(self):
        jammer = FollowerJammer(
            FS, 5e6, learning_rate=1.0, sense_noise_db=0.0,
            min_bandwidth=1.25e6, max_bandwidth=10e6,
        )
        self.observe_and_jam(jammer, 0.15625e6, 4, np.random.default_rng(0))
        assert jammer.bandwidth_estimate == pytest.approx(1.25e6)

    def test_invalid_clamp_order_rejected(self):
        with pytest.raises(ValueError, match="min_bandwidth"):
            FollowerJammer(FS, 5e6, min_bandwidth=10e6, max_bandwidth=1e6)

    def test_statefulness_flags(self):
        assert FollowerJammer(FS, 5e6).is_stateful
        assert not LatentReactiveJammer(FS, 2.5e6).is_stateful
        assert not RepeaterJammer().is_stateful
        assert not MultiToneJammer(FS, 1e6).is_stateful


# ---------------------------------------------------------------------------
# arena spec validation surface
# ---------------------------------------------------------------------------

class TestArenaSpec:
    def test_dict_round_trip_is_lossless(self):
        spec = small_arena(
            [("none", dict(NO_JAMMER)), ("rep", {"type": "repeater"})],
            patterns=("linear", "parabolic"),
            description="round trip",
        )
        assert ArenaSpec.from_dict(spec.to_dict()) == spec

    def test_jammers_sorted_by_label(self):
        spec = small_arena([("zeta", dict(NO_JAMMER)), ("alpha", {"type": "repeater"})])
        assert spec.jammer_labels == ("alpha", "zeta")
        labels = [c[0] for c in spec.cells()]
        assert labels == sorted(labels)

    def test_num_cells_is_the_grid_product(self):
        spec = small_arena(
            [("none", dict(NO_JAMMER)), ("rep", {"type": "repeater"})],
            patterns=("linear", "parabolic"),
            hop_ranges=(1, 2, 3),
        )
        assert spec.num_cells == 2 * 2 * 3 == len(spec.cells())

    def test_static_cell_pins_the_widest_band(self):
        spec = small_arena([("none", dict(NO_JAMMER))])
        config = spec.cell_config("parabolic", 1)
        widest = max(spec.config.bandwidth_set.bandwidths)
        assert config.fixed_bandwidth == pytest.approx(widest)
        assert config.pattern == "linear"  # canonical: pattern is moot when static
        assert len(config.bandwidth_set) == 1

    def test_hopping_cell_keeps_the_k_widest_bands(self):
        spec = small_arena([("none", dict(NO_JAMMER))], hop_ranges=(1, 2))
        config = spec.cell_config("linear", 2)
        expected = sorted(spec.config.bandwidth_set.bandwidths, reverse=True)[:2]
        assert sorted(config.bandwidth_set.bandwidths, reverse=True) == expected
        assert config.fixed_bandwidth is None

    def test_baseline_label_finds_the_none_jammer(self):
        spec = small_arena([("quiet", dict(NO_JAMMER)), ("rep", {"type": "repeater"})])
        assert spec.baseline_label == "quiet"
        no_base = small_arena([("rep", {"type": "repeater"})])
        assert no_base.baseline_label is None

    @pytest.mark.parametrize(
        "mutation, match",
        [
            (dict(jammers=()), "jammers"),
            (dict(patterns=("spiral",)), "patterns"),
            (dict(patterns=("linear", "linear")), "patterns"),
            (dict(hop_ranges=(0,)), "hop_ranges"),
            (dict(hop_ranges=(9,)), "hop_ranges"),
            (dict(hop_ranges=(1, 1)), "hop_ranges"),
            (dict(packets=0), "packets"),
            (dict(snr_db="high"), "snr_db"),
            (dict(name=""), "name"),
        ],
    )
    def test_field_named_validation_errors(self, mutation, match):
        kwargs = dict(
            name="bad",
            config=small_config(),
            jammers=(("none", dict(NO_JAMMER)),),
            patterns=("linear",),
            hop_ranges=(1,),
            packets=2,
        )
        kwargs.update(mutation)
        with pytest.raises(ArenaError, match=match):
            ArenaSpec(**kwargs)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ArenaError, match="duplicate"):
            small_arena([("a", dict(NO_JAMMER)), ("a", {"type": "repeater"})])

    def test_from_dict_rejects_unknown_fields(self):
        data = small_arena([("none", dict(NO_JAMMER))]).to_dict()
        data["turbo"] = True
        with pytest.raises(ArenaError, match="turbo"):
            ArenaSpec.from_dict(data)

    def test_from_dict_deep_validates_jammer_specs(self):
        data = small_arena([("none", dict(NO_JAMMER))]).to_dict()
        data["jammers"]["bad"] = {"type": "multitone", "num_tones": 0}
        with pytest.raises(ArenaError, match="bad"):
            ArenaSpec.from_dict(data)

    def test_load_error_carries_the_source_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"name": "x", "jammers": {"n": {"type": "none"}},
                                    "hop_ranges": [0]}))
        with pytest.raises(ArenaError, match="broken.json"):
            ArenaSpec.load(str(path))

    def test_save_load_round_trip(self, tmp_path):
        spec = small_arena([("none", dict(NO_JAMMER)), ("rep", {"type": "repeater"})])
        path = spec.save(str(tmp_path / "arena.json"))
        assert ArenaSpec.load(path) == spec


# ---------------------------------------------------------------------------
# tournament runner: fan-out, cache, checkpoint, advantage
# ---------------------------------------------------------------------------

def two_jammer_arena(**overrides):
    return small_arena(
        [
            ("none", dict(NO_JAMMER)),
            ("rep", {"type": "repeater", "delay_samples": 64}),
        ],
        **overrides,
    )


class TestRunTournament:
    def test_records_follow_cell_order_and_columns(self):
        spec = two_jammer_arena()
        result = run_tournament(spec, cache=False, checkpoint=False)
        assert [(r["jammer"], r["num_bands"]) for r in result.records] == [
            ("none", 1), ("none", 3), ("rep", 1), ("rep", 3),
        ]
        table = result.to_sweep_result()
        assert table.columns == TOURNAMENT_COLUMNS
        assert len(table.rows) == spec.num_cells

    def test_cache_round_trip(self, tmp_path):
        spec = two_jammer_arena()
        root = str(tmp_path / "cache")
        first = run_tournament(spec, cache=root, checkpoint=False)
        probe = ResultCache(root)
        payload = {"arena": spec.to_dict(), "cache": probe}
        for i in range(spec.num_cells):
            assert evaluate_arena_cell(payload, i) == first.records[i]
        assert probe.hits == spec.num_cells
        assert probe.misses == 0

    def test_static_cells_share_one_cache_entry_across_patterns(self, tmp_path):
        # hop range 1 canonicalizes the pattern away, so the static cell
        # of every pattern is *the same content* — one miss, then hits.
        spec = small_arena(
            [("none", dict(NO_JAMMER))],
            patterns=("linear", "parabolic"),
            hop_ranges=(1,),
        )
        root = str(tmp_path / "cache")
        result = run_tournament(
            spec, executor=ParallelExecutor(0), cache=root, checkpoint=False
        )
        assert len(result.records) == 2
        a, b = result.records
        assert a["pattern"] == "linear" and b["pattern"] == "parabolic"
        assert a["stats"] == b["stats"]

    def test_checkpoint_resume_skips_finished_cells(self, tmp_path):
        spec = two_jammer_arena()
        root = str(tmp_path / "ckpt")
        full = run_tournament(spec, cache=False, checkpoint=False)
        key = stable_hash({"arena": spec.to_dict()})
        ck = SweepCheckpoint(root, key, total=spec.num_cells)
        ck.record(0, full.records[0])
        ck.record(2, full.records[2])
        ck.flush()
        resumed = run_tournament(spec, cache=False, checkpoint=root)
        assert resumed.records == full.records
        assert resumed.timing is not None
        assert resumed.timing.point_seconds[0] == 0.0
        assert resumed.timing.point_seconds[1] > 0.0
        assert SweepCheckpoint(root, key, total=spec.num_cells).load() == {}

    def test_jammer_advantage_is_the_mean_delta_vs_baseline(self):
        spec = two_jammer_arena()
        result = run_tournament(spec, cache=False, checkpoint=False)
        matrix = result.resilience_matrix("per")
        expected = np.mean(
            [
                matrix[("rep", "linear", k)] - matrix[("none", "linear", k)]
                for k in spec.hop_ranges
            ]
        )
        assert result.jammer_advantage("per") == {"rep": pytest.approx(expected)}

    def test_jammer_advantage_requires_a_baseline(self):
        spec = small_arena([("rep", {"type": "repeater"})])
        result = run_tournament(spec, cache=False, checkpoint=False)
        with pytest.raises(ArenaError, match="baseline"):
            result.jammer_advantage()
        assert result.aggregates()["jammer_advantage"] == {}

    def test_resilience_matrix_rejects_unknown_metric(self):
        result = TournamentResult(spec=two_jammer_arena())
        with pytest.raises(ValueError, match="metric"):
            result.resilience_matrix("happiness")

    def test_cell_stats_reconstructs_link_stats(self):
        spec = two_jammer_arena()
        result = run_tournament(spec, cache=False, checkpoint=False)
        stats = result.cell_stats("rep", "linear", 3)
        assert stats.num_packets == spec.packets
        with pytest.raises(KeyError, match="no cell"):
            result.cell_stats("ghost", "linear", 3)

    def test_cell_index_out_of_range(self):
        spec = two_jammer_arena()
        with pytest.raises(ArenaError, match="cell index"):
            spec.build_cell(spec.num_cells)


# ---------------------------------------------------------------------------
# CLI: run --tournament, scenario routing
# ---------------------------------------------------------------------------

class TestArenaCLI:
    @pytest.fixture()
    def arena_file(self, tmp_path):
        return two_jammer_arena().save(str(tmp_path / "arena.json"))

    def test_run_tournament_prints_matrix_and_advantage(self, arena_file, capsys):
        assert main(["run", "--tournament", arena_file]) == 0
        out = capsys.readouterr().out
        assert "resilience matrix" in out
        assert "jammer advantage" in out

    def test_run_tournament_writes_csv(self, arena_file, tmp_path, capsys):
        csv_path = str(tmp_path / "out.csv")
        assert main(["run", "--tournament", arena_file, "-o", csv_path]) == 0
        header = open(csv_path).readline().strip().split(",")
        assert header == list(TOURNAMENT_COLUMNS)

    def test_run_requires_exactly_one_input(self, arena_file, capsys):
        assert main(["run"]) == 2
        assert main(["run", "--tournament", arena_file, "--scenario", arena_file]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_run_invalid_arena_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"jammers": {"n": {"type": "none"}}}))
        assert main(["run", "--tournament", str(path)]) == 2
        assert "name" in capsys.readouterr().err

    def test_scenario_validate_routes_arena_files(self, arena_file, capsys):
        assert main(["scenario", "validate", arena_file]) == 0
        out = capsys.readouterr().out
        assert "cells" in out and "jammer(s)" in out

    def test_scenario_list_labels_arena_rows(self, arena_file, capsys):
        assert main(["scenario", "list", os.path.dirname(arena_file)]) == 0
        assert "arena (2 jammers)" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# golden tournament cells
# ---------------------------------------------------------------------------

class TestGoldenArenaCells:
    @pytest.fixture(scope="class")
    def frozen(self):
        from tests.golden.regenerate_arena import OUTPUT

        if not os.path.exists(OUTPUT):
            pytest.skip("golden fixture missing; run tests/golden/regenerate_arena.py")
        with open(OUTPUT) as fh:
            return json.load(fh)

    @pytest.fixture(scope="class")
    def regenerated(self):
        from tests.golden.regenerate_arena import generate

        return generate()

    def test_same_cell_set(self, frozen, regenerated):
        assert sorted(frozen) == sorted(regenerated)

    def test_cells_match_exactly(self, frozen, regenerated):
        # JSON round-trips Python floats exactly; any numerics drift in
        # the adaptive jammers or the tournament runner fails here.
        for name, record in frozen.items():
            assert regenerated[name] == record, f"golden cell {name} drifted"

    def test_frozen_cells_cover_distinct_jammers(self, frozen):
        jammers = {record["jammer"] for record in frozen.values()}
        assert len(jammers) >= 2
