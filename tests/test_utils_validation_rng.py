"""Unit tests for repro.utils.validation and repro.utils.rng."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    as_complex_array,
    as_float_array,
    child_rng,
    derive_seed,
    ensure_in_range,
    ensure_non_negative,
    ensure_odd,
    ensure_positive,
    ensure_power_of_two,
    ensure_probability_vector,
    make_rng,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            ensure_positive(bad, "x")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_non_negative(-0.1, "x")


class TestEnsureInRange:
    def test_accepts_bounds(self):
        assert ensure_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert ensure_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.5, 0.0, 1.0, "x")


class TestEnsureOdd:
    def test_accepts_odd(self):
        assert ensure_odd(7, "n") == 7

    @pytest.mark.parametrize("bad", [4, 2.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            ensure_odd(bad, "n")


class TestEnsurePowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 64, 4096])
    def test_accepts(self, good):
        assert ensure_power_of_two(good, "n") == good

    @pytest.mark.parametrize("bad", [0, 3, 6, -4])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            ensure_power_of_two(bad, "n")


class TestProbabilityVector:
    def test_normalizes(self):
        w = ensure_probability_vector([1, 1, 2], "w")
        np.testing.assert_allclose(w, [0.25, 0.25, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_probability_vector([0.5, -0.5], "w")

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            ensure_probability_vector([0.0, 0.0], "w")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ensure_probability_vector([], "w")

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ensure_probability_vector([[1.0]], "w")

    @given(st.lists(st.floats(min_value=0.001, max_value=100), min_size=1, max_size=20))
    def test_always_sums_to_one(self, weights):
        assert ensure_probability_vector(weights, "w").sum() == pytest.approx(1.0)


class TestArrayCoercion:
    def test_complex_coercion(self):
        out = as_complex_array([1, 2, 3])
        assert out.dtype == np.complex128

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            as_complex_array(np.zeros((2, 2)))

    def test_float_coercion(self):
        assert as_float_array([1, 2]).dtype == np.float64


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).normal(size=10)
        b = make_rng(42).normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = make_rng(1)
        assert make_rng(gen) is gen

    def test_derive_seed_deterministic(self):
        assert derive_seed(7, "hop") == derive_seed(7, "hop")

    def test_derive_seed_label_sensitive(self):
        assert derive_seed(7, "hop") != derive_seed(7, "pn")

    def test_derive_seed_root_sensitive(self):
        assert derive_seed(7, "hop") != derive_seed(8, "hop")

    def test_derive_seed_path_not_concat_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc"): labels are delimited.
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_child_rng_independent_labels(self):
        x = child_rng(3, "a").normal(size=5)
        y = child_rng(3, "b").normal(size=5)
        assert not np.allclose(x, y)

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_derive_seed_in_64bit_range(self, root, label):
        s = derive_seed(root, label)
        assert 0 <= s < 2**64
