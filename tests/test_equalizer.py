"""Tests for channel estimation and MMSE equalization over multipath."""

import numpy as np
import pytest

from repro.channel import MultipathChannel, complex_awgn
from repro.core import BHSSConfig, BHSSReceiver, BHSSTransmitter
from repro.sync import equalize, estimate_channel, mmse_equalizer_taps
from repro.utils import signal_power


def training_sequence(n=2048, seed=0):
    rng = np.random.default_rng(seed)
    qpsk = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2)
    return qpsk[rng.integers(0, 4, size=n)]


class TestChannelEstimation:
    def test_recovers_known_channel(self):
        h_true = np.array([1.0, 0.4 - 0.2j, 0.1j, -0.05])
        x = training_sequence()
        y = np.convolve(x, h_true)[: x.size]
        h_est = estimate_channel(y, x, num_taps=4)
        np.testing.assert_allclose(h_est, h_true, atol=1e-9)

    def test_overestimated_length_pads_zeros(self):
        h_true = np.array([1.0, 0.3])
        x = training_sequence(seed=1)
        y = np.convolve(x, h_true)[: x.size]
        h_est = estimate_channel(y, x, num_taps=6)
        np.testing.assert_allclose(h_est[:2], h_true, atol=1e-9)
        np.testing.assert_allclose(h_est[2:], 0.0, atol=1e-9)

    def test_robust_to_noise(self):
        h_true = np.array([0.9, 0.35 + 0.1j, -0.15])
        x = training_sequence(n=4096, seed=2)
        y = np.convolve(x, h_true)[: x.size]
        y = y + complex_awgn(y.size, 0.01, np.random.default_rng(3))
        h_est = estimate_channel(y, x, num_taps=3)
        np.testing.assert_allclose(h_est, h_true, atol=0.02)

    def test_multipath_channel_taps_recovered(self):
        ch = MultipathChannel(num_taps=6, seed=4)
        x = training_sequence(n=4096, seed=5)
        y = ch.apply(x)
        h_est = estimate_channel(y, x, num_taps=6)
        np.testing.assert_allclose(h_est, ch.taps, atol=1e-6)

    def test_short_training_raises(self):
        with pytest.raises(ValueError):
            estimate_channel(np.ones(10, dtype=complex), np.ones(10, dtype=complex), num_taps=8)

    def test_short_received_raises(self):
        x = training_sequence()
        with pytest.raises(ValueError):
            estimate_channel(x[:100], x, num_taps=4)

    def test_bad_num_taps_raises(self):
        x = training_sequence()
        with pytest.raises(ValueError):
            estimate_channel(x, x, num_taps=0)


class TestMmseEqualizer:
    def test_zero_forcing_flattens_channel(self):
        h = np.array([1.0, 0.5, 0.2 - 0.1j])
        w = mmse_equalizer_taps(h, num_taps=128, noise_power=0.0)
        cascade = np.convolve(h, w)
        spec = np.abs(np.fft.fft(cascade, 512))
        np.testing.assert_allclose(spec, 1.0, atol=0.05)

    def test_identity_channel_identity_equalizer(self):
        w = mmse_equalizer_taps(np.array([1.0]), num_taps=32, noise_power=0.0)
        x = training_sequence(n=512, seed=6)
        y = equalize(x, w)
        np.testing.assert_allclose(y[16:-16], x[16:-16], atol=1e-6)

    def test_mmse_regularizes_notches(self):
        # A channel with a deep notch: ZF blows up noise there, MMSE caps it.
        h = np.array([1.0, -0.98])  # near-null at DC... at f=0: 0.02
        w_zf = mmse_equalizer_taps(h, num_taps=256, noise_power=0.0)
        w_mmse = mmse_equalizer_taps(h, num_taps=256, noise_power=0.05)
        assert np.max(np.abs(np.fft.fft(w_mmse))) < np.max(np.abs(np.fft.fft(w_zf)))

    def test_equalizes_signal_through_channel(self):
        ch_taps = np.array([1.0, 0.45 + 0.2j, -0.2, 0.08j])
        x = training_sequence(n=2048, seed=7)
        y = np.convolve(x, ch_taps)[: x.size]
        w = mmse_equalizer_taps(ch_taps, num_taps=128, noise_power=1e-4)
        z = equalize(y, w)
        core = slice(100, -100)
        residual = signal_power(z[core] - x[core])
        assert residual < 0.02 * signal_power(x)

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            mmse_equalizer_taps(np.array([], dtype=complex))
        with pytest.raises(ValueError):
            mmse_equalizer_taps(np.ones(4, dtype=complex), num_taps=4)
        with pytest.raises(ValueError):
            mmse_equalizer_taps(np.ones(4, dtype=complex), num_taps=64, noise_power=-1.0)


class TestEqualizedBhssOverMultipath:
    def test_equalizer_rescues_wideband_hop(self):
        """End-to-end: estimate the channel from the known packet prefix,
        equalize, and recover a wide-bandwidth packet that multipath
        would otherwise corrupt."""
        cfg = BHSSConfig.paper_default(seed=21, payload_bytes=16).with_fixed_bandwidth(10e6)
        tx, rx = BHSSTransmitter(cfg), BHSSReceiver(cfg)
        packet = tx.transmit()
        channel = MultipathChannel(num_taps=10, decay_samples=3.0, seed=22, line_of_sight=0.5)
        faded = channel.apply(packet.waveform)

        plain = rx.receive(faded, phase_track=True)
        sym_errors_plain = int(np.sum(plain.symbols != packet.symbols))

        # training on the first 2048 samples of the (known) transmission
        train_len = 2048
        h_est = estimate_channel(faded[:train_len], packet.waveform[:train_len], num_taps=12)
        w = mmse_equalizer_taps(h_est, num_taps=256, noise_power=1e-3)
        result = rx.receive(equalize(faded, w), phase_track=True)
        sym_errors_eq = int(np.sum(result.symbols != packet.symbols))

        assert sym_errors_eq <= sym_errors_plain
        assert result.accepted
