"""Unit tests for repro.dsp.windows (cross-checked against scipy)."""

import numpy as np
import pytest

from repro.dsp import blackman, get_window, hamming, hann, kaiser, kaiser_beta, rectangular

scipy_signal = pytest.importorskip("scipy.signal")


class TestShapes:
    @pytest.mark.parametrize("fn", [rectangular, hamming, hann, blackman])
    def test_length(self, fn):
        assert fn(33).shape == (33,)

    @pytest.mark.parametrize("fn", [hamming, hann, blackman])
    def test_symmetry(self, fn):
        w = fn(41)
        np.testing.assert_allclose(w, w[::-1], atol=1e-12)

    @pytest.mark.parametrize("fn", [rectangular, hamming, hann, blackman])
    def test_single_point(self, fn):
        w = fn(1)
        assert w.shape == (1,)

    def test_zero_length_raises(self):
        with pytest.raises(ValueError):
            hamming(0)

    @pytest.mark.parametrize("fn", [hamming, hann, blackman])
    def test_peak_at_centre(self, fn):
        w = fn(51)
        assert np.argmax(w) == 25

    def test_kaiser_symmetry(self):
        w = kaiser(41, 8.0)
        np.testing.assert_allclose(w, w[::-1], atol=1e-12)


class TestAgainstScipy:
    def test_hamming_matches(self):
        np.testing.assert_allclose(hamming(64), scipy_signal.get_window(("hamming"), 64, fftbins=False), atol=1e-12)

    def test_hann_matches(self):
        np.testing.assert_allclose(hann(63), scipy_signal.get_window("hann", 63, fftbins=False), atol=1e-12)

    def test_blackman_matches(self):
        np.testing.assert_allclose(blackman(128), scipy_signal.get_window("blackman", 128, fftbins=False), atol=1e-12)

    def test_kaiser_matches(self):
        np.testing.assert_allclose(
            kaiser(55, 9.5), scipy_signal.get_window(("kaiser", 9.5), 55, fftbins=False), rtol=1e-9
        )

    def test_periodic_hann_matches(self):
        np.testing.assert_allclose(hann(64, periodic=True), scipy_signal.get_window("hann", 64, fftbins=True), atol=1e-12)


class TestKaiserBeta:
    def test_high_attenuation(self):
        assert kaiser_beta(70) == pytest.approx(0.1102 * (70 - 8.7))

    def test_mid_attenuation(self):
        assert kaiser_beta(30) == pytest.approx(0.5842 * 9**0.4 + 0.07886 * 9)

    def test_low_attenuation_zero(self):
        assert kaiser_beta(10) == 0.0


class TestGetWindow:
    def test_by_name(self):
        np.testing.assert_allclose(get_window("hamming", 16), hamming(16))

    def test_name_case_insensitive(self):
        np.testing.assert_allclose(get_window("Hann", 16), hann(16))

    def test_kaiser_tuple(self):
        np.testing.assert_allclose(get_window(("kaiser", 6.0), 16), kaiser(16, 6.0))

    def test_custom_array_passthrough(self):
        custom = np.linspace(0, 1, 8)
        np.testing.assert_allclose(get_window(custom, 8), custom)

    def test_custom_array_wrong_length_raises(self):
        with pytest.raises(ValueError):
            get_window(np.ones(4), 8)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown window"):
            get_window("gaussian", 8)

    def test_unknown_tuple_raises(self):
        with pytest.raises(ValueError):
            get_window(("chebwin", 100), 8)
