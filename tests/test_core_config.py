"""Unit tests for BHSSConfig."""

import numpy as np
import pytest

from repro.core import BHSSConfig
from repro.dsp import HalfSinePulse, RectPulse
from repro.hopping import BandwidthSet


class TestConstruction:
    def test_paper_default(self):
        cfg = BHSSConfig.paper_default()
        assert cfg.sample_rate == 20e6
        assert len(cfg.bandwidth_set) == 7
        assert cfg.filtering
        assert isinstance(cfg.pulse, HalfSinePulse)

    def test_processing_gain(self):
        assert BHSSConfig.paper_default().processing_gain_db == pytest.approx(9.03, abs=0.01)

    def test_chips_per_symbol(self):
        assert BHSSConfig.paper_default().chips_per_symbol == 32

    def test_pulse_by_name(self):
        cfg = BHSSConfig.paper_default(pulse="rect")
        assert isinstance(cfg.pulse, RectPulse)

    def test_bad_symbols_per_hop_raises(self):
        with pytest.raises(ValueError):
            BHSSConfig.paper_default(symbols_per_hop=0)

    def test_bad_payload_raises(self):
        with pytest.raises(ValueError):
            BHSSConfig.paper_default(payload_bytes=300)

    def test_bad_excision_taps_raise(self):
        with pytest.raises(ValueError):
            BHSSConfig.paper_default(excision_taps=8)
        with pytest.raises(ValueError):
            BHSSConfig.paper_default(excision_taps=256)

    def test_bad_transition_raises(self):
        with pytest.raises(ValueError):
            BHSSConfig.paper_default(lpf_transition_fraction=0.0)

    def test_fixed_bandwidth_must_be_in_set(self):
        with pytest.raises(ValueError):
            BHSSConfig.paper_default(fixed_bandwidth=3e6)


class TestDerivedCopies:
    def test_with_fixed_bandwidth(self):
        cfg = BHSSConfig.paper_default().with_fixed_bandwidth(2.5e6)
        assert cfg.fixed_bandwidth == 2.5e6
        sched = cfg.build_schedule()
        assert sched.is_fixed
        assert np.all(sched.bandwidth_sequence(10) == 2.5e6)

    def test_without_filtering(self):
        cfg = BHSSConfig.paper_default().without_filtering()
        assert not cfg.filtering

    def test_with_pattern_clears_fixed(self):
        cfg = BHSSConfig.paper_default().with_fixed_bandwidth(5e6).with_pattern("parabolic")
        assert cfg.fixed_bandwidth is None

    def test_copies_do_not_mutate_original(self):
        cfg = BHSSConfig.paper_default()
        cfg.without_filtering()
        assert cfg.filtering


class TestBuilders:
    def test_same_seed_same_schedule(self):
        a = BHSSConfig.paper_default(seed=5).build_schedule()
        b = BHSSConfig.paper_default(seed=5).build_schedule()
        np.testing.assert_array_equal(a.bandwidth_sequence(50), b.bandwidth_sequence(50))

    def test_modem_scrambler_tied_to_seed(self):
        syms = np.arange(16)
        a = BHSSConfig.paper_default(seed=1).build_modem().spread(syms)
        b = BHSSConfig.paper_default(seed=1).build_modem().spread(syms)
        c = BHSSConfig.paper_default(seed=2).build_modem().spread(syms)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_frame_symbols(self):
        cfg = BHSSConfig.paper_default(payload_bytes=16)
        assert cfg.frame_symbols() == cfg.frame_format.frame_symbols(16)
        assert cfg.frame_symbols(4) == cfg.frame_format.frame_symbols(4)

    def test_custom_bandwidth_set(self):
        bs = BandwidthSet((10e6, 2.5e6), sample_rate=20e6)
        cfg = BHSSConfig(bandwidth_set=bs, pattern=np.array([0.5, 0.5]))
        assert len(cfg.bandwidth_set) == 2
