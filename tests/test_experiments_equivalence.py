"""Pre/post-refactor equivalence of the figure pipelines.

The experiment functions were moved onto ``run_sweep`` grids and
spec-built components (``BHSSConfig.from_dict`` + the jammer registry).
These golden hashes were captured from the pre-refactor implementations at
the same seeds; matching them proves the declarative rewrite is
bit-identical, serially and across the worker pool.
"""

import pytest

from repro.analysis.experiments import figure07, figure09, figure10, figure11
from repro.runtime import ParallelExecutor, stable_hash

GOLDEN = {
    "figure07": "54ecfe82b40dc635bb19c0f101da11f6ab7cb66166a1c315121c4db57e2cb22d",
    "figure09": "2a91deeaf59594dbabf5031b77c1ddc7934cebf3cb0ff7617812d7fa9a40df16",
    "figure10": "12889de02daf3b885cd5ec6b93e7e8c664d6b93bb2bcf4bb70b3734380e3b6cd",
    "figure11": "6ca7136eaf0f148f8a6b6f5e53435df111ebb409c511d47cb1dbf953d5cb2abe",
}


def _digest(result) -> str:
    return stable_hash({"columns": result.columns, "rows": result.rows})


@pytest.mark.parametrize(
    "name, fn",
    [
        ("figure07", figure07),
        ("figure09", figure09),
        ("figure10", figure10),
        ("figure11", figure11),
    ],
)
def test_analytic_figures_match_pre_refactor_golden(name, fn, monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert _digest(fn()) == GOLDEN[name]


def test_figure09_parallel_matches_golden(monkeypatch):
    if not ParallelExecutor.fork_available():
        pytest.skip("fork start method unavailable")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    result = figure09()
    assert len(result.rows) == 21
    assert _digest(result) == GOLDEN["figure09"]
