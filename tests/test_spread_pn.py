"""Unit tests for PN sequences, LFSRs, and Gold codes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spread import (
    LFSR,
    MAXIMAL_TAPS,
    autocorrelation,
    gold_code,
    gold_family,
    lfsr_sequence,
    random_pn_sequence,
)


class TestLFSR:
    @pytest.mark.parametrize("degree", [3, 5, 7, 9, 10])
    def test_maximal_period(self, degree):
        reg = LFSR(degree)
        period = reg.period
        start = reg.state
        seen_start_again = 0
        for _ in range(period):
            reg.step()
        assert reg.state == start  # returns to initial state after 2^n - 1

    @pytest.mark.parametrize("degree", [4, 6, 8])
    def test_all_nonzero_states_visited(self, degree):
        reg = LFSR(degree)
        states = set()
        for _ in range(reg.period):
            states.add(reg.state)
            reg.step()
        assert len(states) == reg.period

    def test_balance_property(self):
        # m-sequence has 2^(n-1) ones and 2^(n-1)-1 zeros per period.
        bits = LFSR(8).bits(255)
        assert bits.sum() == 128

    def test_chips_are_pm_one(self):
        chips = LFSR(5).chips(31)
        assert set(np.unique(chips)) <= {-1.0, 1.0}

    def test_unknown_degree_raises(self):
        with pytest.raises(ValueError):
            LFSR(17)

    def test_explicit_taps_allowed(self):
        reg = LFSR(17, taps=(17, 14))  # known primitive polynomial
        assert reg.degree == 17

    def test_bad_state_raises(self):
        with pytest.raises(ValueError):
            LFSR(4, state=0)
        with pytest.raises(ValueError):
            LFSR(4, state=16)

    def test_bad_taps_raise(self):
        with pytest.raises(ValueError):
            LFSR(4, taps=(5,))

    def test_degree_too_small_raises(self):
        with pytest.raises(ValueError):
            LFSR(1, taps=(1,))

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            LFSR(4).bits(-1)

    def test_deterministic_from_state(self):
        a = LFSR(6, state=5).bits(100)
        b = LFSR(6, state=5).bits(100)
        np.testing.assert_array_equal(a, b)


class TestMSequenceAutocorrelation:
    @pytest.mark.parametrize("degree", [5, 7, 9])
    def test_two_valued_autocorrelation(self, degree):
        seq = lfsr_sequence(degree)
        corr = autocorrelation(seq, circular=True)
        n = seq.size
        assert corr[0] == pytest.approx(1.0)
        np.testing.assert_allclose(corr[1:], -1.0 / n, atol=1e-9)

    def test_noncircular_autocorrelation_peak(self):
        seq = lfsr_sequence(6)
        corr = autocorrelation(seq, circular=False)
        assert corr[0] == pytest.approx(1.0)
        assert np.all(np.abs(corr[1:]) < 0.3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            autocorrelation(np.array([]))


class TestRandomPn:
    def test_deterministic(self):
        np.testing.assert_array_equal(random_pn_sequence(64, 9), random_pn_sequence(64, 9))

    def test_seed_sensitivity(self):
        assert not np.array_equal(random_pn_sequence(64, 1), random_pn_sequence(64, 2))

    def test_values(self):
        seq = random_pn_sequence(1000, 3)
        assert set(np.unique(seq)) == {-1.0, 1.0}

    def test_approximately_balanced(self):
        seq = random_pn_sequence(10_000, 4)
        assert abs(seq.mean()) < 0.05

    def test_whiteness(self):
        seq = random_pn_sequence(8192, 5)
        corr = autocorrelation(seq)
        assert np.max(np.abs(corr[1:])) < 0.06

    def test_zero_length(self):
        assert random_pn_sequence(0, 1).size == 0

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            random_pn_sequence(-1, 1)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_any_seed_works(self, seed):
        seq = random_pn_sequence(16, seed)
        assert seq.size == 16


class TestGoldCodes:
    def test_family_size(self):
        fam = gold_family(5)
        assert fam.shape == (33, 31)  # 2^5 + 1 codes of length 2^5 - 1

    def test_codes_are_pm_one(self):
        fam = gold_family(5)
        assert set(np.unique(fam)) <= {-1.0, 1.0}

    def test_cross_correlation_bound(self):
        # Gold bound for odd degree n: |theta| <= 2^((n+1)/2) + 1.
        degree = 5
        fam = gold_family(degree)
        n = fam.shape[1]
        bound = 2 ** ((degree + 1) // 2) + 1
        rng = np.random.default_rng(0)
        picks = rng.integers(0, fam.shape[0], size=(20, 2))
        for i, j in picks:
            if i == j:
                continue
            a, b = fam[i], fam[j]
            spec = np.fft.fft(a) * np.conj(np.fft.fft(b))
            cross = np.fft.ifft(spec).real
            assert np.max(np.abs(cross)) <= bound + 1e-6

    def test_gold_code_lookup(self):
        np.testing.assert_array_equal(gold_code(5, 0), gold_family(5)[0])

    def test_bad_index_raises(self):
        with pytest.raises(ValueError):
            gold_code(5, 99)

    def test_unsupported_degree_raises(self):
        with pytest.raises(ValueError):
            gold_family(8)
