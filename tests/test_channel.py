"""Unit tests for the channel substrate (AWGN, impairments, medium)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel import (
    IDEAL_FRONT_END,
    Impairments,
    Medium,
    MediumSource,
    add_awgn,
    complex_awgn,
    noise_power_for_snr,
)
from repro.utils import signal_power

FS = 20e6


class TestComplexAwgn:
    def test_power_calibration(self):
        noise = complex_awgn(100_000, 3.7, rng=0)
        assert signal_power(noise) == pytest.approx(3.7, rel=0.03)

    def test_circular_symmetry(self):
        noise = complex_awgn(100_000, 1.0, rng=1)
        assert np.var(noise.real) == pytest.approx(np.var(noise.imag), rel=0.05)
        assert abs(np.mean(noise)) < 0.02

    def test_zero_power(self):
        noise = complex_awgn(100, 0.0, rng=2)
        np.testing.assert_array_equal(noise, 0)

    def test_zero_samples(self):
        assert complex_awgn(0, 1.0).size == 0

    def test_negative_samples_raises(self):
        with pytest.raises(ValueError):
            complex_awgn(-1, 1.0)

    def test_negative_power_raises(self):
        with pytest.raises(ValueError):
            complex_awgn(10, -1.0)

    def test_deterministic_with_seed(self):
        np.testing.assert_array_equal(complex_awgn(50, 1.0, rng=7), complex_awgn(50, 1.0, rng=7))


class TestAddAwgn:
    def test_snr_calibration(self):
        n = np.arange(100_000)
        signal = np.exp(2j * np.pi * 0.01 * n)
        noisy = add_awgn(signal, 10.0, rng=3)
        noise = noisy - signal
        snr = signal_power(signal) / signal_power(noise)
        assert 10 * np.log10(snr) == pytest.approx(10.0, abs=0.2)

    def test_reference_power_override(self):
        signal = np.ones(50_000, dtype=complex) * 0.1  # power 0.01
        noisy = add_awgn(signal, 0.0, rng=4, reference_power=1.0)
        noise_p = signal_power(noisy - signal)
        assert noise_p == pytest.approx(1.0, rel=0.05)

    def test_empty_signal(self):
        assert add_awgn(np.array([], dtype=complex), 10.0).size == 0

    def test_silent_signal_raises(self):
        with pytest.raises(ValueError):
            add_awgn(np.zeros(10, dtype=complex), 10.0)

    def test_noise_power_for_snr(self):
        x = np.ones(100, dtype=complex) * 2.0  # power 4
        assert noise_power_for_snr(x, 10.0) == pytest.approx(0.4)

    @given(st.floats(min_value=-20, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_snr_property(self, snr_db):
        rng = np.random.default_rng(5)
        signal = rng.normal(size=40_000) + 1j * rng.normal(size=40_000)
        noisy = add_awgn(signal, snr_db, rng=6)
        measured = 10 * np.log10(signal_power(signal) / signal_power(noisy - signal))
        assert measured == pytest.approx(snr_db, abs=0.5)


class TestImpairments:
    def test_ideal_is_noop(self):
        x = np.exp(2j * np.pi * 0.01 * np.arange(256))
        out = IDEAL_FRONT_END.apply(x, FS)
        np.testing.assert_array_equal(out, x)
        assert IDEAL_FRONT_END.is_ideal

    def test_cfo_shifts_spectrum(self):
        x = np.ones(8192, dtype=complex)
        imp = Impairments(cfo_hz=1e6)
        out = imp.apply(x, FS)
        spec = np.fft.fftshift(np.abs(np.fft.fft(out)))
        freqs = np.fft.fftshift(np.fft.fftfreq(8192, 1 / FS))
        assert freqs[np.argmax(spec)] == pytest.approx(1e6, abs=2 * FS / 8192)

    def test_phase_rotation(self):
        x = np.ones(16, dtype=complex)
        out = Impairments(phase_rad=np.pi / 2).apply(x, FS)
        np.testing.assert_allclose(out, 1j * x, atol=1e-12)

    def test_timing_offset_delays(self):
        x = np.zeros(128, dtype=complex)
        x[64] = 1.0
        out = Impairments(timing_offset_samples=2.0).apply(x, FS)
        assert np.argmax(np.abs(out)) == 66

    def test_clock_skew_changes_length_slightly(self):
        x = np.ones(100_000, dtype=complex)
        out = Impairments(clock_skew_ppm=100.0).apply(x, FS)
        assert 0 < out.size - x.size < 20 or 0 < x.size - out.size < 20 or out.size == x.size

    def test_power_preserved_under_cfo_phase(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=4096) + 1j * rng.normal(size=4096)
        out = Impairments(cfo_hz=3e3, phase_rad=1.0).apply(x, FS)
        assert signal_power(out) == pytest.approx(signal_power(x), rel=1e-9)

    def test_typical_sdr_in_range(self):
        imp = Impairments.typical_sdr(rng=np.random.default_rng(9))
        assert abs(imp.cfo_hz) <= 5e3
        assert abs(imp.phase_rad) <= np.pi
        assert 0 <= imp.timing_offset_samples <= 1.0
        assert abs(imp.clock_skew_ppm) <= 2.5
        assert not imp.is_ideal

    def test_empty_signal(self):
        out = Impairments(cfo_hz=1.0).apply(np.array([], dtype=complex), FS)
        assert out.size == 0

    def test_bad_sample_rate_raises(self):
        with pytest.raises(ValueError):
            Impairments(cfo_hz=1.0).apply(np.ones(4, dtype=complex), 0.0)


class TestMedium:
    def unit_signal(self, n=50_000, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        return x / np.sqrt(signal_power(x))

    def test_snr_calibration(self):
        medium = Medium(FS)
        s = self.unit_signal()
        block = medium.combine(s, snr_db=7.0, rng=1)
        noise = block.samples - s
        assert 10 * np.log10(1.0 / signal_power(noise)) == pytest.approx(7.0, abs=0.3)
        assert block.snr_db == pytest.approx(7.0, abs=1e-9)

    def test_sjr_calibration(self):
        medium = Medium(FS)
        s = self.unit_signal(seed=2)
        j = self.unit_signal(seed=3)
        block = medium.combine(s, snr_db=100.0, jammer=j, sjr_db=-12.0, rng=4)
        jam_component = block.samples - s - (block.samples - s - j * np.sqrt(10 ** 1.2))
        # verify through the reported powers instead of reconstructing
        assert block.sjr_db == pytest.approx(-12.0, abs=1e-9)
        total_excess = signal_power(block.samples) - 1.0
        assert total_excess == pytest.approx(10 ** 1.2, rel=0.1)

    def test_no_jammer_reports_inf_sjr(self):
        medium = Medium(FS)
        block = medium.combine(self.unit_signal(seed=5), snr_db=10.0, rng=6)
        assert block.sjr_db == float("inf")
        assert block.jammer_power == 0.0

    def test_jammer_delay_zero_pads_head(self):
        medium = Medium(FS)
        s = np.ones(1000, dtype=complex)
        j = np.ones(1000, dtype=complex)
        block = medium.combine(s, snr_db=300.0, jammer=j, sjr_db=0.0, jammer_delay_samples=400, rng=7)
        head = block.samples[:400] - s[:400]
        tail = block.samples[400:] - s[400:]
        assert signal_power(head) < 1e-6
        assert signal_power(tail) == pytest.approx(1.0, rel=0.05)

    def test_negative_delay_raises(self):
        medium = Medium(FS)
        with pytest.raises(ValueError, match=r"jammer_delay_samples: must be >= 0, got -1"):
            medium.combine(np.ones(10, dtype=complex), 10.0, jammer=np.ones(10, dtype=complex), jammer_delay_samples=-1)

    def test_negative_delay_raises_even_without_jammer(self):
        # the delay field is validated unconditionally — a bad value must
        # not slip through just because the jammer happens to be None
        medium = Medium(FS)
        with pytest.raises(ValueError, match=r"jammer_delay_samples: must be >= 0, got -7"):
            medium.combine(np.ones(10, dtype=complex), 10.0, jammer_delay_samples=-7)

    def test_non_integer_delay_raises(self):
        medium = Medium(FS)
        with pytest.raises(ValueError, match=r"jammer_delay_samples: expected an integer"):
            medium.combine(
                np.ones(10, dtype=complex), 10.0,
                jammer=np.ones(10, dtype=complex), jammer_delay_samples=2.5,
            )
        with pytest.raises(ValueError, match=r"jammer_delay_samples: expected an integer"):
            medium.combine(
                np.ones(10, dtype=complex), 10.0,
                jammer=np.ones(10, dtype=complex), jammer_delay_samples=True,
            )

    def test_short_jammer_padded(self):
        medium = Medium(FS)
        s = np.ones(1000, dtype=complex)
        j = np.ones(100, dtype=complex)
        block = medium.combine(s, snr_db=300.0, jammer=j, sjr_db=0.0, rng=8)
        assert signal_power(block.samples[500:] - s[500:]) < 1e-6

    def test_long_jammer_truncated(self):
        medium = Medium(FS)
        s = np.ones(100, dtype=complex)
        j = np.ones(1000, dtype=complex)
        block = medium.combine(s, snr_db=300.0, jammer=j, sjr_db=0.0, rng=9)
        assert block.samples.size == 100

    def test_empty_signal_raises(self):
        with pytest.raises(ValueError):
            Medium(FS).combine(np.array([], dtype=complex), 10.0)

    def test_zero_power_signal_raises(self):
        with pytest.raises(ValueError):
            Medium(FS).combine(np.zeros(10, dtype=complex), 10.0)

    def test_deterministic_with_seed(self):
        medium = Medium(FS)
        s = self.unit_signal(seed=10)
        a = medium.combine(s, snr_db=5.0, rng=11).samples
        b = medium.combine(s, snr_db=5.0, rng=11).samples
        np.testing.assert_array_equal(a, b)


class TestMediumSuperpose:
    """The N-source generalization behind network-scale runs."""

    def unit_signal(self, n=50_000, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        return x / np.sqrt(signal_power(x))

    def test_combine_is_superpose_with_one_jammer_source(self):
        # the equivalence wall: the classic entry point and the N-source
        # form must agree bit-for-bit, including the drawn noise
        medium = Medium(FS)
        s = self.unit_signal(seed=20)
        j = self.unit_signal(seed=21)
        for sjr_db, delay in [(-12.0, 0), (0.0, 137), (8.5, 400)]:
            a = medium.combine(s, snr_db=9.0, jammer=j, sjr_db=sjr_db, jammer_delay_samples=delay, rng=22)
            b = medium.superpose(
                s, snr_db=9.0,
                sources=(MediumSource(samples=j, power_db=-sjr_db, delay_samples=delay, kind="jammer"),),
                rng=22,
            )
            np.testing.assert_array_equal(a.samples, b.samples)
            assert a.jammer_power == b.jammer_power
            assert a.noise_power == b.noise_power

    def test_zero_sources_is_unjammed_combine(self):
        medium = Medium(FS)
        s = self.unit_signal(seed=23)
        a = medium.combine(s, snr_db=6.0, rng=24)
        b = medium.superpose(s, snr_db=6.0, rng=24)
        np.testing.assert_array_equal(a.samples, b.samples)
        assert b.interference_power == 0.0
        assert b.sir_db == float("inf")

    def test_interference_power_calibration(self):
        medium = Medium(FS)
        s = self.unit_signal(seed=25)
        other = self.unit_signal(seed=26)
        block = medium.superpose(
            s, snr_db=300.0,
            sources=(MediumSource(samples=other, power_db=-18.0),),
            rng=27,
        )
        # the realized cross-link power lands 18 dB under the signal
        assert block.sir_db == pytest.approx(18.0, abs=1e-9)
        assert signal_power(block.samples - s) == pytest.approx(10 ** -1.8, rel=0.05)
        assert block.jammer_power == 0.0

    def test_multi_source_buckets_and_order(self):
        medium = Medium(FS)
        s = self.unit_signal(seed=28)
        interferer = self.unit_signal(seed=29)
        jammer = self.unit_signal(seed=30)
        block = medium.superpose(
            s, snr_db=300.0,
            sources=(
                MediumSource(samples=interferer, power_db=-20.0, label="links[1]"),
                MediumSource(samples=jammer, power_db=10.0, kind="jammer"),
            ),
            rng=31,
        )
        assert block.interference_power == pytest.approx(10 ** -2.0)
        assert block.jammer_power == pytest.approx(10 ** 1.0)
        assert block.sjr_db == pytest.approx(-10.0, abs=1e-9)
        # sources add linearly: the composite equals the two singles' sum
        one = medium.superpose(
            s, snr_db=300.0,
            sources=(MediumSource(samples=interferer, power_db=-20.0),), rng=31,
        )
        two = medium.superpose(
            s, snr_db=300.0,
            sources=(MediumSource(samples=jammer, power_db=10.0, kind="jammer"),), rng=31,
        )
        np.testing.assert_allclose(block.samples, one.samples + two.samples - s, rtol=0, atol=1e-9)

    def test_source_delay_and_truncation(self):
        medium = Medium(FS)
        s = np.ones(1000, dtype=complex)
        src = MediumSource(samples=np.ones(2000, dtype=complex), power_db=0.0, delay_samples=600)
        block = medium.superpose(s, snr_db=300.0, sources=(src,), rng=32)
        assert block.samples.size == 1000
        assert signal_power(block.samples[:600] - s[:600]) < 1e-12
        assert signal_power(block.samples[600:] - s[600:]) == pytest.approx(1.0, rel=0.05)

    def test_reference_power_override(self):
        medium = Medium(FS)
        s = 2.0 * self.unit_signal(seed=33)  # actual power 4x the reference
        block = medium.superpose(s, snr_db=10.0, rng=34, reference_power=1.0)
        assert block.signal_power == 1.0
        assert block.noise_power == pytest.approx(0.1)

    def test_source_validation_names_the_label(self):
        with pytest.raises(ValueError, match=r"links\[3\]\.delay_samples: must be >= 0"):
            MediumSource(samples=np.ones(4, dtype=complex), power_db=0.0, delay_samples=-2, label="links[3]")
        with pytest.raises(ValueError, match=r"source\.power_db: expected a number"):
            MediumSource(samples=np.ones(4, dtype=complex), power_db="loud")
        with pytest.raises(ValueError, match=r"source\.kind: must be 'interference' or 'jammer'"):
            MediumSource(samples=np.ones(4, dtype=complex), power_db=0.0, kind="friendly")

    def test_non_source_entry_rejected(self):
        with pytest.raises(ValueError, match=r"sources: expected MediumSource"):
            Medium(FS).superpose(np.ones(10, dtype=complex), 10.0, sources=(np.ones(10),), rng=0)
