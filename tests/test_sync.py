"""Unit tests for the synchronization substrate (Costas / Gardner / preamble)."""

import numpy as np
import pytest

from repro.dsp import fractional_delay
from repro.sync import (
    CostasLoop,
    GardnerTimingRecovery,
    correlate_preamble,
    detect_preamble,
    estimate_cfo_from_preamble,
    gardner_error,
)

QPSK = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2)


def qpsk_symbols(n, seed=0):
    rng = np.random.default_rng(seed)
    return QPSK[rng.integers(0, 4, size=n)]


class TestCostasLoop:
    def test_corrects_constant_phase_offset(self):
        syms = qpsk_symbols(2000)
        rotated = syms * np.exp(1j * 0.6)
        out = CostasLoop(loop_bandwidth=0.05).process(rotated)
        # after convergence the residual rotation (mod pi/2) is tiny
        tail = out.corrected[1000:]
        err = np.angle(tail**4).mean() / 4  # 4th-power removes data
        assert abs(err) < 0.05

    def test_tracks_frequency_offset(self):
        syms = qpsk_symbols(5000, seed=1)
        f = 0.002  # cycles/sample
        n = np.arange(syms.size)
        received = syms * np.exp(2j * np.pi * f * n)
        out = CostasLoop(loop_bandwidth=0.05).process(received)
        assert out.final_frequency == pytest.approx(2 * np.pi * f, rel=0.1)

    def test_no_offset_stays_locked(self):
        syms = qpsk_symbols(1000, seed=2)
        out = CostasLoop().process(syms)
        np.testing.assert_allclose(out.corrected[500:], syms[500:], atol=0.2)

    def test_state_persists_across_blocks(self):
        syms = qpsk_symbols(4000, seed=3)
        n = np.arange(syms.size)
        f = 0.001
        received = syms * np.exp(2j * np.pi * f * n)
        loop = CostasLoop(loop_bandwidth=0.05)
        loop.process(received[:2000])
        out2 = loop.process(received[2000:])
        assert out2.final_frequency == pytest.approx(2 * np.pi * f, rel=0.15)

    def test_reset_clears_state(self):
        loop = CostasLoop()
        loop.process(qpsk_symbols(500) * np.exp(1j * 1.0))
        loop.reset()
        assert loop._phase == 0.0 and loop._freq == 0.0

    def test_amplitude_invariance(self):
        syms = qpsk_symbols(3000, seed=4) * 37.0
        n = np.arange(syms.size)
        received = syms * np.exp(2j * np.pi * 0.002 * n)
        out = CostasLoop(loop_bandwidth=0.05).process(received)
        assert out.final_frequency == pytest.approx(2 * np.pi * 0.002, rel=0.15)

    def test_works_under_moderate_noise(self):
        rng = np.random.default_rng(5)
        syms = qpsk_symbols(6000, seed=5)
        n = np.arange(syms.size)
        noise = 0.1 * (rng.normal(size=syms.size) + 1j * rng.normal(size=syms.size))
        received = syms * np.exp(2j * np.pi * 0.0015 * n) + noise
        out = CostasLoop(loop_bandwidth=0.03).process(received)
        assert out.final_frequency == pytest.approx(2 * np.pi * 0.0015, rel=0.2)

    def test_bad_bandwidth_raises(self):
        with pytest.raises(ValueError):
            CostasLoop(loop_bandwidth=0.0)
        with pytest.raises(ValueError):
            CostasLoop(loop_bandwidth=0.9)

    def test_empty_input(self):
        out = CostasLoop().process(np.array([], dtype=complex))
        assert out.corrected.size == 0
        assert out.final_frequency == 0.0


def shaped_qpsk(n_sym, sps, seed=0):
    """QPSK symbol stream with raised-cosine-ish (half-sine) shaping."""
    from repro.dsp import HalfSinePulse

    syms = qpsk_symbols(n_sym, seed=seed)
    pulse = HalfSinePulse().waveform(sps)
    wave = np.zeros(n_sym * sps, dtype=complex)
    wave[::sps] = syms
    return np.convolve(wave, pulse)[: n_sym * sps], syms


class TestGardner:
    def test_error_sign_convention(self):
        # sampling late: mid-sample correlates with the direction of change
        assert gardner_error(1 + 0j, 0.5 + 0j, -1 + 0j) == pytest.approx(-1.0)
        assert gardner_error(-1 + 0j, 0.5 + 0j, 1 + 0j) == pytest.approx(1.0)

    def test_zero_error_at_perfect_timing(self):
        assert gardner_error(1 + 0j, 0.0 + 0j, -1 + 0j) == 0.0

    def test_recovers_fractional_offset(self):
        sps = 4
        wave, _syms = shaped_qpsk(800, sps, seed=6)
        delayed = fractional_delay(wave, 1.7)
        loop = GardnerTimingRecovery(sps=sps, loop_bandwidth=0.03)
        result = loop.process(delayed)
        # steady-state positions should land ~1.7 samples late modulo sps
        # relative to the pulse peak; verify via decision quality instead:
        tail = np.array(result.symbols[400:])
        evm = np.mean(np.abs(np.abs(tail.real) - np.median(np.abs(tail.real))))
        assert evm < 0.25 * np.median(np.abs(tail.real))

    def test_symbol_count_close_to_expected(self):
        sps = 4
        wave, syms = shaped_qpsk(500, sps, seed=7)
        result = GardnerTimingRecovery(sps=sps).process(wave)
        assert abs(result.symbols.size - 500) < 10

    def test_errors_shrink_after_convergence(self):
        sps = 4
        wave, _ = shaped_qpsk(1000, sps, seed=8)
        delayed = fractional_delay(wave, 2.3)
        result = GardnerTimingRecovery(sps=sps, loop_bandwidth=0.05).process(delayed)
        early = np.abs(result.errors[:100]).mean()
        late = np.abs(result.errors[-200:]).mean()
        assert late <= early + 0.1

    def test_sps_one_raises(self):
        with pytest.raises(ValueError):
            GardnerTimingRecovery(sps=1)

    def test_empty_signal(self):
        result = GardnerTimingRecovery(sps=2).process(np.array([], dtype=complex))
        assert result.symbols.size == 0


class TestPreamble:
    def make_ref(self, n=128, seed=9):
        rng = np.random.default_rng(seed)
        return QPSK[rng.integers(0, 4, size=n)]

    def test_correlation_peak_at_true_offset(self):
        ref = self.make_ref()
        rng = np.random.default_rng(10)
        noise = 0.05 * (rng.normal(size=1000) + 1j * rng.normal(size=1000))
        received = noise.copy()
        received[300 : 300 + ref.size] += ref
        corr = correlate_preamble(received, ref)
        assert np.argmax(corr) == 300

    def test_detect_returns_start(self):
        ref = self.make_ref()
        received = np.concatenate([np.zeros(137, dtype=complex), ref, np.zeros(50, dtype=complex)])
        det = detect_preamble(received, ref, threshold=0.5)
        assert det.found and det.start == 137
        assert det.peak == pytest.approx(1.0, abs=1e-6)

    def test_detect_missing_preamble(self):
        ref = self.make_ref()
        rng = np.random.default_rng(11)
        noise = rng.normal(size=600) + 1j * rng.normal(size=600)
        det = detect_preamble(noise, ref, threshold=0.6)
        assert not det.found
        assert det.start is None

    def test_detect_under_strong_noise(self):
        ref = self.make_ref(n=256)
        rng = np.random.default_rng(12)
        noise = 0.7 * (rng.normal(size=2000) + 1j * rng.normal(size=2000))
        received = noise.copy()
        received[700 : 700 + ref.size] += ref
        det = detect_preamble(received, ref, threshold=0.3)
        assert det.found and abs(det.start - 700) <= 1

    def test_received_shorter_than_ref(self):
        ref = self.make_ref()
        det = detect_preamble(ref[:10], ref, threshold=0.5)
        assert not det.found

    def test_bad_threshold_raises(self):
        ref = self.make_ref()
        with pytest.raises(ValueError):
            detect_preamble(ref, ref, threshold=0.0)

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError):
            correlate_preamble(np.ones(10, dtype=complex), np.array([], dtype=complex))

    def test_correlation_invariant_to_scale(self):
        ref = self.make_ref()
        received = np.concatenate([np.zeros(50, dtype=complex), ref * 100.0])
        corr = correlate_preamble(received, ref)
        assert corr[50] == pytest.approx(1.0, abs=1e-6)


class TestCfoEstimation:
    def test_estimates_positive_cfo(self):
        fs = 1e6
        ref = np.repeat(QPSK[[0, 1, 2, 3] * 64], 2)  # 512-sample preamble
        cfo = 1200.0
        n = np.arange(ref.size)
        received = ref * np.exp(2j * np.pi * cfo / fs * n)
        est = estimate_cfo_from_preamble(received, ref, fs)
        assert est == pytest.approx(cfo, rel=0.05)

    def test_estimates_negative_cfo(self):
        fs = 1e6
        ref = np.repeat(QPSK[[0, 3, 1, 2] * 64], 2)
        cfo = -800.0
        n = np.arange(ref.size)
        received = ref * np.exp(2j * np.pi * cfo / fs * n)
        est = estimate_cfo_from_preamble(received, ref, fs)
        assert est == pytest.approx(cfo, rel=0.05)

    def test_zero_cfo(self):
        fs = 1e6
        ref = np.repeat(QPSK[[2, 1, 0, 3] * 32], 2)
        est = estimate_cfo_from_preamble(ref, ref, fs)
        assert abs(est) < 10.0

    def test_robust_to_noise(self):
        fs = 1e6
        rng = np.random.default_rng(13)
        ref = np.repeat(QPSK[rng.integers(0, 4, size=256)], 2)
        cfo = 2000.0
        n = np.arange(ref.size)
        received = ref * np.exp(2j * np.pi * cfo / fs * n)
        received = received + 0.2 * (rng.normal(size=ref.size) + 1j * rng.normal(size=ref.size))
        est = estimate_cfo_from_preamble(received, ref, fs)
        assert est == pytest.approx(cfo, rel=0.15)

    def test_too_short_received_raises(self):
        ref = np.ones(64, dtype=complex)
        with pytest.raises(ValueError):
            estimate_cfo_from_preamble(ref[:32], ref, 1e6)

    def test_bad_segments_raises(self):
        ref = np.ones(64, dtype=complex)
        with pytest.raises(ValueError):
            estimate_cfo_from_preamble(ref, ref, 1e6, num_segments=1)
