"""Unit tests for the BHSS transmitter and receiver."""

import numpy as np
import pytest

from repro.channel import Impairments, add_awgn
from repro.core import BHSSConfig, BHSSReceiver, BHSSTransmitter
from repro.core.receiver import AcquiringReceiver
from repro.dsp import welch_psd
from repro.dsp.spectral import occupied_bandwidth
from repro.utils import signal_power


def cfg(**kw):
    defaults = dict(payload_bytes=8, seed=7)
    defaults.update(kw)
    return BHSSConfig.paper_default(**defaults)


class TestTransmitter:
    def test_waveform_unit_power(self):
        packet = BHSSTransmitter(cfg()).transmit()
        assert signal_power(packet.waveform) == pytest.approx(1.0, rel=0.05)

    def test_sample_counts_sum_to_waveform(self):
        packet = BHSSTransmitter(cfg()).transmit()
        assert sum(packet.sample_counts) == packet.num_samples

    def test_segments_cover_frame(self):
        packet = BHSSTransmitter(cfg()).transmit()
        assert sum(s.num_symbols for s in packet.segments) == packet.symbols.size

    def test_default_payload_varies_with_packet_index(self):
        tx = BHSSTransmitter(cfg())
        assert tx.transmit(packet_index=0).payload != tx.transmit(packet_index=1).payload

    def test_explicit_payload(self):
        packet = BHSSTransmitter(cfg()).transmit(b"hello!!!")
        assert packet.payload == b"hello!!!"

    def test_bandwidth_profile_matches_segments(self):
        packet = BHSSTransmitter(cfg()).transmit()
        profile = packet.bandwidth_profile()
        assert len(profile) == len(packet.segments)
        for (n, bw), seg, count in zip(profile, packet.segments, packet.sample_counts):
            assert n == count and bw == seg.bandwidth

    def test_fixed_bandwidth_single_segment(self):
        packet = BHSSTransmitter(cfg(fixed_bandwidth=10e6)).transmit()
        assert len(packet.segments) == 1
        assert packet.segments[0].bandwidth == 10e6

    def test_hop_bandwidths_visible_in_spectrum(self):
        """Figure 5: per-hop occupied bandwidth follows the schedule."""
        config = cfg(symbols_per_hop=16, payload_bytes=64)
        packet = BHSSTransmitter(config).transmit()
        pos = 0
        checked = 0
        for seg, count in zip(packet.segments, packet.sample_counts):
            block = packet.waveform[pos : pos + count]
            pos += count
            if count < 8192:
                continue
            freqs, psd = welch_psd(block, config.sample_rate, nperseg=512)
            measured = occupied_bandwidth(freqs, psd, fraction=0.95)
            assert 0.4 * seg.bandwidth < measured < 2.0 * seg.bandwidth
            checked += 1
        assert checked >= 1

    def test_narrow_hops_take_longer(self):
        config = cfg(symbols_per_hop=4)
        packet = BHSSTransmitter(config).transmit()
        for seg, count in zip(packet.segments, packet.sample_counts):
            assert count == seg.num_symbols * 16 * seg.sps


class TestReceiverClean:
    @pytest.mark.parametrize("pattern", ["linear", "exponential", "parabolic"])
    def test_roundtrip_all_patterns(self, pattern):
        config = cfg(pattern=pattern)
        tx, rx = BHSSTransmitter(config), BHSSReceiver(config)
        packet = tx.transmit(b"payload!", packet_index=3)
        result = rx.receive(packet.waveform, packet_index=3)
        assert result.accepted
        assert result.payload == b"payload!"
        np.testing.assert_array_equal(result.symbols, packet.symbols)

    def test_roundtrip_with_noise(self):
        config = cfg()
        tx, rx = BHSSTransmitter(config), BHSSReceiver(config)
        packet = tx.transmit()
        noisy = add_awgn(packet.waveform, 12.0, rng=1)
        result = rx.receive(noisy)
        assert result.accepted

    def test_quality_metric_clean_near_one(self):
        config = cfg()
        packet = BHSSTransmitter(config).transmit()
        result = BHSSReceiver(config).receive(packet.waveform)
        assert result.quality > 0.9

    def test_wrong_packet_index_fails(self):
        config = cfg()
        tx, rx = BHSSTransmitter(config), BHSSReceiver(config)
        packet = tx.transmit(packet_index=0)
        result = rx.receive(packet.waveform, packet_index=1)
        assert not result.accepted  # schedule mismatch garbles everything

    def test_wrong_seed_fails(self):
        packet = BHSSTransmitter(cfg(seed=1)).transmit()
        result = BHSSReceiver(cfg(seed=2)).receive(packet.waveform)
        assert not result.accepted

    def test_truncated_waveform_fails_gracefully(self):
        config = cfg()
        packet = BHSSTransmitter(config).transmit()
        result = BHSSReceiver(config).receive(packet.waveform[: packet.num_samples // 2])
        assert not result.accepted

    def test_filter_usage_histogram(self):
        config = cfg()
        packet = BHSSTransmitter(config).transmit()
        result = BHSSReceiver(config).receive(packet.waveform)
        usage = result.filter_usage()
        assert set(usage) == {"none", "lowpass", "excision"}
        assert sum(usage.values()) == len(result.decisions)

    def test_no_filtering_config_has_no_decisions(self):
        config = cfg(filtering=False)
        packet = BHSSTransmitter(config).transmit()
        result = BHSSReceiver(config).receive(packet.waveform)
        assert result.decisions == ()
        assert result.accepted

    def test_payload_len_override(self):
        config = cfg(payload_bytes=8)
        packet = BHSSTransmitter(config).transmit(b"four", packet_index=0)
        result = BHSSReceiver(config).receive(packet.waveform, payload_len=4)
        assert result.accepted and result.payload == b"four"

    def test_phase_track_survives_static_rotation(self):
        config = cfg()
        tx, rx = BHSSTransmitter(config), BHSSReceiver(config)
        packet = tx.transmit()
        rotated = packet.waveform * np.exp(1j * 0.15)  # small static rotation
        result = rx.receive(rotated, phase_track=True)
        assert result.accepted


class TestAcquiringReceiver:
    def test_acquires_offset_packet(self):
        config = cfg(payload_bytes=8)
        packet = BHSSTransmitter(config).transmit()
        padded = np.concatenate(
            [np.zeros(1234, dtype=complex), packet.waveform, np.zeros(500, dtype=complex)]
        )
        padded = add_awgn(padded, 20.0, rng=2, reference_power=signal_power(packet.waveform))
        acq = AcquiringReceiver(config).receive(padded)
        assert acq is not None
        assert abs(acq.start_sample - 1234) <= 2
        assert acq.result.accepted

    def test_corrects_cfo_and_phase(self):
        config = cfg(payload_bytes=8)
        packet = BHSSTransmitter(config).transmit()
        imp = Impairments(cfo_hz=2e3, phase_rad=1.1)
        received = imp.apply(packet.waveform, config.sample_rate)
        received = np.concatenate([np.zeros(777, dtype=complex), received])
        acq = AcquiringReceiver(config).receive(received)
        assert acq is not None
        assert acq.cfo_hz == pytest.approx(2e3, abs=500)
        assert acq.result.accepted

    def test_returns_none_on_noise(self):
        config = cfg(payload_bytes=8)
        rng = np.random.default_rng(3)
        noise = rng.normal(size=50_000) + 1j * rng.normal(size=50_000)
        assert AcquiringReceiver(config, threshold=0.5).receive(noise) is None

    def test_bad_threshold_raises(self):
        with pytest.raises(ValueError):
            AcquiringReceiver(cfg(), threshold=0.0)
