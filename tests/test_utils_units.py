"""Unit tests for repro.utils.units."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    normalize_power,
    papr_db,
    rms,
    scale_to_power,
    signal_energy,
    signal_power,
    watt_to_dbm,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_twenty_db_is_hundred(self):
        assert db_to_linear(20.0) == pytest.approx(100.0)

    def test_negative_db(self):
        assert db_to_linear(-3.0) == pytest.approx(0.501187, rel=1e-5)

    def test_linear_to_db_unity(self):
        assert linear_to_db(1.0) == pytest.approx(0.0)

    def test_linear_to_db_floor_avoids_inf(self):
        assert np.isfinite(linear_to_db(0.0))

    def test_array_input_roundtrip(self):
        vals = np.array([0.1, 1.0, 10.0, 123.4])
        np.testing.assert_allclose(db_to_linear(linear_to_db(vals)), vals, rtol=1e-12)

    @given(st.floats(min_value=-100, max_value=100))
    def test_roundtrip_property(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)

    @given(st.floats(min_value=-100, max_value=100), st.floats(min_value=-100, max_value=100))
    def test_db_addition_is_linear_multiplication(self, a, b):
        assert db_to_linear(a + b) == pytest.approx(db_to_linear(a) * db_to_linear(b), rel=1e-9)


class TestDbm:
    def test_zero_dbm_is_milliwatt(self):
        assert dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_watt(self):
        assert dbm_to_watt(30.0) == pytest.approx(1.0)

    def test_watt_to_dbm_roundtrip(self):
        assert watt_to_dbm(dbm_to_watt(17.3)) == pytest.approx(17.3)


class TestSignalPower:
    def test_unit_tone_power(self):
        n = np.arange(1000)
        x = np.exp(1j * 2 * np.pi * 0.1 * n)
        assert signal_power(x) == pytest.approx(1.0)

    def test_real_signal(self):
        assert signal_power(np.array([3.0, -3.0])) == pytest.approx(9.0)

    def test_empty_signal_is_zero(self):
        assert signal_power(np.array([])) == 0.0

    def test_energy_is_power_times_length(self):
        x = np.array([1.0, 2.0, 2.0])
        assert signal_energy(x) == pytest.approx(signal_power(x) * 3)

    def test_rms(self):
        assert rms(np.array([3.0, 4.0, 3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

    def test_normalize_power_gives_unit_power(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500) + 1j * rng.normal(size=500)
        assert signal_power(normalize_power(x)) == pytest.approx(1.0)

    def test_normalize_zero_signal_unchanged(self):
        x = np.zeros(4, dtype=complex)
        np.testing.assert_array_equal(normalize_power(x), x)

    def test_scale_to_power(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=400)
        assert signal_power(scale_to_power(x, 7.5)) == pytest.approx(7.5)

    def test_scale_to_negative_power_raises(self):
        with pytest.raises(ValueError):
            scale_to_power(np.ones(4), -1.0)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_scale_to_power_property(self, p):
        x = np.linspace(1, 2, 64) * (1 + 1j)
        assert signal_power(scale_to_power(x, p)) == pytest.approx(p, rel=1e-9)


class TestPapr:
    def test_constant_envelope_papr_zero(self):
        n = np.arange(256)
        x = np.exp(1j * 2 * np.pi * 0.05 * n)
        assert papr_db(x) == pytest.approx(0.0, abs=1e-9)

    def test_impulse_has_high_papr(self):
        x = np.zeros(100)
        x[0] = 1.0
        assert papr_db(x) == pytest.approx(20.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            papr_db(np.array([]))

    def test_zero_signal_raises(self):
        with pytest.raises(ValueError):
            papr_db(np.zeros(5))
