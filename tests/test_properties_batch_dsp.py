"""Property tests of the batched DSP primitives' bit-identity contract.

Every ``*_batch`` function promises ``op(stack([x_i])) == stack([op(x_i)])``
exactly — not approximately — because the batched link engine's statistics
must be indistinguishable from the serial reference.  Hypothesis drives
random shapes, seeds, and parameters through that contract, plus the
corollary that a batch is row-order oblivious: permuting the input rows
permutes the output rows and changes nothing else.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dsp.fir import (
    apply_fir,
    apply_fir_batch,
    convolve_nfft,
    fft_convolve,
    fft_convolve_batch,
    lowpass_taps,
)
from repro.dsp.pulse import get_pulse
from repro.dsp.spectral import welch_psd, welch_psd_batch
from repro.phy.qpsk import ChipModulator
from repro.spread.dsss import SixteenAryDSSS

QUICK = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])

FS = 20e6


def random_rows(rng, rows, n, complex_valued=True):
    x = rng.standard_normal((rows, n))
    if complex_valued:
        x = x + 1j * rng.standard_normal((rows, n))
    return x


class TestFftConvolveBatch:
    @given(
        rows=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=4, max_value=257),
        k=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_stack_equals_map(self, rows, n, k, seed):
        rng = np.random.default_rng(seed)
        x = random_rows(rng, rows, n)
        taps = rng.standard_normal(k) + 1j * rng.standard_normal(k)
        batched = fft_convolve_batch(x, taps)
        for i in range(rows):
            np.testing.assert_array_equal(batched[i], fft_convolve(x[i], taps))

    @given(
        rows=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=4, max_value=257),
        k=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_precomputed_taps_fft_changes_nothing(self, rows, n, k, seed):
        rng = np.random.default_rng(seed)
        x = random_rows(rng, rows, n)
        taps = rng.standard_normal(k) + 1j * rng.standard_normal(k)
        taps_fft = np.fft.fft(taps, convolve_nfft(n, k))
        np.testing.assert_array_equal(
            fft_convolve_batch(x, taps, taps_fft=taps_fft), fft_convolve_batch(x, taps)
        )

    @given(
        rows=st.integers(min_value=2, max_value=8),
        n=st.integers(min_value=8, max_value=128),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_permutation_invariance(self, rows, n, seed):
        rng = np.random.default_rng(seed)
        x = random_rows(rng, rows, n)
        taps = rng.standard_normal(9)
        perm = rng.permutation(rows)
        np.testing.assert_array_equal(
            fft_convolve_batch(x[perm], taps), fft_convolve_batch(x, taps)[perm]
        )


class TestApplyFirBatch:
    @given(
        rows=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=16, max_value=600),
        num_taps=st.sampled_from([5, 21, 55, 129]),
        mode=st.sampled_from(["compensated", "same", "full"]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_shared_taps_stack_equals_map(self, rows, n, num_taps, mode, seed):
        rng = np.random.default_rng(seed)
        x = random_rows(rng, rows, n)
        taps = lowpass_taps(num_taps, 0.2 * FS, FS)
        batched = apply_fir_batch(x, taps, mode=mode)
        for i in range(rows):
            np.testing.assert_array_equal(batched[i], apply_fir(x[i], taps, mode=mode))

    @given(
        rows=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=16, max_value=400),
        k=st.integers(min_value=3, max_value=65),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_per_row_taps_stack_equals_map(self, rows, n, k, seed):
        rng = np.random.default_rng(seed)
        x = random_rows(rng, rows, n)
        taps = rng.standard_normal((rows, k))
        batched = apply_fir_batch(x, taps)
        for i in range(rows):
            np.testing.assert_array_equal(batched[i], apply_fir(x[i], taps[i]))

    @given(
        n=st.integers(min_value=16, max_value=300),
        block=st.sampled_from([None, 64, 256, 4096]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_explicit_block_size_matches_serial(self, n, block, seed):
        # The default block size is derived from (N, K); an explicit
        # override must flow through to the identical serial geometry.
        rng = np.random.default_rng(seed)
        x = random_rows(rng, 3, n)
        taps = rng.standard_normal(11)
        batched = apply_fir_batch(x, taps, block_size=block)
        for i in range(3):
            np.testing.assert_array_equal(batched[i], apply_fir(x[i], taps, block_size=block))


class TestWelchBatch:
    @given(
        rows=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=32, max_value=1500),
        nperseg=st.sampled_from([32, 64, 256]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_stack_equals_map(self, rows, n, nperseg, seed):
        rng = np.random.default_rng(seed)
        x = random_rows(rng, rows, n)
        freqs_b, psd_b = welch_psd_batch(x, FS, nperseg=nperseg)
        for i in range(rows):
            freqs_s, psd_s = welch_psd(x[i], FS, nperseg=nperseg)
            np.testing.assert_array_equal(freqs_b, freqs_s)
            np.testing.assert_array_equal(psd_b[i], psd_s)

    @given(
        rows=st.integers(min_value=2, max_value=6),
        n=st.integers(min_value=300, max_value=1200),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_permutation_invariance(self, rows, n, seed):
        rng = np.random.default_rng(seed)
        x = random_rows(rng, rows, n)
        perm = rng.permutation(rows)
        _, psd = welch_psd_batch(x, FS)
        _, psd_perm = welch_psd_batch(x[perm], FS)
        np.testing.assert_array_equal(psd_perm, psd[perm])


class TestModulatorBatch:
    @given(
        rows=st.integers(min_value=1, max_value=5),
        n_chips=st.sampled_from([32, 64, 128]),
        sps=st.sampled_from([2, 5, 8, 64]),
        pulse=st.sampled_from(["half_sine", "rect", "rrc"]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_modulate_stack_equals_map(self, rows, n_chips, sps, pulse, seed):
        # half_sine/rect take the non-overlapping fast path; rrc spans
        # several chips and goes through the cached-spectrum FFT path.
        rng = np.random.default_rng(seed)
        chips = rng.choice([-1.0, 1.0], size=(rows, n_chips))
        mod = ChipModulator(get_pulse(pulse))
        batched = mod.modulate_batch(chips, sps)
        for i in range(rows):
            np.testing.assert_array_equal(batched[i], mod.modulate(chips[i], sps))

    @given(
        rows=st.integers(min_value=1, max_value=5),
        n_chips=st.sampled_from([32, 64]),
        sps=st.sampled_from([2, 8, 64]),
        matched=st.booleans(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_demodulate_stack_equals_map(self, rows, n_chips, sps, matched, seed):
        rng = np.random.default_rng(seed)
        mod = ChipModulator(get_pulse("half_sine"))
        chips = rng.choice([-1.0, 1.0], size=(rows, n_chips))
        waves = mod.modulate_batch(chips, sps)
        noisy = waves + 0.1 * random_rows(rng, rows, waves.shape[1])
        batched = mod.demodulate_batch(noisy, sps, num_chips=n_chips, matched=matched)
        for i in range(rows):
            np.testing.assert_array_equal(
                batched[i], mod.demodulate(noisy[i], sps, num_chips=n_chips, matched=matched)
            )


class TestDsssBatch:
    @given(
        rows=st.integers(min_value=1, max_value=6),
        n_sym=st.integers(min_value=1, max_value=20),
        start=st.integers(min_value=0, max_value=100_000),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_spread_shared_start_chip(self, rows, n_sym, start, seed):
        rng = np.random.default_rng(seed)
        modem = SixteenAryDSSS(seed=21)
        syms = rng.integers(0, 16, size=(rows, n_sym))
        batched = modem.spread_batch(syms, start_chip=start)
        for i in range(rows):
            np.testing.assert_array_equal(batched[i], modem.spread(syms[i], start_chip=start))

    @given(
        rows=st.integers(min_value=1, max_value=6),
        n_sym=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_spread_per_row_start_chips(self, rows, n_sym, seed):
        # Per-row scramble phases are what lets the transmitter merge
        # segments from different packet positions into one stacked call.
        rng = np.random.default_rng(seed)
        modem = SixteenAryDSSS(seed=21)
        syms = rng.integers(0, 16, size=(rows, n_sym))
        starts = rng.integers(0, 1 << 17, size=rows)
        batched = modem.spread_batch(syms, start_chip=starts)
        for i in range(rows):
            np.testing.assert_array_equal(
                batched[i], modem.spread(syms[i], start_chip=int(starts[i]))
            )

    @given(
        rows=st.integers(min_value=1, max_value=6),
        n_sym=st.integers(min_value=1, max_value=16),
        per_row=st.booleans(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_despread_stack_equals_map(self, rows, n_sym, per_row, seed):
        rng = np.random.default_rng(seed)
        modem = SixteenAryDSSS(seed=21)
        soft = rng.standard_normal((rows, n_sym * 32))
        if per_row:
            starts = rng.integers(0, 1 << 17, size=rows)
        else:
            starts = np.full(rows, int(rng.integers(0, 1 << 17)))
        batched = modem.despread_batch(soft, start_chip=starts if per_row else int(starts[0]))
        for i in range(rows):
            serial = modem.despread(soft[i], start_chip=int(starts[i]))
            np.testing.assert_array_equal(batched.symbols[i], serial.symbols)
            np.testing.assert_array_equal(batched.scores[i], serial.scores)
            np.testing.assert_array_equal(batched.quality[i], serial.quality)

    @given(
        rows=st.integers(min_value=2, max_value=6),
        n_sym=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @QUICK
    def test_permutation_invariance_with_row_phases(self, rows, n_sym, seed):
        rng = np.random.default_rng(seed)
        modem = SixteenAryDSSS(seed=21)
        syms = rng.integers(0, 16, size=(rows, n_sym))
        starts = rng.integers(0, 1 << 17, size=rows)
        perm = rng.permutation(rows)
        np.testing.assert_array_equal(
            modem.spread_batch(syms[perm], start_chip=starts[perm]),
            modem.spread_batch(syms, start_chip=starts)[perm],
        )
