"""Tests for code-phase acquisition, the multipath-aware link, and the
CLI sweep subcommand."""

import numpy as np
import pytest

from repro.channel import MultipathChannel
from repro.cli import main
from repro.core import BHSSConfig, LinkSimulator
from repro.spread import BPSKDSSS, acquire_code_phase, lfsr_sequence, random_pn_sequence


class TestCodeAcquisition:
    def test_finds_known_offset(self):
        code = lfsr_sequence(9)  # 511-chip m-sequence
        for offset in [0, 1, 17, 255, 510]:
            received = np.roll(code, offset)
            acq = acquire_code_phase(received, code)
            assert acq.acquired
            assert acq.offset == offset

    def test_metric_strong_for_msequence(self):
        code = lfsr_sequence(8)
        acq = acquire_code_phase(np.roll(code, 42), code)
        # m-sequence sidelobes are -1/N: the metric is enormous
        assert acq.metric > 50.0

    def test_acquires_under_noise(self):
        rng = np.random.default_rng(0)
        code = lfsr_sequence(10)  # 1023 chips
        received = np.roll(code, 321) + rng.normal(scale=2.0, size=code.size)  # -6 dB/chip
        acq = acquire_code_phase(received, code)
        assert acq.acquired and acq.offset == 321

    def test_rejects_wrong_code(self):
        code_a = random_pn_sequence(512, seed=1)
        code_b = random_pn_sequence(512, seed=2)
        acq = acquire_code_phase(code_a, code_b, threshold=2.0)
        assert not acq.acquired

    def test_rejects_pure_noise(self):
        rng = np.random.default_rng(3)
        code = random_pn_sequence(512, seed=4)
        acq = acquire_code_phase(rng.normal(size=512), code, threshold=2.0)
        assert not acq.acquired

    def test_enables_unsynchronized_despreading(self):
        """The point of acquisition: despread a stream whose chip phase
        is unknown."""
        L = 64
        modem = BPSKDSSS(spreading_factor=L, seed=5)
        bits = np.array([1, -1, 1, 1, -1, -1, 1, -1], dtype=float)
        chips = modem.spread(bits)
        offset = 37
        # circular rotation stands in for an unknown stream start
        received = np.roll(chips, offset)
        acq = acquire_code_phase(received, chips)
        assert acq.acquired and acq.offset == offset
        realigned = np.roll(received, -acq.offset)
        np.testing.assert_array_equal(np.sign(modem.despread(realigned)), bits)

    def test_validation(self):
        code = random_pn_sequence(64, seed=6)
        with pytest.raises(ValueError):
            acquire_code_phase(code[:32], code)
        with pytest.raises(ValueError):
            acquire_code_phase(code[:4], code[:4])
        with pytest.raises(ValueError):
            acquire_code_phase(code, code, threshold=1.0)


class TestMultipathLink:
    def test_flat_channel_equivalent_to_none(self):
        cfg = BHSSConfig.paper_default(seed=31, payload_bytes=8)
        flat = MultipathChannel(num_taps=1, seed=1)
        out = LinkSimulator(cfg, channel=flat).run_packet(snr_db=20.0, rng=0)
        assert out.accepted

    def test_narrow_hops_more_robust_over_multipath(self):
        """With the channel's absolute phase resolved (as a preamble-
        synchronized receiver would), hops below the coherence bandwidth
        are flat-faded and decode; wide hops suffer inter-chip
        interference."""
        from repro.core import BHSSReceiver, BHSSTransmitter

        channel = MultipathChannel(num_taps=16, decay_samples=5.3, seed=3, line_of_sight=0.0)

        def per(bw, packets=5):
            cfg = BHSSConfig.paper_default(seed=97, payload_bytes=8).with_fixed_bandwidth(bw)
            tx, rx = BHSSTransmitter(cfg), BHSSReceiver(cfg)
            failures = 0
            for k in range(packets):
                packet = tx.transmit(packet_index=k)
                faded = channel.apply(packet.waveform)
                train = min(2048, packet.num_samples // 2)
                phase = np.angle(np.vdot(packet.waveform[:train], faded[:train]))
                result = rx.receive(faded * np.exp(-1j * phase), packet_index=k, phase_track=True)
                failures += int(not result.accepted)
            return failures / packets

        assert per(0.3125e6) == 0.0
        assert per(10e6) > 0.5

    def test_multipath_degrades_wideband(self):
        cfg = BHSSConfig.paper_default(seed=33, payload_bytes=8).with_fixed_bandwidth(10e6)
        channel = MultipathChannel(num_taps=16, decay_samples=6.0, seed=3, line_of_sight=0.0)
        faded = LinkSimulator(cfg, channel=channel).run_packets(6, snr_db=25.0, seed=2)
        clean = LinkSimulator(cfg).run_packets(6, snr_db=25.0, seed=2)
        assert faded.packet_error_rate >= clean.packet_error_rate


class TestCliSweep:
    def test_sweep_runs_and_reports(self, capsys):
        code = main(
            [
                "sweep",
                "--packets", "2",
                "--payload-bytes", "4",
                "--snr", "20",
                "--sjr-list", "5,-5",
                "--jammer", "noise",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PER/BER vs SJR" in out
        assert "95% CI" in out

    def test_sweep_writes_csv(self, tmp_path, capsys):
        path = str(tmp_path / "sweep.csv")
        code = main(
            [
                "sweep",
                "--packets", "2",
                "--payload-bytes", "4",
                "--sjr-list", "0",
                "--jammer", "none",
                "-o", path,
            ]
        )
        assert code == 0
        text = open(path).read()
        assert text.startswith("sjr_db,per,per_lo,per_hi,ber")
        assert len(text.splitlines()) == 2
