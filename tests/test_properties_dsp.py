"""Property-based tests of the DSP substrate's core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dsp import (
    apply_fir,
    excision_taps_from_psd,
    fft_convolve,
    frequency_shift,
    lowpass_taps,
    welch_psd,
)
from repro.dsp.pulse import HalfSinePulse
from repro.utils import signal_energy, signal_power

QUICK = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])

FS = 20e6


class TestFirProperties:
    @given(
        num_taps=st.integers(min_value=5, max_value=301).filter(lambda n: n % 2 == 1),
        cutoff_frac=st.floats(min_value=0.02, max_value=0.45),
    )
    @QUICK
    def test_lowpass_dc_gain_always_unity(self, num_taps, cutoff_frac):
        taps = lowpass_taps(num_taps, cutoff_frac * FS, FS)
        assert taps.sum() == pytest.approx(1.0, abs=1e-9)

    @given(
        num_taps=st.integers(min_value=5, max_value=151).filter(lambda n: n % 2 == 1),
        cutoff_frac=st.floats(min_value=0.05, max_value=0.4),
    )
    @QUICK
    def test_lowpass_always_symmetric(self, num_taps, cutoff_frac):
        taps = lowpass_taps(num_taps, cutoff_frac * FS, FS)
        np.testing.assert_allclose(taps, taps[::-1], atol=1e-15)

    @given(
        nx=st.integers(min_value=1, max_value=300),
        nh=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @QUICK
    def test_fft_convolve_matches_direct(self, nx, nh, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=nx)
        h = rng.normal(size=nh)
        np.testing.assert_allclose(fft_convolve(x, h), np.convolve(x, h), atol=1e-8)

    @given(
        n=st.integers(min_value=64, max_value=2000),
        block=st.sampled_from([64, 128, 256, 1024]),
    )
    @QUICK
    def test_overlap_save_block_size_invariant(self, n, block):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        h = rng.normal(size=31)
        a = apply_fir(x, h, mode="full", block_size=block)
        b = apply_fir(x, h, mode="full", block_size=4096)
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(gain=st.floats(min_value=0.01, max_value=100.0))
    @QUICK
    def test_filtering_is_linear(self, gain):
        rng = np.random.default_rng(7)
        x = rng.normal(size=500) + 1j * rng.normal(size=500)
        h = lowpass_taps(31, 3e6, FS)
        np.testing.assert_allclose(
            apply_fir(gain * x, h), gain * apply_fir(x, h), rtol=1e-9
        )


class TestSpectralProperties:
    @given(
        power=st.floats(min_value=0.01, max_value=100.0),
        nperseg=st.sampled_from([64, 128, 256]),
    )
    @QUICK
    def test_welch_parseval_property(self, power, nperseg):
        rng = np.random.default_rng(int(power * 100) % 2**31)
        x = np.sqrt(power / 2) * (rng.normal(size=16384) + 1j * rng.normal(size=16384))
        freqs, psd = welch_psd(x, FS, nperseg=nperseg)
        total = np.sum(psd) * (freqs[1] - freqs[0])
        assert total == pytest.approx(signal_power(x), rel=0.15)

    @given(shift=st.floats(min_value=-9e6, max_value=9e6))
    @QUICK
    def test_frequency_shift_power_invariant(self, shift):
        rng = np.random.default_rng(3)
        x = rng.normal(size=1024) + 1j * rng.normal(size=1024)
        assert signal_power(frequency_shift(x, shift, FS)) == pytest.approx(
            signal_power(x), rel=1e-12
        )


class TestExcisionProperties:
    @given(
        k=st.sampled_from([32, 64, 128, 257]),
        jam_db=st.floats(min_value=10, max_value=50),
        start_frac=st.floats(min_value=0.0, max_value=0.85),
    )
    @QUICK
    def test_whitener_attenuation_tracks_jammer_power(self, k, jam_db, start_frac):
        """|H| in the jammed bins is ~1/sqrt(jammer PSD) of the median."""
        psd = np.ones(k)
        start = int(start_frac * k)
        width = max(1, k // 16)
        psd[start : start + width] = 10 ** (jam_db / 10)
        taps = excision_taps_from_psd(psd)
        h = np.abs(np.fft.fft(taps))
        expected = 10 ** (-jam_db / 20)
        jam_gain = h[start : start + width].mean()
        assert jam_gain == pytest.approx(expected, rel=0.01)

    @given(k=st.sampled_from([16, 64, 256]), scale=st.floats(min_value=1e-3, max_value=1e3))
    @QUICK
    def test_whitener_scale_invariant(self, k, scale):
        """Scaling the PSD must not change the normalized taps."""
        rng = np.random.default_rng(k)
        psd = rng.uniform(0.5, 2.0, size=k)
        a = excision_taps_from_psd(psd)
        b = excision_taps_from_psd(scale * psd)
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestPulseProperties:
    @given(sps=st.integers(min_value=1, max_value=512))
    @QUICK
    def test_half_sine_unit_energy_any_sps(self, sps):
        assert signal_energy(HalfSinePulse().waveform(sps)) == pytest.approx(1.0)

    @given(sps=st.integers(min_value=2, max_value=256))
    @QUICK
    def test_half_sine_symmetric_any_sps(self, sps):
        p = HalfSinePulse().waveform(sps)
        np.testing.assert_allclose(p, p[::-1], atol=1e-12)
