"""Checkpoint/resume tests: interrupted sweeps resume bit-identically.

The contract under test: a sweep killed mid-run (SIGINT at the
supervisor, a worker dying, a crashed process) leaves an atomic
checkpoint of its completed grid points, and rerunning the same sweep
recomputes *only* the unfinished points — with final rows bit-identical
to an uninterrupted run, because records round-trip through JSON
exactly and merge in grid order.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.analysis import run_sweep
from repro.runtime import (
    ParallelExecutor,
    SweepCheckpoint,
    TaskFailure,
    make_checkpoint,
    resolve_checkpoint_dir,
    stable_hash,
)
from repro.scenario import Scenario, run_scenario

FORK = ParallelExecutor.fork_available()
needs_fork = pytest.mark.skipif(not FORK, reason="fork start method unavailable")

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCENARIO = os.path.join(REPO, "examples", "scenarios", "tone_excision.json")


@pytest.fixture(autouse=True)
def _no_ambient_knobs(monkeypatch):
    for var in ("REPRO_FAULTS", "REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_CHECKPOINT"):
        monkeypatch.delenv(var, raising=False)


class TestResolveCheckpointDir:
    def test_unset_and_off_disable(self, monkeypatch):
        assert resolve_checkpoint_dir() is None
        for off in ("0", "off", "no", "false", ""):
            monkeypatch.setenv("REPRO_CHECKPOINT", off)
            assert resolve_checkpoint_dir() is None

    def test_on_selects_default_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT", "1")
        path = resolve_checkpoint_dir()
        assert path is not None and path.endswith(os.path.join("repro-bhss", "checkpoints"))

    def test_path_value(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT", str(tmp_path / "ck"))
        assert resolve_checkpoint_dir() == str(tmp_path / "ck")


class TestSweepCheckpoint:
    def test_roundtrip(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path), "k" * 40, total=4)
        ck.record(0, {"per": 0.125})
        ck.record(3, {"per": 0.5})
        fresh = SweepCheckpoint(str(tmp_path), "k" * 40, total=4)
        assert fresh.load() == {0: {"per": 0.125}, 3: {"per": 0.5}}

    def test_float_bit_exact_roundtrip(self, tmp_path):
        value = {"per": 0.1 + 0.2, "snr": 1e-17, "t": 3.141592653589793}
        ck = SweepCheckpoint(str(tmp_path), "key", total=1)
        ck.record(0, value)
        loaded = SweepCheckpoint(str(tmp_path), "key", total=1).load()
        assert loaded[0] == value  # exact equality, not approx

    def test_interval_batches_flushes(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path), "key", total=10, interval=3)
        ck.record(0, {})
        ck.record(1, {})
        assert not os.path.exists(ck.path)
        ck.record(2, {})
        assert os.path.exists(ck.path)

    def test_wrong_key_or_total_ignored(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path), "aaa", total=2)
        ck.record(0, {"v": 1})
        assert SweepCheckpoint(str(tmp_path), "aaa", total=3).load() == {}
        other = SweepCheckpoint(str(tmp_path), "bbb", total=2)
        assert other.load() == {}  # different key -> different file

    def test_corrupt_checkpoint_ignored_with_warning(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path), "key", total=2)
        ck.record(0, {"v": 1})
        with open(ck.path) as fh:
            doc = json.load(fh)
        doc["payload"]["done"]["0"] = {"v": 999}  # tamper without re-hashing
        with open(ck.path, "w") as fh:
            json.dump(doc, fh)
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert SweepCheckpoint(str(tmp_path), "key", total=2).load() == {}

    def test_unparsable_checkpoint_ignored(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path), "key", total=2)
        ck.record(0, {"v": 1})
        with open(ck.path, "w") as fh:
            fh.write("{nope")
        assert SweepCheckpoint(str(tmp_path), "key", total=2).load() == {}

    def test_out_of_range_index_ignored(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path), "key", total=2)
        ck.record(1, {"v": 1})
        assert SweepCheckpoint(str(tmp_path), "key", total=1).load() == {}

    def test_complete_removes_file(self, tmp_path):
        ck = SweepCheckpoint(str(tmp_path), "key", total=1)
        ck.record(0, {"v": 1})
        assert os.path.exists(ck.path)
        ck.complete()
        assert not os.path.exists(ck.path)

    def test_unwritable_dir_warns_once_and_continues(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        ck = SweepCheckpoint(str(blocker / "sub"), "key", total=2)
        with pytest.warns(RuntimeWarning, match="cannot write sweep checkpoint"):
            ck.record(0, {"v": 1})
        ck.record(1, {"v": 2})  # second flush failure is silent
        assert ck.completed() == {0: {"v": 1}, 1: {"v": 2}}

    def test_make_checkpoint_normalization(self, tmp_path, monkeypatch):
        assert make_checkpoint(False, "k", 3) is None
        assert make_checkpoint(None, "k", 3) is None  # env unset
        monkeypatch.setenv("REPRO_CHECKPOINT", str(tmp_path))
        from_env = make_checkpoint(None, "k", 3)
        assert from_env is not None and from_env.directory == str(tmp_path)
        explicit = make_checkpoint(str(tmp_path / "x"), "k", 3)
        assert explicit is not None and explicit.directory == str(tmp_path / "x")
        ready = SweepCheckpoint(str(tmp_path), "other", 5)
        assert make_checkpoint(ready, "k", 3) is ready


class TestRunSweepResume:
    @staticmethod
    def _grid():
        return [float(i) for i in range(6)]

    @staticmethod
    def _evaluate(x):
        return {"x": x, "y": x / 3.0}

    def test_interrupted_serial_sweep_resumes_bit_identically(self, tmp_path):
        seen = []

        def flaky(x):
            seen.append(x)
            if x == 3.0 and len(seen) <= 4:
                raise KeyboardInterrupt
            return self._evaluate(x)

        with pytest.raises(KeyboardInterrupt):
            run_sweep(("x", "y"), self._grid(), flaky, checkpoint=str(tmp_path))
        assert os.listdir(tmp_path)  # checkpoint survived the interrupt

        recomputed = []

        def counting(x):
            recomputed.append(x)
            return self._evaluate(x)

        resumed = run_sweep(("x", "y"), self._grid(), counting, checkpoint=str(tmp_path))
        baseline = run_sweep(("x", "y"), self._grid(), self._evaluate, checkpoint=False)
        assert resumed.rows == baseline.rows
        assert recomputed == [3.0, 4.0, 5.0]  # finished points were not re-run
        assert os.listdir(tmp_path) == []  # completed sweep removes its file

    def test_terminal_failure_flushes_checkpoint(self, tmp_path):
        def boom(x):
            if x == 4.0:
                raise ValueError("grid point is broken")
            return self._evaluate(x)

        with pytest.raises(TaskFailure) as info:
            run_sweep(
                ("x", "y"), self._grid(), boom,
                executor=ParallelExecutor(0, retries=0), checkpoint=str(tmp_path),
            )
        assert info.value.index == 4  # names the failing grid point
        files = os.listdir(tmp_path)
        assert len(files) == 1
        with open(tmp_path / files[0]) as fh:
            done = json.load(fh)["payload"]["done"]
        assert sorted(done) == ["0", "1", "2", "3"]

    def test_env_knob_enables_checkpointing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT", str(tmp_path))

        def boom(x):
            if x == 2.0:
                raise KeyboardInterrupt
            return self._evaluate(x)

        with pytest.raises(KeyboardInterrupt):
            run_sweep(("x", "y"), self._grid(), boom)
        assert os.listdir(tmp_path)
        result = run_sweep(("x", "y"), self._grid(), self._evaluate)
        baseline = run_sweep(("x", "y"), self._grid(), self._evaluate, checkpoint=False)
        assert result.rows == baseline.rows

    def test_checkpoint_key_pins_identity(self, tmp_path):
        run = lambda key: run_sweep(
            ("x", "y"), self._grid(), self._evaluate,
            checkpoint=make_checkpoint(str(tmp_path), key, 6),
        )
        result = run("run-a")
        assert result.rows == run_sweep(("x", "y"), self._grid(), self._evaluate).rows

    def test_unhashable_grid_requires_explicit_key(self, tmp_path):
        grid = [object(), object()]
        with pytest.raises(ValueError, match="checkpoint_key"):
            run_sweep(
                ("x",), grid, lambda p: {"x": 1.0}, unpack=False, checkpoint=str(tmp_path)
            )
        result = run_sweep(
            ("x",), grid, lambda p: {"x": 1.0}, unpack=False,
            checkpoint=str(tmp_path), checkpoint_key="objects-run",
        )
        assert result.column("x") == [1.0, 1.0]

    def test_scenario_rejects_checkpoint_key(self):
        scenario = Scenario.load(SCENARIO)
        with pytest.raises(ValueError, match="checkpoint key"):
            run_sweep(scenario, checkpoint_key="nope")


class TestScenarioResume:
    def test_preseeded_checkpoint_skips_completed_points(self, tmp_path):
        scenario = Scenario.load(SCENARIO)
        points = scenario.points()
        baseline = run_scenario(scenario, executor=ParallelExecutor(0), cache=False)
        # Fabricate a checkpoint claiming point 0 finished with sentinel
        # values: the resumed run must trust it (skip recomputation).
        sentinel = dict(baseline.rows[0], per=0.123456789)
        ck = SweepCheckpoint(str(tmp_path), stable_hash(scenario.to_dict()), len(points))
        ck.record(0, sentinel)
        resumed = run_scenario(scenario, cache=False, checkpoint=str(tmp_path))
        assert resumed.rows[0] == sentinel
        assert resumed.rows[1:] == baseline.rows[1:]
        assert resumed.timing is not None
        assert resumed.timing.point_seconds[0] == 0.0  # not recomputed

    def test_mismatched_scenario_recomputes_everything(self, tmp_path):
        scenario = Scenario.load(SCENARIO)
        ck = SweepCheckpoint(str(tmp_path), "stale-key", len(scenario.points()))
        ck.record(0, {"snr_db": -1.0})
        baseline = run_scenario(scenario, executor=ParallelExecutor(0), cache=False)
        result = run_scenario(scenario, cache=False, checkpoint=str(tmp_path))
        assert result.rows == baseline.rows  # stale checkpoint never poisons


@needs_fork
class TestParallelInterrupt:
    def test_worker_death_checkpoints_then_resumes_bit_identically(self, tmp_path):
        """A sweep killed mid-flight (dead worker) resumes from checkpoint.

        The dying worker stands in for SIGINT/OOM against a pool child:
        the supervisor must classify it, tear the pool down cleanly, and
        the checkpoint must let a rerun skip every completed point.
        """
        ckdir = tmp_path / "ck"
        marks = tmp_path / "marks"
        marks.mkdir()
        armed = tmp_path / "armed"
        armed.touch()
        grid = [float(i) for i in range(8)]

        def evaluate(x):
            (marks / f"{int(x)}.{os.getpid()}.{time.monotonic_ns()}").touch()
            if x == 5.0 and armed.exists():
                os.kill(os.getpid(), signal.SIGINT)  # die mid-task
                time.sleep(10.0)  # never reached
            return {"x": x, "y": x * 0.375}

        with pytest.raises(TaskFailure):
            run_sweep(
                ("x", "y"), grid, evaluate,
                executor=ParallelExecutor(2, retries=0),
                checkpoint=str(ckdir), checkpoint_key="interrupt-run",
            )
        # pool torn down cleanly: payload cleared, no stray children
        from repro.runtime import executor as executor_module

        assert executor_module._WORKER_PAYLOAD is None
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not multiprocessing.active_children()

        files = os.listdir(ckdir)
        assert len(files) == 1
        with open(ckdir / files[0]) as fh:
            done = {int(i) for i in json.load(fh)["payload"]["done"]}
        assert done  # something finished before the death

        armed.unlink()
        for mark in marks.iterdir():
            mark.unlink()
        resumed = run_sweep(
            ("x", "y"), grid, evaluate,
            executor=ParallelExecutor(2, retries=0),
            checkpoint=str(ckdir), checkpoint_key="interrupt-run",
        )
        baseline = run_sweep(
            ("x", "y"), grid, lambda x: {"x": x, "y": x * 0.375}, checkpoint=False
        )
        assert resumed.rows == baseline.rows
        recomputed = {int(name.split(".")[0]) for name in os.listdir(marks)}
        assert recomputed.isdisjoint(done)  # only unfinished points re-ran
        assert os.listdir(ckdir) == []
