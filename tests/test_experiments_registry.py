"""Tests for the programmatic experiment registry (repro.analysis.experiments)."""

import inspect

import numpy as np
import pytest

from repro.analysis import SweepResult
from repro.analysis import experiments


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        # every evaluation figure/table of the paper has an entry
        for name in ["fig07", "fig08", "fig09", "fig10", "fig11", "tab1", "fig13", "fig14", "tab2"]:
            assert name in experiments.REGISTRY

    def test_entries_are_callable_with_description(self):
        for name, (fn, desc) in experiments.REGISTRY.items():
            assert callable(fn), name
            assert isinstance(desc, str) and desc, name

    def test_measured_experiments_take_scale(self):
        for name in ["fig13", "fig14", "tab2", "validation", "ablation-dwells",
                     "ablation-filters", "ablation-fec", "ext-fhss", "ext-multipath"]:
            fn, _ = experiments.REGISTRY[name]
            assert "scale" in inspect.signature(fn).parameters, name


class TestAnalyticExperiments:
    def test_figure07_columns_and_range(self):
        result = experiments.figure07(num_points=17)
        assert isinstance(result, SweepResult)
        ratios = np.array(result.column("bp_over_bj"))
        assert ratios[0] == pytest.approx(1e-2) and ratios[-1] == pytest.approx(1e2)
        assert len(result.rows) == 17

    def test_figure08_zoom_range(self):
        result = experiments.figure08(num_points=7)
        ratios = result.column("bp_over_bj")
        assert ratios[0] == 0.5 and ratios[-1] == 2.0

    def test_figure09_has_all_series(self):
        result = experiments.figure09(num_points=5)
        assert "dsss_fhss" in result.columns
        assert "bhss_bj_random" in result.columns
        assert all(f"bhss_bj_{r}" in result.columns for r in [1.0, 0.3, 0.1, 0.03, 0.01])

    def test_figure10_three_sjr_curves(self):
        result = experiments.figure10(num_points=5)
        assert {"ber_sjr_-10dB", "ber_sjr_-15dB", "ber_sjr_-20dB"} <= set(result.columns)

    def test_figure11_values_are_throughputs(self):
        result = experiments.figure11(num_points=5)
        for col in result.columns[1:]:
            vals = np.array(result.column(col))
            assert np.all((0.0 <= vals) & (vals <= 1.0))

    def test_table1_returns_two_tables(self):
        rows, summary = experiments.table1(num_trials=50, seed=1)
        assert len(rows.rows) == 7
        assert len(summary.rows) == 4

    def test_default_search_scales(self):
        small = experiments.default_search(packets=10, scale=0.5)
        big = experiments.default_search(packets=10, scale=3.0)
        assert big.packets_per_point > small.packets_per_point
        assert small.packets_per_point >= 4


class TestMeasuredExperimentSmoke:
    """One fast measured experiment end-to-end through the library API."""

    def test_ablation_filters_runs_at_tiny_scale(self):
        result = experiments.ablation_filters(scale=0.5)
        assert {"scenario", "variant", "threshold_db"} == set(result.columns)
        assert len(result.rows) == 8  # 2 scenarios x 4 variants
        thr = {(r["scenario"], r["variant"]): r["threshold_db"] for r in result.rows}
        # the core finding survives even at the tiny scale
        assert thr[("narrow jammer", "full")] < thr[("narrow jammer", "none")]
