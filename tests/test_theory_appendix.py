"""Tests for the Appendix machinery: decision-variable statistics, the
analytic jammer autocorrelation, and the eq.-(6) bridge between designed
FIR filters and the theory."""

import numpy as np
import pytest

from repro.core import theory
from repro.jamming import bandlimited_noise
from repro.spread import random_pn_sequence

FS = 20e6


class TestJammerAutocorrelation:
    def test_lag_zero_is_power(self):
        rho = theory.jammer_autocorrelation(2.5e6, FS, 10, power=7.0)
        assert rho[0] == pytest.approx(7.0)

    def test_full_band_is_white(self):
        rho = theory.jammer_autocorrelation(FS, FS, 8)
        np.testing.assert_allclose(rho[1:], 0.0, atol=1e-12)

    def test_sinc_shape(self):
        b = 5e6
        rho = theory.jammer_autocorrelation(b, FS, 16)
        np.testing.assert_allclose(rho, np.sinc(b / FS * np.arange(16)), atol=1e-12)

    def test_matches_simulated_jammer(self):
        """The analytic ρ_j(k) matches the measured autocorrelation of the
        library's band-limited noise jammer."""
        b = 2.5e6
        n = 1 << 18
        wave = bandlimited_noise(n, b, FS, rng=0)
        lags = 8
        measured = np.array(
            [np.real(np.vdot(wave[: n - k], wave[k:])) / (n - k) for k in range(lags)]
        )
        analytic = theory.jammer_autocorrelation(b, FS, lags)
        np.testing.assert_allclose(measured, analytic, atol=0.08)

    def test_validation(self):
        with pytest.raises(ValueError):
            theory.jammer_autocorrelation(-1.0, FS, 4)
        with pytest.raises(ValueError):
            theory.jammer_autocorrelation(1e6, FS, 0)
        with pytest.raises(ValueError):
            theory.jammer_autocorrelation(1e6, FS, 4, power=-1.0)


class TestDecisionVariableStatistics:
    def test_mean_is_processing_gain(self):
        taps = np.zeros(4)
        taps[0] = 1.0
        mean, _var = theory.decision_variable_statistics(taps, 100, np.zeros(4), 0.0)
        assert mean == 100.0

    def test_snr_equals_mean_squared_over_variance(self):
        # eq. (6) is exactly E(U)^2 / var(U) from eqs. (19)/(20)
        rng = np.random.default_rng(0)
        taps = rng.normal(size=8)
        rho = theory.jammer_autocorrelation(2.5e6, FS, 8, power=50.0)
        mean, var = theory.decision_variable_statistics(taps, 64, rho, 0.5)
        snr = theory.correlator_snr_with_filter(taps, 64, rho, 0.5)
        assert snr == pytest.approx(mean**2 / var, rel=1e-12)

    def test_variance_components_additive(self):
        taps = np.array([1.0, 0.5])
        rho = np.array([10.0, 5.0])
        _m, var_all = theory.decision_variable_statistics(taps, 10, rho, 1.0)
        _m, var_no_noise = theory.decision_variable_statistics(taps, 10, rho, 0.0)
        _m, var_only_noise = theory.decision_variable_statistics(taps, 10, np.zeros(2), 1.0)
        _m, var_bare = theory.decision_variable_statistics(taps, 10, np.zeros(2), 0.0)
        # noise and interference contributions superpose on the self-noise
        assert var_all == pytest.approx(var_no_noise + var_only_noise - var_bare)

    def test_validation(self):
        with pytest.raises(ValueError):
            theory.decision_variable_statistics(np.array([]), 10, np.zeros(1), 0.0)
        with pytest.raises(ValueError):
            theory.decision_variable_statistics(np.ones(4), 0, np.zeros(4), 0.0)
        with pytest.raises(ValueError):
            theory.decision_variable_statistics(np.ones(4), 10, np.zeros(2), 0.0)


class TestEq6AgainstSimulation:
    def test_analysis_predicts_despreading_snr(self):
        """Monte-Carlo check of eq. (6)/(7): build the eq.-(5) chip model
        (white PN chips + band-limited interference + noise), despread
        with L-chip correlation, and compare the measured output SNR to
        the formula — no filter (h = delta)."""
        L = 64
        n_bits = 400
        n_chips = L * n_bits
        rng = np.random.default_rng(1)
        p = random_pn_sequence(n_chips, seed=2)
        jam_power = 20.0
        jam = np.sqrt(2) * np.real(bandlimited_noise(n_chips, 0.5, 1.0, rng=3)) * np.sqrt(jam_power)
        sigma_n2 = 0.5
        noise = rng.normal(scale=np.sqrt(sigma_n2), size=n_chips)
        received = p + jam + noise

        u = (received * p).reshape(n_bits, L).sum(axis=1)
        measured_snr = np.mean(u) ** 2 / np.var(u)
        predicted = theory.correlator_snr_no_filter(L, np.var(jam), sigma_n2)
        assert measured_snr == pytest.approx(predicted, rel=0.35)

    def test_excision_filter_improves_eq6_score(self):
        """Score a real eq.-3 whitening FIR with eq. (6): it must beat the
        unfiltered receiver against a narrow-band jammer."""
        from repro.dsp import design_excision_filter

        rng = np.random.default_rng(4)
        n = 1 << 16
        p = random_pn_sequence(n, seed=5).astype(complex)
        jam = 10.0 * bandlimited_noise(n, 0.05, 1.0, rng=6)  # narrow, strong
        taps = design_excision_filter(p + jam, 1.0, num_taps=65)
        rho = theory.jammer_autocorrelation(0.05, 1.0, 65, power=100.0)
        snr_filtered = theory.correlator_snr_with_filter(taps, 100, rho, 0.01)
        snr_plain = theory.correlator_snr_no_filter(100, 100.0, 0.01)
        assert snr_filtered > 3 * snr_plain
