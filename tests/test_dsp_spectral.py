"""Unit tests for PSD estimation (periodogram / Bartlett / Welch)."""

import numpy as np
import pytest

from repro.dsp import (
    band_power,
    bartlett_psd,
    estimate_spectrum,
    noise_floor,
    occupied_bandwidth,
    periodogram,
    welch_psd,
)
from repro.dsp.mixing import frequency_shift

FS = 20e6


def white_noise(n, power=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.sqrt(power / 2) * (rng.normal(size=n) + 1j * rng.normal(size=n))


class TestPeriodogram:
    def test_parseval_white_noise(self):
        x = white_noise(4096, power=2.0)
        freqs, psd = periodogram(x, FS)
        df = freqs[1] - freqs[0]
        assert np.sum(psd) * df == pytest.approx(2.0, rel=0.05)

    def test_tone_peak_location(self):
        n = np.arange(4096)
        x = np.exp(2j * np.pi * 3e6 / FS * n)
        freqs, psd = periodogram(x, FS)
        assert freqs[np.argmax(psd)] == pytest.approx(3e6, abs=FS / 4096 * 1.5)

    def test_negative_frequency_tone(self):
        n = np.arange(4096)
        x = np.exp(-2j * np.pi * 5e6 / FS * n)
        freqs, psd = periodogram(x, FS)
        assert freqs[np.argmax(psd)] == pytest.approx(-5e6, abs=FS / 4096 * 1.5)

    def test_frequency_axis_two_sided(self):
        freqs, _ = periodogram(white_noise(256), FS)
        assert freqs[0] == pytest.approx(-FS / 2)
        assert freqs[-1] < FS / 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            periodogram(np.array([], dtype=complex), FS)

    def test_nfft_shorter_than_signal_raises(self):
        with pytest.raises(ValueError):
            periodogram(white_noise(256), FS, nfft=128)

    def test_window_power_compensation(self):
        x = white_noise(8192, power=3.0)
        _, psd_rect = periodogram(x, FS, window="rectangular")
        _, psd_hann = periodogram(x, FS, window="hann")
        assert np.mean(psd_hann) == pytest.approx(np.mean(psd_rect), rel=0.1)


class TestWelchAndBartlett:
    def test_welch_flat_for_white_noise(self):
        x = white_noise(65536, power=1.0)
        freqs, psd = welch_psd(x, FS, nperseg=256)
        expected = 1.0 / FS
        assert np.median(psd) == pytest.approx(expected, rel=0.1)
        assert np.std(psd) / np.mean(psd) < 0.2  # averaging reduced variance

    def test_welch_lower_variance_than_periodogram(self):
        x = white_noise(16384)
        _, p1 = periodogram(x, FS)
        _, p2 = welch_psd(x, FS, nperseg=256)
        assert np.std(p2) / np.mean(p2) < np.std(p1) / np.mean(p1)

    def test_bartlett_parseval(self):
        x = white_noise(32768, power=4.0)
        freqs, psd = bartlett_psd(x, FS, nperseg=512)
        df = freqs[1] - freqs[0]
        assert np.sum(psd) * df == pytest.approx(4.0, rel=0.1)

    def test_welch_tone_plus_noise(self):
        n = np.arange(32768)
        x = white_noise(32768, power=0.01) + np.exp(2j * np.pi * 4e6 / FS * n)
        freqs, psd = welch_psd(x, FS, nperseg=512)
        assert freqs[np.argmax(psd)] == pytest.approx(4e6, abs=2 * FS / 512)

    def test_short_signal_degrades_gracefully(self):
        x = white_noise(100)
        freqs, psd = welch_psd(x, FS, nperseg=256)
        assert psd.size == freqs.size

    def test_short_signal_shrinks_to_single_full_segment(self):
        # Degraded nperseg = x.size, so exactly one segment contributes
        # and the estimate equals the single-segment Hann periodogram.
        x = white_noise(100)
        freqs_w, psd_w = welch_psd(x, FS, nperseg=256)
        freqs_p, psd_p = periodogram(x, FS, window="hann")
        assert psd_w.size == x.size  # nfft defaults to the *shrunk* nperseg
        np.testing.assert_allclose(freqs_w, freqs_p)
        np.testing.assert_allclose(psd_w, psd_p, rtol=1e-12)

    def test_short_signal_parseval_preserved(self):
        # Rectangular window (Bartlett) keeps Parseval exact even on the
        # degraded single-short-segment path; Hann only in expectation.
        x = white_noise(75, power=2.0, seed=3)
        freqs, psd = bartlett_psd(x, FS, nperseg=512)
        df = freqs[1] - freqs[0]
        assert float(np.sum(psd) * df) == pytest.approx(
            float(np.mean(np.abs(x) ** 2)), rel=1e-9
        )

    def test_short_signal_float_noverlap_accepted(self):
        # The shrink path rescales noverlap *before* truncation, so a
        # float noverlap (e.g. 0.5 * nperseg computed upstream) must
        # still satisfy 0 <= noverlap < nperseg afterwards.
        x = white_noise(90)
        freqs, psd = welch_psd(x, FS, nperseg=256, noverlap=128.0)
        assert psd.size == freqs.size == 90
        # and an all-but-total float overlap shrinks below the new nperseg
        freqs2, psd2 = welch_psd(x, FS, nperseg=256, noverlap=255.0)
        assert psd2.size == 90

    def test_short_signal_explicit_nfft_respected_after_shrink(self):
        x = white_noise(60)
        freqs, psd = welch_psd(x, FS, nperseg=256, nfft=128)
        assert psd.size == freqs.size == 128

    def test_bartlett_short_signal_degrades_like_welch(self):
        x = white_noise(50, seed=5)
        freqs, psd = bartlett_psd(x, FS, nperseg=4096)
        assert psd.size == 50
        freqs_p, psd_p = periodogram(x, FS, window="rectangular")
        np.testing.assert_allclose(psd, psd_p, rtol=1e-12)

    def test_bad_noverlap_raises(self):
        with pytest.raises(ValueError):
            welch_psd(white_noise(1024), FS, nperseg=256, noverlap=256)

    def test_bad_nperseg_raises(self):
        with pytest.raises(ValueError):
            welch_psd(white_noise(1024), FS, nperseg=1)


class TestEstimateSpectrum:
    def test_total_power_matches(self):
        x = white_noise(65536, power=2.5)
        est = estimate_spectrum(x, FS)
        assert est.total_power == pytest.approx(2.5, rel=0.1)

    def test_floor_matches_noise_density(self):
        x = white_noise(65536, power=1.0)
        est = estimate_spectrum(x, FS)
        assert est.floor == pytest.approx(1.0 / FS, rel=0.15)

    def test_power_in_band(self):
        # Narrowband signal centred at +2 MHz: all power in [1,3] MHz.
        x = frequency_shift(white_noise(65536), 2e6, FS)
        from repro.dsp import apply_fir, lowpass_taps

        base = apply_fir(white_noise(65536), lowpass_taps(201, 0.4e6, FS))
        x = frequency_shift(base, 2e6, FS)
        est = estimate_spectrum(x, FS)
        in_band = est.power_in_band(1e6, 3e6)
        assert in_band == pytest.approx(est.total_power, rel=0.05)

    def test_methods_agree_on_total(self):
        x = white_noise(16384, power=1.0)
        welch = estimate_spectrum(x, FS, method="welch").total_power
        bart = estimate_spectrum(x, FS, method="bartlett").total_power
        peri = estimate_spectrum(x, FS, method="periodogram").total_power
        assert welch == pytest.approx(bart, rel=0.1)
        assert welch == pytest.approx(peri, rel=0.1)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            estimate_spectrum(white_noise(512), FS, method="music")

    def test_bin_width(self):
        est = estimate_spectrum(white_noise(4096), FS, nperseg=256)
        assert est.bin_width == pytest.approx(FS / 256)


class TestOccupiedBandwidth:
    def test_tone_is_narrow(self):
        n = np.arange(65536)
        x = np.exp(2j * np.pi * 1e6 / FS * n) + white_noise(65536, power=1e-6)
        freqs, psd = welch_psd(x, FS, nperseg=1024)
        assert occupied_bandwidth(freqs, psd) < 0.05 * FS

    def test_white_noise_fills_band(self):
        x = white_noise(65536)
        freqs, psd = welch_psd(x, FS, nperseg=256)
        assert occupied_bandwidth(freqs, psd, fraction=0.99) > 0.9 * FS

    def test_bandlimited_noise_measures_bandwidth(self):
        from repro.dsp import apply_fir, lowpass_taps

        x = apply_fir(white_noise(262144), lowpass_taps(401, 2.5e6, FS))
        freqs, psd = welch_psd(x, FS, nperseg=512)
        bw = occupied_bandwidth(freqs, psd, fraction=0.98)
        assert 4e6 < bw < 6.5e6  # two-sided ~5 MHz

    def test_zero_psd_gives_zero(self):
        freqs = np.linspace(-1, 1, 64)
        assert occupied_bandwidth(freqs, np.zeros(64)) == 0.0

    def test_bad_fraction_raises(self):
        freqs = np.linspace(-1, 1, 64)
        with pytest.raises(ValueError):
            occupied_bandwidth(freqs, np.ones(64), fraction=1.5)

    def test_comb_jammer_counts_all_teeth(self):
        # Two tones far apart: occupied bandwidth counts both, not the gap.
        n = np.arange(65536)
        x = np.exp(2j * np.pi * 5e6 / FS * n) + np.exp(-2j * np.pi * 5e6 / FS * n)
        freqs, psd = welch_psd(x, FS, nperseg=1024)
        bw = occupied_bandwidth(freqs, psd, fraction=0.9)
        assert bw < 0.1 * FS  # far less than the 10 MHz spanned gap


class TestHelpers:
    def test_band_power_full_band_is_total(self):
        x = white_noise(16384, power=2.0)
        freqs, psd = welch_psd(x, FS, nperseg=256)
        assert band_power(freqs, psd, -FS / 2, FS / 2) == pytest.approx(2.0, rel=0.1)

    def test_band_power_bad_range_raises(self):
        freqs = np.linspace(-1, 1, 16)
        with pytest.raises(ValueError):
            band_power(freqs, np.ones(16), 0.5, -0.5)

    def test_noise_floor_median(self):
        psd = np.ones(100)
        psd[:10] = 1000.0  # strong narrow jammer does not move the floor
        assert noise_floor(psd) == pytest.approx(1.0)

    def test_noise_floor_empty_raises(self):
        with pytest.raises(ValueError):
            noise_floor(np.array([]))
