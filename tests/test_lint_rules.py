"""The project linter: every checker catches its bad fixture, passes its good one.

Each rule gets a minimal (good, bad) source pair driven through the real
engine, plus suppression-comment coverage, engine-level behaviours
(skip-file, syntax errors, unknown rules), project-rule checks against
synthetic repository trees, report formatting, and — the gate that makes
the rest meaningful — a self-check that the linter runs clean over this
repository's own ``src/`` tree.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint.engine import (
    Finding,
    ProjectContext,
    SourceFile,
    all_rules,
    run_lint,
)
from repro.lint.manifest import BATCH_EQUIVALENCE, resolve, serial_twin
from repro.lint.project import (
    KnobDocsRule,
    MypyBaselineRule,
    _pattern_covers,
    collect_code_knobs,
    documented_knobs,
    frozen_baseline,
)
from repro.lint.report import format_findings
from repro.lint.rules import (
    BatchSymmetryRule,
    DtypeDisciplineRule,
    HiddenGlobalRule,
    MutableDefaultRule,
    RngDisciplineRule,
    dotted_name,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def source(text, relpath="src/repro/dsp/fixture.py"):
    """Parse fixture text into a SourceFile at a rule-relevant location."""
    return SourceFile(relpath, relpath, textwrap.dedent(text))


def findings_of(rule, text, relpath="src/repro/dsp/fixture.py"):
    src = source(text, relpath)
    return [f for f in rule.check_source(src) if not src.suppressed(f.line, f.rule)]


class TestRngDiscipline:
    RULE = RngDisciplineRule()

    def test_bad_bare_default_rng(self):
        found = findings_of(self.RULE, """\
            import numpy as np
            def f():
                return np.random.default_rng(3).normal(size=4)
        """)
        assert [f.rule for f in found] == ["rng-discipline"]
        assert found[0].line == 3

    def test_bad_global_state_draw(self):
        found = findings_of(self.RULE, """\
            import numpy as np
            x = np.random.normal(size=4)
        """)
        assert len(found) == 1
        assert "global state" in found[0].message

    def test_bad_imported_default_rng(self):
        found = findings_of(self.RULE, """\
            from numpy.random import default_rng
            gen = default_rng(7)
        """)
        assert len(found) == 1

    def test_good_make_rng(self):
        assert findings_of(self.RULE, """\
            from repro.utils.rng import make_rng
            def f(seed):
                return make_rng(seed).normal(size=4)
        """) == []

    def test_good_type_references(self):
        assert findings_of(self.RULE, """\
            import numpy as np
            def f(rng):
                assert isinstance(rng, np.random.Generator("x"))
        """) == []

    def test_rng_home_is_exempt(self):
        assert findings_of(self.RULE, """\
            import numpy as np
            def make_rng(seed=None):
                return np.random.default_rng(seed)
        """, relpath="src/repro/utils/rng.py") == []


class TestDtypeDiscipline:
    RULE = DtypeDisciplineRule()

    def test_bad_dtypeless_zeros(self):
        found = findings_of(self.RULE, """\
            import numpy as np
            buf = np.zeros(128)
        """)
        assert [f.rule for f in found] == ["dtype-discipline"]

    def test_good_explicit_dtype(self):
        assert findings_of(self.RULE, """\
            import numpy as np
            a = np.zeros(128, dtype=np.complex128)
            b = np.ones(4, dtype=float)
            c = np.full(3, 1.5, dtype=float)
            d = np.empty(2, np.float64)
        """) == []

    def test_full_needs_dtype_beyond_fill_value(self):
        found = findings_of(self.RULE, """\
            import numpy as np
            a = np.full(3, 1.5)
        """)
        assert len(found) == 1

    def test_out_of_scope_package_ignored(self):
        assert findings_of(self.RULE, """\
            import numpy as np
            buf = np.zeros(128)
        """, relpath="src/repro/analysis/fixture.py") == []


class TestBatchSymmetry:
    RULE = BatchSymmetryRule()

    def test_bad_unregistered_batch_function(self):
        found = findings_of(self.RULE, """\
            def warp_batch(x):
                return x
        """)
        assert len(found) == 1
        assert "repro.dsp.fixture:warp_batch" in found[0].message

    def test_bad_unregistered_batch_method(self):
        found = findings_of(self.RULE, """\
            class Warper:
                def warp_batch(self, x):
                    return x
        """)
        assert len(found) == 1
        assert "Warper.warp_batch" in found[0].message

    def test_good_registered_batch(self):
        assert findings_of(self.RULE, """\
            def apply_fir_batch(x):
                return x
        """, relpath="src/repro/dsp/fir.py") == []

    def test_private_and_out_of_scope_ignored(self):
        assert findings_of(self.RULE, """\
            def _helper_batch(x):
                return x
        """) == []
        assert findings_of(self.RULE, """\
            def warp_batch(x):
                return x
        """, relpath="src/repro/jamming/fixture.py") == []


class TestMutableDefault:
    RULE = MutableDefaultRule()

    def test_bad_list_default(self):
        found = findings_of(self.RULE, """\
            def f(history=[]):
                return history
        """)
        assert [f.rule for f in found] == ["mutable-default"]

    def test_bad_ndarray_class_default(self):
        found = findings_of(self.RULE, """\
            import numpy as np
            class State:
                buffer = np.zeros(4, dtype=float)
        """)
        assert len(found) == 1

    def test_good_none_and_field_factory(self):
        assert findings_of(self.RULE, """\
            from dataclasses import dataclass, field
            @dataclass
            class State:
                taps: list = field(default_factory=list)
            def f(history=None, limit=float("inf")):
                return history
        """) == []

    def test_good_upper_case_class_constant(self):
        assert findings_of(self.RULE, """\
            class Rule:
                TABLE = {"zeros": 1}
        """) == []


class TestHiddenGlobal:
    RULE = HiddenGlobalRule()

    def test_bad_lowercase_module_dict(self):
        found = findings_of(self.RULE, """\
            cache = {}
        """)
        assert [f.rule for f in found] == ["hidden-global"]

    def test_good_registry_constant_and_locals(self):
        assert findings_of(self.RULE, """\
            JAMMER_REGISTRY = {}
            _PULSES = {"rect": 1}
            def f():
                local = {}
                return local
        """) == []


class TestSuppression:
    def test_inline_ignore_specific_rule(self):
        found = findings_of(RngDisciplineRule(), """\
            import numpy as np
            gen = np.random.default_rng(3)  # repro-lint: ignore[rng-discipline]
        """)
        assert found == []

    def test_inline_ignore_all(self):
        found = findings_of(RngDisciplineRule(), """\
            import numpy as np
            gen = np.random.default_rng(3)  # repro-lint: ignore
        """)
        assert found == []

    def test_ignore_for_other_rule_does_not_mask(self):
        found = findings_of(RngDisciplineRule(), """\
            import numpy as np
            gen = np.random.default_rng(3)  # repro-lint: ignore[dtype-discipline]
        """)
        assert len(found) == 1

    def test_skip_file_marker(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "# repro-lint: skip-file\nimport numpy as np\ngen = np.random.default_rng(1)\n"
        )
        report = run_lint([str(bad)], root=str(tmp_path), rules=["rng-discipline"])
        assert report.ok
        assert report.files_scanned == 0


class TestEngine:
    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            run_lint(["src"], root=REPO, rules=["bogus"])

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint([os.path.join(REPO, "does-not-exist")], root=REPO)

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = run_lint([str(bad)], root=str(tmp_path), rules=["rng-discipline"])
        assert not report.ok
        assert report.errors and "broken.py" in report.errors[0]

    def test_findings_sorted_and_deduplicated(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "dsp" / "z.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nb = np.zeros(4)\na = np.zeros(3)\n")
        report = run_lint(
            [str(tmp_path / "src")], root=str(tmp_path), rules=["dtype-discipline"]
        )
        assert [f.line for f in report.findings] == [2, 3]
        assert report.counts_by_rule() == {"dtype-discipline": 2}

    def test_module_name_resolution(self):
        assert source("x = 1", "src/repro/dsp/fir.py").module_name() == "repro.dsp.fir"
        assert source("x = 1", "src/repro/dsp/__init__.py").module_name() == "repro.dsp"


class TestBatchManifest:
    def test_every_entry_resolves(self):
        for batch_ref, serial_ref in BATCH_EQUIVALENCE.items():
            assert callable(resolve(batch_ref)), batch_ref
            assert callable(resolve(serial_ref)), serial_ref

    def test_serial_twin_lookup(self):
        assert serial_twin("repro.dsp.fir:apply_fir_batch") == "repro.dsp.fir:apply_fir"
        assert serial_twin("repro.dsp.fir:not_registered_batch") is None

    def test_stale_reference_fails_to_resolve(self):
        with pytest.raises(Exception):
            resolve("repro.dsp.fir:gone_with_the_wind")


class TestKnobDocsRule:
    def make_ctx(self, tmp_path, code, api_text, readme_text=""):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(textwrap.dedent(code))
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "API.md").write_text(api_text)
        (tmp_path / "EXPERIMENTS.md").write_text("")
        (tmp_path / "README.md").write_text(readme_text)
        src = SourceFile(
            str(pkg / "mod.py"), "src/repro/mod.py", (pkg / "mod.py").read_text()
        )
        return ProjectContext(root=str(tmp_path), sources=[src])

    def test_undocumented_knob_flagged(self, tmp_path):
        ctx = self.make_ctx(tmp_path, 'import os\nv = os.environ.get("REPRO_MYSTERY")\n', "")
        found = list(KnobDocsRule().check_project(ctx))
        assert [f.rule for f in found] == ["knob-docs"]
        assert "REPRO_MYSTERY" in found[0].message

    def test_phantom_doc_knob_flagged(self, tmp_path):
        ctx = self.make_ctx(tmp_path, "x = 1\n", "Set `REPRO_GHOST=1` to enable.\n")
        found = list(KnobDocsRule().check_project(ctx))
        assert len(found) == 1
        assert found[0].path == "docs/API.md"

    def test_documented_knob_is_clean(self, tmp_path):
        ctx = self.make_ctx(
            tmp_path,
            'import os\nv = os.environ.get("REPRO_THING")\n',
            "`REPRO_THING` controls the thing.\n",
        )
        assert list(KnobDocsRule().check_project(ctx)) == []

    def test_helpers(self, tmp_path):
        ctx = self.make_ctx(tmp_path, 'k = "REPRO_A"\nj = "not_a_knob"\n', "")
        assert set(collect_code_knobs(ctx)) == {"REPRO_A"}
        assert documented_knobs("use REPRO_A and REPRO_B") == {"REPRO_A", "REPRO_B"}


class TestMypyBaselineRule:
    def run_rule(self, tmp_path, modules):
        toml = "[tool.mypy]\nstrict = true\n[[tool.mypy.overrides]]\nmodule = [\n"
        toml += "".join(f'    "{m}",\n' for m in modules)
        toml += "]\nignore_errors = true\n"
        (tmp_path / "pyproject.toml").write_text(toml)
        ctx = ProjectContext(root=str(tmp_path), sources=[])
        return list(MypyBaselineRule().check_project(ctx))

    def test_grown_baseline_flagged(self, tmp_path):
        found = self.run_rule(tmp_path, sorted(frozen_baseline()) + ["repro.newpkg.*"])
        assert any("grew" in f.message and "repro.newpkg.*" in f.message for f in found)

    def test_stale_entry_flagged(self, tmp_path):
        modules = sorted(frozen_baseline() - {"repro.phy.*"})
        found = self.run_rule(tmp_path, modules)
        assert any("stale" in f.message and "repro.phy.*" in f.message for f in found)

    def test_strict_package_never_ignorable(self, tmp_path):
        found = self.run_rule(tmp_path, sorted(frozen_baseline()) + ["repro.core.link"])
        assert any("strict package" in f.message for f in found)

    def test_pattern_covers_glob_semantics(self):
        assert _pattern_covers("repro.core.*", "repro.core")
        assert _pattern_covers("repro.core.link", "repro.core")
        assert _pattern_covers("repro.*", "repro.core")
        assert _pattern_covers("repro.utils.rng", "repro.utils.rng")
        # exact-module patterns do not reach into subpackages
        assert not _pattern_covers("repro", "repro.core")
        assert not _pattern_covers("repro.utils", "repro.utils.rng")
        assert not _pattern_covers("repro.channel.*", "repro.core")

    def test_frozen_baseline_matches_pyproject(self):
        report = run_lint(
            [os.path.join(REPO, "src")], root=REPO, rules=["mypy-baseline"]
        )
        assert report.findings == [], report.findings


class TestReportFormats:
    FINDING = Finding("src/a.py", 3, 1, "rng-discipline", "bad %\r\n stuff")

    def make_report(self):
        from repro.lint.engine import LintReport

        return LintReport(findings=[self.FINDING], files_scanned=1, rules_run=["rng-discipline"])

    def test_pretty(self):
        text = format_findings(self.make_report(), "pretty")
        assert "src/a.py:3:2: rng-discipline:" in text
        assert "1 finding" in text

    def test_json_roundtrip(self):
        payload = json.loads(format_findings(self.make_report(), "json"))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "rng-discipline"
        assert payload["counts"] == {"rng-discipline": 1}

    def test_github_escapes_workflow_metacharacters(self):
        text = format_findings(self.make_report(), "github")
        line = next(ln for ln in text.splitlines() if ln.startswith("::error"))
        assert "file=src/a.py,line=3" in line
        assert "%25" in line and "%0D" in line and "%0A" in line
        assert "\r" not in line.split("::", 2)[2]

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            format_findings(self.make_report(), "xml")


class TestSelfCheck:
    """The linter's reason to exist: this repository passes its own gate."""

    def test_repo_src_tree_is_clean(self):
        report = run_lint([os.path.join(REPO, "src")], root=REPO)
        assert report.errors == []
        assert report.findings == [], format_findings(report, "pretty")

    def test_all_rules_have_unique_ids_and_docs(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert len(ids) == len(set(ids))
        assert all(r.description for r in rules)
        assert all(r.__doc__ for r in rules)

    def test_dotted_name_helper(self):
        import ast

        expr = ast.parse("np.random.default_rng", mode="eval").body
        assert dotted_name(expr) == "np.random.default_rng"
        call = ast.parse("(lambda: 1)()", mode="eval").body
        assert dotted_name(call.func) is None


class TestMypyStrict:
    """Skip-gated: runs the real mypy wall when the tool is installed."""

    def test_strict_packages_pass(self):
        pytest.importorskip("mypy")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
