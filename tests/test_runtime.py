"""Unit tests for the parallel execution runtime (pool, cache, timing)."""

import json
import os

import numpy as np
import pytest

from repro.analysis import run_sweep
from repro.core import BHSSConfig, LinkSimulator
from repro.jamming import BandlimitedNoiseJammer, HoppingJammer
from repro.runtime import (
    MapReport,
    ParallelExecutor,
    ResultCache,
    SweepTiming,
    canonical,
    resolve_workers,
    stable_hash,
)

FORK = ParallelExecutor.fork_available()
needs_fork = pytest.mark.skipif(not FORK, reason="fork start method unavailable")


def make_link(**kw):
    return LinkSimulator(BHSSConfig.paper_default(payload_bytes=4, seed=21, **kw))


class TestResolveWorkers:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 0
        assert not ParallelExecutor.from_env().parallel

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers() == 4

    def test_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_negative_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_one_means_serial(self):
        assert not ParallelExecutor(1).parallel


class TestParallelExecutor:
    def test_serial_map_order(self):
        ex = ParallelExecutor(0)
        assert ex.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_empty_items(self):
        report = ParallelExecutor(2).map_timed(lambda x: x, [])
        assert report.values == ()
        assert report.wall_seconds == 0.0

    @needs_fork
    def test_pool_map_matches_serial_with_closure(self):
        offset = 7  # captured by the closure — unpicklable transports fail here
        fn = lambda x: x + offset
        items = list(range(23))
        assert ParallelExecutor(3).map(fn, items) == ParallelExecutor(0).map(fn, items)

    @needs_fork
    def test_pool_preserves_input_order(self):
        items = list(range(17))
        assert ParallelExecutor(4).map(lambda x: x, items) == items

    @needs_fork
    def test_pool_worker_exception_propagates(self):
        def boom(x):
            raise RuntimeError("worker failure")

        with pytest.raises(RuntimeError):
            ParallelExecutor(2).map(boom, [1, 2, 3])

    @needs_fork
    def test_no_nested_pools(self):
        from repro.runtime import executor as executor_module

        def probe(_x):
            # Inside a pool worker the module flag is set and any nested
            # executor must take the serial path.
            return executor_module._IN_WORKER and not ParallelExecutor(8).parallel

        flags = ParallelExecutor(2).map(probe, [0, 1, 2])
        assert all(flags)

    def test_map_timed_report(self):
        report = ParallelExecutor(0).map_timed(lambda x: x, [1, 2])
        assert isinstance(report, MapReport)
        assert len(report.seconds) == 2
        assert report.workers == 1
        assert 0.0 <= report.utilization <= 1.0


class TestCanonicalAndHash:
    def test_dict_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2.5}) == stable_hash({"b": 2.5, "a": 1})

    def test_numpy_equals_python(self):
        assert stable_hash({"x": np.float64(1.5)}) == stable_hash({"x": 1.5})
        assert canonical(np.array([1.0, 2.0])) == [repr(1.0), repr(2.0)]

    def test_distinguishes_values(self):
        assert stable_hash({"seed": 1}) != stable_hash({"seed": 2})

    def test_config_fingerprint_stable_and_discriminating(self):
        a = canonical(BHSSConfig.paper_default(seed=1))
        b = canonical(BHSSConfig.paper_default(seed=1))
        c = canonical(BHSSConfig.paper_default(seed=2))
        assert stable_hash(a) == stable_hash(b)
        assert stable_hash(a) != stable_hash(c)

    def test_inf_and_bytes(self):
        assert stable_hash(float("inf")) != stable_hash(float("-inf"))
        assert canonical(b"\x01\x02") == {"__bytes__": "0102"}


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = {"config": "x", "seed": 3}
        assert cache.get(key) is None
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put({"k": 1}, {"v": 1})
        path = cache._path(stable_hash({"k": 1}))
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get({"k": 1}) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put({"k": 1}, {"v": 1})
        cache.put({"k": 2}, {"v": 2})
        assert cache.clear() == 2
        assert cache.get({"k": 1}) is None

    def test_from_env_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert ResultCache.from_env() is None
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert ResultCache.from_env() is None

    def test_from_env_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "c"))
        cache = ResultCache.from_env()
        assert cache is not None
        assert cache.root == str(tmp_path / "c")


class TestLinkParallelEquivalence:
    """Same seed => identical LinkStats, serial or pooled (the contract)."""

    @needs_fork
    def test_unjammed_batch_identical(self):
        link = make_link()
        a = link.run_packets(6, snr_db=6.0, seed=5, executor=ParallelExecutor(0), cache=False)
        b = link.run_packets(6, snr_db=6.0, seed=5, executor=ParallelExecutor(3), cache=False)
        assert a == b

    @needs_fork
    def test_jammed_batch_identical(self):
        link = make_link()
        jam = lambda: BandlimitedNoiseJammer(2.5e6, 20e6)
        a = link.run_packets(
            8, snr_db=10.0, sjr_db=-8.0, jammer=jam(), seed=2,
            executor=ParallelExecutor(0), cache=False,
        )
        b = link.run_packets(
            8, snr_db=10.0, sjr_db=-8.0, jammer=jam(), seed=2,
            executor=ParallelExecutor(4), cache=False,
        )
        assert a == b
        assert a.filter_usage == b.filter_usage

    @needs_fork
    def test_stateful_jammer_forces_serial_path(self):
        link = make_link()
        jam = lambda: HoppingJammer([10e6, 2.5e6], 20e6, dwell_samples=4096, seed=9)
        a = link.run_packets(
            5, snr_db=10.0, sjr_db=-8.0, jammer=jam(), seed=2,
            executor=ParallelExecutor(0), cache=False,
        )
        b = link.run_packets(
            5, snr_db=10.0, sjr_db=-8.0, jammer=jam(), seed=2,
            executor=ParallelExecutor(4), cache=False,
        )
        assert a == b  # pooled call fell back to the ordered serial loop

    def test_chunk_bounds_cover_range(self):
        bounds = LinkSimulator._chunk_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        covered = [k for a, b in bounds for k in range(a, b)]
        assert covered == list(range(10))
        assert LinkSimulator._chunk_bounds(1, 8) == [(0, 1)]

    def test_run_packets_cache_hit(self, tmp_path):
        link = make_link()
        cache = ResultCache(str(tmp_path))
        a = link.run_packets(3, snr_db=12.0, seed=7, cache=cache)
        assert cache.hits == 0
        b = link.run_packets(3, snr_db=12.0, seed=7, cache=cache)
        assert cache.hits == 1
        assert a == b

    def test_cache_distinguishes_operating_points(self, tmp_path):
        link = make_link()
        cache = ResultCache(str(tmp_path))
        link.run_packets(3, snr_db=12.0, seed=7, cache=cache)
        link.run_packets(3, snr_db=13.0, seed=7, cache=cache)
        link.run_packets(3, snr_db=12.0, seed=8, cache=cache)
        link.run_packets(4, snr_db=12.0, seed=7, cache=cache)
        assert cache.hits == 0

    def test_stateful_jammer_never_cached(self, tmp_path):
        link = make_link()
        cache = ResultCache(str(tmp_path))
        jam = lambda: HoppingJammer([10e6, 2.5e6], 20e6, dwell_samples=4096, seed=9)
        link.run_packets(3, snr_db=10.0, sjr_db=-5.0, jammer=jam(), seed=1, cache=cache)
        link.run_packets(3, snr_db=10.0, sjr_db=-5.0, jammer=jam(), seed=1, cache=cache)
        assert cache.hits == 0 and cache.misses == 0

    def test_cache_false_disables_env_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        link = make_link()
        link.run_packets(2, snr_db=12.0, seed=7, cache=False)
        link.run_packets(2, snr_db=12.0, seed=7, cache=False)
        assert not any(
            name.endswith(".json")
            for _root, _dirs, files in os.walk(tmp_path)
            for name in files
        )


class TestSweepParallelEquivalence:
    @needs_fork
    def test_link_sweep_rows_identical(self):
        link = make_link()

        def evaluate(snr):
            stats = link.run_packets(
                3, snr_db=snr, sjr_db=-6.0,
                jammer=BandlimitedNoiseJammer(2.5e6, 20e6), seed=4,
                executor=ParallelExecutor(0), cache=False,
            )
            return {"snr": snr, "per": stats.packet_error_rate, "ber": stats.bit_error_rate}

        grid = [0.0, 5.0, 10.0, 15.0]
        serial = run_sweep(["snr", "per", "ber"], grid, evaluate, executor=ParallelExecutor(0))
        pooled = run_sweep(["snr", "per", "ber"], grid, evaluate, executor=ParallelExecutor(4))
        assert serial.rows == pooled.rows
        assert serial == pooled  # timing differs but is excluded from equality

    def test_timing_attached(self):
        result = run_sweep(["x"], [1, 2, 3], lambda x: {"x": x}, executor=ParallelExecutor(0))
        assert isinstance(result.timing, SweepTiming)
        assert result.timing.num_points == 3
        assert result.timing.wall_seconds > 0
        assert result.timing.workers == 1
        assert json.dumps(result.timing.to_dict())  # JSON-able for BENCH files

    def test_tuple_scalar_points_not_splatted_with_unpack_false(self):
        # Regression: a grid of (lo, hi) bracket "scalars" used to be
        # silently splatted into evaluate(lo, hi).
        grid = [(0.0, 1.0), (2.0, 5.0)]
        result = run_sweep(
            ["bracket", "width"],
            grid,
            lambda p: {"bracket": p, "width": p[1] - p[0]},
            unpack=False,
        )
        assert result.column("bracket") == grid
        assert result.column("width") == [1.0, 3.0]

    def test_unpack_default_still_splats(self):
        result = run_sweep(["s"], [(1, 2), (3, 4)], lambda a, b: {"s": a + b})
        assert result.column("s") == [3, 7]


class TestSweepTiming:
    def test_derived_quantities(self):
        t = SweepTiming(wall_seconds=2.0, point_seconds=(1.0, 1.0, 2.0), workers=2, packets=40)
        assert t.busy_seconds == 4.0
        assert t.utilization == 1.0
        assert t.points_per_second == 1.5
        assert t.packets_per_second == 20.0
        assert "pkt/s" in t.summary()

    def test_zero_wall_is_safe(self):
        t = SweepTiming(wall_seconds=0.0, point_seconds=(), workers=1)
        assert t.utilization == 0.0
        assert t.points_per_second == 0.0
        assert t.packets_per_second is None

    def test_raw_utilization_is_not_clamped(self):
        # Overlapping worker timers can report busy > workers * wall; the
        # display value clamps but the diagnostic one must not.
        t = SweepTiming(wall_seconds=1.0, point_seconds=(0.9, 0.8), workers=1)
        assert t.raw_utilization == pytest.approx(1.7)
        assert t.utilization == 1.0
        assert t.to_dict()["raw_utilization"] == pytest.approx(1.7)
        assert t.to_dict()["utilization"] == 1.0

    def test_utilization_matches_raw_when_below_one(self):
        t = SweepTiming(wall_seconds=4.0, point_seconds=(1.0, 1.0), workers=2)
        assert t.raw_utilization == pytest.approx(0.25)
        assert t.utilization == t.raw_utilization

    def test_empty_sweep(self):
        t = SweepTiming(wall_seconds=0.5, point_seconds=(), workers=4)
        assert t.num_points == 0
        assert t.busy_seconds == 0.0
        assert t.utilization == 0.0
        assert t.points_per_second == 0.0
        d = t.to_dict()
        assert d["num_points"] == 0
        assert d["point_seconds"] == []
        assert "packets" not in d
        assert t.summary().startswith("timing: 0 points")

    def test_packets_per_second_with_batch_fields(self):
        t = SweepTiming(
            wall_seconds=2.0, point_seconds=(1.0,), workers=1, packets=256, batch_size=64
        )
        assert t.packets_per_second == 128.0
        d = t.to_dict()
        assert d["packets"] == 256
        assert d["packets_per_second"] == 128.0
        assert d["batch_size"] == 64
        assert "batch 64" in t.summary()

    def test_serial_batch_size_renders_as_serial(self):
        t = SweepTiming(wall_seconds=1.0, point_seconds=(0.5,), workers=1, batch_size=1)
        assert "serial packets" in t.summary()
        assert t.to_dict()["batch_size"] == 1

    def test_unknown_batch_size_omitted(self):
        t = SweepTiming(wall_seconds=1.0, point_seconds=(0.5,), workers=1)
        assert "batch_size" not in t.to_dict()
        assert "batch" not in t.summary()

    def test_cache_hits_in_summary(self):
        t = SweepTiming(wall_seconds=1.0, point_seconds=(0.1, 0.1), workers=1, cache_hits=1)
        assert "cache hits 1/2" in t.summary()
        assert t.to_dict()["cache_hits"] == 1


class TestCacheIntegrity:
    def test_entries_are_checksummed_on_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put({"k": 1}, {"per": 0.25})
        with open(cache._path(stable_hash({"k": 1}))) as fh:
            doc = json.load(fh)
        assert set(doc) == {"sha256", "value"}
        assert doc["value"] == {"per": 0.25}
        assert len(doc["sha256"]) == 64

    def test_legacy_plain_dict_entry_still_served(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache._path(stable_hash({"k": 1}))
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as fh:
            json.dump({"per": 0.5}, fh)  # pre-checksum entry format
        assert cache.get({"k": 1}) == {"per": 0.5}
        assert cache.corrupt == 0

    def test_checksum_mismatch_quarantined_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put({"k": 1}, {"per": 0.25})
        path = cache._path(stable_hash({"k": 1}))
        with open(path) as fh:
            doc = json.load(fh)
        doc["value"]["per"] = 0.75  # tamper without re-hashing
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get({"k": 1}) is None
        assert cache.corrupt == 1 and cache.misses == 1
        assert not os.path.exists(path)  # moved aside, never served again
        assert os.listdir(os.path.join(str(tmp_path), "quarantine"))

    def test_undecodable_bytes_are_corrupt(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put({"k": 1}, {"per": 0.25})
        path = cache._path(stable_hash({"k": 1}))
        with open(path, "wb") as fh:
            fh.write(b"\xff\xfe garbage")
        with pytest.warns(RuntimeWarning):
            assert cache.get({"k": 1}) is None

    def test_verify_counts_and_gc_cleans(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put({"k": 1}, {"v": 1})
        cache.put({"k": 2}, {"v": 2})
        legacy = cache._path(stable_hash({"k": 3}))
        os.makedirs(os.path.dirname(legacy), exist_ok=True)
        with open(legacy, "w") as fh:
            json.dump({"v": 3}, fh)
        bad = cache._path(stable_hash({"k": 1}))
        with open(bad, "a") as fh:
            fh.write("bit rot")
        audit = cache.verify()
        assert (audit.entries, audit.valid, audit.legacy, audit.corrupt) == (3, 1, 1, 1)
        assert audit.corrupt_paths == (bad,)
        assert not audit.ok
        swept = cache.gc()
        assert swept.removed == 1 and swept.ok
        assert (swept.entries, swept.valid, swept.legacy) == (2, 1, 1)
        assert cache.verify().ok  # verify is read-only; gc actually cleaned

    def test_gc_removes_quarantined_and_tmp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put({"k": 1}, {"v": 1})
        path = cache._path(stable_hash({"k": 1}))
        with open(path, "w") as fh:
            fh.write("{nope")
        with pytest.warns(RuntimeWarning):
            cache.get({"k": 1})  # quarantines
        stray = os.path.join(str(tmp_path), "ab", "leftover.tmp")
        os.makedirs(os.path.dirname(stray), exist_ok=True)
        with open(stray, "w") as fh:
            fh.write("partial write")
        assert cache.verify().quarantined == 1
        swept = cache.gc()
        assert swept.removed == 2  # the quarantined entry + the stray tmp
        assert swept.quarantined == 0
        assert not os.path.exists(stray)

    def test_put_on_unwritable_root_warns_once_and_degrades(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file where the cache root should be")
        cache = ResultCache(str(blocker))
        with pytest.warns(RuntimeWarning, match="cannot write result cache"):
            cache.put({"k": 1}, {"v": 1})
        cache.put({"k": 2}, {"v": 2})  # second failure is silent
        assert cache.get({"k": 1}) is None  # sweep just runs uncached

    def test_put_still_raises_on_unjsonable_value(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(TypeError):
            cache.put({"k": 1}, {"v": object()})


class TestRetriesReporting:
    def test_map_report_defaults_to_zero_retries(self):
        report = MapReport(values=(1,), seconds=(0.5,), wall_seconds=0.5, workers=1)
        assert report.retries == 0

    def test_sweep_timing_retries_in_dict_and_summary(self):
        t = SweepTiming(wall_seconds=1.0, point_seconds=(0.5,), workers=2, retries=3)
        assert t.to_dict()["retries"] == 3
        assert "retries 3" in t.summary()

    def test_sweep_timing_zero_retries_omitted(self):
        t = SweepTiming(wall_seconds=1.0, point_seconds=(0.5,), workers=2)
        assert "retries" not in t.to_dict()
        assert "retries" not in t.summary()
