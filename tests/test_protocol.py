"""Seed-synchronized session layer: packetizer, hop seeds, chaos recovery.

The acceptance bar mirrors the runtime's chaos tests: a session that
loses seed sync — whether through channel damage or injected protocol
faults — must either recover within its re-sync budget and deliver the
exact bytes a fault-free run delivers, or degrade deterministically to
the static widest band.  Serial and pooled sweeps over session grids
must stay bit-identical, faults included.
"""

import pytest

from repro.core.config import BHSSConfig
from repro.protocol import (
    CounterSeedGenerator,
    Fragment,
    MessageTrafficSpec,
    PacketKind,
    ProtocolError,
    Reassembler,
    SessionError,
    SessionSpec,
    SessionState,
    TimeSlottedSeedGenerator,
    build_fragment,
    fragment_message,
    parse_fragment,
    reassemble_message,
    run_session,
    seed_commitment,
    seed_generator_from_spec,
    seed_generator_names,
    simulate_session,
    verify_seed_generator_roundtrip,
    whiten,
    whitening_sequence,
)
from repro.protocol.packetizer import HEADER_BYTES
from repro.protocol.spec import default_sync_retries, default_sync_timeout
from repro.runtime import FaultPlan, ParallelExecutor

FORK = ParallelExecutor.fork_available()
needs_fork = pytest.mark.skipif(not FORK, reason="fork start method unavailable")


@pytest.fixture(autouse=True)
def _no_ambient_knobs(monkeypatch):
    """Session/fault knobs must come only from each test."""
    for var in (
        "REPRO_FAULTS",
        "REPRO_SYNC_RETRIES",
        "REPRO_SYNC_TIMEOUT",
        "REPRO_WORKERS",
        "REPRO_CACHE",
        "REPRO_CHECKPOINT",
    ):
        monkeypatch.delenv(var, raising=False)


def small_spec(**overrides) -> SessionSpec:
    """A fast session: short messages over the paper link at 4 sym/hop."""
    base = dict(
        name="test-session",
        config=BHSSConfig.paper_default(pattern="parabolic", seed=42, payload_bytes=16),
        traffic=MessageTrafficSpec(num_messages=2, message_bytes=24, seed=3),
        jammer={"type": "none"},
        seed_generator={"type": "counter", "key": 7},
        snr_db=(15.0,),
        sjr_db=(-4.0,),
        seed=5,
        packets_per_epoch=6,
        resync_retries=3,
        sync_timeout=4,
    )
    base.update(overrides)
    return SessionSpec(**base)


# -- whitening ----------------------------------------------------------------


class TestWhitening:
    def test_whiten_is_an_involution(self):
        data = bytes(range(64))
        assert whiten(whiten(data, 0x55), 0x55) == data

    def test_sequence_is_deterministic_and_seed_dependent(self):
        assert whitening_sequence(16, 0x7F) == whitening_sequence(16, 0x7F)
        assert whitening_sequence(16, 0x7F) != whitening_sequence(16, 0x01)

    def test_sequence_has_full_lfsr_period(self):
        # x^7 + x^4 + 1 is primitive: the bit stream repeats every 127 bits.
        stream = whitening_sequence(254)  # 2032 bits >> one period
        bits = [(byte >> k) & 1 for byte in stream for k in range(8)]
        assert bits[:127] == bits[127:254]
        assert any(bits[:127])  # never the all-zero degenerate stream

    def test_seed_zero_and_out_of_range_rejected(self):
        for bad in (0, 128, -1):
            with pytest.raises(ValueError, match="whitening seed"):
                whitening_sequence(4, bad)


# -- packetizer ---------------------------------------------------------------


class TestPacketizer:
    def test_build_parse_roundtrip(self):
        wire = build_fragment(PacketKind.DATA, 9, 2, 5, b"hello", 16, 77)
        assert len(wire) == 16
        frag = parse_fragment(wire, 77)
        assert frag == Fragment(
            kind=PacketKind.DATA, message_id=9, frag_index=2, total_frags=5, chunk=b"hello"
        )

    def test_truncated_fragment_rejected(self):
        wire = build_fragment(PacketKind.DATA, 1, 0, 1, b"abcdefg", 12, 5)
        with pytest.raises(ProtocolError, match="truncated"):
            parse_fragment(wire[: HEADER_BYTES - 1], 5)
        with pytest.raises(ProtocolError, match="truncated"):
            parse_fragment(wire[:-1], 5)

    def test_structurally_bad_headers_rejected(self):
        with pytest.raises(ProtocolError, match="out of range"):
            build_fragment(PacketKind.DATA, 0, 3, 3, b"x", 16, 1)
        with pytest.raises(ProtocolError, match="MTU capacity"):
            build_fragment(PacketKind.DATA, 0, 0, 1, b"x" * 12, 16, 1)
        wire = bytearray(build_fragment(PacketKind.DATA, 1, 0, 1, b"abc", 12, 5))
        wire[3] = 250  # unknown kind byte
        with pytest.raises(ProtocolError, match="kind"):
            parse_fragment(bytes(wire), 5)

    def test_fragment_and_reassemble_any_order(self):
        message = bytes(range(100))
        frags = [parse_fragment(w, 9) for w in fragment_message(message, 16, 4, 9)]
        assert len(frags) > 2
        assert reassemble_message(reversed(frags)) == message

    def test_reassembler_tolerates_duplicates_and_interleaving(self):
        asm = Reassembler()
        a = [parse_fragment(w, 1) for w in fragment_message(b"A" * 40, 16, 0, 1)]
        b = [parse_fragment(w, 1) for w in fragment_message(b"B" * 40, 16, 1, 1)]
        done = []
        for frag in (a[0], b[0], a[0], a[1], b[1], b[2], a[2], a[3], b[3]):
            out = asm.add(frag)
            if out is not None:
                done.append(out)
        assert done == [b"A" * 40, b"B" * 40]
        assert asm.crc_failures == 0

    def test_corrupted_chunk_fails_crc_and_frees_the_id(self):
        asm = Reassembler()
        frags = [parse_fragment(w, 2) for w in fragment_message(b"payload!", 16, 3, 2)]
        bad = Fragment(
            kind=PacketKind.DATA,
            message_id=3,
            frag_index=0,
            total_frags=frags[0].total_frags,
            chunk=bytes(len(frags[0].chunk)),
        )
        for frag in [bad, *frags[1:]]:
            assert asm.add(frag) is None
        assert asm.crc_failures == 1
        # the id is free again: a clean retransmission completes
        out = None
        for frag in frags:
            out = asm.add(frag) or out
        assert out == b"payload!"

    def test_reassembler_rejects_control_and_total_mismatch(self):
        asm = Reassembler()
        with pytest.raises(ProtocolError, match="DATA"):
            asm.add(
                Fragment(
                    kind=PacketKind.HANDSHAKE, message_id=0, frag_index=0, total_frags=1, chunk=b""
                )
            )
        asm.add(
            Fragment(kind=PacketKind.DATA, message_id=5, frag_index=0, total_frags=3, chunk=b"x")
        )
        with pytest.raises(ProtocolError, match="claimed"):
            asm.add(
                Fragment(
                    kind=PacketKind.DATA, message_id=5, frag_index=1, total_frags=2, chunk=b"y"
                )
            )


# -- hop-seed generators ------------------------------------------------------


class TestHopSeeds:
    def test_registry_names(self):
        assert seed_generator_names() == ["counter", "time-slotted"]

    def test_counter_stream_is_deterministic_and_epoch_dependent(self):
        gen = CounterSeedGenerator(key=11)
        seeds = [gen.seed_for_epoch(e) for e in range(6)]
        assert seeds == [CounterSeedGenerator(key=11).seed_for_epoch(e) for e in range(6)]
        assert len(set(seeds)) == len(seeds)
        assert seeds != [CounterSeedGenerator(key=12).seed_for_epoch(e) for e in range(6)]

    def test_time_slotted_groups_epochs(self):
        gen = TimeSlottedSeedGenerator(key=2, slot_epochs=3)
        assert gen.seed_for_epoch(0) == gen.seed_for_epoch(2)
        assert gen.seed_for_epoch(2) != gen.seed_for_epoch(3)

    def test_spec_roundtrip_and_rejection(self):
        gen = seed_generator_from_spec({"type": "time-slotted", "key": 4, "slot_epochs": 2})
        assert gen.spec() == {"type": "time-slotted", "key": 4, "slot_epochs": 2}
        with pytest.raises(ValueError, match="unknown seed-generator"):
            seed_generator_from_spec({"type": "quantum"})
        with pytest.raises(ValueError, match="not recognized"):
            seed_generator_from_spec({"type": "counter", "keys": 1})
        with pytest.raises(ValueError, match="type"):
            seed_generator_from_spec({"key": 1})

    def test_lint_roundtrip_helper_passes_registry(self):
        for name in seed_generator_names():
            gen = seed_generator_from_spec({"type": name})
            assert verify_seed_generator_roundtrip(gen)["type"] == name

    def test_commitment_is_32_bit_and_keyed(self):
        assert 0 <= seed_commitment(123) <= 0xFFFFFFFF
        assert seed_commitment(123) != seed_commitment(124)


# -- specs --------------------------------------------------------------------


class TestSpecs:
    def test_traffic_roundtrip_and_unknown_field(self):
        spec = MessageTrafficSpec(num_messages=3, message_bytes=10, seed=2)
        assert MessageTrafficSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(SessionError, match="unknown field"):
            MessageTrafficSpec.from_dict({"num_messages": 1, "bytes": 4})

    def test_traffic_messages_are_deterministic(self):
        spec = MessageTrafficSpec(num_messages=2, message_bytes=8, seed=9)
        assert spec.messages() == spec.messages()
        assert all(len(m) == 8 for m in spec.messages())
        assert spec.messages() != MessageTrafficSpec(2, 8, seed=10).messages()

    def test_session_spec_roundtrip(self):
        spec = small_spec()
        again = SessionSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()

    def test_session_save_load(self, tmp_path):
        spec = small_spec()
        path = spec.save(str(tmp_path / "session.json"))
        assert SessionSpec.load(path).to_dict() == spec.to_dict()

    def test_mtu_floor_names_the_field(self):
        with pytest.raises(SessionError, match="config.payload_bytes"):
            small_spec(config=BHSSConfig.paper_default(payload_bytes=12))

    def test_from_dict_unknown_field_and_bad_grid(self):
        good = small_spec().to_dict()
        bad = dict(good)
        bad["mystery"] = 1
        with pytest.raises(SessionError, match="unknown session field"):
            SessionSpec.from_dict(bad)
        bad = dict(good)
        bad["grid"] = {"snr_db": [], "sjr_db": [-4.0]}
        with pytest.raises(SessionError, match="snr_db"):
            SessionSpec.from_dict(bad)

    def test_validate_deep_checks_component_specs(self):
        with pytest.raises(SessionError, match="jammer"):
            small_spec(jammer={"type": "no-such-jammer"}).validate()
        with pytest.raises(SessionError, match="seed_generator"):
            small_spec(seed_generator={"type": "quantum"}).validate()

    def test_sync_knobs_resolve_from_env(self, monkeypatch):
        assert default_sync_retries() == 3
        assert default_sync_timeout() == 4
        monkeypatch.setenv("REPRO_SYNC_RETRIES", "5")
        monkeypatch.setenv("REPRO_SYNC_TIMEOUT", "2")
        spec = small_spec(resync_retries=None, sync_timeout=None)
        assert spec.resync_retries == 5
        assert spec.sync_timeout == 2
        monkeypatch.setenv("REPRO_SYNC_RETRIES", "zero")
        with pytest.raises(SessionError, match="REPRO_SYNC_RETRIES"):
            default_sync_retries()
        monkeypatch.setenv("REPRO_SYNC_RETRIES", "0")
        with pytest.raises(SessionError, match="REPRO_SYNC_RETRIES"):
            default_sync_retries()

    def test_points_and_slot_budget(self):
        spec = small_spec(snr_db=(10.0, 15.0), sjr_db=(-4.0, -8.0))
        assert spec.points() == [(10.0, -4.0), (10.0, -8.0), (15.0, -4.0), (15.0, -8.0)]
        assert spec.slot_budget() >= 8 * spec.num_fragments()
        assert small_spec(max_slots=40).slot_budget() == 40


# -- session state machine ----------------------------------------------------


def desync_firing_seed(epochs: int = 4) -> int:
    """A fault seed whose desync draw fires on the very first epoch."""
    for seed in range(1000):
        plan = FaultPlan(desync=0.5, seed=seed)
        if plan.should("desync", "0"):
            return seed
    raise AssertionError("no firing seed found — probabilities broken?")


class TestSessionRuns:
    def test_benign_session_delivers_everything(self):
        stats = simulate_session(small_spec(), snr_db=15.0, sjr_db=-4.0)
        assert stats.delivery_ratio == 1.0
        assert stats.final_state == SessionState.SYNCED.value
        assert not stats.degraded
        assert stats.desync_count == 0
        assert stats.handshake_accepted >= 1
        # delivered payloads are the exact traffic bytes
        expected = {i: m for i, m in enumerate(small_spec().traffic.messages())}
        assert stats.delivered == expected

    def test_transitions_start_with_handshake(self):
        stats = simulate_session(small_spec(), snr_db=15.0, sjr_db=-4.0)
        assert stats.transitions[0][1:] == (SessionState.IDLE.value, SessionState.HANDSHAKE.value)
        assert stats.transitions[1][2] == SessionState.SYNCED.value

    def test_repeat_runs_are_bit_identical(self):
        spec = small_spec()
        first = simulate_session(spec, 15.0, -4.0).to_dict()
        second = simulate_session(spec, 15.0, -4.0).to_dict()
        assert first == second

    def test_forced_desync_recovers_within_budget(self):
        spec = small_spec()
        plan = FaultPlan(desync=0.5, seed=desync_firing_seed())
        stats = simulate_session(spec, 15.0, -4.0, faults=plan)
        assert stats.desync_injected >= 1
        assert stats.desync_count >= 1
        assert stats.resync_count == stats.desync_count  # every desync recovered
        assert not stats.degraded
        assert stats.delivery_ratio == 1.0
        assert all(lat >= 1 for lat in stats.resync_latencies)

    def test_chaos_session_is_bit_identical_to_fault_free_payloads(self):
        spec = small_spec()
        clean = simulate_session(spec, 15.0, -4.0)
        plan = FaultPlan.parse("drop-handshake:0.3,desync:0.5,seed:%d" % desync_firing_seed())
        faulted = simulate_session(spec, 15.0, -4.0, faults=plan)
        assert faulted.delivered == clean.delivered
        assert simulate_session(spec, 15.0, -4.0, faults=plan).to_dict() == faulted.to_dict()

    def test_budget_exhaustion_degrades_to_static_band(self):
        # At -20 dB SNR no handshake ever decodes: the session must walk
        # the full retry budget and then pin itself to the widest band.
        spec = small_spec(resync_retries=2, sync_timeout=2, max_slots=40)
        stats = simulate_session(spec, snr_db=-20.0, sjr_db=-4.0)
        assert stats.degraded
        assert stats.final_state == SessionState.DEGRADED.value
        assert stats.handshake_tx == 4  # retries x timeout, then give up
        assert stats.handshake_accepted == 0

    def test_dropped_handshakes_consume_no_airtime(self):
        spec = small_spec()
        plan = FaultPlan(drop_handshake=1.0, seed=0)
        stats = simulate_session(spec, 15.0, -4.0, faults=plan)
        assert stats.handshake_dropped >= 1
        # drop fires only on attempt 0 of each round; later attempts succeed
        assert stats.delivery_ratio == 1.0


# -- sweep runner -------------------------------------------------------------


class TestRunSession:
    def test_rows_follow_grid_order(self):
        spec = small_spec(sjr_db=(-4.0, -8.0))
        result = run_session(spec, executor=ParallelExecutor(0))
        assert result.column("sjr_db") == [-4.0, -8.0]
        assert set(result.rows[0]) == set(result.columns)

    @needs_fork
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_serial_vs_pool_bit_identical(self, seed):
        spec = small_spec(seed=seed, sjr_db=(-4.0, -8.0), jammer={"type": "follower", "initial_bandwidth": 10000000.0})
        serial = run_session(spec, executor=ParallelExecutor(0))
        pooled = run_session(spec, executor=ParallelExecutor(2))
        assert serial.as_table_rows() == pooled.as_table_rows()

    @needs_fork
    def test_serial_vs_pool_bit_identical_under_protocol_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "drop-handshake:0.3,desync:0.2,seed:5")
        spec = small_spec(sjr_db=(-4.0, -8.0), jammer={"type": "follower", "initial_bandwidth": 10000000.0})
        serial = run_session(spec, executor=ParallelExecutor(0))
        pooled = run_session(spec, executor=ParallelExecutor(2))
        assert serial.as_table_rows() == pooled.as_table_rows()

    def test_cache_key_includes_protocol_faults(self, tmp_path, monkeypatch):
        from repro.runtime import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        spec = small_spec()
        clean = run_session(spec, executor=ParallelExecutor(0), cache=cache)
        monkeypatch.setenv("REPRO_FAULTS", "desync:1.0,seed:%d" % desync_firing_seed())
        faulted = run_session(spec, executor=ParallelExecutor(0), cache=cache)
        # a desynced run resyncs: the cached clean row must NOT be reused
        assert faulted.column("desync_count") != clean.column("desync_count")

    def test_checkpoint_resume_skips_completed_points(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT", str(tmp_path / "ckpt"))
        spec = small_spec(sjr_db=(-4.0, -8.0))
        first = run_session(spec, executor=ParallelExecutor(0))
        again = run_session(spec, executor=ParallelExecutor(0))
        assert first.as_table_rows() == again.as_table_rows()
