"""The declarative scenario layer: serialization, registries, execution.

Covers the spec round trips (``BHSSConfig.to_dict``/``from_dict``, jammer
``spec()``/``from_spec`` for every registered type), the field-naming
validation errors, ``Scenario`` load/save/build, serial-vs-parallel
equivalence of ``run_scenario`` through the spec transport, and the
cross-process cache-key guarantee (identical scenario JSON → same cache
entries).
"""

import json

import numpy as np
import pytest

from repro.channel import (
    Impairments,
    MultipathChannel,
    channel_from_spec,
    channel_names,
    channel_spec,
    impairments_from_spec,
)
from repro.core import BHSSConfig, LinkSimulator
from repro.jamming import (
    JAMMER_REGISTRY,
    BandlimitedNoiseJammer,
    CombJammer,
    FollowerJammer,
    HoppingJammer,
    LatentReactiveJammer,
    MatchedReactiveJammer,
    MultiToneJammer,
    NoJammer,
    PulsedJammer,
    RepeaterJammer,
    SweepJammer,
    ToneJammer,
    jammer_from_spec,
    jammer_names,
)
from repro.jamming.base import Jammer
from repro.runtime import ParallelExecutor, ResultCache, spec_runner_ref
from repro.scenario import SCENARIO_COLUMNS, Scenario, ScenarioError, run_scenario
from repro.utils.rng import make_rng

FS = 20e6


# ---------------------------------------------------------------------------
# config round trips
# ---------------------------------------------------------------------------

class TestConfigRoundTrip:
    @pytest.mark.parametrize(
        "cfg",
        [
            BHSSConfig.paper_default(),
            BHSSConfig.paper_default().without_filtering(),
            BHSSConfig.paper_default().as_theory_baseline(),
            BHSSConfig.paper_default(pattern="parabolic", seed=42, payload_bytes=8),
            BHSSConfig.paper_default(pulse="rect", symbols_per_hop=16),
            BHSSConfig.paper_default(fec="hamming74"),
            BHSSConfig.paper_default().with_fixed_bandwidth(1.25e6),
        ],
        ids=[
            "paper_default",
            "without_filtering",
            "as_theory_baseline",
            "parabolic_variant",
            "rect_pulse",
            "hamming_fec",
            "fixed_bandwidth",
        ],
    )
    def test_lossless(self, cfg):
        assert BHSSConfig.from_dict(cfg.to_dict()) == cfg

    def test_array_pattern_round_trips_via_dict(self):
        # frozen-dataclass equality chokes on ndarray fields, so the
        # explicit-weights variant is asserted at the spec level
        weights = np.array([0.4, 0.2, 0.1, 0.1, 0.1, 0.05, 0.05])
        cfg = BHSSConfig.paper_default(pattern=weights)
        spec = cfg.to_dict()
        assert spec["pattern"] == [pytest.approx(w) for w in weights]
        assert BHSSConfig.from_dict(spec).to_dict() == spec

    def test_dict_is_json_serializable(self):
        text = json.dumps(BHSSConfig.paper_default(fec="rep3").to_dict())
        assert BHSSConfig.from_dict(json.loads(text)) == BHSSConfig.paper_default(fec="rep3")

    def test_defaults_match_paper_default(self):
        assert BHSSConfig.from_dict({}) == BHSSConfig.paper_default()

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ({"symbols_per_hop": "four"}, "symbols_per_hop"),
            ({"filtering": 1}, "filtering"),
            ({"payload_bytes": 1.5}, "payload_bytes"),
            ({"bogus_field": 1}, "bogus_field"),
            ({"fec": 7}, "fec"),
        ],
    )
    def test_errors_name_the_field(self, spec, fragment):
        with pytest.raises(ValueError, match=fragment):
            BHSSConfig.from_dict(spec)


# ---------------------------------------------------------------------------
# jammer registry round trips
# ---------------------------------------------------------------------------

def _sample_jammers() -> dict[str, Jammer]:
    """One representative instance per registered jammer type."""
    return {
        "none": NoJammer(),
        "noise": BandlimitedNoiseJammer(0.625e6, FS, centre=1e6),
        "tone": ToneJammer(1e6, FS),
        "sweep": SweepJammer(-4e6, 4e6, FS, sweep_duration=1e-3),
        "pulsed": PulsedJammer(ToneJammer(2e6, FS), duty_cycle=0.3, period_samples=512),
        "comb": CombJammer([-3e6, -1e6, 1e6, 3e6], FS, seed=5),
        "hopping": HoppingJammer(
            [10e6, 5e6, 2.5e6], FS, dwell_samples=2048, weights="parabolic", seed=9
        ),
        "reactive": MatchedReactiveJammer(
            FS, reaction_samples=1024, initial_bandwidth=10e6, reaction_fraction=0.25
        ),
        "latent-reactive": LatentReactiveJammer(
            FS, bandwidth=2.5e6, threshold_db=-6.0, turnaround_samples=1024
        ),
        "repeater": RepeaterJammer(delay_samples=64, num_taps=3),
        "multitone": MultiToneJammer(FS, placement_bandwidth=0.625e6, num_tones=4),
        "follower": FollowerJammer(FS, initial_bandwidth=2.5e6, learning_rate=0.5),
    }


class TestJammerRegistry:
    def test_every_registered_type_has_a_sample(self):
        assert set(_sample_jammers()) == set(JAMMER_REGISTRY)
        assert jammer_names() == sorted(JAMMER_REGISTRY)

    @pytest.mark.parametrize("name", sorted(JAMMER_REGISTRY))
    def test_spec_round_trip(self, name):
        jammer = _sample_jammers()[name]
        spec = jammer.spec()
        assert spec["type"] == name
        rebuilt = jammer_from_spec(json.loads(json.dumps(spec)))
        assert rebuilt.spec() == spec
        # behavioral equality: identical RNGs must draw identical waveforms
        a = jammer.waveform(512, make_rng(123))
        b = rebuilt.waveform(512, make_rng(123))
        np.testing.assert_array_equal(a, b)

    def test_sample_rate_injection(self):
        jammer = jammer_from_spec({"type": "noise", "bandwidth": 1e6}, sample_rate=FS)
        assert jammer.sample_rate == FS

    def test_unknown_type_and_fields_named(self):
        with pytest.raises(ValueError, match="nope"):
            jammer_from_spec({"type": "nope"})
        with pytest.raises(ValueError, match="bandwith"):
            jammer_from_spec({"type": "noise", "bandwith": 1e6, "sample_rate": FS})

    def test_passthrough_of_instances(self):
        jammer = NoJammer()
        assert jammer_from_spec(jammer) is jammer


# ---------------------------------------------------------------------------
# channel registry
# ---------------------------------------------------------------------------

class TestChannelRegistry:
    def test_multipath_round_trip(self):
        channel = MultipathChannel(num_taps=8, decay_samples=3.0, seed=3, line_of_sight=1.0)
        spec = channel.spec()
        rebuilt = channel_from_spec(json.loads(json.dumps(spec)))
        assert rebuilt.spec() == spec
        x = (np.arange(64) + 1j * np.arange(64)).astype(complex)
        np.testing.assert_array_equal(channel.apply(x), rebuilt.apply(x))

    def test_none_channel(self):
        assert channel_from_spec(None) is None
        assert channel_from_spec({"type": "none"}) is None
        assert channel_spec(None) == {"type": "none"}
        assert "none" in channel_names()

    def test_impairments_round_trip(self):
        imp = Impairments(cfo_hz=150.0, phase_rad=0.2, dc_offset=0.01 + 0.02j)
        spec = json.loads(json.dumps(imp.to_dict()))
        assert impairments_from_spec(spec) == imp
        assert impairments_from_spec(None) is None

    def test_bad_channel_field_named(self):
        with pytest.raises(ValueError, match="num_tapz"):
            channel_from_spec({"type": "multipath", "num_tapz": 8})


# ---------------------------------------------------------------------------
# Scenario spec
# ---------------------------------------------------------------------------

def _scenario() -> Scenario:
    return Scenario(
        name="unit",
        config=BHSSConfig.from_dict({"pattern": "parabolic", "seed": 42, "payload_bytes": 4}),
        jammer={"type": "noise", "bandwidth": 625e3},
        snr_db=(15.0,),
        sjr_db=(0.0, -10.0),
        packets=3,
        seed=7,
        description="unit-test scenario",
    )


class TestScenario:
    def test_round_trip(self):
        s = _scenario()
        assert Scenario.from_dict(s.to_dict()).to_dict() == s.to_dict()

    def test_save_load(self, tmp_path):
        path = _scenario().save(str(tmp_path / "s.json"))
        loaded = Scenario.load(path)
        assert loaded.to_dict() == _scenario().to_dict()

    def test_build_returns_ready_components(self):
        link, jammer = _scenario().build()
        assert isinstance(link, LinkSimulator)
        assert isinstance(jammer, BandlimitedNoiseJammer)
        assert jammer.sample_rate == link.config.sample_rate

    def test_points_cross_product(self):
        assert _scenario().points() == [(15.0, 0.0), (15.0, -10.0)]

    @pytest.mark.parametrize(
        "data, fragment",
        [
            ({}, "name"),
            ({"name": "x", "extra": 1}, "extra"),
            ({"name": "x", "grid": {"snr_db": []}}, "grid.snr_db"),
            ({"name": "x", "grid": {"snr_db": [1.0, "two"]}}, r"grid.snr_db\[1\]"),
            ({"name": "x", "grid": {"foo": [1.0]}}, "foo"),
            ({"name": "x", "packets": 0}, "packets"),
            ({"name": "x", "jammer": {"type": "nope"}}, "jammer"),
            ({"name": "x", "config": {"symbols_per_hop": "four"}}, "symbols_per_hop"),
            ({"name": "x", "channel": {"type": "warp"}}, "channel"),
        ],
    )
    def test_validation_errors_name_the_field(self, data, fragment):
        with pytest.raises(ScenarioError, match=fragment):
            Scenario.from_dict(data)

    def test_load_errors_carry_the_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "packets": -1}')
        with pytest.raises(ScenarioError, match="bad.json"):
            Scenario.load(str(path))

    def test_example_error_message_shape(self):
        with pytest.raises(ScenarioError) as err:
            Scenario.from_dict({"name": "x", "config": {"symbols_per_hop": "four"}})
        assert "config field 'symbols_per_hop': expected an integer" in str(err.value)


# ---------------------------------------------------------------------------
# scenario execution
# ---------------------------------------------------------------------------

class TestRunScenario:
    def test_columns_and_rows(self):
        result = run_scenario(_scenario(), cache=False)
        assert result.columns == SCENARIO_COLUMNS
        assert len(result.rows) == 2
        assert result.timing is not None
        assert result.timing.packets == 2 * 3

    def test_parallel_matches_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        serial = run_scenario(_scenario(), cache=False)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel = run_scenario(_scenario(), cache=False)
        assert parallel.rows == serial.rows
        if ParallelExecutor.fork_available():
            assert parallel.timing.workers == 2

    def test_run_sweep_dispatches_scenarios(self):
        from repro.analysis.sweep import run_sweep

        direct = run_scenario(_scenario(), cache=False)
        via_sweep = run_sweep(_scenario(), cache=False)
        assert via_sweep.rows == direct.rows
        with pytest.raises(ValueError, match="its own grid"):
            run_sweep(_scenario(), [1.0], lambda x: {})

    def test_cache_hits_on_identical_scenario_json(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        root = str(tmp_path / "cache")
        text = json.dumps(_scenario().to_dict())

        # first "process": populate the cache from the JSON spec
        first = run_scenario(Scenario.from_dict(json.loads(text)), cache=root)

        # second "process": a fresh cache object and freshly parsed spec
        # must hit the same entries without re-simulating
        probe = ResultCache(root)
        scenario = Scenario.from_dict(json.loads(text))
        link, jammer = scenario.build()
        for snr, sjr in scenario.points():
            link.run_packets(
                scenario.packets, snr_db=snr, sjr_db=sjr, jammer=jammer,
                seed=scenario.seed, cache=probe,
            )
        assert probe.hits == len(scenario.points())
        assert probe.misses == 0

        # and the cached rerun reproduces the original rows
        again = run_scenario(Scenario.from_dict(json.loads(text)), cache=root)
        assert again.rows == first.rows


# ---------------------------------------------------------------------------
# spec transport
# ---------------------------------------------------------------------------

def _double(spec, item):
    return {"value": spec["k"] * item}


class TestMapSpec:
    def test_serial_and_string_ref(self):
        ex = ParallelExecutor(0)
        report = ex.map_spec(_double, {"k": 3}, [1, 2, 3])
        assert [v["value"] for v in report.values] == [3, 6, 9]
        ref = spec_runner_ref(_double)
        assert ref == f"{__name__}:_double"
        report2 = ex.map_spec(ref, {"k": 3}, [1, 2, 3])
        assert report2.values == report.values

    def test_pool_matches_serial(self):
        items = list(range(8))
        serial = ParallelExecutor(0).map_spec(_double, {"k": 2}, items)
        pooled = ParallelExecutor(2).map_spec(_double, {"k": 2}, items)
        assert pooled.values == serial.values

    def test_rejects_unimportable_runners(self):
        ex = ParallelExecutor(0)
        with pytest.raises(ValueError, match="spec runner"):
            ex.map_spec(lambda spec, item: item, {}, [1])
        with pytest.raises(ValueError, match="module:qualname"):
            spec_runner_ref("no_colon_here")
        with pytest.raises(ValueError, match="cannot import"):
            spec_runner_ref("definitely.missing.module:fn")

    def test_empty_items(self):
        report = ParallelExecutor(4).map_spec(_double, {"k": 1}, [])
        assert report.values == ()
