"""Tests for the command-line interface and the recording I/O."""

import json
import os

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.utils import load_cf32, load_recording, save_cf32, save_recording


class TestRecordings:
    def test_cf32_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000) + 1j * rng.normal(size=1000)
        path = str(tmp_path / "wave.cf32")
        save_cf32(path, x)
        back = load_cf32(path)
        assert back.dtype == np.complex128
        np.testing.assert_allclose(back, x, atol=1e-6)  # float32 precision

    def test_cf32_file_size(self, tmp_path):
        path = str(tmp_path / "w.cf32")
        save_cf32(path, np.zeros(100, dtype=complex))
        assert os.path.getsize(path) == 100 * 8  # 2 x float32 per sample

    def test_recording_with_metadata(self, tmp_path):
        x = np.ones(64, dtype=complex)
        path = str(tmp_path / "rec.cf32")
        save_recording(path, x, sample_rate=20e6, centre_frequency=2.45e9, annotations={"k": "v"})
        samples, meta = load_recording(path)
        np.testing.assert_allclose(samples, x, atol=1e-6)
        assert meta["sample_rate"] == 20e6
        assert meta["centre_frequency"] == 2.45e9
        assert meta["annotations"] == {"k": "v"}
        assert meta["num_samples"] == 64

    def test_inconsistent_sidecar_raises(self, tmp_path):
        path = str(tmp_path / "rec.cf32")
        save_recording(path, np.ones(10, dtype=complex), sample_rate=1e6)
        meta = json.load(open(path + ".json"))
        meta["num_samples"] = 999
        json.dump(meta, open(path + ".json", "w"))
        with pytest.raises(ValueError):
            load_recording(path)

    def test_missing_sidecar_raises(self, tmp_path):
        path = str(tmp_path / "rec.cf32")
        save_cf32(path, np.ones(4, dtype=complex))
        with pytest.raises(FileNotFoundError):
            load_recording(path)

    def test_bad_sample_rate_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_recording(str(tmp_path / "x.cf32"), np.ones(4, dtype=complex), sample_rate=0.0)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["info"])
        assert args.command == "info"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_info(self, capsys):
        assert main(["info", "--payload-bytes", "8"]) == 0
        out = capsys.readouterr().out
        assert "hop range" in out and "64x" in out
        assert "exponential" in out

    def test_info_with_fec(self, capsys):
        assert main(["info", "--fec", "hamming74"]) == 0
        out = capsys.readouterr().out
        assert "hamming74" in out

    def test_theory(self, capsys):
        assert main(["theory", "--bp", "1e6", "--bj", "1e6"]) == 0
        out = capsys.readouterr().out
        assert "0.00 dB" in out  # matched bandwidths: no improvement

    def test_theory_narrow_jammer(self, capsys):
        assert main(["theory", "--bp", "1e7", "--bj", "1e5", "--jammer-power", "20"]) == 0
        out = capsys.readouterr().out
        assert "gamma upper bound" in out

    def test_simulate_clean(self, capsys):
        code = main(
            [
                "simulate",
                "--packets", "3",
                "--payload-bytes", "4",
                "--snr", "25",
                "--jammer", "none",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PER           : 0.000" in out

    def test_simulate_with_tone_jammer(self, capsys):
        code = main(
            [
                "simulate",
                "--packets", "2",
                "--payload-bytes", "4",
                "--snr", "20",
                "--sjr", "-5",
                "--jammer", "tone",
            ]
        )
        assert code == 0
        assert "tone jammer" in capsys.readouterr().out

    def test_simulate_fixed_bandwidth_no_filtering(self, capsys):
        code = main(
            [
                "simulate",
                "--packets", "2",
                "--payload-bytes", "4",
                "--snr", "25",
                "--jammer", "none",
                "--fixed-bandwidth", "10e6",
                "--no-filtering",
            ]
        )
        assert code == 0
        assert "filter usage" not in capsys.readouterr().out

    def test_threshold(self, capsys):
        code = main(
            [
                "threshold",
                "--payload-bytes", "4",
                "--packets", "4",
                "--tolerance", "3",
                "--jammer", "noise",
                "--jammer-bandwidth", "0.625e6",
                "--fixed-bandwidth", "10e6",
            ]
        )
        assert code == 0
        assert "min SNR" in capsys.readouterr().out

    def test_optimize(self, capsys):
        assert main(["optimize", "--trials", "50"]) == 0
        out = capsys.readouterr().out
        assert "worst-case expected gamma" in out

    def test_record(self, tmp_path, capsys):
        out_path = str(tmp_path / "pkt.cf32")
        code = main(["record", "--payload-bytes", "4", "-o", out_path])
        assert code == 0
        samples, meta = load_recording(out_path)
        assert samples.size == meta["num_samples"] > 0
        assert meta["annotations"]["payload_bytes"] == 4

    def test_record_hop_profile_annotation(self, tmp_path):
        out_path = str(tmp_path / "pkt2.cf32")
        main(["record", "--payload-bytes", "4", "--pattern", "linear", "-o", out_path])
        _s, meta = load_recording(out_path)
        profile = meta["annotations"]["hop_profile_mhz"]
        assert len(profile) >= 1
        assert all(0.1 < bw <= 10.0 for bw in profile)

    def test_hopping_jammer_option(self, capsys):
        code = main(
            [
                "simulate",
                "--packets", "2",
                "--payload-bytes", "4",
                "--snr", "20",
                "--sjr", "-5",
                "--jammer", "hopping",
                "--jammer-pattern", "exponential",
            ]
        )
        assert code == 0
        assert "hopping jammer" in capsys.readouterr().out


class TestCliReproduce:
    def test_list(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "tab2" in out

    def test_no_experiment_lists(self, capsys):
        assert main(["reproduce"]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["reproduce", "fig99"]) == 2

    def test_runs_analytic_experiment(self, capsys, tmp_path):
        path = str(tmp_path / "fig07.csv")
        assert main(["reproduce", "fig07", "-o", path]) == 0
        text = open(path).read()
        assert text.startswith("bp_over_bj,")
        assert "gamma_db_20dBm" in capsys.readouterr().out

    def test_tuple_result_writes_two_csvs(self, tmp_path, capsys):
        base = str(tmp_path / "tab1.csv")
        assert main(["reproduce", "tab1", "-o", base]) == 0
        import os

        assert os.path.exists(str(tmp_path / "tab1_0.csv"))
        assert os.path.exists(str(tmp_path / "tab1_1.csv"))
