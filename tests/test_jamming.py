"""Unit tests for the jammer models."""

import numpy as np
import pytest

from repro.dsp import welch_psd
from repro.dsp.spectral import occupied_bandwidth
from repro.jamming import (
    BandlimitedNoiseJammer,
    HoppingJammer,
    MatchedReactiveJammer,
    NoJammer,
    PulsedJammer,
    SweepJammer,
    ToneJammer,
    bandlimited_noise,
)
from repro.utils import signal_power

FS = 20e6


def measured_bandwidth(x, fraction=0.98):
    freqs, psd = welch_psd(x, FS, nperseg=512)
    return occupied_bandwidth(freqs, psd, fraction=fraction)


class TestNoJammer:
    def test_zero_waveform(self):
        w = NoJammer().waveform(100)
        np.testing.assert_array_equal(w, 0)

    def test_description(self):
        assert "no jammer" in NoJammer().description

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            NoJammer().waveform(-1)


class TestBandlimitedNoise:
    def test_unit_power(self):
        w = bandlimited_noise(65536, 2.5e6, FS, rng=0)
        assert signal_power(w) == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("bw", [10e6, 2.5e6, 0.625e6])
    def test_occupies_requested_bandwidth(self, bw):
        w = bandlimited_noise(262144, bw, FS, rng=1)
        measured = measured_bandwidth(w)
        assert 0.6 * bw < measured < 1.6 * bw

    def test_centre_offset(self):
        w = bandlimited_noise(65536, 1e6, FS, rng=2, centre=4e6)
        freqs, psd = welch_psd(w, FS, nperseg=512)
        assert freqs[np.argmax(psd)] == pytest.approx(4e6, abs=0.7e6)

    def test_full_band_degenerates_to_white(self):
        w = bandlimited_noise(65536, 25e6, FS, rng=3)
        assert measured_bandwidth(w) > 0.9 * FS

    def test_zero_samples(self):
        assert bandlimited_noise(0, 1e6, FS).size == 0

    def test_jammer_class_wraps(self):
        jam = BandlimitedNoiseJammer(2.5e6, FS)
        w = jam.waveform(32768, rng=4)
        assert signal_power(w) == pytest.approx(1.0, rel=1e-9)
        assert "2.5" in jam.description

    def test_jammer_centre_out_of_band_raises(self):
        with pytest.raises(ValueError):
            BandlimitedNoiseJammer(1e6, FS, centre=11e6)

    def test_bad_bandwidth_raises(self):
        with pytest.raises(ValueError):
            BandlimitedNoiseJammer(0.0, FS)


class TestToneJammer:
    def test_constant_envelope(self):
        jam = ToneJammer(3e6, FS)
        w = jam.waveform(4096)
        np.testing.assert_allclose(np.abs(w), 1.0, atol=1e-12)

    def test_frequency(self):
        jam = ToneJammer(-2e6, FS)
        w = jam.waveform(8192)
        freqs, psd = welch_psd(w, FS, nperseg=1024)
        assert freqs[np.argmax(psd)] == pytest.approx(-2e6, abs=FS / 1024 * 2)

    def test_phase_continuity_across_calls(self):
        jam = ToneJammer(1e6, FS)
        a = jam.waveform(1000)
        b = jam.waveform(1000)
        jam2 = ToneJammer(1e6, FS)
        whole = jam2.waveform(2000)
        np.testing.assert_allclose(np.concatenate([a, b]), whole, atol=1e-9)

    def test_reset(self):
        jam = ToneJammer(1e6, FS)
        a = jam.waveform(100)
        jam.reset()
        b = jam.waveform(100)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_out_of_band_raises(self):
        with pytest.raises(ValueError):
            ToneJammer(11e6, FS)


class TestSweepJammer:
    def test_unit_power(self):
        jam = SweepJammer(-5e6, 5e6, FS, sweep_duration=1e-3)
        assert signal_power(jam.waveform(10000)) == pytest.approx(1.0, abs=1e-9)

    def test_covers_band_over_full_sweep(self):
        jam = SweepJammer(-5e6, 5e6, FS, sweep_duration=65536 / FS)
        w = jam.waveform(65536)
        assert measured_bandwidth(w, fraction=0.95) > 8e6

    def test_position_continuity(self):
        jam = SweepJammer(-1e6, 1e6, FS, sweep_duration=1e-3)
        a = jam.waveform(500)
        b = jam.waveform(500)
        jam.reset()
        whole = jam.waveform(1000)
        np.testing.assert_allclose(np.concatenate([a, b]), whole, atol=1e-9)

    def test_bad_band_raises(self):
        with pytest.raises(ValueError):
            SweepJammer(5e6, -5e6, FS, 1e-3)

    def test_band_outside_nyquist_raises(self):
        with pytest.raises(ValueError):
            SweepJammer(-15e6, 15e6, FS, 1e-3)


class TestPulsedJammer:
    def test_average_power_unity(self):
        inner = BandlimitedNoiseJammer(5e6, FS)
        jam = PulsedJammer(inner, duty_cycle=0.25, period_samples=1000)
        w = jam.waveform(100_000, rng=5)
        assert signal_power(w) == pytest.approx(1.0, rel=0.1)

    def test_peak_power_boosted(self):
        inner = ToneJammer(1e6, FS)
        jam = PulsedJammer(inner, duty_cycle=0.25, period_samples=1000)
        w = jam.waveform(10_000)
        on = w[np.abs(w) > 0]
        assert signal_power(on) == pytest.approx(4.0, rel=0.05)
        assert on.size == pytest.approx(2500, abs=10)

    def test_gating_pattern(self):
        inner = ToneJammer(0.0, FS)
        jam = PulsedJammer(inner, duty_cycle=0.5, period_samples=100)
        w = jam.waveform(200)
        assert np.all(np.abs(w[:50]) > 0)
        assert np.all(np.abs(w[50:100]) == 0)

    def test_bad_duty_raises(self):
        with pytest.raises(ValueError):
            PulsedJammer(NoJammer(), duty_cycle=1.5, period_samples=100)

    def test_bad_inner_raises(self):
        with pytest.raises(TypeError):
            PulsedJammer("not a jammer", duty_cycle=0.5, period_samples=100)

    def test_bad_period_raises(self):
        with pytest.raises(ValueError):
            PulsedJammer(NoJammer(), duty_cycle=0.5, period_samples=1)


class TestHoppingJammer:
    def make(self, seed=0, weights=None):
        bws = [10e6, 5e6, 2.5e6, 1.25e6]
        return HoppingJammer(bws, FS, dwell_samples=4096, weights=weights, seed=seed)

    def test_unit_power(self):
        w = self.make().waveform(65536, rng=6)
        assert signal_power(w) == pytest.approx(1.0, rel=0.05)

    def test_hop_history_grows(self):
        jam = self.make()
        jam.waveform(4096 * 3, rng=7)
        assert len(jam.hop_history) == 3

    def test_hops_drawn_from_set(self):
        jam = self.make(seed=1)
        jam.waveform(4096 * 20, rng=8)
        assert set(jam.hop_history) <= {10e6, 5e6, 2.5e6, 1.25e6}

    def test_weights_respected(self):
        w = [1.0, 0.0, 0.0, 0.0]
        jam = self.make(seed=2, weights=w)
        jam.waveform(4096 * 10, rng=9)
        assert set(jam.hop_history) == {10e6}

    def test_dwell_continuity_across_calls(self):
        jam = self.make(seed=3)
        jam.waveform(2048, rng=10)  # half a dwell
        jam.waveform(2048, rng=11)  # completes the dwell
        assert len(jam.hop_history) == 1

    def test_reset_clears(self):
        jam = self.make(seed=4)
        jam.waveform(8192, rng=12)
        jam.reset()
        assert jam.hop_history == []

    def test_seed_determinism(self):
        a, b = self.make(seed=5), self.make(seed=5)
        a.waveform(4096 * 5, rng=13)
        b.waveform(4096 * 5, rng=13)
        assert a.hop_history == b.hop_history

    def test_bad_weights_length_raises(self):
        with pytest.raises(ValueError):
            HoppingJammer([1e6, 2e6], FS, 1024, weights=[1.0, 1.0, 1.0])

    def test_bad_bandwidths_raise(self):
        with pytest.raises(ValueError):
            HoppingJammer([], FS, 1024)
        with pytest.raises(ValueError):
            HoppingJammer([-1e6], FS, 1024)

    def test_bad_dwell_raises(self):
        with pytest.raises(ValueError):
            HoppingJammer([1e6], FS, 0)


class TestMatchedReactiveJammer:
    def test_initial_bandwidth_before_observation(self):
        jam = MatchedReactiveJammer(FS, reaction_samples=0, initial_bandwidth=1e6)
        w = jam.waveform(131072, rng=14)
        assert 0.5e6 < measured_bandwidth(w) < 2e6

    def test_matches_observed_profile_after_reaction(self):
        jam = MatchedReactiveJammer(FS, reaction_samples=0, initial_bandwidth=10e6)
        jam.observe([(131072, 0.625e6)])
        w = jam.waveform(131072, rng=15)
        measured = measured_bandwidth(w)
        assert measured < 1.5e6  # matched the narrow observation

    def test_reaction_delay_keeps_old_bandwidth(self):
        jam = MatchedReactiveJammer(FS, reaction_samples=65536, initial_bandwidth=10e6)
        jam.observe([(131072, 0.625e6)])
        w = jam.waveform(131072, rng=16)
        head_bw = measured_bandwidth(w[:65536])
        tail_bw = measured_bandwidth(w[65536:])
        assert head_bw > 6e6       # still the initial wide bandwidth
        assert tail_bw < 1.5e6     # now matched to the narrow hop

    def test_profile_lag_mechanism(self):
        # Two hops: with a one-hop reaction time the jammer is always one
        # hop behind -> its second-half bandwidth equals the FIRST hop's.
        jam = MatchedReactiveJammer(FS, reaction_samples=65536, initial_bandwidth=5e6)
        jam.observe([(65536, 10e6), (65536, 0.625e6)])
        w = jam.waveform(131072, rng=17)
        second_half = measured_bandwidth(w[65536:])
        assert second_half > 6e6  # matched to the stale 10 MHz observation

    def test_extends_last_bandwidth_past_profile(self):
        jam = MatchedReactiveJammer(FS, reaction_samples=0, initial_bandwidth=10e6)
        jam.observe([(1000, 1.25e6)])
        w = jam.waveform(131072, rng=18)
        assert measured_bandwidth(w[2000:]) < 2.5e6

    def test_unit_power(self):
        jam = MatchedReactiveJammer(FS, reaction_samples=1000, initial_bandwidth=5e6)
        jam.observe([(50000, 2.5e6)])
        w = jam.waveform(65536, rng=19)
        assert signal_power(w) == pytest.approx(1.0, rel=0.05)

    def test_bad_observation_raises(self):
        jam = MatchedReactiveJammer(FS, reaction_samples=0, initial_bandwidth=1e6)
        with pytest.raises(ValueError):
            jam.observe([(-1, 1e6)])
        with pytest.raises(ValueError):
            jam.observe([(100, -1e6)])

    def test_reset_clears_profile(self):
        jam = MatchedReactiveJammer(FS, reaction_samples=0, initial_bandwidth=10e6)
        jam.observe([(131072, 0.625e6)])
        jam.reset()
        w = jam.waveform(131072, rng=20)
        assert measured_bandwidth(w) > 6e6  # back to the initial bandwidth

    def test_description_mentions_tau(self):
        jam = MatchedReactiveJammer(FS, reaction_samples=2000, initial_bandwidth=1e6)
        assert "tau" in jam.description
