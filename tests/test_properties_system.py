"""System-level property-based tests and failure injection.

Cross-module invariants that must hold for *arbitrary* valid inputs
(hypothesis explores the space), plus deliberately hostile inputs — the
receiver in this problem domain must degrade gracefully, never crash:
a jammed packet is the expected case, not the exceptional one.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.channel import Medium, complex_awgn
from repro.core import BHSSConfig, BHSSReceiver, BHSSTransmitter, LinkSimulator, theory
from repro.dsp import HalfSinePulse
from repro.phy import ChipModulator
from repro.spread import SixteenAryDSSS
from repro.utils import db_to_linear, signal_power

SLOW = settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestEndToEndProperties:
    @given(
        payload=st.binary(min_size=0, max_size=24),
        seed=st.integers(min_value=0, max_value=2**31),
        pattern=st.sampled_from(["linear", "exponential", "parabolic"]),
    )
    @SLOW
    def test_clean_channel_roundtrip_any_payload(self, payload, seed, pattern):
        """Noiseless channel: every payload, seed and pattern round-trips."""
        cfg = BHSSConfig.paper_default(pattern=pattern, seed=seed, payload_bytes=max(len(payload), 1))
        tx, rx = BHSSTransmitter(cfg), BHSSReceiver(cfg)
        packet = tx.transmit(payload)
        result = rx.receive(packet.waveform, payload_len=len(payload))
        assert result.accepted
        assert result.payload == payload

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        sph=st.integers(min_value=1, max_value=40),
    )
    @SLOW
    def test_waveform_power_always_unit(self, seed, sph):
        cfg = BHSSConfig.paper_default(seed=seed, payload_bytes=8, symbols_per_hop=sph)
        packet = BHSSTransmitter(cfg).transmit()
        assert signal_power(packet.waveform) == pytest.approx(1.0, rel=0.1)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        fec=st.sampled_from(["none", "rep3", "hamming74"]),
    )
    @SLOW
    def test_coded_roundtrip_any_seed(self, seed, fec):
        cfg = BHSSConfig.paper_default(seed=seed, payload_bytes=6, fec=fec)
        out = LinkSimulator(cfg).run_packet(snr_db=30.0, rng=0)
        assert out.accepted

    @given(snr=st.floats(min_value=-5.0, max_value=30.0))
    @SLOW
    def test_medium_snr_calibration_property(self, snr):
        rng = np.random.default_rng(0)
        sig = rng.normal(size=30_000) + 1j * rng.normal(size=30_000)
        block = Medium(20e6).combine(sig, snr_db=snr, rng=1)
        measured = signal_power(sig) / signal_power(block.samples - sig)
        assert 10 * np.log10(measured) == pytest.approx(snr, abs=0.5)


class TestReceiverNeverCrashes:
    """Failure injection: hostile waveforms must yield a rejected frame,
    not an exception."""

    def rx(self):
        return BHSSReceiver(BHSSConfig.paper_default(seed=99, payload_bytes=8))

    def expected_len(self):
        cfg = BHSSConfig.paper_default(seed=99, payload_bytes=8)
        counts = cfg.build_schedule().sample_counts(cfg.frame_symbols(), 32)
        return sum(counts)

    def test_pure_noise(self):
        rng = np.random.default_rng(1)
        n = self.expected_len()
        noise = rng.normal(size=n) + 1j * rng.normal(size=n)
        result = self.rx().receive(noise)
        assert not result.accepted

    def test_all_zeros(self):
        result = self.rx().receive(np.zeros(self.expected_len(), dtype=complex))
        assert not result.accepted

    def test_constant_dc(self):
        result = self.rx().receive(np.ones(self.expected_len(), dtype=complex))
        assert not result.accepted

    def test_pure_tone(self):
        n = self.expected_len()
        tone = np.exp(2j * np.pi * 0.13 * np.arange(n))
        result = self.rx().receive(tone)
        assert not result.accepted

    def test_tiny_waveform(self):
        result = self.rx().receive(np.ones(3, dtype=complex))
        assert not result.accepted

    def test_empty_waveform(self):
        result = self.rx().receive(np.zeros(0, dtype=complex))
        assert not result.accepted

    def test_saturated_waveform(self):
        cfg = BHSSConfig.paper_default(seed=99, payload_bytes=8)
        packet = BHSSTransmitter(cfg).transmit()
        clipped = np.clip(packet.waveform.real, -0.05, 0.05) + 1j * np.clip(
            packet.waveform.imag, -0.05, 0.05
        )
        result = self.rx().receive(clipped)  # heavy clipping: may or may not decode
        assert result.frame is not None  # but must always return a result

    def test_extreme_jammer_power(self):
        cfg = BHSSConfig.paper_default(seed=99, payload_bytes=8)
        link = LinkSimulator(cfg)
        from repro.jamming import BandlimitedNoiseJammer

        out = link.run_packet(
            snr_db=10.0, sjr_db=-60.0, jammer=BandlimitedNoiseJammer(2.5e6, 20e6), rng=2
        )
        assert not out.accepted
        assert 0 <= out.bit_errors <= out.total_bits


class TestTheoryProperties:
    @given(
        ebno=st.floats(min_value=-5, max_value=30),
        sjr=st.floats(min_value=-30, max_value=10),
        gamma_db=st.floats(min_value=0, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_ber_bounds_property(self, ebno, sjr, gamma_db):
        pb = theory.ber_from_ebno(ebno, sjr, 20.0, gamma=db_to_linear(gamma_db))
        assert 0.0 <= pb <= 0.5

    @given(
        ebno_lo=st.floats(min_value=-5, max_value=14),
        delta=st.floats(min_value=0.1, max_value=15),
    )
    @settings(max_examples=40, deadline=None)
    def test_ber_monotone_in_ebno_property(self, ebno_lo, delta):
        lo = theory.ber_from_ebno(ebno_lo, -10.0, 20.0)
        hi = theory.ber_from_ebno(ebno_lo + delta, -10.0, 20.0)
        assert hi <= lo + 1e-12

    @given(
        pb=st.floats(min_value=0, max_value=1),
        n=st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_packet_error_rate_bounds_property(self, pb, n):
        pp = theory.packet_error_rate(pb, n)
        assert 0.0 <= pp <= 1.0
        assert pp >= pb - 1e-12  # more bits can only make things worse

    @given(
        gamma_db=st.floats(min_value=-1, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_improvement_helps_ber_property(self, gamma_db):
        base = theory.ber_from_ebno(10.0, -15.0, 20.0, gamma=1.0)
        improved = theory.ber_from_ebno(10.0, -15.0, 20.0, gamma=max(db_to_linear(gamma_db), 1.0))
        assert improved <= base + 1e-12


class TestModemProperties:
    @given(
        data=st.lists(st.integers(min_value=0, max_value=15), min_size=2, max_size=20),
        sps_exp=st.integers(min_value=1, max_value=7),
        chip_snr_db=st.floats(min_value=12, max_value=40),
    )
    @SLOW
    def test_spread_modulate_noise_roundtrip(self, data, sps_exp, chip_snr_db):
        """The whole PHY chain survives any decent chip SNR."""
        sps = 2**sps_exp
        modem = SixteenAryDSSS(seed=5)
        mod = ChipModulator(HalfSinePulse())
        symbols = np.array(data)
        chips = modem.spread(symbols)
        wave = mod.modulate(chips, sps)
        noise_power = signal_power(wave) / db_to_linear(chip_snr_db)
        noisy = wave + complex_awgn(wave.size, noise_power, np.random.default_rng(0))
        soft = mod.demodulate(noisy, sps)
        out = modem.despread(soft)
        np.testing.assert_array_equal(out.symbols, symbols)
