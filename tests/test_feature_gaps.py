"""Tests for features added during calibration against the paper's results:

* CFO-tolerant noncoherent preamble detection,
* the eq.-(5) unmatched (chip-rate sampling) receiver baseline,
* the reactive jammer's per-dwell reaction-fraction model,
* the three BER aggregation modes of the theory module.
"""

import numpy as np
import pytest

from repro.core import BHSSConfig, LinkSimulator, theory
from repro.dsp import HalfSinePulse, welch_psd
from repro.dsp.mixing import frequency_shift
from repro.dsp.spectral import occupied_bandwidth
from repro.jamming import BandlimitedNoiseJammer, MatchedReactiveJammer
from repro.phy import ChipModulator
from repro.sync import detect_preamble, detect_preamble_noncoherent

FS = 20e6
QPSK = np.array([1 + 1j, 1 - 1j, -1 + 1j, -1 - 1j]) / np.sqrt(2)


class TestNoncoherentPreamble:
    def make_ref(self, n=1024, seed=0):
        rng = np.random.default_rng(seed)
        return np.repeat(QPSK[rng.integers(0, 4, size=n // 2)], 2)

    def test_detects_without_cfo(self):
        ref = self.make_ref()
        received = np.concatenate([np.zeros(333, dtype=complex), ref, np.zeros(100, dtype=complex)])
        det = detect_preamble_noncoherent(received, ref, threshold=0.5)
        assert det.found and det.start == 333

    def test_survives_cfo_that_kills_coherent(self):
        ref = self.make_ref(n=4096)
        cfo = 3e3
        n = np.arange(ref.size)
        rotated = ref * np.exp(2j * np.pi * cfo / FS * n)
        received = np.concatenate([np.zeros(777, dtype=complex), rotated])
        coherent = detect_preamble(received, ref, threshold=0.5)
        noncoherent = detect_preamble_noncoherent(received, ref, threshold=0.35, num_segments=16)
        assert not coherent.found
        assert noncoherent.found and abs(noncoherent.start - 777) <= 2

    def test_rejects_pure_noise(self):
        ref = self.make_ref()
        rng = np.random.default_rng(1)
        noise = rng.normal(size=8000) + 1j * rng.normal(size=8000)
        det = detect_preamble_noncoherent(noise, ref, threshold=0.5)
        assert not det.found

    def test_short_reference_falls_back(self):
        ref = self.make_ref(n=16)
        received = np.concatenate([np.zeros(10, dtype=complex), ref])
        det = detect_preamble_noncoherent(received, ref, threshold=0.5, num_segments=8)
        assert det.found and det.start == 10

    def test_received_too_short(self):
        ref = self.make_ref()
        det = detect_preamble_noncoherent(ref[:100], ref, threshold=0.5)
        assert not det.found

    def test_bad_params_raise(self):
        ref = self.make_ref()
        with pytest.raises(ValueError):
            detect_preamble_noncoherent(ref, ref, threshold=0.0)
        with pytest.raises(ValueError):
            detect_preamble_noncoherent(ref, ref, num_segments=0)
        with pytest.raises(ValueError):
            detect_preamble_noncoherent(ref, np.array([], dtype=complex))


class TestUnmatchedDemodulation:
    def test_clean_roundtrip(self):
        rng = np.random.default_rng(2)
        chips = np.where(rng.random(256) > 0.5, 1.0, -1.0)
        mod = ChipModulator(HalfSinePulse())
        wave = mod.modulate(chips, 8)
        soft = mod.demodulate(wave, 8, matched=False)
        np.testing.assert_array_equal(np.sign(soft), chips)

    def test_soft_amplitude_near_unity(self):
        rng = np.random.default_rng(3)
        chips = np.where(rng.random(512) > 0.5, 1.0, -1.0)
        mod = ChipModulator(HalfSinePulse())
        soft = mod.demodulate(mod.modulate(chips, 16), 16, matched=False)
        assert np.mean(np.abs(soft)) == pytest.approx(1.0, rel=0.2)

    def test_unmatched_is_noisier_than_matched(self):
        """The matched filter averages the chip; raw sampling does not."""
        rng = np.random.default_rng(4)
        chips = np.where(rng.random(2048) > 0.5, 1.0, -1.0)
        mod = ChipModulator(HalfSinePulse())
        wave = mod.modulate(chips, 8)
        noisy = wave + 0.3 * (rng.normal(size=wave.size) + 1j * rng.normal(size=wave.size))
        err_matched = np.mean((mod.demodulate(noisy, 8) - chips) ** 2)
        err_raw = np.mean((mod.demodulate(noisy, 8, matched=False) - chips) ** 2)
        assert err_raw > err_matched

    def test_out_of_band_jammer_aliases_into_raw_samples(self):
        """The eq.-(5) baseline's defining weakness."""
        rng = np.random.default_rng(5)
        chips = np.where(rng.random(2048) > 0.5, 1.0, -1.0)
        mod = ChipModulator(HalfSinePulse())
        sps = 32  # narrow signal, wide-open front end
        wave = mod.modulate(chips, sps)
        jammer = frequency_shift(
            (rng.normal(size=wave.size) + 1j * rng.normal(size=wave.size)) * 0.7,
            8e6,
            FS,
        )
        jammed = wave + jammer
        err_matched = np.mean((np.sign(mod.demodulate(jammed, sps)) != chips))
        err_raw = np.mean((np.sign(mod.demodulate(jammed, sps, matched=False)) != chips))
        assert err_raw > err_matched

    def test_theory_baseline_config(self):
        cfg = BHSSConfig.paper_default().as_theory_baseline()
        assert not cfg.filtering
        assert not cfg.matched_filter

    def test_theory_baseline_link_roundtrip_clean(self):
        cfg = BHSSConfig.paper_default(payload_bytes=8, seed=6).as_theory_baseline()
        out = LinkSimulator(cfg).run_packet(snr_db=25.0, rng=1)
        assert out.accepted

    def test_baseline_weaker_than_full_receiver_under_wide_jamming(self):
        fs = 20e6
        jam = BandlimitedNoiseJammer(10e6, fs)
        cfg = BHSSConfig.paper_default(payload_bytes=8, seed=7).with_fixed_bandwidth(0.625e6)
        full = LinkSimulator(cfg).run_packets(6, snr_db=15.0, sjr_db=-10.0, jammer=jam, seed=2)
        base = LinkSimulator(cfg.as_theory_baseline()).run_packets(
            6, snr_db=15.0, sjr_db=-10.0, jammer=jam, seed=2
        )
        assert base.packet_error_rate >= full.packet_error_rate


class TestReactionFraction:
    def measured_bw(self, x):
        freqs, psd = welch_psd(x, FS, nperseg=512)
        return occupied_bandwidth(freqs, psd, fraction=0.98)

    def test_fraction_one_always_one_dwell_stale(self):
        jam = MatchedReactiveJammer(FS, 0, initial_bandwidth=10e6, reaction_fraction=1.0)
        jam.observe([(65536, 0.625e6), (65536, 10e6)])
        w = jam.waveform(131072, rng=10)
        # first dwell: still the initial 10 MHz; second dwell: the first
        # dwell's narrow bandwidth
        assert self.measured_bw(w[:65536]) > 6e6
        assert self.measured_bw(w[65536:]) < 1.5e6

    def test_fraction_zero_matches_immediately(self):
        jam = MatchedReactiveJammer(FS, 0, initial_bandwidth=10e6, reaction_fraction=0.0)
        jam.observe([(131072, 0.625e6)])
        w = jam.waveform(131072, rng=11)
        assert self.measured_bw(w) < 1.5e6

    def test_fraction_half_splits_dwell(self):
        jam = MatchedReactiveJammer(FS, 0, initial_bandwidth=10e6, reaction_fraction=0.5)
        jam.observe([(131072, 0.625e6)])
        w = jam.waveform(131072, rng=12)
        assert self.measured_bw(w[:65536]) > 6e6   # un-estimated head: stale
        assert self.measured_bw(w[65536:]) < 1.5e6  # estimated tail: matched

    def test_fraction_composes_with_fixed_reaction(self):
        jam = MatchedReactiveJammer(FS, 1000, initial_bandwidth=10e6, reaction_fraction=0.0)
        jam.observe([(131072, 0.625e6)])
        w = jam.waveform(131072, rng=13)
        assert self.measured_bw(w[2000:]) < 1.5e6

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            MatchedReactiveJammer(FS, 0, 1e6, reaction_fraction=1.5)
        with pytest.raises(ValueError):
            MatchedReactiveJammer(FS, 0, 1e6, reaction_fraction=-0.1)


class TestBerAggregationModes:
    BW = np.logspace(0, -2, 9)
    W = np.full(9, 1 / 9)

    def test_mean_ber_most_pessimistic(self):
        args = (15.0, -20.0, 20.0, self.BW, self.W, self.BW[0])
        pb_ber = theory.bhss_ber(*args, aggregate="mean_ber")
        pb_db = theory.bhss_ber(*args, aggregate="mean_gamma_db")
        pb_lin = theory.bhss_ber(*args, aggregate="mean_gamma")
        assert pb_lin <= pb_db <= pb_ber

    def test_default_is_mean_gamma(self):
        args = (15.0, -20.0, 20.0, self.BW, self.W, self.BW[0])
        assert theory.bhss_ber(*args) == theory.bhss_ber(*args, aggregate="mean_gamma")

    def test_unknown_aggregate_raises(self):
        with pytest.raises(ValueError):
            theory.bhss_ber(15.0, -20.0, 20.0, self.BW, self.W, 1.0, aggregate="median")

    def test_all_modes_agree_without_jamming_variation(self):
        # a single hop bandwidth and a single jammer: no mixture at all
        for agg in ("mean_ber", "mean_gamma", "mean_gamma_db"):
            pb = theory.bhss_ber(10.0, -10.0, 20.0, [1.0], [1.0], 1.0, aggregate=agg)
            assert pb == pytest.approx(
                theory.ber_from_ebno(10.0, -10.0, 20.0, gamma=1.0), rel=1e-9
            )
