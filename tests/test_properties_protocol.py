"""Property-based tests for the session layer's framing primitives.

Hypothesis explores the whitening and packetizer input space: whitening
must be a self-inverse keystream for every seed and length, and the
fragment/reassembly pipeline must return the exact message bytes no
matter how the air reorders, duplicates or truncates fragments — a
jammed fragment stream is the expected case, not the exceptional one.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol import (
    PacketKind,
    ProtocolError,
    Reassembler,
    build_fragment,
    fragment_message,
    parse_fragment,
    reassemble_message,
    whiten,
    whitening_sequence,
)
from repro.protocol.packetizer import HEADER_BYTES

FAST = settings(max_examples=50, deadline=None)

seeds = st.integers(min_value=1, max_value=127)
keys = st.integers(min_value=0, max_value=2**31)
message_ids = st.integers(min_value=0, max_value=255)


class TestWhiteningProperties:
    @given(data=st.binary(min_size=0, max_size=256), seed=seeds)
    @FAST
    def test_whiten_is_involutive_for_every_seed_and_length(self, data, seed):
        assert whiten(whiten(data, seed), seed) == data

    @given(num_bytes=st.integers(min_value=0, max_value=64), seed=seeds)
    @FAST
    def test_sequence_length_and_determinism(self, num_bytes, seed):
        first = whitening_sequence(num_bytes, seed)
        assert len(first) == num_bytes
        assert first == whitening_sequence(num_bytes, seed)

    @given(a=st.binary(min_size=1, max_size=64), b=st.binary(min_size=1, max_size=64), seed=seeds)
    @FAST
    def test_whitening_is_a_stream_xor(self, a, b, seed):
        """whiten(a) ^ whiten(b) == a ^ b — the keystream cancels."""
        n = min(len(a), len(b))
        wa, wb = whiten(a[:n], seed), whiten(b[:n], seed)
        assert bytes(x ^ y for x, y in zip(wa, wb)) == bytes(
            x ^ y for x, y in zip(a[:n], b[:n])
        )


class TestPacketizerProperties:
    @given(
        message=st.binary(min_size=0, max_size=200),
        mtu=st.integers(min_value=13, max_value=32),
        message_id=message_ids,
        key=keys,
        data=st.data(),
    )
    @FAST
    def test_roundtrip_survives_reordering_and_duplication(
        self, message, mtu, message_id, key, data
    ):
        wires = fragment_message(message, mtu, message_id, key)
        assert all(len(w) == mtu for w in wires)
        frags = [parse_fragment(w, key) for w in wires]
        order = data.draw(st.permutations(frags + frags))
        asm = Reassembler()
        delivered = [out for out in (asm.add(f) for f in order) if out is not None]
        # duplicates arriving after completion re-deliver (the session layer
        # dedups by message id); every delivery must be the exact bytes
        assert 1 <= len(delivered) <= 2
        assert all(out == message for out in delivered)
        assert asm.crc_failures == 0

    @given(
        message=st.binary(min_size=0, max_size=120),
        mtu=st.integers(min_value=13, max_value=32),
        message_id=message_ids,
        key=keys,
    )
    @FAST
    def test_strict_reassembly_inverts_fragmentation(self, message, mtu, message_id, key):
        frags = [parse_fragment(w, key) for w in fragment_message(message, mtu, message_id, key)]
        assert reassemble_message(reversed(frags)) == message
        if len(frags) > 1:
            with pytest.raises(ProtocolError):
                reassemble_message(frags[:-1])  # a missing fragment never half-delivers

    @given(
        chunk=st.binary(min_size=0, max_size=11),
        mtu=st.integers(min_value=16, max_value=24),
        key=keys,
        cut=st.integers(min_value=0, max_value=23),
    )
    @FAST
    def test_truncated_fragments_never_parse_as_valid(self, chunk, mtu, key, cut):
        """Any cut below header + claimed chunk length is rejected."""
        wire = build_fragment(PacketKind.DATA, 7, 0, 1, chunk, mtu, key)
        cut = min(cut, len(wire) - 1)
        if cut < HEADER_BYTES + len(chunk):
            with pytest.raises(ProtocolError):
                parse_fragment(wire[:cut], key)
        else:
            frag = parse_fragment(wire[:cut], key)
            assert frag.chunk == chunk

    @given(
        message=st.binary(min_size=0, max_size=60),
        mtu=st.integers(min_value=13, max_value=24),
        key=keys,
        flip=st.integers(min_value=0, max_value=7),
    )
    @FAST
    def test_payload_bitflips_are_caught_by_the_message_crc(self, message, mtu, key, flip):
        wires = fragment_message(message, mtu, 3, key)
        corrupted = bytearray(wires[0])
        corrupted[HEADER_BYTES] ^= 1 << flip  # damage the whitened body only
        wires[0] = bytes(corrupted)
        asm = Reassembler()
        delivered = [out for out in (asm.add(parse_fragment(w, key)) for w in wires) if out]
        assert delivered == []
        assert asm.crc_failures == 1
