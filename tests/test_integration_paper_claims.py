"""Integration tests: the paper's headline claims at miniature scale.

Each test runs the *full* stack (frame -> spread -> pulse-shape -> jammed
AWGN medium -> filter -> despread -> CRC) at economical packet counts and
checks a qualitative claim from the paper.  The benchmarks re-run the
same experiments at full scale; these tests pin the claims into CI.
"""

import numpy as np

from repro.analysis import ThresholdSearch, min_snr_for_per
from repro.core import BHSSConfig, BHSSTransmitter, LinkSimulator
from repro.jamming import BandlimitedNoiseJammer, HoppingJammer
from repro.hopping import pattern_weights
from repro.utils import load_recording, save_recording, signal_power

FS = 20e6
FAST = ThresholdSearch(snr_low=-12.0, snr_high=40.0, tolerance_db=2.0, packets_per_point=6)
JNR = 25.0


def bhss_link(pattern="linear", **kw):
    defaults = dict(seed=71, payload_bytes=8, symbols_per_hop=16)
    defaults.update(kw)
    return LinkSimulator(BHSSConfig.paper_default(pattern=pattern, **defaults))


def fixed_link(**kw):
    defaults = dict(seed=71, payload_bytes=8, symbols_per_hop=16)
    defaults.update(kw)
    return LinkSimulator(BHSSConfig.paper_default(**defaults).with_fixed_bandwidth(10e6))


class TestSection63PowerAdvantage:
    """Figure 13's claim: filtering buys large advantages at fixed offsets."""

    def test_narrow_jammer_excision_advantage(self):
        cfg = BHSSConfig.paper_default(seed=72, payload_bytes=4).with_fixed_bandwidth(10e6)
        jam = BandlimitedNoiseJammer(0.625e6, FS)
        t_filt = min_snr_for_per(LinkSimulator(cfg), jnr_db=JNR, jammer=jam, search=FAST, seed=1)
        t_base = min_snr_for_per(
            LinkSimulator(cfg.as_theory_baseline()), jnr_db=JNR, jammer=jam, search=FAST, seed=1
        )
        assert t_base - t_filt > 15.0  # paper: >20 dB for Bp/Bj = 16

    def test_matched_jammer_no_advantage(self):
        cfg = BHSSConfig.paper_default(seed=72, payload_bytes=4).with_fixed_bandwidth(2.5e6)
        jam = BandlimitedNoiseJammer(2.5e6, FS)
        t_filt = min_snr_for_per(LinkSimulator(cfg), jnr_db=JNR, jammer=jam, search=FAST, seed=1)
        t_base = min_snr_for_per(
            LinkSimulator(cfg.as_theory_baseline()), jnr_db=JNR, jammer=jam, search=FAST, seed=1
        )
        assert abs(t_base - t_filt) < 5.0


class TestSection642HoppingAdvantage:
    """Figure 14's claim: hopping + filtering beats the fixed baseline."""

    def test_exponential_vs_narrow_fixed_jammer(self):
        t_fixed = min_snr_for_per(
            fixed_link(), jnr_db=JNR, jammer=BandlimitedNoiseJammer(10e6, FS), search=FAST, seed=2
        )
        t_hop = min_snr_for_per(
            bhss_link("exponential"),
            jnr_db=JNR,
            jammer=BandlimitedNoiseJammer(0.3125e6, FS),
            search=FAST,
            seed=2,
        )
        assert t_fixed - t_hop > 10.0


class TestSection643PatternGame:
    """Table 2's claim: exponential collapses against itself; parabolic is
    the robust choice."""

    def jammer(self, pattern):
        bands = BHSSConfig.paper_default().bandwidth_set.as_array()
        return HoppingJammer(
            bands, FS, dwell_samples=16384, weights=pattern_weights(pattern, bands), seed=99
        )

    def test_exponential_fragile_against_itself(self):
        t_vs_linear = min_snr_for_per(
            bhss_link("exponential"), jnr_db=JNR, jammer=self.jammer("linear"), search=FAST, seed=3
        )
        t_vs_exp = min_snr_for_per(
            bhss_link("exponential"), jnr_db=JNR, jammer=self.jammer("exponential"), search=FAST, seed=3
        )
        assert t_vs_exp > t_vs_linear + 5.0

    def test_parabolic_competitive_in_worst_case(self):
        """At this miniature packet budget the bisection noise is a few
        dB, so the integration test only pins the *loose* version of the
        Table-2 maximin claim; the full-scale check lives in
        ``benchmarks/test_tab2_hopping_jammer_matrix.py``."""
        worst = {}
        for sig in ["exponential", "parabolic"]:
            worst[sig] = max(
                min_snr_for_per(
                    bhss_link(sig), jnr_db=JNR, jammer=self.jammer(jam), search=FAST, seed=4
                )
                for jam in ["linear", "exponential", "parabolic"]
            )
        assert worst["parabolic"] <= worst["exponential"] + 4.0


class TestAdaptiveJammerBoundary:
    """Wiese & Papadimitratos' boundary, run as a tournament grid: an
    adaptive attacker that can sense the victim (matched reactive, or a
    learning follower) degrades a *static-band* link strictly more than
    a *randomized-hopping* link at equal SJR — randomizing the hop
    process is what denies the attacker its matched steady state."""

    def run_grid(self):
        from repro.arena import ArenaSpec, run_tournament
        from repro.hopping import BandwidthSet

        config = BHSSConfig(
            bandwidth_set=BandwidthSet.paper_default(),
            payload_bytes=2,
            symbols_per_hop=2,
            seed=11,
        )
        spec = ArenaSpec(
            name="adaptive-boundary",
            config=config,
            jammers=(
                ("none", {"type": "none"}),
                ("reactive", {"type": "reactive", "reaction_samples": 4096,
                              "initial_bandwidth": 10e6, "reaction_fraction": 0.25}),
                ("follower", {"type": "follower", "initial_bandwidth": 10e6,
                              "learning_rate": 0.7, "sense_noise_db": 0.5}),
            ),
            patterns=("parabolic",),
            hop_ranges=(1, 7),  # static band vs the full randomized octave set
            snr_db=15.0,
            sjr_db=-8.0,  # equal SJR in every cell: the comparison is fair
            packets=12,
            seed=5,
        )
        return spec, run_tournament(spec, cache=False, checkpoint=False)

    def test_sensing_jammers_prefer_the_static_target(self):
        _, result = self.run_grid()
        matrix = result.resilience_matrix("per")
        for jammer in ("reactive", "follower"):
            static = matrix[(jammer, "parabolic", 1)]
            hopping = matrix[(jammer, "parabolic", 7)]
            assert static > hopping, (
                f"{jammer}: static-band PER {static} not strictly above "
                f"randomized-hopping PER {hopping}"
            )

    def test_baseline_is_clean_at_this_operating_point(self):
        # The separation claim is vacuous if the unjammed link already
        # fails; the baseline column pins the grid to a healthy regime.
        _, result = self.run_grid()
        matrix = result.resilience_matrix("per")
        assert matrix[("none", "parabolic", 1)] == 0.0
        assert matrix[("none", "parabolic", 7)] == 0.0

    def test_advantage_metric_agrees_with_the_matrix(self):
        _, result = self.run_grid()
        advantage = result.jammer_advantage("per")
        assert set(advantage) == {"reactive", "follower"}
        assert advantage["reactive"] > 0.0
        assert advantage["follower"] > 0.0


class TestEndToEndArtifacts:
    """The full pipeline produces externally consumable artifacts."""

    def test_packet_recording_roundtrip(self, tmp_path):
        cfg = BHSSConfig.paper_default(seed=73, payload_bytes=8)
        packet = BHSSTransmitter(cfg).transmit(b"artifact")
        path = str(tmp_path / "bhss.cf32")
        save_recording(path, packet.waveform, cfg.sample_rate)
        samples, meta = load_recording(path)
        assert meta["sample_rate"] == cfg.sample_rate
        # the float32 round trip must not break decodability
        from repro.core import BHSSReceiver

        result = BHSSReceiver(cfg).receive(samples)
        assert result.accepted and result.payload == b"artifact"

    def test_transmit_power_constant_across_patterns(self):
        """Section 2's power-budget model: hopping never changes the
        transmit power."""
        powers = []
        for pattern in ["linear", "exponential", "parabolic"]:
            cfg = BHSSConfig.paper_default(pattern=pattern, seed=74, payload_bytes=16)
            packet = BHSSTransmitter(cfg).transmit()
            powers.append(signal_power(packet.waveform))
        np.testing.assert_allclose(powers, 1.0, rtol=0.05)

    def test_schedule_unpredictability_without_seed(self):
        """Two links with different seeds produce uncorrelated schedules —
        the security premise (the jammer cannot predict the hops)."""
        a = BHSSConfig.paper_default(seed=1).build_schedule().bandwidth_sequence(500)
        b = BHSSConfig.paper_default(seed=2).build_schedule().bandwidth_sequence(500)
        match_rate = np.mean(a == b)
        assert match_rate < 0.35  # ~1/7 expected for independent draws
