"""Unit tests for the 16-ary and binary DSSS modems and the chip table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spread import (
    BPSKDSSS,
    CHIPS_PER_SYMBOL,
    NUM_SYMBOLS,
    SixteenAryDSSS,
    chip_table_pm,
    ieee802154_chip_table,
    min_pairwise_hamming,
)


class TestChipTable:
    def test_shape(self):
        assert ieee802154_chip_table().shape == (16, 32)

    def test_binary_values(self):
        t = ieee802154_chip_table()
        assert set(np.unique(t)) <= {0, 1}

    def test_rows_distinct(self):
        t = ieee802154_chip_table()
        assert len({row.tobytes() for row in t}) == 16

    def test_cyclic_shift_structure(self):
        t = ieee802154_chip_table()
        np.testing.assert_array_equal(t[1], np.roll(t[0], 4))
        np.testing.assert_array_equal(t[7], np.roll(t[0], 28))

    def test_conjugate_structure(self):
        t = ieee802154_chip_table()
        odd = np.arange(32) % 2 == 1
        expected = t[0].copy()
        expected[odd] ^= 1
        np.testing.assert_array_equal(t[8], expected)

    def test_min_hamming_distance_quasi_orthogonal(self):
        # 802.15.4's family keeps pairwise Hamming distance >= 12/32.
        assert min_pairwise_hamming() >= 12

    def test_pm_table(self):
        pm = chip_table_pm()
        assert set(np.unique(pm)) == {-1.0, 1.0}
        t = ieee802154_chip_table()
        np.testing.assert_array_equal(pm, 1.0 - 2.0 * t)


class TestSixteenAryDSSS:
    def test_spread_length(self):
        modem = SixteenAryDSSS()
        chips = modem.spread(np.array([0, 5, 15]))
        assert chips.size == 3 * CHIPS_PER_SYMBOL

    def test_roundtrip_clean(self):
        modem = SixteenAryDSSS()
        symbols = np.arange(16)
        chips = modem.spread(symbols)
        result = modem.despread(chips)
        np.testing.assert_array_equal(result.symbols, symbols)
        np.testing.assert_allclose(result.quality, 1.0, atol=1e-9)

    def test_roundtrip_scrambled(self):
        modem = SixteenAryDSSS(seed=7)
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 16, size=100)
        chips = modem.spread(symbols)
        result = modem.despread(chips)
        np.testing.assert_array_equal(result.symbols, symbols)

    def test_scrambler_changes_chips(self):
        sym = np.array([3, 3, 3])
        plain = SixteenAryDSSS().spread(sym)
        scram = SixteenAryDSSS(seed=1).spread(sym)
        assert not np.array_equal(plain, scram)

    def test_scrambler_phase_continuity(self):
        # Spreading a packet in two segments must equal spreading at once.
        modem = SixteenAryDSSS(seed=5)
        symbols = np.arange(10)
        whole = modem.spread(symbols)
        part1 = modem.spread(symbols[:4], start_chip=0)
        part2 = modem.spread(symbols[4:], start_chip=4 * CHIPS_PER_SYMBOL)
        np.testing.assert_array_equal(np.concatenate([part1, part2]), whole)

    def test_despread_segmented_matches(self):
        modem = SixteenAryDSSS(seed=5)
        symbols = np.arange(10)
        chips = modem.spread(symbols)
        r1 = modem.despread(chips[: 4 * CHIPS_PER_SYMBOL], start_chip=0)
        r2 = modem.despread(chips[4 * CHIPS_PER_SYMBOL :], start_chip=4 * CHIPS_PER_SYMBOL)
        np.testing.assert_array_equal(np.concatenate([r1.symbols, r2.symbols]), symbols)

    def test_mismatched_seed_garbles(self):
        tx = SixteenAryDSSS(seed=1)
        rx = SixteenAryDSSS(seed=2)
        rng = np.random.default_rng(1)
        symbols = rng.integers(0, 16, size=200)
        result = rx.despread(tx.spread(symbols))
        assert np.mean(result.symbols == symbols) < 0.3

    def test_robust_to_noise(self):
        modem = SixteenAryDSSS(seed=3)
        rng = np.random.default_rng(2)
        symbols = rng.integers(0, 16, size=200)
        chips = modem.spread(symbols)
        noisy = chips + rng.normal(scale=1.0, size=chips.size)  # 0 dB per chip
        result = modem.despread(noisy)
        assert np.mean(result.symbols == symbols) > 0.99

    def test_quality_degrades_with_noise(self):
        modem = SixteenAryDSSS()
        symbols = np.zeros(50, dtype=int)
        chips = modem.spread(symbols)
        rng = np.random.default_rng(3)
        q_clean = modem.despread(chips).quality.mean()
        q_noisy = modem.despread(chips + rng.normal(scale=2.0, size=chips.size)).quality.mean()
        assert q_noisy < q_clean

    def test_processing_gain(self):
        assert SixteenAryDSSS().processing_gain_db == pytest.approx(9.03, abs=0.01)

    def test_invalid_symbols_raise(self):
        with pytest.raises(ValueError):
            SixteenAryDSSS().spread(np.array([16]))
        with pytest.raises(ValueError):
            SixteenAryDSSS().spread(np.array([-1]))

    def test_bad_chip_length_raises(self):
        with pytest.raises(ValueError):
            SixteenAryDSSS().despread(np.ones(33))

    def test_2d_symbols_raise(self):
        with pytest.raises(ValueError):
            SixteenAryDSSS().spread(np.zeros((2, 2), dtype=int))

    def test_short_scramble_length_raises(self):
        with pytest.raises(ValueError):
            SixteenAryDSSS(seed=1, scramble_length=8)

    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, symbols):
        modem = SixteenAryDSSS(seed=11)
        arr = np.array(symbols)
        result = modem.despread(modem.spread(arr))
        np.testing.assert_array_equal(result.symbols, arr)


class TestBPSKDSSS:
    def test_spread_length(self):
        modem = BPSKDSSS(spreading_factor=16, seed=0)
        assert modem.spread(np.array([1, -1, 1])).size == 48

    def test_roundtrip(self):
        modem = BPSKDSSS(spreading_factor=32, seed=1)
        bits = np.array([1, -1, -1, 1, 1, -1])
        soft = modem.despread(modem.spread(bits))
        np.testing.assert_array_equal(np.sign(soft), bits)

    def test_despread_gain_is_l(self):
        modem = BPSKDSSS(spreading_factor=64, seed=2)
        soft = modem.despread(modem.spread(np.array([1.0])))
        assert soft[0] == pytest.approx(64.0)

    def test_processing_gain_suppresses_uncorrelated_interference(self):
        # The core DSSS property: interference power is reduced ~L times
        # relative to the coherent signal gain.
        L = 128
        modem = BPSKDSSS(spreading_factor=L, seed=3)
        rng = np.random.default_rng(4)
        bits = np.where(rng.random(200) > 0.5, 1.0, -1.0)
        chips = modem.spread(bits)
        interference = rng.normal(scale=np.sqrt(10.0), size=chips.size)  # 10 dB above chips
        soft = modem.despread(chips + interference)
        assert np.mean(np.sign(soft) == bits) > 0.99
        # SNR at correlator output ~ L / 10 = 11 dB
        signal_part = L
        noise_part = np.std(soft - bits * L)
        snr_out = (signal_part / noise_part) ** 2
        assert 3.0 < snr_out < 40.0

    def test_segmented_spread_matches(self):
        modem = BPSKDSSS(spreading_factor=8, seed=5)
        bits = np.array([1, -1, 1, -1])
        whole = modem.spread(bits)
        p1 = modem.spread(bits[:2], start_chip=0)
        p2 = modem.spread(bits[2:], start_chip=16)
        np.testing.assert_array_equal(np.concatenate([p1, p2]), whole)

    def test_zero_factor_raises(self):
        with pytest.raises(ValueError):
            BPSKDSSS(spreading_factor=0)

    def test_bad_length_raises(self):
        modem = BPSKDSSS(spreading_factor=8, seed=0)
        with pytest.raises(ValueError):
            modem.despread(np.ones(12))

    def test_processing_gain_db(self):
        assert BPSKDSSS(spreading_factor=100).processing_gain_db == pytest.approx(20.0)
