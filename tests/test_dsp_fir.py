"""Unit tests for FIR design and fast-convolution application."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import (
    apply_fir,
    bandpass_taps,
    bandstop_taps,
    estimate_num_taps,
    fft_convolve,
    frequency_response,
    group_delay_samples,
    highpass_taps,
    lowpass_taps,
)
from repro.utils import signal_power

FS = 20e6


def response_at(taps, freq, fs=FS, n=8192):
    freqs, resp = frequency_response(taps, n, fs)
    idx = np.argmin(np.abs(freqs - freq))
    return np.abs(resp[idx])


class TestLowpassDesign:
    def test_dc_gain_unity(self):
        taps = lowpass_taps(101, 2e6, FS)
        assert abs(taps.sum()) == pytest.approx(1.0)

    def test_passband_flat(self):
        taps = lowpass_taps(201, 2e6, FS)
        for f in [0.0, 0.5e6, 1.0e6, 1.5e6]:
            assert response_at(taps, f) == pytest.approx(1.0, abs=0.01)

    def test_stopband_attenuated(self):
        taps = lowpass_taps(201, 2e6, FS)
        for f in [4e6, 6e6, 9e6]:
            assert response_at(taps, f) < 0.01

    def test_cutoff_is_half_amplitude(self):
        # Windowed-sinc designs cross ~0.5 amplitude (-6 dB) at cutoff.
        taps = lowpass_taps(301, 3e6, FS)
        assert response_at(taps, 3e6) == pytest.approx(0.5, abs=0.05)

    def test_symmetric_linear_phase(self):
        taps = lowpass_taps(101, 2e6, FS)
        np.testing.assert_allclose(taps, taps[::-1], atol=1e-15)

    def test_negative_frequencies_match_positive(self):
        taps = lowpass_taps(101, 2e6, FS)
        assert response_at(taps, -1e6) == pytest.approx(response_at(taps, 1e6), rel=1e-6)

    def test_cutoff_above_nyquist_raises(self):
        with pytest.raises(ValueError):
            lowpass_taps(101, 11e6, FS)

    def test_too_few_taps_raises(self):
        with pytest.raises(ValueError):
            lowpass_taps(2, 1e6, FS)

    def test_bad_sample_rate_raises(self):
        with pytest.raises(ValueError):
            lowpass_taps(11, 1e6, -1.0)


class TestOtherDesigns:
    def test_highpass_blocks_dc(self):
        taps = highpass_taps(201, 2e6, FS)
        assert response_at(taps, 0.0) < 0.01

    def test_highpass_passes_high(self):
        taps = highpass_taps(201, 2e6, FS)
        assert response_at(taps, 8e6) == pytest.approx(1.0, abs=0.02)

    def test_highpass_even_taps_raises(self):
        with pytest.raises(ValueError):
            highpass_taps(200, 2e6, FS)

    def test_bandpass_passes_centre(self):
        taps = bandpass_taps(301, 3e6, 5e6, FS)
        assert response_at(taps, 4e6) == pytest.approx(1.0, abs=0.05)

    def test_bandpass_blocks_outside(self):
        taps = bandpass_taps(301, 3e6, 5e6, FS)
        assert response_at(taps, 0.5e6) < 0.02
        assert response_at(taps, 8e6) < 0.02

    def test_bandpass_bad_edges_raise(self):
        with pytest.raises(ValueError):
            bandpass_taps(101, 5e6, 3e6, FS)

    def test_bandstop_notches_centre(self):
        taps = bandstop_taps(301, 3e6, 5e6, FS)
        assert response_at(taps, 4e6) < 0.05

    def test_bandstop_passes_dc(self):
        taps = bandstop_taps(301, 3e6, 5e6, FS)
        assert response_at(taps, 0.0) == pytest.approx(1.0, abs=0.05)


class TestEstimateNumTaps:
    def test_is_odd(self):
        assert estimate_num_taps(100e3, FS, 70.0) % 2 == 1

    def test_narrower_transition_needs_more_taps(self):
        wide = estimate_num_taps(1e6, FS, 70.0)
        narrow = estimate_num_taps(10e3, FS, 70.0)
        assert narrow > wide

    def test_paper_scale_filter_order(self):
        # Paper: order 3181 for 10 kHz transition, 70 dB, 20 MS/s.
        n = estimate_num_taps(10e3, FS, 70.0)
        assert 2000 < n < 10000

    def test_rejects_zero_transition(self):
        with pytest.raises(ValueError):
            estimate_num_taps(0.0, FS)


class TestFftConvolve:
    def test_matches_numpy_real(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=257)
        h = rng.normal(size=31)
        np.testing.assert_allclose(fft_convolve(x, h), np.convolve(x, h), atol=1e-9)

    def test_matches_numpy_complex(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100) + 1j * rng.normal(size=100)
        h = rng.normal(size=9) + 1j * rng.normal(size=9)
        np.testing.assert_allclose(fft_convolve(x, h), np.convolve(x, h), atol=1e-9)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_output_length_property(self, nx, nh):
        x = np.ones(nx)
        h = np.ones(nh)
        assert fft_convolve(x, h).size == nx + nh - 1


class TestApplyFir:
    def test_full_mode_matches_numpy(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=10_000) + 1j * rng.normal(size=10_000)
        h = rng.normal(size=101)
        np.testing.assert_allclose(apply_fir(x, h, mode="full"), np.convolve(x, h), atol=1e-8)

    def test_full_mode_small_block(self):
        # Force many overlap-save blocks to exercise block stitching.
        rng = np.random.default_rng(3)
        x = rng.normal(size=1000)
        h = rng.normal(size=33)
        out = apply_fir(x, h, mode="full", block_size=64)
        np.testing.assert_allclose(out, np.convolve(x, h), atol=1e-9)

    def test_compensated_aligns_peak(self):
        # An impulse through a symmetric filter must stay at its position.
        h = lowpass_taps(101, 2e6, FS)
        x = np.zeros(500, dtype=complex)
        x[250] = 1.0
        y = apply_fir(x, h, mode="compensated")
        assert y.size == x.size
        assert np.argmax(np.abs(y)) == 250

    def test_compensated_passband_signal_preserved(self):
        n = np.arange(4096)
        tone = np.exp(2j * np.pi * 0.5e6 / FS * n)
        h = lowpass_taps(201, 2e6, FS)
        y = apply_fir(tone, h, mode="compensated")
        # interior samples (away from edge transients) nearly unchanged
        core = slice(300, -300)
        assert signal_power(y[core] - tone[core]) < 1e-3

    def test_compensated_stopband_removed(self):
        n = np.arange(4096)
        tone = np.exp(2j * np.pi * 6e6 / FS * n)
        h = lowpass_taps(201, 2e6, FS)
        y = apply_fir(tone, h, mode="compensated")
        assert signal_power(y[300:-300]) < 1e-4

    def test_same_mode_length(self):
        x = np.ones(777)
        h = np.ones(10) / 10
        assert apply_fir(x, h, mode="same").size == 777

    def test_empty_signal(self):
        out = apply_fir(np.array([], dtype=complex), np.ones(5))
        assert out.size == 0

    def test_empty_taps_raises(self):
        with pytest.raises(ValueError):
            apply_fir(np.ones(10), np.array([]))

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            apply_fir(np.ones(10), np.ones(3), mode="valid")

    def test_real_in_real_filter_real_out(self):
        out = apply_fir(np.ones(100), np.ones(5) / 5)
        assert not np.iscomplexobj(out)

    @given(st.integers(min_value=3, max_value=41).filter(lambda n: n % 2 == 1))
    @settings(max_examples=20, deadline=None)
    def test_identity_filter_property(self, k):
        # A centred delta filter must return the signal unchanged.
        delta = np.zeros(k)
        delta[(k - 1) // 2] = 1.0
        x = np.sin(np.arange(300) * 0.1)
        np.testing.assert_allclose(apply_fir(x, delta, mode="compensated"), x, atol=1e-9)


class TestGroupDelay:
    def test_group_delay(self):
        assert group_delay_samples(np.ones(101)) == 50.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            group_delay_samples(np.array([]))
