"""Tests for the extended front-end impairments and the PER confidence
interval."""

import numpy as np
import pytest

from repro.channel import Impairments
from repro.core import BHSSConfig, LinkSimulator
from repro.utils import signal_power

FS = 20e6


def tone(n=8192, f=0.01):
    f = round(f * n) / n  # snap to a DFT bin so spectra have no leakage
    return np.exp(2j * np.pi * f * np.arange(n))


class TestIqImbalance:
    def test_balanced_is_noop(self):
        imp = Impairments(iq_gain_imbalance=1.0, iq_phase_error_rad=0.0)
        assert imp.is_ideal

    def test_gain_imbalance_creates_image(self):
        x = tone(f=0.1)
        out = Impairments(iq_gain_imbalance=1.2).apply(x, FS)
        spec = np.abs(np.fft.fft(out)) ** 2
        n = x.size
        idx_sig = int(round(0.1 * n))
        idx_img = n - idx_sig
        assert spec[idx_img] > 1e-4 * spec[idx_sig]  # image tone appeared
        clean = np.abs(np.fft.fft(x)) ** 2
        assert clean[idx_img] < 1e-12 * clean[idx_sig]

    def test_phase_error_creates_image(self):
        x = tone(f=0.05)
        out = Impairments(iq_phase_error_rad=0.1).apply(x, FS)
        spec = np.abs(np.fft.fft(out)) ** 2
        n = x.size
        idx_img = n - int(round(0.05 * n))
        assert spec[idx_img] > 1e-5 * spec.max()

    def test_bad_gain_raises(self):
        with pytest.raises(ValueError):
            Impairments(iq_gain_imbalance=0.0).apply(tone(), FS)


class TestDcOffsetAndQuantization:
    def test_dc_offset_adds_mean(self):
        out = Impairments(dc_offset=0.2 + 0.1j).apply(tone(), FS)
        assert np.mean(out) == pytest.approx(0.2 + 0.1j, abs=0.02)

    def test_quantization_bounded_error(self):
        x = tone()
        out = Impairments(adc_bits=8).apply(x, FS)
        err = signal_power(out - x)
        assert 0 < err < 1e-3 * signal_power(x)

    def test_coarser_adc_more_error(self):
        x = tone()
        err4 = signal_power(Impairments(adc_bits=4).apply(x, FS) - x)
        err10 = signal_power(Impairments(adc_bits=10).apply(x, FS) - x)
        assert err4 > 10 * err10

    def test_negative_bits_raise(self):
        with pytest.raises(ValueError):
            Impairments(adc_bits=-1).apply(tone(), FS)


class TestPhaseNoise:
    def test_preserves_envelope(self):
        x = tone()
        out = Impairments(phase_noise_std=0.01).apply(x, FS)
        np.testing.assert_allclose(np.abs(out), np.abs(x), atol=1e-12)

    def test_broadens_spectrum(self):
        x = tone(n=32768, f=0.1)
        out = Impairments(phase_noise_std=0.05, noise_seed=1).apply(x, FS)
        spec_clean = np.abs(np.fft.fft(x)) ** 2
        spec_noisy = np.abs(np.fft.fft(out)) ** 2
        # energy concentration at the carrier bin drops
        peak_frac_clean = spec_clean.max() / spec_clean.sum()
        peak_frac_noisy = spec_noisy.max() / spec_noisy.sum()
        assert peak_frac_noisy < 0.8 * peak_frac_clean

    def test_deterministic_by_seed(self):
        x = tone()
        a = Impairments(phase_noise_std=0.01, noise_seed=3).apply(x, FS)
        b = Impairments(phase_noise_std=0.01, noise_seed=3).apply(x, FS)
        np.testing.assert_array_equal(a, b)

    def test_negative_std_raises(self):
        with pytest.raises(ValueError):
            Impairments(phase_noise_std=-0.1).apply(tone(), FS)


class TestLinkUnderRealisticFrontEnd:
    def test_link_survives_mild_hardware(self):
        imp = Impairments(
            cfo_hz=150.0,
            phase_rad=0.3,
            iq_gain_imbalance=1.02,
            iq_phase_error_rad=0.01,
            dc_offset=0.01 + 0.005j,
            phase_noise_std=0.0005,
            adc_bits=10,
        )
        cfg = BHSSConfig.paper_default(seed=91, payload_bytes=8)
        link = LinkSimulator(cfg, impairments=imp)
        stats = link.run_packets(4, snr_db=20.0, seed=1)
        assert stats.num_accepted >= 3


class TestWilsonInterval:
    def make_stats(self, accepted, total):
        from repro.core.link import LinkStats

        return LinkStats(
            num_packets=total,
            num_accepted=accepted,
            total_bits=total * 64,
            bit_errors=0,
            data_rate_bps=1.0,
            filter_usage={},
        )

    def test_contains_point_estimate(self):
        s = self.make_stats(7, 10)
        lo, hi = s.per_confidence_interval()
        assert lo <= s.packet_error_rate <= hi

    def test_zero_failures_lower_bound_zero(self):
        lo, hi = self.make_stats(10, 10).per_confidence_interval()
        assert lo == 0.0
        assert 0 < hi < 0.35

    def test_all_failures_upper_bound_one(self):
        lo, hi = self.make_stats(0, 10).per_confidence_interval()
        assert hi == 1.0
        assert 0.65 < lo < 1.0

    def test_narrows_with_samples(self):
        wide = self.make_stats(5, 10).per_confidence_interval()
        tight = self.make_stats(500, 1000).per_confidence_interval()
        assert (tight[1] - tight[0]) < (wide[1] - wide[0])

    def test_empty_stats(self):
        assert self.make_stats(0, 0).per_confidence_interval() == (0.0, 1.0)
