"""Network subsystem tests: spec layer, simulator, runner, and metrics.

The hard equivalence wall lives here: an N=1 network with no cross-link
interferers must reproduce :meth:`LinkSimulator.run_packets`
bit-identically at every seed — dataclass equality on
:class:`LinkStats` compares the raw integer counters, so ``==`` *is*
the bit-identity check.
"""

import json
import os

import pytest

from repro.core import BHSSConfig, LinkSimulator, LinkStats
from repro.network import (
    JAMMER_SWEEP_COLUMNS,
    NETWORK_COLUMNS,
    LinkSpec,
    NetworkError,
    NetworkSimulator,
    NetworkSpec,
    evaluate_network_link,
    jain_fairness,
    jammer_count_sweep,
    run_network,
)
from repro.runtime import ParallelExecutor, ResultCache, SweepCheckpoint, stable_hash

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples", "scenarios")

TONE = {"type": "tone", "frequency": 250e3}
NOISE = {"type": "noise", "bandwidth": 625e3}


def small_config(seed=3, **kw):
    return BHSSConfig.paper_default(payload_bytes=2, seed=seed, **kw)


def one_link_spec(seed, jammed=True, packets=2):
    link = LinkSpec(
        name="solo",
        config=small_config(),
        seed=seed,
        snr_db=12.0,
        sjr_db=-8.0 if jammed else -10.0,
        jammer=dict(TONE) if jammed else {"type": "none"},
    )
    return NetworkSpec(name="n1", links=(link,), packets=packets)


def mesh_spec(packets=2, coupling=-18.0):
    links = (
        LinkSpec(name="a", config=small_config(seed=5), seed=50, snr_db=14.0,
                 sjr_db=-8.0, jammer=dict(TONE)),
        LinkSpec(name="b", config=small_config(seed=6), seed=51, snr_db=14.0),
        LinkSpec(name="c", config=small_config(seed=7), seed=52, snr_db=12.0,
                 sjr_db=-10.0, jammer=dict(NOISE), jammer_delay_samples=100),
    )
    matrix = (
        (None, coupling, None),
        (coupling, None, coupling),
        (None, coupling, None),
    )
    return NetworkSpec(name="mesh3", links=links, coupling_db=matrix, packets=packets)


# ---------------------------------------------------------------------------
# the equivalence wall
# ---------------------------------------------------------------------------

class TestSingleLinkEquivalence:
    """N=1, no interferers: must equal LinkSimulator.run_packets exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("jammed", [True, False])
    def test_bit_identical_to_link_simulator(self, seed, jammed):
        spec = one_link_spec(seed, jammed=jammed, packets=3)
        link = spec.links[0]
        network_stats = NetworkSimulator(spec).run_link(0)
        classic = LinkSimulator(link.config).run_packets(
            spec.packets,
            snr_db=link.snr_db,
            sjr_db=link.sjr_db,
            jammer=link.build_jammer() if jammed else None,
            seed=link.seed,
            jammer_delay_samples=link.jammer_delay_samples,
            cache=False,
        )
        assert network_stats == classic

    def test_run_network_reconstructs_identical_stats(self):
        spec = one_link_spec(1, packets=3)
        link = spec.links[0]
        result = run_network(spec, cache=False, checkpoint=False)
        classic = LinkSimulator(link.config).run_packets(
            spec.packets, snr_db=link.snr_db, sjr_db=link.sjr_db,
            jammer=link.build_jammer(), seed=link.seed, cache=False,
        )
        assert result.link_stats("solo") == classic


# ---------------------------------------------------------------------------
# seed independence
# ---------------------------------------------------------------------------

class TestSeedIndependence:
    def test_duplicate_run_seeds_rejected(self):
        links = (
            LinkSpec(name="a", config=small_config(seed=1), seed=7),
            LinkSpec(name="b", config=small_config(seed=2), seed=7),
        )
        with pytest.raises(NetworkError, match=r"links\[1\]\.seed: 7 duplicates link 'a'"):
            NetworkSpec(name="bad", links=links)

    def test_distinct_links_never_share_a_substream(self):
        # distinct run seeds → distinct child streams: the first noise
        # draws of every (link, packet) pair must be pairwise different
        from repro.utils.rng import child_rng

        spec = mesh_spec()
        draws = set()
        for link in spec.links:
            for k in range(spec.packets):
                gen = child_rng(link.seed, "packet", str(k))
                draws.add(tuple(gen.standard_normal(4).tolist()))
        assert len(draws) == spec.num_links * spec.packets

    def test_link_permutation_leaves_per_link_stats_unchanged(self):
        # reorder the links (and the coupling matrix with them): every
        # link's stats, matched by name, must be bit-identical
        spec = mesh_spec()
        baseline = {
            link.name: NetworkSimulator(spec).run_link(i)
            for i, link in enumerate(spec.links)
        }
        order = [2, 0, 1]
        assert spec.coupling_db is not None
        permuted = NetworkSpec(
            name=spec.name,
            links=tuple(spec.links[i] for i in order),
            coupling_db=tuple(
                tuple(spec.coupling_db[i][j] for j in order) for i in order
            ),
            packets=spec.packets,
        )
        sim = NetworkSimulator(permuted)
        for i, link in enumerate(permuted.links):
            assert sim.run_link(i) == baseline[link.name]

    def test_silencing_one_jammer_does_not_touch_other_links(self):
        spec = mesh_spec()
        full = NetworkSimulator(spec)
        # silence link a's jammer (the first jammed link)
        derived = spec.with_active_jammers(1)  # keeps a's, drops c's
        assert derived.links[0].jammed and not derived.links[2].jammed
        part = NetworkSimulator(derived)
        # links a and b are untouched by c's jammer state
        assert part.run_link(0) == full.run_link(0)
        assert part.run_link(1) == full.run_link(1)


# ---------------------------------------------------------------------------
# superposition has an effect
# ---------------------------------------------------------------------------

class TestCoupling:
    def test_strong_coupling_degrades_the_victim(self):
        quiet = NetworkSimulator(mesh_spec(coupling=-60.0)).run_link(1)
        loud = NetworkSimulator(mesh_spec(coupling=6.0)).run_link(1)
        assert loud.packet_error_rate >= quiet.packet_error_rate
        assert loud.packet_error_rate > 0.0  # +6 dB neighbours on both sides

    def test_isolated_network_equals_no_coupling_matrix(self):
        spec = mesh_spec()
        isolated = NetworkSpec(
            name=spec.name, links=spec.links,
            coupling_db=None, packets=spec.packets,
        )
        nulled = NetworkSpec(
            name=spec.name, links=spec.links,
            coupling_db=((None,) * 3,) * 3, packets=spec.packets,
        )
        for i in range(3):
            assert (
                NetworkSimulator(isolated).run_link(i)
                == NetworkSimulator(nulled).run_link(i)
            )


# ---------------------------------------------------------------------------
# spec layer
# ---------------------------------------------------------------------------

class TestNetworkSpec:
    def test_json_round_trip(self):
        spec = mesh_spec()
        data = json.loads(json.dumps(spec.to_dict()))
        assert NetworkSpec.from_dict(data) == spec

    def test_save_load(self, tmp_path):
        spec = mesh_spec()
        path = spec.save(str(tmp_path / "net.json"))
        assert NetworkSpec.load(path) == spec

    def test_load_errors_carry_the_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "links": [{"name": "a", "volume": 11}]}))
        with pytest.raises(NetworkError, match=r"bad\.json.*links\[0\].*volume"):
            NetworkSpec.load(str(path))

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda d: d.update(gain=3), "unknown network field"),
        (lambda d: d.pop("name"), "name: field is required"),
        (lambda d: d.update(links=[]), "non-empty list"),
        (lambda d: d.update(packets=0), "packets: must be >= 1"),
        (lambda d: d.update(coupling_db=[[None]]), "3x3 matrix"),
        (lambda d: d["coupling_db"].__setitem__(0, [0.0, -18.0, None]), "diagonal must be null"),
        (lambda d: d.update(delay_samples=[[0, -1, 0], [0, 0, 0], [0, 0, 0]]), "must be >= 0"),
        (lambda d: d.update(delay_samples=[[0, 5, 0], [0, 7, 0], [0, 0, 0]]), "diagonal delay must be 0"),
        (lambda d: d["links"][0].update(name="b"), "duplicate link name"),
        (lambda d: d["links"][0].update(jammer={"type": "tone"}), "jammer"),
    ])
    def test_validation_errors_name_the_field(self, mutate, fragment):
        data = mesh_spec().to_dict()
        mutate(data)
        with pytest.raises(NetworkError, match=fragment):
            NetworkSpec.from_dict(data)

    def test_mismatched_sample_rates_rejected(self):
        import dataclasses

        from repro.hopping import BandwidthSet

        base = small_config(seed=2)
        halved = dataclasses.replace(
            base,
            bandwidth_set=BandwidthSet(
                bandwidths=base.bandwidth_set.bandwidths, sample_rate=40e6
            ),
        )
        links = (
            LinkSpec(name="a", config=small_config(seed=1), seed=1),
            LinkSpec(name="b", config=halved, seed=2),
        )
        with pytest.raises(NetworkError, match="one medium sample rate"):
            NetworkSpec(name="mixed", links=links)

    def test_with_active_jammers(self):
        spec = mesh_spec()  # a and c jammed
        assert spec.num_jammers == 2
        assert spec.with_active_jammers(0).num_jammers == 0
        one = spec.with_active_jammers(1)
        assert [link.jammed for link in one.links] == [True, False, False]
        assert spec.with_active_jammers(5).num_jammers == 2
        # everything else is untouched
        assert one.links[2].without_jammer() == spec.links[2].without_jammer()
        assert one.coupling_db == spec.coupling_db

    def test_topology_queries(self):
        spec = mesh_spec()
        assert spec.num_links == 3
        assert spec.interferers(0) == (1,)
        assert spec.interferers(1) == (0, 2)
        assert spec.cross_delay(0, 1) == 0  # no delay matrix

    def test_example_network_files_validate(self):
        mesh = NetworkSpec.load(os.path.join(EXAMPLES, "network_mesh4.json"))
        jammed = NetworkSpec.load(os.path.join(EXAMPLES, "network_jammed8.json"))
        assert mesh.num_links == 4 and mesh.num_jammers == 2
        assert jammed.num_links == 8 and jammed.num_jammers == 8


# ---------------------------------------------------------------------------
# runner: parallel fan-out, cache, checkpoint
# ---------------------------------------------------------------------------

class TestRunNetwork:
    def test_records_follow_link_order_and_columns(self):
        spec = mesh_spec()
        result = run_network(spec, cache=False, checkpoint=False)
        assert [r["link"] for r in result.records] == ["a", "b", "c"]
        table = result.to_sweep_result()
        assert table.columns == NETWORK_COLUMNS
        assert len(table.rows) == 3

    def test_parallel_matches_serial(self):
        spec = mesh_spec()
        serial = run_network(spec, executor=ParallelExecutor(0), cache=False, checkpoint=False)
        if not ParallelExecutor.fork_available():
            pytest.skip("no fork on this platform")
        pooled = run_network(spec, executor=ParallelExecutor(2), cache=False, checkpoint=False)
        assert pooled.records == serial.records
        assert pooled.aggregates() == serial.aggregates()

    def test_eight_link_example_through_the_pool(self):
        spec = NetworkSpec.load(os.path.join(EXAMPLES, "network_jammed8.json"))
        if not ParallelExecutor.fork_available():
            pytest.skip("no fork on this platform")
        result = run_network(spec, executor=ParallelExecutor(2), cache=False, checkpoint=False)
        assert len(result.records) == 8
        agg = result.aggregates()
        assert agg["num_links"] == 8 and agg["num_jammers"] == 8
        assert 0.0 < agg["fairness"] <= 1.0
        assert agg["network_throughput_bps"] >= 0.0

    def test_cache_round_trip(self, tmp_path):
        spec = mesh_spec()
        root = str(tmp_path / "cache")
        first = run_network(spec, cache=root, checkpoint=False)
        probe = ResultCache(root)
        payload = {"network": spec.to_dict(), "cache": probe}
        for i in range(spec.num_links):
            assert evaluate_network_link(payload, i) == first.records[i]
        assert probe.hits == spec.num_links
        assert probe.misses == 0

    def test_checkpoint_resume_skips_finished_links(self, tmp_path):
        spec = mesh_spec()
        root = str(tmp_path / "ckpt")
        full = run_network(spec, cache=False, checkpoint=False)
        key = stable_hash({"network": spec.to_dict()})
        # pre-seed links 0 and 2 as already finished
        ck = SweepCheckpoint(root, key, total=spec.num_links)
        ck.record(0, full.records[0])
        ck.record(2, full.records[2])
        ck.flush()
        resumed = run_network(spec, cache=False, checkpoint=root)
        assert resumed.records == full.records
        # only the pending link was simulated
        assert resumed.timing is not None
        assert resumed.timing.point_seconds[0] == 0.0
        assert resumed.timing.point_seconds[1] > 0.0
        assert resumed.timing.point_seconds[2] == 0.0
        # a completed run clears its checkpoint
        assert SweepCheckpoint(root, key, total=spec.num_links).load() == {}

    def test_jammer_count_sweep_shape(self):
        spec = mesh_spec()
        sweep = jammer_count_sweep(spec, cache=False, checkpoint=False)
        assert sweep.columns == JAMMER_SWEEP_COLUMNS
        assert sweep.column("num_jammers") == [0, 1, 2]
        for row in sweep.rows:
            assert 0.0 < row["fairness"] <= 1.0
            assert 0.0 <= row["mean_per"] <= 1.0

    def test_link_stats_lookup_unknown_name(self):
        result = run_network(one_link_spec(0), cache=False, checkpoint=False)
        with pytest.raises(KeyError, match="no link named"):
            result.link_stats("ghost")
        assert isinstance(result.link_stats("solo"), LinkStats)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestJainFairness:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness([3.0, 3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_one_hog_approaches_one_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_defined_as_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        assert jain_fairness([1.0, 2.0, 3.0]) == pytest.approx(jain_fairness([10.0, 20.0, 30.0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_negative_raises_with_index(self):
        with pytest.raises(ValueError, match=r"\[1\]"):
            jain_fairness([1.0, -0.5])

    def test_bounds(self):
        values = [0.1, 5.0, 2.0, 0.0, 7.5]
        f = jain_fairness(values)
        assert 1.0 / len(values) <= f <= 1.0
