"""Regenerate the golden tournament cells (``arena_cells.json``).

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate_arena.py

Freezes the full :func:`repro.arena.evaluate_arena_cell` record — PER,
BER, throughput, and the raw counters — for a handful of pinned
(jammer, pattern) tournament cells.  ``tests/test_adversary_zoo.py``
recomputes the cells and compares *exactly* (JSON round-trips Python
floats losslessly), so any numerics drift in the adaptive jammers, the
link engine, or the tournament runner is caught even when it preserves
the serial/batched equivalence.

Only regenerate after an *intentional* numerics change, and say why in
the commit message.
"""

from __future__ import annotations

import json
import os

from repro.arena import ArenaSpec
from repro.core.config import BHSSConfig
from repro.hopping.bands import BandwidthSet

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "arena_cells.json")

# Every generation input is pinned here; the test imports these so the
# recomputation can't drift away from the fixture's provenance.
ARENA = {
    "name": "golden-arena",
    "config": None,  # filled by build_spec() — BHSSConfig is not JSON
    "jammers": {
        "latent": {
            "type": "latent-reactive",
            "bandwidth": 10e6,
            "turnaround_samples": 1024,
        },
        "repeater": {"type": "repeater", "delay_samples": 64, "num_taps": 3},
        "follower": {"type": "follower", "initial_bandwidth": 10e6},
    },
    "patterns": ["linear", "parabolic"],
    "hop_ranges": [3],
    "snr_db": 12.0,
    "sjr_db": -6.0,
    "packets": 3,
    "seed": 17,
}

#: the frozen (jammer, pattern) pairs; hop range is pinned to 3 bands.
FROZEN_CELLS = [
    ("latent", "linear"),
    ("repeater", "parabolic"),
    ("follower", "linear"),
]


def build_spec() -> ArenaSpec:
    data = {k: v for k, v in ARENA.items() if k != "config"}
    data["config"] = BHSSConfig(
        bandwidth_set=BandwidthSet.paper_default(count=3),
        payload_bytes=2,
        symbols_per_hop=2,
        seed=13,
    ).to_dict()
    return ArenaSpec.from_dict(data)


def generate() -> dict[str, dict]:
    from repro.arena import evaluate_arena_cell

    spec = build_spec()
    payload = {"arena": spec.to_dict(), "cache": False}
    wanted = {pair: None for pair in FROZEN_CELLS}
    for index, (label, _jspec, pattern, _bands) in enumerate(spec.cells()):
        if (label, pattern) in wanted:
            wanted[(label, pattern)] = evaluate_arena_cell(payload, index)
    missing = [pair for pair, record in wanted.items() if record is None]
    if missing:
        raise RuntimeError(f"frozen cells not in the grid: {missing}")
    return {f"{label}:{pattern}": record for (label, pattern), record in wanted.items()}


def main() -> None:
    cells = generate()
    with open(OUTPUT, "w") as fh:
        json.dump(cells, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUTPUT}: {len(cells)} tournament cells")


if __name__ == "__main__":
    main()
