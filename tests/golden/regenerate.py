"""Regenerate the golden DSP vectors (``golden_vectors.npz``).

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate.py

The vectors freeze the *serial* reference pipeline's output for a fixed,
fully seeded scenario: the transmitted waveform at every hop stretch
factor, the eq.-3 excision taps designed against a tone jammer, and the
despread soft-decision outputs.  ``tests/test_golden_vectors.py`` then
checks that both the serial and the batched pipelines still reproduce
them — a drift detector that pins today's numerics, not just
serial/batched agreement.

Only regenerate after an *intentional* numerics change, and say why in
the commit message.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.config import BHSSConfig
from repro.core.control import ControlLogic
from repro.jamming.registry import ToneJammer
from repro.phy.qpsk import ChipModulator

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "golden_vectors.npz")

# Every generation input is pinned here; the test imports these so the
# recomputation can't drift away from the fixture's provenance.
MODEM_SEED = 21
SYMBOLS = np.array([3, 14, 0, 7, 9, 12, 1, 5], dtype=np.int64)
START_CHIP = 96
NOISE_SEED = 2024
NOISE_SCALE = 0.05
TONE_FREQ = 1.25e6
TONE_BLOCK = 4096
TONE_SJR_SCALE = 3.0  # tone amplitude relative to unit signal power


def build_pieces():
    config = BHSSConfig.paper_default(seed=11)
    modem = config.build_modem()
    modulator = ChipModulator(config.pulse)
    control = ControlLogic(
        sample_rate=config.sample_rate,
        excision_taps=config.excision_taps,
        lpf_transition_fraction=config.lpf_transition_fraction,
        pulse=config.pulse,
    )
    return config, modem, modulator, control


def generate() -> dict[str, np.ndarray]:
    config, modem, modulator, control = build_pieces()
    vectors: dict[str, np.ndarray] = {"symbols": SYMBOLS}

    chips = modem.spread(SYMBOLS, start_chip=START_CHIP)
    vectors["chips"] = chips

    # -- transmit waveform per hop stretch factor --------------------------
    for bandwidth in config.bandwidth_set.bandwidths:
        sps = config.bandwidth_set.sps(bandwidth)
        vectors[f"tx_wave_sps{sps}"] = modulator.modulate(chips, sps)

    # -- excision taps against a tone jammer -------------------------------
    rng = np.random.default_rng(NOISE_SEED)
    tone = ToneJammer(TONE_FREQ, config.sample_rate).waveform(TONE_BLOCK)
    noise = (
        rng.standard_normal(TONE_BLOCK) + 1j * rng.standard_normal(TONE_BLOCK)
    ) * NOISE_SCALE
    jammed_block = TONE_SJR_SCALE * tone + noise
    vectors["jammed_block"] = jammed_block
    vectors["excision_taps"] = control.excision_for(jammed_block)

    # -- despread soft symbols ---------------------------------------------
    sps = config.bandwidth_set.sps(config.bandwidth_set.bandwidths[2])
    wave = vectors[f"tx_wave_sps{sps}"]
    noisy = wave + NOISE_SCALE * (
        rng.standard_normal(wave.size) + 1j * rng.standard_normal(wave.size)
    )
    vectors["rx_wave"] = noisy
    soft = modulator.demodulate(noisy, sps, num_chips=chips.size)
    vectors["soft_chips"] = soft
    result = modem.despread(soft, start_chip=START_CHIP)
    vectors["despread_symbols"] = result.symbols
    vectors["despread_scores"] = result.scores
    vectors["despread_quality"] = result.quality
    return vectors


def main() -> None:
    vectors = generate()
    np.savez_compressed(OUTPUT, **vectors)
    total = sum(v.nbytes for v in vectors.values())
    print(f"wrote {OUTPUT}: {len(vectors)} arrays, {total / 1024:.0f} KiB uncompressed")


if __name__ == "__main__":
    main()
