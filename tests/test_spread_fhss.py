"""Unit tests for the FHSS channel plan and modem."""

import numpy as np
import pytest

from repro.dsp import welch_psd
from repro.spread import FHSSChannelPlan, FHSSModem
from repro.utils import signal_power

FS = 20e6


class TestChannelPlan:
    def test_channel_bandwidth(self):
        plan = FHSSChannelPlan(total_bandwidth=10e6, num_channels=10)
        assert plan.channel_bandwidth == pytest.approx(1e6)

    def test_centres_symmetric(self):
        plan = FHSSChannelPlan(total_bandwidth=10e6, num_channels=10)
        centres = plan.centres()
        np.testing.assert_allclose(centres, -centres[::-1], atol=1e-6)

    def test_centres_within_band(self):
        plan = FHSSChannelPlan(total_bandwidth=8e6, num_channels=5)
        assert np.all(np.abs(plan.centres()) < 4e6)

    def test_first_centre(self):
        plan = FHSSChannelPlan(total_bandwidth=10e6, num_channels=10)
        assert plan.centre(0) == pytest.approx(-4.5e6)

    def test_processing_gain(self):
        assert FHSSChannelPlan(10e6, 100).processing_gain_db == pytest.approx(20.0)

    def test_bad_channel_raises(self):
        plan = FHSSChannelPlan(10e6, 4)
        with pytest.raises(ValueError):
            plan.centre(4)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            FHSSChannelPlan(-1.0, 4)
        with pytest.raises(ValueError):
            FHSSChannelPlan(1e6, 0)


def narrowband_segments(n_segments, seg_len, bw, seed=0):
    """Band-limited unit-power baseband segments."""
    from repro.dsp import apply_fir, lowpass_taps

    rng = np.random.default_rng(seed)
    taps = lowpass_taps(129, bw / 2, FS)
    segs = []
    for _ in range(n_segments):
        noise = rng.normal(size=seg_len) + 1j * rng.normal(size=seg_len)
        seg = apply_fir(noise, taps, mode="compensated")
        segs.append(seg / np.sqrt(signal_power(seg)))
    return segs


class TestFHSSModem:
    def make_modem(self, seed=0):
        plan = FHSSChannelPlan(total_bandwidth=16e6, num_channels=8)
        return FHSSModem(plan, FS, seed=seed)

    def test_channel_sequence_deterministic(self):
        m1, m2 = self.make_modem(3), self.make_modem(3)
        np.testing.assert_array_equal(m1.channel_sequence(50), m2.channel_sequence(50))

    def test_channel_sequence_seed_sensitive(self):
        assert not np.array_equal(
            self.make_modem(1).channel_sequence(50), self.make_modem(2).channel_sequence(50)
        )

    def test_channels_in_range(self):
        seq = self.make_modem().channel_sequence(200)
        assert seq.min() >= 0 and seq.max() < 8

    def test_negative_hops_raises(self):
        with pytest.raises(ValueError):
            self.make_modem().channel_sequence(-1)

    def test_hop_up_length(self):
        modem = self.make_modem()
        segs = narrowband_segments(4, 1024, modem.plan.channel_bandwidth)
        assert modem.hop_up(segs).size == 4096

    def test_hop_up_moves_spectrum(self):
        modem = self.make_modem(seed=4)
        seg_len = 8192
        segs = narrowband_segments(1, seg_len, modem.plan.channel_bandwidth, seed=1)
        wave = modem.hop_up(segs)
        ch = int(modem.channel_sequence(1)[0])
        centre = modem.plan.centre(ch)
        freqs, psd = welch_psd(wave, FS, nperseg=512)
        peak_freq = freqs[np.argmax(psd)]
        assert abs(peak_freq - centre) < modem.plan.channel_bandwidth

    def test_roundtrip_recovers_segments(self):
        modem = self.make_modem(seed=5)
        seg_len = 4096
        segs = narrowband_segments(6, seg_len, modem.plan.channel_bandwidth, seed=2)
        wave = modem.hop_up(segs)
        rec = modem.hop_down(wave, [seg_len] * 6, filtered=False)
        for orig, back in zip(segs, rec):
            np.testing.assert_allclose(back, orig, atol=1e-9)

    def test_dehop_filter_suppresses_out_of_channel_jammer(self):
        modem = self.make_modem(seed=6)
        seg_len = 16384
        segs = narrowband_segments(1, seg_len, modem.plan.channel_bandwidth, seed=3)
        wave = modem.hop_up(segs)
        ch = int(modem.channel_sequence(1)[0])
        # jam a *different* channel with 20 dB more power
        other = (ch + 4) % 8
        n = np.arange(wave.size)
        jam = 10.0 * np.exp(2j * np.pi * modem.plan.centre(other) / FS * n)
        rec = modem.hop_down(wave + jam, [seg_len], filtered=True)[0]
        core = slice(400, -400)
        clean = modem.hop_down(wave, [seg_len], filtered=True)[0]
        residual = signal_power(rec[core] - clean[core])
        assert residual < 0.02 * signal_power(jam)

    def test_hop_down_length_mismatch_raises(self):
        modem = self.make_modem()
        with pytest.raises(ValueError):
            modem.hop_down(np.zeros(100, dtype=complex), [200])

    def test_band_exceeds_sample_rate_raises(self):
        plan = FHSSChannelPlan(total_bandwidth=30e6, num_channels=4)
        with pytest.raises(ValueError):
            FHSSModem(plan, FS)

    def test_empty_hop_up(self):
        assert self.make_modem().hop_up([]).size == 0
