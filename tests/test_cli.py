"""CLI exit-code contract: 0 clean, 1 findings/failures, 2 usage errors.

The ``lint`` and ``scenario validate`` subcommands gate CI, so their exit
codes are load-bearing: a wrong zero lets a regression merge, a spurious
two masks findings as usage errors.  These tests pin the full convention
end to end through :func:`repro.cli.main`.
"""

import json
import os

import pytest

from repro.cli import main

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCENARIO_DIR = os.path.join(REPO, "examples", "scenarios")


class TestLintExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", "--root", REPO, os.path.join(REPO, "src")]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "dsp" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nbuf = np.zeros(8)\n")
        code = main(
            ["lint", "--root", str(tmp_path), "--rules", "dtype-discipline", str(bad)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "dtype-discipline" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", str(os.path.join(REPO, "no-such-dir"))]) == 2
        assert "do not exist" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rules", "bogus", os.path.join(REPO, "src")]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_syntax_error_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert main(["lint", "--root", str(tmp_path), str(bad)]) == 1
        assert "cannot scan" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "phy" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nx = np.random.normal(size=3)\n")
        code = main(
            ["lint", "--root", str(tmp_path), "--rules", "rng-discipline",
             "--format", "json", str(bad)]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "rng-discipline"

    def test_github_format(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "phy" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nx = np.random.normal(size=3)\n")
        code = main(
            ["lint", "--root", str(tmp_path), "--rules", "rng-discipline",
             "--format", "github", str(bad)]
        )
        assert code == 1
        assert "::error file=" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("rng-discipline", "dtype-discipline", "batch-symmetry",
                        "registry-roundtrip", "knob-docs", "mypy-baseline"):
            assert rule_id in out


class TestScenarioValidateExitCodes:
    def test_valid_directory_exits_zero(self, capsys):
        assert main(["scenario", "validate", SCENARIO_DIR]) == 0
        assert "scenario files valid" in capsys.readouterr().out

    def test_invalid_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "grid": {"snr_db": [], "sjr_db": [1.0]}}))
        assert main(["scenario", "validate", str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unreadable_file_exits_one_not_traceback(self, tmp_path, capsys):
        assert main(["scenario", "validate", str(tmp_path / "missing.json")]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_invalid_json_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["scenario", "validate", str(bad)]) == 1
        assert "invalid JSON" in capsys.readouterr().out

    def test_empty_directory_exits_two(self, tmp_path, capsys):
        assert main(["scenario", "validate", str(tmp_path)]) == 2
        assert "no scenario files" in capsys.readouterr().err

    def test_mixed_valid_and_invalid_exits_one(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({
            "name": "ok",
            "jammer": {"type": "none"},
            "grid": {"snr_db": [15.0], "sjr_db": [0.0]},
            "packets": 1,
        }))
        bad = tmp_path / "zbad.json"
        bad.write_text("{}")
        assert main(["scenario", "validate", str(tmp_path)]) == 1


class TestScenarioRunExitCodes:
    def test_bad_scenario_file_exits_two(self, tmp_path, capsys):
        assert main(["run", "--scenario", str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestNetworkRun:
    def network_spec(self, tmp_path, **overrides):
        spec = {
            "name": "cli2",
            "links": [
                {"name": "a", "config": {"seed": 1, "payload_bytes": 2}, "seed": 10,
                 "snr_db": 14.0, "sjr_db": -8.0,
                 "jammer": {"type": "tone", "frequency": 250e3}},
                {"name": "b", "config": {"seed": 2, "payload_bytes": 2}, "seed": 11,
                 "snr_db": 14.0},
            ],
            "coupling_db": [[None, -18.0], [-18.0, None]],
            "packets": 2,
        }
        spec.update(overrides)
        path = tmp_path / "net.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_run_network_prints_per_link_table_and_aggregates(self, tmp_path, capsys):
        path = self.network_spec(tmp_path)
        out_csv = str(tmp_path / "net.csv")
        assert main(["run", "--network", path, "--output", out_csv]) == 0
        out = capsys.readouterr().out
        assert "network 'cli2': 2 links x 2 packets, 1 jammer(s)" in out
        assert "network throughput" in out and "Jain fairness" in out
        assert os.path.exists(out_csv)
        with open(out_csv) as fh:
            header = fh.readline().strip()
        assert header.split(",")[0] == "link"

    def test_run_requires_exactly_one_spec_kind(self, tmp_path, capsys):
        path = self.network_spec(tmp_path)
        assert main(["run"]) == 2
        assert (
            "exactly one of --scenario, --network, --tournament or --session"
            in capsys.readouterr().err
        )
        assert main(["run", "--scenario", path, "--network", path]) == 2
        assert (
            "exactly one of --scenario, --network, --tournament or --session"
            in capsys.readouterr().err
        )

    def test_bad_network_file_exits_two(self, tmp_path, capsys):
        bad = self.network_spec(tmp_path, links=[])
        assert main(["run", "--network", bad]) == 2
        assert "links" in capsys.readouterr().err

    def test_scenario_validate_routes_network_files(self, tmp_path, capsys):
        self.network_spec(tmp_path)
        assert main(["scenario", "validate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cli2 (2 links x 2 packets, 1 jammer(s))" in out

    def test_scenario_validate_fails_bad_network_file(self, tmp_path, capsys):
        self.network_spec(tmp_path, packets=0)
        assert main(["scenario", "validate", str(tmp_path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_scenario_list_shows_network_shape(self, tmp_path, capsys):
        self.network_spec(tmp_path)
        assert main(["scenario", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "network (1 jammed)" in out
        assert "2 links x2" in out

    def test_example_network_specs_validate(self, capsys):
        for name in ["network_mesh4.json", "network_jammed8.json"]:
            assert main(["scenario", "validate", os.path.join(SCENARIO_DIR, name)]) == 0
        capsys.readouterr()


class TestCacheCommands:
    @staticmethod
    def _seed(directory):
        from repro.runtime import ResultCache, stable_hash

        store = ResultCache(str(directory))
        store.put({"point": 1}, {"per": 0.25})
        store.put({"point": 2}, {"per": 0.5})
        return store._path(stable_hash({"point": 1}))

    def test_verify_clean_cache_exits_zero(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(["cache", "verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache verify: ok" in out
        assert "entries     : 2" in out

    def test_verify_corrupt_cache_exits_one_and_lists_paths(self, tmp_path, capsys):
        entry = self._seed(tmp_path)
        with open(entry, "a") as fh:
            fh.write("bit rot")
        assert main(["cache", "verify", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "cache verify: FAILED" in captured.err
        assert entry in captured.out  # corrupt paths are printed for inspection

    def test_gc_cleans_then_verify_passes(self, tmp_path, capsys):
        entry = self._seed(tmp_path)
        with open(entry, "a") as fh:
            fh.write("bit rot")
        assert main(["cache", "gc", str(tmp_path)]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "verify", str(tmp_path)]) == 0

    def test_no_directory_and_no_env_exits_two(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert main(["cache", "verify"]) == 2
        assert "REPRO_CACHE" in capsys.readouterr().err

    def test_directory_defaults_to_env(self, monkeypatch, tmp_path, capsys):
        self._seed(tmp_path)
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert main(["cache", "verify"]) == 0
        assert "cache verify: ok" in capsys.readouterr().out
