"""Unit tests for the end-to-end link simulator and statistics."""

import pytest

from repro.channel import Impairments
from repro.core import BHSSConfig, LinkSimulator
from repro.jamming import (
    BandlimitedNoiseJammer,
    HoppingJammer,
    MatchedReactiveJammer,
    NoJammer,
)


def make_link(**kw):
    filtering = kw.pop("filtering", True)
    cfg = BHSSConfig.paper_default(payload_bytes=8, seed=11, **kw)
    if not filtering:
        cfg = cfg.without_filtering()
    return LinkSimulator(cfg)


class TestRunPacket:
    def test_clean_packet_accepted(self):
        out = make_link().run_packet(snr_db=20.0, rng=0)
        assert out.accepted
        assert out.bit_errors == 0
        assert out.total_bits == 64

    def test_low_snr_fails(self):
        out = make_link().run_packet(snr_db=-20.0, rng=1)
        assert not out.accepted
        assert out.bit_errors > 0

    def test_explicit_payload(self):
        out = make_link().run_packet(snr_db=20.0, rng=2, payload=b"abcdefgh")
        assert out.accepted
        assert out.receive.payload == b"abcdefgh"

    def test_bit_error_rate_property(self):
        out = make_link().run_packet(snr_db=-18.0, rng=3)
        assert 0 < out.bit_error_rate <= 1.0

    def test_jammer_with_infinite_sjr_ignored(self):
        jam = BandlimitedNoiseJammer(5e6, 20e6)
        out = make_link().run_packet(snr_db=20.0, sjr_db=float("inf"), jammer=jam, rng=4)
        assert out.accepted

    def test_infinite_sjr_seed_comparable_to_finite(self):
        """sjr=inf must consume the jammer RNG exactly like a finite SJR.

        An SJR sweep that includes inf as its unjammed baseline must see
        the same noise realization at every point: a +300 dB jammer is
        physically negligible (power 1e-30 of the signal), so at the same
        seed its packet outcomes must match the inf point bit for bit.
        Before the gating fix the inf branch skipped the jammer draw and
        the two points silently diverged in their noise streams.
        """
        link = make_link()
        for k, snr in enumerate([18.0, 3.0, -3.0]):
            at_inf = link.run_packet(
                snr_db=snr, sjr_db=float("inf"),
                jammer=BandlimitedNoiseJammer(2.5e6, 20e6), rng=40 + k,
            )
            negligible = link.run_packet(
                snr_db=snr, sjr_db=300.0,
                jammer=BandlimitedNoiseJammer(2.5e6, 20e6), rng=40 + k,
            )
            assert at_inf.accepted == negligible.accepted
            assert at_inf.bit_errors == negligible.bit_errors

    def test_no_jammer_class_equivalent_to_none(self):
        a = make_link().run_packet(snr_db=15.0, jammer=None, rng=5)
        b = make_link().run_packet(snr_db=15.0, jammer=NoJammer(), sjr_db=0.0, rng=5)
        assert a.accepted == b.accepted

    def test_reactive_jammer_gets_observation(self):
        jam = MatchedReactiveJammer(20e6, reaction_samples=0, initial_bandwidth=10e6)
        make_link().run_packet(snr_db=15.0, sjr_db=-5.0, jammer=jam, rng=6)
        assert jam._profile  # link fed it the transmitted profile

    def test_strong_matched_fixed_jammer_breaks_fixed_link(self):
        link = make_link(fixed_bandwidth=10e6)
        jam = BandlimitedNoiseJammer(10e6, 20e6)
        out = link.run_packet(snr_db=20.0, sjr_db=-20.0, jammer=jam, rng=7)
        assert not out.accepted


class TestRunPackets:
    def test_aggregation(self):
        stats = make_link().run_packets(5, snr_db=20.0, seed=1)
        assert stats.num_packets == 5
        assert stats.num_accepted == 5
        assert stats.packet_error_rate == 0.0
        assert stats.bit_error_rate == 0.0
        assert stats.total_bits == 5 * 64

    def test_deterministic_given_seed(self):
        a = make_link().run_packets(4, snr_db=3.0, seed=9)
        b = make_link().run_packets(4, snr_db=3.0, seed=9)
        assert a.num_accepted == b.num_accepted
        assert a.bit_errors == b.bit_errors

    def test_per_between_zero_and_one(self):
        jam = BandlimitedNoiseJammer(2.5e6, 20e6)
        stats = make_link().run_packets(6, snr_db=8.0, sjr_db=-8.0, jammer=jam, seed=2)
        assert 0.0 <= stats.packet_error_rate <= 1.0

    def test_filter_usage_aggregated(self):
        jam = BandlimitedNoiseJammer(0.625e6, 20e6)
        stats = make_link().run_packets(3, snr_db=15.0, sjr_db=-12.0, jammer=jam, seed=3)
        assert sum(stats.filter_usage.values()) > 0

    def test_zero_packets_raises(self):
        with pytest.raises(ValueError):
            make_link().run_packets(0, snr_db=10.0)

    def test_throughput_scales_with_success(self):
        stats = make_link().run_packets(3, snr_db=25.0, seed=4)
        assert stats.throughput_bps == pytest.approx(stats.data_rate_bps)
        jam = BandlimitedNoiseJammer(10e6, 20e6)
        jammed = make_link().run_packets(3, snr_db=0.0, sjr_db=-25.0, jammer=jam, seed=5)
        assert jammed.throughput_bps < stats.throughput_bps


class TestDataRate:
    def test_fixed_bandwidth_rate(self):
        link = make_link(fixed_bandwidth=10e6)
        # 10 MHz -> 1.25 Mb/s gross; x payload fraction (16 of 32 symbols)
        gross = 10e6 / 8
        frac = 16 / 32
        assert link.data_rate_bps() == pytest.approx(gross * frac)

    def test_hopping_rate_uses_expected_bandwidth(self):
        link = make_link(pattern="exponential")
        gross = 6.72e6 / 8
        frac = 16 / 32
        assert link.data_rate_bps() == pytest.approx(gross * frac, rel=0.01)

    def test_linear_pattern_rate(self):
        link = make_link(pattern="linear")
        assert link.data_rate_bps() == pytest.approx(2.835e6 / 8 * 16 / 32, rel=0.01)


class TestImpairedLink:
    def test_small_cfo_with_phase_tracking_survives(self):
        imp = Impairments(cfo_hz=200.0, phase_rad=0.2)
        cfg = BHSSConfig.paper_default(payload_bytes=8, seed=13)
        link = LinkSimulator(cfg, impairments=imp)
        stats = link.run_packets(3, snr_db=20.0, seed=6)
        assert stats.num_accepted >= 2

    def test_ideal_impairments_no_phase_tracking(self):
        cfg = BHSSConfig.paper_default(payload_bytes=8, seed=13)
        link = LinkSimulator(cfg, impairments=Impairments())
        stats = link.run_packets(2, snr_db=20.0, seed=7)
        assert stats.num_accepted == 2


class TestBHSSBeatFixedUnderReactiveJamming:
    """The paper's headline scenario as an integration test."""

    def test_hopping_beats_fixed_against_reactive_jammer(self):
        # Reactive jammer with a reaction time of one hop dwell: always
        # matched to a *fixed* link, always stale against a hopping one.
        sjr = -12.0
        snr = 18.0
        n_pkt = 8

        fixed_link = make_link(fixed_bandwidth=10e6)
        hop_link = make_link(pattern="linear")

        # reaction time ~ one widest-bandwidth dwell
        tau = 4 * 16 * 4  # symbols_per_hop * complex chips * sps at 10 MHz
        fixed_stats = fixed_link.run_packets(
            n_pkt,
            snr_db=snr,
            sjr_db=sjr,
            jammer=MatchedReactiveJammer(20e6, tau, initial_bandwidth=10e6),
            seed=8,
        )
        hop_stats = hop_link.run_packets(
            n_pkt,
            snr_db=snr,
            sjr_db=sjr,
            jammer=MatchedReactiveJammer(20e6, tau, initial_bandwidth=10e6),
            seed=8,
        )
        assert hop_stats.packet_error_rate <= fixed_stats.packet_error_rate

    def test_filtering_receiver_beats_plain_under_hopping_jammer(self):
        jam_factory = lambda: HoppingJammer(
            [10e6, 5e6, 2.5e6, 1.25e6, 0.625e6, 0.3125e6, 0.15625e6],
            20e6,
            dwell_samples=4096,
            seed=99,
        )
        with_filter = make_link(pattern="parabolic").run_packets(
            8, snr_db=15.0, sjr_db=-12.0, jammer=jam_factory(), seed=9
        )
        without = make_link(pattern="parabolic", filtering=False).run_packets(
            8, snr_db=15.0, sjr_db=-12.0, jammer=jam_factory(), seed=9
        )
        assert with_filter.bit_error_rate <= without.bit_error_rate


class TestStatsIsolation:
    def test_filter_usage_copied_on_construction(self):
        from repro.core.link import LinkStats

        usage = {"lowpass": 2, "none": 1}
        stats = LinkStats(
            num_packets=3, num_accepted=2, total_bits=192, bit_errors=4,
            data_rate_bps=1e6, filter_usage=usage,
        )
        usage["excision"] = 99  # caller mutates its dict afterwards
        usage["lowpass"] = 0
        assert stats.filter_usage == {"lowpass": 2, "none": 1}

    def test_to_dict_returns_a_copy(self):
        from repro.core.link import LinkStats

        stats = LinkStats(
            num_packets=1, num_accepted=1, total_bits=64, bit_errors=0,
            data_rate_bps=1e6, filter_usage={"none": 1},
        )
        stats.to_dict()["filter_usage"]["none"] = 7
        assert stats.filter_usage == {"none": 1}


class TestStatsSerialization:
    def test_to_dict_json_roundtrip(self):
        import json

        stats = make_link().run_packets(2, snr_db=20.0, seed=10)
        d = stats.to_dict()
        text = json.dumps(d)
        back = json.loads(text)
        assert back["num_packets"] == 2
        assert back["per_ci_low"] <= back["packet_error_rate"] <= back["per_ci_high"]
        assert set(back["filter_usage"]) <= {"none", "lowpass", "excision"}
