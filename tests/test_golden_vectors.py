"""Golden-vector regression tests for the DSP pipeline.

``tests/golden/golden_vectors.npz`` freezes the serial reference outputs
for a pinned scenario (see ``tests/golden/regenerate.py``).  Two layers of
checking:

* the serial pipeline still reproduces the frozen vectors (``allclose``
  with a tight tolerance — catches accidental numerics drift);
* the batched pipeline reproduces the serial pipeline **exactly**
  (``array_equal`` — the bit-for-bit contract, on the same fixed data the
  fixtures pin down).
"""

import os

import numpy as np
import pytest

from tests.golden.regenerate import OUTPUT, START_CHIP, SYMBOLS, build_pieces, generate

pytestmark = pytest.mark.skipif(
    not os.path.exists(OUTPUT), reason="golden fixture missing; run tests/golden/regenerate.py"
)


@pytest.fixture(scope="module")
def golden():
    with np.load(OUTPUT) as data:
        return {k: data[k] for k in data.files}


@pytest.fixture(scope="module")
def regenerated():
    return generate()


class TestSerialMatchesGolden:
    def test_same_vector_set(self, golden, regenerated):
        assert sorted(golden) == sorted(regenerated)

    def test_chips_exact(self, golden, regenerated):
        np.testing.assert_array_equal(golden["chips"], regenerated["chips"])

    def test_all_vectors_close(self, golden, regenerated):
        for name, frozen in golden.items():
            np.testing.assert_allclose(
                regenerated[name], frozen, rtol=1e-10, atol=1e-12, err_msg=name
            )

    def test_despread_decisions_exact(self, golden, regenerated):
        # Decisions are integers; "close" is not a meaningful notion.
        np.testing.assert_array_equal(
            golden["despread_symbols"], regenerated["despread_symbols"]
        )


class TestBatchedMatchesSerial:
    """Batched primitives on the golden inputs, compared exactly."""

    def test_tx_waveform_per_alpha(self, golden):
        config, modem, modulator, _ = build_pieces()
        chips = modem.spread(SYMBOLS, start_chip=START_CHIP)
        for bandwidth in config.bandwidth_set.bandwidths:
            sps = config.bandwidth_set.sps(bandwidth)
            stacked = modulator.modulate_batch(np.stack([chips, chips[::-1]]), sps)
            np.testing.assert_array_equal(stacked[0], golden[f"tx_wave_sps{sps}"])
            np.testing.assert_array_equal(
                stacked[1], modulator.modulate(chips[::-1], sps)
            )

    def test_excision_taps_for_tone(self, golden):
        _, _, _, control = build_pieces()
        block = golden["jammed_block"]
        stacked = control.excision_for_batch(np.stack([block, block]))
        np.testing.assert_array_equal(stacked[0], golden["excision_taps"])
        np.testing.assert_array_equal(stacked[1], golden["excision_taps"])

    def test_despread_soft_symbols(self, golden):
        config, modem, modulator, _ = build_pieces()
        sps = config.bandwidth_set.sps(config.bandwidth_set.bandwidths[2])
        noisy = golden["rx_wave"]
        num_chips = golden["chips"].size
        soft = modulator.demodulate_batch(
            np.stack([noisy, noisy]), sps, num_chips=num_chips
        )
        np.testing.assert_array_equal(soft[0], golden["soft_chips"])
        result = modem.despread_batch(soft, start_chip=START_CHIP)
        np.testing.assert_array_equal(result.symbols[0], golden["despread_symbols"])
        np.testing.assert_array_equal(result.scores[0], golden["despread_scores"])
        np.testing.assert_array_equal(result.quality[0], golden["despread_quality"])
