"""Unit tests for the explicit TX/RX path split of the link chain."""

import numpy as np

from repro.channel import Impairments, Medium, MultipathChannel
from repro.core import BHSSConfig, LinkSimulator, RxPath, TxPath, draw_jammer_wave
from repro.jamming import BandlimitedNoiseJammer, MatchedReactiveJammer, NoJammer
from repro.utils.rng import child_rng


def make_config(**kw):
    return BHSSConfig.paper_default(payload_bytes=8, seed=11, **kw)


class TestTxPath:
    def test_synthesis_is_deterministic(self):
        # TX synthesis consumes no randomness — that is what lets a
        # network victim re-synthesize a peer's waveform as interference
        # without perturbing its own RNG stream
        cfg = make_config()
        a = TxPath(cfg).synthesize(packet_index=3)
        b = TxPath(cfg).synthesize(packet_index=3)
        np.testing.assert_array_equal(a.waveform, b.waveform)
        assert a.payload == b.payload

    def test_emit_is_synthesize_plus_propagate(self):
        tx = TxPath(make_config())
        packet, wave = tx.emit(packet_index=1)
        again = tx.synthesize(packet_index=1)
        np.testing.assert_array_equal(wave, again.waveform)
        assert packet.payload == again.payload

    def test_propagate_identity_without_channel(self):
        tx = TxPath(make_config())
        x = np.ones(64, dtype=complex)
        assert tx.propagate(x) is x

    def test_propagate_applies_channel(self):
        cfg = make_config()
        channel = MultipathChannel(num_taps=4, decay_samples=2.0, seed=5)
        tx = TxPath(cfg, channel=channel)
        packet = tx.synthesize()
        np.testing.assert_array_equal(
            tx.propagate(packet.waveform), channel.apply(packet.waveform)
        )

    def test_data_rate_matches_link_simulator(self):
        for kw in [{}, {"pattern": "parabolic"}, {"fixed_bandwidth": 2.5e6}]:
            cfg = make_config(**kw)
            assert TxPath(cfg).data_rate_bps() == LinkSimulator(cfg).data_rate_bps()


class TestRxPath:
    def test_clean_roundtrip(self):
        cfg = make_config()
        packet, wave = TxPath(cfg).emit(packet_index=0)
        out = RxPath(cfg).receive_packet(packet, wave, packet_index=0)
        assert out.accepted
        assert out.bit_errors == 0
        assert out.total_bits == 64

    def test_needs_phase_tracking(self):
        cfg = make_config()
        assert not RxPath(cfg).needs_phase_tracking
        assert not RxPath(cfg, impairments=Impairments()).needs_phase_tracking
        assert RxPath(cfg, impairments=Impairments(cfo_hz=200.0)).needs_phase_tracking

    def test_front_end_identity_when_ideal(self):
        cfg = make_config()
        x = np.ones(32, dtype=complex)
        assert RxPath(cfg).front_end(x) is x

    def test_score_counts_wrong_payload_bits(self):
        import dataclasses

        cfg = make_config()
        rx = RxPath(cfg)
        packet, _ = TxPath(cfg).emit(packet_index=0)
        clean = rx.demodulate(packet.waveform, len(packet.payload), 0)
        # forge a one-bit-flipped payload: one bit error, not accepted
        flipped = bytes([packet.payload[0] ^ 0x01]) + packet.payload[1:]
        forged = dataclasses.replace(
            clean, frame=dataclasses.replace(clean.frame, payload=flipped)
        )
        out = rx.score(packet, forged)
        assert not out.accepted
        assert out.bit_errors == 1


class TestSymbolRegionPopcount:
    def reference(self, cfg, sent, got):
        # the historical scalar loop the vectorized popcount replaced
        header = cfg.frame_format.header_symbols
        end = min(sent.size, got.size) - 4
        if end <= header:
            return 0
        errors = 0
        for s, g in zip(sent[header:end], got[header:end]):
            errors += bin((int(s) ^ int(g)) & 0xF).count("1")
        return errors

    def test_bit_identical_to_scalar_loop(self):
        cfg = make_config()
        rx = RxPath(cfg)
        rng = np.random.default_rng(7)
        for n_sent, n_got in [(40, 40), (40, 25), (25, 40), (8, 8), (3, 3), (0, 0)]:
            sent = rng.integers(0, 16, size=n_sent).astype(np.uint8)
            got = rng.integers(0, 16, size=n_got).astype(np.uint8)
            assert rx.symbol_region_bit_errors(sent, got) == self.reference(cfg, sent, got)

    def test_link_simulator_delegates(self):
        cfg = make_config()
        link = LinkSimulator(cfg)
        rng = np.random.default_rng(8)
        sent = rng.integers(0, 16, size=64).astype(np.uint8)
        got = rng.integers(0, 16, size=64).astype(np.uint8)
        assert link._symbol_region_bit_errors(sent, got) == self.reference(cfg, sent, got)

    def test_identical_symbols_zero_errors(self):
        cfg = make_config()
        sym = np.arange(32, dtype=np.uint8) % 16
        assert RxPath(cfg).symbol_region_bit_errors(sym, sym) == 0

    def test_all_bits_flipped(self):
        cfg = make_config()
        header = cfg.frame_format.header_symbols
        sym = np.zeros(header + 20, dtype=np.uint8)
        flipped = sym ^ 0xF
        # 16 scored symbols (tail 4 are CRC), 4 bits each
        assert RxPath(cfg).symbol_region_bit_errors(sym, flipped) == 16 * 4


class TestDrawJammerWave:
    def test_none_and_nojammer_draw_nothing(self):
        cfg = make_config()
        packet = TxPath(cfg).synthesize()
        gen = child_rng(0, "packet", "0")
        before = gen.bit_generator.state
        assert draw_jammer_wave(None, packet, -10.0, gen) is None
        assert draw_jammer_wave(NoJammer(), packet, -10.0, gen) is None
        assert gen.bit_generator.state == before  # no RNG consumed

    def test_finite_sjr_returns_wave(self):
        cfg = make_config()
        packet = TxPath(cfg).synthesize()
        jam = BandlimitedNoiseJammer(5e6, cfg.sample_rate)
        wave = draw_jammer_wave(jam, packet, -10.0, child_rng(1, "packet", "0"))
        assert wave is not None and wave.size == packet.num_samples

    def test_infinite_sjr_draws_but_does_not_inject(self):
        cfg = make_config()
        packet = TxPath(cfg).synthesize()
        jam = BandlimitedNoiseJammer(5e6, cfg.sample_rate)
        gen_inf = child_rng(2, "packet", "0")
        gen_fin = child_rng(2, "packet", "0")
        assert draw_jammer_wave(jam, packet, float("inf"), gen_inf) is None
        assert draw_jammer_wave(jam, packet, -10.0, gen_fin) is not None
        # the draw still consumed the stream identically
        assert gen_inf.bit_generator.state == gen_fin.bit_generator.state

    def test_reactive_jammer_observes_profile(self):
        cfg = make_config()
        packet = TxPath(cfg).synthesize()
        jam = MatchedReactiveJammer(cfg.sample_rate, reaction_samples=0, initial_bandwidth=10e6)
        wave = draw_jammer_wave(jam, packet, -10.0, child_rng(3, "packet", "0"))
        assert wave is not None and wave.size == packet.num_samples


class TestPathSplitEquivalence:
    def test_run_packet_equals_manual_path_composition(self):
        # the refactor wall: composing the stages by hand must reproduce
        # LinkSimulator.run_packet bit for bit
        cfg = make_config()
        link = LinkSimulator(cfg)
        jam = BandlimitedNoiseJammer(5e6, cfg.sample_rate)
        for k, seed in enumerate([0, 1, 2]):
            expected = link.run_packet(snr_db=8.0, sjr_db=-6.0, jammer=jam, rng=seed)
            tx, rx, medium = TxPath(cfg), RxPath(cfg), Medium(cfg.sample_rate)
            gen = np.random.default_rng(seed)
            packet, wave = tx.emit()
            jam_wave = draw_jammer_wave(jam, packet, -6.0, gen)
            block = medium.combine(wave, snr_db=8.0, jammer=jam_wave, sjr_db=-6.0, rng=gen)
            manual = rx.receive_packet(packet, block.samples, 0)
            assert manual.accepted == expected.accepted
            assert manual.bit_errors == expected.bit_errors
            assert manual.total_bits == expected.total_bits
