"""Unit tests for the receiver control logic (jammer classification)."""

import numpy as np
import pytest

from repro.core import BHSSConfig, BHSSTransmitter
from repro.core.control import ControlLogic, FilterKind
from repro.channel import complex_awgn
from repro.jamming import BandlimitedNoiseJammer, ToneJammer
from repro.utils import signal_power

FS = 20e6


def bhss_segment(bandwidth=2.5e6, num_symbols=16, seed=0):
    """A real transmitted hop segment at the requested bandwidth."""
    cfg = BHSSConfig.paper_default(seed=seed, payload_bytes=16).with_fixed_bandwidth(bandwidth)
    packet = BHSSTransmitter(cfg).transmit()
    return packet.waveform


def with_jammer(signal, jammer_wave, sjr_db, snr_db=30.0, seed=1):
    rng = np.random.default_rng(seed)
    p = signal_power(signal)
    jam = jammer_wave[: signal.size]
    jam = jam / np.sqrt(signal_power(jam)) * np.sqrt(p * 10 ** (-sjr_db / 10))
    noise = complex_awgn(signal.size, p * 10 ** (-snr_db / 10), rng)
    return signal + jam + noise


class TestDecisions:
    def make_logic(self):
        return ControlLogic(sample_rate=FS)

    def test_no_jammer_narrowband_signal_no_excision(self):
        # Signal-only block: must never select the excision filter (it
        # would whiten the *signal*).
        sig = bhss_segment(bandwidth=0.625e6)
        rng = np.random.default_rng(2)
        noisy = sig + complex_awgn(sig.size, signal_power(sig) / 100, rng)
        d = self.make_logic().decide(noisy, 0.625e6)
        assert d.kind != FilterKind.EXCISION

    def test_narrowband_jammer_triggers_excision(self):
        sig = bhss_segment(bandwidth=10e6)
        jam = ToneJammer(2e6, FS).waveform(sig.size)
        received = with_jammer(sig, jam, sjr_db=-15.0)
        d = self.make_logic().decide(received, 10e6)
        assert d.kind == FilterKind.EXCISION
        assert d.peak_over_floor_db > 7.0

    def test_narrowband_noise_jammer_triggers_excision(self):
        sig = bhss_segment(bandwidth=10e6)
        jam = BandlimitedNoiseJammer(0.625e6, FS).waveform(sig.size, rng=3)
        received = with_jammer(sig, jam, sjr_db=-15.0)
        d = self.make_logic().decide(received, 10e6)
        assert d.kind == FilterKind.EXCISION

    def test_wideband_jammer_triggers_lowpass(self):
        sig = bhss_segment(bandwidth=0.625e6)
        jam = BandlimitedNoiseJammer(10e6, FS).waveform(sig.size, rng=4)
        received = with_jammer(sig, jam, sjr_db=-10.0)
        d = self.make_logic().decide(received, 0.625e6)
        assert d.kind == FilterKind.LOWPASS
        assert d.occupied_bandwidth > 1.6 * 0.625e6

    def test_matched_jammer_no_filter(self):
        sig = bhss_segment(bandwidth=2.5e6)
        jam = BandlimitedNoiseJammer(2.5e6, FS).waveform(sig.size, rng=5)
        received = with_jammer(sig, jam, sjr_db=-10.0, snr_db=30.0)
        d = self.make_logic().decide(received, 2.5e6)
        assert d.kind in (FilterKind.NONE, FilterKind.LOWPASS)
        # whatever it picks, it must not be the whitener
        assert d.kind != FilterKind.EXCISION

    def test_weak_jammer_no_excision(self):
        # Jammer at the signal's own level: processing gain suffices and
        # eq. (10) says filtering is counterproductive.
        sig = bhss_segment(bandwidth=10e6)
        jam = BandlimitedNoiseJammer(1.25e6, FS).waveform(sig.size, rng=6)
        received = with_jammer(sig, jam, sjr_db=3.0)
        d = self.make_logic().decide(received, 10e6)
        assert d.kind != FilterKind.EXCISION

    def test_short_block_returns_none(self):
        d = self.make_logic().decide(np.ones(8, dtype=complex), 1e6)
        assert d.kind == FilterKind.NONE and d.taps is None

    def test_decision_records_bandwidth(self):
        sig = bhss_segment()
        d = self.make_logic().decide(sig, 2.5e6)
        assert d.signal_bandwidth == 2.5e6


class TestFilterBuilders:
    def test_lowpass_cached(self):
        logic = ControlLogic(sample_rate=FS)
        a = logic.lowpass_for(2.5e6, 100_000)
        b = logic.lowpass_for(2.5e6, 100_000)
        assert a is b

    def test_lowpass_tap_count_capped_by_block(self):
        logic = ControlLogic(sample_rate=FS)
        taps = logic.lowpass_for(0.15625e6, 1000)
        assert taps.size <= 501

    def test_lowpass_odd_taps(self):
        logic = ControlLogic(sample_rate=FS)
        assert logic.lowpass_for(1.25e6, 50_000).size % 2 == 1

    def test_excision_taps_bounded_by_block(self):
        logic = ControlLogic(sample_rate=FS, excision_taps=257)
        block = complex_awgn(200, 1.0, np.random.default_rng(7))
        taps = logic.excision_for(block)
        assert taps.size <= 257

    def test_excision_default_length(self):
        logic = ControlLogic(sample_rate=FS, excision_taps=257)
        block = complex_awgn(65536, 1.0, np.random.default_rng(8))
        assert logic.excision_for(block).size == 257

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            ControlLogic(sample_rate=FS, excision_taps=10)
        with pytest.raises(ValueError):
            ControlLogic(sample_rate=FS, wide_ratio=0.0)
        with pytest.raises(ValueError):
            ControlLogic(sample_rate=FS, peak_margin_db=0.0)
        with pytest.raises(ValueError):
            ControlLogic(sample_rate=0.0)
