"""The multi-backend conformance gate.

Every backend registered in ``repro.backend.BACKEND_FACTORIES`` must
reproduce the serial DSP primitives: the NumPy reference backend
*bit-for-bit* (it is the oracle the batch/serial equivalence wall rests
on), accelerated backends to tight floating-point tolerance against that
oracle.  The gate runs the same assertions for every backend name, so
registering a new backend automatically subjects it to the full surface:
FIR application, fast convolution, Welch PSD, chip modulation and DSSS
spread/despread — shared and per-row taps, real and complex dtypes.

Numba-specific assertions degrade gracefully when numba is not
installed: the ``numba`` backend then runs its NumPy fallback (which
must still match the oracle), and jit-only tests are skipped.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_FACTORIES,
    DEFAULT_BACKEND,
    active_backend,
    active_profiler,
    available_backends,
    backend_info,
    make_backend,
    profile_stages,
    resolve_backend,
    use_backend,
)
from repro.backend.base import DSPBackend
from repro.backend.numba_accel import JIT_FIR_MAX_TAPS, NumbaBackend, numba_available
from repro.backend.numpy_ref import NumpyBackend
from repro.dsp.fir import apply_fir, apply_fir_batch, convolve_nfft, fft_convolve, fft_convolve_batch
from repro.dsp.spectral import welch_psd, welch_psd_batch
from repro.phy.qpsk import ChipModulator
from repro.spread.dsss import SixteenAryDSSS

BACKENDS = sorted(available_backends())

#: accelerated-backend tolerance against the NumPy oracle (bit-exact
#: backends are compared with array_equal instead)
RTOL, ATOL = 1e-9, 1e-12


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Each registered backend, activated for the duration of the test."""
    b = make_backend(request.param)
    with use_backend(b):
        yield b


def assert_conforms(backend, got, want):
    """Bit-exact for oracle backends, tolerance-checked otherwise."""
    got = np.asarray(got)
    want = np.asarray(want)
    assert got.shape == want.shape
    assert got.dtype == want.dtype
    if backend.bit_exact:
        assert np.array_equal(got, want)
    else:
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)


def batch_signals(rows=3, n=257, complex_=True, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, n))
    if complex_:
        x = x + 1j * rng.standard_normal((rows, n))
    return x


class TestRegistry:
    def test_numpy_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend() == DEFAULT_BACKEND == "numpy"

    def test_env_knob_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        assert resolve_backend() == "numba"
        monkeypatch.setenv("REPRO_BACKEND", "  NumPy  ")  # trimmed + case-folded
        assert resolve_backend() == "numpy"

    def test_unknown_env_value_names_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend()

    def test_make_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("fortran")

    def test_every_registered_backend_constructs(self):
        for name in available_backends():
            b = make_backend(name)
            assert isinstance(b, DSPBackend)
            assert b.name == name
            assert b.available()

    def test_use_backend_scopes_and_restores(self):
        before = active_backend()
        with use_backend("numba") as b:
            assert isinstance(b, NumbaBackend)
            assert active_backend() is b
        assert active_backend() is before

    def test_use_backend_none_is_a_noop(self):
        before = active_backend()
        with use_backend(None) as b:
            assert b is before
        assert active_backend() is before

    def test_backend_info_lists_all_kernels(self):
        for name in available_backends():
            info = backend_info(name)
            assert info["name"] == name
            assert isinstance(info["bit_exact"], bool)
            assert sorted(info["kernels"]) == [
                "apply_fir", "despread", "fft_convolve",
                "modulate", "spread", "welch_psd",
            ]

    def test_numpy_backend_is_the_bit_exact_oracle(self):
        assert NumpyBackend.bit_exact is True
        assert NumbaBackend.bit_exact is False


class TestApplyFirConformance:
    @pytest.mark.parametrize("mode", ["compensated", "same", "full"])
    @pytest.mark.parametrize("complex_", [False, True])
    def test_shared_taps(self, backend, mode, complex_):
        x = batch_signals(complex_=complex_)
        taps = np.hanning(9) / np.hanning(9).sum()
        got = apply_fir_batch(x, taps, mode=mode)
        want = np.stack([apply_fir(row, taps, mode=mode) for row in x])
        assert_conforms(backend, got, want)

    @pytest.mark.parametrize("complex_", [False, True])
    def test_per_row_taps(self, backend, complex_):
        x = batch_signals(rows=4, complex_=complex_)
        rng = np.random.default_rng(7)
        taps = rng.standard_normal((4, 11))
        got = apply_fir_batch(x, taps)
        want = np.stack([apply_fir(row, h) for row, h in zip(x, taps)])
        assert_conforms(backend, got, want)

    def test_long_filters_stay_on_the_oracle(self, backend):
        # Filters past the jit cap must route to the reference kernel, so
        # even accelerated backends are bit-exact here.
        x = batch_signals(rows=2, n=4096)
        taps = np.hanning(JIT_FIR_MAX_TAPS + 1)
        got = apply_fir_batch(x, taps)
        want = np.stack([apply_fir(row, taps) for row in x])
        assert np.array_equal(got, want)


class TestFftConvolveConformance:
    @pytest.mark.parametrize("complex_", [False, True])
    def test_shared_taps(self, backend, complex_):
        x = batch_signals(complex_=complex_)
        taps = np.hanning(17)
        got = fft_convolve_batch(x, taps)
        want = np.stack([fft_convolve(row, taps) for row in x])
        assert_conforms(backend, got, want)

    def test_per_row_taps(self, backend):
        x = batch_signals(rows=4)
        rng = np.random.default_rng(9)
        taps = rng.standard_normal((4, 13))
        got = fft_convolve_batch(x, taps)
        want = np.stack([fft_convolve(row, h) for row, h in zip(x, taps)])
        assert_conforms(backend, got, want)

    def test_precomputed_taps_fft_is_bit_identical(self, backend):
        # A caller-supplied taps transform always goes through the oracle
        # path (the spectrum cache contract), on every backend.
        x = batch_signals(rows=3, n=300)
        taps = np.hanning(21).astype(complex)
        taps_fft = np.fft.fft(taps, convolve_nfft(300, 21))
        assert np.array_equal(
            fft_convolve_batch(x, taps, taps_fft=taps_fft),
            fft_convolve_batch(x, taps),
        )


class TestWelchConformance:
    @pytest.mark.parametrize("complex_", [False, True])
    def test_rows_match_serial(self, backend, complex_):
        x = batch_signals(rows=3, n=1024, complex_=complex_)
        got_f, got_psd = welch_psd_batch(x, sample_rate=2e6, nperseg=128, nfft=256)
        for i, row in enumerate(x):
            want_f, want_psd = welch_psd(row, sample_rate=2e6, nperseg=128, nfft=256)
            assert np.array_equal(got_f, want_f)
            assert_conforms(backend, got_psd[i], want_psd)


class TestModulateConformance:
    # halfsine exercises the non-overlapping fast path, rrc (span 8) the
    # pulse-shaping convolution through the cached-spectrum fft path.
    @pytest.mark.parametrize("pulse", ["halfsine", "rrc"])
    @pytest.mark.parametrize("sps", [4, 8])
    def test_rows_match_serial(self, backend, sps, pulse):
        rng = np.random.default_rng(3)
        chips = rng.choice([-1.0, 1.0], size=(3, 64))
        mod = ChipModulator(pulse)
        got = mod.modulate_batch(chips, sps)
        want = np.stack([mod.modulate(row, sps) for row in chips])
        assert_conforms(backend, got, want)


class TestSpreadConformance:
    @pytest.mark.parametrize("seed", [None, 42])
    def test_spread_rows_match_serial(self, backend, seed):
        modem = SixteenAryDSSS(seed=seed)
        rng = np.random.default_rng(5)
        syms = rng.integers(0, 16, size=(3, 6))
        got = modem.spread_batch(syms, start_chip=64)
        want = np.stack([modem.spread(row, start_chip=64) for row in syms])
        assert_conforms(backend, got, want)

    def test_spread_per_row_start_chips(self, backend):
        modem = SixteenAryDSSS(seed=11)
        rng = np.random.default_rng(6)
        syms = rng.integers(0, 16, size=(3, 4))
        starts = np.array([0, 32, 96])
        got = modem.spread_batch(syms, start_chip=starts)
        want = np.stack([modem.spread(r, start_chip=int(s)) for r, s in zip(syms, starts)])
        assert_conforms(backend, got, want)

    @pytest.mark.parametrize("seed", [None, 42])
    def test_despread_rows_match_serial(self, backend, seed):
        modem = SixteenAryDSSS(seed=seed)
        rng = np.random.default_rng(8)
        soft = rng.standard_normal((3, 4 * 32))
        got = modem.despread_batch(soft, start_chip=32)
        for i, row in enumerate(soft):
            want = modem.despread(row, start_chip=32)
            assert_conforms(backend, got.symbols[i], want.symbols)
            assert_conforms(backend, got.scores[i], want.scores)
            assert_conforms(backend, got.quality[i], want.quality)


class TestNumbaBackend:
    def test_fallback_capabilities_without_numba(self):
        if numba_available():
            pytest.skip("numba is installed; fallback path not reachable")
        b = NumbaBackend()
        assert not b.jit_active
        caps = b.capabilities()
        assert caps["jit"] is False
        assert caps["kernels"]["apply_fir"] == "numpy-fallback"

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_jit_kernel_is_active_and_tolerance_clean(self):
        b = NumbaBackend()
        assert b.jit_active
        assert b.capabilities()["jit"] is True
        x = batch_signals(rows=3, n=500)
        taps = np.hanning(31)
        with use_backend(b):
            got = apply_fir_batch(x, taps)
        want = np.stack([apply_fir(row, taps) for row in x])
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    def test_jit_cap_is_sane(self):
        # The cap keeps the paper's long excision filters (thousands of
        # taps) on the FFT overlap-save path where they belong.
        assert 8 <= JIT_FIR_MAX_TAPS <= 256


class TestStageProfiler:
    def test_dispatch_records_stages(self):
        x = batch_signals(rows=2, n=256)
        taps = np.hanning(9)
        with profile_stages() as prof:
            assert active_profiler() is prof
            apply_fir_batch(x, taps)
            apply_fir_batch(x, taps)
            fft_convolve_batch(x, taps)
        assert active_profiler() is None
        assert prof.records["apply_fir"].calls == 2
        assert prof.records["fft_convolve"].calls == 1
        assert all(r.seconds >= 0.0 for r in prof.records.values())

    def test_nested_dispatch_is_exclusive(self):
        # An overlapping pulse (span > 1) makes modulate dispatch
        # fft_convolve internally; exclusive per-stage times must sum to
        # the outer wall time, not double-count the nested kernel.
        rng = np.random.default_rng(2)
        chips = rng.choice([-1.0, 1.0], size=(4, 128))
        mod = ChipModulator("rrc")
        with profile_stages() as prof:
            mod.modulate_batch(chips, 8)
        stages = prof.to_dict()["stages"]
        assert "modulate" in stages
        assert "fft_convolve" in stages
        assert prof.total_seconds == pytest.approx(
            sum(r.seconds for r in prof.records.values())
        )

    def test_to_dict_layout(self):
        x = batch_signals(rows=1, n=256)
        with profile_stages() as prof:
            welch_psd_batch(x, nperseg=64)
        payload = prof.to_dict()
        assert set(payload) == {"stages", "total_seconds"}
        assert payload["stages"]["welch_psd"]["calls"] == 1
        assert "welch_psd" in prof.summary()

    def test_no_profiler_means_no_records(self):
        # Outside a profile_stages scope dispatch must not record anything.
        x = batch_signals(rows=1, n=128)
        welch_psd_batch(x, nperseg=64)
        assert active_profiler() is None


class TestBackendKernelManifest:
    """``BACKEND_KERNELS`` covers the full dispatch surface and resolves."""

    def test_every_entry_resolves(self):
        from repro.lint.manifest import BACKEND_KERNELS, resolve

        for kernel_ref, wrapper_ref in BACKEND_KERNELS.items():
            assert callable(resolve(kernel_ref)), kernel_ref
            assert callable(resolve(wrapper_ref)), wrapper_ref

    def test_every_wrapper_is_inside_the_equivalence_wall(self):
        from repro.lint.manifest import BACKEND_KERNELS, BATCH_EQUIVALENCE

        for wrapper_ref in BACKEND_KERNELS.values():
            assert wrapper_ref in BATCH_EQUIVALENCE, wrapper_ref

    def test_manifest_matches_the_abstract_surface(self):
        from repro.lint.manifest import BACKEND_KERNELS

        declared = {ref.rpartition(".")[2] for ref in BACKEND_KERNELS}
        assert declared == set(DSPBackend.__abstractmethods__)

    def test_factories_cover_the_manifest_backends(self):
        # Registering a backend without wiring its factory (or vice versa)
        # must fail here, not at first --backend use.
        assert set(BACKEND_FACTORIES) == {"numpy", "numba"}
