"""Unit tests for FEC codecs, the interleaver, and the frame coder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BHSSConfig, LinkSimulator
from repro.core.coding import FrameCoder
from repro.phy.fec import (
    HammingCode,
    IdentityCode,
    RepetitionCode,
    block_deinterleave,
    block_interleave,
    get_codec,
)

bits = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=200).map(
    lambda l: np.array(l, dtype=np.uint8)
)


class TestIdentityCode:
    def test_roundtrip(self):
        c = IdentityCode()
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        np.testing.assert_array_equal(c.decode(c.encode(data)), data)

    def test_rate_one(self):
        assert IdentityCode().rate == 1.0

    def test_encoded_length(self):
        assert IdentityCode().encoded_length(13) == 13


class TestRepetitionCode:
    def test_roundtrip_clean(self):
        c = RepetitionCode(3)
        data = np.array([1, 0, 0, 1, 1], dtype=np.uint8)
        np.testing.assert_array_equal(c.decode(c.encode(data)), data)

    def test_corrects_minority_errors(self):
        c = RepetitionCode(5)
        data = np.array([1, 0], dtype=np.uint8)
        coded = c.encode(data)
        coded[0] ^= 1  # two errors in the first codeword
        coded[2] ^= 1
        np.testing.assert_array_equal(c.decode(coded), data)

    def test_fails_on_majority_errors(self):
        c = RepetitionCode(3)
        coded = c.encode(np.array([1], dtype=np.uint8))
        coded[:2] ^= 1
        assert c.decode(coded)[0] == 0

    def test_rate(self):
        assert RepetitionCode(3).rate == pytest.approx(1 / 3)

    def test_name(self):
        assert RepetitionCode(5).name == "rep5"

    def test_even_repeats_raises(self):
        with pytest.raises(ValueError):
            RepetitionCode(4)

    def test_bad_length_raises(self):
        with pytest.raises(ValueError):
            RepetitionCode(3).decode(np.ones(4, dtype=np.uint8))

    @given(bits)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data):
        c = RepetitionCode(3)
        np.testing.assert_array_equal(c.decode(c.encode(data)), data)


class TestHammingCode:
    @pytest.mark.parametrize("m,n,k", [(3, 7, 4), (4, 15, 11)])
    def test_parameters(self, m, n, k):
        c = HammingCode(m)
        assert (c.n, c.k) == (n, k)

    def test_roundtrip_clean(self):
        c = HammingCode(3)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, size=100).astype(np.uint8)
        decoded = c.decode(c.encode(data))
        np.testing.assert_array_equal(decoded[: data.size], data)

    def test_corrects_any_single_error_per_codeword(self):
        c = HammingCode(3)
        data = np.array([1, 0, 1, 1], dtype=np.uint8)
        clean = c.encode(data)
        for pos in range(c.n):
            corrupted = clean.copy()
            corrupted[pos] ^= 1
            np.testing.assert_array_equal(c.decode(corrupted)[:4], data, err_msg=f"pos {pos}")

    def test_corrects_one_error_per_block_independently(self):
        c = HammingCode(4)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, size=44).astype(np.uint8)  # 4 blocks
        coded = c.encode(data)
        for block in range(4):
            coded[block * 15 + (block * 3) % 15] ^= 1
        np.testing.assert_array_equal(c.decode(coded)[: data.size], data)

    def test_double_error_not_corrected(self):
        c = HammingCode(3)
        data = np.zeros(4, dtype=np.uint8)
        coded = c.encode(data)
        coded[0] ^= 1
        coded[1] ^= 1
        assert not np.array_equal(c.decode(coded)[:4], data)

    def test_codewords_satisfy_parity_check(self):
        c = HammingCode(3)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2, size=4 * 10).astype(np.uint8)
        words = c.encode(data).reshape(-1, 7)
        syndromes = (words @ c._h.T) % 2
        assert not syndromes.any()

    def test_minimum_distance_three(self):
        # All 16 codewords of (7,4) pairwise differ in >= 3 positions.
        c = HammingCode(3)
        words = [c.encode(np.array([(v >> b) & 1 for b in range(4)], dtype=np.uint8)) for v in range(16)]
        for i in range(16):
            for j in range(i + 1, 16):
                assert np.sum(words[i] != words[j]) >= 3

    def test_pads_partial_block(self):
        c = HammingCode(3)
        data = np.array([1, 1], dtype=np.uint8)
        coded = c.encode(data)
        assert coded.size == 7
        np.testing.assert_array_equal(c.decode(coded)[:2], data)

    def test_bad_m_raises(self):
        with pytest.raises(ValueError):
            HammingCode(1)

    def test_bad_coded_length_raises(self):
        with pytest.raises(ValueError):
            HammingCode(3).decode(np.zeros(8, dtype=np.uint8))

    @given(bits)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data):
        c = HammingCode(3)
        decoded = c.decode(c.encode(data))
        np.testing.assert_array_equal(decoded[: data.size], data)


class TestGetCodec:
    @pytest.mark.parametrize(
        "name,cls", [("none", IdentityCode), ("rep3", RepetitionCode), ("hamming74", HammingCode)]
    )
    def test_lookup(self, name, cls):
        assert isinstance(get_codec(name), cls)

    def test_instance_passthrough(self):
        c = HammingCode(3)
        assert get_codec(c) is c

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_codec("turbo")


class TestInterleaver:
    def test_roundtrip(self):
        data = np.arange(23)
        out = block_deinterleave(block_interleave(data, 5), 5)
        np.testing.assert_array_equal(out, data)

    def test_depth_one_is_identity(self):
        data = np.arange(10)
        np.testing.assert_array_equal(block_interleave(data, 1), data)

    def test_spreads_bursts(self):
        # A contiguous burst of b corrupted positions de-interleaves into
        # positions spaced >= length/depth apart.
        n, depth = 60, 6
        marker = np.zeros(n, dtype=int)
        interleaved = block_interleave(np.arange(n), depth)
        # corrupt a burst in the interleaved domain
        burst = slice(10, 16)
        hit_original_positions = np.sort(interleaved[burst])
        gaps = np.diff(hit_original_positions)
        assert gaps.min() >= n // depth - depth

    def test_exact_rectangle(self):
        data = np.arange(6)
        np.testing.assert_array_equal(block_interleave(data, 3), [0, 3, 1, 4, 2, 5])

    def test_bad_depth_raises(self):
        with pytest.raises(ValueError):
            block_interleave(np.arange(4), 0)

    def test_2d_raises(self):
        with pytest.raises(ValueError):
            block_interleave(np.zeros((2, 2)), 2)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=17))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, n, depth):
        data = np.arange(n)
        np.testing.assert_array_equal(block_deinterleave(block_interleave(data, depth), depth), data)

    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=17))
    @settings(max_examples=30, deadline=None)
    def test_is_permutation_property(self, n, depth):
        out = block_interleave(np.arange(n), depth)
        assert sorted(out.tolist()) == list(range(n))


class TestFrameCoder:
    def make(self, fec="hamming74", preamble=8, sph=4):
        return FrameCoder(codec=get_codec(fec), preamble_symbols=preamble, symbols_per_hop=sph)

    def test_passthrough_for_identity(self):
        coder = self.make(fec="none")
        assert coder.is_passthrough
        syms = np.arange(32, dtype=np.uint8) % 16
        np.testing.assert_array_equal(coder.encode(syms), syms)
        np.testing.assert_array_equal(coder.decode(syms, 32), syms)

    def test_preamble_untouched(self):
        coder = self.make()
        syms = np.concatenate([np.zeros(8, dtype=np.uint8), np.arange(24, dtype=np.uint8) % 16])
        coded = coder.encode(syms)
        np.testing.assert_array_equal(coded[:8], 0)

    def test_roundtrip(self):
        coder = self.make()
        rng = np.random.default_rng(3)
        syms = rng.integers(0, 16, size=40).astype(np.uint8)
        coded = coder.encode(syms)
        assert coded.size == coder.coded_symbols(40)
        decoded = coder.decode(coded, 40)
        np.testing.assert_array_equal(decoded, syms)

    def test_expansion_matches_rate(self):
        coder = self.make(fec="rep3")
        assert coder.coded_symbols(40) == 8 + ((40 - 8) * 3)

    def test_corrects_one_corrupted_dwell(self):
        """The headline property: interleaving across dwells + Hamming
        corrects a fully corrupted dwell of a many-dwell frame."""
        coder = self.make(fec="hamming74", preamble=8, sph=4)
        rng = np.random.default_rng(4)
        frame = rng.integers(0, 16, size=40).astype(np.uint8)
        air = coder.encode(frame)
        n_dwells = -(-air.size // 4)
        # corrupt one mid-frame dwell (4 symbols) completely
        start = 4 * (n_dwells // 2)
        corrupted = air.copy()
        corrupted[start : start + 4] ^= rng.integers(1, 16, size=4).astype(np.uint8)
        decoded = coder.decode(corrupted, 40)
        np.testing.assert_array_equal(decoded, frame)

    def test_short_capture_raises(self):
        coder = self.make()
        with pytest.raises(ValueError):
            coder.decode(np.zeros(10, dtype=np.uint8), 40)

    def test_frame_shorter_than_preamble_raises(self):
        coder = self.make()
        with pytest.raises(ValueError):
            coder.coded_symbols(4)


class TestCodedLink:
    def test_coded_roundtrip_clean(self):
        cfg = BHSSConfig.paper_default(payload_bytes=8, seed=50, fec="hamming74")
        out = LinkSimulator(cfg).run_packet(snr_db=25.0, rng=0)
        assert out.accepted

    def test_all_codecs_roundtrip(self):
        for fec in ["rep3", "rep5", "hamming1511"]:
            cfg = BHSSConfig.paper_default(payload_bytes=8, seed=51, fec=fec)
            out = LinkSimulator(cfg).run_packet(snr_db=25.0, rng=1)
            assert out.accepted, fec

    def test_unknown_fec_raises_at_config(self):
        with pytest.raises(ValueError):
            BHSSConfig.paper_default(fec="ldpc")

    def test_coding_lowers_ber_at_marginal_snr(self):
        from repro.jamming import BandlimitedNoiseJammer

        jam = BandlimitedNoiseJammer(2.5e6, 20e6)
        uncoded = LinkSimulator(
            BHSSConfig.paper_default(pattern="linear", payload_bytes=8, seed=52)
        ).run_packets(8, snr_db=18.0, sjr_db=-12.0, jammer=jam, seed=2)
        coded = LinkSimulator(
            BHSSConfig.paper_default(pattern="linear", payload_bytes=8, seed=52, fec="rep3")
        ).run_packets(8, snr_db=18.0, sjr_db=-12.0, jammer=jam, seed=2)
        assert coded.bit_error_rate <= uncoded.bit_error_rate
