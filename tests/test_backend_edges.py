"""Edge cases of the batch DSP primitives, across every backend.

Empty batches (zero rows *and* zero-length rows), single-row batches,
``batch_size=1`` link runs, and real/complex dtype round-trips — the
degenerate shapes the sweep machinery can legitimately produce (an empty
segment group, a one-packet chunk) and that historically crashed or
silently changed dtype.  Everything runs once per registered backend so
an accelerated kernel cannot regress a corner the oracle handles.

Also pins two fixed bugs:

* ``fft_convolve_batch`` now validates a caller-supplied ``taps_fft``
  batch axis up front (field-named error) and shares
  ``apply_fir_batch``'s empty-input early return, and
* ``repro-bhss bench`` records the *measured* pool size — a requested
  ``--workers 2`` must surface as ``workers == 2`` in the payload, not
  the hardcoded 1 that made BENCH_pr3's "speedup" serial-vs-serial.
"""

import json

import numpy as np
import pytest

from repro.backend import available_backends, make_backend, use_backend
from repro.dsp.fir import apply_fir_batch, fft_convolve_batch
from repro.dsp.spectral import welch_psd_batch
from repro.phy.qpsk import ChipModulator
from repro.spread.dsss import SixteenAryDSSS

BACKENDS = sorted(available_backends())


@pytest.fixture(params=BACKENDS)
def backend(request):
    with use_backend(make_backend(request.param)) as b:
        yield b


class TestEmptyBatches:
    @pytest.mark.parametrize("shape", [(0, 64), (3, 0), (0, 0)])
    def test_apply_fir_and_fft_convolve_agree(self, backend, shape):
        # The two primitives must return the same empty result: a coerced
        # copy of the input, float64 for real input, complex128 for complex.
        taps = np.hanning(5)
        for dtype, expect in ((np.float32, np.float64), (np.complex64, np.complex128)):
            x = np.zeros(shape, dtype=dtype)
            a = apply_fir_batch(x, taps)
            b = fft_convolve_batch(x, taps)
            assert a.shape == b.shape == shape
            assert a.dtype == b.dtype == expect

    def test_empty_results_are_copies(self, backend):
        x = np.zeros((0, 8))
        out = apply_fir_batch(x, np.ones(3))
        assert out.base is None or out.base is not x

    def test_empty_taps_still_rejected(self, backend):
        # The zero-length guard must not swallow the taps validation.
        with pytest.raises(ValueError, match="taps"):
            fft_convolve_batch(np.zeros((0, 8)), np.zeros(0))
        with pytest.raises(ValueError, match="taps"):
            apply_fir_batch(np.zeros((0, 8)), np.zeros(0))

    def test_welch_zero_rows(self, backend):
        freqs, psd = welch_psd_batch(np.zeros((0, 512)), nperseg=64, nfft=128)
        assert freqs.shape == (128,)
        assert psd.shape == (0, 128)
        assert psd.dtype == np.float64

    @pytest.mark.parametrize("shape", [(0, 32), (2, 0), (0, 0)])
    def test_modulate_empty(self, backend, shape):
        mod = ChipModulator("halfsine")
        out = mod.modulate_batch(np.zeros(shape), sps=4)
        assert out.shape == (shape[0], (shape[1] // 2) * 4)
        assert out.dtype == np.complex128

    @pytest.mark.parametrize("rows,n_sym", [(0, 4), (2, 0), (0, 0)])
    def test_spread_empty(self, backend, rows, n_sym):
        modem = SixteenAryDSSS(seed=9)
        out = modem.spread_batch(np.zeros((rows, n_sym), dtype=int))
        assert out.shape == (rows, n_sym * 32)
        assert out.dtype == np.float64

    @pytest.mark.parametrize("rows,n_sym", [(0, 4), (2, 0), (0, 0)])
    def test_despread_empty(self, backend, rows, n_sym):
        modem = SixteenAryDSSS(seed=9)
        result = modem.despread_batch(np.zeros((rows, n_sym * 32)))
        assert result.symbols.shape == (rows, n_sym)
        assert result.scores.shape == (rows, n_sym, 16)
        assert result.quality.shape == (rows, n_sym)
        # Dtypes must match what a non-empty batch yields, so downstream
        # concatenation never silently promotes.
        full = modem.despread_batch(np.ones((2, 32)))
        assert result.symbols.dtype == full.symbols.dtype
        assert result.scores.dtype == full.scores.dtype
        assert result.quality.dtype == full.quality.dtype


class TestSingleRowBatches:
    def test_single_row_matches_serial(self, backend):
        from repro.dsp.fir import apply_fir, fft_convolve

        rng = np.random.default_rng(4)
        x = rng.standard_normal((1, 200)) + 1j * rng.standard_normal((1, 200))
        taps = np.hanning(7)
        assert np.allclose(apply_fir_batch(x, taps)[0], apply_fir(x[0], taps),
                           rtol=1e-9, atol=1e-12)
        assert np.allclose(fft_convolve_batch(x, taps)[0], fft_convolve(x[0], taps),
                           rtol=1e-9, atol=1e-12)

    def test_single_row_spread_roundtrip(self, backend):
        modem = SixteenAryDSSS(seed=1)
        syms = np.array([[3, 14, 0, 7]])
        chips = modem.spread_batch(syms)
        back = modem.despread_batch(chips)
        assert np.array_equal(back.symbols, syms)


class TestDtypeRoundTrips:
    @pytest.mark.parametrize("in_dtype,out_dtype", [
        (np.float32, np.float64),
        (np.float64, np.float64),
        (np.complex64, np.complex128),
        (np.complex128, np.complex128),
    ])
    def test_apply_fir_coerces(self, backend, in_dtype, out_dtype):
        x = np.ones((2, 64), dtype=in_dtype)
        assert apply_fir_batch(x, np.hanning(5)).dtype == out_dtype

    def test_fft_convolve_real_stays_real(self, backend):
        x = np.ones((2, 64))
        out = fft_convolve_batch(x, np.hanning(5))
        assert not np.iscomplexobj(out)

    def test_fft_convolve_complex_stays_complex(self, backend):
        x = np.ones((2, 64), dtype=complex)
        out = fft_convolve_batch(x, np.hanning(5))
        assert np.iscomplexobj(out)


class TestTapsFftValidation:
    def test_batch_mismatch_names_the_field(self, backend):
        from repro.dsp.fir import convolve_nfft

        x = np.zeros((3, 100))
        taps = np.hanning(9)
        nfft = convolve_nfft(100, 9)
        bad = np.zeros((2, nfft), dtype=complex)  # 2 rows vs 3 signals
        with pytest.raises(ValueError, match="taps_fft batch 2"):
            fft_convolve_batch(x, taps, taps_fft=bad)

    def test_bad_ndim_names_the_field(self, backend):
        x = np.zeros((3, 100))
        with pytest.raises(ValueError, match="taps_fft must be 1-D or 2-D"):
            fft_convolve_batch(x, np.hanning(9), taps_fft=np.zeros((3, 2, 2)))

    def test_length_check_still_applies(self, backend):
        x = np.zeros((3, 100))
        with pytest.raises(ValueError, match="taps_fft length"):
            fft_convolve_batch(x, np.hanning(9), taps_fft=np.zeros((3, 17), dtype=complex))


class TestBatchSizeOne:
    def test_batch_size_one_equals_serial(self):
        from repro.core import BHSSConfig, LinkSimulator
        from repro.jamming.registry import jammer_from_spec

        config = BHSSConfig.paper_default(payload_bytes=4, symbols_per_hop=2, seed=11)
        spec = {"type": "tone", "frequency": 1e6, "sample_rate": config.sample_rate}
        stats = {}
        for label, size in (("serial", 0), ("one", 1)):
            link = LinkSimulator(config)
            stats[label] = link.run_packets_batched(
                3, snr_db=8.0, sjr_db=-5.0, jammer=jammer_from_spec(spec),
                seed=2, batch_size=size, cache=False,
            )
        assert stats["serial"] == stats["one"]


class TestScenarioBackendField:
    def test_roundtrip(self):
        from repro.scenario.spec import Scenario

        s = Scenario(name="b", backend="numba", packets=1)
        data = s.to_dict()
        assert data["backend"] == "numba"
        assert Scenario.from_dict(data).backend == "numba"

    def test_default_backend_stays_out_of_the_spec(self):
        # Absent backend must not appear in to_dict(): cache keys and
        # checkpoint hashes of pre-backend scenario files must not move.
        from repro.scenario.spec import Scenario

        assert "backend" not in Scenario(name="b", packets=1).to_dict()

    def test_unknown_backend_names_the_field(self):
        from repro.scenario.spec import Scenario, ScenarioError

        with pytest.raises(ScenarioError, match="backend: unknown backend 'gpu'"):
            Scenario(name="b", backend="gpu")


class TestCliBackendErrors:
    def test_bad_env_knob_is_a_usage_error(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        assert main(["info"]) == 2
        assert "REPRO_BACKEND" in capsys.readouterr().err

    def test_explicit_backend_beats_the_env_knob(self, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_BACKEND", "bogus")  # never resolved
        assert main(["info", "--backend", "numpy"]) == 0


class TestBenchWorkersRegression:
    """The sweep payload records the measured pool size, not a constant 1."""

    def test_requested_workers_reach_the_pool(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "bench.json"
        # Pinned to the oracle so the bit-identity gates stay deterministic
        # even when the suite runs under REPRO_BACKEND=numba with a live jit.
        code = main([
            "bench", "--backend", "numpy", "--points", "2", "--packets", "1",
            "--batch", "2", "--batch-packets", "2", "--repeats", "1",
            "--workers", "2", "-o", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        sweep = payload["sweep"]
        # The broken reporting hardcoded workers=1 for the parallel run;
        # a requested 2-worker pool must be measured as 2.
        assert sweep["workers"] == 2
        assert sweep["workers_requested"] == 2
        assert sweep["parallel"]["workers"] == 2
        assert sweep["serial"]["workers"] == 1

    def test_quick_mode_still_writes_profile(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "bench", "--backend", "numpy", "--quick", "--profile", "--batch", "4",
            "--batch-packets", "4", "--repeats", "1", "-o", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        backends = payload["profile"]["backends"]
        assert set(backends) == set(BACKENDS)
        assert backends["numpy"]["bit_identical"] is True
        for entry in backends.values():
            assert entry["wall_seconds"] > 0
            assert entry["stage_seconds"]["stages"]
