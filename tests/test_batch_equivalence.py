"""The batch == serial equivalence wall.

The batched link engine's contract is *bit-for-bit* equality with the
serial per-packet path for every (seed, operating point): same accepted
counts, same bit errors, same filter-usage histogram, same decoded bits.
These tests sweep that contract across the full registry surface — every
registered jammer type, every channel spec, every hop pattern — for
multiple seeds, plus the truncated-capture edge case, so a batch-path
regression cannot hide behind a favourable configuration.
"""

import numpy as np
import pytest

from repro.core import BHSSConfig, LinkSimulator
from repro.jamming.registry import jammer_from_spec, jammer_names
from repro.scenario.spec import channel_from_spec

FS = 20e6  # matches BHSSConfig.paper_default

# One representative spec per registered jammer type.  Stateful/seeded
# jammers carry explicit seeds: OS-entropy defaults would make the serial
# and batched runs incomparable.  test_every_registered_jammer_is_covered
# fails when a new type is registered without a spec here.
JAMMER_SPECS = {
    "none": {"type": "none"},
    "noise": {"type": "noise", "bandwidth": 2.5e6, "sample_rate": FS},
    "tone": {"type": "tone", "frequency": 1e6, "sample_rate": FS},
    "sweep": {
        "type": "sweep",
        "f_start": -2e6,
        "f_stop": 2e6,
        "sample_rate": FS,
        "sweep_duration": 1e-3,
    },
    "comb": {"type": "comb", "frequencies": [0.5e6, 2e6, 4e6], "sample_rate": FS, "seed": 77},
    "hopping": {
        "type": "hopping",
        "bandwidths": [0.625e6, 1.25e6, 2.5e6],
        "sample_rate": FS,
        "dwell_samples": 4096,
        "seed": 77,
    },
    "pulsed": {
        "type": "pulsed",
        "inner": {"type": "tone", "frequency": 1.5e6, "sample_rate": FS},
        "duty_cycle": 0.5,
        "period_samples": 4096,
    },
    "reactive": {
        "type": "reactive",
        "sample_rate": FS,
        "reaction_samples": 2048,
        "initial_bandwidth": 2.5e6,
    },
    "latent-reactive": {
        "type": "latent-reactive",
        "sample_rate": FS,
        "bandwidth": 2.5e6,
        "turnaround_samples": 1024,
    },
    "repeater": {"type": "repeater", "delay_samples": 64, "num_taps": 3},
    "multitone": {
        "type": "multitone",
        "sample_rate": FS,
        "placement_bandwidth": 0.15625e6,
        "num_tones": 4,
    },
    "follower": {
        "type": "follower",
        "sample_rate": FS,
        "initial_bandwidth": 2.5e6,
    },
}

CHANNEL_SPECS = {
    "none": None,
    "multipath": {"type": "multipath", "num_taps": 4, "decay_samples": 2.0, "seed": 3},
}

PATTERNS = ["linear", "exponential", "parabolic"]
SEEDS = [0, 1, 2]


def small_config(pattern="linear", **overrides):
    """A small but hop-rich config so the matrix stays fast."""
    overrides.setdefault("payload_bytes", 4)
    overrides.setdefault("symbols_per_hop", 2)
    return BHSSConfig.paper_default(pattern=pattern, seed=11, **overrides)


def stats_pair(config, jammer_spec, seed, *, channel_spec=None, num_packets=5, batch_size=2):
    """Run the same workload serial and batched; fresh jammers per path.

    ``batch_size=2`` with ``num_packets=5`` forces multiple chunks plus a
    ragged tail, so the chunk boundaries themselves are exercised.
    """
    results = {}
    for label, size in (("serial", 0), ("batched", batch_size)):
        link = LinkSimulator(config, channel=channel_from_spec(channel_spec))
        results[label] = link.run_packets_batched(
            num_packets,
            snr_db=8.0,
            sjr_db=-5.0,
            jammer=jammer_from_spec(jammer_spec),
            seed=seed,
            batch_size=size,
            cache=False,
        )
    return results["serial"], results["batched"]


class TestJammerMatrix:
    def test_every_registered_jammer_is_covered(self):
        assert sorted(JAMMER_SPECS) == sorted(jammer_names())

    @pytest.mark.parametrize("jammer_name", sorted(JAMMER_SPECS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_equals_serial(self, jammer_name, seed):
        serial, batched = stats_pair(small_config(), JAMMER_SPECS[jammer_name], seed)
        assert serial == batched
        assert serial.filter_usage == batched.filter_usage

    def test_stats_are_exercised_not_vacuous(self):
        # The matrix must compare packets that actually pass and fail:
        # all-reject (or all-accept with zero errors) would let a broken
        # batch path slip through `==` unnoticed.
        serial, _ = stats_pair(small_config(), JAMMER_SPECS["noise"], 0, num_packets=8)
        assert serial.total_bits > 0
        assert serial.filter_usage  # the control logic made decisions


class TestChannelMatrix:
    @pytest.mark.parametrize("channel_name", sorted(CHANNEL_SPECS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_equals_serial(self, channel_name, seed):
        serial, batched = stats_pair(
            small_config(),
            JAMMER_SPECS["tone"],
            seed,
            channel_spec=CHANNEL_SPECS[channel_name],
        )
        assert serial == batched


class TestHopPatternMatrix:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_equals_serial(self, pattern, seed):
        serial, batched = stats_pair(small_config(pattern=pattern), JAMMER_SPECS["noise"], seed)
        assert serial == batched

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fixed_bandwidth_baseline(self, seed):
        # Hopping disabled (the paper's conventional-DSSS baseline): one
        # segment per packet, the degenerate grouping case.
        config = small_config().with_fixed_bandwidth(2.5e6)
        serial, batched = stats_pair(config, JAMMER_SPECS["noise"], seed)
        assert serial == batched


class TestReceiveBatchDirect:
    """receive_batch vs receive on raw captures, including truncation."""

    def _captures(self, config, num_packets=4, seed=5):
        link = LinkSimulator(config)
        rng = np.random.default_rng(seed)
        captures = []
        for k in range(num_packets):
            wave = link.transmitter.transmit(packet_index=k).waveform
            noisy = wave + 0.05 * (
                rng.standard_normal(wave.size) + 1j * rng.standard_normal(wave.size)
            )
            captures.append(noisy)
        return link, captures

    @staticmethod
    def assert_results_equal(serial, batched):
        assert np.array_equal(serial.symbols, batched.symbols)
        assert serial.frame.payload == batched.frame.payload
        assert serial.quality == batched.quality
        assert serial.filter_usage() == batched.filter_usage()

    def test_full_captures(self):
        link, captures = self._captures(small_config())
        batched = link.receiver.receive_batch(captures)
        for k, (wave, result) in enumerate(zip(captures, batched)):
            self.assert_results_equal(link.receiver.receive(wave, packet_index=k), result)

    def test_truncated_captures(self):
        # Chop packets mid-segment: the missing symbols must be decided
        # identically (zero symbol, zero quality) by both paths while the
        # surviving prefix still goes through the stacked pipeline.
        link, captures = self._captures(small_config())
        truncated = [
            wave[: max(64, int(wave.size * frac))]
            for wave, frac in zip(captures, (0.85, 0.4, 1.0, 0.1))
        ]
        batched = link.receiver.receive_batch(truncated)
        for k, (wave, result) in enumerate(zip(truncated, batched)):
            self.assert_results_equal(link.receiver.receive(wave, packet_index=k), result)

    def test_mixed_packet_indices(self):
        # Non-contiguous indices select different hop substreams per row.
        link, captures = self._captures(small_config())
        indices = [9, 2, 31, 4]
        link2, _ = self._captures(small_config())
        captures = [link2.transmitter.transmit(packet_index=k).waveform for k in indices]
        batched = link.receiver.receive_batch(captures, packet_indices=indices)
        for k, wave, result in zip(indices, captures, batched):
            self.assert_results_equal(link.receiver.receive(wave, packet_index=k), result)


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("batch_size", [2, 3, 64])
    def test_chunking_does_not_change_stats(self, batch_size):
        serial, batched = stats_pair(
            small_config(), JAMMER_SPECS["tone"], 0, batch_size=batch_size, num_packets=7
        )
        assert serial == batched


class TestEquivalenceManifest:
    """The lint manifest and this wall cover the same surface.

    ``repro.lint.manifest.BATCH_EQUIVALENCE`` is the declared registry of
    batch/serial twins; the ``batch-symmetry`` lint rule forces new batch
    primitives into it.  These tests keep the registry live: every
    reference must import, every twin must actually be a different
    callable on the same module, and every public batch primitive found
    by the AST scan must be listed.
    """

    def test_every_manifest_pair_resolves(self):
        from repro.lint.manifest import BATCH_EQUIVALENCE, resolve

        for batch_ref, serial_ref in BATCH_EQUIVALENCE.items():
            batch_fn = resolve(batch_ref)
            serial_fn = resolve(serial_ref)
            assert callable(batch_fn), batch_ref
            assert callable(serial_fn), serial_ref
            assert batch_fn is not serial_fn, (batch_ref, serial_ref)

    def test_twins_live_in_the_same_module(self):
        from repro.lint.manifest import BATCH_EQUIVALENCE

        for batch_ref, serial_ref in BATCH_EQUIVALENCE.items():
            assert batch_ref.split(":")[0] == serial_ref.split(":")[0], batch_ref

    def test_no_unregistered_batch_primitives(self):
        import os

        from repro.lint.engine import run_lint

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        report = run_lint(
            [os.path.join(repo, "src")], root=repo, rules=["batch-symmetry", "batch-manifest"]
        )
        assert report.findings == [], report.findings
