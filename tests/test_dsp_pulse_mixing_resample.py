"""Unit tests for pulse shapes, mixing, and resampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import (
    HalfSinePulse,
    RectPulse,
    RootRaisedCosinePulse,
    chirp,
    fractional_delay,
    frequency_shift,
    get_pulse,
    linear_interpolate,
    phase_rotate,
    resample_linear,
)
from repro.utils import signal_energy, signal_power

FS = 20e6


class TestPulseShapes:
    @pytest.mark.parametrize("pulse", [HalfSinePulse(), RectPulse()])
    @pytest.mark.parametrize("sps", [1, 2, 4, 8, 64, 256])
    def test_unit_energy(self, pulse, sps):
        assert signal_energy(pulse.waveform(sps)) == pytest.approx(1.0)

    def test_rrc_unit_energy(self):
        p = RootRaisedCosinePulse(beta=0.35, span=8)
        assert signal_energy(p.waveform(8)) == pytest.approx(1.0)

    def test_half_sine_shape(self):
        p = HalfSinePulse().waveform(100)
        # peaks at the middle, near-zero (not exactly, offset sampling) at edges
        assert np.argmax(p) in (49, 50)
        assert p[0] < 0.1 * p.max()

    def test_half_sine_length_is_sps(self):
        assert HalfSinePulse().waveform(16).size == 16

    def test_rect_is_constant(self):
        p = RectPulse().waveform(10)
        np.testing.assert_allclose(p, p[0])

    def test_rrc_length_is_span_times_sps(self):
        p = RootRaisedCosinePulse(beta=0.25, span=6)
        assert p.waveform(4).size == 24

    def test_rrc_symmetric(self):
        w = RootRaisedCosinePulse(beta=0.5, span=8).waveform(8)
        np.testing.assert_allclose(w, w[::-1], atol=1e-12)

    def test_time_stretch_compresses_spectrum(self):
        """Eq. (1): g(alpha t) <-> G(w/alpha)/|alpha| — doubling sps halves bandwidth."""
        p = HalfSinePulse()
        widths = []
        for sps in [8, 16]:
            w = p.waveform(sps)
            spec = np.abs(np.fft.fft(w, 4096)) ** 2
            freqs = np.fft.fftfreq(4096)
            total = spec.sum()
            order = np.argsort(spec)[::-1]
            needed = int(np.searchsorted(np.cumsum(spec[order]), 0.95 * total)) + 1
            widths.append(needed * (freqs[1] - freqs[0]))
        assert widths[0] / widths[1] == pytest.approx(2.0, rel=0.15)

    def test_sps_zero_raises(self):
        with pytest.raises(ValueError):
            HalfSinePulse().waveform(0)

    def test_rrc_bad_beta_raises(self):
        with pytest.raises(ValueError):
            RootRaisedCosinePulse(beta=0.0)

    def test_rrc_odd_span_raises(self):
        with pytest.raises(ValueError):
            RootRaisedCosinePulse(span=5)

    def test_get_pulse_by_name(self):
        assert isinstance(get_pulse("half_sine"), HalfSinePulse)
        assert isinstance(get_pulse("rect"), RectPulse)
        assert isinstance(get_pulse("rrc", beta=0.2), RootRaisedCosinePulse)

    def test_get_pulse_passthrough(self):
        p = HalfSinePulse()
        assert get_pulse(p) is p

    def test_get_pulse_unknown_raises(self):
        with pytest.raises(ValueError):
            get_pulse("gaussian")

    def test_bandwidth_factors(self):
        assert HalfSinePulse().bandwidth_factor == 2.0
        assert RootRaisedCosinePulse(beta=0.35).bandwidth_factor == pytest.approx(1.35)


class TestMixing:
    def test_shift_moves_tone(self):
        n = np.arange(4096)
        x = np.exp(2j * np.pi * 1e6 / FS * n)
        y = frequency_shift(x, 2e6, FS)
        spec = np.fft.fftshift(np.abs(np.fft.fft(y)))
        freqs = np.fft.fftshift(np.fft.fftfreq(4096, 1 / FS))
        assert freqs[np.argmax(spec)] == pytest.approx(3e6, abs=2 * FS / 4096)

    def test_shift_preserves_power(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000) + 1j * rng.normal(size=1000)
        assert signal_power(frequency_shift(x, 1.7e6, FS)) == pytest.approx(signal_power(x))

    def test_shift_by_zero_is_identity(self):
        x = np.ones(16, dtype=complex)
        np.testing.assert_allclose(frequency_shift(x, 0.0, FS), x)

    def test_negative_shift_inverts(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=256) + 1j * rng.normal(size=256)
        y = frequency_shift(frequency_shift(x, 3e6, FS), -3e6, FS)
        np.testing.assert_allclose(y, x, atol=1e-12)

    def test_phase_rotate(self):
        x = np.ones(4, dtype=complex)
        np.testing.assert_allclose(phase_rotate(x, np.pi / 2), 1j * np.ones(4), atol=1e-12)

    def test_chirp_sweeps(self):
        c = chirp(8192, -5e6, 5e6, FS)
        assert signal_power(c) == pytest.approx(1.0)
        # instantaneous frequency at the start is negative, at the end positive
        inst = np.diff(np.unwrap(np.angle(c))) * FS / (2 * np.pi)
        assert inst[:100].mean() < -3e6
        assert inst[-100:].mean() > 3e6

    def test_chirp_bad_length_raises(self):
        with pytest.raises(ValueError):
            chirp(0, 0, 1e6, FS)


class TestResample:
    def test_fractional_delay_integer(self):
        x = np.zeros(64, dtype=complex)
        x[10] = 1.0
        y = fractional_delay(x, 3.0)
        assert np.argmax(np.abs(y)) == 13

    def test_fractional_delay_half_sample(self):
        # Use a DFT-bin frequency so the periodic FFT delay is exact.
        n = np.arange(512)
        f = 26.0 / 512.0
        x = np.exp(2j * np.pi * f * n)
        y = fractional_delay(x, 0.5)
        expected = np.exp(2j * np.pi * f * (n - 0.5))
        np.testing.assert_allclose(y, expected, atol=1e-9)

    def test_fractional_delay_preserves_power(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=1024) + 1j * rng.normal(size=1024)
        assert signal_power(fractional_delay(x, 0.37)) == pytest.approx(signal_power(x), rel=1e-9)

    def test_negative_delay_advances(self):
        x = np.zeros(64, dtype=complex)
        x[10] = 1.0
        y = fractional_delay(x, -2.0)
        assert np.argmax(np.abs(y)) == 8

    def test_empty_signal(self):
        assert fractional_delay(np.array([], dtype=complex), 1.5).size == 0

    def test_linear_interpolate_midpoints(self):
        x = np.array([0.0, 2.0, 4.0])
        np.testing.assert_allclose(linear_interpolate(x, [0.5, 1.5]), [1.0, 3.0])

    def test_linear_interpolate_clamps(self):
        x = np.array([1.0, 2.0])
        np.testing.assert_allclose(linear_interpolate(x, [-5.0, 10.0]), [1.0, 2.0])

    def test_linear_interpolate_empty_raises(self):
        with pytest.raises(ValueError):
            linear_interpolate(np.array([]), [0.0])

    def test_resample_identity(self):
        x = np.sin(np.arange(100) * 0.1)
        np.testing.assert_allclose(resample_linear(x, 1.0), x, atol=1e-12)

    def test_resample_doubles_length(self):
        x = np.arange(50, dtype=float)
        y = resample_linear(x, 2.0)
        assert y.size == 99
        np.testing.assert_allclose(y[::2], x, atol=1e-12)

    def test_resample_small_skew_shape(self):
        # 100 ppm clock skew barely changes length but shifts samples.
        x = np.sin(np.arange(10_000) * 0.01)
        y = resample_linear(x, 1.0001)
        assert abs(y.size - x.size) <= 2

    def test_resample_bad_ratio_raises(self):
        with pytest.raises(ValueError):
            resample_linear(np.ones(10), 0.0)

    @given(st.floats(min_value=-8, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_delay_then_advance_roundtrip(self, d):
        rng = np.random.default_rng(3)
        x = rng.normal(size=256) + 1j * rng.normal(size=256)
        y = fractional_delay(fractional_delay(x, d), -d)
        np.testing.assert_allclose(y, x, atol=1e-8)


class TestDecimate:
    def test_identity_factor(self):
        from repro.dsp import decimate

        x = np.arange(32, dtype=float)
        np.testing.assert_array_equal(decimate(x, 1), x)

    def test_output_length(self):
        from repro.dsp import decimate

        x = np.ones(1000, dtype=complex)
        assert decimate(x, 4).size == 250

    def test_in_band_tone_preserved(self):
        from repro.dsp import decimate

        n = np.arange(8192)
        tone = np.exp(2j * np.pi * 0.01 * n)  # well inside the new band
        out = decimate(tone, 8)
        expected = np.exp(2j * np.pi * 0.08 * np.arange(out.size))
        core = slice(30, -30)
        np.testing.assert_allclose(out[core], expected[core], atol=0.02)

    def test_out_of_band_tone_suppressed_with_anti_alias(self):
        from repro.dsp import decimate

        n = np.arange(8192)
        tone = np.exp(2j * np.pi * 0.3 * n)  # beyond the new Nyquist (1/16)
        out = decimate(tone, 8, anti_alias=True)
        assert signal_power(out[30:-30]) < 1e-4

    def test_out_of_band_tone_aliases_without_anti_alias(self):
        from repro.dsp import decimate

        n = np.arange(8192)
        tone = np.exp(2j * np.pi * 0.3 * n)
        out = decimate(tone, 8, anti_alias=False)
        assert signal_power(out) == pytest.approx(1.0, rel=1e-6)  # folded in

    def test_bad_factor_raises(self):
        from repro.dsp import decimate

        with pytest.raises(ValueError):
            decimate(np.ones(8), 0)

    def test_taps_cached(self):
        from repro.dsp import decimation_taps

        assert decimation_taps(4) is decimation_taps(4)

    def test_taps_validation(self):
        from repro.dsp import decimation_taps

        with pytest.raises(ValueError):
            decimation_taps(0)
        with pytest.raises(ValueError):
            decimation_taps(4, taps_per_phase=2)
