"""Chaos tests: deterministic fault injection proves every recovery path.

The acceptance bar of the fault-tolerant runtime is not "handles errors"
but "finishes with **bit-identical** results": under injected crashes,
hangs and cache corruption, a sweep must produce exactly the rows a
fault-free serial run produces.  These tests inject each fault kind
through ``REPRO_FAULTS`` (seeded, so every run injects the same faults)
and compare against fault-free baselines with plain ``==``.
"""

import multiprocessing
import os
import time

import pytest

from repro.analysis import run_sweep
from repro.runtime import (
    FaultPlan,
    InjectedCrash,
    ParallelExecutor,
    ResultCache,
    TaskError,
    TaskFailure,
    TaskTimeout,
    WorkerCrash,
    resolve_retries,
    resolve_timeout,
)
from repro.scenario import Scenario, run_scenario

FORK = ParallelExecutor.fork_available()
needs_fork = pytest.mark.skipif(not FORK, reason="fork start method unavailable")

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCENARIO = os.path.join(REPO, "examples", "scenarios", "tone_excision.json")


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Fault/supervision knobs must come only from each test."""
    for var in ("REPRO_FAULTS", "REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_CHECKPOINT"):
        monkeypatch.delenv(var, raising=False)


def crashing_seed(n_tasks: int, probability: float = 0.5, kind: str = "crash") -> int:
    """A fault seed under which at least one of ``n_tasks`` draws fires."""
    for seed in range(1000):
        plan = FaultPlan(**{kind.replace("-", "_"): probability}, seed=seed)
        if any(plan.should(kind, str(i)) for i in range(n_tasks)):
            return seed
    raise AssertionError("no firing seed found — probabilities broken?")


class TestFaultPlanParsing:
    def test_full_spec(self):
        plan = FaultPlan.parse("crash:0.05, hang:0.02, corrupt-cache:0.01, seed:7")
        assert plan == FaultPlan(crash=0.05, hang=0.02, corrupt_cache=0.01, seed=7)

    def test_defaults_are_all_off(self):
        plan = FaultPlan.parse("")
        assert plan.crash == plan.hang == plan.corrupt_cache == 0.0
        assert not plan.should("crash", "0")

    def test_hang_seconds(self):
        assert FaultPlan.parse("hang:1,hang-seconds:0.25").hang_seconds == 0.25

    def test_unknown_kind_names_source(self):
        with pytest.raises(ValueError, match="REPRO_FAULTS.*oom"):
            FaultPlan.parse("oom:0.5")

    def test_bad_probability_raises(self):
        with pytest.raises(ValueError, match="must be a number"):
            FaultPlan.parse("crash:lots")
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan.parse("crash:1.5")

    def test_entry_without_value_raises(self):
        with pytest.raises(ValueError, match="kind:value"):
            FaultPlan.parse("crash")

    def test_bad_seed_and_hang_seconds(self):
        with pytest.raises(ValueError, match="seed must be an integer"):
            FaultPlan.parse("seed:x")
        with pytest.raises(ValueError, match="hang-seconds must be positive"):
            FaultPlan.parse("hang-seconds:0")

    def test_from_env(self, monkeypatch):
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "  ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "crash:0.5,seed:3")
        assert FaultPlan.from_env() == FaultPlan(crash=0.5, seed=3)

    def test_protocol_kinds_parse_into_fields(self):
        plan = FaultPlan.parse("drop-handshake:0.3, desync:0.2, seed:9")
        assert plan == FaultPlan(drop_handshake=0.3, desync=0.2, seed=9)
        assert plan.crash == plan.hang == plan.corrupt_cache == 0.0

    def test_duplicate_kind_rejected_with_kind_named(self):
        with pytest.raises(ValueError, match="'crash' appears more than once"):
            FaultPlan.parse("crash:0.1,crash:0.2")
        with pytest.raises(ValueError, match="'desync' appears more than once"):
            FaultPlan.parse("desync:0.1,hang:0.2,desync:0.1")


class TestFaultDeterminism:
    def test_should_is_pure(self):
        plan = FaultPlan(crash=0.5, seed=4)
        draws = [plan.should("crash", "11") for _ in range(10)]
        assert len(set(draws)) == 1

    def test_decisions_vary_across_indices_and_seeds(self):
        plan = FaultPlan(crash=0.5, seed=crashing_seed(16))
        per_index = [plan.should("crash", str(i)) for i in range(16)]
        assert any(per_index) and not all(per_index)

    def test_certain_crash_fires_only_on_first_attempt(self):
        plan = FaultPlan(crash=1.0)
        with pytest.raises(InjectedCrash):
            plan.maybe_inject(0, 0)
        plan.maybe_inject(0, 1)  # retries are never re-faulted

    def test_zero_probability_never_fires(self):
        plan = FaultPlan()
        for i in range(32):
            assert not plan.should("crash", str(i))

    def test_should_rejects_unknown_kind_by_name(self):
        plan = FaultPlan(crash=0.5)
        with pytest.raises(ValueError, match="unknown fault kind 'oom'"):
            plan.should("oom", "0")

    def test_protocol_kind_draws_are_independent_substreams(self):
        seed = crashing_seed(16, kind="desync")
        plan = FaultPlan(drop_handshake=0.5, desync=0.5, seed=seed)
        desync = [plan.should("desync", str(i)) for i in range(16)]
        drops = [plan.should("drop-handshake", str(i)) for i in range(16)]
        assert any(desync)
        assert desync != drops  # keyed per-kind, not a shared coin


class TestResolvers:
    def test_timeout_unset_and_zero_mean_no_limit(self, monkeypatch):
        assert resolve_timeout() is None
        monkeypatch.setenv("REPRO_TIMEOUT", "0")
        assert resolve_timeout() is None

    def test_timeout_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "2.5")
        assert resolve_timeout() == 2.5

    def test_timeout_garbage_names_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_TIMEOUT"):
            resolve_timeout()
        monkeypatch.setenv("REPRO_TIMEOUT", "-3")
        with pytest.raises(ValueError, match="REPRO_TIMEOUT"):
            resolve_timeout()

    def test_retries_default_and_values(self, monkeypatch):
        assert resolve_retries() == 2
        monkeypatch.setenv("REPRO_RETRIES", "0")
        assert resolve_retries() == 0
        monkeypatch.setenv("REPRO_RETRIES", "5")
        assert resolve_retries() == 5

    def test_retries_garbage_names_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "-1")
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            resolve_retries()
        monkeypatch.setenv("REPRO_RETRIES", "many")
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            resolve_retries()

    def test_executor_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "9")
        monkeypatch.setenv("REPRO_RETRIES", "4")
        ex = ParallelExecutor(2)
        assert ex.timeout == 9.0 and ex.retries == 4
        explicit = ParallelExecutor(2, timeout=0, retries=0)
        assert explicit.timeout is None and explicit.retries == 0


class TestSerialRecovery:
    def test_crash_faults_recover_bit_identically(self, monkeypatch):
        items = list(range(8))
        baseline = ParallelExecutor(0).map(lambda x: x * 1.5, items)
        seed = crashing_seed(len(items))
        monkeypatch.setenv("REPRO_FAULTS", f"crash:0.5,seed:{seed}")
        report = ParallelExecutor(0, retries=2).map_timed(lambda x: x * 1.5, items)
        assert list(report.values) == baseline
        assert report.retries > 0

    def test_keyboard_interrupt_is_never_retried(self):
        calls = []

        def fn(x):
            calls.append(x)
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ParallelExecutor(0, retries=5).map(fn, [1, 2, 3])
        assert calls == [1]

    def test_terminal_task_error_carries_index_and_cause(self):
        def boom(x):
            if x == 2:
                raise ValueError("bad point")
            return x

        with pytest.raises(TaskError) as info:
            ParallelExecutor(0, retries=1).map(boom, [0, 1, 2, 3])
        assert info.value.index == 2
        assert info.value.attempts == 2
        assert isinstance(info.value.__cause__, ValueError)
        assert isinstance(info.value, TaskFailure)
        assert isinstance(info.value, RuntimeError)  # historical except clauses

    def test_terminal_injected_crash_is_worker_crash(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:1.0")
        with pytest.raises(WorkerCrash) as info:
            ParallelExecutor(0, retries=0).map(lambda x: x, [0, 1])
        assert info.value.index == 0
        assert info.value.attempts == 1


@needs_fork
class TestPoolRecovery:
    def test_crash_faults_recover_bit_identically(self, monkeypatch):
        items = list(range(10))
        baseline = ParallelExecutor(0).map(lambda x: x + 0.25, items)
        seed = crashing_seed(len(items))
        monkeypatch.setenv("REPRO_FAULTS", f"crash:0.5,seed:{seed}")
        report = ParallelExecutor(3, retries=2).map_timed(lambda x: x + 0.25, items)
        assert list(report.values) == baseline
        assert report.retries > 0

    def test_hang_faults_recover_via_timeout(self, monkeypatch):
        items = list(range(6))
        baseline = ParallelExecutor(0).map(lambda x: x * 3, items)
        seed = crashing_seed(len(items), kind="hang")
        monkeypatch.setenv("REPRO_FAULTS", f"hang:0.5,hang-seconds:5,seed:{seed}")
        report = ParallelExecutor(2, timeout=0.3, retries=2).map_timed(lambda x: x * 3, items)
        assert list(report.values) == baseline
        assert report.retries > 0

    def test_timeout_terminal_is_task_timeout(self):
        def slow_in_workers(x):
            from repro.runtime import executor as executor_module

            if executor_module._IN_WORKER:
                time.sleep(5.0)
            return x

        with pytest.raises(TaskTimeout) as info:
            ParallelExecutor(2, timeout=0.2, retries=0).map(slow_in_workers, [0, 1, 2])
        assert info.value.timeout == 0.2
        assert info.value.attempts == 1

    def test_dead_child_is_worker_crash(self):
        def die(x):
            if x == 1:
                os._exit(17)
            return x

        with pytest.raises(WorkerCrash):
            ParallelExecutor(2, retries=0).map(die, [0, 1, 2])

    def test_unhealthy_pool_degrades_to_serial(self):
        # Hang in pool workers on *every* attempt: timeouts burn pool
        # restarts until the supervisor abandons the pool, and the serial
        # tail (where _IN_WORKER is false) must still finish the map.
        def hang_in_workers(x):
            from repro.runtime import executor as executor_module

            if executor_module._IN_WORKER:
                time.sleep(30.0)
            return x * 7

        report = ParallelExecutor(2, timeout=0.2, retries=100).map_timed(
            hang_in_workers, list(range(4))
        )
        assert list(report.values) == [0, 7, 14, 21]

    def test_supervisor_interrupt_tears_down_pool(self):
        def interrupt(_index, _value):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ParallelExecutor(2).map_timed(lambda x: x, range(8), on_result=interrupt)
        from repro.runtime import executor as executor_module

        assert executor_module._WORKER_PAYLOAD is None
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not multiprocessing.active_children()


class TestCacheCorruptionRecovery:
    def test_corrupted_put_is_detected_and_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt-cache:1.0")
        store = ResultCache(str(tmp_path))
        store.put({"k": 1}, {"v": 2.5})
        # the injected bit-flip must break the checksum, never serve garbage
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get({"k": 1}) is None
        assert store.corrupt == 1
        assert os.path.isdir(os.path.join(str(tmp_path), "quarantine"))

    def test_cached_scenario_identical_under_corruption(self, tmp_path, monkeypatch):
        scenario = Scenario.load(SCENARIO)
        baseline = run_scenario(scenario, executor=ParallelExecutor(0), cache=False)
        monkeypatch.setenv("REPRO_FAULTS", "corrupt-cache:1.0")
        cache_dir = str(tmp_path / "cache")
        first = run_scenario(scenario, executor=ParallelExecutor(0), cache=cache_dir)
        second = run_scenario(scenario, executor=ParallelExecutor(0), cache=cache_dir)
        assert first.rows == baseline.rows
        assert second.rows == baseline.rows


class TestFaultedScenarioBitIdentity:
    """The hard gate: a full scenario sweep under the issue's fault plan."""

    PLAN = "crash:0.1,hang:0.05,corrupt-cache:0.05,hang-seconds:0.2"

    def _seed_with_task_faults(self, n_points: int) -> int:
        for seed in range(2000):
            plan = FaultPlan.parse(f"{self.PLAN},seed:{seed}")
            if any(
                plan.should("crash", str(i)) or plan.should("hang", str(i))
                for i in range(n_points)
            ):
                return seed
        raise AssertionError("no fault-firing seed found")

    @needs_fork
    def test_faulted_parallel_sweep_matches_fault_free_serial(self, tmp_path, monkeypatch):
        scenario = Scenario.load(SCENARIO)
        n_points = len(scenario.points())
        baseline = run_scenario(scenario, executor=ParallelExecutor(0), cache=False)
        seed = self._seed_with_task_faults(n_points)
        monkeypatch.setenv("REPRO_FAULTS", f"{self.PLAN},seed:{seed}")
        faulted = run_scenario(
            scenario,
            executor=ParallelExecutor(2, timeout=5.0, retries=3),
            cache=str(tmp_path / "cache"),
        )
        assert faulted.rows == baseline.rows
        assert faulted.timing is not None
        assert faulted.timing.retries > 0  # the plan actually injected faults

    def test_faulted_serial_sweep_matches_fault_free_serial(self, tmp_path, monkeypatch):
        scenario = Scenario.load(SCENARIO)
        baseline = run_scenario(scenario, executor=ParallelExecutor(0), cache=False)
        seed = self._seed_with_task_faults(len(scenario.points()))
        monkeypatch.setenv("REPRO_FAULTS", f"{self.PLAN},seed:{seed}")
        faulted = run_scenario(
            scenario,
            executor=ParallelExecutor(0, retries=3),
            cache=str(tmp_path / "cache"),
        )
        assert faulted.rows == baseline.rows

    def test_raw_grid_sweep_identical_under_faults(self, monkeypatch):
        grid = [(float(i), float(i) / 2) for i in range(7)]

        def evaluate(a, b):
            return {"a": a, "b": b, "s": a + b}

        baseline = run_sweep(("a", "b", "s"), grid, evaluate, executor=ParallelExecutor(0))
        seed = crashing_seed(len(grid))
        monkeypatch.setenv("REPRO_FAULTS", f"crash:0.5,seed:{seed}")
        faulted = run_sweep(
            ("a", "b", "s"), grid, evaluate, executor=ParallelExecutor(0, retries=2)
        )
        assert faulted.rows == baseline.rows
        assert faulted.timing is not None
        assert faulted.timing.retries > 0
