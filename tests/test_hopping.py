"""Unit tests for bandwidth sets, hop patterns, the optimizer, and schedules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hopping import (
    PAPER_PARABOLIC_WEIGHTS,
    BandwidthSet,
    HopSchedule,
    expected_bandwidth,
    expected_throughput,
    exponential_weights,
    linear_weights,
    maximin_score_db,
    optimize_parabolic_weights,
    optimize_weights,
    paper_bandwidths,
    parabolic_weights,
    pattern_weights,
)


class TestPaperBandwidths:
    def test_values(self):
        bws = paper_bandwidths()
        np.testing.assert_allclose(
            bws, [10e6, 5e6, 2.5e6, 1.25e6, 0.625e6, 0.3125e6, 0.15625e6]
        )

    def test_hop_range_64(self):
        bws = paper_bandwidths()
        assert bws.max() / bws.min() == pytest.approx(64.0)

    def test_bad_count_raises(self):
        with pytest.raises(ValueError):
            paper_bandwidths(count=0)


class TestBandwidthSet:
    def test_paper_default(self):
        bs = BandwidthSet.paper_default()
        assert len(bs) == 7
        assert bs.sample_rate == 20e6
        assert bs.hop_range == pytest.approx(64.0)

    def test_sps_values(self):
        bs = BandwidthSet.paper_default()
        np.testing.assert_array_equal(bs.sps_values(), [4, 8, 16, 32, 64, 128, 256])

    def test_sps_lookup(self):
        bs = BandwidthSet.paper_default()
        assert bs.sps(10e6) == 4
        assert bs.sps(0.15625e6) == 256

    def test_sps_unknown_bandwidth_raises(self):
        with pytest.raises(ValueError):
            BandwidthSet.paper_default().sps(3e6)

    def test_index_of(self):
        bs = BandwidthSet.paper_default()
        assert bs.index_of(5e6) == 1
        with pytest.raises(ValueError):
            bs.index_of(123.0)

    def test_min_max(self):
        bs = BandwidthSet.paper_default()
        assert bs.max_bandwidth == 10e6
        assert bs.min_bandwidth == pytest.approx(0.15625e6)

    def test_non_integer_sps_raises(self):
        with pytest.raises(ValueError):
            BandwidthSet((3e6,), sample_rate=20e6)

    def test_duplicate_bandwidths_raise(self):
        with pytest.raises(ValueError):
            BandwidthSet((1e6, 1e6), sample_rate=20e6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BandwidthSet((), sample_rate=20e6)

    def test_getitem(self):
        bs = BandwidthSet.paper_default()
        assert bs[0] == 10e6


class TestPatterns:
    BWS = paper_bandwidths()

    def test_linear_uniform(self):
        w = linear_weights(7)
        np.testing.assert_allclose(w, 1 / 7)

    def test_linear_table1_percentages(self):
        # Table 1: linear row is 14.3 % everywhere.
        w = linear_weights(7)
        np.testing.assert_allclose(w * 100, 14.2857, atol=0.01)

    def test_exponential_table1_percentages(self):
        # Table 1: 50.4, 25.2, 12.6, 6.3, 3.1, 1.6, 0.8 percent.
        w = exponential_weights(self.BWS) * 100
        np.testing.assert_allclose(w, [50.4, 25.2, 12.6, 6.3, 3.1, 1.6, 0.8], atol=0.05)

    def test_exponential_equal_airtime(self):
        # probability x dwell-time (prop. 1/B) is constant across the set
        w = exponential_weights(self.BWS)
        airtime = w / self.BWS
        np.testing.assert_allclose(airtime, airtime[0])

    def test_linear_average_bandwidth_paper_value(self):
        # Section 6.4.1: linear -> 2.83 MHz average bandwidth.
        avg = expected_bandwidth(self.BWS, linear_weights(7))
        assert avg == pytest.approx(2.83e6, rel=0.01)

    def test_exponential_average_bandwidth_paper_value(self):
        # Section 6.4.1: exponential -> 6.72 MHz.
        avg = expected_bandwidth(self.BWS, exponential_weights(self.BWS))
        assert avg == pytest.approx(6.72e6, rel=0.01)

    def test_linear_throughput_paper_value(self):
        # Section 6.4.1: 354 kb/s.
        t = expected_throughput(self.BWS, linear_weights(7))
        assert t == pytest.approx(354e3, rel=0.01)

    def test_exponential_throughput_paper_value(self):
        # Section 6.4.1: 840 kb/s.
        t = expected_throughput(self.BWS, exponential_weights(self.BWS))
        assert t == pytest.approx(840e3, rel=0.01)

    def test_paper_parabolic_throughput_value(self):
        # Section 6.4.1: parabolic -> 3.77 MHz average, 471 kb/s.
        avg = expected_bandwidth(self.BWS, PAPER_PARABOLIC_WEIGHTS)
        assert avg == pytest.approx(3.77e6, rel=0.02)
        assert expected_throughput(self.BWS, PAPER_PARABOLIC_WEIGHTS) == pytest.approx(471e3, rel=0.02)

    def test_parabolic_bathtub_shape(self):
        w = parabolic_weights(7)
        assert w[0] > w[3] and w[6] > w[3]
        assert w.sum() == pytest.approx(1.0)

    def test_parabolic_custom_vertex(self):
        w = parabolic_weights(7, vertex=0.0)
        assert np.argmax(w) == 6  # mass pushed to the far end

    def test_parabolic_bad_params_raise(self):
        with pytest.raises(ValueError):
            parabolic_weights(0)
        with pytest.raises(ValueError):
            parabolic_weights(7, floor=-1.0)
        with pytest.raises(ValueError):
            parabolic_weights(7, steepness=0.0)

    def test_pattern_weights_lookup(self):
        np.testing.assert_allclose(pattern_weights("linear", self.BWS), linear_weights(7))
        np.testing.assert_allclose(pattern_weights("exponential", self.BWS), exponential_weights(self.BWS))
        np.testing.assert_allclose(pattern_weights("parabolic", self.BWS), PAPER_PARABOLIC_WEIGHTS)

    def test_pattern_weights_parabolic_other_size(self):
        w = pattern_weights("parabolic", paper_bandwidths(count=5))
        assert w.size == 5

    def test_pattern_weights_unknown_raises(self):
        with pytest.raises(ValueError):
            pattern_weights("gaussian", self.BWS)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            expected_bandwidth(self.BWS, [0.5, 0.5])

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=15, deadline=None)
    def test_weights_always_normalized(self, n):
        assert linear_weights(n).sum() == pytest.approx(1.0)
        assert parabolic_weights(n).sum() == pytest.approx(1.0)


class TestOptimizer:
    BWS = paper_bandwidths()

    def test_maximin_score_finite(self):
        s = maximin_score_db(linear_weights(7), self.BWS)
        assert np.isfinite(s) and s > 0

    def test_exponential_weakest_against_itself_shape(self):
        # The paper's qualitative finding: a bathtub/parabolic prior beats
        # both uniform and exponential in the worst case.
        s_lin = maximin_score_db(linear_weights(7), self.BWS)
        s_par = maximin_score_db(PAPER_PARABOLIC_WEIGHTS, self.BWS)
        assert s_par >= s_lin - 1e-9

    def test_optimize_parabolic_improves_on_linear(self):
        opt = optimize_parabolic_weights(self.BWS, num_trials=500, seed=1)
        s_lin = maximin_score_db(linear_weights(7), self.BWS)
        assert opt.score_db >= s_lin

    def test_optimized_weights_valid(self):
        opt = optimize_parabolic_weights(self.BWS, num_trials=200, seed=2)
        assert opt.weights.sum() == pytest.approx(1.0)
        assert np.all(opt.weights >= 0)
        assert opt.worst_jammer_bandwidth in self.BWS

    def test_unconstrained_at_least_as_good_as_parabolic(self):
        par = optimize_parabolic_weights(self.BWS, num_trials=500, seed=3)
        free = optimize_weights(self.BWS, num_trials=1000, refine_steps=30, seed=3)
        assert free.score_db >= par.score_db - 0.5

    def test_score_mismatched_weights_raise(self):
        with pytest.raises(ValueError):
            maximin_score_db([0.5, 0.5], self.BWS)

    def test_bad_trials_raise(self):
        with pytest.raises(ValueError):
            optimize_parabolic_weights(self.BWS, num_trials=0)


class TestHopSchedule:
    def make(self, **kw):
        defaults = dict(bandwidth_set=BandwidthSet.paper_default(), weights="linear", symbols_per_hop=4, seed=42)
        defaults.update(kw)
        return HopSchedule(**defaults)

    def test_deterministic_same_seed(self):
        a, b = self.make(), self.make()
        np.testing.assert_array_equal(a.bandwidth_sequence(100), b.bandwidth_sequence(100))

    def test_different_seeds_differ(self):
        a, b = self.make(seed=1), self.make(seed=2)
        assert not np.array_equal(a.bandwidth_sequence(100), b.bandwidth_sequence(100))

    def test_packets_use_independent_streams(self):
        sched = self.make()
        a = sched.bandwidth_sequence(50, packet_index=0)
        b = sched.bandwidth_sequence(50, packet_index=1)
        assert not np.array_equal(a, b)

    def test_bandwidths_from_set(self):
        sched = self.make()
        seq = sched.bandwidth_sequence(500)
        assert set(seq) <= set(sched.bandwidth_set.bandwidths)

    def test_weights_empirically_respected(self):
        w = np.array([0.9, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0])
        sched = self.make(weights=w)
        seq = sched.bandwidth_sequence(2000)
        frac_widest = np.mean(seq == 10e6)
        assert frac_widest == pytest.approx(0.9, abs=0.05)

    def test_segments_cover_frame_exactly(self):
        sched = self.make(symbols_per_hop=4)
        segs = sched.segments(22)
        assert sum(s.num_symbols for s in segs) == 22
        assert segs[0].start_symbol == 0
        assert segs[-1].num_symbols == 2  # 22 = 5*4 + 2
        starts = [s.start_symbol for s in segs]
        assert starts == [0, 4, 8, 12, 16, 20]

    def test_segments_sps_consistent(self):
        sched = self.make()
        for seg in sched.segments(40):
            assert seg.sps == sched.bandwidth_set.sps(seg.bandwidth)

    def test_sample_counts(self):
        sched = self.make(symbols_per_hop=2)
        counts = sched.sample_counts(4, chips_per_symbol=32)
        segs = sched.segments(4)
        expected = [s.num_symbols * 16 * s.sps for s in segs]
        assert counts == expected

    def test_fixed_schedule(self):
        bs = BandwidthSet.paper_default()
        sched = HopSchedule.fixed(bs, 2.5e6)
        assert sched.is_fixed
        seq = sched.bandwidth_sequence(100)
        assert np.all(seq == 2.5e6)
        segs = sched.segments(50)
        assert len(segs) == 1 and segs[0].num_symbols == 50

    def test_fixed_unknown_bandwidth_raises(self):
        with pytest.raises(ValueError):
            HopSchedule.fixed(BandwidthSet.paper_default(), 3e6)

    def test_pattern_by_name(self):
        sched = self.make(weights="exponential")
        np.testing.assert_allclose(
            sched.hop_weights, exponential_weights(paper_bandwidths())
        )

    def test_bad_weights_length_raises(self):
        with pytest.raises(ValueError):
            self.make(weights=np.array([0.5, 0.5]))

    def test_bad_symbols_per_hop_raises(self):
        with pytest.raises(ValueError):
            self.make(symbols_per_hop=0)

    def test_zero_symbols(self):
        assert self.make().segments(0) == []

    def test_odd_chips_per_symbol_raises(self):
        with pytest.raises(ValueError):
            self.make().sample_counts(4, chips_per_symbol=31)

    def test_negative_hops_raise(self):
        with pytest.raises(ValueError):
            self.make().bandwidth_sequence(-1)
