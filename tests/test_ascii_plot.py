"""Unit tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.utils import format_table, histogram_bar, line_plot


class TestLinePlot:
    def test_basic_render(self):
        out = line_plot([("y=x", [0, 1, 2], [0, 1, 2])], width=20, height=5)
        assert "y=x" in out
        assert "|" in out and "-" in out

    def test_title_and_labels(self):
        out = line_plot(
            [("s", [1, 2], [3, 4])], title="My Plot", xlabel="time", ylabel="value"
        )
        assert "My Plot" in out
        assert "x: time" in out and "y: value" in out

    def test_multiple_series_get_distinct_markers(self):
        out = line_plot([("a", [0, 1], [0, 1]), ("b", [0, 1], [1, 0])], width=10, height=5)
        assert "o a" in out and "x b" in out

    def test_log_axes(self):
        out = line_plot(
            [("s", [1, 10, 100], [1e-6, 1e-3, 1.0])], logx=True, logy=True, width=30, height=8
        )
        assert "1e-06" in out or "1.00e-06" in out or "1e-0" in out

    def test_log_axis_drops_nonpositive(self):
        out = line_plot([("s", [0.0, 1.0, 10.0], [1.0, 2.0, 3.0])], logx=True)
        assert "s" in out  # zero x silently dropped, no crash

    def test_nan_points_skipped(self):
        out = line_plot([("s", [0, 1, 2], [0, float("nan"), 2])], width=10, height=4)
        assert "s" in out

    def test_constant_series(self):
        out = line_plot([("flat", [0, 1, 2], [5, 5, 5])], width=10, height=4)
        assert "flat" in out

    def test_empty_series_list_raises(self):
        with pytest.raises(ValueError):
            line_plot([])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            line_plot([("s", [1, 2], [1])])

    def test_grid_dimensions(self):
        out = line_plot([("s", [0, 1], [0, 1])], width=30, height=7)
        plot_rows = [l for l in out.splitlines() if l.rstrip().endswith("|")]
        assert len(plot_rows) == 7


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert lines[1].count("-") > 0
        assert len(lines) == 4

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159265]])
        assert "3.142" in out

    def test_nan_rendering(self):
        out = format_table(["v"], [[float("nan")]])
        assert "nan" in out

    def test_title(self):
        out = format_table(["a"], [[1]], title="T!")
        assert out.splitlines()[0] == "T!"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_wide_content_adapts(self):
        out = format_table(["x"], [["a-very-long-cell-value"]])
        assert "a-very-long-cell-value" in out


class TestHistogramBar:
    def test_bars_scale(self):
        out = histogram_bar(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title(self):
        out = histogram_bar(["a"], [1.0], title="H")
        assert out.splitlines()[0] == "H"

    def test_zero_values(self):
        out = histogram_bar(["a"], [0.0])
        assert "a" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            histogram_bar(["a"], [1.0, 2.0])
