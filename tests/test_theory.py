"""Unit tests for the analytical results (Section 5 + Appendix equations)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import theory
from repro.hopping import paper_bandwidths
from repro.utils import db_to_linear, linear_to_db

scipy_special = pytest.importorskip("scipy.special")


class TestCorrelatorSnr:
    def test_no_filter_formula(self):
        # eq. (7): SNR = L / (rho_j(0) + sigma_n^2)
        assert theory.correlator_snr_no_filter(100, 100.0, 0.01) == pytest.approx(100 / 100.01)

    def test_no_filter_no_interference(self):
        assert theory.correlator_snr_no_filter(100, 0.0, 0.01) == pytest.approx(10000.0)

    def test_no_filter_zero_denominator(self):
        assert theory.correlator_snr_no_filter(100, 0.0, 0.0) == float("inf")

    def test_identity_filter_matches_no_filter(self):
        # h = delta at lag 0 -> eq. (6) must reduce to eq. (7).
        taps = np.zeros(8)
        taps[0] = 1.0
        rho = np.zeros(8)
        rho[0] = 50.0  # white-ish jammer: power 50, no correlation at lag>0
        snr_filt = theory.correlator_snr_with_filter(taps, 100, rho, 0.01)
        snr_none = theory.correlator_snr_no_filter(100, 50.0, 0.01)
        assert snr_filt == pytest.approx(snr_none)

    def test_filter_suppressing_correlated_jammer_improves(self):
        # A DC jammer (rho_j constant over lags) vs a two-tap differencer.
        k = 16
        rho = np.full(k, 100.0)  # perfectly correlated (DC) interference
        taps = np.zeros(k)
        taps[0], taps[1] = 1.0, -1.0  # notch at DC
        snr_filt = theory.correlator_snr_with_filter(taps, 100, rho, 0.01)
        snr_none = theory.correlator_snr_no_filter(100, 100.0, 0.01)
        assert snr_filt > 10 * snr_none

    def test_callable_autocorrelation(self):
        taps = np.array([1.0, 0.0])
        snr = theory.correlator_snr_with_filter(taps, 10, lambda lag: 5.0 if lag == 0 else 0.0, 0.0)
        assert snr == pytest.approx(2.0)

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            theory.correlator_snr_with_filter(np.array([]), 10, np.ones(4), 0.01)
        with pytest.raises(ValueError):
            theory.correlator_snr_with_filter(np.ones(4), 0, np.ones(4), 0.01)
        with pytest.raises(ValueError):
            theory.correlator_snr_with_filter(np.ones(4), 10, np.ones(2), 0.01)
        with pytest.raises(ValueError):
            theory.correlator_snr_no_filter(0, 1.0, 1.0)


class TestImprovementFactor:
    def test_matched_bandwidth_gives_unity(self):
        assert theory.improvement_factor(1e6, 1e6, 100.0) == pytest.approx(1.0)

    def test_very_narrow_jammer_saturates_at_jammer_power(self):
        # Figure 7: for Bp/Bj >> 1 gamma converges near rho_j(0).
        g = theory.improvement_factor(10e6, 0.01e6, 100.0, 0.01)
        assert g == pytest.approx(100.0, rel=0.05)

    def test_wideband_regime_linear_in_ratio(self):
        # Figure 7: for 0.01 < Bp/Bj < 1 gamma ~= Bj/Bp, power-independent.
        for power in [10.0, 100.0, 1000.0]:
            g = theory.improvement_factor(1e6, 10e6, power, 0.01)
            assert linear_to_db(g) == pytest.approx(10.0, abs=1.0)

    def test_wideband_100x_is_20db(self):
        g = theory.improvement_factor(0.1e6, 10e6, 1000.0, 0.01)
        assert linear_to_db(g) == pytest.approx(20.0, abs=0.5)

    def test_eq10_notch_region_gamma_one(self):
        # Just-narrower jammer than eq. (10) threshold: filter withheld.
        rho, sn = 100.0, 0.01
        threshold = theory.narrowband_filter_useful_threshold(rho, sn)
        bp = 1e6
        bj = (threshold + 0.005) * bp  # just above the useful region
        assert bj < bp
        assert theory.improvement_factor(bp, bj, rho, sn) == 1.0

    def test_weak_jammer_never_filters(self):
        # rho_j <= 1: excision can only hurt, gamma stays 1 for Bj < Bp.
        assert theory.narrowband_filter_useful_threshold(0.5, 0.01) == 0.0
        assert theory.improvement_factor(1e6, 0.1e6, 0.5, 0.01) == 1.0

    def test_gamma_never_below_one(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            bp = 10 ** rng.uniform(4, 7)
            bj = 10 ** rng.uniform(4, 7)
            power = 10 ** rng.uniform(-1, 3)
            g = theory.improvement_factor(bp, bj, power, 0.01)
            assert g >= 1.0

    def test_asymmetry_of_figure7(self):
        # Stronger gains on the narrow-jammer side than the wide side at
        # equal offset, for a strong jammer (30 dB).
        power = 1000.0
        g_narrow = theory.improvement_factor(10e6, 10e6 / 64, power, 0.01)
        g_wide = theory.improvement_factor(10e6 / 64, 10e6, power, 0.01)
        assert g_narrow > g_wide

    def test_vectorized_broadcast(self):
        bp = np.array([1e6, 2e6])
        bj = 1e6
        g = theory.improvement_factor(bp, bj, 100.0)
        assert g.shape == (2,)
        assert g[0] == 1.0 and g[1] > 1.0

    def test_db_wrapper(self):
        g_db = theory.improvement_factor_db(0.1e6, 10e6, 20.0, 0.01)
        g = theory.improvement_factor(0.1e6, 10e6, 100.0, 0.01)
        assert g_db == pytest.approx(linear_to_db(g))

    def test_bad_bandwidths_raise(self):
        with pytest.raises(ValueError):
            theory.improvement_factor(-1.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            theory.improvement_factor(1.0, 0.0, 10.0)

    @given(
        st.floats(min_value=1e4, max_value=1e7),
        st.floats(min_value=1e4, max_value=1e7),
        st.floats(min_value=0.0, max_value=1e4),
    )
    @settings(max_examples=50, deadline=None)
    def test_gamma_at_least_one_property(self, bp, bj, power):
        assert theory.improvement_factor(bp, bj, power, 0.01) >= 1.0


class TestBer:
    def test_matches_scipy_erfc(self):
        snrs = np.array([0.1, 1.0, 4.0, 10.0, 25.0])
        ours = theory.ber_qpsk(snrs)
        reference = 0.5 * scipy_special.erfc(np.sqrt(snrs / 2))
        np.testing.assert_allclose(ours, reference, rtol=1e-6)

    def test_zero_snr_is_half(self):
        assert theory.ber_qpsk(0.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        snrs = np.linspace(0, 30, 50)
        pb = theory.ber_qpsk(snrs)
        assert np.all(np.diff(pb) <= 0)

    def test_negative_snr_raises(self):
        with pytest.raises(ValueError):
            theory.ber_qpsk(-1.0)

    def test_ber_from_ebno_jammer_dominated_floor(self):
        # Figure 9's DSSS curve: at SJR -20 dB and L = 20 dB the BER stays
        # near coin-flip territory even at Eb/N0 = 15 dB.
        pb = theory.ber_from_ebno(15.0, -20.0, 20.0, gamma=1.0)
        assert pb > 0.1

    def test_ber_from_ebno_gamma_rescues(self):
        pb_plain = theory.ber_from_ebno(15.0, -20.0, 20.0, gamma=1.0)
        pb_filtered = theory.ber_from_ebno(15.0, -20.0, 20.0, gamma=db_to_linear(20.0))
        assert pb_filtered < pb_plain / 100

    def test_ber_from_ebno_noise_limited_regime(self):
        # Without jamming the curve follows the AWGN waterfall.
        pb_low = theory.ber_from_ebno(0.0, 300.0, 20.0)
        pb_high = theory.ber_from_ebno(18.0, 300.0, 20.0)
        assert pb_high < 1e-10
        assert pb_low > 1e-3


class TestBhssBer:
    BWS = paper_bandwidths(count=9)  # log-spaced, range 256

    def test_fixed_jammer_scalar(self):
        w = np.full(self.BWS.size, 1 / self.BWS.size)
        pb = theory.bhss_ber(15.0, -20.0, 20.0, self.BWS, w, jammer_bandwidths=self.BWS[0])
        assert 0 <= pb <= 0.5

    def test_bhss_beats_dsss_figure9(self):
        w = np.full(self.BWS.size, 1 / self.BWS.size)
        pb_dsss = theory.ber_from_ebno(15.0, -20.0, 20.0)
        for bj in [self.BWS[0], self.BWS[4], self.BWS[-1]]:
            pb_bhss = theory.bhss_ber(15.0, -20.0, 20.0, self.BWS, w, bj)
            assert pb_bhss < pb_dsss

    def test_random_jammer_between_extremes(self):
        # Figure 9: the random-hopping jammer sits between the best and
        # worst fixed-bandwidth jammers.
        w = np.full(self.BWS.size, 1 / self.BWS.size)
        fixed = [
            theory.bhss_ber(15.0, -20.0, 20.0, self.BWS, w, bj) for bj in self.BWS
        ]
        random_jam = theory.bhss_ber(
            15.0, -20.0, 20.0, self.BWS, w, self.BWS, jammer_weights=w
        )
        assert min(fixed) <= random_jam <= max(fixed)

    def test_ber_curve_decreases_with_ebno(self):
        w = np.full(self.BWS.size, 1 / self.BWS.size)
        ebno = np.linspace(0, 20, 11)
        pb = theory.bhss_ber(ebno, -20.0, 20.0, self.BWS, w, self.BWS[2])
        assert np.all(np.diff(pb) <= 1e-15)

    def test_figure10_maximum_exists_for_some_sjr(self):
        # Figure 10: BER vs Bj has an interior maximum whose location
        # depends on the SJR.
        w = np.full(self.BWS.size, 1 / self.BWS.size)
        bjs = paper_bandwidths(count=13)
        curves = {}
        for sjr in [-10.0, -15.0, -20.0]:
            curves[sjr] = np.array(
                [theory.bhss_ber(15.0, sjr, 20.0, self.BWS, w, bj) for bj in bjs]
            )
        # stronger jamming -> higher peak BER
        assert curves[-20.0].max() > curves[-10.0].max()

    def test_mismatched_weights_raise(self):
        with pytest.raises(ValueError):
            theory.bhss_ber(10.0, -20.0, 20.0, self.BWS, [0.5, 0.5], 1e6)


class TestThroughput:
    def test_packet_error_rate_formula(self):
        # eq. (18) with small numbers checks exactly
        assert theory.packet_error_rate(0.5, 2) == pytest.approx(0.75)
        assert theory.packet_error_rate(0.0, 100) == 0.0
        assert theory.packet_error_rate(1.0, 1) == 1.0

    def test_packet_error_rate_tiny_ber_stable(self):
        pp = theory.packet_error_rate(1e-12, 4000)
        assert pp == pytest.approx(4e-9, rel=0.01)

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            theory.packet_error_rate(0.5, 0)
        with pytest.raises(ValueError):
            theory.packet_error_rate(1.5, 10)

    def test_normalized_throughput_limits(self):
        assert theory.normalized_throughput(0.0, 1000) == pytest.approx(1.0)
        assert theory.normalized_throughput(0.5, 1000) == pytest.approx(0.0, abs=1e-6)

    def test_equal_rate_processing_gain_paper_value(self):
        # Section 5.4: L_BHSS = 20 dB and hop range 100 -> ~25.4 dB for DSSS.
        bws = paper_bandwidths(max_bandwidth=1.0, count=9)  # range 256... use 100-range set
        # Build a log-spaced set with range exactly 100:
        bws = np.logspace(0, -2, 9)
        w = np.full(9, 1 / 9)
        l_dsss = theory.equal_rate_processing_gain_db(20.0, bws, w)
        assert l_dsss == pytest.approx(25.4, abs=0.7)

    def test_throughput_curve_dsss_flat_under_strong_jamming(self):
        ebno = np.linspace(0, 20, 5)
        t = theory.throughput_curve(ebno, -20.0, 4000, 20.0)
        assert np.all(t < 0.1)

    def test_throughput_curve_bhss_rises(self):
        bws = np.logspace(0, -2, 9)
        w = np.full(9, 1 / 9)
        ebno = np.linspace(0, 30, 7)
        t = theory.throughput_curve(
            ebno, -20.0, 4000, 20.0, bandwidths=bws, hop_weights=w, jammer_bandwidths=0.01
        )
        # the hop band matched to the jammer (1/9 of packets) never
        # recovers, so the ceiling is 8/9
        assert t[-1] > 0.85
        assert np.all(np.diff(t) >= -1e-9)

    def test_throughput_scalar_input(self):
        t = theory.throughput_curve(10.0, -20.0, 100, 20.0)
        assert isinstance(t, float)
