"""Property-based invariants of the adaptive jammer zoo.

Hypothesis sweeps the constructor and observation space of the adaptive
attackers for the contracts every driver silently relies on:

* **unit power** — any emitting jammer's waveform has mean power 1 (the
  paper's budgeted-power attacker model; the medium rescales by measured
  power, so violations skew every SJR in the matrix);
* **dtype discipline** — waveforms are ``complex128``, derived scalars
  ``float``/``int``, whatever the inputs;
* **latency monotonicity** — a latent reactive jammer with more
  turnaround never jams more samples of the same observation at the
  same seed;
* **replay fidelity** — the single-tap repeater's output is always a
  delayed scaled copy of the victim, for arbitrary victim waveforms.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.jamming import (
    FollowerJammer,
    LatentReactiveJammer,
    MultiToneJammer,
    RepeaterJammer,
)
from repro.utils.units import signal_power

FS = 20e6

SLOW = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: victim waveforms: random complex bursts with a quiet head, so the
#: energy detector has something real to find.
victim_waves = st.integers(min_value=0, max_value=2**31).map(
    lambda seed: _make_victim(seed)
)


def _make_victim(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    head = int(rng.integers(0, 512))
    body = 1024 + int(rng.integers(0, 1024))
    wave = np.zeros(head + body, dtype=complex)
    wave[head:] = rng.standard_normal(body) + 1j * rng.standard_normal(body)
    return wave / np.sqrt(signal_power(wave))


class TestUnitPowerAndDtype:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        bandwidth=st.floats(min_value=1e5, max_value=10e6),
        turnaround=st.integers(min_value=0, max_value=1024),
    )
    @SLOW
    def test_latent_reactive_budget_and_dtype(self, seed, bandwidth, turnaround):
        jammer = LatentReactiveJammer(FS, bandwidth, turnaround_samples=turnaround)
        victim = _make_victim(seed)
        jammer.observe_victim(victim, [(victim.size, bandwidth)])
        wave = jammer.waveform(victim.size, np.random.default_rng(seed))
        assert wave.dtype == np.complex128
        assert wave.size == victim.size
        if np.any(wave != 0):
            # zero head + boosted tail average to exactly the unit budget
            assert signal_power(wave) == pytest.approx(1.0)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        delay=st.integers(min_value=0, max_value=256),
        taps=st.integers(min_value=1, max_value=8),
    )
    @SLOW
    def test_repeater_budget_and_dtype(self, seed, delay, taps):
        jammer = RepeaterJammer(delay_samples=delay, num_taps=taps)
        victim = _make_victim(seed)
        jammer.observe_victim(victim, [(victim.size, 1e6)])
        wave = jammer.waveform(victim.size, np.random.default_rng(seed))
        assert wave.dtype == np.complex128
        if np.any(wave != 0):
            assert signal_power(wave) == pytest.approx(1.0)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        placement=st.floats(min_value=1e5, max_value=10e6),
        tones=st.integers(min_value=1, max_value=12),
        n=st.integers(min_value=1, max_value=4096),
    )
    @SLOW
    def test_multitone_budget_and_dtype(self, seed, placement, tones, n):
        jammer = MultiToneJammer(FS, placement, num_tones=tones)
        wave = jammer.waveform(n, np.random.default_rng(seed))
        assert wave.dtype == np.complex128
        assert wave.size == n
        assert signal_power(wave) == pytest.approx(1.0)
        assert np.all(np.abs(jammer.tone_frequencies()) <= placement / 2)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        initial=st.floats(min_value=1e5, max_value=10e6),
        lr=st.floats(min_value=0.01, max_value=1.0),
        noise_db=st.floats(min_value=0.0, max_value=6.0),
    )
    @SLOW
    def test_follower_budget_and_dtype(self, seed, initial, lr, noise_db):
        jammer = FollowerJammer(
            FS, initial, learning_rate=lr, sense_noise_db=noise_db
        )
        victim = _make_victim(seed)
        jammer.observe_victim(victim, [(victim.size, 1.25e6)])
        wave = jammer.waveform(2048, np.random.default_rng(seed))
        assert wave.dtype == np.complex128
        assert signal_power(wave) == pytest.approx(1.0, rel=1e-6)
        assert isinstance(jammer.bandwidth_estimate, float)


class TestLatencyMonotonicity:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        tau_small=st.integers(min_value=0, max_value=2048),
        extra=st.integers(min_value=0, max_value=2048),
    )
    @SLOW
    def test_more_turnaround_never_jams_more_samples(self, seed, tau_small, extra):
        victim = _make_victim(seed)
        counts = []
        for tau in (tau_small, tau_small + extra):
            jammer = LatentReactiveJammer(FS, 2.5e6, turnaround_samples=tau)
            jammer.observe_victim(victim, [(victim.size, 2.5e6)])
            wave = jammer.waveform(victim.size, np.random.default_rng(seed))
            counts.append(int(np.count_nonzero(wave)))
        assert counts[1] <= counts[0]

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        tau=st.integers(min_value=0, max_value=4096),
    )
    @SLOW
    def test_jam_start_is_detection_plus_turnaround(self, seed, tau):
        victim = _make_victim(seed)
        jammer = LatentReactiveJammer(FS, 2.5e6, turnaround_samples=tau)
        jammer.observe_victim(victim, [(victim.size, 2.5e6)])
        detect = jammer.detect_index()
        start = jammer.jam_start(victim.size)
        if detect is None:
            assert start == victim.size
        else:
            assert start == min(detect + tau, victim.size)


class TestReplayFidelity:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        delay=st.integers(min_value=0, max_value=512),
    )
    @SLOW
    def test_single_tap_repeat_is_a_delayed_scaled_copy(self, seed, delay):
        victim = _make_victim(seed)
        jammer = RepeaterJammer(delay_samples=delay, num_taps=1)
        jammer.observe_victim(victim, [(victim.size, 1e6)])
        n = victim.size
        wave = jammer.waveform(n, np.random.default_rng(seed))
        assert np.all(wave[:delay] == 0)
        keep = n - delay
        if keep <= 0 or not np.any(wave):
            return
        replay, ref = wave[delay:], victim[:keep]
        anchor = int(np.argmax(np.abs(ref)))
        scale = replay[anchor] / ref[anchor]
        np.testing.assert_allclose(replay, scale * ref, rtol=1e-9, atol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @SLOW
    def test_same_stream_same_waveform(self, seed):
        victim = _make_victim(seed)
        waves = []
        for _ in range(2):
            jammer = RepeaterJammer(delay_samples=32, num_taps=4)
            jammer.observe_victim(victim, [(victim.size, 1e6)])
            waves.append(jammer.waveform(victim.size, np.random.default_rng(seed)))
        np.testing.assert_array_equal(waves[0], waves[1])


class TestObservationContract:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @SLOW
    def test_observation_is_replaced_not_accumulated(self, seed):
        first = _make_victim(seed)
        second = _make_victim(seed + 1)
        jammer = RepeaterJammer(delay_samples=0, num_taps=1)
        jammer.observe_victim(first, [(first.size, 1e6)])
        jammer.observe_victim(second, [(second.size, 1e6)])
        wave = jammer.waveform(second.size, np.random.default_rng(0))
        anchor = int(np.argmax(np.abs(second)))
        scale = wave[anchor] / second[anchor]
        np.testing.assert_allclose(wave, scale * second, rtol=1e-9, atol=1e-9)

    @given(
        lengths=st.lists(
            st.integers(min_value=1, max_value=4096), min_size=1, max_size=6
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @SLOW
    def test_follower_draw_count_tracks_the_profile(self, lengths, seed):
        # One sensing draw per profile segment: two followers fed the
        # same profile through differently-sized waveform calls stay in
        # lockstep — the substream contract batching relies on.
        profile = [(n, 1.25e6 * (1 + i % 3)) for i, n in enumerate(lengths)]
        estimates = []
        for _ in range(2):
            jammer = FollowerJammer(FS, 10e6, sense_noise_db=2.0)
            rng = np.random.default_rng(seed)
            jammer.observe_victim(np.ones(64, dtype=complex), profile)
            jammer.waveform(64, rng)
            estimates.append(jammer.bandwidth_estimate)
        assert estimates[0] == estimates[1]

    def test_invalid_profile_rejected(self):
        jammer = FollowerJammer(FS, 10e6)
        with pytest.raises(ValueError, match="positive"):
            jammer.observe_victim(np.ones(8, dtype=complex), [(8, 0.0)])
        with pytest.raises(ValueError, match=">= 0"):
            jammer.observe_victim(np.ones(8, dtype=complex), [(-1, 1e6)])
