"""Unit tests for the eq.-3 excision (whitening) filter."""

import numpy as np
import pytest

from repro.dsp import (
    apply_fir,
    design_excision_filter,
    excision_taps_from_psd,
    frequency_response,
    welch_psd,
    whiten,
)
from repro.dsp.mixing import frequency_shift
from repro.utils import signal_power

FS = 20e6


def white_noise(n, power=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.sqrt(power / 2) * (rng.normal(size=n) + 1j * rng.normal(size=n))


def narrowband_jammer(n, power, centre, bw, seed=1):
    from repro.dsp import lowpass_taps

    base = apply_fir(white_noise(n, seed=seed), lowpass_taps(301, bw / 2, FS))
    shifted = frequency_shift(base, centre, FS)
    return shifted / np.sqrt(signal_power(shifted)) * np.sqrt(power)


class TestTapsFromPsd:
    def test_length_matches_psd(self):
        psd = np.ones(128)
        assert excision_taps_from_psd(psd).size == 128

    def test_flat_psd_gives_identity_like_filter(self):
        # Whitening an already-white spectrum must be (nearly) a pure delay:
        # |H| is exactly 1 on the K design frequencies, and the interpolated
        # response between bins stays close to 1 (truncation ripple only).
        taps = excision_taps_from_psd(np.ones(64))
        np.testing.assert_allclose(np.abs(np.fft.fft(taps)), 1.0, atol=1e-9)
        # Between bins the even-K filter is a half-sample delay, whose
        # truncated response ripples mildly and notches only at Nyquist.
        _, resp = frequency_response(taps, 512)
        mags = np.abs(resp)
        assert np.mean((mags > 0.7) & (mags < 1.3)) > 0.97

    def test_attenuates_strong_bins(self):
        k = 256
        psd = np.ones(k)
        jam_bins = slice(20, 30)
        psd[jam_bins] = 10_000.0  # 40 dB jammer
        taps = excision_taps_from_psd(psd)
        h_dft = np.fft.fft(taps)
        jam_gain = np.mean(np.abs(h_dft[jam_bins]))
        clean_gain = np.median(np.abs(h_dft))
        assert jam_gain < 0.02 * clean_gain  # ~1/sqrt(10000) = 0.01

    def test_reciprocal_sqrt_shape(self):
        k = 64
        rng = np.random.default_rng(3)
        psd = rng.uniform(0.5, 2.0, size=k)
        taps = excision_taps_from_psd(psd, normalize=False)
        h_dft = np.fft.fft(taps)
        np.testing.assert_allclose(np.abs(h_dft), 1 / np.sqrt(psd), rtol=1e-9)

    def test_linear_phase_term(self):
        # Unnormalized flat-PSD taps must be a delta at (K-1)/2.
        k = 33
        taps = excision_taps_from_psd(np.ones(k), normalize=False)
        assert np.argmax(np.abs(taps)) == (k - 1) // 2

    def test_normalized_median_gain_unity(self):
        psd = np.ones(128)
        psd[10:14] = 500.0
        taps = excision_taps_from_psd(psd)
        h_dft = np.abs(np.fft.fft(taps))
        assert np.median(h_dft) == pytest.approx(1.0, rel=1e-6)

    def test_zero_psd_raises(self):
        with pytest.raises(ValueError):
            excision_taps_from_psd(np.zeros(16))

    def test_negative_psd_raises(self):
        with pytest.raises(ValueError):
            excision_taps_from_psd(np.array([1.0, -1.0, 1.0]))

    def test_scalar_psd_raises(self):
        with pytest.raises(ValueError):
            excision_taps_from_psd(np.array([1.0]))

    def test_floor_bounds_gain_on_empty_bins(self):
        psd = np.ones(64)
        psd[5] = 0.0
        taps = excision_taps_from_psd(psd, floor_ratio=1e-6)
        assert np.all(np.isfinite(taps))


class TestDesignAndApply:
    def test_whitens_tone_jammer(self):
        n = np.arange(65536)
        signal = white_noise(65536, power=1.0, seed=5)  # stand-in for PN chips
        jammer = 10.0 * np.exp(2j * np.pi * 2e6 / FS * n)  # 20 dB tone
        received = signal + jammer
        cleaned = whiten(received, FS, num_taps=256)
        # Jammer power was 100x the signal; after whitening the residual
        # total power should be close to the signal power alone.
        assert signal_power(cleaned) < 3.0 * signal_power(signal)

    def test_improves_sinr_for_narrowband_noise_jammer(self):
        n_samp = 131072
        signal = white_noise(n_samp, power=1.0, seed=7)
        jammer = narrowband_jammer(n_samp, power=100.0, centre=-3e6, bw=1e6, seed=8)
        received = signal + jammer
        taps = design_excision_filter(received, FS, num_taps=512)
        cleaned = apply_fir(received, taps, mode="compensated")
        jammer_out = apply_fir(jammer, taps, mode="compensated")
        signal_out = apply_fir(signal, taps, mode="compensated")
        sinr_before = signal_power(signal) / signal_power(jammer)
        sinr_after = signal_power(signal_out) / signal_power(jammer_out)
        assert sinr_after > 20 * sinr_before  # > 13 dB improvement

    def test_preserves_desired_wideband_signal(self):
        n_samp = 65536
        signal = white_noise(n_samp, power=1.0, seed=9)
        jammer = narrowband_jammer(n_samp, power=50.0, centre=1e6, bw=0.5e6, seed=10)
        taps = design_excision_filter(signal + jammer, FS, num_taps=512)
        signal_out = apply_fir(signal, taps, mode="compensated")
        # The whitener must not gut the flat desired signal: most survives.
        assert signal_power(signal_out) > 0.5 * signal_power(signal)

    def test_no_jammer_near_transparent(self):
        signal = white_noise(32768, power=1.0, seed=11)
        cleaned = whiten(signal, FS, num_taps=256)
        assert signal_power(cleaned) == pytest.approx(signal_power(signal), rel=0.3)

    def test_num_taps_too_small_raises(self):
        with pytest.raises(ValueError):
            design_excision_filter(white_noise(1024), FS, num_taps=4)

    def test_output_spectrum_is_whitened(self):
        n_samp = 131072
        received = white_noise(n_samp, seed=12) + narrowband_jammer(
            n_samp, power=200.0, centre=0.0, bw=1e6, seed=13
        )
        cleaned = whiten(received, FS, num_taps=512)
        _, psd = welch_psd(cleaned, FS, nperseg=512)
        # flatness: peak-to-median ratio collapses after whitening
        _, psd_before = welch_psd(received, FS, nperseg=512)
        ratio_before = psd_before.max() / np.median(psd_before)
        ratio_after = psd.max() / np.median(psd)
        assert ratio_after < ratio_before / 10
