"""Unit tests for the empirical FHSS baseline link."""

import numpy as np
import pytest

from repro.core import FHSSLink, FHSSLinkConfig
from repro.dsp import welch_psd
from repro.jamming import BandlimitedNoiseJammer, ToneJammer


def make_link(**kw):
    defaults = dict(payload_bytes=8, seed=9)
    defaults.update(kw)
    return FHSSLink(FHSSLinkConfig(**defaults))


class TestConfig:
    def test_channel_bandwidth(self):
        cfg = FHSSLinkConfig(hop_band=10e6, num_channels=8)
        assert cfg.channel_bandwidth == pytest.approx(1.25e6)
        assert cfg.sps == 32

    def test_processing_gain_combines_spread_and_hop(self):
        cfg = FHSSLinkConfig(num_channels=8)
        assert cfg.processing_gain_db == pytest.approx(9.03 + 9.03, abs=0.05)

    def test_non_integer_sps_raises(self):
        with pytest.raises(ValueError):
            FHSSLinkConfig(hop_band=9e6, num_channels=8)

    def test_band_exceeds_fs_raises(self):
        with pytest.raises(ValueError):
            FHSSLinkConfig(hop_band=30e6)

    def test_bad_channels_raise(self):
        with pytest.raises(ValueError):
            FHSSLinkConfig(num_channels=0)

    def test_bad_symbols_per_hop_raises(self):
        with pytest.raises(ValueError):
            FHSSLinkConfig(symbols_per_hop=0)


class TestRoundtrip:
    def test_clean_roundtrip(self):
        link = make_link()
        wave, symbols, payload = link.transmit(b"fhsstest")
        result = link.receive(wave, len(payload))
        assert result.accepted
        assert result.payload == b"fhsstest"
        np.testing.assert_array_equal(result.symbols, symbols)

    def test_wrong_packet_index_fails(self):
        link = make_link()
        wave, _s, payload = link.transmit(packet_index=0)
        result = link.receive(wave, len(payload), packet_index=1)
        assert not result.accepted  # wrong hop sequence

    def test_wrong_seed_fails(self):
        a = make_link(seed=1)
        b = make_link(seed=2)
        wave, _s, payload = a.transmit()
        assert not b.receive(wave, len(payload)).accepted

    def test_spectrum_occupies_hop_band(self):
        link = make_link(payload_bytes=64, symbols_per_hop=2)
        wave, _s, _p = link.transmit()
        freqs, psd = welch_psd(wave, 20e6, nperseg=512)
        # power spread well beyond one sub-channel
        strong = freqs[psd > 0.05 * psd.max()]
        assert strong.max() - strong.min() > 3e6

    def test_run_packet_clean(self):
        out = make_link().run_packet(snr_db=20.0, rng=0)
        assert out.accepted and out.bit_errors == 0

    def test_run_packets_deterministic(self):
        a = make_link().run_packets(4, snr_db=6.0, seed=5)
        b = make_link().run_packets(4, snr_db=6.0, seed=5)
        assert a == b

    def test_zero_packets_raises(self):
        with pytest.raises(ValueError):
            make_link().run_packets(0, snr_db=10.0)


class TestJammingBehaviour:
    def test_dehop_filter_rejects_single_channel_tone(self):
        """A tone parked in one sub-channel only hurts the hops that land
        there — the classic FHSS partial-band picture."""
        link = make_link(payload_bytes=8)
        cfg = link.config
        tone = ToneJammer(cfg.channel_bandwidth * 1.5, cfg.sample_rate)
        per, _ber = link.run_packets(8, snr_db=20.0, sjr_db=-6.0, jammer=tone, seed=6)
        assert per < 1.0  # most hops dodge the tone

    def test_partial_band_worse_than_full_band_at_equal_power(self):
        """Concentrating the budget on part of the band is the better
        attack on FHSS — the de-hop filter dilutes a full-band jammer."""
        link = make_link(payload_bytes=8)
        cfg = link.config
        partial = BandlimitedNoiseJammer(cfg.channel_bandwidth, cfg.sample_rate, centre=2.5e6)
        full = BandlimitedNoiseJammer(cfg.hop_band, cfg.sample_rate)
        per_partial, _ = link.run_packets(10, snr_db=18.0, sjr_db=-12.0, jammer=partial, seed=7)
        per_full, _ = link.run_packets(10, snr_db=18.0, sjr_db=-12.0, jammer=full, seed=7)
        assert per_partial >= per_full

    def test_full_band_jammer_suppressed_by_hop_gain(self):
        """At moderate jamming, the num_channels dilution saves packets."""
        link = make_link(payload_bytes=8)
        full = BandlimitedNoiseJammer(10e6, 20e6)
        per, _ = link.run_packets(8, snr_db=18.0, sjr_db=-10.0, jammer=full, seed=8)
        assert per < 0.5
