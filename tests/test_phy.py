"""Unit tests for the PHY layer: bits, CRC, QPSK chip modulation, framing."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import HalfSinePulse, RectPulse, RootRaisedCosinePulse
from repro.phy import (
    ChipModulator,
    DEFAULT_FRAME_FORMAT,
    FrameFormat,
    append_crc16,
    binary_chips_to_complex,
    bits_to_bytes,
    bits_to_nibbles,
    bytes_to_bits,
    bytes_to_nibbles,
    check_crc16,
    complex_chips_to_binary,
    crc16_ccitt,
    crc16_ccitt_bitwise,
    crc32_ieee,
    crc32_ieee_bitwise,
    hamming_distance_bits,
    nibbles_to_bits,
    nibbles_to_bytes,
)
from repro.utils import signal_power


class TestBits:
    def test_bytes_to_bits_lsb_first(self):
        np.testing.assert_array_equal(bytes_to_bits(b"\x01"), [1, 0, 0, 0, 0, 0, 0, 0])
        np.testing.assert_array_equal(bytes_to_bits(b"\x80"), [0, 0, 0, 0, 0, 0, 0, 1])

    def test_bits_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bits_to_bytes_bad_length(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7))

    def test_nibbles_low_first(self):
        np.testing.assert_array_equal(bytes_to_nibbles(b"\xa7"), [0x7, 0xA])

    def test_nibbles_roundtrip(self):
        data = bytes(range(256))
        assert nibbles_to_bytes(bytes_to_nibbles(data)) == data

    def test_nibbles_to_bytes_odd_raises(self):
        with pytest.raises(ValueError):
            nibbles_to_bytes(np.array([1, 2, 3]))

    def test_nibbles_to_bytes_range_check(self):
        with pytest.raises(ValueError):
            nibbles_to_bytes(np.array([16, 0]))

    def test_bits_nibbles_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0])
        np.testing.assert_array_equal(nibbles_to_bits(bits_to_nibbles(bits)), bits)

    def test_bits_to_nibbles_values(self):
        np.testing.assert_array_equal(bits_to_nibbles(np.array([1, 0, 1, 1])), [13])

    def test_bits_to_nibbles_bad_length(self):
        with pytest.raises(ValueError):
            bits_to_nibbles(np.ones(6))

    def test_hamming_distance(self):
        assert hamming_distance_bits(b"\x00", b"\xff") == 8
        assert hamming_distance_bits(b"\x0f\x01", b"\x0e\x01") == 1

    def test_hamming_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance_bits(b"ab", b"a")

    @given(st.binary(max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_pack_unpack_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data
        assert nibbles_to_bytes(bytes_to_nibbles(data)) == data


class TestCrc:
    def test_crc16_known_value(self):
        # CRC-16/XMODEM of "123456789" is 0x31C3 (published check value).
        assert crc16_ccitt(b"123456789") == 0x31C3

    def test_crc16_table_matches_bitwise(self):
        for data in [b"", b"\x00", b"hello world", bytes(range(100))]:
            assert crc16_ccitt(data) == crc16_ccitt_bitwise(data)

    def test_crc32_matches_zlib(self):
        for data in [b"", b"123456789", bytes(range(256)) * 3]:
            assert crc32_ieee(data) == zlib.crc32(data)

    def test_crc32_table_matches_bitwise(self):
        for data in [b"", b"abc", bytes(range(64))]:
            assert crc32_ieee(data) == crc32_ieee_bitwise(data)

    def test_append_and_check(self):
        framed = append_crc16(b"payload")
        assert len(framed) == 9
        assert check_crc16(framed)

    def test_check_detects_single_bit_error(self):
        framed = bytearray(append_crc16(b"payload"))
        framed[2] ^= 0x10
        assert not check_crc16(bytes(framed))

    def test_check_short_frame(self):
        assert not check_crc16(b"\x01")

    @given(st.binary(min_size=1, max_size=100), st.integers(min_value=0, max_value=799))
    @settings(max_examples=40, deadline=None)
    def test_crc16_bit_error_detection_property(self, data, flip):
        framed = bytearray(append_crc16(data))
        bit = flip % (len(framed) * 8)
        framed[bit // 8] ^= 1 << (bit % 8)
        assert not check_crc16(bytes(framed))


class TestChipConversion:
    def test_pairing(self):
        chips = np.array([1, -1, -1, 1], dtype=float)
        cplx = binary_chips_to_complex(chips)
        np.testing.assert_allclose(cplx, [(1 - 1j) / np.sqrt(2), (-1 + 1j) / np.sqrt(2)])

    def test_unit_power(self):
        rng = np.random.default_rng(0)
        chips = np.where(rng.random(1000) > 0.5, 1.0, -1.0)
        assert signal_power(binary_chips_to_complex(chips)) == pytest.approx(1.0)

    def test_roundtrip(self):
        chips = np.array([1, 1, -1, 1, -1, -1], dtype=float)
        back = complex_chips_to_binary(binary_chips_to_complex(chips))
        np.testing.assert_allclose(back * np.sqrt(2), chips)

    def test_odd_length_raises(self):
        with pytest.raises(ValueError):
            binary_chips_to_complex(np.ones(3))


class TestChipModulator:
    @pytest.mark.parametrize("pulse", [HalfSinePulse(), RectPulse()])
    @pytest.mark.parametrize("sps", [2, 4, 16])
    def test_roundtrip(self, pulse, sps):
        rng = np.random.default_rng(1)
        chips = np.where(rng.random(128) > 0.5, 1.0, -1.0)
        mod = ChipModulator(pulse)
        wave = mod.modulate(chips, sps)
        soft = mod.demodulate(wave, sps)
        np.testing.assert_array_equal(np.sign(soft), chips)

    def test_rrc_roundtrip(self):
        rng = np.random.default_rng(2)
        chips = np.where(rng.random(256) > 0.5, 1.0, -1.0)
        mod = ChipModulator(RootRaisedCosinePulse(beta=0.35, span=8))
        wave = mod.modulate(chips, 4)
        soft = mod.demodulate(wave, 4)
        # edge chips suffer pulse truncation; check the interior
        core = slice(16, -16)
        np.testing.assert_array_equal(np.sign(soft[core]), chips[core])

    def test_unit_transmit_power(self):
        rng = np.random.default_rng(3)
        chips = np.where(rng.random(2048) > 0.5, 1.0, -1.0)
        mod = ChipModulator(HalfSinePulse())
        for sps in [2, 8, 64]:
            wave = mod.modulate(chips, sps)
            assert signal_power(wave) == pytest.approx(1.0, rel=0.05)

    def test_waveform_length(self):
        mod = ChipModulator(HalfSinePulse())
        wave = mod.modulate(np.ones(64), 8)
        assert wave.size == 32 * 8
        assert mod.samples_for_chips(64, 8) == 256

    def test_soft_amplitude_near_unity(self):
        rng = np.random.default_rng(4)
        chips = np.where(rng.random(512) > 0.5, 1.0, -1.0)
        mod = ChipModulator(HalfSinePulse())
        soft = mod.demodulate(mod.modulate(chips, 4), 4)
        assert np.mean(np.abs(soft)) == pytest.approx(1.0, rel=0.15)

    def test_num_chips_limit(self):
        mod = ChipModulator(HalfSinePulse())
        wave = mod.modulate(np.ones(64), 4)
        soft = mod.demodulate(wave, 4, num_chips=32)
        assert soft.size == 32

    def test_num_chips_too_many_raises(self):
        mod = ChipModulator(HalfSinePulse())
        wave = mod.modulate(np.ones(8), 4)
        with pytest.raises(ValueError):
            mod.demodulate(wave, 4, num_chips=100)

    def test_odd_num_chips_raises(self):
        mod = ChipModulator(HalfSinePulse())
        with pytest.raises(ValueError):
            mod.demodulate(np.zeros(64, dtype=complex), 4, num_chips=3)

    def test_bad_sps_raises(self):
        mod = ChipModulator(HalfSinePulse())
        with pytest.raises(ValueError):
            mod.modulate(np.ones(4), 0)

    def test_empty_chips(self):
        mod = ChipModulator(HalfSinePulse())
        assert mod.modulate(np.zeros(0), 4).size == 0

    def test_pulse_by_name(self):
        mod = ChipModulator("half_sine")
        assert isinstance(mod.pulse, HalfSinePulse)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_alpha_stretch_preserves_roundtrip(self, alpha_exp):
        """The BHSS core operation: any stretch factor must round-trip."""
        sps = 2 ** alpha_exp
        rng = np.random.default_rng(5)
        chips = np.where(rng.random(64) > 0.5, 1.0, -1.0)
        mod = ChipModulator(HalfSinePulse())
        soft = mod.demodulate(mod.modulate(chips, sps), sps)
        np.testing.assert_array_equal(np.sign(soft), chips)


class TestFrameFormat:
    def test_build_length(self):
        fmt = DEFAULT_FRAME_FORMAT
        syms = fmt.build(b"hello")
        assert syms.size == fmt.frame_symbols(5) == 8 + 2 + 2 + 10 + 4

    def test_preamble_zeros(self):
        syms = DEFAULT_FRAME_FORMAT.build(b"x")
        assert np.all(syms[:8] == 0)

    def test_sfd_encoding(self):
        syms = DEFAULT_FRAME_FORMAT.build(b"")
        assert syms[8] == 0x7 and syms[9] == 0xA  # 0xA7, low nibble first

    def test_parse_roundtrip(self):
        fmt = DEFAULT_FRAME_FORMAT
        payload = bytes(range(40))
        parsed = fmt.parse(fmt.build(payload))
        assert parsed.accepted
        assert parsed.payload == payload

    def test_parse_empty_payload(self):
        fmt = DEFAULT_FRAME_FORMAT
        parsed = fmt.parse(fmt.build(b""))
        assert parsed.accepted and parsed.payload == b""

    def test_corrupted_payload_fails_crc(self):
        fmt = DEFAULT_FRAME_FORMAT
        syms = fmt.build(b"important data")
        syms[20] ^= 0x5
        parsed = fmt.parse(syms)
        assert parsed.sfd_ok and not parsed.crc_ok and not parsed.accepted

    def test_corrupted_sfd_detected(self):
        fmt = DEFAULT_FRAME_FORMAT
        syms = fmt.build(b"data")
        syms[8] ^= 0xF
        assert not fmt.parse(syms).sfd_ok

    def test_corrupted_length_detected(self):
        fmt = DEFAULT_FRAME_FORMAT
        syms = fmt.build(b"data")
        syms[10] = 0xF
        syms[11] = 0xF  # length 255 > frame size
        parsed = fmt.parse(syms)
        assert not parsed.length_ok and not parsed.accepted

    def test_truncated_frame(self):
        fmt = DEFAULT_FRAME_FORMAT
        syms = fmt.build(b"0123456789")
        parsed = fmt.parse(syms[:12])
        assert not parsed.accepted

    def test_payload_too_long_raises(self):
        with pytest.raises(ValueError):
            FrameFormat(max_payload=10).build(bytes(11))

    def test_bad_format_params_raise(self):
        with pytest.raises(ValueError):
            FrameFormat(preamble_symbols=-1)
        with pytest.raises(ValueError):
            FrameFormat(sfd=0x100)
        with pytest.raises(ValueError):
            FrameFormat(max_payload=0)

    def test_custom_preamble_length(self):
        fmt = FrameFormat(preamble_symbols=16)
        parsed = fmt.parse(fmt.build(b"zz"))
        assert parsed.accepted and parsed.payload == b"zz"

    @given(st.binary(max_size=128))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, payload):
        fmt = DEFAULT_FRAME_FORMAT
        parsed = fmt.parse(fmt.build(payload))
        assert parsed.accepted and parsed.payload == payload

    @given(st.binary(min_size=1, max_size=32), st.integers(min_value=0), st.integers(min_value=1, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_symbol_corruption_never_accepted_wrong(self, payload, pos, flip):
        """Any single-symbol corruption either fails, or yields the true payload.

        (A corrupted preamble symbol does not affect decoding.)
        """
        fmt = DEFAULT_FRAME_FORMAT
        syms = fmt.build(payload)
        idx = pos % syms.size
        syms[idx] ^= flip
        parsed = fmt.parse(syms)
        if parsed.accepted:
            assert parsed.payload == payload
