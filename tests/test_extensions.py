"""Tests for the extension modules: comb jammer, multipath channel,
throughput-constrained pattern optimization, uncoordinated seed discovery.
"""

import numpy as np
import pytest

from repro.channel import MultipathChannel, exponential_power_delay_profile
from repro.core import (
    BHSSConfig,
    BHSSReceiver,
    BHSSTransmitter,
    LinkSimulator,
    SeedPool,
    UncoordinatedReceiver,
    UncoordinatedTransmitter,
)
from repro.dsp import welch_psd
from repro.hopping import expected_throughput, optimize_weights, paper_bandwidths
from repro.jamming import CombJammer
from repro.utils import signal_power

FS = 20e6


class TestCombJammer:
    def test_unit_power(self):
        jam = CombJammer([1e6, -3e6, 5e6], FS, seed=0)
        assert signal_power(jam.waveform(8192)) == pytest.approx(1.0, rel=0.1)

    def test_teeth_visible_in_spectrum(self):
        jam = CombJammer([2e6, -4e6], FS, seed=1)
        w = jam.waveform(65536)
        freqs, psd = welch_psd(w, FS, nperseg=1024)
        floor = np.median(psd)
        for f in [2e6, -4e6]:
            idx = np.argmin(np.abs(freqs - f))
            assert psd[max(0, idx - 2) : idx + 3].max() > 100 * floor

    def test_phase_continuity(self):
        jam = CombJammer([1e6, 3e6], FS, seed=2)
        a = jam.waveform(500)
        b = jam.waveform(500)
        jam.reset()
        whole = jam.waveform(1000)
        np.testing.assert_allclose(np.concatenate([a, b]), whole, atol=1e-9)

    def test_excision_suppresses_all_teeth(self):
        """The eq.-3 whitener handles multi-tone interference in one shot."""
        from repro.dsp import apply_fir, design_excision_filter

        rng = np.random.default_rng(3)
        signal = (rng.normal(size=65536) + 1j * rng.normal(size=65536)) / np.sqrt(2)
        jam = 10.0 * CombJammer([1.5e6, -2.5e6, 6e6], FS, seed=4).waveform(65536)
        taps = design_excision_filter(signal + jam, FS, num_taps=513)
        jam_out = apply_fir(jam, taps, mode="compensated")
        assert signal_power(jam_out) < 0.05 * signal_power(jam)

    def test_bhss_link_survives_comb(self):
        cfg = BHSSConfig.paper_default(seed=81, payload_bytes=8).with_fixed_bandwidth(10e6)
        jam = CombJammer([1e6, -2e6, 3.5e6], FS, seed=5)
        stats = LinkSimulator(cfg).run_packets(6, snr_db=15.0, sjr_db=-12.0, jammer=jam, seed=1)
        base = LinkSimulator(cfg.without_filtering()).run_packets(
            6, snr_db=15.0, sjr_db=-12.0, jammer=jam, seed=1
        )
        assert stats.packet_error_rate <= base.packet_error_rate

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            CombJammer([], FS)
        with pytest.raises(ValueError):
            CombJammer([11e6], FS)
        with pytest.raises(ValueError):
            CombJammer([1e6, 1e6], FS)


class TestMultipath:
    def test_profile_normalized(self):
        p = exponential_power_delay_profile(8, 3.0)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) < 0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            exponential_power_delay_profile(0, 3.0)
        with pytest.raises(ValueError):
            exponential_power_delay_profile(8, 0.0)

    def test_unit_power_gain(self):
        ch = MultipathChannel(num_taps=8, seed=1)
        rng = np.random.default_rng(2)
        x = rng.normal(size=50_000) + 1j * rng.normal(size=50_000)
        assert signal_power(ch.apply(x)) == pytest.approx(signal_power(x), rel=0.1)

    def test_single_tap_is_transparent(self):
        ch = MultipathChannel(num_taps=1, seed=3)
        x = np.exp(2j * np.pi * 0.01 * np.arange(256))
        y = ch.apply(x)
        # a single normalized tap is a pure phase rotation
        np.testing.assert_allclose(np.abs(y), np.abs(x), atol=1e-9)

    def test_deterministic_per_seed(self):
        a = MultipathChannel(seed=7).taps
        b = MultipathChannel(seed=7).taps
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, MultipathChannel(seed=8).taps)

    def test_coherence_bandwidth(self):
        ch = MultipathChannel(num_taps=10)
        assert ch.coherence_bandwidth(20e6) == pytest.approx(2e6)

    def test_narrow_hops_survive_multipath_better_than_wide(self):
        """The new trade-off the bandwidth dimension introduces: hops far
        below the coherence bandwidth see flat fading; wide hops see ISI."""
        ch = MultipathChannel(num_taps=12, decay_samples=4.0, seed=11, line_of_sight=2.0)

        def symbol_errors(bw):
            cfg = BHSSConfig.paper_default(seed=82, payload_bytes=16).with_fixed_bandwidth(bw)
            tx, rx = BHSSTransmitter(cfg), BHSSReceiver(cfg)
            packet = tx.transmit()
            faded = ch.apply(packet.waveform)
            result = rx.receive(faded, phase_track=True)
            return int(np.sum(result.symbols != packet.symbols))

        errors_wide = symbol_errors(10e6)   # >> coherence bandwidth
        errors_narrow = symbol_errors(0.3125e6)  # << coherence bandwidth
        assert errors_narrow <= errors_wide

    def test_empty_waveform(self):
        assert MultipathChannel().apply(np.array([], dtype=complex)).size == 0

    def test_bad_los_raises(self):
        with pytest.raises(ValueError):
            MultipathChannel(line_of_sight=-1.0)


class TestConstrainedOptimizer:
    BWS = paper_bandwidths()

    def test_constraint_respected(self):
        floor = 700e3  # above the unconstrained optimum's throughput
        best = optimize_weights(self.BWS, num_trials=800, refine_steps=20, seed=1, min_throughput=floor)
        assert expected_throughput(self.BWS, best.weights) >= floor - 1e-6

    def test_constraint_costs_robustness(self):
        free = optimize_weights(self.BWS, num_trials=800, refine_steps=20, seed=2)
        tight = optimize_weights(
            self.BWS, num_trials=800, refine_steps=20, seed=2, min_throughput=900e3
        )
        assert free.score_db >= tight.score_db

    def test_infeasible_floor_raises(self):
        with pytest.raises(ValueError):
            optimize_weights(self.BWS, num_trials=10, min_throughput=10e6)

    def test_no_constraint_unchanged_behaviour(self):
        best = optimize_weights(self.BWS, num_trials=300, refine_steps=10, seed=3)
        assert best.weights.sum() == pytest.approx(1.0)


class TestUncoordinated:
    def make(self, pool_size=4, seed=90):
        base = BHSSConfig.paper_default(seed=0, payload_bytes=8)
        pool = SeedPool(master_seed=seed, size=pool_size)
        return base, pool

    def test_pool_deterministic_and_distinct(self):
        pool = SeedPool(master_seed=5, size=8)
        assert pool.seeds() == SeedPool(master_seed=5, size=8).seeds()
        assert len(set(pool.seeds())) == 8

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            SeedPool(master_seed=1, size=0)
        with pytest.raises(ValueError):
            SeedPool(master_seed=1, size=4).seed(4)

    def test_acquires_clean_packet(self):
        base, pool = self.make()
        tx = UncoordinatedTransmitter(base, pool, draw_seed=1)
        rx = UncoordinatedReceiver(base, pool)
        packet, true_index = tx.transmit(b"udsss!!!")
        out = rx.receive(packet.waveform, payload_len=8)
        assert out.acquired
        assert out.pool_index == true_index
        assert out.result.payload == b"udsss!!!"

    def test_draws_vary_across_packets(self):
        base, pool = self.make(pool_size=8)
        tx = UncoordinatedTransmitter(base, pool, draw_seed=2)
        draws = {tx.transmit(packet_index=k)[1] for k in range(12)}
        assert len(draws) > 1

    def test_wrong_pool_fails(self):
        base, pool = self.make(seed=90)
        other_pool = SeedPool(master_seed=91, size=4)
        tx = UncoordinatedTransmitter(base, pool, draw_seed=3)
        rx = UncoordinatedReceiver(base, other_pool)
        packet, _ = tx.transmit()
        out = rx.receive(packet.waveform, payload_len=8)
        assert not out.acquired
        assert out.attempts == 4

    def test_acquires_under_noise(self):
        from repro.channel import add_awgn

        base, pool = self.make()
        tx = UncoordinatedTransmitter(base, pool, draw_seed=4)
        rx = UncoordinatedReceiver(base, pool)
        packet, true_index = tx.transmit()
        noisy = add_awgn(packet.waveform, 12.0, rng=5)
        out = rx.receive(noisy, payload_len=8)
        assert out.acquired and out.pool_index == true_index

    def test_attempts_counts_trials(self):
        base, pool = self.make(pool_size=6)
        tx = UncoordinatedTransmitter(base, pool, draw_seed=6)
        rx = UncoordinatedReceiver(base, pool)
        packet, true_index = tx.transmit()
        out = rx.receive(packet.waveform, payload_len=8)
        assert out.attempts == true_index + 1
