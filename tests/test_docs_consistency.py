"""Documentation-consistency checks.

Docs rot silently; these tests pin the load-bearing references: every
file the README/DESIGN mention exists, every registry experiment has a
benchmark, and the public names the API guide shows actually resolve.
"""

import json
import os
import re

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(path):
    with open(os.path.join(REPO, path)) as fh:
        return fh.read()


class TestReadme:
    def test_referenced_examples_exist(self):
        text = read("README.md")
        for name in re.findall(r"`examples/(\w+\.py)`", text):
            assert os.path.exists(os.path.join(REPO, "examples", name)), name

    def test_referenced_benchmarks_exist(self):
        text = read("README.md")
        for name in re.findall(r"`(test_\w+\.py)`", text):
            assert os.path.exists(os.path.join(REPO, "benchmarks", name)), name

    def test_referenced_docs_exist(self):
        for path in ["DESIGN.md", "EXPERIMENTS.md", "docs/API.md"]:
            assert os.path.exists(os.path.join(REPO, path)), path

    def test_quickstart_snippet_runs(self):
        """The README's quickstart code must actually work (scaled down)."""
        from repro import BHSSConfig, BandlimitedNoiseJammer, LinkSimulator

        config = BHSSConfig.paper_default(pattern="parabolic", seed=42, payload_bytes=4)
        link = LinkSimulator(config)
        jammer = BandlimitedNoiseJammer(bandwidth=0.625e6, sample_rate=config.sample_rate)
        stats = link.run_packets(2, snr_db=15.0, sjr_db=-12.0, jammer=jammer, seed=7)
        assert 0.0 <= stats.packet_error_rate <= 1.0
        LinkSimulator(config.without_filtering())


class TestDesign:
    def test_experiment_index_benchmarks_exist(self):
        text = read("DESIGN.md")
        for name in set(re.findall(r"benchmarks/(test_\w+\.py)", text)):
            assert os.path.exists(os.path.join(REPO, "benchmarks", name)), name

    def test_layout_modules_exist(self):
        text = read("DESIGN.md")
        # spot-check the layout block's named modules
        for mod in ["excision.py", "gardner.py", "chiptables.py", "fec.py",
                    "fhss_link.py", "coding.py", "recordings.py"]:
            assert mod in text
            hits = [
                os.path.join(root, mod)
                for root, _d, files in os.walk(os.path.join(REPO, "src"))
                for f in files
                if f == mod
            ]
            assert hits, mod


class TestRegistryVsBenchmarks:
    def test_every_registry_entry_has_a_benchmark(self):
        from repro.analysis.experiments import REGISTRY

        bench_sources = ""
        bench_dir = os.path.join(REPO, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.endswith(".py"):
                bench_sources += read(os.path.join("benchmarks", name))
        for _name, (fn, _desc) in REGISTRY.items():
            assert f"experiments.{fn.__name__}(" in bench_sources, fn.__name__


class TestApiGuide:
    def test_top_level_names_resolve(self):
        import repro

        text = read("docs/API.md")
        # every `from repro import X, Y` line in the guide must resolve
        for line in re.findall(r"from repro import ([\w, ]+)", text):
            for name in [n.strip() for n in line.split(",") if n.strip()]:
                assert hasattr(repro, name), name

    def test_theory_names_resolve(self):
        from repro import theory

        text = read("docs/API.md")
        for name in re.findall(r"theory\.(\w+)\(", text):
            assert hasattr(theory, name), name

    def test_cli_subcommands_match(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(a for a in parser._actions if hasattr(a, "choices") and a.choices)
        for cmd in ["info", "simulate", "threshold", "sweep", "optimize",
                    "record", "theory", "reproduce", "run", "scenario"]:
            assert cmd in sub.choices, cmd


class TestEnvKnobs:
    """Every ``REPRO_*`` environment knob: code and docs agree on names.

    The ground truth is the lint scanner (:mod:`repro.lint.project`), not
    a hardcoded set: ``collect_code_knobs`` walks every string constant in
    ``src/`` so a new knob is picked up the moment it is introduced, and
    the ``knob-docs`` lint rule enforces the same contract in CI.
    """

    def code_knobs(self):
        from repro.lint.engine import ProjectContext, _load_sources
        from repro.lint.project import collect_code_knobs

        errors = []
        sources = _load_sources([os.path.join(REPO, "src")], REPO, errors)
        assert not errors
        return set(collect_code_knobs(ProjectContext(root=REPO, sources=sources)))

    def doc_knobs(self, path):
        from repro.lint.project import documented_knobs

        return documented_knobs(read(path))

    def test_code_knobs_are_the_known_set(self):
        assert self.code_knobs() == {
            "REPRO_WORKERS", "REPRO_BATCH", "REPRO_CACHE", "REPRO_SCALE",
            "REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_CHECKPOINT", "REPRO_FAULTS",
            "REPRO_BACKEND", "REPRO_SYNC_RETRIES", "REPRO_SYNC_TIMEOUT",
        }

    def test_api_guide_documents_runtime_knobs(self):
        assert {"REPRO_WORKERS", "REPRO_BATCH", "REPRO_CACHE"} <= self.doc_knobs("docs/API.md")

    def test_experiments_guide_documents_all_knobs(self):
        assert self.code_knobs() <= self.doc_knobs("EXPERIMENTS.md")

    def test_docs_mention_no_unknown_knobs(self):
        known = self.code_knobs()
        for path in ["docs/API.md", "EXPERIMENTS.md", "README.md"]:
            assert self.doc_knobs(path) <= known, path

    def test_knob_docs_lint_rule_is_clean(self):
        from repro.lint.engine import run_lint

        report = run_lint([os.path.join(REPO, "src")], root=REPO, rules=["knob-docs"])
        assert report.findings == [], report.findings

    def test_batch_contract_docs_name_the_test_walls(self):
        text = read("docs/API.md")
        assert "run_packets_batched" in text
        for wall in ["tests/test_batch_equivalence.py", "tests/test_properties_batch_dsp.py"]:
            assert wall in text, wall
            assert os.path.exists(os.path.join(REPO, wall)), wall


class TestExampleScenarios:
    def scenario_files(self):
        directory = os.path.join(REPO, "examples", "scenarios")
        return sorted(
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.endswith(".json")
        )

    def test_directory_is_not_empty(self):
        assert self.scenario_files()

    def test_every_example_scenario_validates(self):
        from repro.arena import ArenaSpec
        from repro.network import NetworkSpec
        from repro.protocol import SessionSpec
        from repro.scenario import Scenario

        for path in self.scenario_files():
            with open(path) as fh:
                data = json.load(fh)
            if "traffic" in data and "links" not in data and "jammers" not in data:
                session = SessionSpec.load(path)  # raises SessionError on any bad field
                assert session.points(), path
                assert SessionSpec.from_dict(session.to_dict()).to_dict() == session.to_dict()
                continue
            if "links" in data:
                network = NetworkSpec.load(path)  # raises NetworkError on any bad field
                assert network.num_links, path
                assert NetworkSpec.from_dict(network.to_dict()).to_dict() == network.to_dict()
                continue
            if "jammers" in data:
                arena = ArenaSpec.load(path)  # raises ArenaError on any bad field
                assert arena.num_cells, path
                assert ArenaSpec.from_dict(arena.to_dict()).to_dict() == arena.to_dict()
                continue
            scenario = Scenario.load(path)  # raises ScenarioError on any bad field
            assert scenario.points(), path
            # loading must be lossless modulo config-default expansion
            assert Scenario.from_dict(scenario.to_dict()).to_dict() == scenario.to_dict()

    def test_readme_scenario_quickstart_paths_exist(self):
        text = read("README.md")
        for name in re.findall(r"examples/scenarios/(\w+\.json)", text):
            assert os.path.exists(os.path.join(REPO, "examples", "scenarios", name)), name
