"""Figure 9: bit error probability of BHSS vs DSSS/FHSS over Eb/N0.

Paper setup: signal-to-jamming ratio −20 dB per chip, processing gain
L = 20 dB, bandwidth hopping range 100.  Curves: DSSS/FHSS (the jammer
matches their fixed bandwidth), BHSS against fixed jammers with
``Bj/max(Bp)`` in {1, 0.3, 0.1, 0.03, 0.01}, and BHSS against a
random-hopping jammer.  Expected shape:

* DSSS and FHSS stay pinned near coin-flip BER across the whole Eb/N0
  range — the matched jammer overwhelms the 20 dB processing gain;
* every BHSS curve falls steeply with Eb/N0, the narrower the fixed
  jammer the faster;
* the random-hopping jammer lands between the best and worst fixed
  jammers (better for the jammer than very narrow fixed bandwidths,
  worse than near-matched ones).
"""

import numpy as np
import pytest

from repro.analysis import SweepResult
from repro.core import theory

from repro.analysis import experiments
from _common import run_once, save_and_print

SJR_DB = -20.0
L_DB = 20.0
#: hopping alphabet spanning the paper's range of 100, log-spaced densely
#: (the paper hops a continuous range; a dense grid approximates it)
BANDWIDTHS = np.logspace(0, -2, 33)
WEIGHTS = np.full(BANDWIDTHS.size, 1.0 / BANDWIDTHS.size)
FIXED_RATIOS = [1.0, 0.3, 0.1, 0.03, 0.01]


def compute_figure9(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.figure09` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.figure09(*args, **kwargs)


@pytest.mark.benchmark(group="fig09")
def test_fig09_ber_vs_ebno(benchmark):
    result = run_once(benchmark, compute_figure9)
    save_and_print(
        result,
        "fig09_ber_vs_ebno",
        "Figure 9: BER vs Eb/N0 (SJR -20 dB, L = 20 dB, hop range 100)",
    )

    ebno = np.array(result.column("ebno_db"))
    dsss = np.array(result.column("dsss_fhss"))
    idx15 = np.argmin(np.abs(ebno - 15.0))

    # DSSS/FHSS pinned high: still ~1e-1 at Eb/N0 = 15 dB
    assert dsss[idx15] > 0.05

    # every BHSS curve beats DSSS at 15 dB
    for r in FIXED_RATIOS:
        bhss = np.array(result.column(f"bhss_bj_{r}"))
        assert bhss[idx15] < dsss[idx15]

    # narrower fixed jammers are worse for the jammer (ordering at 15 dB)
    b_030 = result.column("bhss_bj_0.3")[idx15]
    b_003 = result.column("bhss_bj_0.03")[idx15]
    b_001 = result.column("bhss_bj_0.01")[idx15]
    assert b_001 <= b_003 <= b_030

    # the random jammer lies between the extremes: better for the link
    # than the near-matched fixed jammers, worse than the narrow ones
    rand = np.array(result.column("bhss_bj_random"))
    fixed_at_15 = [result.column(f"bhss_bj_{r}")[idx15] for r in FIXED_RATIOS]
    assert min(fixed_at_15) <= rand[idx15] <= max(fixed_at_15)
    assert rand[idx15] < result.column("bhss_bj_0.3")[idx15]
    assert rand[idx15] > result.column("bhss_bj_0.01")[idx15]
    assert rand[idx15] < 1e-4

    # all BHSS curves are monotone non-increasing in Eb/N0
    for r in FIXED_RATIOS:
        curve = np.array(result.column(f"bhss_bj_{r}"))
        assert np.all(np.diff(curve) <= 1e-15)
