"""Ablation: which receiver filter earns the gain where.

Not a paper figure — this decomposes the BHSS receiver of Section 4.2 by
disabling each suppression path in the control logic:

* **full**     — low-pass + excision, as shipped;
* **lpf-only** — excision disabled (peak margin set unreachably high);
* **ef-only**  — low-pass disabled (wide-ratio set unreachably high);
* **none**     — no interference filtering (matched filter only).

Measured against a narrow jammer (excision territory) and a wide jammer
(low-pass territory) at fixed signal bandwidths.  Expected shape: each
filter carries its own regime — ef-only ~ full against the narrow
jammer, lpf-only ~ full against the wide jammer — and the full receiver
is never significantly worse than the best single-filter variant.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult, min_snr_for_per
from repro.core import BHSSConfig, ControlLogic, LinkSimulator
from repro.core.receiver import BHSSReceiver
from repro.jamming import BandlimitedNoiseJammer

from repro.analysis import experiments
from _common import JNR_DB, default_search, run_once, save_and_print

PAYLOAD = 4
SCENARIOS = [
    # (label, signal bandwidth, jammer bandwidth)
    ("narrow jammer", 10e6, 0.625e6),
    ("wide jammer", 0.625e6, 10e6),
]
VARIANTS = ["full", "lpf-only", "ef-only", "none"]


def make_link(bp: float, variant: str) -> LinkSimulator:
    cfg = BHSSConfig.paper_default(seed=37, payload_bytes=PAYLOAD).with_fixed_bandwidth(bp)
    if variant == "none":
        return LinkSimulator(cfg.without_filtering())
    kwargs = dict(sample_rate=cfg.sample_rate, pulse=cfg.pulse)
    if variant == "lpf-only":
        kwargs["peak_margin_db"] = 500.0  # excision never triggers
    elif variant == "ef-only":
        kwargs["wide_ratio"] = 1e6  # low-pass never triggers
    control = ControlLogic(**kwargs)
    link = LinkSimulator(cfg)
    link.receiver = BHSSReceiver(cfg, control=control)
    return link


def compute_ablation(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.ablation_filters` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.ablation_filters(*args, **kwargs)


@pytest.mark.benchmark(group="ablation")
def test_ablation_filter_components(benchmark):
    result = run_once(benchmark, compute_ablation)
    save_and_print(
        result,
        "ablation_filters",
        "Ablation: min-SNR threshold [dB] per receiver filter variant",
    )

    thr = {(r["scenario"], r["variant"]): r["threshold_db"] for r in result.rows}

    # narrow jammer: the excision filter carries the gain
    assert thr[("narrow jammer", "ef-only")] < thr[("narrow jammer", "none")] - 5.0
    assert thr[("narrow jammer", "full")] < thr[("narrow jammer", "none")] - 5.0
    # the low-pass alone cannot excise an in-band narrow jammer
    assert thr[("narrow jammer", "lpf-only")] > thr[("narrow jammer", "ef-only")] + 3.0

    # the full receiver matches the best single filter in each regime
    for label, _bp, _bj in SCENARIOS:
        best_single = min(thr[(label, "lpf-only")], thr[(label, "ef-only")])
        assert thr[(label, "full")] <= best_single + 1.5

    # wide jammer: with the matched filter already band-limiting, the
    # explicit low-pass adds at most a modest refinement — but never hurts
    assert thr[("wide jammer", "full")] <= thr[("wide jammer", "none")] + 1.0
