"""Extension: seed-synchronized sessions vs the learning follower.

The paper's claim is physical-layer (hopping shrinks the jammed
fraction of transmissions); this extension restates it one layer up: a
message-delivery session whose hop seed rotates every epoch must
sustain a strictly higher delivery ratio than the same session pinned
to the static widest band, against the same learning follower jammer
at equal SNR/SJR.  Each row is a full :class:`repro.protocol`
session — fragmentation, whitening, ARQ, desync watchdogs and the
in-band re-sync handshake included.

Expected shape:

* delivery ratios and PERs are valid probabilities everywhere;
* at the harsher SJR the hopping session delivers strictly more than
  the static session (the integration gate of the session layer);
* the hopping session never exhausts its re-sync budget — only the
  static band, camped on by the follower, can be starved into the
  degraded fallback.
"""

import numpy as np
import pytest

from repro.analysis import experiments

from _common import run_once, save_and_print


def compute_sessions(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.ext_protocol` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.ext_protocol(*args, **kwargs)


@pytest.mark.benchmark(group="extension")
def test_ext_protocol_sessions(benchmark):
    result = run_once(benchmark, compute_sessions)
    save_and_print(
        result,
        "ext_protocol_sessions",
        "Extension: session delivery/goodput/re-sync vs a learning follower",
    )

    modes = result.column("mode")
    sjr = np.array(result.column("sjr_db"))
    delivery = np.array(result.column("delivery_ratio"))
    per = np.array(result.column("data_per"))
    degraded = result.column("degraded")

    assert sorted(set(modes)) == ["hopping", "static"]
    assert np.all((0.0 <= delivery) & (delivery <= 1.0))
    assert np.all((0.0 <= per) & (per <= 1.0))
    assert not any(d for d, m in zip(degraded, modes) if m == "hopping")

    # the integration gate: at the harshest SJR, randomized hopping
    # sustains a strictly higher delivery ratio than the static band
    worst = sjr.min()
    by_mode = {
        mode: delivery[[i for i, m in enumerate(modes) if m == mode and sjr[i] == worst]]
        for mode in ("hopping", "static")
    }
    assert by_mode["hopping"].mean() > by_mode["static"].mean()
