"""Extension: network throughput and Jain fairness vs jammer count.

The paper evaluates one BHSS link against one jammer; this extension
superposes six uncoordinated BHSS links in a shared spectrum (chain
coupling at -20 dB between neighbours) and activates their personal
jammers 0..6 at a time.  Each row of the sweep is a full
:func:`repro.network.run_network` evaluation of the derived
:class:`~repro.network.NetworkSpec` through the parallel runtime.

Expected shape:

* the unjammed network carries at least as much aggregate goodput as
  the fully jammed one;
* the fairness index stays in (0, 1] everywhere and equals a valid
  Jain value (1/N lower bound for a non-degenerate network);
* mean PER never decreases when jammers are added to an otherwise
  identical network (monotone within measurement noise).
"""

import numpy as np
import pytest

from repro.analysis import experiments

from _common import run_once, save_and_print

NUM_LINKS = 6


def compute_network(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.ext_network` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.ext_network(*args, num_links=NUM_LINKS, **kwargs)


@pytest.mark.benchmark(group="extension")
def test_ext_network_fairness(benchmark):
    result = run_once(benchmark, compute_network)
    save_and_print(
        result,
        "ext_network_fairness",
        f"Extension: {NUM_LINKS}-link network throughput + Jain fairness vs jammer count",
    )

    counts = np.array(result.column("num_jammers"))
    throughput = np.array(result.column("network_throughput_bps"))
    fairness = np.array(result.column("fairness"))
    per = np.array(result.column("mean_per"))

    # one row per jammer population, 0..N inclusive
    assert counts.tolist() == list(range(NUM_LINKS + 1))

    # jamming every link cannot beat the unjammed network
    assert throughput[-1] <= throughput[0]

    # Jain index is bounded: 1/N when one link hogs, 1 when all equal
    assert np.all(fairness > 0.0)
    assert np.all(fairness <= 1.0 + 1e-12)

    # error rates are valid probabilities and jammers do not help
    assert np.all((0.0 <= per) & (per <= 1.0))
    assert per[-1] >= per[0] - 1e-9
