"""Session-layer goodput bench: serial vs pooled, plus a chaos probe.

Times :func:`repro.protocol.run_session` over the bundled follower
session's grid serially and across a worker pool, hard-gates the
bit-identity of the two result tables, and runs one forced-desync
session to record the re-sync telemetry.  Writes a ``BENCH_pr10.json``
style report::

    PYTHONPATH=src python benchmarks/bench_session_goodput.py -o BENCH_pr10.json

Exit status 1 when the pooled rows differ from serial or the forced
desync fails to recover — the same gates the protocol-chaos CI job
enforces.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

from repro.protocol import SessionSpec, run_session, simulate_session
from repro.runtime import FaultPlan, ParallelExecutor

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SESSION_FILE = os.path.join(REPO, "examples", "scenarios", "session_follower.json")


def load_spec() -> SessionSpec:
    """The bundled follower session, widened to a 4-point SJR grid."""
    return SessionSpec.load(SESSION_FILE).with_overrides(sjr_db=(-2.0, -4.0, -6.0, -8.0))


def time_run(spec: SessionSpec, workers: int, repeats: int) -> tuple[dict, list]:
    """Median-of-N wall time for one executor size; returns (entry, rows)."""
    walls = []
    rows = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_session(spec, executor=ParallelExecutor(workers), cache=False)
        walls.append(time.perf_counter() - t0)
        rows = result.as_table_rows()
    assert rows is not None
    median = statistics.median(walls)
    entry = {
        "wall_seconds": median,
        "wall_seconds_all": sorted(walls),
        "points_per_second": len(spec.points()) / median,
    }
    return entry, rows


def chaos_probe(spec: SessionSpec) -> dict:
    """One forced-desync session: must recover inside the retry budget."""
    plan = None
    for seed in range(1000):
        candidate = FaultPlan(desync=0.5, seed=seed)
        if candidate.should("desync", "0"):
            plan = candidate
            break
    assert plan is not None, "no firing fault seed found"
    point = spec.with_overrides(jammer={"type": "none"}, sjr_db=(-4.0,))
    clean = simulate_session(point, snr_db=15.0, sjr_db=-4.0)
    faulted = simulate_session(point, snr_db=15.0, sjr_db=-4.0, faults=plan)
    return {
        "fault_seed": plan.seed,
        "desync_injected": faulted.desync_injected,
        "desync_count": faulted.desync_count,
        "resync_count": faulted.resync_count,
        "mean_resync_latency_slots": faulted.mean_resync_latency,
        "delivery_ratio": faulted.delivery_ratio,
        "degraded": faulted.degraded,
        "recovered": (
            faulted.resync_count == faulted.desync_count
            and not faulted.degraded
            and faulted.delivered == clean.delivered
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2, help="pool size (default 2)")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (default 3)")
    parser.add_argument("-o", "--output", default="BENCH_pr10.json", help="report path")
    args = parser.parse_args(argv)

    spec = load_spec().validate()
    serial, serial_rows = time_run(spec, workers=0, repeats=args.repeats)
    pooled, pooled_rows = time_run(spec, workers=args.workers, repeats=args.repeats)
    bit_identical = serial_rows == pooled_rows

    result = run_session(spec, executor=ParallelExecutor(0), cache=False)
    goodput = result.column("goodput_bps")
    delivery = result.column("delivery_ratio")

    chaos = chaos_probe(spec)
    report = {
        "benchmark": "pr10-session-goodput",
        "session": {
            "file": os.path.relpath(SESSION_FILE, REPO),
            "points": len(spec.points()),
            "fragments": spec.num_fragments(),
            "repeats": args.repeats,
        },
        "serial": serial,
        "pooled": {"workers": args.workers, **pooled},
        "speedup": serial["wall_seconds"] / pooled["wall_seconds"],
        "bit_identical": bit_identical,
        "goodput_bps": goodput,
        "delivery_ratio": delivery,
        "chaos": chaos,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(
        f"serial {serial['wall_seconds']:.2f}s, pooled {pooled['wall_seconds']:.2f}s "
        f"({report['speedup']:.2f}x, workers={args.workers}), "
        f"bit_identical={bit_identical}, chaos recovered={chaos['recovered']}"
    )
    if not bit_identical:
        print("pooled session rows differ from serial — determinism regression", file=sys.stderr)
        return 1
    if not chaos["recovered"]:
        print("forced desync did not recover within the retry budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
