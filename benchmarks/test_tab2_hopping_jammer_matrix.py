"""Table 2: power advantage for hopping signal vs hopping jammer.

Paper (Section 6.4.3): a fixed-bandwidth jammer can be countered by an
adaptive transmitter, so the rational jammer also hops; Table 2 gives the
power advantage (over the fixed 10 MHz signal + 10 MHz jammer baseline)
for all nine combinations of the three hop patterns on both sides.
Expected structure:

* the hopping pattern strongly affects the advantage;
* the exponential signal pattern collapses against an exponential
  jammer (both concentrate on the wide bandwidths — frequent matches)
  while doing well against a linear jammer;
* the parabolic pattern is the maximin choice: its worst case over
  jammer patterns is the best among the three (paper: 11.4 dB).

Economical default: 8 packets per probed SNR; scale with REPRO_SCALE.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult, min_snr_for_per
from repro.core import BHSSConfig, LinkSimulator
from repro.hopping import pattern_weights
from repro.jamming import BandlimitedNoiseJammer, HoppingJammer

from repro.analysis import experiments
from _common import JNR_DB, default_search, run_once, save_and_print

PATTERNS = ["linear", "exponential", "parabolic"]
PAYLOAD = 8
SYMBOLS_PER_HOP = 16
#: jammer dwell ~ the average transmit dwell of the linear pattern
JAMMER_DWELL_SAMPLES = 16384


def compute_table2(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.table2` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.table2(*args, **kwargs)


@pytest.mark.benchmark(group="tab2")
def test_tab2_hopping_pattern_matrix(benchmark):
    result = run_once(benchmark, compute_table2)
    save_and_print(
        result,
        "tab2_pattern_matrix",
        "Table 2: power advantage [dB], hopping signal x hopping jammer",
    )

    matrix = {
        (r["signal_pattern"], r["jammer_pattern"]): r["advantage_db"] for r in result.rows
    }
    worst = {s: min(matrix[(s, j)] for j in PATTERNS) for s in PATTERNS}

    # hopping vs hopping always retains a positive advantage over the
    # fixed baseline
    assert all(v > 0.0 for v in matrix.values())

    # the pattern choice matters (the matrix is far from flat)
    values = np.array(list(matrix.values()))
    assert values.max() - values.min() > 3.0

    # exponential's Achilles heel is the exponential jammer: its own
    # worst case, and no better than parabolic's worst case
    assert matrix[("exponential", "exponential")] == worst["exponential"]
    assert worst["exponential"] <= worst["parabolic"]

    # the parabolic pattern is the maximin choice (the paper's headline)
    assert worst["parabolic"] >= max(worst.values()) - 1e-9

    # average advantage of the parabolic row is solidly positive (paper's
    # average: 11.4 dB worst case; absolute values are simulator-specific)
    parabolic_row = [matrix[("parabolic", j)] for j in PATTERNS]
    assert float(np.mean(parabolic_row)) > 3.0
