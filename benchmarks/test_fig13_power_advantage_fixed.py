"""Figure 13: measured power advantage vs bandwidth ratio (fixed offsets).

Paper (Section 6.3): for all 49 constellations of the seven signal and
seven jammer bandwidths — bandwidth *not* hopping — measure the minimum
transmit power for < 50 % packet loss with and without the interference
filtering stage, average the dB advantage per distinct ``Bp/Bj`` ratio,
and compare to the theoretical bound of Section 5.1.  Expected shape:

* for ``Bp/Bj < 1`` (wide jammer, low-pass filter) the measured advantage
  follows the theoretical bound closely;
* for ``1 < Bp/Bj < 10`` the implementation gives up roughly half of the
  theoretical excision gain (finite spreading factor, non-ideal filters);
* for ``Bp/Bj > 10`` the advantage exceeds 20 dB;
* at the matched point the advantage vanishes.

The "without filtering" baseline is eq. (5)'s receiver — chip-rate
sampling with a wide-open front end — matching the role of the disabled
filter stage in the paper's GNU Radio receiver (without the filter the
decimation has no anti-aliasing, so out-of-band jamming lands in-band).

Economical default: 6 packets per probed SNR; scale with REPRO_SCALE.
"""

from collections import defaultdict

import numpy as np
import pytest

from repro.analysis import SweepResult, min_snr_for_per
from repro.core import BHSSConfig, LinkSimulator, theory
from repro.jamming import BandlimitedNoiseJammer

from repro.analysis import experiments
from _common import JNR_DB, default_search, run_once, save_and_print

BANDWIDTHS = BHSSConfig.paper_default().bandwidth_set.as_array()
PAYLOAD = 4  # short probe frames keep 49 x 2 threshold searches tractable


def compute_figure13(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.figure13` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.figure13(*args, **kwargs)


@pytest.mark.benchmark(group="fig13")
def test_fig13_power_advantage_fixed_offsets(benchmark):
    per_pair, by_ratio = run_once(benchmark, compute_figure13)
    save_and_print(per_pair, "fig13_constellations", "Figure 13 raw: 49 bandwidth constellations")
    save_and_print(
        by_ratio,
        "fig13_power_advantage",
        "Figure 13: power advantage [dB] vs Bp/Bj (mean over constellations) vs theory",
    )

    ratios = np.array(by_ratio.column("ratio"))
    adv = np.array(by_ratio.column("advantage_db"))
    bound = np.array(by_ratio.column("theory_bound_db"))

    # matched constellations: no meaningful advantage
    idx_match = np.argmin(np.abs(ratios - 1.0))
    assert abs(adv[idx_match]) < 4.0

    # wide-jammer side follows the bound (within a few dB)
    wide = ratios < 1.0
    assert np.all(np.abs(adv[wide] - bound[wide]) < 6.0)

    # the widest offsets buy double-digit advantages on both sides
    assert adv[ratios == ratios.min()][0] > 10.0
    assert adv[ratios == ratios.max()][0] > 20.0

    # narrow-jammer side: tracks the bound to within a few dB.  (Our
    # measurement can exceed the jammer-only bound slightly: the eq.-(5)
    # baseline's wide-open front end also admits extra *noise* that the
    # filtering receiver rejects, which the gamma bound does not model.)
    narrow = ratios > 8.0
    assert np.all(adv[narrow] > 10.0)
    assert np.all(np.abs(adv[narrow] - bound[narrow]) < 6.0)

    # advantage grows with offset on each side of the matched point
    assert adv[0] >= adv[idx_match]
    assert adv[-1] >= adv[idx_match]
