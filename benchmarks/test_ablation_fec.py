"""Ablation: channel coding + cross-dwell interleaving (extension).

The paper evaluates packets "in absence of channel coding", which makes a
packet only as strong as its weakest hop dwell.  This ablation quantifies
what the natural fix buys: block codes whose codewords are interleaved
across the hop dwells, so a single near-matched dwell decodes into
isolated, correctable bit errors.

Measured: min-SNR threshold (50 % PER) of a linear-pattern BHSS link with
8 dwells per packet against a mid-band fixed jammer, per codec.

The measured answer is double-edged, and that is the point of the
ablation: at the 50 %-PER threshold a near-matched dwell carries *many*
bit errors, so single-error-per-codeword Hamming codes cannot rescue it —
while their rate loss makes the frame span MORE dwells and therefore hit
bad bands more often (Hamming(15,11) comes out clearly negative).  Only
genuinely strong low-rate codes (rep5) break even or better.  Conclusion:
against power-limited band-matching jammers, bandwidth hopping earns its
keep where coding cannot — exactly the paper's framing.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult, min_snr_for_per
from repro.core import BHSSConfig, LinkSimulator
from repro.jamming import BandlimitedNoiseJammer
from repro.phy.fec import get_codec

from repro.analysis import experiments
from _common import JNR_DB, default_search, run_once, save_and_print

PAYLOAD = 8
SYMBOLS_PER_HOP = 4  # the many-dwells regime the paper's uncoded system dislikes
JAMMER_BW = 2.5e6
CODECS = ["none", "hamming74", "hamming1511", "rep3", "rep5"]


def compute_ablation(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.ablation_fec` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.ablation_fec(*args, **kwargs)


@pytest.mark.benchmark(group="ablation")
def test_ablation_fec(benchmark):
    result = run_once(benchmark, compute_ablation)
    save_and_print(
        result,
        "ablation_fec",
        f"Ablation: coding gain of FEC + cross-dwell interleaving (Bj = {JAMMER_BW / 1e6:.4g} MHz)",
    )

    gain = {r["fec"]: r["coding_gain_db"] for r in result.rows}

    # the strongest (lowest-rate) code at least breaks even
    assert gain["rep5"] >= -0.5

    # code strength ordering: rep5 >= rep3 >= the weak Hamming(15,11)
    assert gain["rep5"] >= gain["rep3"] - 1.0
    assert gain["rep3"] >= gain["hamming1511"] - 1.0

    # the negative result: the high-rate Hamming(15,11)'s longer frames
    # span more dwells and lose more than the correction wins back
    assert gain["hamming1511"] <= 0.5

    # the codec choice matters by several dB
    assert max(gain.values()) - min(gain.values()) >= 2.0
