"""Shared infrastructure for the per-figure/table benchmark harnesses.

Each benchmark module regenerates one table or figure of the paper:
it computes the same rows/series the paper reports, prints them (run
pytest with ``-s`` to see the tables inline), writes them to
``benchmarks/results/`` as CSV + text, and asserts the qualitative
*shape* findings the paper states (who wins, where the minima are,
rough magnitudes) — absolute numbers are simulator-dependent.

Experiment sizes default to economical settings; set ``REPRO_SCALE``
(e.g. ``REPRO_SCALE=5``) to multiply the packet budgets toward the
paper's 10 000-packets-per-point fidelity.
"""

from __future__ import annotations

import json
import os

from repro.analysis import SweepResult, ThresholdSearch, env_scale, write_csv
from repro.runtime import ParallelExecutor
from repro.utils import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The paper's testbed jams well above the noise floor; 25 dB of
#: jammer-to-noise ratio puts the 50 %-PER thresholds of all receivers
#: inside the search bracket while leaving ~25 dB of headroom for the
#: filtering gains.
JNR_DB = 25.0


def default_search(packets: int = 12, tolerance_db: float = 1.0) -> ThresholdSearch:
    """A threshold search sized by ``REPRO_SCALE``."""
    scale = env_scale()
    return ThresholdSearch(
        snr_low=-12.0,
        snr_high=45.0,
        tolerance_db=tolerance_db,
        packets_per_point=max(4, int(round(packets * scale))),
    )


def save_and_print(result: SweepResult, name: str, title: str) -> str:
    """Persist a sweep as CSV + formatted text and print the table.

    When the sweep carries timing telemetry (it came out of
    ``run_sweep``), the one-line summary is printed under the table and
    the full telemetry is written as a ``.timing.json`` sidecar, so
    speedups are tracked next to the results they time.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    csv_path = write_csv(result, os.path.join(RESULTS_DIR, f"{name}.csv"))
    table = format_table(result.columns, result.as_table_rows(), title=title)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(table + "\n")
    print()
    print(table)
    if result.timing is not None:
        print(result.timing.summary())
        with open(os.path.join(RESULTS_DIR, f"{name}.timing.json"), "w") as fh:
            json.dump(result.timing.to_dict(), fh, indent=2)
    return csv_path


def pool_executor() -> ParallelExecutor:
    """The ``REPRO_WORKERS``-configured executor for benchmark sweeps."""
    return ParallelExecutor.from_env()


def run_once(benchmark, fn):
    """Run an experiment exactly once under the pytest-benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
