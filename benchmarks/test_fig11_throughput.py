"""Figure 11: normalized throughput of BHSS vs DSSS/FHSS over Eb/N0.

Paper setup: N = 500-byte packets, SJR −20 dB, BHSS with L = 20 dB and
hop range 100; DSSS/FHSS configured for the *same data rate* by raising
their processing gain to ~25.4 dB (Section 5.4).  Expected shape:

* against small fixed jammer bandwidths BHSS's throughput rises quickly
  with Eb/N0 while DSSS/FHSS stay far below;
* against a jammer at max(Bp), BHSS saturates well below 1 (the paper
  reads ~0.3) — the hop bandwidths too close to the jammer never recover;
* against the random-hopping jammer BHSS is strictly better than
  DSSS/FHSS at every Eb/N0, with the curves separated by roughly 12 dB.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult
from repro.core import theory

from repro.analysis import experiments
from _common import run_once, save_and_print

SJR_DB = -20.0
L_BHSS_DB = 20.0
PACKET_BITS = 500 * 8
#: The octave-spaced experimental bandwidth set.  The paper quotes an
#: equal-rate DSSS gain of 25.4 dB, which matches the mean bandwidth of
#: exactly this 7-value set (the text's "range 100" grid would give 26 dB+).
BANDWIDTHS = 1.0 / 2.0 ** np.arange(7)
WEIGHTS = np.full(BANDWIDTHS.size, 1.0 / BANDWIDTHS.size)
FIXED_RATIOS = [1.0, 0.3, 0.1, 0.03, 0.01]


def compute_figure11(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.figure11` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.figure11(*args, **kwargs)


@pytest.mark.benchmark(group="fig11")
def test_fig11_throughput(benchmark):
    result = run_once(benchmark, compute_figure11)
    save_and_print(
        result,
        "fig11_throughput",
        "Figure 11: normalized throughput vs Eb/N0 (SJR -20 dB, 500-byte packets)",
    )

    ebno = np.array(result.column("ebno_db"))
    dsss = np.array(result.column("dsss_fhss"))
    rand = np.array(result.column("bhss_bj_random"))

    # the equal-rate DSSS processing gain lands near the paper's 25.4 dB
    l_dsss = theory.equal_rate_processing_gain_db(L_BHSS_DB, BANDWIDTHS, WEIGHTS)
    assert l_dsss == pytest.approx(25.4, abs=0.7)

    # BHSS vs the random jammer dominates DSSS/FHSS from mid Eb/N0 on
    mid = ebno >= 10.0
    assert np.all(rand[mid] >= dsss[mid] - 1e-9)
    idx20 = np.argmin(np.abs(ebno - 20.0))
    assert rand[idx20] > dsss[idx20] + 0.3

    # narrow fixed jammers: BHSS throughput rises early (near the AWGN
    # waterfall of a 500-byte packet, ~11 dB)
    narrow = np.array(result.column("bhss_bj_0.01"))
    idx13 = np.argmin(np.abs(ebno - 13.0))
    assert narrow[idx13] > 0.5

    # jammer at max(Bp): BHSS saturates well below 1 (paper reads ~0.3)
    matched = np.array(result.column("bhss_bj_1.0"))
    assert 0.1 < matched[-1] < 0.7

    # ~12 dB horizontal separation between BHSS-random and DSSS at the
    # half-throughput level (paper: "curves are separated by roughly 12 dB")
    def crossing(curve, level=0.5):
        above = np.where(curve >= level)[0]
        return ebno[above[0]] if above.size else np.inf

    gap = crossing(dsss) - crossing(rand)
    assert gap >= 6.0  # order-10 dB separation
