"""Figure 7: upper bound on the SNR improvement factor vs bandwidth ratio.

Paper: γ_dB over ``Bp/Bj`` from 1e-2 to 1e2 for jammer powers of 10, 20
and 30 dB(m) at σ_n² = 0.01 (eq. 11-13).  Expected shape:

* for ratios below 1 (wide jammer) the bound rises roughly linearly on
  the log axis — 10 dB per decade — and is power-independent;
* for ratios above 1 (narrow jammer) the bound saturates near the jammer
  power itself, after a γ=1 notch just above ratio 1 (eq. 10);
* the curve is asymmetric around the matched point.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult
from repro.core import theory

from repro.analysis import experiments
from _common import run_once, save_and_print

JAMMER_POWERS_DB = [10.0, 20.0, 30.0]
NOISE_POWER = 0.01


def compute_figure7(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.figure07` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.figure07(*args, **kwargs)


@pytest.mark.benchmark(group="fig07")
def test_fig07_snr_improvement_bound(benchmark):
    result = run_once(benchmark, compute_figure7)
    save_and_print(
        result,
        "fig07_snr_bound",
        "Figure 7: upper bound on SNR improvement factor gamma [dB] vs Bp/Bj",
    )

    ratios = np.array(result.column("bp_over_bj"))
    g20 = np.array(result.column("gamma_db_20dBm"))
    g10 = np.array(result.column("gamma_db_10dBm"))
    g30 = np.array(result.column("gamma_db_30dBm"))

    # wide-jammer side: ~linear in log ratio, power-independent
    wide = ratios < 0.5
    np.testing.assert_allclose(g10[wide], g20[wide], atol=1.0)
    np.testing.assert_allclose(g20[wide], g30[wide], atol=1.0)
    idx_001 = np.argmin(np.abs(ratios - 0.01))
    assert g20[idx_001] == pytest.approx(20.0, abs=1.0)  # 100x offset = 20 dB
    idx_01 = np.argmin(np.abs(ratios - 0.1))
    assert g20[idx_01] == pytest.approx(10.0, abs=1.0)

    # matched point: no improvement
    idx_1 = np.argmin(np.abs(ratios - 1.0))
    assert g20[idx_1] == pytest.approx(0.0, abs=0.5)

    # narrow-jammer side saturates near the jammer power
    idx_100 = np.argmin(np.abs(ratios - 100.0))
    assert g10[idx_100] == pytest.approx(10.0, abs=1.0)
    assert g20[idx_100] == pytest.approx(20.0, abs=1.0)
    assert g30[idx_100] == pytest.approx(30.0, abs=1.0)

    # eq. (10) notch: gamma = 1 just above the matched ratio
    notch = (ratios > 1.0) & (ratios < 1.01 / (1 - (10**2 - 1) / (10**2 + NOISE_POWER)))
    assert np.all(g20[(ratios > 1.0) & (ratios < 1.005)] == pytest.approx(0.0, abs=0.1))

    # asymmetry: at equal offset the narrow side beats the wide side for
    # a 30 dB jammer
    idx_64 = np.argmin(np.abs(ratios - 64.0))
    idx_inv = np.argmin(np.abs(ratios - 1 / 64.0))
    assert g30[idx_64] > g30[idx_inv]
