"""Figure 10: BER of BHSS vs the jammer bandwidth, per SJR.

Paper setup: hop range 100, L = 20 dB, Eb/N0 fixed (high), jammer
bandwidth swept over ``Bj/max(Bp)`` from 1e-2 to 1, one curve per SJR in
{−10, −15, −20} dB.  Expected shape:

* every curve has an interior maximum: the worst jamming bandwidth is
  matched to the SJR (a stronger jammer does best with a wider Bj);
* stronger jamming (more negative SJR) raises the whole curve and its
  peak moves toward wider bandwidths;
* a jammer that cannot estimate the SJR cannot sit at the peak — the
  paper's argument for random-hopping jammers.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult
from repro.core import theory

from repro.analysis import experiments
from _common import run_once, save_and_print

L_DB = 20.0
EBNO_DB = 15.0
BANDWIDTHS = np.logspace(0, -2, 33)
WEIGHTS = np.full(BANDWIDTHS.size, 1.0 / BANDWIDTHS.size)
SJRS_DB = [-10.0, -15.0, -20.0]


def compute_figure10(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.figure10` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.figure10(*args, **kwargs)


@pytest.mark.benchmark(group="fig10")
def test_fig10_ber_vs_jammer_bandwidth(benchmark):
    result = run_once(benchmark, compute_figure10)
    save_and_print(
        result,
        "fig10_ber_vs_bj",
        "Figure 10: BHSS BER vs jammer bandwidth (hop range 100, L = 20 dB)",
    )

    ratios = np.array(result.column("bj_over_max_bp"))
    curves = {sjr: np.array(result.column(f"ber_sjr_{sjr:.0f}dB")) for sjr in SJRS_DB}

    # stronger jamming raises the peak BER
    assert curves[-20.0].max() > curves[-15.0].max() > curves[-10.0].max()

    # interior maximum: for the strong jammers the peak is away from both
    # edges of the sweep
    for sjr in [-15.0, -20.0]:
        peak_idx = int(np.argmax(curves[sjr]))
        assert 0 < peak_idx < ratios.size - 1

    # the peak bandwidth moves wider as the jammer gets stronger
    peak_m10 = ratios[int(np.argmax(curves[-10.0]))]
    peak_m20 = ratios[int(np.argmax(curves[-20.0]))]
    assert peak_m20 >= peak_m10

    # picking the wrong bandwidth costs the jammer orders of magnitude
    strong = curves[-20.0]
    assert strong.max() / max(strong.min(), 1e-300) > 1e3
