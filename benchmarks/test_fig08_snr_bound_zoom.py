"""Figure 8: zoom of the SNR-improvement bound near the matched point.

Paper: the same eq. 11-13 bound plotted over ``Bp/Bj`` in [0.5, 2],
showing that "significant gains can be achieved by BHSS for bandwidth
ratios between 0.5 and 2" — i.e. even one octave of bandwidth offset
already buys several dB, while the γ=1 notch is confined to a sliver just
above the matched ratio.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult
from repro.core import theory

from repro.analysis import experiments
from _common import run_once, save_and_print

JAMMER_POWERS_DB = [10.0, 20.0, 30.0]
NOISE_POWER = 0.01


def compute_figure8(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.figure08` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.figure08(*args, **kwargs)


@pytest.mark.benchmark(group="fig08")
def test_fig08_snr_improvement_zoom(benchmark):
    result = run_once(benchmark, compute_figure8)
    save_and_print(
        result,
        "fig08_snr_bound_zoom",
        "Figure 8: SNR improvement bound, zoom on Bp/Bj in [0.5, 2]",
    )

    ratios = np.array(result.column("bp_over_bj"))
    g20 = np.array(result.column("gamma_db_20dBm"))
    g30 = np.array(result.column("gamma_db_30dBm"))

    # one octave wide-jammer offset (ratio 0.5) already gives ~3 dB
    idx_half = np.argmin(np.abs(ratios - 0.5))
    assert g20[idx_half] == pytest.approx(3.0, abs=0.6)

    # matched point gives nothing
    idx_one = np.argmin(np.abs(ratios - 1.0))
    assert g20[idx_one] == pytest.approx(0.0, abs=0.3)

    # one octave narrow-jammer offset (ratio 2) is significant and grows
    # with the jammer power (the asymmetry visible in the paper's plot)
    idx_two = np.argmin(np.abs(ratios - 2.0))
    assert g20[idx_two] > 10.0
    assert g30[idx_two] > g20[idx_two]

    # the gamma=1 notch exists but is narrow: by ratio 1.05 the 20 dB
    # jammer already yields a positive bound
    idx_105 = np.argmin(np.abs(ratios - 1.05))
    assert g20[idx_105] > 5.0
