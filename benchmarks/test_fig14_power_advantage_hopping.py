"""Figure 14: power advantage of BHSS vs fixed-bandwidth jammers.

Paper (Section 6.4.2): for each hopping pattern (linear / exponential /
parabolic) and each of the seven fixed jammer bandwidths, the power
advantage over the fixed-bandwidth reference system — 10 MHz signal and
10 MHz jammer, same code base with hopping disabled.  Expected shape:

* advantages from a few dB up to >15 dB, strongly dependent on the
  jammer bandwidth;
* the worst-case jammer bandwidth differs per pattern — for the
  exponential pattern it is the widest bandwidth (which exponential
  transmits half the time), for linear/parabolic it sits at intermediate
  bandwidths where many hop choices are nearly matched;
* narrow jammers are on average filtered more effectively than wide
  ones (the asymmetry of Figure 13 carried over).

Economical default: 8 packets per probed SNR; scale with REPRO_SCALE.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult, min_snr_for_per
from repro.core import BHSSConfig, LinkSimulator
from repro.jamming import BandlimitedNoiseJammer

from repro.analysis import experiments
from _common import JNR_DB, default_search, run_once, save_and_print

PATTERNS = ["linear", "exponential", "parabolic"]
PAYLOAD = 8
SYMBOLS_PER_HOP = 16  # two hop dwells per probe frame


def compute_figure14(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.figure14` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.figure14(*args, **kwargs)


@pytest.mark.benchmark(group="fig14")
def test_fig14_power_advantage_hopping(benchmark):
    result = run_once(benchmark, compute_figure14)
    save_and_print(
        result,
        "fig14_power_advantage",
        "Figure 14: power advantage [dB] vs fixed jammer bandwidth, per hopping pattern",
    )

    adv = {
        p: np.array(result.filtered(pattern=p).column("advantage_db")) for p in PATTERNS
    }
    bjs = np.array(result.filtered(pattern=PATTERNS[0]).column("bj_mhz"))

    for p in PATTERNS:
        # considerable improvements at the best jammer bandwidth ...
        assert adv[p].max() > 5.0
        # ... and a strong dependence on the jammer bandwidth
        assert adv[p].max() - adv[p].min() > 4.0
        # hopping never loses badly to the matched fixed baseline
        assert adv[p].min() > -3.0

    # exponential's worst case is at (or next to) the widest jammer
    # bandwidth, which it transmits at half the time
    worst_exp_bj = bjs[int(np.argmin(adv["exponential"]))]
    assert worst_exp_bj >= 5.0

    # exponential shines against narrow jammers (it rarely transmits
    # narrow, so narrow jammers are almost always offset)
    assert adv["exponential"][bjs <= 0.625].min() > 10.0

    # the patterns disagree about the worst jammer bandwidth (the game
    # structure that motivates Table 2)
    worsts = {p: float(bjs[int(np.argmin(adv[p]))]) for p in PATTERNS}
    assert len(set(worsts.values())) >= 2
