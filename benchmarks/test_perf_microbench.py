"""Performance microbenchmarks of the simulation hot paths.

Not a paper experiment — these time the kernels that dominate every
signal-level sweep, so performance regressions in the DSP substrate show
up here before they silently double the Figure-13/14 runtimes.  These run
with pytest-benchmark's normal multi-round statistics (unlike the
experiment benchmarks, which execute once).
"""

import json
import os

import numpy as np
import pytest

from repro.analysis import run_sweep
from repro.core import BHSSConfig, BHSSReceiver, BHSSTransmitter, ControlLogic, LinkSimulator
from repro.dsp import apply_fir, design_excision_filter, lowpass_taps, welch_psd
from repro.jamming import BandlimitedNoiseJammer, bandlimited_noise
from repro.phy import ChipModulator
from repro.runtime import ParallelExecutor
from repro.utils.rng import make_rng
from repro.spread import SixteenAryDSSS

from _common import RESULTS_DIR

FS = 20e6
rng = make_rng(0)
BLOCK = (rng.normal(size=262144) + 1j * rng.normal(size=262144)) / np.sqrt(2)
TAPS_LPF = lowpass_taps(513, 2.5e6, FS)


@pytest.mark.benchmark(group="perf-dsp")
def test_perf_apply_fir_overlap_save(benchmark):
    benchmark(apply_fir, BLOCK, TAPS_LPF, "compensated")


@pytest.mark.benchmark(group="perf-dsp")
def test_perf_welch_psd(benchmark):
    benchmark(welch_psd, BLOCK, FS, 128)


@pytest.mark.benchmark(group="perf-dsp")
def test_perf_excision_design(benchmark):
    jammed = BLOCK + 10 * bandlimited_noise(BLOCK.size, 0.625e6, FS, rng=1)
    benchmark(design_excision_filter, jammed, FS, 257)


@pytest.mark.benchmark(group="perf-dsp")
def test_perf_bandlimited_noise(benchmark):
    benchmark(bandlimited_noise, 131072, 2.5e6, FS, 2)


@pytest.mark.benchmark(group="perf-phy")
def test_perf_modulate(benchmark):
    mod = ChipModulator("half_sine")
    chips = np.where(rng.random(4096) > 0.5, 1.0, -1.0)
    benchmark(mod.modulate, chips, 16)


@pytest.mark.benchmark(group="perf-phy")
def test_perf_demodulate(benchmark):
    mod = ChipModulator("half_sine")
    chips = np.where(rng.random(4096) > 0.5, 1.0, -1.0)
    wave = mod.modulate(chips, 16)
    benchmark(mod.demodulate, wave, 16)


@pytest.mark.benchmark(group="perf-phy")
def test_perf_despread(benchmark):
    modem = SixteenAryDSSS(seed=1)
    symbols = rng.integers(0, 16, size=256)
    chips = modem.spread(symbols)
    benchmark(modem.despread, chips)


@pytest.mark.benchmark(group="perf-system")
def test_perf_transmit_packet(benchmark):
    tx = BHSSTransmitter(BHSSConfig.paper_default(seed=3, payload_bytes=16))
    benchmark(tx.transmit, None, 0)


@pytest.mark.benchmark(group="perf-system")
def test_perf_receive_packet(benchmark):
    cfg = BHSSConfig.paper_default(seed=3, payload_bytes=16)
    packet = BHSSTransmitter(cfg).transmit()
    receiver = BHSSReceiver(cfg)
    benchmark(receiver.receive, packet.waveform)


@pytest.mark.benchmark(group="perf-system")
def test_perf_control_decision(benchmark):
    logic = ControlLogic(sample_rate=FS)
    jammed = BLOCK[:65536] + 5 * bandlimited_noise(65536, 0.625e6, FS, rng=4)
    benchmark(logic.decide, jammed, 10e6)


def test_perf_parallel_sweep_speedup():
    """Parallel sweep engine: bit-identical to serial, tracked speedup.

    Times a multi-point link sweep once serially and once across a
    4-process pool, asserts the results match exactly (the engine's
    determinism contract), and writes the wall times to a BENCH JSON so
    the speedup is tracked across PRs.  The >= 2x speedup assertion only
    applies on machines with >= 4 cores — on smaller runners the pool
    path is still exercised and timed, just not held to the ratio.
    """
    workers = 4
    cfg = BHSSConfig.paper_default(payload_bytes=4, seed=17)
    link = LinkSimulator(cfg)
    snrs = [float(s) for s in np.linspace(0.0, 18.0, 8)]
    serial = ParallelExecutor(0)

    def evaluate(snr_db):
        stats = link.run_packets(
            4, snr_db=snr_db, sjr_db=-10.0,
            jammer=BandlimitedNoiseJammer(2.5e6, FS), seed=3,
            executor=serial, cache=False,
        )
        return {"snr_db": snr_db, "per": stats.packet_error_rate, "ber": stats.bit_error_rate}

    columns = ["snr_db", "per", "ber"]
    base = run_sweep(columns, snrs, evaluate, executor=serial)
    pool = run_sweep(columns, snrs, evaluate, executor=ParallelExecutor(workers))
    assert pool.rows == base.rows  # determinism: parallel == serial, bit for bit

    speedup = base.timing.wall_seconds / pool.timing.wall_seconds
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_parallel_sweep.json"), "w") as fh:
        json.dump(
            {
                "points": len(snrs),
                "packets_per_point": 4,
                "workers": workers,
                "cpu_count": os.cpu_count(),
                "serial": base.timing.to_dict(),
                "parallel": pool.timing.to_dict(),
                "speedup": speedup,
            },
            fh,
            indent=2,
        )
    print(f"\nparallel sweep speedup: {speedup:.2f}x "
          f"(serial {base.timing.wall_seconds:.2f} s, pool {pool.timing.wall_seconds:.2f} s)")
    if ParallelExecutor.fork_available() and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"expected >= 2x speedup on >= 4 cores, got {speedup:.2f}x"
