"""Performance microbenchmarks of the simulation hot paths.

Not a paper experiment — these time the kernels that dominate every
signal-level sweep, so performance regressions in the DSP substrate show
up here before they silently double the Figure-13/14 runtimes.  These run
with pytest-benchmark's normal multi-round statistics (unlike the
experiment benchmarks, which execute once).
"""

import numpy as np
import pytest

from repro.core import BHSSConfig, BHSSReceiver, BHSSTransmitter, ControlLogic
from repro.dsp import apply_fir, design_excision_filter, lowpass_taps, welch_psd
from repro.jamming import bandlimited_noise
from repro.phy import ChipModulator
from repro.spread import SixteenAryDSSS

FS = 20e6
rng = np.random.default_rng(0)
BLOCK = (rng.normal(size=262144) + 1j * rng.normal(size=262144)) / np.sqrt(2)
TAPS_LPF = lowpass_taps(513, 2.5e6, FS)


@pytest.mark.benchmark(group="perf-dsp")
def test_perf_apply_fir_overlap_save(benchmark):
    benchmark(apply_fir, BLOCK, TAPS_LPF, "compensated")


@pytest.mark.benchmark(group="perf-dsp")
def test_perf_welch_psd(benchmark):
    benchmark(welch_psd, BLOCK, FS, 128)


@pytest.mark.benchmark(group="perf-dsp")
def test_perf_excision_design(benchmark):
    jammed = BLOCK + 10 * bandlimited_noise(BLOCK.size, 0.625e6, FS, rng=1)
    benchmark(design_excision_filter, jammed, FS, 257)


@pytest.mark.benchmark(group="perf-dsp")
def test_perf_bandlimited_noise(benchmark):
    benchmark(bandlimited_noise, 131072, 2.5e6, FS, 2)


@pytest.mark.benchmark(group="perf-phy")
def test_perf_modulate(benchmark):
    mod = ChipModulator("half_sine")
    chips = np.where(rng.random(4096) > 0.5, 1.0, -1.0)
    benchmark(mod.modulate, chips, 16)


@pytest.mark.benchmark(group="perf-phy")
def test_perf_demodulate(benchmark):
    mod = ChipModulator("half_sine")
    chips = np.where(rng.random(4096) > 0.5, 1.0, -1.0)
    wave = mod.modulate(chips, 16)
    benchmark(mod.demodulate, wave, 16)


@pytest.mark.benchmark(group="perf-phy")
def test_perf_despread(benchmark):
    modem = SixteenAryDSSS(seed=1)
    symbols = rng.integers(0, 16, size=256)
    chips = modem.spread(symbols)
    benchmark(modem.despread, chips)


@pytest.mark.benchmark(group="perf-system")
def test_perf_transmit_packet(benchmark):
    tx = BHSSTransmitter(BHSSConfig.paper_default(seed=3, payload_bytes=16))
    benchmark(tx.transmit, None, 0)


@pytest.mark.benchmark(group="perf-system")
def test_perf_receive_packet(benchmark):
    cfg = BHSSConfig.paper_default(seed=3, payload_bytes=16)
    packet = BHSSTransmitter(cfg).transmit()
    receiver = BHSSReceiver(cfg)
    benchmark(receiver.receive, packet.waveform)


@pytest.mark.benchmark(group="perf-system")
def test_perf_control_decision(benchmark):
    logic = ControlLogic(sample_rate=FS)
    jammed = BLOCK[:65536] + 5 * bandlimited_noise(65536, 0.625e6, FS, rng=4)
    benchmark(logic.decide, jammed, 10e6)
