"""Extension: BHSS over frequency-selective (multipath) channels.

The paper's coax testbed is frequency-flat by construction; this
extension asks what the bandwidth dimension does when the channel is
not.  A static tapped-delay-line channel with a ~2 MHz coherence
bandwidth is applied to the signal path and the unjammed PER is measured
per hop bandwidth, with and without a preamble-trained MMSE equalizer.

Expected shape:

* hops well below the coherence bandwidth are flat-faded and survive
  without equalization;
* hops above it suffer inter-chip interference and need the equalizer;
* the equalizer never hurts.

This is a genuinely new trade-off bandwidth hopping introduces (narrow
hops buy multipath robustness as well as jamming robustness), flagged as
exploration in DESIGN.md.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult, env_scale
from repro.channel import MultipathChannel
from repro.core import BHSSConfig, BHSSReceiver, BHSSTransmitter
from repro.sync import equalize, estimate_channel, mmse_equalizer_taps

from repro.analysis import experiments
from _common import run_once, save_and_print

PAYLOAD = 8
#: ~2 MHz coherence bandwidth at 20 MS/s
CHANNEL_TAPS = 10
SNR_NOTE = "noiseless (isolates the ISI effect)"


def run_packets_over_channel(bandwidth: float, equalized: bool, packets: int) -> float:
    cfg = BHSSConfig.paper_default(seed=97, payload_bytes=PAYLOAD).with_fixed_bandwidth(bandwidth)
    tx, rx = BHSSTransmitter(cfg), BHSSReceiver(cfg)
    channel = MultipathChannel(num_taps=CHANNEL_TAPS, decay_samples=3.0, seed=5, line_of_sight=0.5)
    failures = 0
    for k in range(packets):
        packet = tx.transmit(packet_index=k)
        faded = channel.apply(packet.waveform)
        train = min(2048, packet.num_samples // 2)
        if equalized:
            h_est = estimate_channel(faded[:train], packet.waveform[:train], num_taps=CHANNEL_TAPS + 2)
            w = mmse_equalizer_taps(h_est, num_taps=256, noise_power=1e-3)
            faded = equalize(faded, w)
        else:
            # Coherent receivers resolve the channel's absolute phase from
            # the preamble (the Costas loop alone has a 90-degree
            # ambiguity); apply that scalar correction — but no
            # equalization — so the plain variant isolates the ISI effect.
            phase = np.angle(np.vdot(packet.waveform[:train], faded[:train]))
            faded = faded * np.exp(-1j * phase)
        result = rx.receive(faded, packet_index=k, phase_track=True)
        failures += int(not (result.accepted and result.payload == packet.payload))
    return failures / packets


def compute_multipath(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.ext_multipath` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.ext_multipath(*args, **kwargs)


@pytest.mark.benchmark(group="extension")
def test_ext_multipath(benchmark):
    result = run_once(benchmark, compute_multipath)
    save_and_print(
        result,
        "ext_multipath",
        f"Extension: PER per hop bandwidth over a {CHANNEL_TAPS}-tap multipath channel, {SNR_NOTE}",
    )

    bw = np.array(result.column("bandwidth_mhz"))
    plain = np.array(result.column("per_plain"))
    eq = np.array(result.column("per_equalized"))

    # hops far below the ~2 MHz coherence bandwidth survive unequalized
    assert np.all(plain[bw <= 0.625] == 0.0)

    # the equalizer rescues the wide hops
    assert np.all(eq[bw >= 5.0] <= plain[bw >= 5.0])
    assert eq[0] < 1.0  # 10 MHz decodes with equalization

    # equalization never makes things worse
    assert np.all(eq <= plain + 1e-9)
