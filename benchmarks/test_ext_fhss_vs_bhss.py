"""Extension: empirical FHSS baseline vs BHSS at equal RF spectrum.

The paper treats the FHSS comparison analytically ("FHSS achieves the
same jamming resistance as DSSS by using narrower sub-channels",
Section 5.3); with the FHSS modem implemented we can measure it.  Both
systems occupy the same 10 MHz of spectrum:

* FHSS: 1.25 MHz sub-channels, carrier hopped over 8 channels (hop gain
  9 dB on top of the 9 dB spreading factor);
* BHSS: bandwidth hopped over the seven-octave set, filtering receiver.

Attacker: a *follower-proof* strategy for each — the full-band 10 MHz
noise jammer (covers every FHSS channel and every BHSS bandwidth) and a
partial-band / bandwidth-hopping jammer.

Expected shape: against the full-band jammer both spread-spectrum gains
apply and the two are comparable; against the concentrating jammers BHSS
retains an advantage because its receiver filters the jammer *within*
the occupied channel, which FHSS's de-hop filter cannot (the partial-band
jammer sits inside whole sub-channels).
"""

import numpy as np
import pytest

from repro.analysis import SweepResult, ThresholdSearch, min_snr_for_per
from repro.core import BHSSConfig, FHSSLink, FHSSLinkConfig, LinkSimulator
from repro.jamming import BandlimitedNoiseJammer

from repro.analysis import experiments
from _common import JNR_DB, default_search, run_once, save_and_print

PAYLOAD = 8


def fhss_min_snr(link: FHSSLink, jnr_db, jammer, search: ThresholdSearch, seed=0) -> float:
    """Bisection threshold for the FHSS link (same contract as the BHSS one)."""

    def per_at(snr_db: float) -> float:
        per, _ber = link.run_packets(
            search.packets_per_point, snr_db=snr_db, sjr_db=snr_db - jnr_db, jammer=jammer, seed=seed
        )
        return per

    lo, hi = search.snr_low, search.snr_high
    if per_at(hi) > search.target_per:
        return hi
    if per_at(lo) <= search.target_per:
        return lo
    while hi - lo > search.tolerance_db:
        mid = 0.5 * (lo + hi)
        if per_at(mid) <= search.target_per:
            hi = mid
        else:
            lo = mid
    return hi


def compute_comparison(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.ext_fhss_vs_bhss` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.ext_fhss_vs_bhss(*args, **kwargs)


@pytest.mark.benchmark(group="extension")
def test_ext_fhss_vs_bhss(benchmark):
    result = run_once(benchmark, compute_comparison)
    save_and_print(
        result,
        "ext_fhss_vs_bhss",
        "Extension: FHSS vs BHSS min-SNR thresholds at equal RF spectrum (10 MHz)",
    )

    rows = {r["jammer"]: r for r in result.rows}

    # both systems live inside the search bracket everywhere
    for r in result.rows:
        assert r["fhss_threshold_db"] < 44.0
        assert r["bhss_threshold_db"] < 44.0

    # against concentrated jammers BHSS's in-channel filtering keeps an
    # edge over FHSS's channel-avoidance
    assert rows["narrow 0.156 MHz"]["bhss_advantage_db"] > 2.0

    # against the full-band jammer the two spread-spectrum systems are in
    # the same league (within several dB either way)
    assert abs(rows["full-band 10 MHz"]["bhss_advantage_db"]) < 8.0
