"""Ablation: how the hop dwell count per packet shapes the power advantage.

Not a paper figure — this probes the design choice DESIGN.md calls out:
the paper hops "after a configurable number of symbols" without fixing
the value for its experiments, yet the 50 %-PER power advantage depends
strongly on how many dwells a packet spans.  Every dwell must decode for
the CRC to pass, so with many dwells per packet the probability that *no*
dwell lands near the jammer's bandwidth collapses, pinning the threshold
to the near-matched case; with few dwells the advantage approaches the
per-offset filtering gain.

Expected shape: the advantage against a mid-band fixed jammer decreases
monotonically (modulo simulation noise) as dwells-per-packet grows.  Two
effects compound at many short dwells: every dwell must decode, AND each
dwell's spectral jammer estimate averages fewer Welch segments, raising
the (variance-adaptive) excision threshold — so short dwells both fail
more often and filter less aggressively.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult, min_snr_for_per
from repro.core import BHSSConfig, LinkSimulator
from repro.jamming import BandlimitedNoiseJammer

from repro.analysis import experiments
from _common import JNR_DB, default_search, run_once, save_and_print

PAYLOAD = 8  # 32-symbol frames
#: symbols_per_hop values giving 8, 4, 2 and 1 dwells per frame
SYMBOLS_PER_HOP = [4, 8, 16, 32]
JAMMER_BW = 2.5e6


def compute_ablation(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.ablation_dwells` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.ablation_dwells(*args, **kwargs)


@pytest.mark.benchmark(group="ablation")
def test_ablation_dwells_per_packet(benchmark):
    result = run_once(benchmark, compute_ablation)
    save_and_print(
        result,
        "ablation_dwells",
        f"Ablation: power advantage vs dwells per packet (exponential pattern, Bj = {JAMMER_BW / 1e6:.4g} MHz)",
    )

    dwells = np.array(result.column("dwells_per_packet"))
    adv = np.array(result.column("advantage_db"))
    assert dwells[0] > dwells[-1]

    # fewer dwells per packet -> larger (or equal) advantage, up to the
    # bisection tolerance
    assert adv[-1] >= adv[0] - 1.5
    assert adv.max() - adv.min() >= 0.0

    # even the many-dwell configuration stays within a few dB of the
    # fixed baseline (short dwells degrade both decoding odds and the
    # spectral estimation the filters depend on)
    assert adv.min() > -4.0
