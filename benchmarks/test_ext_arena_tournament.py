"""Extension: the adversary-zoo tournament's resilience matrix.

The paper evaluates BHSS against narrowband, matched, and hopping
jammers one at a time; this extension runs the full adaptive-attacker
zoo — latent reactive, convolution/repeater, optimal multitone, and the
learning follower — as one tournament grid over {static band, full
randomized hopping} x {linear, parabolic} at a single shared (SNR, SJR)
operating point, through :func:`repro.arena.run_tournament`.

Expected shape:

* every PER cell is a valid probability and the unjammed baseline
  column is at least as clean as any jammed cell at the same grid
  coordinates;
* the learning follower hurts the static band at least as much as the
  randomized hopper — the Wiese & Papadimitratos boundary the
  integration wall gates strictly (the latent reactive attacker shows
  the *opposite* sign here by design: the wide static band carries
  short packets that fit inside its turnaround latency, a second
  defensive effect the grid makes visible).
"""

import numpy as np
import pytest

from repro.analysis import experiments

from _common import run_once, save_and_print


def compute_arena(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.ext_arena` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.ext_arena(*args, **kwargs)


@pytest.mark.benchmark(group="extension")
def test_ext_arena_tournament(benchmark):
    result = run_once(benchmark, compute_arena)
    save_and_print(
        result,
        "ext_arena_tournament",
        "Extension: adversary-zoo tournament (resilience matrix, jammer advantage)",
    )

    jammers = result.column("jammer")
    patterns = result.column("pattern")
    bands = result.column("num_bands")
    per = np.array(result.column("per"))

    # the full grid: 5 jammer strategies x 2 patterns x 2 hop ranges
    assert len(per) == 5 * 2 * 2
    assert set(jammers) == {"none", "latent", "repeater", "multitone", "follower"}
    assert np.all((0.0 <= per) & (per <= 1.0))

    cell = {
        (j, p, b): float(v) for j, p, b, v in zip(jammers, patterns, bands, per)
    }

    # the baseline column is at least as clean as any jammed cell
    for (j, p, b), v in cell.items():
        assert v >= cell[("none", p, b)] - 1e-9

    # the follower's learned estimate settles on the static band and
    # chases the randomized hopper (the strict version, with the matched
    # reactive attacker, lives in tests/test_integration_paper_claims.py)
    for pattern in ("linear", "parabolic"):
        assert cell[("follower", pattern, 1)] >= cell[("follower", pattern, 7)] - 1e-9
