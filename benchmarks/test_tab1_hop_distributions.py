"""Table 1: the hop-probability distributions of the three patterns.

Paper (Section 6.4.1, Table 1): per-bandwidth selection probabilities of
the linear (uniform), exponential (equal air time) and parabolic
(Monte-Carlo maximin) patterns over the seven experimental bandwidths,
together with their average bandwidth utilization and throughput:
linear → 2.83 MHz / 354 kb/s, exponential → 6.72 MHz / 840 kb/s,
parabolic → 3.77 MHz / 471 kb/s.

The benchmark regenerates the table, re-runs the Monte-Carlo maximin
optimization from scratch, and checks that the optimizer's result (a)
has the bathtub shape, (b) beats linear and exponential in the worst
case, and (c) scores within a dB of the paper's published weights.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult
from repro.hopping import (
    PAPER_PARABOLIC_WEIGHTS,
    expected_bandwidth,
    expected_throughput,
    exponential_weights,
    linear_weights,
    maximin_score_db,
    optimize_parabolic_weights,
    paper_bandwidths,
)

from repro.analysis import experiments
from _common import run_once, save_and_print

BWS = paper_bandwidths()


def compute_table1(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.table1` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.table1(*args, **kwargs)


@pytest.mark.benchmark(group="tab1")
def test_tab1_hop_distributions(benchmark):
    result, summary = run_once(benchmark, compute_table1)
    save_and_print(result, "tab1_hop_distributions", "Table 1: hop distributions [%] per bandwidth")
    save_and_print(result=summary, name="tab1_summary", title="Table 1 summary: average bandwidth / throughput / worst-case gamma")

    # Table 1's published rows
    np.testing.assert_allclose(result.column("linear_pct"), 14.2857, atol=0.01)
    np.testing.assert_allclose(
        result.column("exponential_pct"), [50.4, 25.2, 12.6, 6.3, 3.1, 1.6, 0.8], atol=0.05
    )
    np.testing.assert_allclose(
        result.column("parabolic_paper_pct"), [27.1, 15.8, 6.3, 0.1, 1.3, 22.0, 27.4], atol=0.01
    )

    # Section 6.4.1's averages
    avg = {r["pattern"]: r for r in summary.rows}
    assert avg["linear"]["avg_bandwidth_mhz"] == pytest.approx(2.83, abs=0.02)
    assert avg["linear"]["throughput_kbps"] == pytest.approx(354, abs=2)
    assert avg["exponential"]["avg_bandwidth_mhz"] == pytest.approx(6.72, abs=0.02)
    assert avg["exponential"]["throughput_kbps"] == pytest.approx(840, abs=3)
    assert avg["parabolic (paper)"]["avg_bandwidth_mhz"] == pytest.approx(3.77, abs=0.05)
    assert avg["parabolic (paper)"]["throughput_kbps"] == pytest.approx(471, abs=5)

    # the re-run Monte-Carlo optimization reproduces the qualitative
    # findings: a bathtub shape that maximizes the worst case
    opt = np.array(result.column("parabolic_optimized_pct")) / 100
    assert opt[0] > opt[3] and opt[6] > opt[3]
    s_opt = avg["parabolic (re-optimized)"]["maximin_gamma_db"]
    assert s_opt >= avg["linear"]["maximin_gamma_db"]
    assert s_opt >= avg["exponential"]["maximin_gamma_db"]
    assert s_opt >= avg["parabolic (paper)"]["maximin_gamma_db"] - 1.0
