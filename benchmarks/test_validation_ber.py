"""Validation: the signal-level simulator against the Section-5 analysis.

Not a paper figure — a cross-check that the two halves of this repository
agree.  Two experiments:

1. **Waterfall**: unjammed BER of the fixed-bandwidth link vs SNR must be
   monotone decreasing with the familiar waterfall shape.
2. **Processing gain**: under a *matched* jammer (the case where no
   filtering can help, eq. 7), the measured BER at chip SJR ``s`` should
   be comparable to the unjammed BER at ``s + processing gain`` — i.e.
   despreading buys the 9 dB of the spreading factor and nothing more,
   exactly the paper's premise for why BHSS is needed.
"""

import numpy as np
import pytest

from repro.analysis import SweepResult, env_scale
from repro.core import BHSSConfig, LinkSimulator
from repro.jamming import BandlimitedNoiseJammer

from repro.analysis import experiments
from _common import run_once, save_and_print

PAYLOAD = 16


def measure_ber(link, snr_db, sjr_db=float("inf"), jammer=None, packets=12, seed=0):
    stats = link.run_packets(packets, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer, seed=seed)
    return stats.bit_error_rate


def compute_validation(*args, **kwargs):
    """Delegate to :func:`repro.analysis.experiments.validation_ber` —
    the canonical, user-callable implementation of this experiment."""
    return experiments.validation_ber(*args, **kwargs)


@pytest.mark.benchmark(group="validation")
def test_validation_ber(benchmark):
    waterfall, matched = run_once(benchmark, compute_validation)
    save_and_print(waterfall, "validation_waterfall", "Validation: unjammed BER waterfall (fixed 10 MHz)")
    save_and_print(
        matched,
        "validation_processing_gain",
        "Validation: matched jammer vs equivalent-noise reference (eq. 7)",
    )

    ber = np.array(waterfall.column("ber"))
    # monotone decreasing waterfall with a real dynamic range
    assert np.all(np.diff(ber) <= 1e-12)
    assert ber[0] > 0.05
    assert ber[-1] < 0.01

    # matched jamming is equivalent to in-band noise of the same power:
    # within a small factor at every probed SJR
    for row in matched.rows:
        a, b = row["ber_jammed"], row["ber_unjammed_at_sjr_plus_gain"]
        assert a == pytest.approx(b, abs=0.03) or (a > 0 and b > 0 and 0.2 < a / b < 5.0)
