"""Setup shim.

The evaluation environment has no network access and no ``wheel`` package,
so PEP 517 editable installs (which require building a wheel) fail.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` perform
a legacy ``setup.py develop`` install.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
