"""repro — Bandwidth Hopping Spread Spectrum (BHSS).

A from-scratch Python reproduction of *"Jamming Mitigation by Randomized
Bandwidth Hopping"* (Liechti, Lenders, Giustiniano — CoNEXT 2015): the BHSS
transmitter/receiver pair, the DSSS/FHSS baselines, the jammer models, the
channel simulator, and the full evaluation harness for every table and
figure of the paper.

Quickstart::

    from repro import BHSSConfig, LinkSimulator, BandlimitedNoiseJammer

    config = BHSSConfig.paper_default()
    link = LinkSimulator(config)
    jammer = BandlimitedNoiseJammer(bandwidth=2.5e6, sample_rate=config.sample_rate)
    stats = link.run_packets(num_packets=20, snr_db=10.0, sjr_db=-5.0,
                             jammer=jammer, seed=1)
    print(stats.packet_error_rate, stats.bit_error_rate)

Subpackages
-----------
``repro.dsp``
    FIR design, excision/whitening filters, PSD estimation, pulse shapes.
``repro.sync``
    Costas loop, Gardner timing recovery, preamble detection.
``repro.spread``
    PN/Gold sequences, IEEE 802.15.4-style 16-ary DSSS, FHSS modem.
``repro.phy``
    Bit/symbol packing, CRC, QPSK chip modulation, framing.
``repro.channel``
    AWGN channel, impairments, multi-source medium.
``repro.jamming``
    Fixed-band, reactive, hopping, tone, sweep and pulsed jammers.
``repro.hopping``
    Bandwidth sets, hop-weight patterns (linear/exponential/parabolic),
    maximin optimizer, seeded hop schedules.
``repro.core``
    BHSS transmitter/receiver, control logic, link simulator, theory.
``repro.analysis``
    Power-advantage threshold search and sweep utilities.
``repro.network``
    N-link shared-spectrum networks: serializable topologies, the
    parallel ``run_network`` driver, throughput/fairness aggregates.
``repro.arena``
    Jammer tournaments: the adversary zoo swept over hop patterns and
    hop ranges into a resilience matrix with a jammer-advantage summary.
``repro.protocol``
    Seed-synchronized session layer: packetizer/whitening, hop-seed
    generators, and the desync-detecting, re-syncing session state
    machine with the parallel ``run_session`` driver.
"""

__version__ = "1.0.0"

from repro.arena import ArenaSpec, TournamentResult, run_tournament
from repro.core import (
    AcquiringReceiver,
    BHSSConfig,
    BHSSReceiver,
    BHSSTransmitter,
    ControlLogic,
    FHSSLink,
    FHSSLinkConfig,
    FilterDecision,
    LinkSimulator,
    LinkStats,
    SeedPool,
    UncoordinatedReceiver,
    UncoordinatedTransmitter,
    theory,
)
from repro.channel import Impairments, Medium, MultipathChannel
from repro.jamming import (
    BandlimitedNoiseJammer,
    CombJammer,
    FollowerJammer,
    HoppingJammer,
    Jammer,
    LatentReactiveJammer,
    MatchedReactiveJammer,
    MultiToneJammer,
    NoJammer,
    PulsedJammer,
    RepeaterJammer,
    SweepJammer,
    ToneJammer,
)
from repro.hopping import (
    BandwidthSet,
    HopSchedule,
    exponential_weights,
    linear_weights,
    paper_bandwidths,
    parabolic_weights,
)
from repro.network import (
    LinkSpec,
    NetworkResult,
    NetworkSimulator,
    NetworkSpec,
    jain_fairness,
    run_network,
)
from repro.protocol import (
    MessageTrafficSpec,
    SessionManager,
    SessionSpec,
    SessionState,
    run_session,
    simulate_session,
)

__all__ = [
    "__version__",
    "BHSSConfig",
    "BHSSTransmitter",
    "BHSSReceiver",
    "AcquiringReceiver",
    "FHSSLink",
    "FHSSLinkConfig",
    "SeedPool",
    "UncoordinatedTransmitter",
    "UncoordinatedReceiver",
    "Impairments",
    "Medium",
    "MultipathChannel",
    "CombJammer",
    "ControlLogic",
    "FilterDecision",
    "LinkSimulator",
    "LinkStats",
    "theory",
    "Jammer",
    "NoJammer",
    "BandlimitedNoiseJammer",
    "MatchedReactiveJammer",
    "HoppingJammer",
    "ToneJammer",
    "SweepJammer",
    "PulsedJammer",
    "LatentReactiveJammer",
    "RepeaterJammer",
    "MultiToneJammer",
    "FollowerJammer",
    "BandwidthSet",
    "HopSchedule",
    "paper_bandwidths",
    "linear_weights",
    "exponential_weights",
    "parabolic_weights",
    "LinkSpec",
    "NetworkSpec",
    "NetworkResult",
    "NetworkSimulator",
    "run_network",
    "jain_fairness",
    "ArenaSpec",
    "TournamentResult",
    "run_tournament",
    "SessionSpec",
    "MessageTrafficSpec",
    "SessionManager",
    "SessionState",
    "simulate_session",
    "run_session",
]
