"""Whole-tree project rules: manifest, registries, env knobs, mypy baseline.

These checkers cross-reference things no single file shows: the batch
manifest against the live import surface, the scenario registries against
their spec protocol, ``REPRO_*`` literals against the documentation, and
the mypy override list in ``pyproject.toml`` against its frozen baseline.
"""

from __future__ import annotations

import ast
import inspect
import os
import re
from typing import Iterator

from repro.lint.engine import Finding, ProjectContext, Rule

__all__ = [
    "BatchManifestRule",
    "RegistryRoundtripRule",
    "KnobDocsRule",
    "MypyBaselineRule",
    "collect_code_knobs",
    "documented_knobs",
    "STRICT_MODULES",
    "frozen_baseline",
    "pyproject_baseline",
]

_KNOB_RE = re.compile(r"^REPRO_[A-Z][A-Z0-9_]*$")
_DOC_KNOB_RE = re.compile(r"\b(REPRO_[A-Z][A-Z0-9_]*)\b")

#: packages that must stay mypy-strict — never allowed in the baseline
STRICT_MODULES = (
    "repro.arena",
    "repro.core",
    "repro.dsp",
    "repro.network",
    "repro.protocol",
    "repro.scenario",
    "repro.utils.rng",
)

#: docs that must collectively document every code knob
KNOB_DOCS = ("docs/API.md", "EXPERIMENTS.md")
#: docs that must never mention a knob the code does not read
KNOB_DOC_SURFACES = ("docs/API.md", "EXPERIMENTS.md", "README.md")


class BatchManifestRule(Rule):
    """Every equivalence-manifest entry resolves to live callables.

    The ``batch-symmetry`` source rule guarantees new batch primitives
    land in the manifest; this rule guards the other direction — a
    renamed or deleted function must not leave a dangling manifest entry
    silently shrinking the equivalence wall.
    """

    id = "batch-manifest"
    description = "BATCH_EQUIVALENCE entries must resolve to importable callables"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        from repro.lint import manifest

        manifest_path = _relsource(ctx, manifest)
        for batch_ref, serial_ref in manifest.BATCH_EQUIVALENCE.items():
            for ref, kind in ((batch_ref, "batch"), (serial_ref, "serial")):
                try:
                    manifest.resolve(ref)
                except Exception as exc:  # any import/type failure IS the finding
                    yield Finding(
                        manifest_path, _manifest_line(manifest, batch_ref), 0, self.id,
                        f"{kind} reference {ref!r} does not resolve: {exc}",
                    )
        for kernel_ref, wrapper_ref in manifest.BACKEND_KERNELS.items():
            for ref, kind in ((kernel_ref, "backend kernel"), (wrapper_ref, "wrapper")):
                try:
                    manifest.resolve(ref)
                except Exception as exc:
                    yield Finding(
                        manifest_path, _manifest_line(manifest, kernel_ref), 0, self.id,
                        f"{kind} reference {ref!r} does not resolve: {exc}",
                    )
            # The chain backend kernel -> wrapper -> serial twin must stay
            # closed: a dispatching wrapper outside the equivalence wall
            # would leave the backend path untested against its serial twin.
            if wrapper_ref not in manifest.BATCH_EQUIVALENCE:
                yield Finding(
                    manifest_path, _manifest_line(manifest, kernel_ref), 0, self.id,
                    f"backend wrapper {wrapper_ref!r} has no BATCH_EQUIVALENCE entry",
                )


class RegistryRoundtripRule(Rule):
    """Registered scenario components satisfy the spec round-trip protocol.

    A jammer/channel class reachable from a scenario file must be
    rebuildable *from* a scenario file: jammers override ``spec()`` and
    inherit/override ``from_spec``; channels expose ``spec()`` and
    ``apply()``; impairments keep their ``to_dict``/``from_dict`` pair;
    named hop patterns survive ``pattern_spec`` -> ``pattern_from_spec``;
    hop-seed generators survive ``verify_seed_generator_roundtrip``; and
    the session/traffic spec dataclasses survive a ``to_dict`` ->
    ``from_dict`` -> ``to_dict`` round-trip.
    """

    id = "registry-roundtrip"
    description = "registry classes must round-trip spec()/from_spec (scenario contract)"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        from repro.channel.impairments import Impairments
        from repro.channel.registry import CHANNEL_REGISTRY
        from repro.hopping.patterns import PATTERN_NAMES, pattern_from_spec, pattern_spec
        from repro.jamming.base import Jammer
        from repro.jamming.registry import JAMMER_REGISTRY
        from repro.protocol.hopseed import (
            SEED_GENERATOR_REGISTRY,
            verify_seed_generator_roundtrip,
        )
        from repro.protocol.spec import MessageTrafficSpec, SessionSpec

        for name, cls in sorted(JAMMER_REGISTRY.items()):
            path, line = _class_location(ctx, cls)
            if cls.spec is Jammer.spec:
                yield Finding(
                    path, line, 0, self.id,
                    f"jammer {name!r} ({cls.__name__}) does not override spec(); its "
                    "instances cannot be serialized into scenarios or cache keys",
                )
            if not callable(getattr(cls, "from_spec", None)):
                yield Finding(
                    path, line, 0, self.id,
                    f"jammer {name!r} ({cls.__name__}) has no from_spec()",
                )
        for name, cls in sorted(CHANNEL_REGISTRY.items()):
            path, line = _class_location(ctx, cls)
            for method in ("spec", "apply"):
                if not callable(getattr(cls, method, None)):
                    yield Finding(
                        path, line, 0, self.id,
                        f"channel {name!r} ({cls.__name__}) has no {method}()",
                    )
        path, line = _class_location(ctx, Impairments)
        for method in ("to_dict", "from_dict"):
            if not callable(getattr(Impairments, method, None)):
                yield Finding(
                    path, line, 0, self.id, f"Impairments has no {method}()",
                )
        for name in PATTERN_NAMES:
            if pattern_from_spec(pattern_spec(name)) != name:
                yield Finding(
                    "src/repro/hopping/patterns.py", 1, 0, self.id,
                    f"hop pattern {name!r} does not survive pattern_spec round-trip",
                )
        for name, cls in sorted(SEED_GENERATOR_REGISTRY.items()):
            path, line = _class_location(ctx, cls)
            try:
                verify_seed_generator_roundtrip(cls())
            except (TypeError, ValueError) as exc:
                yield Finding(
                    path, line, 0, self.id,
                    f"seed generator {name!r} ({cls.__name__}) fails its spec "
                    f"round-trip audit: {exc}",
                )
        for spec_cls in (MessageTrafficSpec, SessionSpec):
            path, line = _class_location(ctx, spec_cls)
            try:
                instance = spec_cls(name="lint-roundtrip") if spec_cls is SessionSpec else spec_cls()
                first = instance.to_dict()
                second = type(instance).from_dict(first).to_dict()
            except ValueError as exc:
                yield Finding(
                    path, line, 0, self.id,
                    f"{spec_cls.__name__} default instance fails its dict round-trip: {exc}",
                )
                continue
            if first != second:
                drifted = sorted(
                    k for k in set(first) | set(second) if first.get(k) != second.get(k)
                )
                yield Finding(
                    path, line, 0, self.id,
                    f"{spec_cls.__name__}.to_dict() does not round-trip through "
                    f"from_dict(); field(s) {drifted} drift",
                )


class KnobDocsRule(Rule):
    """``REPRO_*`` environment knobs: code and docs must agree.

    Every knob the code reads must be documented (collectively across
    ``docs/API.md`` and ``EXPERIMENTS.md``), and no doc may advertise a
    knob the code no longer reads.  This replaces the ad-hoc hardcoded
    set in the docs-consistency tests with the scanned ground truth.
    """

    id = "knob-docs"
    description = "REPRO_* env vars read in code and documented knobs must match"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        code = collect_code_knobs(ctx)
        documented: set[str] = set()
        for doc in KNOB_DOCS:
            text = ctx.read(doc)
            if text is not None:
                documented |= documented_knobs(text)
        for knob, (path, line) in sorted(code.items()):
            if knob not in documented:
                yield Finding(
                    path, line, 0, self.id,
                    f"env knob {knob} is read here but documented in none of "
                    f"{list(KNOB_DOCS)}",
                )
        for doc in KNOB_DOC_SURFACES:
            text = ctx.read(doc)
            if text is None:
                continue
            for lineno, line_text in enumerate(text.splitlines(), start=1):
                for match in _DOC_KNOB_RE.finditer(line_text):
                    if match.group(1) not in code:
                        yield Finding(
                            doc, lineno, match.start(), self.id,
                            f"doc mentions env knob {match.group(1)}, which no code reads",
                        )


class MypyBaselineRule(Rule):
    """The mypy strictness baseline is frozen and can only shrink.

    ``pyproject.toml`` carries the ``ignore_errors`` override list for
    not-yet-strict packages; this rule compares it against the committed
    snapshot (``repro/lint/mypy_baseline.txt``).  Adding a module to the
    override list without touching the snapshot — or sneaking a strict
    package (``core``/``dsp``/``scenario``/``utils.rng``) into either —
    is a lint failure, so the typing debt is visible in every diff.
    """

    id = "mypy-baseline"
    description = "pyproject mypy ignore_errors overrides must match the frozen baseline"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        try:
            import tomllib
        except ImportError:  # python 3.10: stdlib has no TOML reader; CI (3.11+) enforces
            return
        text = ctx.read("pyproject.toml")
        if text is None:
            yield Finding("pyproject.toml", 1, 0, self.id, "pyproject.toml not found")
            return
        config = tomllib.loads(text)
        current = pyproject_baseline(config)
        frozen = frozen_baseline()
        for module in sorted(current - frozen):
            yield Finding(
                "pyproject.toml", _toml_line(text, module), 0, self.id,
                f"mypy baseline grew: {module!r} is ignore_errors in pyproject.toml but "
                "not in repro/lint/mypy_baseline.txt — annotate it instead, or (last "
                "resort) add it to the frozen baseline in the same reviewed diff",
            )
        for module in sorted(frozen - current):
            yield Finding(
                "src/repro/lint/mypy_baseline.txt", 1, 0, self.id,
                f"stale frozen baseline entry {module!r}: pyproject.toml no longer "
                "ignores it — delete the line so the baseline only shrinks",
            )
        for module in sorted(current):
            if any(_pattern_covers(module, s) for s in STRICT_MODULES):
                yield Finding(
                    "pyproject.toml", _toml_line(text, module), 0, self.id,
                    f"strict package {module!r} must not be in the mypy ignore baseline",
                )


# -- shared helpers -----------------------------------------------------------


def collect_code_knobs(ctx: ProjectContext) -> dict[str, tuple[str, int]]:
    """``REPRO_*`` string literals in scanned sources -> first (path, line).

    Only library sources count (``src/``); fixture strings in tests and
    docs examples are not knob reads.
    """
    knobs: dict[str, tuple[str, int]] = {}
    for src in ctx.sources:
        if not src.relpath.startswith("src/"):
            continue
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if _KNOB_RE.match(node.value) and node.value not in knobs:
                    knobs[node.value] = (src.relpath, node.lineno)
    return knobs


def documented_knobs(text: str) -> set[str]:
    """Every ``REPRO_*`` name mentioned in a documentation text."""
    return set(_DOC_KNOB_RE.findall(text))


def frozen_baseline() -> set[str]:
    """The committed mypy baseline module list (comments/blank lines skipped)."""
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "mypy_baseline.txt")
    with open(path, encoding="utf-8") as fh:
        return {
            line.strip()
            for line in fh
            if line.strip() and not line.strip().startswith("#")
        }


def pyproject_baseline(config: dict) -> set[str]:
    """Modules listed with ``ignore_errors = true`` in mypy overrides."""
    overrides = config.get("tool", {}).get("mypy", {}).get("overrides", [])
    modules: set[str] = set()
    for entry in overrides:
        if not entry.get("ignore_errors"):
            continue
        listed = entry.get("module", [])
        if isinstance(listed, str):
            listed = [listed]
        modules.update(listed)
    return modules


def _pattern_covers(pattern: str, strict: str) -> bool:
    """Whether a mypy module pattern reaches into a strict package.

    A plain pattern names exactly one module; ``pkg.*`` names the package
    and its whole subtree.  Either way, touching ``strict`` itself or any
    module below it is a violation.
    """
    if pattern.endswith(".*"):
        base = pattern[:-2]
        return (
            base == strict
            or base.startswith(strict + ".")
            or strict.startswith(base + ".")
        )
    return pattern == strict or pattern.startswith(strict + ".")


def _toml_line(text: str, needle: str) -> int:
    """First pyproject line quoting ``needle`` (for annotation targets)."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        if f'"{needle}"' in line or f"'{needle}'" in line:
            return lineno
    return 1


def _relsource(ctx: ProjectContext, module: object) -> str:
    try:
        path = inspect.getsourcefile(module)  # type: ignore[arg-type]
        if path:
            return os.path.relpath(path, os.path.abspath(ctx.root)).replace(os.sep, "/")
    except TypeError:
        pass
    return "src/repro/lint/manifest.py"


def _manifest_line(manifest_module: object, batch_ref: str) -> int:
    try:
        source = inspect.getsource(manifest_module)  # type: ignore[arg-type]
    except (OSError, TypeError):
        return 1
    for lineno, line in enumerate(source.splitlines(), start=1):
        if batch_ref in line:
            return lineno
    return 1


def _class_location(ctx: ProjectContext, cls: type) -> tuple[str, int]:
    try:
        path = inspect.getsourcefile(cls)
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return "src/repro", 1
    rel = os.path.relpath(path or "src/repro", os.path.abspath(ctx.root))
    return rel.replace(os.sep, "/"), line
