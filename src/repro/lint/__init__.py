"""`repro-lint`: project-invariant static analysis for the BHSS stack.

The repo's core contract — bit-identical determinism across the serial,
parallel and batched execution paths at every seed — is enforced at run
time by the equivalence-test wall.  This package enforces the *causes*
of that contract at analysis time, before any packet is simulated:

* every random draw flows through the :mod:`repro.utils.rng` substream
  discipline (no ``np.random.*`` global state, no stray ``default_rng``),
* the signal chain allocates arrays with explicit dtypes (no silent
  float64/complex128 promotion),
* every vectorized ``*_batch`` primitive has a registered serial twin in
  the equivalence manifest that the batch tests consume,
* registered scenario components round-trip ``spec()``/``from_spec``,
* ``REPRO_*`` environment knobs in code and docs agree, and
* config dataclasses carry no mutable defaults or hidden module globals.

Run it as ``repro-bhss lint`` (see :mod:`repro.cli`), or programmatically
via :func:`run_lint`.  Findings support line-level suppression with
``# repro-lint: ignore[rule-id]`` comments.
"""

from __future__ import annotations

from repro.lint.engine import (
    Finding,
    LintReport,
    Rule,
    SourceFile,
    all_rules,
    run_lint,
)
from repro.lint.manifest import BATCH_EQUIVALENCE, serial_twin
from repro.lint.report import format_findings

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "SourceFile",
    "all_rules",
    "run_lint",
    "BATCH_EQUIVALENCE",
    "serial_twin",
    "format_findings",
]
