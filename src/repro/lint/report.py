"""Finding renderers: human, machine (JSON) and GitHub-annotation output.

``repro-bhss lint --format=pretty`` is the terminal default; ``json`` is
for tooling; ``github`` emits workflow commands so findings surface as
inline annotations on PR diffs.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintReport

__all__ = ["format_findings", "FORMATS"]

FORMATS = ("pretty", "json", "github")


def _pretty(report: LintReport) -> str:
    lines = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule}: {f.message}")
    for err in report.errors:
        lines.append(f"error: {err}")
    counts = report.counts_by_rule()
    if counts:
        breakdown = ", ".join(f"{rule} x{n}" for rule, n in sorted(counts.items()))
        lines.append(
            f"{len(report.findings)} finding(s) in {report.files_scanned} file(s): {breakdown}"
        )
    else:
        lines.append(
            f"clean: {report.files_scanned} file(s), "
            f"{len(report.rules_run)} rule(s), 0 findings"
        )
    return "\n".join(lines)


def _json(report: LintReport) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in report.findings],
            "errors": list(report.errors),
            "files_scanned": report.files_scanned,
            "rules_run": list(report.rules_run),
            "counts": report.counts_by_rule(),
            "ok": report.ok,
        },
        indent=2,
        sort_keys=True,
    )


def _github(report: LintReport) -> str:
    """GitHub Actions workflow commands — one ``::error`` per finding.

    Newlines inside messages would terminate the command, so they are
    escaped per the workflow-command spec.
    """
    def esc(s: str) -> str:
        return s.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")

    lines = [
        f"::error file={f.path},line={f.line},col={f.col + 1},"
        f"title=repro-lint[{f.rule}]::{esc(f.message)}"
        for f in report.findings
    ]
    lines.extend(f"::error::{esc(err)}" for err in report.errors)
    if not lines:
        lines.append(
            f"repro-lint: clean ({report.files_scanned} files, "
            f"{len(report.rules_run)} rules)"
        )
    return "\n".join(lines)


def format_findings(report: LintReport, fmt: str = "pretty") -> str:
    """Render a :class:`LintReport` in one of :data:`FORMATS`."""
    if fmt == "pretty":
        return _pretty(report)
    if fmt == "json":
        return _json(report)
    if fmt == "github":
        return _github(report)
    raise ValueError(f"unknown lint output format {fmt!r}; use one of {FORMATS}")
