"""The batch/serial equivalence manifest.

Every public vectorized primitive (``*_batch`` / ``*_batched``) in the
signal chain maps to the serial function it must match bit-for-bit.
Three consumers keep the manifest honest:

* the ``batch-symmetry`` lint rule fails when a new batch primitive is
  added without an entry here,
* the ``batch-manifest`` project rule fails when an entry names a module
  or attribute that no longer exists, and
* ``tests/test_batch_equivalence.py`` iterates the manifest so every
  registered pair is resolvable by the equivalence wall.

Keys and values are ``"module:Qual.name"`` strings (class-qualified for
methods), so the manifest stays importable-as-data with zero import cost.

``BACKEND_KERNELS`` extends the wall through the pluggable compute
backends (:mod:`repro.backend`): it maps every :class:`DSPBackend` kernel
method to the public dispatching wrapper it serves.  The ``batch-manifest``
rule checks both sides resolve *and* that every wrapper is itself a
``BATCH_EQUIVALENCE`` key, so the chain *backend kernel -> wrapper ->
serial twin* cannot silently break; the multi-backend conformance tests
iterate it to compare every registered backend against the NumPy oracle.
"""

from __future__ import annotations

import importlib
from typing import Callable

__all__ = ["BACKEND_KERNELS", "BATCH_EQUIVALENCE", "serial_twin", "resolve"]

#: batch primitive -> its bit-identical serial twin
BATCH_EQUIVALENCE: dict[str, str] = {
    "repro.core.control:ControlLogic.excision_for_batch": "repro.core.control:ControlLogic.excision_for",
    "repro.core.control:ControlLogic.decide_batch": "repro.core.control:ControlLogic.decide",
    "repro.core.link:LinkSimulator.run_packets_batched": "repro.core.link:LinkSimulator.run_packets",
    "repro.core.receiver:BHSSReceiver.receive_batch": "repro.core.receiver:BHSSReceiver.receive",
    "repro.core.transmitter:BHSSTransmitter.transmit_batch": "repro.core.transmitter:BHSSTransmitter.transmit",
    "repro.dsp.decimate:decimate_batch": "repro.dsp.decimate:decimate",
    "repro.dsp.excision:excision_taps_from_psd_batch": "repro.dsp.excision:excision_taps_from_psd",
    "repro.dsp.fir:fft_convolve_batch": "repro.dsp.fir:fft_convolve",
    "repro.dsp.fir:apply_fir_batch": "repro.dsp.fir:apply_fir",
    "repro.dsp.mixing:frequency_shift_batch": "repro.dsp.mixing:frequency_shift",
    "repro.dsp.mixing:phase_rotate_batch": "repro.dsp.mixing:phase_rotate",
    "repro.dsp.spectral:welch_psd_batch": "repro.dsp.spectral:welch_psd",
    "repro.dsp.spectral:occupied_bandwidth_batch": "repro.dsp.spectral:occupied_bandwidth",
    "repro.phy.qpsk:binary_chips_to_complex_batch": "repro.phy.qpsk:binary_chips_to_complex",
    "repro.phy.qpsk:complex_chips_to_binary_batch": "repro.phy.qpsk:complex_chips_to_binary",
    "repro.phy.qpsk:ChipModulator.modulate_batch": "repro.phy.qpsk:ChipModulator.modulate",
    "repro.phy.qpsk:ChipModulator.demodulate_batch": "repro.phy.qpsk:ChipModulator.demodulate",
    "repro.spread.dsss:SixteenAryDSSS.spread_batch": "repro.spread.dsss:SixteenAryDSSS.spread",
    "repro.spread.dsss:SixteenAryDSSS.despread_batch": "repro.spread.dsss:SixteenAryDSSS.despread",
}


#: DSPBackend kernel -> the dispatching public wrapper it serves.  Every
#: value must itself be a ``BATCH_EQUIVALENCE`` key so the chain
#: *backend kernel -> wrapper -> serial twin* stays closed.
BACKEND_KERNELS: dict[str, str] = {
    "repro.backend.base:DSPBackend.apply_fir_batch": "repro.dsp.fir:apply_fir_batch",
    "repro.backend.base:DSPBackend.fft_convolve_batch": "repro.dsp.fir:fft_convolve_batch",
    "repro.backend.base:DSPBackend.welch_psd_batch": "repro.dsp.spectral:welch_psd_batch",
    "repro.backend.base:DSPBackend.modulate_batch": "repro.phy.qpsk:ChipModulator.modulate_batch",
    "repro.backend.base:DSPBackend.spread_batch": "repro.spread.dsss:SixteenAryDSSS.spread_batch",
    "repro.backend.base:DSPBackend.despread_batch": (
        "repro.spread.dsss:SixteenAryDSSS.despread_batch"
    ),
}


def serial_twin(batch_ref: str) -> str | None:
    """The serial counterpart of a ``"module:Qual.name"`` batch reference."""
    return BATCH_EQUIVALENCE.get(batch_ref)


def resolve(ref: str) -> Callable[..., object]:
    """Import a ``"module:Qual.name"`` reference and return the callable.

    Raises ``ImportError``/``AttributeError`` when the reference is stale,
    which is exactly what the ``batch-manifest`` rule and the equivalence
    tests report as a finding/failure.
    """
    module_name, _, qualname = ref.partition(":")
    obj: object = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"manifest reference {ref!r} is not callable")
    return obj
