"""Per-file AST checkers: RNG, dtype, batch-naming, mutable-state rules.

Each rule documents the project invariant it guards and points the
finding message at the sanctioned alternative, so a failure reads as a
fix recipe rather than a style complaint.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.lint.engine import Finding, Rule, SourceFile

__all__ = [
    "RngDisciplineRule",
    "DtypeDisciplineRule",
    "BatchSymmetryRule",
    "MutableDefaultRule",
    "HiddenGlobalRule",
    "dotted_name",
]


def dotted_name(node: ast.expr) -> str | None:
    """Resolve ``np.random.default_rng``-style attribute chains to a string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class RngDisciplineRule(Rule):
    """All entropy flows through :mod:`repro.utils.rng` substreams.

    Bit-identical serial == parallel == batched execution — and the
    paper's unpredictability argument itself — both die the moment a
    component draws from ``np.random`` global state or spins up its own
    ``default_rng()``.  Outside ``utils/rng.py``, every Generator must
    come from ``make_rng``/``child_rng`` (or be threaded in as an
    argument), so each subsystem owns an independent, seeded substream.
    """

    id = "rng-discipline"
    description = (
        "no np.random.* or default_rng() calls outside utils/rng.py; "
        "thread Generators via make_rng/child_rng substreams"
    )

    ALLOWED_SUFFIXES = ("utils/rng.py",)

    def check_source(self, src: SourceFile) -> Iterator[Finding]:
        if src.relpath.endswith(self.ALLOWED_SUFFIXES):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in ("default_rng", "np.random.default_rng", "numpy.random.default_rng"):
                yield Finding(
                    src.relpath, node.lineno, node.col_offset, self.id,
                    "bare default_rng() creates an untracked stream; use "
                    "repro.utils.rng.make_rng/child_rng so the draw is a seeded substream",
                )
            elif name.startswith(("np.random.", "numpy.random.")):
                attr = name.rsplit(".", 1)[1]
                if attr in ("Generator", "SeedSequence", "BitGenerator", "PCG64"):
                    continue  # type references (isinstance checks) are fine
                yield Finding(
                    src.relpath, node.lineno, node.col_offset, self.id,
                    f"{name}() draws from numpy global state, which is invisible to the "
                    "substream contract; route it through repro.utils.rng",
                )


class DtypeDisciplineRule(Rule):
    """Signal-chain allocations must state their dtype explicitly.

    ``np.zeros(n)`` silently allocates float64 and one stray buffer
    upcasts the whole complex chain; the batched engine's bit-for-bit
    equality with the serial path depends on every array keeping the
    dtype the serial path used.  Scope: the waveform-producing packages
    (``dsp``, ``phy``, ``channel``, ``jamming``, ``spread``).
    """

    id = "dtype-discipline"
    description = (
        "np.zeros/ones/empty/full in the signal chain must pass an explicit dtype"
    )

    PACKAGES = ("dsp", "phy", "channel", "jamming", "spread")
    #: allocator -> index of the positional dtype argument
    ALLOCATORS: ClassVar[dict[str, int]] = {"zeros": 1, "ones": 1, "empty": 1, "full": 2}

    def check_source(self, src: SourceFile) -> Iterator[Finding]:
        if not src.in_package(*self.PACKAGES):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy"):
                continue
            if parts[1] not in self.ALLOCATORS:
                continue
            dtype_pos = self.ALLOCATORS[parts[1]]
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords) or (
                len(node.args) > dtype_pos
            )
            if not has_dtype:
                yield Finding(
                    src.relpath, node.lineno, node.col_offset, self.id,
                    f"{name}() without dtype= allocates float64 by default; state the "
                    "chain dtype explicitly so promotions are visible in review",
                )


class BatchSymmetryRule(Rule):
    """Every public ``*_batch`` primitive is registered with a serial twin.

    The batched engine's contract is *bit-for-bit* equality with the
    serial path, enforced by ``tests/test_batch_equivalence.py`` over the
    equivalence manifest (:mod:`repro.lint.manifest`).  A batch op that
    is not in the manifest is a batch op with no equivalence test — the
    exact gap this rule closes at analysis time.
    """

    id = "batch-symmetry"
    description = (
        "public *_batch functions in dsp/phy/spread/core need an entry in "
        "repro.lint.manifest.BATCH_EQUIVALENCE"
    )

    PACKAGES = ("dsp", "phy", "spread", "core")
    SUFFIXES = ("_batch", "_batched")

    def check_source(self, src: SourceFile) -> Iterator[Finding]:
        from repro.lint.manifest import BATCH_EQUIVALENCE

        if not src.in_package(*self.PACKAGES):
            return
        module = src.module_name()

        def visit(body: list[ast.stmt], prefix: str) -> Iterator[Finding]:
            for node in body:
                if isinstance(node, ast.ClassDef):
                    yield from visit(node.body, f"{prefix}{node.name}.")
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    name = node.name
                    if not name.endswith(self.SUFFIXES) or name.startswith("_"):
                        continue
                    qualname = f"{module}:{prefix}{name}"
                    if qualname not in BATCH_EQUIVALENCE:
                        yield Finding(
                            src.relpath, node.lineno, node.col_offset, self.id,
                            f"batch primitive {qualname!r} has no serial twin in the "
                            "equivalence manifest; register it in repro/lint/manifest.py "
                            "so tests/test_batch_equivalence.py covers it",
                        )

        yield from visit(src.tree.body, "")


#: call targets that produce fresh mutable objects (unsafe as defaults)
_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter",
    "np.array", "np.zeros", "np.ones", "np.empty", "np.full", "np.asarray",
    "numpy.array", "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
    "numpy.asarray",
}
#: calls that return immutable values and are safe to evaluate once
_IMMUTABLE_CALLS = {
    "int", "float", "bool", "complex", "str", "bytes", "tuple", "frozenset",
}


def _mutable_value(node: ast.expr) -> str | None:
    """Why ``node`` is a mutable default, or ``None`` when it is safe."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return "a mutable literal"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return None
        if name in _MUTABLE_CALLS:
            return f"a {name}() call"
        if name.split(".")[-1] in ("field",) or name in _IMMUTABLE_CALLS:
            return None
        return None
    return None


class MutableDefaultRule(Rule):
    """No mutable default arguments, on functions or dataclass fields.

    A mutable default is evaluated once and shared by every call (and by
    every dataclass instance), which is exactly the hidden cross-run
    state the determinism contract forbids.  Use ``None`` + construction
    in the body, or ``dataclasses.field(default_factory=...)``.
    """

    id = "mutable-default"
    description = (
        "function and dataclass defaults must not be mutable; "
        "use None or field(default_factory=...)"
    )

    def check_source(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for d in defaults:
                    why = _mutable_value(d)
                    if why:
                        yield Finding(
                            src.relpath, d.lineno, d.col_offset, self.id,
                            f"default of {node.name}() is {why}, shared across calls; "
                            "use None and build it in the body",
                        )
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    value = None
                    target: ast.expr | None = None
                    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                        value, target = stmt.value, stmt.target
                    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        value, target = stmt.value, stmt.targets[0]
                    if value is None:
                        continue
                    # UPPER_CASE class attributes are declared constants
                    # (rule tables, registries) — instance fields are the
                    # lowercase ones dataclasses turn into per-object state.
                    if isinstance(target, ast.Name):
                        bare = target.id.lstrip("_")
                        if bare and bare == bare.upper():
                            continue
                    why = _mutable_value(value)
                    if why:
                        yield Finding(
                            src.relpath, value.lineno, value.col_offset, self.id,
                            f"class attribute default in {node.name} is {why}, shared "
                            "by every instance; use field(default_factory=...)",
                        )


class HiddenGlobalRule(Rule):
    """Module-level mutable state must be an explicit UPPER_CASE registry.

    Lowercase module globals holding lists/dicts/sets are invisible
    shared state: a worker that mutates one diverges from the serial
    path with no seed anywhere in sight.  The sanctioned pattern is an
    UPPER_CASE name (registries like ``JAMMER_REGISTRY``), which marks
    the object as an import-time constant surface.
    """

    id = "hidden-global"
    description = (
        "module-level mutable containers must be UPPER_CASE registry constants"
    )

    def check_source(self, src: SourceFile) -> Iterator[Finding]:
        for stmt in src.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or _mutable_value(value) is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                bare = name.lstrip("_")
                if name.startswith("__") or not bare or bare == bare.upper():
                    continue
                yield Finding(
                    src.relpath, stmt.lineno, stmt.col_offset, self.id,
                    f"module global {name!r} is mutable shared state; make it an "
                    "UPPER_CASE constant registry or move it into a class/function",
                )
