"""The lint rule engine: source loading, suppression, rule dispatch.

Two kinds of rules plug into the engine:

* **source rules** inspect one parsed file at a time (AST visitors);
* **project rules** see the whole scanned tree plus the repository root,
  so they can cross-reference registries, docs and ``pyproject.toml``.

Findings are plain data (:class:`Finding`), sorted and deduplicated by
the engine; rendering lives in :mod:`repro.lint.report`.

Suppression
-----------
A finding on line *L* is dropped when line *L* of the source carries a
``# repro-lint: ignore[rule-id]`` comment (comma-separated rule ids, or
no bracket to ignore every rule on the line).  The comment must sit on
the first physical line of the flagged statement.  A file whose first
five lines contain ``# repro-lint: skip-file`` is not scanned at all.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "SourceFile",
    "Rule",
    "LintReport",
    "ProjectContext",
    "all_rules",
    "run_lint",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")

#: sentinel for "every rule suppressed on this line"
ALL_RULES = "*"


@dataclass(frozen=True, order=True)
class Finding:
    """One static-analysis finding, pointing at ``path:line:col``.

    ``path`` is repository-relative with forward slashes, so reports are
    stable across machines and usable as GitHub annotation targets.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class SourceFile:
    """A parsed Python source file plus its suppression table."""

    def __init__(self, path: str, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath.replace(os.sep, "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.suppressions = self._parse_suppressions(self.lines)
        self.skip = any(_SKIP_FILE_RE.search(line) for line in self.lines[:5])

    @staticmethod
    def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
        table: dict[int, set[str]] = {}
        for lineno, line in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = match.group(1)
            if rules is None:
                table[lineno] = {ALL_RULES}
            else:
                table[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
        return table

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.suppressions.get(line, set())
        return ALL_RULES in rules or rule in rules

    def in_package(self, *names: str) -> bool:
        """Whether this file lives under ``repro/<name>/`` for any name."""
        parts = self.relpath.split("/")
        for name in names:
            if name in parts:
                return True
        return False

    def module_name(self) -> str:
        """Best-effort dotted module path (``repro.dsp.fir`` style)."""
        rel = self.relpath
        for prefix in ("src/",):
            if rel.startswith(prefix):
                rel = rel[len(prefix):]
        rel = rel[:-3] if rel.endswith(".py") else rel
        if rel.endswith("/__init__"):
            rel = rel[: -len("/__init__")]
        return rel.replace("/", ".")


@dataclass
class ProjectContext:
    """Everything a project rule may cross-reference."""

    root: str
    sources: list[SourceFile] = field(default_factory=list)

    def read(self, relpath: str) -> str | None:
        """The text of a repo file, or ``None`` when it does not exist."""
        path = os.path.join(self.root, relpath)
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as fh:
            return fh.read()

    def source_by_suffix(self, suffix: str) -> SourceFile | None:
        for src in self.sources:
            if src.relpath.endswith(suffix):
                return src
        return None


class Rule:
    """Base class: a named, documented checker.

    Subclasses override :meth:`check_source` (per-file AST checks) and/or
    :meth:`check_project` (whole-tree checks).  Both default to silence so
    a rule implements only the layer it needs.
    """

    id: str = "base"
    description: str = ""

    def check_source(self, src: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        return iter(())


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding]
    files_scanned: int
    rules_run: list[str]
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts


def all_rules() -> list[Rule]:
    """Every registered checker, in reporting order."""
    from repro.lint.project import (
        BatchManifestRule,
        KnobDocsRule,
        MypyBaselineRule,
        RegistryRoundtripRule,
    )
    from repro.lint.rules import (
        BatchSymmetryRule,
        DtypeDisciplineRule,
        HiddenGlobalRule,
        MutableDefaultRule,
        RngDisciplineRule,
    )

    return [
        RngDisciplineRule(),
        DtypeDisciplineRule(),
        BatchSymmetryRule(),
        MutableDefaultRule(),
        HiddenGlobalRule(),
        BatchManifestRule(),
        RegistryRoundtripRule(),
        KnobDocsRule(),
        MypyBaselineRule(),
    ]


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into ``.py`` file paths, sorted, skipping caches."""
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git", ".ruff_cache")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def _load_sources(paths: Iterable[str], root: str, errors: list[str]) -> list[SourceFile]:
    sources = []
    for path in iter_python_files(paths):
        relpath = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
            src = SourceFile(path, relpath, text)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{path}: cannot scan ({exc})")
            continue
        if not src.skip:
            sources.append(src)
    return sources


def run_lint(
    paths: Iterable[str] = ("src",),
    *,
    root: str = ".",
    rules: Iterable[str] | None = None,
) -> LintReport:
    """Run the checkers over ``paths`` (files or directories).

    Parameters
    ----------
    paths:
        Files and/or directories to scan, relative to the caller's cwd
        (or absolute).
    root:
        Repository root — the anchor for report-relative paths and for
        project rules that read ``pyproject.toml`` and the docs.
    rules:
        Subset of rule ids to run (default: all).  Unknown ids raise
        ``ValueError`` so CI configs fail loudly, not silently.
    """
    available = {rule.id: rule for rule in all_rules()}
    if rules is None:
        selected = list(available.values())
    else:
        wanted = list(rules)
        unknown = sorted(set(wanted) - set(available))
        if unknown:
            raise ValueError(
                f"unknown lint rule(s) {unknown}; available: {sorted(available)}"
            )
        selected = [available[r] for r in wanted]

    errors: list[str] = []
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        raise FileNotFoundError(f"lint path(s) do not exist: {missing}")
    sources = _load_sources(paths, root, errors)
    ctx = ProjectContext(root=root, sources=sources)

    findings: list[Finding] = []
    for rule in selected:
        for src in sources:
            for f in rule.check_source(src):
                if not src.suppressed(f.line, f.rule):
                    findings.append(f)
        for f in rule.check_project(ctx):
            src = next((s for s in sources if s.relpath == f.path), None)
            if src is not None and src.suppressed(f.line, f.rule):
                continue
            findings.append(f)

    return LintReport(
        findings=sorted(set(findings)),
        files_scanned=len(sources),
        rules_run=[r.id for r in selected],
        errors=errors,
    )
