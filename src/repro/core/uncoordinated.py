"""Uncoordinated seed discovery (UDSSS-style, paper Section 4.1).

The paper assumes transmitter and receiver share the random seed "since
it is present in any SS system", citing pre-shared keys and
*uncoordinated* discovery schemes (Pöpper et al.'s UDSSS).  This module
implements the uncoordinated variant for BHSS: the spreading/hopping seed
is drawn per packet from a **public pool**; the receiver, which knows the
pool but not the draw, trial-decodes against every candidate and keeps
the one whose CRC verifies.  An eavesdropping jammer faces the same
search *per reaction time* — with a large enough pool and fast hops it
cannot converge within a packet.

Complexity is linear in the pool size (UDSSS's classic trade-off:
larger pools mean more jam resistance and more receiver work).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import BHSSConfig
from repro.core.receiver import BHSSReceiver, ReceiveResult
from repro.core.transmitter import BHSSTransmitter, TransmittedPacket
from repro.utils.rng import derive_seed, make_rng

__all__ = ["SeedPool", "UncoordinatedTransmitter", "UncoordinatedReceiver", "UncoordinatedResult"]


@dataclass(frozen=True)
class SeedPool:
    """A public pool of candidate link seeds.

    Derived deterministically from a (public) master seed, so every party
    — including the attacker — can enumerate it; the security comes from
    not knowing *which* entry the transmitter drew for this packet.
    """

    master_seed: int
    size: int = 16

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"pool size must be >= 1, got {self.size}")

    def seed(self, index: int) -> int:
        """The pool entry at ``index``."""
        if not 0 <= index < self.size:
            raise ValueError(f"index must be in 0..{self.size - 1}, got {index}")
        return derive_seed(self.master_seed, "seed-pool", str(index))

    def seeds(self) -> list[int]:
        """All pool entries, in order."""
        return [self.seed(i) for i in range(self.size)]


class UncoordinatedTransmitter:
    """Transmits each packet under a randomly drawn pool seed."""

    def __init__(
        self,
        base_config: BHSSConfig,
        pool: SeedPool,
        draw_seed: int | np.random.Generator | None = None,
    ) -> None:
        self.base_config = base_config
        self.pool = pool
        self._rng = make_rng(draw_seed)

    def transmit(self, payload: bytes | None = None, packet_index: int = 0) -> tuple[TransmittedPacket, int]:
        """Build a packet under a fresh draw; returns (packet, pool index).

        The pool index is returned for instrumentation/tests only — a
        real receiver never learns it out of band.
        """
        index = int(self._rng.integers(0, self.pool.size))
        config = replace(self.base_config, seed=self.pool.seed(index))
        packet = BHSSTransmitter(config).transmit(payload, packet_index)
        return packet, index


@dataclass(frozen=True)
class UncoordinatedResult:
    """Outcome of an uncoordinated trial-decoding pass."""

    #: the pool index whose decode verified (None if none did)
    pool_index: int | None
    #: the winning receive result (best-quality failure if none verified)
    result: ReceiveResult | None
    #: how many candidates were trial-decoded before success
    attempts: int

    @property
    def acquired(self) -> bool:
        """Whether some pool entry produced a CRC-verified frame."""
        return self.pool_index is not None


class UncoordinatedReceiver:
    """Trial-decodes a packet against every pool seed until a CRC passes."""

    def __init__(self, base_config: BHSSConfig, pool: SeedPool) -> None:
        self.pool = pool
        # one pre-built receiver per candidate seed (filter caches warm)
        self._receivers = [
            BHSSReceiver(replace(base_config, seed=s)) for s in pool.seeds()
        ]

    def receive(
        self, waveform: np.ndarray, payload_len: int | None = None, packet_index: int = 0
    ) -> UncoordinatedResult:
        """Try every pool seed; stop at the first CRC-verified decode."""
        best: ReceiveResult | None = None
        for index, receiver in enumerate(self._receivers):
            result = receiver.receive(waveform, payload_len=payload_len, packet_index=packet_index)
            if result.accepted:
                return UncoordinatedResult(pool_index=index, result=result, attempts=index + 1)
            if best is None or result.quality > best.quality:
                best = result
        return UncoordinatedResult(pool_index=None, result=best, attempts=self.pool.size)
