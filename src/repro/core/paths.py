"""Explicit TX/RX stages of a BHSS link.

:class:`LinkSimulator` historically ran the whole chain — framing,
spreading, pulse shaping, channel, jammer, medium, front end, receive,
scoring — as one monolithic method.  This module splits the chain into
its two reusable halves:

``TxPath``
    Waveform synthesis: payload → frame → spread chips → shaped hop
    segments → propagation channel.  Fully deterministic (it consumes no
    randomness), which is what lets network-scale runs re-synthesize any
    link's transmission as cross-link interference without perturbing
    the victim link's RNG stream.
``RxPath``
    Demodulation: front-end impairments → hop-synchronized receive →
    truth scoring against the transmitted packet.

The per-packet RNG contract lives *between* the paths and is unchanged:
packet ``k`` draws from ``child_rng(seed, "packet", str(k))``, the
jammer waveform is drawn first (even at ``sjr_db=+inf``, where it is not
injected), then the medium noise.  :func:`draw_jammer_wave` packages
that draw so the serial, batched, and network drivers share one
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.channel.impairments import Impairments
from repro.core.config import BHSSConfig
from repro.core.receiver import BHSSReceiver, ReceiveResult
from repro.core.transmitter import BHSSTransmitter, TransmittedPacket
from repro.jamming.adaptive.base import VictimAwareJammer
from repro.jamming.base import Jammer, NoJammer
from repro.jamming.reactive import MatchedReactiveJammer
from repro.phy.bits import hamming_distance_bits

__all__ = ["TxPath", "RxPath", "PacketOutcome", "draw_jammer_wave"]

#: bits set in each 4-bit nibble value — the vectorized popcount table.
_NIBBLE_POPCOUNT = (
    np.unpackbits(np.arange(16, dtype=np.uint8)[:, None], axis=1).sum(axis=1).astype(np.int64)
)


@dataclass(frozen=True)
class PacketOutcome:
    """Result of one simulated packet."""

    accepted: bool
    bit_errors: int
    total_bits: int
    receive: ReceiveResult

    @property
    def bit_error_rate(self) -> float:
        """Payload-bit error rate of this packet."""
        return self.bit_errors / self.total_bits if self.total_bits else 0.0


class TxPath:
    """The synthesis half of a link: transmitter plus propagation channel.

    Parameters
    ----------
    config:
        The link configuration; the transmitter (hop schedule, scrambler,
        spreader) derives from it.
    channel:
        Optional propagation channel (e.g.
        :class:`repro.channel.MultipathChannel`) applied to the signal
        path.  The paper's coax testbed corresponds to ``None``.
    """

    def __init__(self, config: BHSSConfig, channel: Any = None) -> None:
        self.config = config
        self.transmitter = BHSSTransmitter(config)
        self.channel = channel

    def synthesize(
        self, packet_index: int = 0, payload: bytes | None = None
    ) -> TransmittedPacket:
        """Build packet ``packet_index``'s frame and baseband waveform."""
        return self.transmitter.transmit(payload, packet_index)

    def propagate(self, waveform: np.ndarray) -> np.ndarray:
        """Apply the propagation channel (identity when unset)."""
        if self.channel is not None:
            return np.asarray(self.channel.apply(waveform))
        return waveform

    def emit(
        self, packet_index: int = 0, payload: bytes | None = None
    ) -> tuple[TransmittedPacket, np.ndarray]:
        """Synthesize and propagate one packet: ``(truth, air waveform)``."""
        packet = self.synthesize(packet_index, payload)
        return packet, self.propagate(packet.waveform)

    def data_rate_bps(self) -> float:
        """Average payload data rate of the configured link in bits/second.

        Computed from the expected hop bandwidth: the PHY carries B/8
        payload-plus-overhead bits per second; the frame overhead fraction
        scales it down to goodput units.
        """
        schedule = self.transmitter.schedule
        bands = self.config.bandwidth_set.as_array()
        if self.config.fixed_bandwidth is not None:
            mean_bw = float(self.config.fixed_bandwidth)
        else:
            mean_bw = float(np.sum(bands * schedule.hop_weights))
        gross = mean_bw / 8.0
        n_payload_sym = 2 * self.config.payload_bytes
        n_frame_sym = self.config.frame_symbols()
        return gross * n_payload_sym / n_frame_sym


class RxPath:
    """The demodulation half of a link: front end, receiver, and scoring.

    Parameters
    ----------
    config:
        The shared link configuration (same seed as the TX side = same
        hop schedule and scrambler).
    impairments:
        Optional front-end impairments applied to the received waveform;
        a non-ideal front end switches the receiver into phase tracking.
    """

    def __init__(self, config: BHSSConfig, impairments: Impairments | None = None) -> None:
        self.config = config
        self.receiver = BHSSReceiver(config)
        self.impairments = impairments

    @property
    def needs_phase_tracking(self) -> bool:
        """Whether the front end forces the phase-tracking receive path."""
        return self.impairments is not None and not self.impairments.is_ideal

    def front_end(self, samples: np.ndarray) -> np.ndarray:
        """Apply the configured front-end impairments (identity if ideal)."""
        if self.impairments is not None and not self.impairments.is_ideal:
            return np.asarray(self.impairments.apply(samples, self.config.sample_rate))
        return samples

    def demodulate(
        self, samples: np.ndarray, payload_len: int, packet_index: int
    ) -> ReceiveResult:
        """Front end + hop-synchronized receive of one packet's samples."""
        received = self.front_end(samples)
        return self.receiver.receive(
            received,
            payload_len=payload_len,
            packet_index=packet_index,
            phase_track=self.needs_phase_tracking,
        )

    def receive_packet(
        self, packet: TransmittedPacket, samples: np.ndarray, packet_index: int
    ) -> PacketOutcome:
        """Demodulate ``samples`` and score them against ``packet``."""
        result = self.demodulate(samples, len(packet.payload), packet_index)
        return self.score(packet, result)

    def score(self, packet: TransmittedPacket, result: ReceiveResult) -> PacketOutcome:
        """Compare one receive result against the transmitted truth."""
        if result.accepted and result.payload == packet.payload:
            bit_errors = 0
            accepted = True
        else:
            accepted = False
            if len(result.payload) == len(packet.payload) and result.payload:
                bit_errors = int(hamming_distance_bits(result.payload, packet.payload))
            else:
                # Frame-level failure: score the payload region symbol by
                # symbol so BER remains meaningful under heavy jamming.
                bit_errors = self.symbol_region_bit_errors(packet.symbols, result.symbols)
        total_bits = 8 * len(packet.payload)
        return PacketOutcome(
            accepted=accepted,
            bit_errors=min(bit_errors, total_bits),
            total_bits=total_bits,
            receive=result,
        )

    def symbol_region_bit_errors(
        self, sent_symbols: np.ndarray, got_symbols: np.ndarray
    ) -> int:
        """Bit errors across the payload symbol region (nibble XOR popcount).

        Vectorized via a 16-entry ``np.unpackbits`` lookup table —
        bit-identical to summing ``bin(d).count("1")`` per symbol, since
        both count set bits of the same 4-bit differences.
        """
        header = self.config.frame_format.header_symbols
        end = min(sent_symbols.size, got_symbols.size) - 4  # exclude CRC symbols
        if end <= header:
            return 0
        diff = (
            sent_symbols[header:end].astype(np.int64)
            ^ got_symbols[header:end].astype(np.int64)
        ) & 0xF
        return int(_NIBBLE_POPCOUNT[diff].sum())


def draw_jammer_wave(
    jammer: Jammer | None,
    packet: TransmittedPacket,
    sjr_db: float,
    gen: np.random.Generator,
) -> np.ndarray | None:
    """Draw the jammer's waveform for one packet, or ``None`` if not injected.

    This is the shared RNG-contract helper of every driver (serial,
    batched, network): a sensing jammer (reactive matched, or any
    :class:`~repro.jamming.adaptive.base.VictimAwareJammer`) observes the
    packet first, and the waveform is drawn even at ``sjr_db=+inf``,
    where it is not injected — the draw keeps the shared RNG stream (and
    any jammer-internal state) advancing exactly as in a finite-SJR run,
    so an SJR sweep that includes inf as its unjammed baseline sees the
    same noise realization at every point.
    """
    if jammer is None or isinstance(jammer, NoJammer):
        return None
    if isinstance(jammer, MatchedReactiveJammer):
        jammer.observe(packet.bandwidth_profile())
    elif isinstance(jammer, VictimAwareJammer):
        jammer.observe_victim(packet.waveform, packet.bandwidth_profile())
    wave = jammer.waveform(packet.num_samples, gen)
    if np.isfinite(sjr_db):
        return np.asarray(wave)
    return None
