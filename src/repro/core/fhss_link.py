"""Empirical FHSS baseline link (the paper compares to FHSS analytically).

A classic frequency-hopper at equal RF spectrum occupancy to BHSS: the
16-ary DSSS PHY runs at a fixed *narrow* sub-channel bandwidth, and the
carrier hops pseudo-randomly over ``num_channels`` sub-channels of the
hop band (Section 7: "FHSS achieves the same jamming resistance as DSSS
by using narrower sub-channels in the frequency band").  The receiver
de-hops with the shared seed and band-pass filters to the sub-channel —
which is where FHSS's processing gain against *partial-band* jammers
comes from, and why a full-band jammer reduces it to plain DSSSS
performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link_medium import Medium
from repro.core.receiver import ReceiveResult
from repro.jamming.base import Jammer, NoJammer
from repro.phy.bits import hamming_distance_bits
from repro.phy.frame import DEFAULT_FRAME_FORMAT, FrameFormat
from repro.phy.qpsk import ChipModulator
from repro.spread.chiptables import CHIPS_PER_SYMBOL
from repro.spread.dsss import SixteenAryDSSS
from repro.spread.fhss import FHSSChannelPlan, FHSSModem
from repro.utils.rng import child_rng, derive_seed, make_rng
from repro.utils.validation import ensure_positive

__all__ = ["FHSSLinkConfig", "FHSSLink", "FHSSPacketOutcome"]


@dataclass(frozen=True)
class FHSSLinkConfig:
    """Configuration of the FHSS baseline link.

    The sub-channel bandwidth is ``hop_band / num_channels`` and must map
    to an integer samples-per-chip at the sample rate (same constraint as
    the BHSS bandwidth set).
    """

    sample_rate: float = 20e6
    hop_band: float = 10e6
    num_channels: int = 8
    seed: int = 0
    payload_bytes: int = 16
    symbols_per_hop: int = 4
    pulse: str = "half_sine"
    frame_format: FrameFormat = field(default_factory=lambda: DEFAULT_FRAME_FORMAT)

    def __post_init__(self) -> None:
        ensure_positive(self.sample_rate, "sample_rate")
        ensure_positive(self.hop_band, "hop_band")
        if self.num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        if self.hop_band > self.sample_rate:
            raise ValueError("hop band exceeds the sample rate")
        if self.symbols_per_hop < 1:
            raise ValueError("symbols_per_hop must be >= 1")
        sps = 2.0 * self.sample_rate / self.channel_bandwidth
        if abs(sps - round(sps)) > 1e-9:
            raise ValueError(
                f"channel bandwidth {self.channel_bandwidth} does not give an "
                f"integer samples-per-chip at {self.sample_rate} S/s"
            )

    @property
    def channel_bandwidth(self) -> float:
        """Sub-channel bandwidth in Hz."""
        return self.hop_band / self.num_channels

    @property
    def sps(self) -> int:
        """Samples per complex chip at the sub-channel bandwidth."""
        return int(round(2.0 * self.sample_rate / self.channel_bandwidth))

    @property
    def processing_gain_db(self) -> float:
        """Spreading gain + hop gain in dB."""
        spread = 10.0 * np.log10(CHIPS_PER_SYMBOL / 4)
        hop = 10.0 * np.log10(self.num_channels)
        return spread + hop


@dataclass(frozen=True)
class FHSSPacketOutcome:
    """Result of one simulated FHSS packet."""

    accepted: bool
    bit_errors: int
    total_bits: int
    receive: ReceiveResult

    @property
    def bit_error_rate(self) -> float:
        """Payload-bit error rate of this packet."""
        return self.bit_errors / self.total_bits if self.total_bits else 0.0


class FHSSLink:
    """End-to-end FHSS link over the jammed AWGN medium."""

    def __init__(self, config: FHSSLinkConfig) -> None:
        self.config = config
        self.modem = SixteenAryDSSS(seed=config.seed)
        self.modulator = ChipModulator(config.pulse)
        self.medium = Medium(config.sample_rate)
        self._plan = FHSSChannelPlan(config.hop_band, config.num_channels)

    def _hopper(self, packet_index: int) -> FHSSModem:
        return FHSSModem(
            self._plan,
            self.config.sample_rate,
            seed=derive_seed(self.config.seed, "fhss-link", str(packet_index)),
        )

    def _segment_lengths(self, num_symbols: int) -> list[int]:
        cps = CHIPS_PER_SYMBOL
        lengths = []
        pos = 0
        while pos < num_symbols:
            take = min(self.config.symbols_per_hop, num_symbols - pos)
            lengths.append(take * (cps // 2) * self.config.sps)
            pos += take
        return lengths

    def transmit(self, payload: bytes | None = None, packet_index: int = 0) -> tuple[np.ndarray, np.ndarray, bytes]:
        """Build one FHSS packet: returns (waveform, frame symbols, payload)."""
        if payload is None:
            payload = bytes((packet_index + i) & 0xFF for i in range(self.config.payload_bytes))
        symbols = self.config.frame_format.build(payload)
        chips = self.modem.spread(symbols)
        baseband = self.modulator.modulate(chips, self.config.sps)
        lengths = self._segment_lengths(symbols.size)
        segments = []
        pos = 0
        for n in lengths:
            segments.append(baseband[pos : pos + n])
            pos += n
        waveform = self._hopper(packet_index).hop_up(segments)
        return waveform, symbols, bytes(payload)

    def receive(self, waveform: np.ndarray, payload_len: int, packet_index: int = 0) -> ReceiveResult:
        """De-hop, filter, demodulate and parse one packet."""
        num_symbols = self.config.frame_format.frame_symbols(payload_len)
        lengths = self._segment_lengths(num_symbols)
        segments = self._hopper(packet_index).hop_down(waveform, lengths, filtered=True)
        cps = CHIPS_PER_SYMBOL
        symbols = np.empty(num_symbols, dtype=np.int64)
        qualities = []
        pos_sym = 0
        for seg in segments:
            n_sym = min(self.config.symbols_per_hop, num_symbols - pos_sym)
            soft = self.modulator.demodulate(seg, self.config.sps, num_chips=n_sym * cps)
            result = self.modem.despread(soft, start_chip=pos_sym * cps)
            symbols[pos_sym : pos_sym + n_sym] = result.symbols
            qualities.extend(result.quality.tolist())
            pos_sym += n_sym
        frame = self.config.frame_format.parse(symbols)
        return ReceiveResult(
            frame=frame,
            symbols=symbols,
            decisions=(),
            quality=float(np.mean(qualities)) if qualities else 0.0,
        )

    def run_packet(
        self,
        snr_db: float,
        sjr_db: float = float("inf"),
        jammer: Jammer | None = None,
        packet_index: int = 0,
        rng: int | np.random.Generator | None = None,
        payload: bytes | None = None,
    ) -> FHSSPacketOutcome:
        """Simulate one packet through the jammed medium."""
        gen = make_rng(rng)
        waveform, _symbols, sent_payload = self.transmit(payload, packet_index)
        jam_wave = None
        if jammer is not None and not isinstance(jammer, NoJammer) and np.isfinite(sjr_db):
            jam_wave = jammer.waveform(waveform.size, gen)
        block = self.medium.combine(waveform, snr_db=snr_db, jammer=jam_wave, sjr_db=sjr_db, rng=gen)
        result = self.receive(block.samples, len(sent_payload), packet_index)
        accepted = result.accepted and result.payload == sent_payload
        if accepted:
            bit_errors = 0
        elif len(result.payload) == len(sent_payload) and result.payload:
            bit_errors = hamming_distance_bits(result.payload, sent_payload)
        else:
            bit_errors = 8 * len(sent_payload) // 2
        return FHSSPacketOutcome(
            accepted=accepted,
            bit_errors=min(bit_errors, 8 * len(sent_payload)),
            total_bits=8 * len(sent_payload),
            receive=result,
        )

    def run_packets(
        self,
        num_packets: int,
        snr_db: float,
        sjr_db: float = float("inf"),
        jammer: Jammer | None = None,
        seed: int = 0,
    ) -> tuple[float, float]:
        """Simulate a batch; returns (packet_error_rate, bit_error_rate)."""
        if num_packets < 1:
            raise ValueError("num_packets must be >= 1")
        accepted = 0
        bit_errors = 0
        total_bits = 0
        for k in range(num_packets):
            out = self.run_packet(
                snr_db=snr_db,
                sjr_db=sjr_db,
                jammer=jammer,
                packet_index=k,
                rng=child_rng(seed, "fhss-packet", str(k)),
            )
            accepted += int(out.accepted)
            bit_errors += out.bit_errors
            total_bits += out.total_bits
        return 1.0 - accepted / num_packets, bit_errors / total_bits
