"""Analytical results of the paper (Section 5 and the Appendix).

Implements, with the paper's equation numbers:

* eq. (6)/(7): SNR at the output of the despreading correlator with and
  without an interference-suppression FIR;
* eq. (8)-(12): the SNR improvement factor γ and its upper bounds for
  ideal narrow-band (excision) and wide-band (low-pass) filtering —
  Figures 7 and 8;
* eq. (16): the Gaussian-approximation bit error rate — Figures 9 and 10;
* eq. (17)/(18): packet error rate and throughput — Figure 11.

Conventions: chip power is 1, ``jammer_power`` is ρ_j(0) (total
interference power relative to a chip), ``noise_power`` is σ_n² (per-chip
white-noise variance).  All ``*_db`` parameters are in decibels.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np
from numpy import errstate

from repro.utils.units import db_to_linear, linear_to_db
from repro.utils.validation import ensure_probability_vector

#: scalar or array-like numeric input accepted by the vectorized equations
ArrayLike = Union[float, int, Sequence[float], np.ndarray]

__all__ = [
    "decision_variable_statistics",
    "jammer_autocorrelation",
    "correlator_snr_with_filter",
    "correlator_snr_no_filter",
    "improvement_factor",
    "improvement_factor_db",
    "narrowband_filter_useful_threshold",
    "ber_qpsk",
    "ber_from_ebno",
    "bhss_ber",
    "packet_error_rate",
    "normalized_throughput",
    "throughput_curve",
    "equal_rate_processing_gain_db",
]


# ---------------------------------------------------------------------------
# Appendix: decision-variable statistics; eq. (6)/(7): correlator SNR
# ---------------------------------------------------------------------------

def jammer_autocorrelation(bandwidth: float, sample_rate: float, num_lags: int, power: float = 1.0) -> np.ndarray:
    """Autocorrelation ρ_j(k) of an ideal band-limited noise jammer.

    Band-limited white noise of two-sided bandwidth B sampled at ``fs``
    has ``ρ_j(k) = P · sinc(B k / fs)``; this is the analytic input the
    eq.-(6) machinery needs to score a *real* FIR against a *modelled*
    jammer (validated against the simulated jammers in the tests).
    """
    if bandwidth <= 0 or sample_rate <= 0:
        raise ValueError("bandwidth and sample_rate must be positive")
    if num_lags < 1:
        raise ValueError("num_lags must be >= 1")
    if power < 0:
        raise ValueError("power must be >= 0")
    k = np.arange(num_lags)
    b_norm = min(bandwidth / sample_rate, 1.0)
    return power * np.sinc(b_norm * k)


def decision_variable_statistics(
    taps: ArrayLike,
    processing_gain: float,
    jammer_autocorr: ArrayLike | Callable[[int], float],
    noise_power: float,
) -> tuple[float, float]:
    """Appendix eqs. (19)/(20): mean and variance of the correlator output U.

    ``E(U) = L`` and ``var(U)`` is the sum of the filter's self-noise,
    the residual interference, and the filtered wide-band noise — the
    three right-hand terms of eq. (20), each scaled by L.
    Returns ``(mean, variance)``.
    """
    h = np.asarray(taps)
    if h.ndim != 1 or h.size == 0:
        raise ValueError("taps must be a non-empty 1-D array")
    if processing_gain <= 0:
        raise ValueError("processing_gain must be positive")
    k = h.size
    if callable(jammer_autocorr):
        rho = np.array([jammer_autocorr(lag) for lag in range(k)])
    else:
        rho = np.asarray(jammer_autocorr, dtype=float)
        if rho.size < k:
            raise ValueError(f"need jammer autocorrelation for lags 0..{k - 1}")
    h2 = np.abs(h) ** 2
    self_noise = float(np.sum(h2[1:]))
    lags = np.abs(np.subtract.outer(np.arange(k), np.arange(k)))
    residual = float(np.real(np.sum(np.outer(h, np.conj(h)) * rho[lags])))
    noise = noise_power * float(np.sum(h2))
    mean = float(processing_gain)
    variance = processing_gain * (self_noise + residual + noise)
    return mean, variance


def correlator_snr_with_filter(
    taps: ArrayLike,
    processing_gain: float,
    jammer_autocorr: ArrayLike | Callable[[int], float],
    noise_power: float,
) -> float:
    """eq. (6): SNR after a suppression FIR and the despreading correlator.

    Parameters
    ----------
    taps:
        FIR impulse response ``h(l)``, ``l = 0..K-1`` (real or complex).
    processing_gain:
        L, chips per information bit.
    jammer_autocorr:
        Jammer autocorrelation ``ρ_j(k)`` for lags ``0..K-1`` (array), or a
        callable ``ρ_j(lag)``.
    noise_power:
        White-noise variance σ_n².
    """
    h = np.asarray(taps)
    if h.ndim != 1 or h.size == 0:
        raise ValueError("taps must be a non-empty 1-D array")
    if processing_gain <= 0:
        raise ValueError("processing_gain must be positive")
    k = h.size
    if callable(jammer_autocorr):
        rho = np.array([jammer_autocorr(lag) for lag in range(k)])
    else:
        rho = np.asarray(jammer_autocorr, dtype=float)
        if rho.size < k:
            raise ValueError(f"need jammer autocorrelation for lags 0..{k - 1}")
    h2 = np.abs(h) ** 2
    self_noise = float(np.sum(h2[1:]))
    lags = np.abs(np.subtract.outer(np.arange(k), np.arange(k)))
    residual = float(np.real(np.sum(np.outer(h, np.conj(h)) * rho[lags])))
    noise = noise_power * float(np.sum(h2))
    return processing_gain / (self_noise + residual + noise)


def correlator_snr_no_filter(processing_gain: float, jammer_power: float, noise_power: float) -> float:
    """eq. (7): correlator-output SNR with no suppression filter."""
    if processing_gain <= 0:
        raise ValueError("processing_gain must be positive")
    denom = jammer_power + noise_power
    if denom <= 0:
        return float("inf")
    return processing_gain / denom


# ---------------------------------------------------------------------------
# eq. (8)-(12): the SNR improvement factor
# ---------------------------------------------------------------------------

def narrowband_filter_useful_threshold(jammer_power: float, noise_power: float) -> float:
    """eq. (10): the Bj/Bp ratio above which excision filtering hurts.

    For ``Bj > threshold * Bp`` the ideal excision filter removes more
    signal than jammer and the receiver should not filter (γ = 1).
    Returns 0 when the jammer is weaker than a chip (filtering never
    helps).
    """
    if jammer_power <= 1.0:
        return 0.0
    return (jammer_power - 1.0) / (jammer_power + noise_power)


def improvement_factor(
    bp: ArrayLike, bj: ArrayLike, jammer_power: float, noise_power: float = 0.01
) -> float | np.ndarray:
    """eq. (11)/(12): upper-bound SNR improvement factor γ (linear).

    Vectorized over ``bp`` and/or ``bj`` (broadcast together).  The three
    regimes:

    * ``Bj < Bp`` (narrow jammer, excision filter): eq. (11) — including
      the eq. (10) region where the filter is withheld and γ = 1;
    * ``Bj > Bp`` (wide jammer, low-pass filter): eq. (12);
    * ``Bj == Bp``: γ = 1 (nothing can be filtered).
    """
    bp_arr = np.asarray(bp, dtype=float)
    bj_arr = np.asarray(bj, dtype=float)
    if np.any(bp_arr <= 0) or np.any(bj_arr <= 0):
        raise ValueError("bandwidths must be positive")
    if jammer_power < 0 or noise_power < 0:
        raise ValueError("powers must be non-negative")
    bp_b, bj_b = np.broadcast_arrays(bp_arr, bj_arr)
    gamma = np.ones(bp_b.shape)

    total = jammer_power + noise_power

    # narrow-band jammer: eq. (11)
    narrow = bj_b < bp_b
    if np.any(narrow):
        threshold = narrowband_filter_useful_threshold(jammer_power, noise_power)
        useful = narrow & (bj_b <= threshold * bp_b)
        with errstate(divide="ignore", invalid="ignore"):
            g_narrow = total * (bp_b - bj_b) / bp_b / (1.0 + noise_power)
        gamma = np.where(useful, np.maximum(g_narrow, 1.0), gamma)

    # wide-band jammer: eq. (12)
    wide = bj_b > bp_b
    if np.any(wide):
        with errstate(divide="ignore", invalid="ignore"):
            g_wide = total / ((bp_b / bj_b) * jammer_power + noise_power)
        gamma = np.where(wide, np.maximum(g_wide, 1.0), gamma)

    if np.ndim(bp) == 0 and np.ndim(bj) == 0:
        return float(gamma)
    return gamma


def improvement_factor_db(
    bp: ArrayLike, bj: ArrayLike, jammer_power_db: float, noise_power: float = 0.01
) -> float | np.ndarray:
    """eq. (13): γ in dB, with the jammer power given in dB (over chip power)."""
    gamma = improvement_factor(bp, bj, db_to_linear(jammer_power_db), noise_power)
    return linear_to_db(gamma)


# ---------------------------------------------------------------------------
# eq. (16): bit error rate
# ---------------------------------------------------------------------------

def _erfc(x: ArrayLike) -> np.ndarray:
    """Complementary error function (vectorized, no scipy dependency).

    Uses the numerically stable rational approximation of Numerical
    Recipes (|relative error| < 1.2e-7 everywhere), which is far more
    precision than the Gaussian BER approximation itself carries.
    """
    x = np.asarray(x, dtype=float)
    z = np.abs(x)
    t = 1.0 / (1.0 + 0.5 * z)
    tau = t * np.exp(
        -z * z
        - 1.26551223
        + t
        * (
            1.00002368
            + t
            * (
                0.37409196
                + t
                * (
                    0.09678418
                    + t
                    * (
                        -0.18628806
                        + t
                        * (
                            0.27886807
                            + t
                            * (
                                -1.13520398
                                + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277))
                            )
                        )
                    )
                )
            )
        )
    )
    return np.where(x >= 0, tau, 2.0 - tau)


def ber_qpsk(snr: ArrayLike) -> float | np.ndarray:
    """eq. (16): ``Pb = 0.5 * erfc(sqrt(SNR / 2))`` (Gaussian approximation).

    ``snr`` is the *linear* correlator-output SNR.  Vectorized.
    """
    snr_arr = np.asarray(snr, dtype=float)
    if np.any(snr_arr < 0):
        raise ValueError("snr must be non-negative")
    pb = 0.5 * _erfc(np.sqrt(snr_arr / 2.0))
    return float(pb) if np.ndim(snr) == 0 else pb


def ber_from_ebno(
    eb_no_db: ArrayLike,
    sjr_db: float,
    processing_gain_db: float,
    gamma: float = 1.0,
) -> float | np.ndarray:
    """BER of a correlation receiver at a given Eb/N0, SJR and γ.

    The per-chip quantities follow the paper's normalization: chip power
    1, jammer power ``ρ_j = 1/SJR``, per-chip complex-noise variance
    ``σ_n² = L / (2 Eb/N0)`` — the factor 2 is QPSK's two bits per complex
    chip, which makes the unjammed curve the textbook QPSK waterfall
    ``Pb = Q(sqrt(2 Eb/N0))``.  With a filter of improvement factor γ the
    correlator SNR is ``γ * L / (ρ_j + σ_n²)``.
    """
    ebno = db_to_linear(np.asarray(eb_no_db, dtype=float))
    L = db_to_linear(processing_gain_db)
    rho_j = 1.0 / db_to_linear(sjr_db)
    sigma_n2 = L / (2.0 * ebno)
    snr = gamma * L / (rho_j + sigma_n2)
    return ber_qpsk(snr)


def bhss_ber(
    eb_no_db: ArrayLike,
    sjr_db: float,
    processing_gain_db: float,
    bandwidths: ArrayLike,
    hop_weights: ArrayLike,
    jammer_bandwidths: ArrayLike,
    jammer_weights: ArrayLike | None = None,
    aggregate: str = "mean_gamma",
) -> float | np.ndarray:
    """Average BER of a BHSS receiver with ideal filters (Figures 9/10).

    The transmitter hops over ``bandwidths`` with ``hop_weights``; the
    jammer uses ``jammer_bandwidths`` (scalar for a fixed jammer, array
    with ``jammer_weights`` for a hopping jammer).  Three aggregations
    over the i.i.d. (Bp, Bj) hop pairs are supported:

    * ``"mean_gamma"`` (default): average the *linear* SNR improvement
      over the hop mixture, then apply eq. (16) once.  This is the
      average-output-SNR view of the hopping receiver and reproduces the
      paper's Figure-9 ordering (a random-hopping jammer is better for
      the link than any fixed ``Bj/max(Bp) > 0.1``, worse than narrower
      fixed jammers).
    * ``"mean_gamma_db"``: average the improvement in dB (geometric-mean
      SNR) — more conservative.
    * ``"mean_ber"``: the exact mixture ``E[Pb(gamma * SNR)]`` — most
      pessimistic on a *discrete* alphabet, where the exactly-matched
      bandwidth has finite probability and floors the average.
    """
    bw = np.asarray(bandwidths, dtype=float)
    w = ensure_probability_vector(hop_weights, "hop_weights")
    if bw.size != w.size:
        raise ValueError("bandwidths and hop_weights must have the same length")
    jbw = np.atleast_1d(np.asarray(jammer_bandwidths, dtype=float))
    if jammer_weights is None:
        jw = np.full(jbw.size, 1.0 / jbw.size)
    else:
        jw = ensure_probability_vector(jammer_weights, "jammer_weights")
        if jw.size != jbw.size:
            raise ValueError("jammer_bandwidths and jammer_weights must match")

    ebno_arr = np.atleast_1d(np.asarray(eb_no_db, dtype=float))
    L = db_to_linear(processing_gain_db)
    rho_j = 1.0 / db_to_linear(sjr_db)

    if aggregate not in ("mean_gamma", "mean_gamma_db", "mean_ber"):
        raise ValueError(f"unknown aggregate {aggregate!r}")
    out = np.zeros(ebno_arr.shape)
    for i, ebno_db in enumerate(ebno_arr):
        sigma_n2 = L / (2.0 * db_to_linear(float(ebno_db)))
        snr_no = L / (rho_j + sigma_n2)
        # mixture over transmitter hop x jammer hop
        gamma = improvement_factor(bw[:, None], jbw[None, :], rho_j, sigma_n2)
        if aggregate == "mean_ber":
            pb = ber_qpsk(gamma * snr_no)
            out[i] = float(w @ pb @ jw)
        elif aggregate == "mean_gamma":
            mean_gamma = float(w @ gamma @ jw)
            out[i] = float(ber_qpsk(mean_gamma * snr_no))
        else:
            mean_gamma_db = float(w @ linear_to_db(gamma) @ jw)
            out[i] = float(ber_qpsk(db_to_linear(mean_gamma_db) * snr_no))
    return out if np.ndim(eb_no_db) else float(out[0])


# ---------------------------------------------------------------------------
# eq. (17)/(18): packet error rate and throughput
# ---------------------------------------------------------------------------

def packet_error_rate(bit_error_rate: ArrayLike, packet_bits: int) -> float | np.ndarray:
    """eq. (18): ``Pp = 1 - (1 - Pb)^N`` for i.i.d. bit errors.

    Computed in log space so tiny BERs with huge N stay accurate.
    """
    if packet_bits < 1:
        raise ValueError(f"packet_bits must be >= 1, got {packet_bits}")
    pb = np.asarray(bit_error_rate, dtype=float)
    if np.any((pb < 0) | (pb > 1)):
        raise ValueError("bit_error_rate must be in [0, 1]")
    pp = -np.expm1(packet_bits * np.log1p(-np.minimum(pb, 1.0 - 1e-15)))
    pp = np.where(pb >= 1.0, 1.0, pp)
    pp = np.clip(pp, 0.0, 1.0)
    return float(pp) if np.ndim(bit_error_rate) == 0 else pp


def normalized_throughput(
    bit_error_rate: ArrayLike, packet_bits: int, rate: float = 1.0
) -> float | np.ndarray:
    """eq. (17): ``T = R * (1 - Pp)`` with R normalized to 1 by default."""
    return rate * (1.0 - packet_error_rate(bit_error_rate, packet_bits))


def equal_rate_processing_gain_db(
    bhss_processing_gain_db: float, bandwidths: ArrayLike, hop_weights: ArrayLike
) -> float:
    """Processing gain a fixed-bandwidth DSSS/FHSS needs for equal rate.

    The paper fixes the comparison at "equal capacity" (Section 5.4): a
    DSSS system occupying max(Bp) permanently delivers more chips per
    second than a hopping system averaging a lower bandwidth, so its
    spreading factor can be raised by ``max(Bp) / E[Bp]`` while matching
    BHSS's data rate.  With the paper's L = 20 dB and hop range 100 this
    yields the quoted ~25.4 dB.
    """
    bw = np.asarray(bandwidths, dtype=float)
    w = ensure_probability_vector(hop_weights, "hop_weights")
    mean_bw = float(np.sum(bw * w))
    factor = bw.max() / mean_bw
    return bhss_processing_gain_db + linear_to_db(factor)


def throughput_curve(
    eb_no_db: ArrayLike,
    sjr_db: float,
    packet_bits: int,
    processing_gain_db: float,
    bandwidths: ArrayLike | None = None,
    hop_weights: ArrayLike | None = None,
    jammer_bandwidths: ArrayLike | None = None,
    jammer_weights: ArrayLike | None = None,
) -> float | np.ndarray:
    """Normalized throughput vs Eb/N0 (Figure 11).

    With ``bandwidths``/``hop_weights``/``jammer_bandwidths`` set this is
    the BHSS curve; without them it is the fixed-bandwidth DSSS/FHSS curve
    (γ = 1) at the given processing gain.

    The BHSS mixture is taken at the **packet level**: the normalized
    throughput is the (hop x jammer)-weighted mean of the per-bandwidth
    packet success probabilities.  This reproduces the paper's Figure-11
    behaviour — e.g. a jammer at max(Bp) caps BHSS throughput near the
    fraction of hop bandwidths whose γ·SNR clears the packet threshold
    (≈0.3 in the paper) — whereas a bit-level mixture would let any single
    bad bandwidth in the alphabet zero out *every* packet.
    """
    ebno = np.atleast_1d(np.asarray(eb_no_db, dtype=float))
    if bandwidths is None:
        pb = np.array(
            [ber_from_ebno(float(e), sjr_db, processing_gain_db, gamma=1.0) for e in ebno]
        )
        t = normalized_throughput(pb, packet_bits)
        return t if np.ndim(eb_no_db) else float(t[0])

    bw = np.asarray(bandwidths, dtype=float)
    w = ensure_probability_vector(hop_weights, "hop_weights")
    jbw = np.atleast_1d(np.asarray(jammer_bandwidths, dtype=float))
    if jammer_weights is None:
        jw = np.full(jbw.size, 1.0 / jbw.size)
    else:
        jw = ensure_probability_vector(jammer_weights, "jammer_weights")
    L = db_to_linear(processing_gain_db)
    rho_j = 1.0 / db_to_linear(sjr_db)
    out = np.zeros(ebno.shape)
    for i, e in enumerate(ebno):
        sigma_n2 = L / (2.0 * db_to_linear(float(e)))
        snr_no = L / (rho_j + sigma_n2)
        gamma = improvement_factor(bw[:, None], jbw[None, :], rho_j, sigma_n2)
        pb = ber_qpsk(gamma * snr_no)
        success = 1.0 - packet_error_rate(pb, packet_bits)
        out[i] = float(w @ success @ jw)
    return out if np.ndim(eb_no_db) else float(out[0])
