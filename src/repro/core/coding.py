"""Frame-level FEC + interleaving glue (extension beyond the paper).

Applies a block code and a frame-spanning interleaver to everything
*after* the preamble (the preamble must stay uncoded so acquisition still
works).  Both ends derive the coded frame geometry purely from the shared
configuration, so the receiver knows how many symbols to capture before
it can decode anything — same philosophy as the hop schedule.

Interleaver depth is chosen automatically as the number of hop dwells the
coded frame spans: consecutive bits of a codeword then land in different
dwells, converting one jammed dwell into isolated single-bit errors that
the code corrects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.bits import bits_to_nibbles, nibbles_to_bits
from repro.phy.fec import Codec, block_deinterleave, block_interleave

__all__ = ["FrameCoder"]


@dataclass(frozen=True)
class FrameCoder:
    """Encodes/decodes the post-preamble portion of a frame's symbols.

    Parameters
    ----------
    codec:
        The block code (``IdentityCode`` for the paper's uncoded system).
    preamble_symbols:
        Number of leading symbols left uncoded.
    symbols_per_hop:
        Used to auto-size the interleaver depth to the dwell count.
    """

    codec: Codec
    preamble_symbols: int
    symbols_per_hop: int

    def coded_symbols(self, frame_symbols: int) -> int:
        """Total on-air symbols for an uncoded frame of ``frame_symbols``."""
        if frame_symbols < self.preamble_symbols:
            raise ValueError("frame shorter than its preamble")
        body_bits = 4 * (frame_symbols - self.preamble_symbols)
        coded_bits = self.codec.encoded_length(body_bits)
        return self.preamble_symbols + -(-coded_bits // 4)

    def _depth(self, coded_bits: int) -> int:
        # One interleaver column per hop dwell of the coded body: a fully
        # corrupted dwell (4 * symbols_per_hop bits) then de-interleaves
        # to at most one error every ``coded_bits/depth`` positions —
        # i.e. at most one per codeword once dwells exceed the codeword
        # length.
        dwell_bits = 4 * self.symbols_per_hop
        return max(1, coded_bits // dwell_bits)

    @property
    def is_passthrough(self) -> bool:
        """True for the uncoded system: no expansion, no interleaving."""
        return self.codec.n == 1 and self.codec.k == 1

    def encode(self, frame_symbols: np.ndarray) -> np.ndarray:
        """Frame symbols -> on-air symbols (preamble + coded body)."""
        syms = np.asarray(frame_symbols, dtype=np.uint8)
        if self.is_passthrough:
            return syms.copy()
        head = syms[: self.preamble_symbols]
        body_bits = nibbles_to_bits(syms[self.preamble_symbols :])
        coded = self.codec.encode(body_bits)
        coded = block_interleave(coded, self._depth(coded.size))
        pad = (-coded.size) % 4
        if pad:
            coded = np.concatenate([coded, np.zeros(pad, dtype=np.uint8)])
        return np.concatenate([head, bits_to_nibbles(coded)])

    def decode(self, air_symbols: np.ndarray, frame_symbols: int) -> np.ndarray:
        """On-air symbols -> frame symbols of the original length."""
        syms = np.asarray(air_symbols, dtype=np.uint8)
        expected = self.coded_symbols(frame_symbols)
        if syms.size < expected:
            raise ValueError(
                f"captured {syms.size} symbols, coded frame needs {expected}"
            )
        if self.is_passthrough:
            return syms[:frame_symbols].copy()
        head = syms[: self.preamble_symbols]
        body_bits_len = 4 * (frame_symbols - self.preamble_symbols)
        coded_bits = self.codec.encoded_length(body_bits_len)
        air_bits = nibbles_to_bits(syms[self.preamble_symbols : expected])[:coded_bits]
        deinterleaved = block_deinterleave(air_bits, self._depth(coded_bits))
        decoded = self.codec.decode(deinterleaved)[:body_bits_len]
        return np.concatenate([head, bits_to_nibbles(decoded)])
