"""BHSS system configuration.

One :class:`BHSSConfig` object describes a complete link — bandwidth set,
hop pattern, PHY parameters, shared seed, and receiver filtering knobs —
and both the transmitter and the receiver are built from it, which is how
the pre-shared-secret synchronization of the paper is modelled: same
config (seed included) = same PN scrambler and same hop schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.dsp.pulse import PulseShape, get_pulse, pulse_spec
from repro.hopping.bands import BandwidthSet
from repro.hopping.patterns import pattern_from_spec, pattern_spec
from repro.hopping.schedule import HopSchedule
from repro.phy.fec import get_codec
from repro.phy.frame import DEFAULT_FRAME_FORMAT, FrameFormat
from repro.phy.qpsk import ChipModulator
from repro.spread.chiptables import CHIPS_PER_SYMBOL
from repro.spread.dsss import SixteenAryDSSS

if TYPE_CHECKING:
    from repro.core.coding import FrameCoder

__all__ = ["BHSSConfig"]


@dataclass(frozen=True)
class BHSSConfig:
    """Complete configuration of a BHSS link.

    Parameters
    ----------
    bandwidth_set:
        Hop bandwidth alphabet (carries the sample rate).
    pattern:
        Hop distribution: ``"linear"`` / ``"exponential"`` / ``"parabolic"``
        or an explicit weight vector over the set.
    symbols_per_hop:
        Symbols transmitted per hop dwell.
    pulse:
        Chip pulse shape (name or :class:`~repro.dsp.pulse.PulseShape`);
        the paper uses the half-sine.
    seed:
        The pre-shared random seed (hop schedule + PN scrambler).
    payload_bytes:
        Default payload size for simulated packets.
    frame_format:
        Frame layout (preamble/SFD/length/CRC).
    filtering:
        Whether the receiver runs the jammer estimation + EF/LPF stage.
        Disabling it turns the receiver into the conventional
        fixed-structure SS receiver the paper compares against.
    excision_taps:
        Length K of the eq.-3 whitening FIR (odd keeps the group delay an
        integer number of samples).
    lpf_transition_fraction:
        Low-pass transition width as a fraction of the hop bandwidth.
    fixed_bandwidth:
        When set, disables hopping and pins the link to this bandwidth
        (the DSSS baseline and the adaptive stop-hopping mode).
    matched_filter:
        Whether the receiver matched-filters before chip sampling.
        Disabling it (together with ``filtering``) yields the theory
        model's eq.-(5) receiver — chip-rate sampling with a wide-open
        front end — the baseline of the Section-6.3 power advantage.
    fec:
        Channel code applied to the post-preamble frame (extension beyond
        the paper, which evaluates uncoded): ``"none"`` (default),
        ``"rep3"``, ``"rep5"``, ``"hamming74"``, or ``"hamming1511"``.
        Coded frames are interleaved across hop dwells.
    """

    bandwidth_set: BandwidthSet
    pattern: str | np.ndarray = "linear"
    symbols_per_hop: int = 4
    pulse: PulseShape | str = "half_sine"
    seed: int = 0
    payload_bytes: int = 16
    frame_format: FrameFormat = field(default_factory=lambda: DEFAULT_FRAME_FORMAT)
    filtering: bool = True
    excision_taps: int = 257
    lpf_transition_fraction: float = 0.2
    fixed_bandwidth: float | None = None
    matched_filter: bool = True
    fec: str = "none"

    def __post_init__(self) -> None:
        if self.symbols_per_hop < 1:
            raise ValueError("symbols_per_hop must be >= 1")
        if self.payload_bytes < 0 or self.payload_bytes > self.frame_format.max_payload:
            raise ValueError(
                f"payload_bytes must be in 0..{self.frame_format.max_payload}"
            )
        if self.excision_taps < 9 or self.excision_taps % 2 == 0:
            raise ValueError("excision_taps must be an odd integer >= 9")
        if not 0.01 <= self.lpf_transition_fraction <= 1.0:
            raise ValueError("lpf_transition_fraction must be in [0.01, 1]")
        if self.fixed_bandwidth is not None:
            self.bandwidth_set.index_of(self.fixed_bandwidth)  # validates membership
        object.__setattr__(self, "pulse", get_pulse(self.pulse))
        get_codec(self.fec)  # validate the codec name early

    # -- derived properties --------------------------------------------------

    @property
    def sample_rate(self) -> float:
        """Baseband sample rate in Hz."""
        return self.bandwidth_set.sample_rate

    @property
    def chips_per_symbol(self) -> int:
        """Binary chips per 4-bit symbol (32)."""
        return CHIPS_PER_SYMBOL

    @property
    def processing_gain_db(self) -> float:
        """Spreading processing gain (~9 dB for the 16-ary PHY)."""
        return SixteenAryDSSS().processing_gain_db

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless JSON-able spec of this configuration.

        :meth:`from_dict` inverts it: ``BHSSConfig.from_dict(cfg.to_dict())``
        equals ``cfg`` for every constructible configuration, which is what
        lets scenarios, caches and remote workers treat a link config as
        plain data.
        """
        return {
            "bandwidth_set": self.bandwidth_set.to_dict(),
            "pattern": pattern_spec(self.pattern),
            "symbols_per_hop": int(self.symbols_per_hop),
            "pulse": pulse_spec(self.pulse),
            "seed": int(self.seed),
            "payload_bytes": int(self.payload_bytes),
            "frame_format": self.frame_format.to_dict(),
            "filtering": bool(self.filtering),
            "excision_taps": int(self.excision_taps),
            "lpf_transition_fraction": float(self.lpf_transition_fraction),
            "fixed_bandwidth": None if self.fixed_bandwidth is None else float(self.fixed_bandwidth),
            "matched_filter": bool(self.matched_filter),
            "fec": str(self.fec),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BHSSConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Every field is optional (defaults match the dataclass defaults;
        an omitted ``bandwidth_set`` means the paper's seven-bandwidth
        set), and validation errors name the offending field.
        """
        if not isinstance(data, dict):
            raise ValueError(f"config spec must be a mapping, got {type(data).__name__}")
        known = {
            "bandwidth_set", "pattern", "symbols_per_hop", "pulse", "seed",
            "payload_bytes", "frame_format", "filtering", "excision_taps",
            "lpf_transition_fraction", "fixed_bandwidth", "matched_filter", "fec",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config field(s): {sorted(unknown)}")
        kwargs: dict = {}

        def parse(field: str, fn: Callable[[Any], Any]) -> None:
            if field not in data:
                return
            try:
                kwargs[field] = fn(data[field])
            except ValueError as exc:
                raise ValueError(f"config field {field!r}: {exc}") from None

        def number(value: Any, cast: Callable[[Any], Any] = float) -> Any:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"expected a number, got {value!r}")
            return cast(value)

        def integer(value: Any) -> int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"expected an integer, got {value!r}")
            return value

        def boolean(value: Any) -> bool:
            if not isinstance(value, bool):
                raise ValueError(f"expected a boolean, got {value!r}")
            return value

        def string(value: Any) -> str:
            if not isinstance(value, str):
                raise ValueError(f"expected a string, got {value!r}")
            return value

        parse("bandwidth_set", BandwidthSet.from_dict)
        kwargs.setdefault("bandwidth_set", BandwidthSet.paper_default())
        parse("pattern", pattern_from_spec)
        parse("symbols_per_hop", integer)
        parse("pulse", get_pulse)
        parse("seed", integer)
        parse("payload_bytes", integer)
        parse("frame_format", FrameFormat.from_dict)
        parse("filtering", boolean)
        parse("excision_taps", integer)
        parse("lpf_transition_fraction", number)
        parse("fixed_bandwidth", lambda v: None if v is None else number(v))
        parse("matched_filter", boolean)
        parse("fec", string)
        try:
            return cls(**kwargs)
        except ValueError as exc:
            raise ValueError(f"invalid config spec: {exc}") from None

    # -- factories ------------------------------------------------------------

    @classmethod
    def paper_default(
        cls,
        pattern: str | np.ndarray = "linear",
        seed: int = 0,
        payload_bytes: int = 16,
        **overrides: Any,
    ) -> "BHSSConfig":
        """The paper's SDR configuration: 7 octave bandwidths at 20 MS/s."""
        return cls(
            bandwidth_set=BandwidthSet.paper_default(),
            pattern=pattern,
            seed=seed,
            payload_bytes=payload_bytes,
            **overrides,
        )

    def with_fixed_bandwidth(self, bandwidth: float) -> "BHSSConfig":
        """A copy pinned to one bandwidth (hopping disabled)."""
        return replace(self, fixed_bandwidth=float(bandwidth))

    def without_filtering(self) -> "BHSSConfig":
        """A copy with the receiver's interference filtering disabled."""
        return replace(self, filtering=False)

    def as_theory_baseline(self) -> "BHSSConfig":
        """A copy mimicking eq. (5)'s unfiltered correlation receiver.

        No interference filtering *and* no matched filter: chips are read
        by direct chip-rate sampling, so wide-band interference aliases
        fully into the decision variable.  This is the "without filter"
        receiver of the paper's Section-6.3 power-advantage measurements.
        """
        return replace(self, filtering=False, matched_filter=False)

    def with_pattern(self, pattern: str | np.ndarray) -> "BHSSConfig":
        """A copy using a different hop distribution."""
        return replace(self, pattern=pattern, fixed_bandwidth=None)

    # -- component builders ---------------------------------------------------

    def build_schedule(self) -> HopSchedule:
        """The hop schedule shared by transmitter and receiver."""
        if self.fixed_bandwidth is not None:
            return HopSchedule.fixed(self.bandwidth_set, self.fixed_bandwidth, seed=self.seed)
        return HopSchedule(
            bandwidth_set=self.bandwidth_set,
            weights=self.pattern,
            symbols_per_hop=self.symbols_per_hop,
            seed=self.seed,
        )

    def build_modem(self) -> SixteenAryDSSS:
        """The (scrambled) 16-ary DSSS modem for this link's seed."""
        return SixteenAryDSSS(seed=self.seed)

    def build_modulator(self) -> ChipModulator:
        """The pulse-shaping chip modulator."""
        return ChipModulator(self.pulse)

    def frame_symbols(self, payload_len: int | None = None) -> int:
        """Total frame symbols for a payload (default payload size)."""
        n = self.payload_bytes if payload_len is None else payload_len
        return self.frame_format.frame_symbols(n)

    def build_frame_coder(self) -> "FrameCoder":
        """The FEC + interleaving stage shared by transmitter and receiver."""
        from repro.core.coding import FrameCoder

        return FrameCoder(
            codec=get_codec(self.fec),
            preamble_symbols=self.frame_format.preamble_symbols,
            symbols_per_hop=self.symbols_per_hop,
        )

    def air_symbols(self, payload_len: int | None = None) -> int:
        """On-air symbols per frame, accounting for the FEC expansion."""
        return self.build_frame_coder().coded_symbols(self.frame_symbols(payload_len))
