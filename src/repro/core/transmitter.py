"""The BHSS transmitter (Section 3, Figure 4).

The conventional DSSS chain — symbols → PN spreading → pulse shaping — is
kept intact; the single change that makes it BHSS is that the pulse shape
duration is rescaled per hop (``g(t) → g(αt)``), which by eq. (1)
compresses the spectrum by the same factor.  The hop factor sequence comes
from the seeded :class:`~repro.hopping.schedule.HopSchedule`, so the
bandwidth changes *during* the packet, faster than a reactive jammer's
reaction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import BHSSConfig
from repro.hopping.schedule import HopSegment

__all__ = ["BHSSTransmitter", "TransmittedPacket"]

#: Rows per stacked DSP call.  Grouped segments are processed in slices of
#: this many rows: enough to amortize per-call overhead, small enough that
#: the FFT working set stays cache-resident (huge stacks go memory-bound
#: and run *slower* than serial).  Row-wise results do not depend on the
#: slicing, so any value is bit-identical.
ROW_CHUNK = 64


@dataclass(frozen=True)
class TransmittedPacket:
    """A transmitted waveform plus everything the analysis layer needs.

    Attributes
    ----------
    waveform:
        Complex baseband samples, unit average power.
    symbols:
        The frame's 4-bit symbols (ground truth for BER accounting),
        *before* any FEC expansion.
    air_symbols:
        The symbols actually spread on air (equal to ``symbols`` for the
        uncoded system; longer when a codec is configured).
    segments:
        The hop segments (symbol ranges, bandwidths, stretch factors).
    sample_counts:
        Waveform samples per hop segment (aligned with ``segments``).
    payload:
        The payload bytes carried.
    packet_index:
        Sequence number (selects the per-packet hop substream).
    """

    waveform: np.ndarray
    symbols: np.ndarray
    air_symbols: np.ndarray
    segments: tuple[HopSegment, ...]
    sample_counts: tuple[int, ...]
    payload: bytes
    packet_index: int

    @property
    def num_samples(self) -> int:
        """Total waveform length in samples."""
        return int(self.waveform.size)

    def bandwidth_profile(self) -> list[tuple[int, float]]:
        """``(num_samples, bandwidth)`` pairs — what a sensing jammer observes."""
        return [
            (count, seg.bandwidth)
            for count, seg in zip(self.sample_counts, self.segments)
        ]

    @property
    def duration_symbols(self) -> int:
        """Frame length in symbols."""
        return int(self.symbols.size)


class BHSSTransmitter:
    """Builds BHSS packets from payload bytes.

    With a ``fixed_bandwidth`` config this is exactly a conventional DSSS
    transmitter (one hop covering the whole packet), which is how the
    baselines are generated "using the same code base as BHSS but with
    bandwidth hopping disabled" (Section 6.4).
    """

    def __init__(self, config: BHSSConfig) -> None:
        self.config = config
        self.schedule = config.build_schedule()
        self.modem = config.build_modem()
        self.modulator = config.build_modulator()
        self.coder = config.build_frame_coder()

    def transmit(self, payload: bytes | None = None, packet_index: int = 0) -> TransmittedPacket:
        """Encode, spread, and modulate one packet.

        ``payload`` defaults to a deterministic pattern of the configured
        size (packet index baked in, so consecutive packets differ).
        """
        if payload is None:
            n = self.config.payload_bytes
            payload = bytes((packet_index + i) & 0xFF for i in range(n))
        frame = self.config.frame_format.build(payload)
        symbols = self.coder.encode(frame)
        segments = tuple(self.schedule.segments(symbols.size, packet_index))

        cps = self.config.chips_per_symbol
        pieces: list[np.ndarray] = []
        counts: list[int] = []
        for seg in segments:
            seg_symbols = symbols[seg.start_symbol : seg.start_symbol + seg.num_symbols]
            chips = self.modem.spread(seg_symbols, start_chip=seg.start_symbol * cps)
            wave = self.modulator.modulate(chips, seg.sps)
            pieces.append(wave)
            counts.append(wave.size)
        waveform = np.concatenate(pieces) if pieces else np.zeros(0, dtype=complex)
        return TransmittedPacket(
            waveform=waveform,
            symbols=frame,
            air_symbols=symbols,
            segments=segments,
            sample_counts=tuple(counts),
            payload=bytes(payload),
            packet_index=packet_index,
        )

    def transmit_batch(
        self, packet_indices: Sequence[int], payload: bytes | None = None
    ) -> list["TransmittedPacket"]:
        """Batched :meth:`transmit` over a sequence of packet indices.

        Packet ``k`` of the result is bit-identical to
        ``transmit(payload, k)``.  Per-(packet, segment) work is grouped
        by ``(num_symbols, sps)`` only — the chip offset of a segment is a
        per-row scramble-phase input, not a shape — and each group is
        spread and pulse-shaped as one stacked operation through
        :meth:`~repro.spread.dsss.SixteenAryDSSS.spread_batch` and
        :meth:`~repro.phy.qpsk.ChipModulator.modulate_batch`.  With the
        paper's eight-bandwidth set this collapses a whole packet chunk
        into roughly one stacked call per distinct stretch factor.
        """
        indices = [int(k) for k in packet_indices]
        if not indices:
            return []
        cps = self.config.chips_per_symbol

        frames: list[np.ndarray] = []
        air_symbols: list[np.ndarray] = []
        payloads: list[bytes] = []
        segment_lists: list[tuple[HopSegment, ...]] = []
        counts: list[list[int]] = []
        offsets: list[list[int]] = []
        waveforms: list[np.ndarray] = []
        for k in indices:
            if payload is None:
                n = self.config.payload_bytes
                pkt_payload = bytes((k + i) & 0xFF for i in range(n))
            else:
                pkt_payload = payload
            frame = self.config.frame_format.build(pkt_payload)
            symbols = self.coder.encode(frame)
            segments = tuple(self.schedule.segments(symbols.size, k))
            seg_counts = [seg.num_symbols * (cps // 2) * seg.sps for seg in segments]
            seg_offsets = np.concatenate(([0], np.cumsum(seg_counts))).astype(int)
            frames.append(frame)
            air_symbols.append(symbols)
            payloads.append(bytes(pkt_payload))
            segment_lists.append(segments)
            counts.append(seg_counts)
            offsets.append(list(seg_offsets[:-1]))
            waveforms.append(np.empty(int(seg_offsets[-1]), dtype=complex))

        # Group (packet, segment) pairs that share segment length and
        # stretch factor; each group runs as one stacked spread + modulate
        # with per-row scramble phases.
        groups: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        for p, segments in enumerate(segment_lists):
            for s, seg in enumerate(segments):
                key = (seg.num_symbols, seg.sps)
                groups.setdefault(key, []).append((p, s, seg.start_symbol))
        chunked = (
            (key, all_members[i : i + ROW_CHUNK])
            for key, all_members in groups.items()
            for i in range(0, len(all_members), ROW_CHUNK)
        )
        for (num_symbols, sps), members in chunked:
            sym_stack = np.stack(
                [air_symbols[p][start : start + num_symbols] for p, _s, start in members]
            )
            starts = np.fromiter((start * cps for _p, _s, start in members), dtype=int)
            chips = self.modem.spread_batch(sym_stack, start_chip=starts)
            waves = self.modulator.modulate_batch(chips, sps)
            for row, (p, s, _start) in enumerate(members):
                off = offsets[p][s]
                waveforms[p][off : off + counts[p][s]] = waves[row]

        return [
            TransmittedPacket(
                waveform=waveforms[p],
                symbols=frames[p],
                air_symbols=air_symbols[p],
                segments=segment_lists[p],
                sample_counts=tuple(counts[p]),
                payload=payloads[p],
                packet_index=indices[p],
            )
            for p in range(len(indices))
        ]
