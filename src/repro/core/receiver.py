"""The BHSS receiver (Section 4, Figure 6).

Per hop segment (whose bandwidth and duration the receiver *derives from
the shared seed*, never from the air — Section 4.1):

1. the control logic estimates the jammer spectrally and selects the
   low-pass / excision / no filter (Section 4.2);
2. the filter runs before anything else, so the jammer cannot disturb the
   later stages;
3. the matched filter (matched to the current stretch factor α) recovers
   soft chips;
4. the correlator bank despreads chips to symbols.

Frame parsing and CRC checking then decide packet acceptance.  The same
class with ``config.filtering == False`` is the conventional SS receiver
used as the paper's baseline.

:class:`AcquiringReceiver` adds the front-end synchronization of the
paper's implementation (preamble detection, carrier-frequency/phase
estimation, Costas-style fine tracking) for use on impaired channels where
the packet position and oscillator offsets are unknown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BHSSConfig
from repro.core.control import ControlLogic, FilterDecision, FilterKind
from repro.dsp.fir import apply_fir
from repro.dsp.mixing import frequency_shift, phase_rotate
from repro.phy.frame import ParsedFrame
from repro.phy.qpsk import binary_chips_to_complex, complex_chips_to_binary
from repro.sync.costas import CostasLoop
from repro.sync.preamble import detect_preamble_noncoherent, estimate_cfo_from_preamble
from repro.utils.validation import as_complex_array

__all__ = ["BHSSReceiver", "ReceiveResult", "AcquiringReceiver", "AcquisitionResult"]


@dataclass(frozen=True)
class ReceiveResult:
    """Everything the receiver recovered from one packet.

    Attributes
    ----------
    frame:
        The parsed frame (payload + CRC verdict).
    symbols:
        Decided 4-bit symbols for the whole frame.
    decisions:
        Per-hop-segment filter decisions (empty when filtering is off).
    quality:
        Mean normalized despreading correlation (1.0 = clean).
    """

    frame: ParsedFrame
    symbols: np.ndarray
    decisions: tuple[FilterDecision, ...]
    quality: float

    @property
    def accepted(self) -> bool:
        """The paper's packet-success criterion (structure + CRC)."""
        return self.frame.accepted

    @property
    def payload(self) -> bytes:
        """Recovered payload bytes (empty if the frame failed)."""
        return self.frame.payload

    def filter_usage(self) -> dict[str, int]:
        """Histogram of filter kinds chosen across the packet's segments."""
        counts: dict[str, int] = {k.value: 0 for k in FilterKind}
        for d in self.decisions:
            counts[d.kind.value] += 1
        return counts


class BHSSReceiver:
    """Hop-synchronized, filtering BHSS receiver."""

    def __init__(self, config: BHSSConfig, control: ControlLogic | None = None) -> None:
        self.config = config
        self.schedule = config.build_schedule()
        self.modem = config.build_modem()
        self.modulator = config.build_modulator()
        self.control = control or ControlLogic(
            sample_rate=config.sample_rate,
            excision_taps=config.excision_taps,
            lpf_transition_fraction=config.lpf_transition_fraction,
            pulse=config.pulse,
        )
        self.coder = config.build_frame_coder()

    def receive(
        self,
        waveform: np.ndarray,
        payload_len: int | None = None,
        packet_index: int = 0,
        phase_track: bool = False,
    ) -> ReceiveResult:
        """Demodulate one packet whose start is sample-aligned.

        ``payload_len`` sets the expected frame size (defaults to the
        configured payload size — in a real system the length field would
        be decoded first; the fixed-size assumption only pins the frame
        geometry, not the content).

        ``phase_track`` enables a chip-rate Costas loop between matched
        filter and despreader, for waveforms with residual carrier error.
        """
        x = as_complex_array(waveform, "waveform")
        n_payload = self.config.payload_bytes if payload_len is None else payload_len
        frame_symbols = self.config.frame_format.frame_symbols(n_payload)
        num_symbols = self.coder.coded_symbols(frame_symbols)
        segments = self.schedule.segments(num_symbols, packet_index)

        cps = self.config.chips_per_symbol
        costas = CostasLoop(loop_bandwidth=0.02) if phase_track else None

        all_symbols = np.empty(num_symbols, dtype=np.int64)
        decisions: list[FilterDecision] = []
        qualities: list[float] = []
        pos = 0
        for seg in segments:
            n_samples = seg.num_symbols * (cps // 2) * seg.sps
            block = x[pos : pos + n_samples]
            pos += n_samples
            if block.size < n_samples:
                # Truncated capture: decide the missing symbols arbitrarily
                # and record them as zero-quality so the packet's mean
                # despreading quality reflects the loss (averaging only the
                # surviving segments would read biased-high).
                all_symbols[seg.start_symbol : seg.start_symbol + seg.num_symbols] = 0
                qualities.extend([0.0] * seg.num_symbols)
                continue

            if self.config.filtering:
                decision = self.control.decide(block, seg.bandwidth)
                decisions.append(decision)
                if decision.taps is not None:
                    block = apply_fir(block, decision.taps, mode="compensated")

            soft = self.modulator.demodulate(
                block,
                seg.sps,
                num_chips=seg.num_symbols * cps,
                matched=self.config.matched_filter,
            )
            if costas is not None:
                tracked = costas.process(binary_chips_to_complex(soft))
                soft = complex_chips_to_binary(tracked.corrected)
            result = self.modem.despread(soft, start_chip=seg.start_symbol * cps)
            all_symbols[seg.start_symbol : seg.start_symbol + seg.num_symbols] = result.symbols
            qualities.extend(result.quality.tolist())

        decoded = self.coder.decode(all_symbols, frame_symbols)
        frame = self.config.frame_format.parse(decoded)
        quality = float(np.mean(qualities)) if qualities else 0.0
        return ReceiveResult(
            frame=frame,
            symbols=decoded,
            decisions=tuple(decisions),
            quality=quality,
        )


@dataclass(frozen=True)
class AcquisitionResult:
    """Synchronization estimates recovered during acquisition."""

    start_sample: int
    cfo_hz: float
    phase_rad: float
    preamble_peak: float
    result: ReceiveResult


class AcquiringReceiver:
    """Packet acquisition for impaired channels.

    Finds the packet with a preamble correlator, estimates and removes the
    carrier-frequency offset (phase-slope method) and the carrier phase
    (correlation angle), then hands off to the hop-synchronized
    :class:`BHSSReceiver` with chip-rate Costas tracking enabled.
    """

    def __init__(self, config: BHSSConfig, threshold: float = 0.35) -> None:
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        self.config = config
        self.threshold = threshold
        self.inner = BHSSReceiver(config)
        self._tx = None  # lazy reference transmitter for preamble waveforms

    def _reference_preamble(self, packet_index: int, payload_len: int) -> np.ndarray:
        """The known transmit waveform of the preamble + SFD region."""
        from repro.core.transmitter import BHSSTransmitter

        if self._tx is None:
            self._tx = BHSSTransmitter(self.config)
        packet = self._tx.transmit(bytes(payload_len), packet_index)
        # Preamble + SFD occupy the first (preamble_symbols + 2) symbols.
        sync_symbols = self.config.frame_format.preamble_symbols + 2
        cps = self.config.chips_per_symbol
        count = 0
        for seg, n_samp in zip(packet.segments, packet.sample_counts):
            if seg.start_symbol >= sync_symbols:
                break
            count += n_samp
        return packet.waveform[:count]

    def receive(
        self,
        waveform: np.ndarray,
        payload_len: int | None = None,
        packet_index: int = 0,
    ) -> AcquisitionResult | None:
        """Acquire and decode a packet from an unaligned waveform.

        Returns ``None`` when no preamble clears the detection threshold.
        """
        x = as_complex_array(waveform, "waveform")
        n_payload = self.config.payload_bytes if payload_len is None else payload_len
        ref = self._reference_preamble(packet_index, n_payload)
        det = detect_preamble_noncoherent(x, ref, threshold=self.threshold)
        if not det.found:
            return None
        start = det.start
        aligned = x[start:]
        if aligned.size < ref.size:
            return None
        cfo = estimate_cfo_from_preamble(aligned[: ref.size], ref, self.config.sample_rate)
        corrected = frequency_shift(aligned, -cfo, self.config.sample_rate)
        # residual constant phase from the preamble correlation angle
        phase = float(np.angle(np.vdot(ref, corrected[: ref.size])))
        corrected = phase_rotate(corrected, -phase)
        result = self.inner.receive(
            corrected, payload_len=n_payload, packet_index=packet_index, phase_track=True
        )
        return AcquisitionResult(
            start_sample=int(start),
            cfo_hz=float(cfo),
            phase_rad=phase,
            preamble_peak=det.peak,
            result=result,
        )
