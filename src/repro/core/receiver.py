"""The BHSS receiver (Section 4, Figure 6).

Per hop segment (whose bandwidth and duration the receiver *derives from
the shared seed*, never from the air — Section 4.1):

1. the control logic estimates the jammer spectrally and selects the
   low-pass / excision / no filter (Section 4.2);
2. the filter runs before anything else, so the jammer cannot disturb the
   later stages;
3. the matched filter (matched to the current stretch factor α) recovers
   soft chips;
4. the correlator bank despreads chips to symbols.

Frame parsing and CRC checking then decide packet acceptance.  The same
class with ``config.filtering == False`` is the conventional SS receiver
used as the paper's baseline.

:class:`AcquiringReceiver` adds the front-end synchronization of the
paper's implementation (preamble detection, carrier-frequency/phase
estimation, Costas-style fine tracking) for use on impaired channels where
the packet position and oscillator offsets are unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import BHSSConfig
from repro.core.control import ControlLogic, FilterDecision, FilterKind
from repro.core.transmitter import ROW_CHUNK
from repro.dsp.fir import apply_fir, apply_fir_batch
from repro.dsp.mixing import frequency_shift, phase_rotate
from repro.phy.frame import ParsedFrame
from repro.phy.qpsk import binary_chips_to_complex, complex_chips_to_binary
from repro.sync.costas import CostasLoop
from repro.sync.preamble import detect_preamble_noncoherent, estimate_cfo_from_preamble
from repro.utils.validation import as_complex_array

__all__ = ["BHSSReceiver", "ReceiveResult", "AcquiringReceiver", "AcquisitionResult"]


@dataclass(frozen=True)
class ReceiveResult:
    """Everything the receiver recovered from one packet.

    Attributes
    ----------
    frame:
        The parsed frame (payload + CRC verdict).
    symbols:
        Decided 4-bit symbols for the whole frame.
    decisions:
        Per-hop-segment filter decisions (empty when filtering is off).
    quality:
        Mean normalized despreading correlation (1.0 = clean).
    """

    frame: ParsedFrame
    symbols: np.ndarray
    decisions: tuple[FilterDecision, ...]
    quality: float

    @property
    def accepted(self) -> bool:
        """The paper's packet-success criterion (structure + CRC)."""
        return self.frame.accepted

    @property
    def payload(self) -> bytes:
        """Recovered payload bytes (empty if the frame failed)."""
        return self.frame.payload

    def filter_usage(self) -> dict[str, int]:
        """Histogram of filter kinds chosen across the packet's segments."""
        counts: dict[str, int] = {k.value: 0 for k in FilterKind}
        for d in self.decisions:
            counts[d.kind.value] += 1
        return counts


class BHSSReceiver:
    """Hop-synchronized, filtering BHSS receiver."""

    def __init__(self, config: BHSSConfig, control: ControlLogic | None = None) -> None:
        self.config = config
        self.schedule = config.build_schedule()
        self.modem = config.build_modem()
        self.modulator = config.build_modulator()
        self.control = control or ControlLogic(
            sample_rate=config.sample_rate,
            excision_taps=config.excision_taps,
            lpf_transition_fraction=config.lpf_transition_fraction,
            pulse=config.pulse,
        )
        self.coder = config.build_frame_coder()

    def receive(
        self,
        waveform: np.ndarray,
        payload_len: int | None = None,
        packet_index: int = 0,
        phase_track: bool = False,
    ) -> ReceiveResult:
        """Demodulate one packet whose start is sample-aligned.

        ``payload_len`` sets the expected frame size (defaults to the
        configured payload size — in a real system the length field would
        be decoded first; the fixed-size assumption only pins the frame
        geometry, not the content).

        ``phase_track`` enables a chip-rate Costas loop between matched
        filter and despreader, for waveforms with residual carrier error.
        """
        x = as_complex_array(waveform, "waveform")
        n_payload = self.config.payload_bytes if payload_len is None else payload_len
        frame_symbols = self.config.frame_format.frame_symbols(n_payload)
        num_symbols = self.coder.coded_symbols(frame_symbols)
        segments = self.schedule.segments(num_symbols, packet_index)

        cps = self.config.chips_per_symbol
        costas = CostasLoop(loop_bandwidth=0.02) if phase_track else None

        all_symbols = np.empty(num_symbols, dtype=np.int64)
        decisions: list[FilterDecision] = []
        qualities: list[float] = []
        pos = 0
        for seg in segments:
            n_samples = seg.num_symbols * (cps // 2) * seg.sps
            block = x[pos : pos + n_samples]
            pos += n_samples
            if block.size < n_samples:
                # Truncated capture: decide the missing symbols arbitrarily
                # and record them as zero-quality so the packet's mean
                # despreading quality reflects the loss (averaging only the
                # surviving segments would read biased-high).
                all_symbols[seg.start_symbol : seg.start_symbol + seg.num_symbols] = 0
                qualities.extend([0.0] * seg.num_symbols)
                continue

            if self.config.filtering:
                decision = self.control.decide(block, seg.bandwidth)
                decisions.append(decision)
                if decision.taps is not None:
                    block = apply_fir(block, decision.taps, mode="compensated")

            soft = self.modulator.demodulate(
                block,
                seg.sps,
                num_chips=seg.num_symbols * cps,
                matched=self.config.matched_filter,
            )
            if costas is not None:
                tracked = costas.process(binary_chips_to_complex(soft))
                soft = complex_chips_to_binary(tracked.corrected)
            result = self.modem.despread(soft, start_chip=seg.start_symbol * cps)
            all_symbols[seg.start_symbol : seg.start_symbol + seg.num_symbols] = result.symbols
            qualities.extend(result.quality.tolist())

        decoded = self.coder.decode(all_symbols, frame_symbols)
        frame = self.config.frame_format.parse(decoded)
        quality = float(np.mean(qualities)) if qualities else 0.0
        return ReceiveResult(
            frame=frame,
            symbols=decoded,
            decisions=tuple(decisions),
            quality=quality,
        )

    def receive_batch(
        self,
        waveforms: Sequence[np.ndarray],
        payload_len: int | None = None,
        packet_indices: Sequence[int] | None = None,
        phase_track: bool = False,
    ) -> list[ReceiveResult]:
        """Batched :meth:`receive` over a sequence of captured packets.

        ``waveforms`` is a sequence of 1-D complex captures (lengths may
        differ — a bandwidth-hopped packet's duration depends on its hop
        draw); ``packet_indices`` aligns each capture with its hop
        substream (defaults to ``0, 1, 2, ...``).  Result ``i`` is
        bit-identical to ``receive(waveforms[i], payload_len,
        packet_indices[i], phase_track)``.

        Complete (packet, segment) blocks are grouped by ``(num_symbols,
        sps, bandwidth)`` — the segment's chip offset is a per-row
        scramble-phase input, not a shape — and each group goes through
        one stacked decide → filter → matched-filter → despread chain.
        Truncated captures take the serial zero-quality path per segment.
        ``phase_track=True`` falls back to the serial receiver per packet:
        the Costas loop is a sequential recursion with nothing to batch.
        """
        waveforms = list(waveforms)
        if packet_indices is None:
            packet_indices = range(len(waveforms))
        packet_indices = [int(i) for i in packet_indices]
        if len(packet_indices) != len(waveforms):
            raise ValueError(
                f"got {len(waveforms)} waveforms but {len(packet_indices)} packet indices"
            )
        if phase_track:
            return [
                self.receive(w, payload_len=payload_len, packet_index=k, phase_track=True)
                for w, k in zip(waveforms, packet_indices)
            ]
        if not waveforms:
            return []

        xs = [as_complex_array(w, "waveform") for w in waveforms]
        n_payload = self.config.payload_bytes if payload_len is None else payload_len
        frame_symbols = self.config.frame_format.frame_symbols(n_payload)
        num_symbols = self.coder.coded_symbols(frame_symbols)
        cps = self.config.chips_per_symbol
        num_packets = len(xs)

        segment_lists = [self.schedule.segments(num_symbols, k) for k in packet_indices]
        num_segments = len(segment_lists[0])
        all_symbols = np.empty((num_packets, num_symbols), dtype=np.int64)
        seg_quality: list[list[np.ndarray | None]] = [
            [None] * num_segments for _ in range(num_packets)
        ]
        seg_decision: list[list[FilterDecision | None]] = [
            [None] * num_segments for _ in range(num_packets)
        ]

        # Group complete (packet, segment) blocks by segment length,
        # stretch factor, and hop bandwidth; truncated blocks take the
        # serial zero-quality path immediately.
        groups: dict[tuple[int, int, float], list[tuple[int, int, int, int]]] = {}
        for p, segments in enumerate(segment_lists):
            pos = 0
            for s, seg in enumerate(segments):
                n_samples = seg.num_symbols * (cps // 2) * seg.sps
                if pos + n_samples > xs[p].size:
                    all_symbols[p, seg.start_symbol : seg.start_symbol + seg.num_symbols] = 0
                    seg_quality[p][s] = np.zeros(seg.num_symbols)
                else:
                    key = (seg.num_symbols, seg.sps, seg.bandwidth)
                    groups.setdefault(key, []).append((p, s, pos, seg.start_symbol))
                pos += n_samples

        chunked = (
            (key, all_members[i : i + ROW_CHUNK])
            for key, all_members in groups.items()
            for i in range(0, len(all_members), ROW_CHUNK)
        )
        for (seg_symbols, sps, bandwidth), members in chunked:
            n_samples = seg_symbols * (cps // 2) * sps
            blocks = np.stack([xs[p][off : off + n_samples] for p, _s, off, _start in members])
            if self.config.filtering:
                decisions = self.control.decide_batch(blocks, bandwidth)
                lp_rows = [i for i, d in enumerate(decisions) if d.kind is FilterKind.LOWPASS]
                if lp_rows:
                    blocks[lp_rows] = apply_fir_batch(
                        blocks[lp_rows], decisions[lp_rows[0]].taps, mode="compensated"
                    )
                exc_rows = [i for i, d in enumerate(decisions) if d.kind is FilterKind.EXCISION]
                if exc_rows:
                    blocks[exc_rows] = apply_fir_batch(
                        blocks[exc_rows],
                        np.stack([decisions[i].taps for i in exc_rows]),
                        mode="compensated",
                    )
                for row, (p, s, _off, _start) in enumerate(members):
                    seg_decision[p][s] = decisions[row]
            soft = self.modulator.demodulate_batch(
                blocks,
                sps,
                num_chips=seg_symbols * cps,
                matched=self.config.matched_filter,
            )
            starts = np.fromiter((start * cps for _p, _s, _off, start in members), dtype=int)
            result = self.modem.despread_batch(soft, start_chip=starts)
            for row, (p, s, _off, start) in enumerate(members):
                all_symbols[p, start : start + seg_symbols] = result.symbols[row]
                seg_quality[p][s] = result.quality[row]

        out: list[ReceiveResult] = []
        for p in range(num_packets):
            decoded = self.coder.decode(all_symbols[p], frame_symbols)
            frame = self.config.frame_format.parse(decoded)
            quality_parts = [q for q in seg_quality[p] if q is not None]
            qualities = (
                np.concatenate(quality_parts) if quality_parts else np.zeros(0)
            )
            quality = float(np.mean(qualities)) if qualities.size else 0.0
            out.append(
                ReceiveResult(
                    frame=frame,
                    symbols=decoded,
                    decisions=tuple(d for d in seg_decision[p] if d is not None),
                    quality=quality,
                )
            )
        return out


@dataclass(frozen=True)
class AcquisitionResult:
    """Synchronization estimates recovered during acquisition."""

    start_sample: int
    cfo_hz: float
    phase_rad: float
    preamble_peak: float
    result: ReceiveResult


class AcquiringReceiver:
    """Packet acquisition for impaired channels.

    Finds the packet with a preamble correlator, estimates and removes the
    carrier-frequency offset (phase-slope method) and the carrier phase
    (correlation angle), then hands off to the hop-synchronized
    :class:`BHSSReceiver` with chip-rate Costas tracking enabled.
    """

    def __init__(self, config: BHSSConfig, threshold: float = 0.35) -> None:
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        self.config = config
        self.threshold = threshold
        self.inner = BHSSReceiver(config)
        self._tx = None  # lazy reference transmitter for preamble waveforms

    def _reference_preamble(self, packet_index: int, payload_len: int) -> np.ndarray:
        """The known transmit waveform of the preamble + SFD region."""
        from repro.core.transmitter import BHSSTransmitter

        if self._tx is None:
            self._tx = BHSSTransmitter(self.config)
        packet = self._tx.transmit(bytes(payload_len), packet_index)
        # Preamble + SFD occupy the first (preamble_symbols + 2) symbols.
        sync_symbols = self.config.frame_format.preamble_symbols + 2
        cps = self.config.chips_per_symbol
        count = 0
        for seg, n_samp in zip(packet.segments, packet.sample_counts):
            if seg.start_symbol >= sync_symbols:
                break
            count += n_samp
        return packet.waveform[:count]

    def receive(
        self,
        waveform: np.ndarray,
        payload_len: int | None = None,
        packet_index: int = 0,
    ) -> AcquisitionResult | None:
        """Acquire and decode a packet from an unaligned waveform.

        Returns ``None`` when no preamble clears the detection threshold.
        """
        x = as_complex_array(waveform, "waveform")
        n_payload = self.config.payload_bytes if payload_len is None else payload_len
        ref = self._reference_preamble(packet_index, n_payload)
        det = detect_preamble_noncoherent(x, ref, threshold=self.threshold)
        if not det.found:
            return None
        start = det.start
        aligned = x[start:]
        if aligned.size < ref.size:
            return None
        cfo = estimate_cfo_from_preamble(aligned[: ref.size], ref, self.config.sample_rate)
        corrected = frequency_shift(aligned, -cfo, self.config.sample_rate)
        # residual constant phase from the preamble correlation angle
        phase = float(np.angle(np.vdot(ref, corrected[: ref.size])))
        corrected = phase_rotate(corrected, -phase)
        result = self.inner.receive(
            corrected, payload_len=n_payload, packet_index=packet_index, phase_track=True
        )
        return AcquisitionResult(
            start_sample=int(start),
            cfo_hz=float(cfo),
            phase_rad=phase,
            preamble_peak=det.peak,
            result=result,
        )
