"""End-to-end link simulation: transmitter → jammed AWGN medium → receiver.

This is the software equivalent of the paper's Figure-12 testbed: a BHSS
transmitter and receiver joined by the calibrated medium, with any of the
jammer models injected at a configured signal-to-jammer ratio.  The
statistics it reports — packet error rate against the CRC, bit error rate
against the known payload, throughput — are the quantities every
experimental figure of Section 6 is built from.

The synthesis and demodulation halves of the chain live in
:mod:`repro.core.paths` (:class:`TxPath` / :class:`RxPath`);
:class:`LinkSimulator` composes them around the medium and owns the
batching, caching, and fan-out policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.channel.impairments import Impairments
from repro.channel.link_medium import Medium
from repro.core.config import BHSSConfig
from repro.core.paths import PacketOutcome, RxPath, TxPath, draw_jammer_wave
from repro.core.receiver import BHSSReceiver, ReceiveResult
from repro.core.transmitter import BHSSTransmitter, TransmittedPacket
from repro.jamming.base import Jammer
from repro.runtime import ParallelExecutor, ResultCache, canonical, resolve_batch
from repro.utils.rng import child_rng, make_rng

__all__ = ["LinkSimulator", "PacketOutcome", "LinkStats"]


def _spec_view(obj: Any) -> Any:
    """A serializable fingerprint of a link component for cache keys.

    Prefers the component's declarative spec (``spec()`` / ``to_dict()``)
    so that a link built from scenario JSON and one built in code hash to
    the same cache entry; objects without a spec (custom jammers, ad-hoc
    channels) fall back to the structural :func:`canonical` view.
    """
    if obj is None:
        return None
    for attr in ("spec", "to_dict"):
        method = getattr(obj, attr, None)
        if callable(method):
            try:
                return method()
            except NotImplementedError:
                break
    return canonical(obj)


@dataclass(frozen=True)
class LinkStats:
    """Aggregate statistics over a packet batch."""

    num_packets: int
    num_accepted: int
    total_bits: int
    bit_errors: int
    data_rate_bps: float
    filter_usage: dict

    def __post_init__(self) -> None:
        # Defensive copy: the stats must not alias the caller's counter
        # dict (frozen dataclasses are only as immutable as their fields).
        object.__setattr__(self, "filter_usage", dict(self.filter_usage))

    @property
    def packet_error_rate(self) -> float:
        """Fraction of packets whose CRC (or structure) failed."""
        if self.num_packets == 0:
            return 0.0
        return 1.0 - self.num_accepted / self.num_packets

    def to_dict(self) -> dict:
        """Flat JSON-friendly dict of counts and derived rates."""
        lo, hi = self.per_confidence_interval()
        return {
            "num_packets": self.num_packets,
            "num_accepted": self.num_accepted,
            "total_bits": self.total_bits,
            "bit_errors": self.bit_errors,
            "packet_error_rate": self.packet_error_rate,
            "per_ci_low": lo,
            "per_ci_high": hi,
            "bit_error_rate": self.bit_error_rate,
            "data_rate_bps": self.data_rate_bps,
            "throughput_bps": self.throughput_bps,
            "filter_usage": dict(self.filter_usage),
        }

    def per_confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score interval for the packet error rate.

        The PER at small packet counts carries real statistical
        uncertainty; the Wilson interval stays sane at the 0/1 edges
        (unlike the normal approximation).  ``z = 1.96`` gives 95 %.
        """
        n = self.num_packets
        if n == 0:
            return (0.0, 1.0)
        p = self.packet_error_rate
        denom = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denom
        half = (z / denom) * float(np.sqrt(p * (1 - p) / n + z * z / (4 * n * n)))
        return (max(0.0, centre - half), min(1.0, centre + half))

    @property
    def bit_error_rate(self) -> float:
        """Raw payload bit error rate across all packets."""
        return self.bit_errors / self.total_bits if self.total_bits else 0.0

    @property
    def throughput_bps(self) -> float:
        """Goodput: data rate times packet success fraction (eq. 17)."""
        return self.data_rate_bps * (1.0 - self.packet_error_rate)


class LinkSimulator:
    """Runs packets through transmitter → medium (+ jammer) → receiver.

    Parameters
    ----------
    config:
        The shared link configuration; transmitter and receiver are both
        derived from it (same seed = synchronized schedule and scrambler).
    impairments:
        Optional front-end impairments applied to the received waveform.
        When set, reception goes through the acquiring/synchronizing path
        implicitly via the receiver's phase tracking; for the benchmark
        sweeps the ideal front end (the default) keeps results about the
        *filtering* mechanism, as in the paper's theory section.
    channel:
        Optional propagation channel (e.g.
        :class:`repro.channel.MultipathChannel`) applied to the *signal*
        path before the jammer and noise are superposed.  The jammer path
        stays flat — the attacker is assumed to position itself for a
        clean shot at the receiver; a faded jammer would only be weaker.
        The paper's coax testbed corresponds to ``None``.
    """

    def __init__(
        self,
        config: BHSSConfig,
        impairments: Impairments | None = None,
        channel: Any = None,
    ) -> None:
        self.config = config
        self.tx_path = TxPath(config, channel=channel)
        self.rx_path = RxPath(config, impairments=impairments)
        self.medium = Medium(config.sample_rate)

    # The component attributes predate the TxPath/RxPath split; they keep
    # working (including assignment — ablations swap the receiver) by
    # delegating to the owning path.

    @property
    def transmitter(self) -> BHSSTransmitter:
        """The synthesis path's transmitter."""
        return self.tx_path.transmitter

    @transmitter.setter
    def transmitter(self, value: BHSSTransmitter) -> None:
        self.tx_path.transmitter = value

    @property
    def receiver(self) -> BHSSReceiver:
        """The demodulation path's receiver."""
        return self.rx_path.receiver

    @receiver.setter
    def receiver(self, value: BHSSReceiver) -> None:
        self.rx_path.receiver = value

    @property
    def channel(self) -> Any:
        """The synthesis path's propagation channel (``None`` = coax)."""
        return self.tx_path.channel

    @channel.setter
    def channel(self, value: Any) -> None:
        self.tx_path.channel = value

    @property
    def impairments(self) -> Impairments | None:
        """The demodulation path's front-end impairments."""
        return self.rx_path.impairments

    @impairments.setter
    def impairments(self, value: Impairments | None) -> None:
        self.rx_path.impairments = value

    # -- single packet ----------------------------------------------------------

    def run_packet(
        self,
        snr_db: float,
        sjr_db: float = float("inf"),
        jammer: Jammer | None = None,
        packet_index: int = 0,
        rng: int | np.random.Generator | None = None,
        payload: bytes | None = None,
        jammer_delay_samples: int = 0,
    ) -> PacketOutcome:
        """Simulate one packet and compare what was decoded to the truth."""
        gen = make_rng(rng)
        packet, tx_wave = self.tx_path.emit(packet_index, payload)
        jam_wave = draw_jammer_wave(jammer, packet, sjr_db, gen)
        block = self.medium.combine(
            tx_wave,
            snr_db=snr_db,
            jammer=jam_wave,
            sjr_db=sjr_db,
            jammer_delay_samples=jammer_delay_samples,
            rng=gen,
        )
        return self.rx_path.receive_packet(packet, block.samples, packet_index)

    def _score_packet(self, packet: TransmittedPacket, result: ReceiveResult) -> PacketOutcome:
        """Compare one receive result against the transmitted truth."""
        return self.rx_path.score(packet, result)

    def _symbol_region_bit_errors(self, sent_symbols: np.ndarray, got_symbols: np.ndarray) -> int:
        """Bit errors across the payload symbol region (nibble XOR popcount)."""
        return self.rx_path.symbol_region_bit_errors(sent_symbols, got_symbols)

    # -- batches ---------------------------------------------------------------

    def run_packets(
        self,
        num_packets: int,
        snr_db: float,
        sjr_db: float = float("inf"),
        jammer: Jammer | None = None,
        seed: int = 0,
        payload: bytes | None = None,
        jammer_delay_samples: int = 0,
        executor: ParallelExecutor | None = None,
        cache: "ResultCache | bool | None" = None,
    ) -> LinkStats:
        """Simulate a batch of packets and aggregate the statistics.

        Every packet ``k`` draws from the independent stream
        ``child_rng(seed, "packet", str(k))``, so the batch can be split
        into contiguous chunks and fanned out over ``executor`` (default:
        the ``REPRO_WORKERS``-configured pool; serial when unset) with
        bit-identical aggregate statistics.  Stateful jammers (hoppers,
        sweepers — see :attr:`Jammer.is_stateful`) must see packets in
        order and therefore always run on the serial path.

        With ``cache`` (default: the ``REPRO_CACHE``-configured on-disk
        cache, disabled when unset) the aggregated statistics of
        memoryless-jammer batches are memoized under a stable hash of
        (config fingerprint, operating point, seed, packet budget).
        ``cache=False`` forces caching off regardless of the environment
        (used by timing benchmarks).
        """
        if num_packets < 1:
            raise ValueError(f"num_packets must be >= 1, got {num_packets}")
        ex = executor if executor is not None else ParallelExecutor.from_env()
        if cache is None:
            store = ResultCache.from_env()
        elif cache is False:
            store = None
        else:
            store = cache
        order_free = jammer is None or not jammer.is_stateful

        key = None
        if store is not None and order_free:
            key = self._stats_cache_key(
                num_packets, snr_db, sjr_db, jammer, seed, payload, jammer_delay_samples
            )
            hit = store.get(key)
            if hit is not None:
                return LinkStats(**hit)

        chunk_kwargs = dict(
            snr_db=snr_db,
            sjr_db=sjr_db,
            jammer=jammer,
            seed=seed,
            payload=payload,
            jammer_delay_samples=jammer_delay_samples,
        )
        if ex.parallel and order_free and num_packets >= 2:
            bounds = self._chunk_bounds(num_packets, ex.workers)
            partials = ex.map(lambda se: self._run_packet_chunk(*se, **chunk_kwargs), bounds)
        else:
            partials = [self._run_packet_chunk(0, num_packets, **chunk_kwargs)]

        accepted = 0
        bit_errors = 0
        total_bits = 0
        usage: dict[str, int] = {}
        for part_accepted, part_bit_errors, part_total_bits, part_usage in partials:
            accepted += part_accepted
            bit_errors += part_bit_errors
            total_bits += part_total_bits
            for filter_kind, count in part_usage.items():
                usage[filter_kind] = usage.get(filter_kind, 0) + count
        stats = LinkStats(
            num_packets=num_packets,
            num_accepted=accepted,
            total_bits=total_bits,
            bit_errors=bit_errors,
            data_rate_bps=self.data_rate_bps(),
            filter_usage=usage,
        )
        if key is not None:
            store.put(key, self._stats_payload(stats))
        return stats

    def _stats_cache_key(
        self,
        num_packets: int,
        snr_db: float,
        sjr_db: float,
        jammer: Jammer | None,
        seed: int,
        payload: bytes | None,
        jammer_delay_samples: int,
    ) -> dict:
        """The on-disk cache key of a packet batch's aggregate statistics.

        Shared verbatim between :meth:`run_packets` and
        :meth:`run_packets_batched` — the two paths are bit-identical, so
        a result computed by either serves the other.
        """
        return {
            "kind": "LinkSimulator.run_packets",
            "config": _spec_view(self.config),
            "impairments": _spec_view(self.impairments),
            "channel": _spec_view(self.channel),
            "num_packets": int(num_packets),
            "snr_db": canonical(float(snr_db)),
            "sjr_db": canonical(float(sjr_db)),
            "jammer": _spec_view(jammer),
            "seed": int(seed),
            "payload": canonical(payload),
            "jammer_delay_samples": int(jammer_delay_samples),
        }

    @staticmethod
    def _stats_payload(stats: LinkStats) -> dict:
        return {
            "num_packets": stats.num_packets,
            "num_accepted": stats.num_accepted,
            "total_bits": stats.total_bits,
            "bit_errors": stats.bit_errors,
            "data_rate_bps": stats.data_rate_bps,
            "filter_usage": stats.filter_usage,
        }

    def run_packets_batched(
        self,
        num_packets: int,
        snr_db: float,
        sjr_db: float = float("inf"),
        jammer: Jammer | None = None,
        seed: int = 0,
        payload: bytes | None = None,
        jammer_delay_samples: int = 0,
        batch_size: int | None = None,
        cache: "ResultCache | bool | None" = None,
    ) -> LinkStats:
        """Vectorized :meth:`run_packets`: stack packets, same statistics.

        Simulates ``batch_size`` packets per stacked call (default: the
        ``REPRO_BATCH``-configured size, 64 when unset) and returns
        **bit-identical** :class:`LinkStats` to the serial path for every
        ``(seed, operating point)``.  The contract that makes this exact:

        * packet ``k`` draws from ``child_rng(seed, "packet", str(k))``
          exactly as in :meth:`run_packets`, and everything that consumes
          randomness — the jammer waveform, then the medium noise — runs
          in a strictly ordered per-packet loop (this also preserves
          stateful jammers' packet-order state evolution);
        * only the deterministic DSP (pulse shaping, filtering, matched
          filtering, despreading, spectral estimation) is stacked, through
          batch primitives whose rows are bit-identical to their serial
          counterparts.

        Batches share the serial path's result cache entries (same key),
        so a warm cache serves either path.  Front-end impairments force
        ``phase_track``, whose Costas recursion has nothing to batch —
        that configuration falls back to :meth:`run_packets`, as does
        ``batch_size <= 1``.
        """
        if num_packets < 1:
            raise ValueError(f"num_packets must be >= 1, got {num_packets}")
        batch = resolve_batch() if batch_size is None else max(0, int(batch_size))
        common = dict(
            snr_db=snr_db,
            sjr_db=sjr_db,
            jammer=jammer,
            seed=seed,
            payload=payload,
            jammer_delay_samples=jammer_delay_samples,
        )
        if batch <= 1 or (self.impairments is not None and not self.impairments.is_ideal):
            return self.run_packets(num_packets, cache=cache, **common)

        if cache is None:
            store = ResultCache.from_env()
        elif cache is False:
            store = None
        else:
            store = cache
        order_free = jammer is None or not jammer.is_stateful
        key = None
        if store is not None and order_free:
            key = self._stats_cache_key(
                num_packets, snr_db, sjr_db, jammer, seed, payload, jammer_delay_samples
            )
            hit = store.get(key)
            if hit is not None:
                return LinkStats(**hit)

        accepted = 0
        bit_errors = 0
        total_bits = 0
        usage: dict[str, int] = {}
        for start in range(0, num_packets, batch):
            indices = list(range(start, min(start + batch, num_packets)))
            packets = self.transmitter.transmit_batch(indices, payload=payload)
            received: list[np.ndarray] = []
            for k, packet in zip(indices, packets):
                gen = child_rng(seed, "packet", str(k))
                tx_wave = self.tx_path.propagate(packet.waveform)
                jam_wave = draw_jammer_wave(jammer, packet, sjr_db, gen)
                block = self.medium.combine(
                    tx_wave,
                    snr_db=snr_db,
                    jammer=jam_wave,
                    sjr_db=sjr_db,
                    jammer_delay_samples=jammer_delay_samples,
                    rng=gen,
                )
                received.append(block.samples)
            results = self.receiver.receive_batch(
                received,
                payload_len=len(packets[0].payload),
                packet_indices=indices,
            )
            for packet, result in zip(packets, results):
                outcome = self.rx_path.score(packet, result)
                accepted += int(outcome.accepted)
                bit_errors += outcome.bit_errors
                total_bits += outcome.total_bits
                for kind, count in result.filter_usage().items():
                    usage[kind] = usage.get(kind, 0) + count
        stats = LinkStats(
            num_packets=num_packets,
            num_accepted=accepted,
            total_bits=total_bits,
            bit_errors=bit_errors,
            data_rate_bps=self.data_rate_bps(),
            filter_usage=usage,
        )
        if key is not None:
            store.put(key, self._stats_payload(stats))
        return stats

    @staticmethod
    def _chunk_bounds(num_packets: int, workers: int) -> list[tuple[int, int]]:
        """Contiguous ``(start, stop)`` packet ranges for the pool.

        A few chunks per worker keeps stragglers from serializing the
        tail; chunk boundaries do not affect results (packet seeding is
        per-index), only load balance.
        """
        target = max(1, min(num_packets, 4 * workers))
        edges = np.linspace(0, num_packets, target + 1).astype(int)
        return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]

    def _run_packet_chunk(
        self,
        start: int,
        stop: int,
        snr_db: float,
        sjr_db: float,
        jammer: Jammer | None,
        seed: int,
        payload: bytes | None,
        jammer_delay_samples: int,
    ) -> tuple[int, int, int, dict[str, int]]:
        """Aggregate packets ``start..stop-1``; the serial inner loop."""
        accepted = 0
        bit_errors = 0
        total_bits = 0
        usage: dict[str, int] = {}
        for k in range(start, stop):
            outcome = self.run_packet(
                snr_db=snr_db,
                sjr_db=sjr_db,
                jammer=jammer,
                packet_index=k,
                rng=child_rng(seed, "packet", str(k)),
                payload=payload,
                jammer_delay_samples=jammer_delay_samples,
            )
            accepted += int(outcome.accepted)
            bit_errors += outcome.bit_errors
            total_bits += outcome.total_bits
            for kind, count in outcome.receive.filter_usage().items():
                usage[kind] = usage.get(kind, 0) + count
        return accepted, bit_errors, total_bits, usage

    def data_rate_bps(self) -> float:
        """Average payload data rate of the configured link in bits/second.

        Computed from the expected hop bandwidth; see
        :meth:`TxPath.data_rate_bps`, which owns the calculation.
        """
        return self.tx_path.data_rate_bps()
