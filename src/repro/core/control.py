"""Receiver control logic: jammer estimation and filter selection.

Implements Section 4.2: the control logic estimates the received block's
power spectral density, classifies the interference relative to the known
current hop bandwidth ``Bp`` (the receiver derives ``Bp`` from the shared
seed, never from the air), and configures a filter:

* estimated occupancy well beyond ``Bp``  → **low-pass filter** at ``Bp``
  (eq. 4): the jammer is wide-band, everything outside the signal band is
  pure interference;
* strong spectral peaks inside the band  → **excision filter** (eq. 3):
  the jammer is narrow-band, whiten it away;
* neither                                 → **no pre-filter**: jammer with
  comparable bandwidth/power, despreading gain must carry the day.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

from repro.dsp.excision import excision_taps_from_psd, excision_taps_from_psd_batch
from repro.dsp.fir import estimate_num_taps, lowpass_taps
from repro.dsp.spectral import (
    occupied_bandwidth,
    occupied_bandwidth_batch,
    welch_psd,
    welch_psd_batch,
)
from repro.utils.units import db_to_linear, linear_to_db
from repro.utils.validation import as_complex_array, ensure_positive

if TYPE_CHECKING:
    from repro.dsp.pulse import PulseShape

__all__ = ["FilterKind", "FilterDecision", "ControlLogic"]


class FilterKind(str, Enum):
    """Which pre-despreading filter the control logic selected."""

    NONE = "none"
    LOWPASS = "lowpass"
    EXCISION = "excision"


@dataclass(frozen=True)
class FilterDecision:
    """The control logic's verdict for one received block.

    ``taps`` is ``None`` for :attr:`FilterKind.NONE`.
    """

    kind: FilterKind
    taps: np.ndarray | None
    #: 99 %-power occupancy estimate of the received block, in Hz
    occupied_bandwidth: float
    #: in-band spectral peak over the robust floor, in dB
    peak_over_floor_db: float
    #: the hop bandwidth the decision was made against
    signal_bandwidth: float


class ControlLogic:
    """Spectral jammer estimation + filter configuration (Section 4.2).

    Parameters
    ----------
    sample_rate:
        Baseband sample rate in Hz.
    wide_ratio:
        Occupancy beyond ``wide_ratio * Bp`` classifies the interference
        as wide-band and engages the low-pass filter.
    peak_margin_db:
        In-band peak-to-floor margin (dB) above which the interference is
        classified as narrow-band and the excision filter engages.  Keeps
        the whitener off for flat (signal-only or matched-jammer) blocks,
        where eq. (10) says filtering would do more harm than good.
    excision_taps:
        Whitening-FIR length K; reduced automatically on short blocks.
    lpf_transition_fraction:
        Low-pass transition width as a fraction of ``Bp``.
    nperseg:
        Welch segment length for the PSD estimate.
    """

    def __init__(
        self,
        sample_rate: float,
        wide_ratio: float = 1.6,
        peak_margin_db: float = 10.0,
        excision_taps: int = 257,
        lpf_transition_fraction: float = 0.2,
        nperseg: int = 128,
        max_lpf_taps: int = 2049,
        pulse: "PulseShape | str | None" = None,
        max_hot_fraction: float = 0.5,
    ) -> None:
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.wide_ratio = ensure_positive(wide_ratio, "wide_ratio")
        self.peak_margin_db = ensure_positive(peak_margin_db, "peak_margin_db")
        if excision_taps < 9 or excision_taps % 2 == 0:
            raise ValueError("excision_taps must be an odd integer >= 9")
        self.excision_taps = int(excision_taps)
        self.lpf_transition_fraction = ensure_positive(
            lpf_transition_fraction, "lpf_transition_fraction"
        )
        self.nperseg = int(nperseg)
        self.max_lpf_taps = int(max_lpf_taps)
        if not 0 < max_hot_fraction <= 1:
            raise ValueError("max_hot_fraction must be in (0, 1]")
        self.max_hot_fraction = float(max_hot_fraction)
        # The receiver knows its own chip pulse; the expected signal
        # spectrum lets the anomaly detector ignore the pulse's natural
        # in-band roll-off (which would otherwise look like a "peak").
        from repro.dsp.pulse import HalfSinePulse, get_pulse

        self.pulse = get_pulse(pulse) if pulse is not None else HalfSinePulse()
        self._lpf_cache: dict[tuple[float, int], np.ndarray] = {}
        self._shape_cache: dict[tuple[float, int, int], np.ndarray] = {}

    # -- filter designers -----------------------------------------------------

    def lowpass_for(self, bandwidth: float, block_len: int) -> np.ndarray:
        """The eq.-4 low-pass filter at a hop bandwidth (cached).

        Tap count follows the transition-width rule but is capped so the
        filter stays shorter than the block it runs on.
        """
        transition = self.lpf_transition_fraction * bandwidth
        num_taps = estimate_num_taps(transition, self.sample_rate, attenuation_db=60.0)
        cap = max(9, min(self.max_lpf_taps, (block_len // 2) | 1))
        num_taps = min(num_taps, cap)
        if num_taps % 2 == 0:
            num_taps += 1
        key = (float(bandwidth), num_taps)
        taps = self._lpf_cache.get(key)
        if taps is None:
            taps = lowpass_taps(num_taps, bandwidth / 2.0, self.sample_rate)
            self._lpf_cache[key] = taps
        return taps

    def excision_for(self, block: np.ndarray) -> np.ndarray:
        """The eq.-3 whitening filter estimated from a received block."""
        k = min(self.excision_taps, max(33, (block.size // 4) | 1))
        if k % 2 == 0:
            k += 1
        nperseg = min(k, block.size)
        _freqs, psd = welch_psd(block, self.sample_rate, nperseg=nperseg, nfft=k)
        return excision_taps_from_psd(np.fft.ifftshift(psd))

    def excision_for_batch(self, blocks: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`excision_for` for a ``(R, N)`` block stack.

        Returns ``(R, K)`` taps whose row ``i`` is bit-identical to
        ``excision_for(blocks[i])`` — all rows share the block length and
        therefore the FIR length K and Welch geometry.
        """
        blocks = np.asarray(blocks)
        if blocks.ndim != 2:
            raise ValueError(f"blocks must be 2-D, got shape {blocks.shape}")
        n = blocks.shape[1]
        k = min(self.excision_taps, max(33, (n // 4) | 1))
        if k % 2 == 0:
            k += 1
        nperseg = min(k, n)
        _freqs, psd = welch_psd_batch(blocks, self.sample_rate, nperseg=nperseg, nfft=k)
        return excision_taps_from_psd_batch(np.fft.ifftshift(psd, axes=-1))

    # -- expected signal spectrum ----------------------------------------------

    def _expected_shape(self, signal_bandwidth: float, freqs: np.ndarray) -> np.ndarray:
        """|pulse spectrum|² of the desired signal on the in-band bins.

        White chips through the pulse filter give a transmit PSD equal to
        the pulse's energy spectrum; normalizing the measured PSD by this
        shape turns the signal's own roll-off into a flat baseline so only
        *interference* stands out.
        """
        sps = max(int(round(2.0 * self.sample_rate / signal_bandwidth)), 1)
        key = (float(signal_bandwidth), freqs.size, sps)
        shape = self._shape_cache.get(key)
        if shape is None:
            p = self.pulse.waveform(sps)
            nfft = max(freqs.size, 4 * p.size)
            spec = np.fft.fftshift(np.abs(np.fft.fft(p, nfft)) ** 2)
            grid = np.fft.fftshift(np.fft.fftfreq(nfft, d=1.0 / self.sample_rate))
            shape = np.interp(freqs, grid, spec)
            shape = np.maximum(shape, 1e-6 * shape.max())
            self._shape_cache[key] = shape
        return shape

    # -- the decision ----------------------------------------------------------

    def decide(self, received: np.ndarray, signal_bandwidth: float) -> FilterDecision:
        """Classify the interference in a block and configure the filter."""
        x = as_complex_array(received, "received")
        ensure_positive(signal_bandwidth, "signal_bandwidth")
        if x.size < 16:
            return FilterDecision(
                kind=FilterKind.NONE,
                taps=None,
                occupied_bandwidth=0.0,
                peak_over_floor_db=0.0,
                signal_bandwidth=float(signal_bandwidth),
            )

        nperseg = min(self.nperseg, x.size)
        freqs, psd = welch_psd(x, self.sample_rate, nperseg=nperseg)
        occupied = occupied_bandwidth(freqs, psd, fraction=0.99)
        mask = np.abs(freqs) <= signal_bandwidth / 2.0
        in_band = psd[mask]
        # The Welch estimate's own variance scales as 1/averages: on a
        # short block the peak-to-floor ratio of a *clean* spectrum can
        # reach 10+ dB purely from estimation noise, so the excision
        # threshold must rise when few segments were averaged.
        step = max(nperseg - nperseg // 2, 1)
        n_averages = max(1, (x.size - nperseg) // step + 1)
        effective_margin_db = self.peak_margin_db + 10.0 / np.sqrt(n_averages)
        if in_band.size >= 4:
            # Anomaly spectrum: measured PSD divided by the expected
            # signal shape.  Signal-only blocks are flat here; a
            # narrow-band jammer lifts a minority of bins far above the
            # low-quantile floor.
            ratio = in_band / self._expected_shape(signal_bandwidth, freqs)[mask]
            floor = float(np.quantile(ratio, 0.25))
            peak = float(ratio.max())
            hot_fraction = float(np.mean(ratio > floor * db_to_linear(effective_margin_db)))
        else:
            floor = float(np.median(psd))
            peak = float(in_band.max()) if in_band.size else floor
            hot_fraction = 0.0
        peak_over_floor_db = linear_to_db(peak / floor) if floor > 0 else 0.0

        narrow_jammer = (
            peak_over_floor_db > effective_margin_db
            and 0.0 < hot_fraction < self.max_hot_fraction
        )
        if occupied > self.wide_ratio * signal_bandwidth and not narrow_jammer:
            taps = self.lowpass_for(signal_bandwidth, x.size)
            kind = FilterKind.LOWPASS
        elif narrow_jammer:
            taps = self.excision_for(x)
            kind = FilterKind.EXCISION
        else:
            taps = None
            kind = FilterKind.NONE
        return FilterDecision(
            kind=kind,
            taps=taps,
            occupied_bandwidth=float(occupied),
            peak_over_floor_db=float(peak_over_floor_db),
            signal_bandwidth=float(signal_bandwidth),
        )

    def decide_batch(self, blocks: np.ndarray, signal_bandwidth: float) -> list[FilterDecision]:
        """Row-wise :meth:`decide` for a ``(R, N)`` stack of received blocks.

        All rows share the hop bandwidth and the block length (callers
        group hop segments by both), so the Welch geometry, the in-band
        mask, the expected signal shape, and the estimation-noise margin
        are common across the batch.  Entry ``i`` of the returned list is
        bit-identical to ``decide(blocks[i], signal_bandwidth)``: the
        batched PSD/occupancy/quantile reductions reproduce the serial
        ones row for row, and the excision filters for the rows that need
        one are designed through the batched eq.-3 path.
        """
        x = np.asarray(blocks)
        if x.ndim != 2:
            raise ValueError(f"blocks must be 2-D, got shape {x.shape}")
        x = x.astype(np.complex128, copy=False)
        ensure_positive(signal_bandwidth, "signal_bandwidth")
        rows, n = x.shape
        if n < 16:
            return [
                FilterDecision(
                    kind=FilterKind.NONE,
                    taps=None,
                    occupied_bandwidth=0.0,
                    peak_over_floor_db=0.0,
                    signal_bandwidth=float(signal_bandwidth),
                )
                for _ in range(rows)
            ]

        nperseg = min(self.nperseg, n)
        freqs, psd = welch_psd_batch(x, self.sample_rate, nperseg=nperseg)
        occupied = occupied_bandwidth_batch(freqs, psd, fraction=0.99)
        mask = np.abs(freqs) <= signal_bandwidth / 2.0
        in_band = psd[:, mask]
        step = max(nperseg - nperseg // 2, 1)
        n_averages = max(1, (n - nperseg) // step + 1)
        effective_margin_db = self.peak_margin_db + 10.0 / np.sqrt(n_averages)
        if in_band.shape[1] >= 4:
            ratio = in_band / self._expected_shape(signal_bandwidth, freqs)[mask]
            floor = np.quantile(ratio, 0.25, axis=-1)
            peak = ratio.max(axis=-1)
            hot_fraction = np.mean(
                ratio > floor[:, None] * db_to_linear(effective_margin_db), axis=-1
            )
        else:
            floor = np.median(psd, axis=-1)
            peak = in_band.max(axis=-1) if in_band.shape[1] else floor.copy()
            hot_fraction = np.zeros(rows)
        safe_ratio = np.divide(peak, floor, out=np.ones_like(peak), where=floor > 0)
        peak_over_floor_db = np.where(floor > 0, linear_to_db(safe_ratio), 0.0)

        narrow_jammer = (
            (peak_over_floor_db > effective_margin_db)
            & (hot_fraction > 0.0)
            & (hot_fraction < self.max_hot_fraction)
        )
        wide = (occupied > self.wide_ratio * signal_bandwidth) & ~narrow_jammer

        excision_rows = np.flatnonzero(narrow_jammer)
        excision_taps = (
            self.excision_for_batch(x[excision_rows]) if excision_rows.size else None
        )
        excision_slot = {int(r): j for j, r in enumerate(excision_rows)}
        lowpass_taps_shared: np.ndarray | None = None

        decisions: list[FilterDecision] = []
        for i in range(rows):
            if narrow_jammer[i]:
                kind = FilterKind.EXCISION
                taps = excision_taps[excision_slot[i]]
            elif wide[i]:
                if lowpass_taps_shared is None:
                    lowpass_taps_shared = self.lowpass_for(signal_bandwidth, n)
                kind = FilterKind.LOWPASS
                taps = lowpass_taps_shared
            else:
                kind = FilterKind.NONE
                taps = None
            decisions.append(
                FilterDecision(
                    kind=kind,
                    taps=taps,
                    occupied_bandwidth=float(occupied[i]),
                    peak_over_floor_db=float(peak_over_floor_db[i]),
                    signal_bandwidth=float(signal_bandwidth),
                )
            )
        return decisions
