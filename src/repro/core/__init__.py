"""The paper's contribution: the BHSS transmitter/receiver pair, the
control logic, the end-to-end link simulator, and the analytical results.
"""

from repro.core import theory
from repro.core.coding import FrameCoder
from repro.core.config import BHSSConfig
from repro.core.fhss_link import FHSSLink, FHSSLinkConfig, FHSSPacketOutcome
from repro.core.control import ControlLogic, FilterDecision, FilterKind
from repro.core.link import LinkSimulator, LinkStats, PacketOutcome
from repro.core.paths import RxPath, TxPath, draw_jammer_wave
from repro.core.receiver import AcquiringReceiver, AcquisitionResult, BHSSReceiver, ReceiveResult
from repro.core.transmitter import BHSSTransmitter, TransmittedPacket
from repro.core.uncoordinated import (
    SeedPool,
    UncoordinatedReceiver,
    UncoordinatedResult,
    UncoordinatedTransmitter,
)

__all__ = [
    "theory",
    "BHSSConfig",
    "FrameCoder",
    "FHSSLink",
    "FHSSLinkConfig",
    "FHSSPacketOutcome",
    "ControlLogic",
    "FilterDecision",
    "FilterKind",
    "BHSSTransmitter",
    "TransmittedPacket",
    "BHSSReceiver",
    "ReceiveResult",
    "AcquiringReceiver",
    "SeedPool",
    "UncoordinatedTransmitter",
    "UncoordinatedReceiver",
    "UncoordinatedResult",
    "AcquisitionResult",
    "LinkSimulator",
    "LinkStats",
    "PacketOutcome",
    "TxPath",
    "RxPath",
    "draw_jammer_wave",
]
