"""Seeded random-number streams.

The paper's security argument rests on the transmitter and receiver sharing
a random seed (exactly like the PN-sequence seed in any spread-spectrum
system) while the jammer cannot predict the stream.  We model that with
:class:`numpy.random.Generator` streams derived deterministically from a
root seed plus a string label, so that

* transmitter and receiver instantiated with the same seed produce the
  identical hop schedule and PN sequence, and
* independent subsystems (data source, channel noise, jammer) get
  *independent* streams that do not perturb each other when one of them
  draws more numbers.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed", "child_rng", "SeedLike"]

SeedLike = "int | numpy.random.Generator | None"


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator`.

    ``seed`` may be ``None`` (OS entropy), an integer, or an existing
    ``Generator`` (returned unchanged, so functions can accept either).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive a child seed from a root seed and a path of string labels.

    The derivation is a SHA-256 hash of the root seed and the labels, so it
    is deterministic, stable across processes and platforms, and collision
    resistant — two different label paths practically never share a stream.
    This mirrors how a real system would expand one pre-shared key into
    independent keys for the PN generator and the hop-pattern generator.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for label in labels:
        h.update(b"\x00")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "big")


def child_rng(root_seed: int, *labels: str) -> np.random.Generator:
    """Shortcut: ``make_rng(derive_seed(root_seed, *labels))``."""
    return make_rng(derive_seed(root_seed, *labels))
