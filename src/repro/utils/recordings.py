"""Waveform recording I/O in SDR interchange formats.

Lets simulated waveforms round-trip to the formats real SDR tooling
consumes, so packets generated here can be replayed through GNU Radio (or
captures from a real BHSS prototype analyzed with this library):

* ``.cf32`` — raw interleaved little-endian complex64 samples, GNU
  Radio's native file-sink format;
* a JSON sidecar with the metadata a capture is useless without (sample
  rate, centre frequency, free-form annotations) — a minimal cousin of
  the SigMF convention.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.utils.validation import as_complex_array, ensure_positive

__all__ = ["save_cf32", "load_cf32", "save_recording", "load_recording"]

_META_SUFFIX = ".json"


def save_cf32(path: str, samples: np.ndarray) -> str:
    """Write complex samples as raw interleaved little-endian complex64.

    Precision narrows to float32 — exactly what an SDR front end would
    give you.  Returns the path.
    """
    x = as_complex_array(samples, "samples")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    x.astype("<c8").tofile(path)  # little-endian complex64
    return path


def load_cf32(path: str) -> np.ndarray:
    """Read a raw complex64 file back as a complex128 array."""
    raw = np.fromfile(path, dtype=np.complex64)
    return raw.astype(np.complex128)


def save_recording(
    path: str,
    samples: np.ndarray,
    sample_rate: float,
    centre_frequency: float = 0.0,
    annotations: dict | None = None,
) -> str:
    """Write a waveform plus its metadata sidecar.

    ``path`` should end in ``.cf32``; the sidecar lands at
    ``path + ".json"``.  Returns the data path.
    """
    ensure_positive(sample_rate, "sample_rate")
    save_cf32(path, samples)
    meta = {
        "format": "cf32_le",
        "sample_rate": float(sample_rate),
        "centre_frequency": float(centre_frequency),
        "num_samples": int(np.asarray(samples).size),
        "annotations": dict(annotations or {}),
    }
    with open(path + _META_SUFFIX, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
    return path


def load_recording(path: str) -> tuple[np.ndarray, dict]:
    """Read a waveform and its metadata sidecar.

    Returns ``(samples, metadata)``.  Raises ``FileNotFoundError`` if the
    sidecar is missing and ``ValueError`` if it is inconsistent with the
    data file.
    """
    samples = load_cf32(path)
    with open(path + _META_SUFFIX) as fh:
        meta = json.load(fh)
    declared = int(meta.get("num_samples", -1))
    if declared >= 0 and declared != samples.size:
        raise ValueError(
            f"metadata declares {declared} samples but the file holds {samples.size}"
        )
    return samples, meta
