"""Shared helpers: unit conversion, validation, seeded RNG streams, plotting."""

from repro.utils.units import (
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    normalize_power,
    papr_db,
    rms,
    scale_to_power,
    signal_energy,
    signal_power,
    watt_to_dbm,
)
from repro.utils.validation import (
    as_complex_array,
    as_float_array,
    ensure_in_range,
    ensure_non_negative,
    ensure_odd,
    ensure_positive,
    ensure_power_of_two,
    ensure_probability_vector,
)
from repro.utils.rng import child_rng, derive_seed, make_rng
from repro.utils.ascii_plot import format_table, histogram_bar, line_plot
from repro.utils.recordings import load_cf32, load_recording, save_cf32, save_recording

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watt",
    "watt_to_dbm",
    "signal_power",
    "signal_energy",
    "rms",
    "normalize_power",
    "scale_to_power",
    "papr_db",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_in_range",
    "ensure_odd",
    "ensure_power_of_two",
    "ensure_probability_vector",
    "as_complex_array",
    "as_float_array",
    "make_rng",
    "derive_seed",
    "child_rng",
    "line_plot",
    "format_table",
    "histogram_bar",
    "save_cf32",
    "load_cf32",
    "save_recording",
    "load_recording",
]
