"""Unit conversions and power measurement helpers.

Everything in the library works at complex baseband with *linear* power
(mean squared magnitude, watts into 1 ohm by convention).  The public API
mostly speaks decibels, because that is how the paper reports every result
(SNR, SJR, processing gain, power advantage), so the conversions here are
used everywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watt",
    "watt_to_dbm",
    "signal_power",
    "signal_energy",
    "rms",
    "normalize_power",
    "scale_to_power",
    "papr_db",
]


def db_to_linear(value_db):
    """Convert a decibel power ratio to a linear power ratio.

    Accepts scalars or arrays.

    >>> db_to_linear(20.0)
    100.0
    """
    return 10.0 ** (np.asarray(value_db, dtype=float) / 10.0) if np.ndim(value_db) else 10.0 ** (float(value_db) / 10.0)


def linear_to_db(value, floor: float = 1e-300):
    """Convert a linear power ratio to decibels.

    ``floor`` clips the input away from zero so that a silent signal maps to
    a very negative (but finite) dB value instead of ``-inf``; this keeps
    downstream arithmetic (averaging power advantages, plotting) well
    defined.

    >>> linear_to_db(100.0)
    20.0
    """
    arr = np.asarray(value, dtype=float)
    clipped = np.maximum(arr, floor)
    out = 10.0 * np.log10(clipped)
    return float(out) if np.ndim(value) == 0 else out


def dbm_to_watt(value_dbm):
    """Convert a power in dBm to watts (0 dBm = 1 mW)."""
    return db_to_linear(np.asarray(value_dbm, dtype=float) - 30.0) if np.ndim(value_dbm) else db_to_linear(float(value_dbm) - 30.0)


def watt_to_dbm(value_watt):
    """Convert a power in watts to dBm (1 W = 30 dBm)."""
    return linear_to_db(value_watt) + 30.0


def signal_power(x: np.ndarray) -> float:
    """Mean power of a sampled signal: ``mean(|x|^2)``.

    Works for real and complex signals.  Returns 0.0 for an empty signal
    rather than raising, so power bookkeeping on empty hop segments is a
    no-op.
    """
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    return float(np.mean(np.abs(x) ** 2))


def signal_energy(x: np.ndarray) -> float:
    """Total energy of a sampled signal: ``sum(|x|^2)``."""
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    return float(np.sum(np.abs(x) ** 2))


def rms(x: np.ndarray) -> float:
    """Root-mean-square amplitude of a signal."""
    return float(np.sqrt(signal_power(x)))


def normalize_power(x: np.ndarray) -> np.ndarray:
    """Scale a signal to unit mean power.

    A silent or empty signal is returned unchanged (there is nothing to
    normalize and dividing by zero would poison the waveform with NaNs).
    """
    p = signal_power(x)
    if p <= 0.0:
        return np.asarray(x).copy()
    return np.asarray(x) / np.sqrt(p)


def scale_to_power(x: np.ndarray, power: float) -> np.ndarray:
    """Scale a signal so its mean power equals ``power`` (linear units)."""
    if power < 0.0:
        raise ValueError(f"power must be non-negative, got {power}")
    return normalize_power(x) * np.sqrt(power)


def papr_db(x: np.ndarray) -> float:
    """Peak-to-average power ratio of a signal, in dB.

    Useful when sanity-checking jammer waveforms: band-limited Gaussian
    noise has a high PAPR while a constant-envelope tone has 0 dB.
    """
    x = np.asarray(x)
    if x.size == 0:
        raise ValueError("papr_db of an empty signal is undefined")
    peak = float(np.max(np.abs(x) ** 2))
    avg = signal_power(x)
    if avg <= 0.0:
        raise ValueError("papr_db of an all-zero signal is undefined")
    return linear_to_db(peak / avg)
