"""Lightweight argument validation helpers.

These raise early, with messages that name the offending parameter, so that
configuration mistakes (a negative bandwidth, an even filter length where an
odd one is required, ...) surface at object construction instead of as NaNs
deep inside a simulation run.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ensure_positive",
    "ensure_non_negative",
    "ensure_in_range",
    "ensure_odd",
    "ensure_power_of_two",
    "ensure_probability_vector",
    "as_complex_array",
    "as_float_array",
]


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def ensure_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if ``low <= value <= high``, else raise."""
    if not np.isfinite(value) or value < low or value > high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def ensure_odd(value: int, name: str) -> int:
    """Return ``value`` if it is an odd integer, else raise ``ValueError``."""
    ivalue = int(value)
    if ivalue != value or ivalue % 2 == 0:
        raise ValueError(f"{name} must be an odd integer, got {value!r}")
    return ivalue


def ensure_power_of_two(value: int, name: str) -> int:
    """Return ``value`` if it is a positive power of two, else raise."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0 or (ivalue & (ivalue - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return ivalue


def ensure_probability_vector(weights, name: str) -> np.ndarray:
    """Validate and normalize a vector of non-negative weights.

    Returns the weights scaled to sum to exactly 1.  Raises if any weight is
    negative, non-finite, or if the vector is empty or sums to zero.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D vector, got shape {w.shape}")
    if not np.all(np.isfinite(w)):
        raise ValueError(f"{name} contains non-finite entries")
    if np.any(w < 0):
        raise ValueError(f"{name} contains negative entries")
    total = w.sum()
    if total <= 0:
        raise ValueError(f"{name} must have positive total weight")
    return w / total


def as_complex_array(x, name: str = "signal") -> np.ndarray:
    """Coerce input to a 1-D complex128 array."""
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr.astype(np.complex128, copy=False)


def as_float_array(x, name: str = "values") -> np.ndarray:
    """Coerce input to a 1-D float64 array."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr
