"""Terminal plotting for the example scripts and benchmark reports.

The evaluation environment has no matplotlib, so the examples render their
figures as Unicode character plots.  This is intentionally small: a line /
scatter plot on a fixed-size character grid with linear or logarithmic axes,
plus a fixed-width table formatter used to print the paper's tables.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["line_plot", "format_table", "histogram_bar"]

_MARKERS = "ox+*#@%&"


def _axis_transform(values: np.ndarray, log: bool) -> np.ndarray:
    if not log:
        return values
    safe = np.maximum(values, 1e-300)
    return np.log10(safe)


def line_plot(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    xlabel: str = "",
    ylabel: str = "",
    title: str = "",
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render one or more (label, x, y) series as a character plot.

    Points that fall outside the finite data range (NaN/inf) are skipped.
    Each series gets its own marker character and an entry in the legend.
    Returns the rendered plot as a single string (the caller prints it).
    """
    if not series:
        raise ValueError("line_plot needs at least one series")

    prepared = []
    for label, xs, ys in series:
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        if x.shape != y.shape:
            raise ValueError(f"series {label!r}: x and y lengths differ")
        mask = np.isfinite(x) & np.isfinite(y)
        if logx:
            mask &= x > 0
        if logy:
            mask &= y > 0
        prepared.append((label, x[mask], y[mask]))

    all_x = np.concatenate([p[1] for p in prepared if p[1].size]) if any(p[1].size for p in prepared) else np.array([0.0, 1.0])
    all_y = np.concatenate([p[2] for p in prepared if p[2].size]) if any(p[2].size for p in prepared) else np.array([0.0, 1.0])
    tx = _axis_transform(all_x, logx)
    ty = _axis_transform(all_y, logy)
    xmin, xmax = float(tx.min()), float(tx.max())
    ymin, ymax = float(ty.min()), float(ty.max())
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (_label, x, y) in enumerate(prepared):
        marker = _MARKERS[idx % len(_MARKERS)]
        px = _axis_transform(x, logx)
        py = _axis_transform(y, logy)
        for xv, yv in zip(px, py):
            col = int(round((xv - xmin) / (xmax - xmin) * (width - 1)))
            row = int(round((yv - ymin) / (ymax - ymin) * (height - 1)))
            grid[height - 1 - row][col] = marker

    def fmt_axis(value: float, log: bool) -> str:
        real = 10**value if log else value
        if real != 0 and (abs(real) >= 1e4 or abs(real) < 1e-3):
            return f"{real:.2e}"
        return f"{real:.4g}"

    lines = []
    if title:
        lines.append(title.center(width + 10))
    top_label = fmt_axis(ymax, logy)
    bottom_label = fmt_axis(ymin, logy)
    label_w = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_w)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * label_w + " +" + "-" * width + "+")
    x_left = fmt_axis(xmin, logx)
    x_right = fmt_axis(xmax, logx)
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (label_w + 2) + x_left + " " * max(pad, 1) + x_right)
    if xlabel or ylabel:
        lines.append(" " * (label_w + 2) + f"x: {xlabel}   y: {ylabel}".strip())
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, (label, _x, _y) in enumerate(prepared)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = "") -> str:
    """Format a fixed-width text table.

    Floats are rendered with 4 significant digits; everything else with
    ``str``.  Column widths adapt to the content.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            if math.isnan(value):
                return "nan"
            return f"{value:.4g}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for j, v in enumerate(row):
            widths[j] = max(widths[j], len(v))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(widths[j]) for j, c in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append(sep)
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def histogram_bar(labels: Sequence[str], values: Sequence[float], *, width: int = 50, title: str = "") -> str:
    """Render a horizontal bar chart (used for hop-weight distributions)."""
    vals = np.asarray(values, dtype=float)
    if len(labels) != vals.size:
        raise ValueError("labels and values lengths differ")
    vmax = float(vals.max()) if vals.size else 1.0
    if vmax <= 0:
        vmax = 1.0
    label_w = max((len(str(l)) for l in labels), default=0)
    lines = [title] if title else []
    for label, v in zip(labels, vals):
        n = int(round(v / vmax * width))
        lines.append(f"{str(label).rjust(label_w)} | {'#' * n} {v:.4g}")
    return "\n".join(lines)
