"""Static multipath channel (exploration beyond the paper).

The paper deliberately excludes multipath ("we connect transmitter,
receiver and jammer with SMA coaxial cables ... we are not interested in
any environmental multipath noise").  This model lets users explore what
the coax hid: a static FIR channel with exponentially decaying complex
taps, the standard tapped-delay-line model for a frequency-selective
link.  BHSS's narrow hops sail through (flat fading within the hop band)
while the wide hops see inter-chip interference — a genuinely new
trade-off the bandwidth dimension introduces, probed by the tests.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.fir import apply_fir
from repro.utils.rng import make_rng
from repro.utils.validation import as_complex_array, ensure_positive

__all__ = ["MultipathChannel", "exponential_power_delay_profile"]


def exponential_power_delay_profile(num_taps: int, decay_samples: float) -> np.ndarray:
    """Tap powers ``exp(-k / decay)`` for ``k = 0..num_taps-1``, unit sum."""
    if num_taps < 1:
        raise ValueError(f"num_taps must be >= 1, got {num_taps}")
    ensure_positive(decay_samples, "decay_samples")
    p = np.exp(-np.arange(num_taps) / decay_samples)
    return p / p.sum()


class MultipathChannel:
    """Static tapped-delay-line channel with a fixed random realization.

    Parameters
    ----------
    num_taps:
        Channel length in samples (delay spread).
    decay_samples:
        Exponential decay constant of the power-delay profile.
    seed:
        Selects the (then frozen) Rayleigh tap realization.
    line_of_sight:
        Extra deterministic power on tap 0 relative to the diffuse taps
        (a Rician K-factor, linear).  0 = pure Rayleigh.
    """

    def __init__(
        self,
        num_taps: int = 8,
        decay_samples: float = 3.0,
        seed: int = 0,
        line_of_sight: float = 1.0,
    ) -> None:
        if line_of_sight < 0:
            raise ValueError("line_of_sight must be >= 0")
        self.num_taps = int(num_taps)
        self.decay_samples = float(decay_samples)
        self.seed = seed
        self.line_of_sight = float(line_of_sight)
        profile = exponential_power_delay_profile(num_taps, decay_samples)
        rng = make_rng(seed)
        diffuse = np.sqrt(profile / 2) * (
            rng.normal(size=num_taps) + 1j * rng.normal(size=num_taps)
        )
        taps = diffuse.astype(complex)
        taps[0] += np.sqrt(line_of_sight * profile[0])
        # normalize to unit average power gain so SNR calibration holds
        taps /= np.sqrt(np.sum(np.abs(taps) ** 2))
        self.taps = taps

    def spec(self) -> dict:
        """JSON-able construction spec; the channel registry inverts it."""
        out = {
            "type": "multipath",
            "num_taps": int(self.num_taps),
            "decay_samples": float(self.decay_samples),
            "line_of_sight": float(self.line_of_sight),
        }
        if self.seed is not None:
            out["seed"] = int(self.seed)
        return out

    @property
    def delay_spread_samples(self) -> int:
        """Channel length in samples."""
        return self.taps.size

    def coherence_bandwidth(self, sample_rate: float) -> float:
        """Rough coherence bandwidth: ``fs / delay spread`` in Hz.

        Hops much narrower than this see flat fading; hops wider see
        frequency selectivity (inter-chip interference).
        """
        ensure_positive(sample_rate, "sample_rate")
        return sample_rate / self.taps.size

    def apply(self, waveform: np.ndarray) -> np.ndarray:
        """Convolve a waveform with the channel (same-length output)."""
        x = as_complex_array(waveform)
        if x.size == 0:
            return x.copy()
        # causal channel: no delay compensation — tap 0 is the direct path
        return apply_fir(x, self.taps, mode="full")[: x.size]

    def frequency_response(self, num_points: int, sample_rate: float):
        """Two-sided channel frequency response (fftshifted)."""
        from repro.dsp.fir import frequency_response

        return frequency_response(self.taps, num_points, sample_rate)
