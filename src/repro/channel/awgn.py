"""AWGN generation and SNR-calibrated noise addition.

The paper's cabled testbed "can be modeled as additive white Gaussian
noise (AWGN) channels" — this module is that model.  Powers are always
calibrated against the *measured* signal power so that a requested SNR in
dB is exact regardless of the waveform's own scale.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.units import db_to_linear, signal_power
from repro.utils.validation import as_complex_array, ensure_non_negative

__all__ = ["complex_awgn", "add_awgn", "noise_power_for_snr"]


def complex_awgn(num_samples: int, power: float, rng=None) -> np.ndarray:
    """Circularly symmetric complex Gaussian noise of mean power ``power``."""
    if num_samples < 0:
        raise ValueError(f"num_samples must be >= 0, got {num_samples}")
    ensure_non_negative(power, "power")
    gen = make_rng(rng)
    scale = np.sqrt(power / 2.0)
    return scale * (gen.normal(size=num_samples) + 1j * gen.normal(size=num_samples))


def noise_power_for_snr(signal: np.ndarray, snr_db: float, reference_power: float | None = None) -> float:
    """Noise power needed to hit ``snr_db`` against a signal.

    ``reference_power`` overrides the measured signal power (useful when
    the SNR should be defined against the nominal transmit power rather
    than a partially silent waveform).
    """
    p_sig = signal_power(signal) if reference_power is None else float(reference_power)
    if p_sig <= 0:
        raise ValueError("cannot define an SNR against a silent signal")
    return p_sig / db_to_linear(snr_db)


def add_awgn(signal: np.ndarray, snr_db: float, rng=None, reference_power: float | None = None) -> np.ndarray:
    """Return ``signal`` plus AWGN at the requested SNR (dB)."""
    x = as_complex_array(signal)
    if x.size == 0:
        return x.copy()
    p_noise = noise_power_for_snr(x, snr_db, reference_power)
    return x + complex_awgn(x.size, p_noise, rng)
