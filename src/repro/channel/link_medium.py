"""The shared medium: superposition of emitters and thermal noise.

Replaces the paper's SMA-cable + attenuator + T-connector setup
(Figure 12): the received waveform is

    r = signal + sum(source_scaled) + noise

with every non-signal source (jammers, and in network-scale runs the
other links' transmissions) rescaled so its received power sits at a
calibrated ratio to the *nominal* signal power (the attenuators of the
testbed set average power levels, not instantaneous ones), and the noise
scaled so the signal-to-noise ratio (SNR) is exact against the same
reference.  Delays model propagation and — for the reactive jammer — the
reaction time between sensing and jamming.

:meth:`Medium.combine` is the classic single-jammer entry point;
:meth:`Medium.superpose` is the general N-source form it delegates to.
The two are bit-identical for one jammer source, which is what lets an
N=1 network reproduce :meth:`LinkSimulator.run_packets` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import complex_awgn
from repro.utils.rng import make_rng
from repro.utils.units import db_to_linear, signal_power
from repro.utils.validation import as_complex_array, ensure_positive

__all__ = ["Medium", "MediumSource", "ReceivedBlock"]


def _validate_delay(value: object, field: str) -> int:
    """An integer sample delay >= 0, or a ``ValueError`` naming ``field``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{field}: expected an integer sample count, got {value!r}")
    if value < 0:
        raise ValueError(f"{field}: must be >= 0, got {int(value)}")
    return int(value)


@dataclass(frozen=True)
class MediumSource:
    """One non-signal emitter to superpose into a received waveform.

    Attributes
    ----------
    samples:
        The source waveform (any scale; it is rescaled at superposition
        time).  Shorter than the signal = zero-padded at the back, longer
        = truncated, exactly like the classic jammer path.
    power_db:
        Received power of this source relative to the victim link's
        nominal signal power, in dB (``-sjr_db`` in jammer terms: a
        source 10 dB *stronger* than the signal is ``power_db=10``).
    delay_samples:
        Samples by which the source lags the signal start (propagation
        delay, or a reactive jammer's turnaround time).
    label:
        Name used in validation errors (``"links[2]"`` style).
    kind:
        ``"interference"`` (default) or ``"jammer"`` — selects which
        :class:`ReceivedBlock` power bucket the source's realized power
        is reported in; the superposition itself is identical.
    """

    samples: np.ndarray
    power_db: float
    delay_samples: int = 0
    label: str = "source"
    kind: str = "interference"

    def __post_init__(self) -> None:
        if self.kind not in ("interference", "jammer"):
            raise ValueError(
                f"{self.label}.kind: must be 'interference' or 'jammer', got {self.kind!r}"
            )
        if isinstance(self.power_db, bool) or not isinstance(self.power_db, (int, float)):
            raise ValueError(
                f"{self.label}.power_db: expected a number, got {self.power_db!r}"
            )
        object.__setattr__(self, "power_db", float(self.power_db))
        object.__setattr__(
            self,
            "delay_samples",
            _validate_delay(self.delay_samples, f"{self.label}.delay_samples"),
        )


@dataclass(frozen=True)
class ReceivedBlock:
    """A received waveform plus the calibrated component powers.

    The component fields let tests and analysis code verify SNR/SJR
    calibration and compute "genie" quantities (e.g. residual jammer power
    after a filter) that a real receiver could not observe.
    ``interference_power`` is the summed realized power of the
    non-jammer sources (cross-link traffic in a network run).
    """

    samples: np.ndarray
    signal_power: float
    jammer_power: float
    noise_power: float
    interference_power: float = 0.0

    @property
    def sjr_db(self) -> float:
        """Realized signal-to-jammer power ratio in dB (+inf if unjammed)."""
        if self.jammer_power <= 0:
            return float("inf")
        return 10.0 * np.log10(self.signal_power / self.jammer_power)

    @property
    def snr_db(self) -> float:
        """Realized signal-to-noise power ratio in dB."""
        if self.noise_power <= 0:
            return float("inf")
        return 10.0 * np.log10(self.signal_power / self.noise_power)

    @property
    def sir_db(self) -> float:
        """Realized signal-to-(cross-link-)interference ratio in dB."""
        if self.interference_power <= 0:
            return float("inf")
        return 10.0 * np.log10(self.signal_power / self.interference_power)


class Medium:
    """AWGN superposition channel with power calibration.

    Parameters
    ----------
    sample_rate:
        Complex baseband sample rate in samples/second.
    """

    def __init__(self, sample_rate: float) -> None:
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")

    def superpose(
        self,
        signal: np.ndarray,
        snr_db: float,
        sources: "tuple[MediumSource, ...] | list[MediumSource]" = (),
        rng=None,
        reference_power: float | None = None,
    ) -> ReceivedBlock:
        """Superpose the signal, N calibrated sources, and noise.

        Sources are added in sequence order, then the noise — the float
        addition order is part of the bit-identity contract, so a run
        with zero sources is bit-identical to an unjammed
        :meth:`combine`, and one ``kind="jammer"`` source is
        bit-identical to the classic jammed :meth:`combine`.

        Parameters
        ----------
        signal:
            Transmitted waveform (any scale; its mean power defines the
            0 dB reference unless ``reference_power`` is given).
        snr_db:
            Signal-to-noise ratio at the receiver.
        sources:
            :class:`MediumSource` entries, each rescaled so its received
            power is ``power_db`` dB relative to the reference power,
            then delayed/padded/truncated onto the signal's support.
        rng:
            Seed or Generator for the thermal noise.
        reference_power:
            Override for the nominal signal power (used by network runs
            where the reference must not drift with the channel).
        """
        s = as_complex_array(signal, "signal")
        if s.size == 0:
            raise ValueError("cannot transmit an empty signal")
        p_sig = signal_power(s) if reference_power is None else float(reference_power)
        if p_sig <= 0:
            raise ValueError("signal has zero power")
        gen = make_rng(rng)

        received = s.copy()
        p_jam_realized = 0.0
        p_interference = 0.0
        for source in sources:
            if not isinstance(source, MediumSource):
                raise ValueError(
                    f"sources: expected MediumSource entries, got {type(source).__name__}"
                )
            j = as_complex_array(source.samples, source.label)
            # Dividing by the inverse ratio (rather than multiplying by
            # db_to_linear(power_db)) matches combine()'s historical
            # `p_sig / db_to_linear(sjr_db)` to the last ulp; the golden
            # vectors pin that form.
            p_target = p_sig / db_to_linear(-source.power_db)
            p_raw = signal_power(j)
            if p_raw > 0 and p_target > 0:
                j = j * np.sqrt(p_target / p_raw)
                aligned = np.zeros(s.size, dtype=complex)
                start = min(source.delay_samples, s.size)
                n_fit = min(j.size, s.size - start)
                aligned[start : start + n_fit] = j[:n_fit]
                received = received + aligned
                if source.kind == "jammer":
                    p_jam_realized += p_target
                else:
                    p_interference += p_target
        p_noise = p_sig / db_to_linear(snr_db)
        if p_noise > 0:
            received = received + complex_awgn(s.size, p_noise, gen)
        return ReceivedBlock(
            samples=received,
            signal_power=p_sig,
            jammer_power=p_jam_realized,
            noise_power=p_noise,
            interference_power=p_interference,
        )

    def combine(
        self,
        signal: np.ndarray,
        snr_db: float,
        jammer: np.ndarray | None = None,
        sjr_db: float = 0.0,
        jammer_delay_samples: int = 0,
        rng=None,
        reference_power: float | None = None,
    ) -> ReceivedBlock:
        """Superpose signal, one jammer, and noise at calibrated ratios.

        The single-jammer special case of :meth:`superpose`, kept as the
        link-level entry point; the two are bit-identical.

        Parameters
        ----------
        signal:
            Transmitted waveform (any scale; its mean power defines the
            0 dB reference unless ``reference_power`` is given).
        snr_db:
            Signal-to-noise ratio at the receiver.
        jammer:
            Jammer waveform, or ``None`` for an unjammed channel.  It is
            rescaled to hit ``sjr_db``; if shorter than the signal it is
            zero-padded at the front by ``jammer_delay_samples`` and at the
            back as needed (a late-starting reactive jammer), if longer it
            is truncated.
        sjr_db:
            Signal-to-jammer ratio (negative = jammer stronger).
        jammer_delay_samples:
            Samples by which the jammer waveform lags the signal start —
            the reaction time of Section 2 expressed in samples.  Must be
            a non-negative integer; a negative value raises a
            field-named ``ValueError`` whether or not a jammer is given.
        rng:
            Seed or Generator for the thermal noise.
        """
        delay = _validate_delay(jammer_delay_samples, "jammer_delay_samples")
        sources: tuple[MediumSource, ...] = ()
        if jammer is not None:
            sources = (
                MediumSource(
                    samples=as_complex_array(jammer, "jammer"),
                    power_db=-float(sjr_db),
                    delay_samples=delay,
                    label="jammer",
                    kind="jammer",
                ),
            )
        return self.superpose(
            signal,
            snr_db,
            sources=sources,
            rng=rng,
            reference_power=reference_power,
        )
