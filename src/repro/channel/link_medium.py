"""The shared medium: superposition of signal, jammer, and thermal noise.

Replaces the paper's SMA-cable + attenuator + T-connector setup
(Figure 12): the received waveform is

    r = s * sqrt(Pj-scaling...)  -- concretely:
    r = signal + jammer_scaled + noise

with the jammer scaled so the signal-to-jammer ratio (SJR) is exact and
the noise scaled so the signal-to-noise ratio (SNR) is exact, both against
the *nominal* signal power (the attenuators of the testbed set average
power levels, not instantaneous ones).  Delays model propagation and — for
the reactive jammer — the reaction time between sensing and jamming.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import complex_awgn
from repro.utils.rng import make_rng
from repro.utils.units import db_to_linear, signal_power
from repro.utils.validation import as_complex_array, ensure_positive

__all__ = ["Medium", "ReceivedBlock"]


@dataclass(frozen=True)
class ReceivedBlock:
    """A received waveform plus the calibrated component powers.

    The component fields let tests and analysis code verify SNR/SJR
    calibration and compute "genie" quantities (e.g. residual jammer power
    after a filter) that a real receiver could not observe.
    """

    samples: np.ndarray
    signal_power: float
    jammer_power: float
    noise_power: float

    @property
    def sjr_db(self) -> float:
        """Realized signal-to-jammer power ratio in dB (+inf if unjammed)."""
        if self.jammer_power <= 0:
            return float("inf")
        return 10.0 * np.log10(self.signal_power / self.jammer_power)

    @property
    def snr_db(self) -> float:
        """Realized signal-to-noise power ratio in dB."""
        if self.noise_power <= 0:
            return float("inf")
        return 10.0 * np.log10(self.signal_power / self.noise_power)


class Medium:
    """AWGN superposition channel with power calibration.

    Parameters
    ----------
    sample_rate:
        Complex baseband sample rate in samples/second.
    """

    def __init__(self, sample_rate: float) -> None:
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")

    def combine(
        self,
        signal: np.ndarray,
        snr_db: float,
        jammer: np.ndarray | None = None,
        sjr_db: float = 0.0,
        jammer_delay_samples: int = 0,
        rng=None,
        reference_power: float | None = None,
    ) -> ReceivedBlock:
        """Superpose signal, jammer, and noise at calibrated power ratios.

        Parameters
        ----------
        signal:
            Transmitted waveform (any scale; its mean power defines the
            0 dB reference unless ``reference_power`` is given).
        snr_db:
            Signal-to-noise ratio at the receiver.
        jammer:
            Jammer waveform, or ``None`` for an unjammed channel.  It is
            rescaled to hit ``sjr_db``; if shorter than the signal it is
            zero-padded at the front by ``jammer_delay_samples`` and at the
            back as needed (a late-starting reactive jammer), if longer it
            is truncated.
        sjr_db:
            Signal-to-jammer ratio (negative = jammer stronger).
        jammer_delay_samples:
            Samples by which the jammer waveform lags the signal start —
            the reaction time of Section 2 expressed in samples.
        rng:
            Seed or Generator for the thermal noise.
        """
        s = as_complex_array(signal, "signal")
        if s.size == 0:
            raise ValueError("cannot transmit an empty signal")
        p_sig = signal_power(s) if reference_power is None else float(reference_power)
        if p_sig <= 0:
            raise ValueError("signal has zero power")
        gen = make_rng(rng)

        received = s.copy()

        p_jam_realized = 0.0
        if jammer is not None:
            j = as_complex_array(jammer, "jammer")
            if jammer_delay_samples < 0:
                raise ValueError("jammer_delay_samples must be >= 0")
            p_jam_target = p_sig / db_to_linear(sjr_db)
            p_j_raw = signal_power(j)
            if p_j_raw > 0 and p_jam_target > 0:
                j = j * np.sqrt(p_jam_target / p_j_raw)
                aligned = np.zeros(s.size, dtype=complex)
                start = min(jammer_delay_samples, s.size)
                n_fit = min(j.size, s.size - start)
                aligned[start : start + n_fit] = j[:n_fit]
                received = received + aligned
                p_jam_realized = p_jam_target
        p_noise = p_sig / db_to_linear(snr_db)
        if p_noise > 0:
            received = received + complex_awgn(s.size, p_noise, gen)
        return ReceivedBlock(
            samples=received,
            signal_power=p_sig,
            jammer_power=p_jam_realized,
            noise_power=p_noise,
        )
