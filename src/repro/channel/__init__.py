"""Channel substrate: AWGN, front-end impairments, and the shared medium."""

from repro.channel.awgn import add_awgn, complex_awgn, noise_power_for_snr
from repro.channel.impairments import IDEAL_FRONT_END, Impairments
from repro.channel.link_medium import Medium, MediumSource, ReceivedBlock
from repro.channel.multipath import MultipathChannel, exponential_power_delay_profile
from repro.channel.registry import (
    CHANNEL_REGISTRY,
    channel_from_spec,
    channel_names,
    channel_spec,
    impairments_from_spec,
    register_channel,
)

__all__ = [
    "complex_awgn",
    "add_awgn",
    "noise_power_for_snr",
    "Impairments",
    "IDEAL_FRONT_END",
    "Medium",
    "MediumSource",
    "ReceivedBlock",
    "MultipathChannel",
    "exponential_power_delay_profile",
    "CHANNEL_REGISTRY",
    "channel_from_spec",
    "channel_names",
    "channel_spec",
    "impairments_from_spec",
    "register_channel",
]
