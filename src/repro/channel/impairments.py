"""Radio-front-end impairment models.

The paper's SDRs run on free, unsynchronized oscillators ("we do not
synchronize the clocks of the SDRs and all of them use their own internal
oscillator"), so a real receiver must tolerate carrier-frequency offset,
phase offset, sampling-time offset and clock skew.  These models inject
exactly those impairments so the Costas/Gardner chain has something to
correct — and so the measured power advantage reflects a non-ideal
receiver like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.mixing import frequency_shift, phase_rotate
from repro.dsp.resample import fractional_delay, resample_linear
from repro.utils.rng import make_rng
from repro.utils.validation import as_complex_array, ensure_positive

__all__ = ["Impairments", "IDEAL_FRONT_END"]


@dataclass(frozen=True)
class Impairments:
    """A bundle of front-end impairments applied to a received waveform.

    Attributes
    ----------
    cfo_hz:
        Carrier-frequency offset between transmitter and receiver LOs.
    phase_rad:
        Static phase offset of the downconverter.
    timing_offset_samples:
        Fractional sampling-time offset (receiver ADC vs transmitter DAC).
    clock_skew_ppm:
        Sample-clock rate error in parts per million.
    """

    cfo_hz: float = 0.0
    phase_rad: float = 0.0
    timing_offset_samples: float = 0.0
    clock_skew_ppm: float = 0.0
    #: receive-chain IQ gain imbalance (1.0 = balanced); the Q rail is
    #: scaled by this factor — creates an image at -f
    iq_gain_imbalance: float = 1.0
    #: IQ phase (quadrature skew) error in radians
    iq_phase_error_rad: float = 0.0
    #: additive DC offset at the ADC (complex leakage of the LO)
    dc_offset: complex = 0j
    #: phase-noise random-walk std per sample, radians (0 = clean LO)
    phase_noise_std: float = 0.0
    #: ADC resolution in bits per rail (0 = ideal, no quantization)
    adc_bits: int = 0
    #: seed for the stochastic impairments (phase noise)
    noise_seed: int = 0

    @property
    def is_ideal(self) -> bool:
        """True when every impairment is zero (fast path: no-op)."""
        return (
            self.cfo_hz == 0.0
            and self.phase_rad == 0.0
            and self.timing_offset_samples == 0.0
            and self.clock_skew_ppm == 0.0
            and self.iq_gain_imbalance == 1.0
            and self.iq_phase_error_rad == 0.0
            and self.dc_offset == 0j
            and self.phase_noise_std == 0.0
            and self.adc_bits == 0
        )

    def apply(self, waveform: np.ndarray, sample_rate: float) -> np.ndarray:
        """Apply the impairments to a complex baseband waveform."""
        x = as_complex_array(waveform)
        ensure_positive(sample_rate, "sample_rate")
        if self.adc_bits < 0:
            raise ValueError("adc_bits must be >= 0")
        if self.phase_noise_std < 0:
            raise ValueError("phase_noise_std must be >= 0")
        if self.iq_gain_imbalance <= 0:
            raise ValueError("iq_gain_imbalance must be positive")
        if x.size == 0 or self.is_ideal:
            return x.copy()
        out = x
        if self.timing_offset_samples != 0.0:
            out = fractional_delay(out, self.timing_offset_samples)
        if self.clock_skew_ppm != 0.0:
            ratio = 1.0 + self.clock_skew_ppm * 1e-6
            out = resample_linear(out, ratio)
        if self.cfo_hz != 0.0:
            out = frequency_shift(out, self.cfo_hz, sample_rate)
        if self.phase_rad != 0.0:
            out = phase_rotate(out, self.phase_rad)
        if self.phase_noise_std > 0.0:
            rng = make_rng(self.noise_seed)
            walk = np.cumsum(rng.normal(scale=self.phase_noise_std, size=out.size))
            out = out * np.exp(1j * walk)
        if self.iq_gain_imbalance != 1.0 or self.iq_phase_error_rad != 0.0:
            # Q rail scaled and skewed: q' = g (q cos e + i sin e)
            g, e = self.iq_gain_imbalance, self.iq_phase_error_rad
            i_rail = out.real
            q_rail = g * (out.imag * np.cos(e) + out.real * np.sin(e))
            out = i_rail + 1j * q_rail
        if self.dc_offset != 0j:
            out = out + self.dc_offset
        if self.adc_bits > 0:
            # mid-rise uniform quantizer scaled to ~4 sigma full scale
            scale = 4.0 * max(np.sqrt(np.mean(np.abs(out) ** 2)), 1e-30)
            levels = 2 ** (self.adc_bits - 1)
            step = scale / levels
            quantize = lambda r: np.clip(np.round(r / step) * step, -scale, scale)
            out = quantize(out.real) + 1j * quantize(out.imag)
        return out

    def to_dict(self) -> dict:
        """Lossless JSON-able spec; :meth:`from_dict` inverts it.

        The complex ``dc_offset`` serializes as a ``[real, imag]`` pair.
        """
        return {
            "cfo_hz": float(self.cfo_hz),
            "phase_rad": float(self.phase_rad),
            "timing_offset_samples": float(self.timing_offset_samples),
            "clock_skew_ppm": float(self.clock_skew_ppm),
            "iq_gain_imbalance": float(self.iq_gain_imbalance),
            "iq_phase_error_rad": float(self.iq_phase_error_rad),
            "dc_offset": [float(complex(self.dc_offset).real), float(complex(self.dc_offset).imag)],
            "phase_noise_std": float(self.phase_noise_std),
            "adc_bits": int(self.adc_bits),
            "noise_seed": int(self.noise_seed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Impairments":
        """Rebuild impairments from :meth:`to_dict` output.

        Every field is optional (defaults to the ideal front end); unknown
        and mistyped fields are rejected by name.
        """
        if not isinstance(data, dict):
            raise ValueError(f"impairments spec must be a mapping, got {type(data).__name__}")
        floats = {
            "cfo_hz", "phase_rad", "timing_offset_samples", "clock_skew_ppm",
            "iq_gain_imbalance", "iq_phase_error_rad", "phase_noise_std",
        }
        ints = {"adc_bits", "noise_seed"}
        known = floats | ints | {"dc_offset"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown impairments field(s): {sorted(unknown)}")
        kwargs: dict = {}
        for name in floats & set(data):
            value = data[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"impairments field {name!r} must be a number")
            kwargs[name] = float(value)
        for name in ints & set(data):
            value = data[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"impairments field {name!r} must be an integer")
            kwargs[name] = value
        if "dc_offset" in data:
            value = data["dc_offset"]
            if (
                not isinstance(value, (list, tuple))
                or len(value) != 2
                or not all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in value)
            ):
                raise ValueError("impairments field 'dc_offset' must be a [real, imag] pair")
            kwargs["dc_offset"] = complex(float(value[0]), float(value[1]))
        return cls(**kwargs)

    @classmethod
    def typical_sdr(cls, rng=None) -> "Impairments":
        """A random draw representative of unsynchronized USRP N210s.

        ~2.5 ppm TCXO class oscillators at a 2.4 GHz-ish carrier produce
        CFOs of a few kHz; timing offset is uniformly distributed within a
        sample; phase is uniform.
        """
        gen = make_rng(rng)
        return cls(
            cfo_hz=float(gen.uniform(-5e3, 5e3)),
            phase_rad=float(gen.uniform(-np.pi, np.pi)),
            timing_offset_samples=float(gen.uniform(0.0, 1.0)),
            clock_skew_ppm=float(gen.uniform(-2.5, 2.5)),
        )


#: Shared ideal (no-impairment) front end.
IDEAL_FRONT_END = Impairments()
