"""String-keyed channel registry: propagation models from plain data.

Mirrors :mod:`repro.jamming.registry` for the signal-path side of a
scenario: a channel spec like ``{"type": "multipath", "num_taps": 16}``
rebuilds the propagation model, and ``{"type": "none"}`` / ``None`` is the
paper's coax testbed (no channel).  Front-end impairments are a dataclass
with their own :meth:`~repro.channel.impairments.Impairments.to_dict` /
``from_dict`` pair, re-exported here for symmetry.
"""

from __future__ import annotations

import inspect

from repro.channel.impairments import Impairments
from repro.channel.multipath import MultipathChannel

__all__ = [
    "CHANNEL_REGISTRY",
    "register_channel",
    "channel_from_spec",
    "channel_spec",
    "channel_names",
    "impairments_from_spec",
]

#: registry key -> channel class; keys are the ``"type"`` values of specs.
CHANNEL_REGISTRY: dict[str, type] = {
    "multipath": MultipathChannel,
}


def channel_names() -> list[str]:
    """Registered channel type names (plus the implicit ``"none"``)."""
    return [*sorted(CHANNEL_REGISTRY), "none"]


def register_channel(name: str, cls: type) -> None:
    """Admit a channel class under a new registry key.

    The class must provide ``apply(waveform)`` and a ``spec()`` returning
    ``{"type": name, ...constructor params...}``.
    """
    key = str(name).lower()
    if key == "none" or key in CHANNEL_REGISTRY:
        raise ValueError(f"channel type {key!r} is already registered")
    if not (isinstance(cls, type) and callable(getattr(cls, "apply", None))):
        raise TypeError("cls must be a class with an apply() method")
    CHANNEL_REGISTRY[key] = cls


def channel_spec(channel) -> dict:
    """The JSON-able spec of a channel (``None`` → ``{"type": "none"}``)."""
    if channel is None:
        return {"type": "none"}
    spec = getattr(channel, "spec", None)
    if not callable(spec):
        raise ValueError(f"channel {type(channel).__name__} does not define spec()")
    return spec()


def channel_from_spec(spec: dict | None):
    """Build a channel from a registry spec mapping.

    ``None`` and ``{"type": "none"}`` both mean "no channel" (the paper's
    cabled testbed) and return ``None``.  Field names are validated against
    the constructor so typos fail with the offending field spelled out.
    """
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise ValueError(f"channel spec must be a mapping, got {type(spec).__name__}")
    if "type" not in spec:
        raise ValueError("channel spec must contain a 'type' field")
    name = spec["type"]
    if isinstance(name, str) and name.lower() == "none":
        extras = set(spec) - {"type"}
        if extras:
            raise ValueError(f"channel type 'none' takes no fields, got {sorted(extras)}")
        return None
    if not isinstance(name, str) or name.lower() not in CHANNEL_REGISTRY:
        raise ValueError(
            f"unknown channel type {name!r}; registered types: {channel_names()}"
        )
    cls = CHANNEL_REGISTRY[name.lower()]
    params = {k: v for k, v in spec.items() if k != "type"}
    accepted = set(inspect.signature(cls.__init__).parameters) - {"self"}
    unknown = set(params) - accepted
    if unknown:
        raise ValueError(
            f"channel spec field(s) {sorted(unknown)} not recognized for type {name!r}; "
            f"accepted: {sorted(accepted)}"
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise ValueError(f"channel spec for type {name!r} is incomplete: {exc}") from None


def impairments_from_spec(spec: dict | None) -> Impairments | None:
    """Build front-end impairments from a spec mapping (``None`` = ideal)."""
    if spec is None:
        return None
    return Impairments.from_dict(spec)
