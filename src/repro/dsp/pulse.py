"""Chip pulse shapes and the bandwidth-hopping pulse stretch.

The heart of the BHSS transmitter (paper Section 3, Figure 4) is replacing
the fixed pulse shape ``g(t)`` of a conventional DSSS modulator with a
stretched pulse ``g(alpha t)``: stretching in time by ``alpha`` compresses
the spectrum by the same factor (eq. 1), so hopping ``alpha`` hops the
signal bandwidth without touching the PN sequence or carrier.

In the discrete-time simulation the stretch is simply the number of samples
per chip: a pulse sampled at ``sps`` samples occupies a bandwidth
proportional to ``1/sps`` at fixed sample rate.  The paper's implementation
uses a half-sine pulse (IEEE 802.15.4 / MSK style); a rectangular and a
root-raised-cosine shape are also provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PulseShape",
    "HalfSinePulse",
    "RectPulse",
    "RootRaisedCosinePulse",
    "get_pulse",
    "pulse_spec",
]

#: Per-(pulse, α) sampled-waveform table.  Hop stretching means the same
#: few sps values recur for every segment of every packet; sampling the
#: pulse once per (shape, sps) removes that recomputation from the hot
#: path.  Cached arrays are frozen (non-writeable) so a cache hit can be
#: shared safely across the serial and batched pipelines.
_WAVEFORM_TABLE: dict[tuple, np.ndarray] = {}

#: Per-(pulse, α, nfft) pulse-spectrum table for the batched fast
#: convolution: the FFT of the pulse at a given transform length is the
#: same for every segment group that shares the stretch factor, so it is
#: computed once and reused (bit-identical — it is the very same array).
_SPECTRUM_TABLE: dict[tuple, np.ndarray] = {}


@dataclass(frozen=True)
class PulseShape:
    """Base class for unit-energy chip pulse shapes.

    Subclasses implement :meth:`waveform`, returning the sampled pulse for
    a given samples-per-chip.  ``bandwidth_factor`` relates the *nominal*
    occupied bandwidth to the (complex) chip rate: ``B = factor * Rchip``.
    Shapes are normalized to unit energy per chip so the transmitted power
    is independent of the hop bandwidth — the paper's power budget model
    (Section 2) holds the transmit power constant while hopping.
    """

    #: nominal two-sided occupied bandwidth in units of the chip rate
    bandwidth_factor: float = 1.0
    #: pulse length in chips (1 for time-limited shapes, >1 for RRC)
    span: int = 1

    def waveform(self, sps: int) -> np.ndarray:  # pragma: no cover - abstract
        """Sampled pulse at ``sps`` samples per chip, unit energy."""
        raise NotImplementedError

    def _normalize(self, p: np.ndarray) -> np.ndarray:
        energy = np.sum(p**2)
        if energy <= 0:
            raise ValueError("pulse has zero energy")
        return p / np.sqrt(energy)

    def waveform_cached(self, sps: int) -> np.ndarray:
        """:meth:`waveform` through the per-(shape, α) table.

        Returns the exact array :meth:`waveform` would produce (computed
        once and frozen), so callers that switch to the cached lookup
        stay bit-identical to callers that recompute.  The cache key uses
        the shape's dataclass identity (class + field values), so two
        equal pulse objects share one entry.
        """
        key = (type(self), self.bandwidth_factor, self.span, int(sps))
        table = _WAVEFORM_TABLE.get(key)
        if table is None:
            table = self.waveform(int(sps))
            table.flags.writeable = False
            _WAVEFORM_TABLE[key] = table
        return table

    def spectrum_cached(self, sps: int, nfft: int) -> np.ndarray:
        """Cached ``np.fft.fft(waveform_cached(sps).astype(complex), nfft)``.

        The batched modulator and matched filter convolve every segment
        group with the same pulse; caching the pulse's FFT per (shape, α,
        transform length) skips one transform per stacked call.  The
        cached array is the exact output of the inline FFT (computed once
        and frozen), so results stay bit-identical.
        """
        key = (type(self), self.bandwidth_factor, self.span, int(sps), int(nfft))
        spec = _SPECTRUM_TABLE.get(key)
        if spec is None:
            spec = np.fft.fft(self.waveform_cached(sps).astype(complex), int(nfft))
            spec.flags.writeable = False
            _SPECTRUM_TABLE[key] = spec
        return spec


class HalfSinePulse(PulseShape):
    """Half-sine chip pulse ``sin(pi t / T)`` on ``0 <= t < T``.

    This is the pulse of the paper's SDR implementation (and of the IEEE
    802.15.4 O-QPSK PHY).  Its main spectral lobe extends to 1.5x the chip
    rate, but the bulk of the energy sits within +-0.75 Rchip; the nominal
    bandwidth factor of 2.0 matches the paper's convention that a 10 Mchip/s
    binary-chip stream "is" a 10 MHz signal (two binary chips per complex
    chip period).
    """

    def __init__(self) -> None:
        super().__init__(bandwidth_factor=2.0, span=1)

    def waveform(self, sps: int) -> np.ndarray:
        if sps < 1:
            raise ValueError(f"sps must be >= 1, got {sps}")
        t = (np.arange(sps) + 0.5) / sps
        return self._normalize(np.sin(np.pi * t))


class RectPulse(PulseShape):
    """Rectangular (NRZ) chip pulse."""

    def __init__(self) -> None:
        super().__init__(bandwidth_factor=2.0, span=1)

    def waveform(self, sps: int) -> np.ndarray:
        if sps < 1:
            raise ValueError(f"sps must be >= 1, got {sps}")
        return self._normalize(np.ones(sps, dtype=float))


class RootRaisedCosinePulse(PulseShape):
    """Root-raised-cosine pulse with roll-off ``beta`` spanning ``span`` chips.

    Strictly band-limited to ``(1 + beta) * Rchip`` (two-sided), which makes
    it the cleanest shape for validating the theoretical SNR-improvement
    bound: virtually no signal energy falls outside the nominal band, so the
    ideal low-pass filter of Section 5.2 exists in practice.
    """

    def __init__(self, beta: float = 0.35, span: int = 8) -> None:
        if not 0 < beta <= 1:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        if span < 2 or span % 2 != 0:
            raise ValueError(f"span must be an even integer >= 2, got {span}")
        super().__init__(bandwidth_factor=1.0 + beta, span=span)
        object.__setattr__(self, "beta", beta)

    def waveform(self, sps: int) -> np.ndarray:
        if sps < 1:
            raise ValueError(f"sps must be >= 1, got {sps}")
        beta = self.beta
        n = self.span * sps
        t = (np.arange(n) - (n - 1) / 2.0) / sps  # time in chip periods
        p = np.empty(n, dtype=float)
        for i, ti in enumerate(t):
            if abs(ti) < 1e-9:
                p[i] = 1.0 - beta + 4 * beta / np.pi
            elif beta > 0 and abs(abs(ti) - 1.0 / (4 * beta)) < 1e-9:
                p[i] = (beta / np.sqrt(2)) * (
                    (1 + 2 / np.pi) * np.sin(np.pi / (4 * beta))
                    + (1 - 2 / np.pi) * np.cos(np.pi / (4 * beta))
                )
            else:
                num = np.sin(np.pi * ti * (1 - beta)) + 4 * beta * ti * np.cos(np.pi * ti * (1 + beta))
                den = np.pi * ti * (1 - (4 * beta * ti) ** 2)
                p[i] = num / den
        return self._normalize(p)


_PULSES = {
    "half_sine": HalfSinePulse,
    "halfsine": HalfSinePulse,
    "rect": RectPulse,
    "rectangular": RectPulse,
    "rrc": RootRaisedCosinePulse,
}


def get_pulse(name: "PulseShape | str | dict", **kwargs: object) -> PulseShape:
    """Look up a pulse shape by name or spec dict.

    Accepts an existing :class:`PulseShape` (passes through), a registry
    name (``"half_sine"``, ``"rect"``, ``"rrc"``), or a spec mapping like
    ``{"name": "rrc", "beta": 0.35, "span": 8}`` as produced by
    :func:`pulse_spec`.
    """
    if isinstance(name, PulseShape):
        return name
    if isinstance(name, dict):
        spec = dict(name)
        try:
            name = spec.pop("name")
        except KeyError:
            raise ValueError("pulse spec must contain a 'name' field") from None
        kwargs = {**spec, **kwargs}
    try:
        cls = _PULSES[str(name).lower()]
    except KeyError:
        raise ValueError(f"unknown pulse shape {name!r}; choose from {sorted(_PULSES)}") from None
    try:
        return cls(**kwargs)
    except TypeError:
        raise ValueError(
            f"invalid parameters {sorted(kwargs)} for pulse shape {name!r}"
        ) from None


def pulse_spec(pulse: "PulseShape | str | dict") -> dict:
    """The JSON-able spec of a pulse shape; ``get_pulse`` inverts it."""
    pulse = get_pulse(pulse)
    if isinstance(pulse, RootRaisedCosinePulse):
        return {"name": "rrc", "beta": float(pulse.beta), "span": int(pulse.span)}
    if isinstance(pulse, HalfSinePulse):
        return {"name": "half_sine"}
    if isinstance(pulse, RectPulse):
        return {"name": "rect"}
    raise ValueError(f"pulse shape {type(pulse).__name__} has no registered spec")
