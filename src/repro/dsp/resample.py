"""Fractional delay and simple resampling.

Needed by the channel impairment model (a receiver whose sampling clock is
offset from the transmitter's samples the waveform *between* the
transmitter's sample instants) and by the Gardner timing-recovery tests.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_complex_array, ensure_positive

__all__ = ["fractional_delay", "linear_interpolate", "resample_linear"]


def fractional_delay(x: np.ndarray, delay: float) -> np.ndarray:
    """Delay a signal by a (possibly fractional) number of samples.

    Implemented exactly in the frequency domain: multiply the spectrum by
    ``exp(-j 2 pi f d)``.  This is the ideal band-limited interpolator, so
    it introduces no amplitude distortion.  The output has the same length
    as the input; samples shifted in from beyond the edges wrap around
    (blocks are long relative to the delays used, so callers treat the few
    edge samples as guard).

    A negative ``delay`` advances the signal.
    """
    x = as_complex_array(x)
    if x.size == 0:
        return x.copy()
    freqs = np.fft.fftfreq(x.size)
    spectrum = np.fft.fft(x) * np.exp(-2j * np.pi * freqs * delay)
    return np.fft.ifft(spectrum)


def linear_interpolate(x: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Evaluate a sampled signal at fractional sample ``positions``.

    First-order (linear) interpolation, the same interpolator the Gardner
    timing loop uses.  Positions outside ``[0, len(x)-1]`` are clamped to
    the edge samples.
    """
    x = np.asarray(x)
    pos = np.asarray(positions, dtype=float)
    if x.size == 0:
        raise ValueError("cannot interpolate an empty signal")
    pos = np.clip(pos, 0.0, x.size - 1.0)
    idx = np.floor(pos).astype(int)
    idx = np.minimum(idx, x.size - 2) if x.size > 1 else idx * 0
    frac = pos - idx
    if x.size == 1:
        return np.full(pos.shape, x[0], dtype=x.dtype)
    return x[idx] * (1 - frac) + x[idx + 1] * frac


def resample_linear(x: np.ndarray, ratio: float) -> np.ndarray:
    """Resample a signal by ``ratio`` (output rate / input rate) linearly.

    Used to model sample-clock skew between transmitter and receiver.  For
    the small skews of interest (tens of ppm) linear interpolation is
    accurate; it is not an anti-aliased general-purpose resampler.
    """
    ensure_positive(ratio, "ratio")
    x = np.asarray(x)
    if x.size < 2:
        return x.copy()
    n_out = int(np.floor((x.size - 1) * ratio)) + 1
    positions = np.arange(n_out) / ratio
    return linear_interpolate(x, positions)
