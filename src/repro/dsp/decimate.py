"""Anti-aliased decimation.

The paper keeps one fixed 20 MS/s processing rate across hops "to avoid
processing delays when the sampling rate would be switched while
hopping"; this utility exists for the *other* design point — receivers
that decimate narrow hops down to a proportional rate to save compute.
It also demonstrates, constructively, the aliasing hazard the Figure-13
baseline embodies: :func:`decimate` with ``anti_alias=False`` is exactly
the fold-everything-in-band operation of the eq.-(5) receiver.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.fir import apply_fir, lowpass_taps
from repro.utils.validation import as_complex_array

__all__ = ["decimate", "decimate_batch", "decimation_taps"]

_TAPS_CACHE: dict[tuple[int, int], np.ndarray] = {}


def decimation_taps(factor: int, taps_per_phase: int = 12) -> np.ndarray:
    """Anti-aliasing low-pass for an integer decimation ``factor``.

    Cutoff at ``0.45 / factor`` of the input rate (a little inside the
    output Nyquist to leave transition room); length scales with the
    factor so the transition width stays proportionate.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if taps_per_phase < 4:
        raise ValueError(f"taps_per_phase must be >= 4, got {taps_per_phase}")
    key = (factor, taps_per_phase)
    taps = _TAPS_CACHE.get(key)
    if taps is None:
        num_taps = factor * taps_per_phase + 1
        taps = lowpass_taps(num_taps, 0.45 / factor, 1.0)
        _TAPS_CACHE[key] = taps
    return taps


def decimate(x: np.ndarray, factor: int, anti_alias: bool = True) -> np.ndarray:
    """Reduce the sample rate by an integer ``factor``.

    With ``anti_alias=True`` (default) the signal is low-pass filtered
    (delay-compensated) before picking every ``factor``-th sample, so
    out-of-band content is suppressed instead of folding in.  With
    ``anti_alias=False`` it is a bare downsample — everything between the
    old and new Nyquist aliases into the output band (use only when that
    is the point, as in the eq.-(5) baseline).
    """
    sig = as_complex_array(x) if np.iscomplexobj(x) else np.asarray(x, dtype=float)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1 or sig.size == 0:
        return sig.copy()
    if anti_alias:
        sig = apply_fir(sig, decimation_taps(factor), mode="compensated")
    return sig[::factor].copy()


def decimate_batch(x: np.ndarray, factor: int, anti_alias: bool = True) -> np.ndarray:
    """Row-wise :func:`decimate` on a stack of equal-length signals.

    ``x`` has shape ``(R, N)``; row ``i`` of the output is bit-identical
    to ``decimate(x[i], factor, anti_alias)`` — the anti-alias filter is
    shared (it depends only on ``factor``) and the downsampling stride is
    positional.
    """
    from repro.dsp.fir import apply_fir_batch

    sig = np.asarray(x)
    if sig.ndim != 2:
        raise ValueError(f"x must be 2-D (batch, samples), got shape {sig.shape}")
    sig = sig.astype(np.complex128, copy=False) if np.iscomplexobj(sig) else sig.astype(float)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1 or sig.shape[1] == 0:
        return sig.copy()
    if anti_alias:
        sig = apply_fir_batch(sig, decimation_taps(factor), mode="compensated")
    return sig[:, ::factor].copy()
