"""Window functions for FIR design and spectral estimation.

Implemented from their defining formulas (not wrapped from scipy) because
the FIR design and Welch estimator below are part of the from-scratch DSP
substrate.  All windows are *symmetric* by default (filter design
convention); pass ``periodic=True`` for the DFT-even variant used in
spectral analysis.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "rectangular",
    "hamming",
    "hann",
    "blackman",
    "kaiser",
    "get_window",
    "kaiser_beta",
    "WindowSpec",
]

#: window selector: a registry name, a ("kaiser", beta) tuple, or an
#: explicit taper array passed through unchanged
WindowSpec = Union[str, tuple, np.ndarray]


def _window_positions(num: int, periodic: bool) -> np.ndarray:
    """Sample positions n = 0..N-1 normalized by the window denominator."""
    if num < 1:
        raise ValueError(f"window length must be >= 1, got {num}")
    if num == 1:
        return np.zeros(1, dtype=float)
    denom = num if periodic else num - 1
    return np.arange(num) / denom


def rectangular(num: int, periodic: bool = False) -> np.ndarray:
    """Rectangular (boxcar) window."""
    if num < 1:
        raise ValueError(f"window length must be >= 1, got {num}")
    return np.ones(num, dtype=float)


def hamming(num: int, periodic: bool = False) -> np.ndarray:
    """Hamming window: ``0.54 - 0.46 cos(2 pi n / (N-1))``."""
    x = _window_positions(num, periodic)
    return 0.54 - 0.46 * np.cos(2 * np.pi * x)


def hann(num: int, periodic: bool = False) -> np.ndarray:
    """Hann window: ``0.5 (1 - cos(2 pi n / (N-1)))``."""
    x = _window_positions(num, periodic)
    return 0.5 * (1 - np.cos(2 * np.pi * x))


def blackman(num: int, periodic: bool = False) -> np.ndarray:
    """Blackman window (classic a0=0.42, a1=0.5, a2=0.08)."""
    x = _window_positions(num, periodic)
    return 0.42 - 0.5 * np.cos(2 * np.pi * x) + 0.08 * np.cos(4 * np.pi * x)


def kaiser(num: int, beta: float, periodic: bool = False) -> np.ndarray:
    """Kaiser window with shape parameter ``beta`` (uses ``np.i0``)."""
    if num < 1:
        raise ValueError(f"window length must be >= 1, got {num}")
    if num == 1:
        return np.ones(1, dtype=float)
    denom = num if periodic else num - 1
    n = np.arange(num)
    arg = beta * np.sqrt(np.maximum(0.0, 1 - (2 * n / denom - 1) ** 2))
    return np.i0(arg) / np.i0(beta)


def kaiser_beta(attenuation_db: float) -> float:
    """Kaiser's empirical beta for a target stop-band attenuation in dB."""
    a = float(attenuation_db)
    if a > 50:
        return 0.1102 * (a - 8.7)
    if a >= 21:
        return 0.5842 * (a - 21) ** 0.4 + 0.07886 * (a - 21)
    return 0.0


_WINDOWS = {
    "rectangular": rectangular,
    "boxcar": rectangular,
    "hamming": hamming,
    "hann": hann,
    "hanning": hann,
    "blackman": blackman,
}


def get_window(name: WindowSpec, num: int, periodic: bool = False) -> np.ndarray:
    """Look up a window by name, or ``("kaiser", beta)`` tuple.

    ``name`` may also already be an array of length ``num`` (passed
    through), which lets callers supply custom tapers.
    """
    if isinstance(name, np.ndarray):
        if name.size != num:
            raise ValueError(f"custom window has length {name.size}, expected {num}")
        return name.astype(float)
    if isinstance(name, tuple):
        kind, *params = name
        if kind != "kaiser" or len(params) != 1:
            raise ValueError(f"unsupported parametric window {name!r}")
        return kaiser(num, float(params[0]), periodic)
    try:
        fn = _WINDOWS[str(name).lower()]
    except KeyError:
        raise ValueError(f"unknown window {name!r}; choose from {sorted(_WINDOWS)}") from None
    return fn(num, periodic)
