"""From-scratch DSP substrate: windows, FIR design, excision filtering,
spectral estimation, pulse shaping, mixing, and resampling.

These are the NumPy equivalents of the GNU Radio blocks the paper's SDR
implementation was built from.
"""

from repro.dsp.windows import blackman, get_window, hamming, hann, kaiser, kaiser_beta, rectangular
from repro.dsp.fir import (
    apply_fir,
    apply_fir_batch,
    bandpass_taps,
    bandstop_taps,
    estimate_num_taps,
    fft_convolve,
    fft_convolve_batch,
    frequency_response,
    group_delay_samples,
    highpass_taps,
    lowpass_taps,
)
from repro.dsp.excision import (
    design_excision_filter,
    excision_taps_from_psd,
    excision_taps_from_psd_batch,
    whiten,
)
from repro.dsp.spectral import (
    SpectralEstimate,
    band_power,
    bartlett_psd,
    estimate_spectrum,
    noise_floor,
    occupied_bandwidth,
    occupied_bandwidth_batch,
    periodogram,
    welch_psd,
    welch_psd_batch,
)
from repro.dsp.pulse import (
    HalfSinePulse,
    PulseShape,
    RectPulse,
    RootRaisedCosinePulse,
    get_pulse,
    pulse_spec,
)
from repro.dsp.mixing import (
    chirp,
    frequency_shift,
    frequency_shift_batch,
    phase_rotate,
    phase_rotate_batch,
)
from repro.dsp.resample import fractional_delay, linear_interpolate, resample_linear
from repro.dsp.decimate import decimate, decimate_batch, decimation_taps

__all__ = [
    "rectangular",
    "hamming",
    "hann",
    "blackman",
    "kaiser",
    "kaiser_beta",
    "get_window",
    "lowpass_taps",
    "highpass_taps",
    "bandpass_taps",
    "bandstop_taps",
    "estimate_num_taps",
    "apply_fir",
    "apply_fir_batch",
    "fft_convolve",
    "fft_convolve_batch",
    "frequency_response",
    "group_delay_samples",
    "excision_taps_from_psd",
    "excision_taps_from_psd_batch",
    "design_excision_filter",
    "whiten",
    "periodogram",
    "bartlett_psd",
    "welch_psd",
    "welch_psd_batch",
    "SpectralEstimate",
    "estimate_spectrum",
    "occupied_bandwidth",
    "occupied_bandwidth_batch",
    "band_power",
    "noise_floor",
    "PulseShape",
    "HalfSinePulse",
    "RectPulse",
    "RootRaisedCosinePulse",
    "get_pulse",
    "pulse_spec",
    "frequency_shift",
    "frequency_shift_batch",
    "phase_rotate",
    "phase_rotate_batch",
    "chirp",
    "fractional_delay",
    "linear_interpolate",
    "resample_linear",
    "decimate",
    "decimate_batch",
    "decimation_taps",
]
