"""Power spectral density estimation: periodogram, Bartlett, Welch.

The BHSS control logic (paper Section 4.2) estimates the spectrum of the
received block to decide whether a jammer is present and whether it is
narrow-band or wide-band relative to the current hop bandwidth.  The paper
cites Bartlett's and Welch's methods; both are implemented here from their
definitions, on two-sided frequency grids appropriate for complex baseband.

Conventions: PSD values are *power per frequency bin normalized by the
sample rate* (density), so ``integral(psd * df) == mean power`` (Parseval).
Frequencies are returned fftshifted, spanning ``[-fs/2, fs/2)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import dispatch
from repro.dsp.windows import WindowSpec, get_window
from repro.utils.validation import as_complex_array, ensure_positive

__all__ = [
    "periodogram",
    "bartlett_psd",
    "welch_psd",
    "welch_psd_batch",
    "occupied_bandwidth_batch",
    "SpectralEstimate",
    "estimate_spectrum",
    "occupied_bandwidth",
    "band_power",
    "noise_floor",
]


def periodogram(
    x: np.ndarray,
    sample_rate: float = 1.0,
    nfft: int | None = None,
    window: WindowSpec = "rectangular",
) -> tuple[np.ndarray, np.ndarray]:
    """Single-segment windowed periodogram.

    Returns ``(freqs, psd)`` with a two-sided, fftshifted frequency axis.
    The window power is compensated so a white input of power P yields a
    flat PSD of P/fs regardless of the window.
    """
    x = as_complex_array(x)
    ensure_positive(sample_rate, "sample_rate")
    if x.size == 0:
        raise ValueError("cannot estimate the spectrum of an empty signal")
    n = x.size
    nfft = int(nfft) if nfft is not None else n
    if nfft < n:
        raise ValueError(f"nfft ({nfft}) must be >= signal length ({n})")
    w = get_window(window, n, periodic=True)
    scale = sample_rate * np.sum(w**2)
    spec = np.fft.fft(x * w, nfft)
    psd = np.abs(spec) ** 2 / scale
    freqs = np.fft.fftfreq(nfft, d=1.0 / sample_rate)
    return np.fft.fftshift(freqs), np.fft.fftshift(psd)


def _segment_psd_average(
    x: np.ndarray,
    sample_rate: float,
    nperseg: int,
    noverlap: int,
    window: WindowSpec,
    nfft: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Average windowed periodograms over (possibly overlapping) segments."""
    x = as_complex_array(x)
    ensure_positive(sample_rate, "sample_rate")
    nperseg = int(nperseg)
    if nperseg < 2:
        raise ValueError(f"nperseg must be >= 2, got {nperseg}")
    if x.size < nperseg:
        # Degrade gracefully to a single shorter segment (and shrink the
        # overlap with it so the validation below still holds).
        noverlap = int(noverlap * x.size / nperseg)
        nperseg = x.size
    noverlap = int(noverlap)
    if not 0 <= noverlap < nperseg:
        raise ValueError(f"noverlap must be in [0, nperseg), got {noverlap}")
    step = nperseg - noverlap
    nfft = int(nfft) if nfft is not None else nperseg

    w = get_window(window, nperseg, periodic=True)
    scale = sample_rate * np.sum(w**2)
    acc = np.zeros(nfft, dtype=float)
    count = 0
    for start in range(0, x.size - nperseg + 1, step):
        seg = x[start : start + nperseg]
        spec = np.fft.fft(seg * w, nfft)
        acc += np.abs(spec) ** 2
        count += 1
    if count == 0:
        raise ValueError("signal too short for the requested segmentation")
    psd = acc / (count * scale)
    freqs = np.fft.fftfreq(nfft, d=1.0 / sample_rate)
    return np.fft.fftshift(freqs), np.fft.fftshift(psd)


def welch_psd_batch(
    x: np.ndarray,
    sample_rate: float = 1.0,
    nperseg: int = 256,
    noverlap: int | None = None,
    window: WindowSpec = "hann",
    nfft: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`welch_psd` on a stack of equal-length signals.

    ``x`` has shape ``(R, N)``; returns ``(freqs, psd)`` with ``psd`` of
    shape ``(R, nfft)``.  Row ``i`` is bit-identical to
    ``welch_psd(x[i], ...)``: all R rows share the segmentation geometry
    (same ``N``), every Welch segment across the batch goes through one
    stacked FFT, and the segment accumulation runs in the serial order —
    a sequential loop over segment index, vectorized over rows — so the
    floating-point sum is performed in exactly the serial sequence.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D (batch, samples), got shape {x.shape}")
    if not np.iscomplexobj(x):
        x = x.astype(float)
    x = x.astype(np.complex128, copy=False)
    out: tuple[np.ndarray, np.ndarray] = dispatch(
        "welch_psd", "welch_psd_batch", x, sample_rate, nperseg, noverlap, window, nfft
    )
    return out


def _welch_psd_batch_reference(
    x: np.ndarray,
    sample_rate: float,
    nperseg: int,
    noverlap: int | None,
    window: WindowSpec,
    nfft: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """The NumPy oracle kernel of :func:`welch_psd_batch` (coerced input)."""
    ensure_positive(sample_rate, "sample_rate")
    if noverlap is None:
        noverlap = int(nperseg) // 2
    nperseg = int(nperseg)
    if nperseg < 2:
        raise ValueError(f"nperseg must be >= 2, got {nperseg}")
    n = x.shape[1]
    if n < nperseg:
        noverlap = int(noverlap * n / nperseg)
        nperseg = n
    noverlap = int(noverlap)
    if not 0 <= noverlap < nperseg:
        raise ValueError(f"noverlap must be in [0, nperseg), got {noverlap}")
    step = nperseg - noverlap
    nfft = int(nfft) if nfft is not None else nperseg

    w = get_window(window, nperseg, periodic=True)
    scale = sample_rate * np.sum(w**2)
    starts = np.arange(0, n - nperseg + 1, step)
    if starts.size == 0:
        raise ValueError("signal too short for the requested segmentation")
    # (R, S, nperseg) stack of windowed segments -> one batched FFT.  The
    # segment windows come from a zero-copy strided view; windowing and
    # |.|^2 are elementwise, so both are bit-identical to the per-segment
    # serial arithmetic.
    windows = np.lib.stride_tricks.sliding_window_view(x, nperseg, axis=1)
    segs = windows[:, ::step][:, : starts.size] * w
    specs = np.fft.fft(segs, nfft, axis=-1)
    power = np.abs(specs) ** 2
    acc = np.zeros((x.shape[0], nfft), dtype=float)
    for s in range(starts.size):
        # Sequential segment order: the serial Welch sum must be replayed
        # term by term for the accumulated rounding to match exactly.
        acc += power[:, s, :]
    psd = acc / (starts.size * scale)
    freqs = np.fft.fftfreq(nfft, d=1.0 / sample_rate)
    return np.fft.fftshift(freqs), np.fft.fftshift(psd, axes=-1)


def bartlett_psd(
    x: np.ndarray, sample_rate: float = 1.0, nperseg: int = 256, nfft: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Bartlett's method: average of non-overlapping rectangular periodograms."""
    return _segment_psd_average(x, sample_rate, nperseg, 0, "rectangular", nfft)


def welch_psd(
    x: np.ndarray,
    sample_rate: float = 1.0,
    nperseg: int = 256,
    noverlap: int | None = None,
    window: WindowSpec = "hann",
    nfft: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Welch's method: averaged, windowed, 50 %-overlapping periodograms."""
    if noverlap is None:
        noverlap = nperseg // 2
    return _segment_psd_average(x, sample_rate, nperseg, noverlap, window, nfft)


@dataclass(frozen=True)
class SpectralEstimate:
    """A PSD estimate plus the summary statistics the control logic uses.

    Attributes
    ----------
    freqs:
        Two-sided frequency grid in Hz (fftshifted).
    psd:
        Estimated power spectral density on that grid.
    total_power:
        Integral of the PSD (mean signal power).
    floor:
        Robust noise-floor density estimate (median bin).
    """

    freqs: np.ndarray
    psd: np.ndarray
    total_power: float
    floor: float

    @property
    def bin_width(self) -> float:
        """Width of one frequency bin in Hz."""
        return float(self.freqs[1] - self.freqs[0])

    def power_in_band(self, low: float, high: float) -> float:
        """Integrated power in the band ``low <= f <= high``."""
        return band_power(self.freqs, self.psd, low, high)


def estimate_spectrum(
    x: np.ndarray, sample_rate: float, nperseg: int = 256, method: str = "welch"
) -> SpectralEstimate:
    """Estimate the spectrum of a received block and derive summary stats.

    ``method`` is ``"welch"`` (default), ``"bartlett"``, or
    ``"periodogram"``.
    """
    if method == "welch":
        freqs, psd = welch_psd(x, sample_rate, nperseg=nperseg)
    elif method == "bartlett":
        freqs, psd = bartlett_psd(x, sample_rate, nperseg=nperseg)
    elif method == "periodogram":
        freqs, psd = periodogram(x, sample_rate)
    else:
        raise ValueError(f"unknown spectral method {method!r}")
    total = float(np.sum(psd) * (freqs[1] - freqs[0]))
    return SpectralEstimate(freqs=freqs, psd=psd, total_power=total, floor=noise_floor(psd))


def noise_floor(psd: np.ndarray) -> float:
    """Robust noise-floor density estimate: the median PSD bin.

    The median is insensitive to a jammer occupying less than half of the
    band, which is exactly the narrow-band case the excision filter
    targets.
    """
    psd = np.asarray(psd, dtype=float)
    if psd.size == 0:
        raise ValueError("empty PSD")
    return float(np.median(psd))


def band_power(freqs: np.ndarray, psd: np.ndarray, low: float, high: float) -> float:
    """Integrate a PSD over ``low <= f <= high`` (Hz)."""
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    if freqs.shape != psd.shape:
        raise ValueError("freqs and psd must have the same shape")
    if low > high:
        raise ValueError(f"low ({low}) must be <= high ({high})")
    mask = (freqs >= low) & (freqs <= high)
    df = freqs[1] - freqs[0]
    return float(np.sum(psd[mask]) * df)


def occupied_bandwidth(freqs: np.ndarray, psd: np.ndarray, fraction: float = 0.99) -> float:
    """Bandwidth of the smallest set of strongest bins holding ``fraction`` of the power.

    This "x %-power bandwidth" is what the control logic uses to classify a
    jammer as wide- or narrow-band relative to the hop bandwidth: bins are
    sorted by power and accumulated until ``fraction`` of the total is
    covered; the result is the summed width of those bins.  Working on
    sorted bins (rather than a contiguous window) keeps the estimate
    meaningful for multi-tone and comb jammers too.
    """
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    if freqs.shape != psd.shape or freqs.size < 2:
        raise ValueError("freqs and psd must be equal-length with >= 2 bins")
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    total = psd.sum()
    if total <= 0:
        return 0.0
    order = np.argsort(psd)[::-1]
    cumulative = np.cumsum(psd[order])
    needed = int(np.searchsorted(cumulative, fraction * total)) + 1
    df = freqs[1] - freqs[0]
    return float(needed * df)


def occupied_bandwidth_batch(freqs: np.ndarray, psd: np.ndarray, fraction: float = 0.99) -> np.ndarray:
    """Row-wise :func:`occupied_bandwidth` for a stack of PSDs.

    ``psd`` has shape ``(R, nbins)`` on the shared grid ``freqs``; returns
    an ``(R,)`` vector whose entry ``i`` is bit-identical to
    ``occupied_bandwidth(freqs, psd[i], fraction)``.  The serial
    ``searchsorted(cumulative, v)`` on the non-decreasing cumulative sum
    equals the count of entries strictly below ``v``, which vectorizes as
    a row-wise comparison; ties in the value sort contribute identical
    addends, so the cumulative sums match the serial ones bit for bit.
    """
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    if psd.ndim != 2 or freqs.ndim != 1 or psd.shape[1] != freqs.size or freqs.size < 2:
        raise ValueError("psd must be (R, nbins) on a shared freqs grid with >= 2 bins")
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    total = psd.sum(axis=-1)
    descending = np.sort(psd, axis=-1)[:, ::-1]
    cumulative = np.cumsum(descending, axis=-1)
    needed = np.sum(cumulative < fraction * total[:, None], axis=-1) + 1
    df = freqs[1] - freqs[0]
    out = needed * df
    return np.where(total > 0, out, 0.0)
