"""FIR filter design and application.

The BHSS receiver uses two FIR structures (paper, Section 4.2):

* a **low-pass filter** at the current signal bandwidth, applied when the
  jammer is wide-band (eq. 4) — designed here by the windowed-sinc method;
* an **excision (whitening) filter**, applied when the jammer is
  narrow-band (eq. 3) — designed in :mod:`repro.dsp.excision`.

Filters are applied with overlap-save fast convolution, written directly on
top of ``numpy.fft`` (the simulation filters millions of samples per packet
sweep, so direct convolution is not an option).

The batch entry points (:func:`apply_fir_batch`, :func:`fft_convolve_batch`)
validate and coerce their arguments here, then dispatch the numerics to the
active :mod:`repro.backend` — the NumPy reference backend runs the
``_*_reference`` bodies below (bit-identical to the serial twins), while
accelerated backends may substitute their own tolerance-checked kernels.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend import dispatch
from repro.dsp.windows import WindowSpec, get_window
from repro.utils.validation import as_complex_array, ensure_positive

__all__ = [
    "lowpass_taps",
    "highpass_taps",
    "bandpass_taps",
    "bandstop_taps",
    "estimate_num_taps",
    "apply_fir",
    "apply_fir_batch",
    "convolve_nfft",
    "fft_convolve",
    "fft_convolve_batch",
    "frequency_response",
    "group_delay_samples",
]


def _sinc_kernel(num_taps: int, cutoff_norm: float) -> np.ndarray:
    """Ideal low-pass impulse response, cutoff as a fraction of fs/2... of fs.

    ``cutoff_norm`` is the cutoff frequency divided by the sample rate
    (0 < cutoff_norm < 0.5).  The kernel is centred on ``(num_taps-1)/2``.
    """
    n = np.arange(num_taps) - (num_taps - 1) / 2.0
    return 2.0 * cutoff_norm * np.sinc(2.0 * cutoff_norm * n)


def _validate_design(num_taps: int, cutoff: float, sample_rate: float) -> float:
    if num_taps < 3:
        raise ValueError(f"num_taps must be >= 3, got {num_taps}")
    ensure_positive(sample_rate, "sample_rate")
    ensure_positive(cutoff, "cutoff")
    cutoff_norm = cutoff / sample_rate
    if cutoff_norm >= 0.5:
        raise ValueError(
            f"cutoff {cutoff} must be below Nyquist ({sample_rate / 2}); "
            f"got normalized cutoff {cutoff_norm}"
        )
    return cutoff_norm


def lowpass_taps(
    num_taps: int, cutoff: float, sample_rate: float, window: WindowSpec = "hamming"
) -> np.ndarray:
    """Design a linear-phase low-pass FIR by the windowed-sinc method.

    ``cutoff`` is the single-sided cutoff frequency in Hz (the -6 dB point
    of the resulting filter).  For a complex baseband signal this keeps the
    band ``|f| <= cutoff``.  DC gain is normalized to exactly 1.
    """
    cutoff_norm = _validate_design(num_taps, cutoff, sample_rate)
    taps = _sinc_kernel(num_taps, cutoff_norm) * get_window(window, num_taps)
    return taps / taps.sum()


def highpass_taps(
    num_taps: int, cutoff: float, sample_rate: float, window: WindowSpec = "hamming"
) -> np.ndarray:
    """Design a linear-phase high-pass FIR (spectral inversion of a LPF).

    Requires an odd ``num_taps`` so the delta at the centre tap lands on an
    integer sample.
    """
    if num_taps % 2 == 0:
        raise ValueError("highpass_taps requires an odd num_taps")
    lp = lowpass_taps(num_taps, cutoff, sample_rate, window)
    hp = -lp
    hp[(num_taps - 1) // 2] += 1.0
    return hp


def bandpass_taps(
    num_taps: int, low: float, high: float, sample_rate: float, window: WindowSpec = "hamming"
) -> np.ndarray:
    """Design a real-coefficient band-pass FIR for the band [low, high] Hz."""
    if not 0 < low < high:
        raise ValueError(f"need 0 < low < high, got low={low}, high={high}")
    centre = (low + high) / 2.0
    half_width = (high - low) / 2.0
    lp = lowpass_taps(num_taps, half_width, sample_rate, window)
    n = np.arange(num_taps) - (num_taps - 1) / 2.0
    shifted = lp * 2.0 * np.cos(2 * np.pi * centre / sample_rate * n)
    return shifted


def bandstop_taps(
    num_taps: int, low: float, high: float, sample_rate: float, window: WindowSpec = "hamming"
) -> np.ndarray:
    """Design a band-stop (notch) FIR for the band [low, high] Hz.

    Requires an odd ``num_taps``.  Useful as a crude alternative to the
    eq.-3 whitening excision filter when the jammer band is known exactly.
    """
    if num_taps % 2 == 0:
        raise ValueError("bandstop_taps requires an odd num_taps")
    bp = bandpass_taps(num_taps, low, high, sample_rate, window)
    bs = -bp
    bs[(num_taps - 1) // 2] += 1.0
    return bs


def estimate_num_taps(transition_width: float, sample_rate: float, attenuation_db: float = 70.0) -> int:
    """Estimate the FIR length for a target transition width and attenuation.

    Uses the Kaiser/Harris approximation ``N ~= A / (22 * dF/fs)`` (with A
    in dB), the same rule of thumb GNU Radio's ``firdes`` applies.  The
    paper reports a filter order of 3181 for a 10 kHz transition at 70 dB
    on 20 MS/s; this estimate lands in the same range.

    The returned length is always odd so the designed filters are type-I
    linear phase.
    """
    ensure_positive(transition_width, "transition_width")
    ensure_positive(sample_rate, "sample_rate")
    ensure_positive(attenuation_db, "attenuation_db")
    n = int(math.ceil(attenuation_db / (22.0 * transition_width / sample_rate)))
    if n % 2 == 0:
        n += 1
    return max(n, 3)


def _next_fast_len(n: int) -> int:
    """Smallest power of two >= n (good enough FFT sizing for our use)."""
    return 1 << (n - 1).bit_length()


def _default_block_size(n: int, k: int) -> int:
    """Overlap-save FFT block length for an ``n``-sample signal, ``k`` taps.

    ~8x the filter length amortizes the overlap, but never longer than the
    whole convolution needs: BHSS hop segments are often just a few hundred
    samples, and padding them into a fixed 4096-point block wastes most of
    the transform.  The serial and batched paths share this choice (it is
    part of the numerics), so they stay bit-identical to each other.
    """
    return min(_next_fast_len(max(8 * k, 4096)), _next_fast_len(n + k - 1))


def convolve_nfft(n: int, k: int) -> int:
    """The FFT length :func:`fft_convolve` uses for signal/taps lengths
    ``n``/``k`` — exposed so callers can precompute a taps spectrum."""
    return _next_fast_len(n + k - 1)


def fft_convolve(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Full linear convolution via a single FFT (both inputs in memory)."""
    x = np.asarray(x)
    taps = np.asarray(taps)
    n_out = x.size + taps.size - 1
    nfft = _next_fast_len(n_out)
    spec = np.fft.fft(x, nfft) * np.fft.fft(taps, nfft)
    out = np.fft.ifft(spec)[:n_out]
    if np.isrealobj(x) and np.isrealobj(taps):
        return out.real
    return out


def fft_convolve_batch(
    signals: np.ndarray, taps: np.ndarray, taps_fft: np.ndarray | None = None
) -> np.ndarray:
    """Row-wise :func:`fft_convolve` on a stack of equal-length signals.

    ``signals`` has shape ``(R, N)`` (leading batch axis); ``taps`` is
    either 1-D (shared by every row) or 2-D ``(R, K)`` (one filter per
    row).  Row ``i`` of the output is bit-identical to
    ``fft_convolve(signals[i], taps_i)``: the FFT length depends only on
    ``N`` and ``K`` (identical across the batch), and NumPy's pocketfft
    computes stacked transforms row by row with the same kernels it uses
    for a single 1-D transform.

    ``taps_fft``, when given, must be ``np.fft.fft(taps,
    convolve_nfft(N, K), axis=-1)`` precomputed by the caller (e.g. the
    cached pulse spectrum) — it skips the taps transform without changing
    a single bit of the result.
    """
    x = np.asarray(signals)
    h = np.asarray(taps)
    if x.ndim != 2:
        raise ValueError(f"signals must be 2-D (batch, samples), got shape {x.shape}")
    if h.ndim == 2 and h.shape[0] != x.shape[0]:
        raise ValueError(
            f"per-row taps batch {h.shape[0]} does not match signal batch {x.shape[0]}"
        )
    if h.ndim not in (1, 2):
        raise ValueError(f"taps must be 1-D or 2-D, got shape {h.shape}")
    if h.shape[-1] == 0:
        raise ValueError(f"taps must be non-empty, got shape {h.shape}")
    rows, n = x.shape
    if rows == 0 or n == 0:
        # Same early-return as apply_fir_batch: a coerced copy of the
        # empty input, so the two share empty-input dtype and shape.
        empty = (
            x.astype(np.complex128, copy=False)
            if np.iscomplexobj(x)
            else x.astype(np.float64, copy=False)
        )
        return empty.copy()
    nfft = _next_fast_len(n + h.shape[-1] - 1)
    if taps_fft is not None:
        tf = np.asarray(taps_fft)
        if tf.ndim not in (1, 2):
            raise ValueError(f"taps_fft must be 1-D or 2-D, got shape {tf.shape}")
        if tf.ndim == 2 and tf.shape[0] != x.shape[0]:
            raise ValueError(
                f"per-row taps_fft batch {tf.shape[0]} does not match signal batch {x.shape[0]}"
            )
        if tf.shape[-1] != nfft:
            raise ValueError(
                f"taps_fft length {tf.shape[-1]} does not match the "
                f"convolution FFT length {nfft}"
            )
        taps_fft = tf
    out: np.ndarray = dispatch("fft_convolve", "fft_convolve_batch", x, h, taps_fft)
    return out


def _fft_convolve_batch_reference(
    x: np.ndarray, h: np.ndarray, taps_fft: np.ndarray | None
) -> np.ndarray:
    """The NumPy oracle kernel of :func:`fft_convolve_batch` (validated inputs)."""
    n_out = x.shape[1] + h.shape[-1] - 1
    nfft = _next_fast_len(n_out)
    if taps_fft is None:
        taps_fft = np.fft.fft(h, nfft, axis=-1)
    spec = np.fft.fft(x, nfft, axis=-1) * taps_fft
    out = np.fft.ifft(spec, axis=-1)[:, :n_out]
    if np.isrealobj(x) and np.isrealobj(h):
        return out.real
    return out


def apply_fir_batch(
    signals: np.ndarray,
    taps: np.ndarray,
    mode: str = "compensated",
    block_size: int | None = None,
) -> np.ndarray:
    """Row-wise :func:`apply_fir` on a stack of equal-length signals.

    ``signals`` has shape ``(R, N)``; ``taps`` is 1-D (one filter shared
    by all rows — e.g. the eq.-4 low-pass of a segment group) or 2-D
    ``(R, K)`` (one filter per row — e.g. per-block eq.-3 excision taps).
    Row ``i`` of the output is bit-identical to
    ``apply_fir(signals[i], taps_i, mode, block_size)``: the overlap-save
    block geometry depends only on ``N``, ``K`` and ``block_size`` — all
    identical across the batch — so every row sees exactly the serial
    sequence of FFT lengths and block boundaries.
    """
    x = np.asarray(signals)
    if x.ndim != 2:
        raise ValueError(f"signals must be 2-D (batch, samples), got shape {x.shape}")
    x = x.astype(np.complex128, copy=False) if np.iscomplexobj(x) else x.astype(np.float64, copy=False)
    h = np.asarray(taps)
    if h.ndim == 2 and h.shape[0] != x.shape[0]:
        raise ValueError(
            f"per-row taps batch {h.shape[0]} does not match signal batch {x.shape[0]}"
        )
    if h.ndim not in (1, 2) or h.shape[-1] == 0:
        raise ValueError("taps must be a non-empty 1-D or 2-D array")
    rows, n = x.shape
    if n == 0 or rows == 0:
        return x.copy()
    if mode not in ("compensated", "same", "full"):
        raise ValueError(f"unknown mode {mode!r}; expected 'compensated', 'same', or 'full'")
    out: np.ndarray = dispatch("apply_fir", "apply_fir_batch", x, h, mode, block_size)
    return out


def _apply_fir_batch_reference(
    x: np.ndarray, h: np.ndarray, mode: str, block_size: int | None
) -> np.ndarray:
    """The NumPy oracle kernel of :func:`apply_fir_batch` (validated inputs)."""
    rows, n = x.shape
    k = h.shape[-1]
    if block_size is None:
        block_size = _default_block_size(n, k)
    nfft = max(_next_fast_len(k), block_size)
    step = nfft - (k - 1)
    if step <= 0:
        nfft = _next_fast_len(2 * k)
        step = nfft - (k - 1)

    hf = np.fft.fft(h, nfft, axis=-1)  # (nfft,) or (R, nfft) — broadcasts either way
    n_out = n + k - 1
    complex_out = np.iscomplexobj(x) or np.iscomplexobj(h)
    out = np.empty((rows, n_out), dtype=np.complex128 if complex_out else np.float64)

    # Zero-pad far enough that every overlap-save block is a plain view —
    # the trailing zeros are exactly what the serial path appends blockwise.
    num_blocks = -(-n_out // step)
    padded = np.zeros((rows, (num_blocks - 1) * step + nfft), dtype=x.dtype)
    padded[:, k - 1 : k - 1 + n] = x
    pos = 0
    while pos < n_out:
        block = padded[:, pos : pos + nfft]
        y = np.fft.ifft(np.fft.fft(block, axis=-1) * hf, axis=-1)
        take = min(step, n_out - pos)
        chunk = y[:, k - 1 : k - 1 + take]
        out[:, pos : pos + take] = chunk if complex_out else chunk.real
        pos += take

    if mode == "full":
        return out
    if mode == "same":
        start = (k - 1) // 2
        return out[:, start : start + n]
    if mode == "compensated":
        delay = (k - 1) // 2
        return out[:, delay : delay + n]
    raise ValueError(f"unknown mode {mode!r}; expected 'compensated', 'same', or 'full'")


def apply_fir(signal: np.ndarray, taps: np.ndarray, mode: str = "compensated", block_size: int | None = None) -> np.ndarray:
    """Filter ``signal`` with FIR ``taps`` using overlap-save convolution.

    Modes:

    * ``"compensated"`` (default): output has the same length as the input
      and the filter's group delay of ``(len(taps)-1)/2`` samples removed,
      so sample ``k`` of the output aligns with sample ``k`` of the input.
      This is what the receiver chain wants: despreading correlators stay
      aligned with the hop schedule.
    * ``"same"``: same length as input, no delay compensation (like
      ``numpy.convolve(..., "same")`` only for odd tap counts).
    * ``"full"``: full linear convolution of length ``N + K - 1``.

    ``block_size`` overrides the overlap-save FFT block length (mostly for
    tests); by default a block of ~8x the filter length is used, capped at
    the length of the full convolution (short hop segments do not pay for
    a full-size block).
    """
    x = as_complex_array(signal) if np.iscomplexobj(signal) else np.asarray(signal, dtype=float)
    h = np.asarray(taps)
    if h.ndim != 1 or h.size == 0:
        raise ValueError("taps must be a non-empty 1-D array")
    if x.size == 0:
        return x.copy()

    k = h.size
    if block_size is None:
        block_size = _default_block_size(x.size, k)
    nfft = max(_next_fast_len(k), block_size)
    step = nfft - (k - 1)
    if step <= 0:
        nfft = _next_fast_len(2 * k)
        step = nfft - (k - 1)

    hf = np.fft.fft(h, nfft)
    n_out = x.size + k - 1
    complex_out = np.iscomplexobj(x) or np.iscomplexobj(h)
    out = np.empty(n_out, dtype=np.complex128 if complex_out else np.float64)

    # Overlap-save: prepend k-1 zeros, process blocks of `nfft` advancing by
    # `step`, keep the last `step` samples of each block's circular result.
    padded = np.concatenate([np.zeros(k - 1, dtype=x.dtype), x, np.zeros(step, dtype=x.dtype)])
    pos = 0
    while pos < n_out:
        block = padded[pos : pos + nfft]
        if block.size < nfft:
            block = np.concatenate([block, np.zeros(nfft - block.size, dtype=x.dtype)])
        y = np.fft.ifft(np.fft.fft(block) * hf)
        take = min(step, n_out - pos)
        chunk = y[k - 1 : k - 1 + take]
        out[pos : pos + take] = chunk if complex_out else chunk.real
        pos += take

    if mode == "full":
        return out
    if mode == "same":
        start = (k - 1) // 2
        return out[start : start + x.size]
    if mode == "compensated":
        delay = (k - 1) // 2
        return out[delay : delay + x.size]
    raise ValueError(f"unknown mode {mode!r}; expected 'compensated', 'same', or 'full'")


def frequency_response(
    taps: np.ndarray, num_points: int = 1024, sample_rate: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Complex frequency response of an FIR on a two-sided frequency grid.

    Returns ``(freqs, response)`` with frequencies in Hz spanning
    ``[-fs/2, fs/2)`` (fftshifted), matching how the PSD estimators report
    complex-baseband spectra.
    """
    h = np.asarray(taps)
    resp = np.fft.fftshift(np.fft.fft(h, num_points))
    freqs = np.fft.fftshift(np.fft.fftfreq(num_points, d=1.0 / sample_rate))
    return freqs, resp


def group_delay_samples(taps: np.ndarray) -> float:
    """Group delay of a linear-phase FIR, in samples: ``(N-1)/2``."""
    n = np.asarray(taps).size
    if n == 0:
        raise ValueError("empty filter has no group delay")
    return (n - 1) / 2.0
