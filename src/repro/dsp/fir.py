"""FIR filter design and application.

The BHSS receiver uses two FIR structures (paper, Section 4.2):

* a **low-pass filter** at the current signal bandwidth, applied when the
  jammer is wide-band (eq. 4) — designed here by the windowed-sinc method;
* an **excision (whitening) filter**, applied when the jammer is
  narrow-band (eq. 3) — designed in :mod:`repro.dsp.excision`.

Filters are applied with overlap-save fast convolution, written directly on
top of ``numpy.fft`` (the simulation filters millions of samples per packet
sweep, so direct convolution is not an option).
"""

from __future__ import annotations

import math

import numpy as np

from repro.dsp.windows import get_window
from repro.utils.validation import as_complex_array, ensure_positive

__all__ = [
    "lowpass_taps",
    "highpass_taps",
    "bandpass_taps",
    "bandstop_taps",
    "estimate_num_taps",
    "apply_fir",
    "fft_convolve",
    "frequency_response",
    "group_delay_samples",
]


def _sinc_kernel(num_taps: int, cutoff_norm: float) -> np.ndarray:
    """Ideal low-pass impulse response, cutoff as a fraction of fs/2... of fs.

    ``cutoff_norm`` is the cutoff frequency divided by the sample rate
    (0 < cutoff_norm < 0.5).  The kernel is centred on ``(num_taps-1)/2``.
    """
    n = np.arange(num_taps) - (num_taps - 1) / 2.0
    return 2.0 * cutoff_norm * np.sinc(2.0 * cutoff_norm * n)


def _validate_design(num_taps: int, cutoff: float, sample_rate: float) -> float:
    if num_taps < 3:
        raise ValueError(f"num_taps must be >= 3, got {num_taps}")
    ensure_positive(sample_rate, "sample_rate")
    ensure_positive(cutoff, "cutoff")
    cutoff_norm = cutoff / sample_rate
    if cutoff_norm >= 0.5:
        raise ValueError(
            f"cutoff {cutoff} must be below Nyquist ({sample_rate / 2}); "
            f"got normalized cutoff {cutoff_norm}"
        )
    return cutoff_norm


def lowpass_taps(num_taps: int, cutoff: float, sample_rate: float, window="hamming") -> np.ndarray:
    """Design a linear-phase low-pass FIR by the windowed-sinc method.

    ``cutoff`` is the single-sided cutoff frequency in Hz (the -6 dB point
    of the resulting filter).  For a complex baseband signal this keeps the
    band ``|f| <= cutoff``.  DC gain is normalized to exactly 1.
    """
    cutoff_norm = _validate_design(num_taps, cutoff, sample_rate)
    taps = _sinc_kernel(num_taps, cutoff_norm) * get_window(window, num_taps)
    return taps / taps.sum()


def highpass_taps(num_taps: int, cutoff: float, sample_rate: float, window="hamming") -> np.ndarray:
    """Design a linear-phase high-pass FIR (spectral inversion of a LPF).

    Requires an odd ``num_taps`` so the delta at the centre tap lands on an
    integer sample.
    """
    if num_taps % 2 == 0:
        raise ValueError("highpass_taps requires an odd num_taps")
    lp = lowpass_taps(num_taps, cutoff, sample_rate, window)
    hp = -lp
    hp[(num_taps - 1) // 2] += 1.0
    return hp


def bandpass_taps(
    num_taps: int, low: float, high: float, sample_rate: float, window="hamming"
) -> np.ndarray:
    """Design a real-coefficient band-pass FIR for the band [low, high] Hz."""
    if not 0 < low < high:
        raise ValueError(f"need 0 < low < high, got low={low}, high={high}")
    centre = (low + high) / 2.0
    half_width = (high - low) / 2.0
    lp = lowpass_taps(num_taps, half_width, sample_rate, window)
    n = np.arange(num_taps) - (num_taps - 1) / 2.0
    shifted = lp * 2.0 * np.cos(2 * np.pi * centre / sample_rate * n)
    return shifted


def bandstop_taps(
    num_taps: int, low: float, high: float, sample_rate: float, window="hamming"
) -> np.ndarray:
    """Design a band-stop (notch) FIR for the band [low, high] Hz.

    Requires an odd ``num_taps``.  Useful as a crude alternative to the
    eq.-3 whitening excision filter when the jammer band is known exactly.
    """
    if num_taps % 2 == 0:
        raise ValueError("bandstop_taps requires an odd num_taps")
    bp = bandpass_taps(num_taps, low, high, sample_rate, window)
    bs = -bp
    bs[(num_taps - 1) // 2] += 1.0
    return bs


def estimate_num_taps(transition_width: float, sample_rate: float, attenuation_db: float = 70.0) -> int:
    """Estimate the FIR length for a target transition width and attenuation.

    Uses the Kaiser/Harris approximation ``N ~= A / (22 * dF/fs)`` (with A
    in dB), the same rule of thumb GNU Radio's ``firdes`` applies.  The
    paper reports a filter order of 3181 for a 10 kHz transition at 70 dB
    on 20 MS/s; this estimate lands in the same range.

    The returned length is always odd so the designed filters are type-I
    linear phase.
    """
    ensure_positive(transition_width, "transition_width")
    ensure_positive(sample_rate, "sample_rate")
    ensure_positive(attenuation_db, "attenuation_db")
    n = int(math.ceil(attenuation_db / (22.0 * transition_width / sample_rate)))
    if n % 2 == 0:
        n += 1
    return max(n, 3)


def _next_fast_len(n: int) -> int:
    """Smallest power of two >= n (good enough FFT sizing for our use)."""
    return 1 << (n - 1).bit_length()


def fft_convolve(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Full linear convolution via a single FFT (both inputs in memory)."""
    x = np.asarray(x)
    taps = np.asarray(taps)
    n_out = x.size + taps.size - 1
    nfft = _next_fast_len(n_out)
    spec = np.fft.fft(x, nfft) * np.fft.fft(taps, nfft)
    out = np.fft.ifft(spec)[:n_out]
    if np.isrealobj(x) and np.isrealobj(taps):
        return out.real
    return out


def apply_fir(signal: np.ndarray, taps: np.ndarray, mode: str = "compensated", block_size: int | None = None) -> np.ndarray:
    """Filter ``signal`` with FIR ``taps`` using overlap-save convolution.

    Modes:

    * ``"compensated"`` (default): output has the same length as the input
      and the filter's group delay of ``(len(taps)-1)/2`` samples removed,
      so sample ``k`` of the output aligns with sample ``k`` of the input.
      This is what the receiver chain wants: despreading correlators stay
      aligned with the hop schedule.
    * ``"same"``: same length as input, no delay compensation (like
      ``numpy.convolve(..., "same")`` only for odd tap counts).
    * ``"full"``: full linear convolution of length ``N + K - 1``.

    ``block_size`` overrides the overlap-save FFT block length (mostly for
    tests); by default a block of ~8x the filter length is used.
    """
    x = as_complex_array(signal) if np.iscomplexobj(signal) else np.asarray(signal, dtype=float)
    h = np.asarray(taps)
    if h.ndim != 1 or h.size == 0:
        raise ValueError("taps must be a non-empty 1-D array")
    if x.size == 0:
        return x.copy()

    k = h.size
    if block_size is None:
        block_size = _next_fast_len(max(8 * k, 4096))
    nfft = max(_next_fast_len(k), block_size)
    step = nfft - (k - 1)
    if step <= 0:
        nfft = _next_fast_len(2 * k)
        step = nfft - (k - 1)

    hf = np.fft.fft(h, nfft)
    n_out = x.size + k - 1
    complex_out = np.iscomplexobj(x) or np.iscomplexobj(h)
    out = np.empty(n_out, dtype=np.complex128 if complex_out else np.float64)

    # Overlap-save: prepend k-1 zeros, process blocks of `nfft` advancing by
    # `step`, keep the last `step` samples of each block's circular result.
    padded = np.concatenate([np.zeros(k - 1, dtype=x.dtype), x, np.zeros(step, dtype=x.dtype)])
    pos = 0
    while pos < n_out:
        block = padded[pos : pos + nfft]
        if block.size < nfft:
            block = np.concatenate([block, np.zeros(nfft - block.size, dtype=x.dtype)])
        y = np.fft.ifft(np.fft.fft(block) * hf)
        take = min(step, n_out - pos)
        chunk = y[k - 1 : k - 1 + take]
        out[pos : pos + take] = chunk if complex_out else chunk.real
        pos += take

    if mode == "full":
        return out
    if mode == "same":
        start = (k - 1) // 2
        return out[start : start + x.size]
    if mode == "compensated":
        delay = (k - 1) // 2
        return out[delay : delay + x.size]
    raise ValueError(f"unknown mode {mode!r}; expected 'compensated', 'same', or 'full'")


def frequency_response(taps: np.ndarray, num_points: int = 1024, sample_rate: float = 1.0):
    """Complex frequency response of an FIR on a two-sided frequency grid.

    Returns ``(freqs, response)`` with frequencies in Hz spanning
    ``[-fs/2, fs/2)`` (fftshifted), matching how the PSD estimators report
    complex-baseband spectra.
    """
    h = np.asarray(taps)
    resp = np.fft.fftshift(np.fft.fft(h, num_points))
    freqs = np.fft.fftshift(np.fft.fftfreq(num_points, d=1.0 / sample_rate))
    return freqs, resp


def group_delay_samples(taps: np.ndarray) -> float:
    """Group delay of a linear-phase FIR, in samples: ``(N-1)/2``."""
    n = np.asarray(taps).size
    if n == 0:
        raise ValueError("empty filter has no group delay")
    return (n - 1) / 2.0
