"""Excision (spectral-whitening) filter design — paper eq. (3).

When the jammer is narrower than the signal (``Bj < Bp``), the BHSS
receiver suppresses it *before* despreading with a FIR whose DFT is the
reciprocal of the square root of the estimated power spectral density at K
equally spaced frequencies:

    H(k) = 1 / sqrt(P(k/K * Rs)) * exp(-j pi (K-1)/K * k)

(Ketchum & Proakis 1982, as adopted by the paper).  The linear-phase term
``exp(-j pi (K-1) k / K)`` centres the impulse response at ``(K-1)/2``
samples, making the filter causal with a known group delay.  The filter
attenuates strongly wherever the jammer concentrates power and is roughly
flat elsewhere — it whitens the received spectrum.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.spectral import welch_psd
from repro.utils.validation import as_complex_array, ensure_positive

__all__ = [
    "excision_taps_from_psd",
    "excision_taps_from_psd_batch",
    "design_excision_filter",
    "whiten",
]


def excision_taps_from_psd(psd: np.ndarray, *, normalize: bool = True, floor_ratio: float = 1e-12) -> np.ndarray:
    """Build eq.-3 whitening FIR taps from a PSD sampled at K frequencies.

    Parameters
    ----------
    psd:
        Power spectral density at K equally spaced frequencies in *natural
        FFT order* (bin k corresponds to frequency ``k/K * Rs``), K >= 2.
    normalize:
        If true (default), scale the taps so that the *median* magnitude
        response is 1.  Eq. (3) fixes only the shape of ``|H|``; without a
        gain convention the filtered signal's scale would depend on the
        jammer power, which would upset downstream soft-decision
        correlators.  The median bin is dominated by the (flat) signal +
        noise floor, so this convention leaves the desired signal's level
        approximately unchanged.
    floor_ratio:
        PSD bins below ``floor_ratio * max(psd)`` are clipped before the
        reciprocal square root, bounding the filter's gain on empty bins.

    Returns
    -------
    numpy.ndarray
        Complex FIR taps of length K, centred at ``(K-1)/2``.
    """
    p = np.asarray(psd, dtype=float)
    if p.ndim != 1 or p.size < 2:
        raise ValueError(f"psd must be a 1-D array with >= 2 bins, got shape {p.shape}")
    if np.any(p < 0) or not np.all(np.isfinite(p)):
        raise ValueError("psd must be finite and non-negative")
    peak = p.max()
    if peak <= 0:
        raise ValueError("psd is identically zero; nothing to whiten")
    p = np.maximum(p, floor_ratio * peak)

    k_len = p.size
    k = np.arange(k_len)
    h_dft = (1.0 / np.sqrt(p)) * np.exp(-1j * np.pi * (k_len - 1) / k_len * k)
    if normalize:
        h_dft = h_dft / np.median(np.abs(h_dft))
    taps = np.fft.ifft(h_dft)
    return taps


def excision_taps_from_psd_batch(
    psd: np.ndarray, *, normalize: bool = True, floor_ratio: float = 1e-12
) -> np.ndarray:
    """Row-wise :func:`excision_taps_from_psd` for a stack of PSDs.

    ``psd`` has shape ``(R, K)``; returns complex taps of shape ``(R, K)``
    whose row ``i`` is bit-identical to
    ``excision_taps_from_psd(psd[i], ...)``.  All operations — the clip
    against ``floor_ratio * max``, the reciprocal square root, the
    linear-phase term, the per-row median normalization, and the final
    IFFT — are element- or row-wise, so stacking changes nothing.
    """
    p = np.asarray(psd, dtype=float)
    if p.ndim != 2 or p.shape[1] < 2:
        raise ValueError(f"psd must be a 2-D array with >= 2 bins per row, got shape {p.shape}")
    if np.any(p < 0) or not np.all(np.isfinite(p)):
        raise ValueError("psd must be finite and non-negative")
    peak = p.max(axis=-1)
    if np.any(peak <= 0):
        raise ValueError("psd is identically zero; nothing to whiten")
    p = np.maximum(p, floor_ratio * peak[:, None])

    k_len = p.shape[1]
    k = np.arange(k_len)
    h_dft = (1.0 / np.sqrt(p)) * np.exp(-1j * np.pi * (k_len - 1) / k_len * k)
    if normalize:
        h_dft = h_dft / np.median(np.abs(h_dft), axis=-1)[:, None]
    return np.fft.ifft(h_dft, axis=-1)


def design_excision_filter(
    received: np.ndarray,
    sample_rate: float,
    num_taps: int = 256,
    *,
    nperseg: int | None = None,
) -> np.ndarray:
    """Estimate the PSD of ``received`` (Welch) and return eq.-3 taps.

    ``num_taps`` is K, the number of equally spaced frequency samples of
    the desired response — and therefore the FIR length.  The Welch
    estimate is computed directly on a K-point grid so no interpolation is
    needed.
    """
    x = as_complex_array(received, "received")
    ensure_positive(sample_rate, "sample_rate")
    if num_taps < 8:
        raise ValueError(f"num_taps must be >= 8, got {num_taps}")
    if nperseg is None:
        nperseg = min(num_taps, x.size)
    _freqs, psd_shifted = welch_psd(x, sample_rate, nperseg=nperseg, nfft=num_taps)
    psd_natural = np.fft.ifftshift(psd_shifted)
    return excision_taps_from_psd(psd_natural)


def whiten(received: np.ndarray, sample_rate: float, num_taps: int = 256) -> np.ndarray:
    """One-shot convenience: design the eq.-3 filter on a block and apply it.

    Uses the delay-compensated overlap-save application from
    :func:`repro.dsp.fir.apply_fir`, so the output is sample-aligned with
    the input.
    """
    from repro.dsp.fir import apply_fir  # local import to avoid a cycle

    taps = design_excision_filter(received, sample_rate, num_taps)
    return apply_fir(received, taps, mode="compensated")
