"""Complex-baseband frequency shifting and phase rotation.

Used by the FHSS modem (carrier hopping), the channel impairments
(carrier-frequency offset) and the tone/sweep jammers.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_complex_array, ensure_positive

__all__ = ["frequency_shift", "frequency_shift_batch", "phase_rotate", "phase_rotate_batch", "chirp"]


def frequency_shift(x: np.ndarray, offset_hz: float, sample_rate: float, initial_phase: float = 0.0) -> np.ndarray:
    """Shift a complex baseband signal by ``offset_hz``.

    Multiplies by ``exp(j (2 pi offset t + phase))``.  A positive offset
    moves the spectrum towards positive frequencies.
    """
    x = as_complex_array(x)
    ensure_positive(sample_rate, "sample_rate")
    n = np.arange(x.size)
    return x * np.exp(1j * (2 * np.pi * offset_hz / sample_rate * n + initial_phase))


def frequency_shift_batch(
    x: np.ndarray,
    offset_hz: float | np.ndarray,
    sample_rate: float,
    initial_phase: float = 0.0,
) -> np.ndarray:
    """Row-wise :func:`frequency_shift` on a stack of equal-length signals.

    ``x`` has shape ``(R, N)``; ``offset_hz`` is a scalar (shared shift)
    or an ``(R,)`` vector (per-row shift).  Row ``i`` of the output is
    bit-identical to ``frequency_shift(x[i], offset_i, ...)`` — the
    complex exponential is evaluated with the same scalar arithmetic per
    row and the product is elementwise.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D (batch, samples), got shape {x.shape}")
    x = x.astype(np.complex128, copy=False)
    ensure_positive(sample_rate, "sample_rate")
    n = np.arange(x.shape[1])
    offset = np.asarray(offset_hz, dtype=float)
    if offset.ndim == 0:
        phase = 2 * np.pi * float(offset) / sample_rate * n + initial_phase
        return x * np.exp(1j * phase)
    if offset.shape != (x.shape[0],):
        raise ValueError(
            f"offset_hz must be scalar or shape ({x.shape[0]},), got {offset.shape}"
        )
    phase = 2 * np.pi * offset[:, None] / sample_rate * n[None, :] + initial_phase
    return x * np.exp(1j * phase)


def phase_rotate(x: np.ndarray, phase_rad: float) -> np.ndarray:
    """Rotate a complex signal by a constant phase."""
    return as_complex_array(x) * np.exp(1j * phase_rad)


def phase_rotate_batch(x: np.ndarray, phase_rad: float | np.ndarray) -> np.ndarray:
    """Row-wise :func:`phase_rotate`; ``phase_rad`` scalar or ``(R,)``."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D (batch, samples), got shape {x.shape}")
    x = x.astype(np.complex128, copy=False)
    phase = np.asarray(phase_rad, dtype=float)
    if phase.ndim == 0:
        return x * np.exp(1j * float(phase))
    if phase.shape != (x.shape[0],):
        raise ValueError(f"phase_rad must be scalar or shape ({x.shape[0]},), got {phase.shape}")
    return x * np.exp(1j * phase)[:, None]


def chirp(num_samples: int, f_start: float, f_stop: float, sample_rate: float, initial_phase: float = 0.0) -> np.ndarray:
    """Unit-amplitude complex linear chirp from ``f_start`` to ``f_stop``.

    The instantaneous frequency sweeps linearly across the block; used by
    the sweep jammer.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    ensure_positive(sample_rate, "sample_rate")
    t = np.arange(num_samples) / sample_rate
    duration = num_samples / sample_rate
    rate = (f_stop - f_start) / duration
    phase = 2 * np.pi * (f_start * t + 0.5 * rate * t**2) + initial_phase
    return np.exp(1j * phase)
