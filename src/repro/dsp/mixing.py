"""Complex-baseband frequency shifting and phase rotation.

Used by the FHSS modem (carrier hopping), the channel impairments
(carrier-frequency offset) and the tone/sweep jammers.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_complex_array, ensure_positive

__all__ = ["frequency_shift", "phase_rotate", "chirp"]


def frequency_shift(x: np.ndarray, offset_hz: float, sample_rate: float, initial_phase: float = 0.0) -> np.ndarray:
    """Shift a complex baseband signal by ``offset_hz``.

    Multiplies by ``exp(j (2 pi offset t + phase))``.  A positive offset
    moves the spectrum towards positive frequencies.
    """
    x = as_complex_array(x)
    ensure_positive(sample_rate, "sample_rate")
    n = np.arange(x.size)
    return x * np.exp(1j * (2 * np.pi * offset_hz / sample_rate * n + initial_phase))


def phase_rotate(x: np.ndarray, phase_rad: float) -> np.ndarray:
    """Rotate a complex signal by a constant phase."""
    return as_complex_array(x) * np.exp(1j * phase_rad)


def chirp(num_samples: int, f_start: float, f_stop: float, sample_rate: float, initial_phase: float = 0.0) -> np.ndarray:
    """Unit-amplitude complex linear chirp from ``f_start`` to ``f_stop``.

    The instantaneous frequency sweeps linearly across the block; used by
    the sweep jammer.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    ensure_positive(sample_rate, "sample_rate")
    t = np.arange(num_samples) / sample_rate
    duration = num_samples / sample_rate
    rate = (f_stop - f_start) / duration
    phase = 2 * np.pi * (f_start * t + 0.5 * rate * t**2) + initial_phase
    return np.exp(1j * phase)
