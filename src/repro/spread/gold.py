"""Gold code generation.

Gold codes are families of sequences with guaranteed low pairwise
cross-correlation, built by XOR-ing two m-sequences from a *preferred
pair* of LFSRs at all relative shifts.  They are the standard choice when
many spreading codes must coexist (GPS C/A, CDMA); here they back the
multi-code variants of the DSSS modem and give the tests a well-understood
cross-correlation target.
"""

from __future__ import annotations

import numpy as np

from repro.spread.pn import LFSR

__all__ = ["PREFERRED_PAIRS", "gold_family", "gold_code"]

#: Preferred-pair tap sets (degree -> (taps_a, taps_b)) that generate Gold
#: families with the three-valued cross-correlation bound.
PREFERRED_PAIRS: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = {
    5: ((5, 3), (5, 4, 3, 2)),
    6: ((6, 5), (6, 5, 2, 1)),
    7: ((7, 3), (7, 3, 2, 1)),
    9: ((9, 5), (9, 6, 4, 3)),
    10: ((10, 7), (10, 9, 8, 5)),
    11: ((11, 9), (11, 8, 5, 2)),
}


def _msequence_bits(degree: int, taps: tuple[int, ...]) -> np.ndarray:
    reg = LFSR(degree, taps=taps, state=1)
    return reg.bits(reg.period)


def gold_family(degree: int) -> np.ndarray:
    """All ``2**degree + 1`` Gold codes of a degree, as +-1 chip rows.

    Rows 0 and 1 are the two base m-sequences; rows ``2 + s`` are their XOR
    at relative shift ``s``.
    """
    if degree not in PREFERRED_PAIRS:
        raise ValueError(
            f"no preferred pair known for degree {degree}; supported: {sorted(PREFERRED_PAIRS)}"
        )
    taps_a, taps_b = PREFERRED_PAIRS[degree]
    a = _msequence_bits(degree, taps_a)
    b = _msequence_bits(degree, taps_b)
    n = a.size
    family = np.empty((n + 2, n), dtype=float)
    family[0] = 1.0 - 2.0 * a
    family[1] = 1.0 - 2.0 * b
    for shift in range(n):
        family[2 + shift] = 1.0 - 2.0 * (a ^ np.roll(b, -shift))
    return family


def gold_code(degree: int, index: int) -> np.ndarray:
    """A single Gold code by family index (see :func:`gold_family`)."""
    fam = gold_family(degree)
    if not 0 <= index < fam.shape[0]:
        raise ValueError(f"index must be in 0..{fam.shape[0] - 1}, got {index}")
    return fam[index]
