"""DSSS spreading and despreading.

Two modems are provided:

* :class:`SixteenAryDSSS` — the paper's PHY: 4-bit symbols map to one of
  sixteen 32-chip quasi-orthogonal sequences (802.15.4 style, spreading
  factor 8 = 9 dB).  Despreading is a bank of 16 correlators; the largest
  correlation decides the symbol.  A seeded PN scrambler overlays the
  public table so the on-air chips are unpredictable to the jammer.
* :class:`BPSKDSSS` — the textbook binary DSSS used by the theory section
  (eq. 5-8): each bit is multiplied by an L-chip PN sequence.  Used by the
  tests to measure the processing gain directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import dispatch
from repro.spread.chiptables import CHIPS_PER_SYMBOL, NUM_SYMBOLS, chip_table_pm
from repro.spread.pn import random_pn_sequence
from repro.utils.rng import derive_seed

__all__ = ["SixteenAryDSSS", "DespreadResult", "BPSKDSSS"]


@dataclass(frozen=True)
class DespreadResult:
    """Output of 16-ary despreading.

    Attributes
    ----------
    symbols:
        Decided 4-bit symbol values (0-15).
    scores:
        Correlation score matrix, shape ``(num_symbols, 16)`` — row ``i``
        holds the correlator-bank outputs for symbol slot ``i``.
    quality:
        Winning correlation normalized by the chip energy, one value per
        symbol; near 1.0 for clean reception, near 0 under heavy jamming.
    """

    symbols: np.ndarray
    scores: np.ndarray
    quality: np.ndarray


class SixteenAryDSSS:
    """802.15.4-style 16-ary DSSS spreader/despreader.

    Parameters
    ----------
    seed:
        Root seed for the PN scrambler.  ``None`` disables scrambling
        (chips follow the public table exactly).  Transmitter and receiver
        must use the same value — this is the pre-shared secret of the
        paper's system model.
    scramble_length:
        Period, in chips, of the scrambling sequence.  Defaults to a long
        period so the overlay does not visibly repeat within a packet.
    """

    chips_per_symbol = CHIPS_PER_SYMBOL
    num_symbols = NUM_SYMBOLS
    #: number of chips per information bit: 32 chips / 4 bits
    spreading_factor = CHIPS_PER_SYMBOL // 4

    def __init__(self, seed: int | None = None, scramble_length: int = 1 << 16) -> None:
        self._table = chip_table_pm()
        if seed is None:
            self._scrambler = None
        else:
            if scramble_length < CHIPS_PER_SYMBOL:
                raise ValueError(
                    f"scramble_length must be >= {CHIPS_PER_SYMBOL}, got {scramble_length}"
                )
            self._scrambler = random_pn_sequence(
                scramble_length, derive_seed(seed, "dsss-scrambler")
            )

    @property
    def processing_gain_db(self) -> float:
        """Processing gain of the spreading operation (~9 dB)."""
        return 10.0 * np.log10(self.spreading_factor)

    def _scramble_slice(self, start_chip: int, count: int) -> np.ndarray | None:
        if self._scrambler is None:
            return None
        idx = (start_chip + np.arange(count)) % self._scrambler.size
        return self._scrambler[idx]

    def _scramble_slice_batch(self, start_chips, count: int, rows: int) -> np.ndarray | None:
        """Scramble mask for a batch: shared (1-D) or per-row (2-D).

        A scalar ``start_chips`` gives the shared ``(count,)`` mask that
        broadcasts over the batch; an array gives one mask row per batch
        row, so segments at different chip offsets can share one stacked
        call.  Either way each row multiplies by exactly the values the
        serial :meth:`_scramble_slice` would produce.
        """
        if self._scrambler is None:
            return None
        starts = np.asarray(start_chips, dtype=int)
        if starts.ndim == 0:
            return self._scramble_slice(int(starts), count)
        if starts.shape != (rows,):
            raise ValueError(
                f"start_chip batch {starts.shape} does not match row count {rows}"
            )
        idx = (starts[:, None] + np.arange(count)) % self._scrambler.size
        return self._scrambler[idx]

    def spread(self, symbols: np.ndarray, start_chip: int = 0) -> np.ndarray:
        """Map 4-bit symbols to +-1 chips (scrambled if a seed was given).

        ``start_chip`` is the absolute chip index of the first output chip,
        used to keep the scrambler phase aligned when a packet is spread in
        segments (the BHSS transmitter spreads one hop at a time).
        """
        syms = np.asarray(symbols, dtype=int)
        if syms.ndim != 1:
            raise ValueError(f"symbols must be 1-D, got shape {syms.shape}")
        if syms.size and (syms.min() < 0 or syms.max() >= NUM_SYMBOLS):
            raise ValueError("symbols must be in 0..15")
        chips = self._table[syms].reshape(-1)
        mask = self._scramble_slice(start_chip, chips.size)
        if mask is not None:
            chips = chips * mask
        return chips

    def despread(self, soft_chips: np.ndarray, start_chip: int = 0) -> DespreadResult:
        """Correlate soft chip values against the 16-sequence bank.

        ``soft_chips`` are real-valued chip estimates (any scale); length
        must be a multiple of 32.  Scrambling is removed first when the
        modem was built with a seed.
        """
        soft = np.asarray(soft_chips, dtype=float)
        if soft.ndim != 1:
            raise ValueError(f"soft_chips must be 1-D, got shape {soft.shape}")
        if soft.size % CHIPS_PER_SYMBOL != 0:
            raise ValueError(
                f"soft_chips length {soft.size} is not a multiple of {CHIPS_PER_SYMBOL}"
            )
        mask = self._scramble_slice(start_chip, soft.size)
        if mask is not None:
            soft = soft * mask
        blocks = soft.reshape(-1, CHIPS_PER_SYMBOL)
        scores = blocks @ self._table.T  # (n_sym, 16)
        symbols = np.argmax(scores, axis=1)
        peak = scores[np.arange(scores.shape[0]), symbols]
        energy = np.sqrt(np.sum(blocks**2, axis=1) * CHIPS_PER_SYMBOL)
        quality = np.divide(peak, energy, out=np.zeros_like(peak), where=energy > 0)
        return DespreadResult(symbols=symbols, scores=scores, quality=quality)

    def spread_batch(self, symbols: np.ndarray, start_chip=0) -> np.ndarray:
        """Row-wise :meth:`spread` for a ``(R, n_sym)`` symbol stack.

        ``start_chip`` is either a scalar shared by all rows or an ``(R,)``
        array of per-row chip offsets (so segments from different points of
        the hop schedule can share one stacked call).  Row ``i`` of the
        ``(R, n_sym * 32)`` output is bit-identical to
        ``spread(symbols[i], start_chip[i])`` — table lookup and scramble
        overlay are elementwise.
        """
        syms = np.asarray(symbols, dtype=int)
        if syms.ndim != 2:
            raise ValueError(f"symbols must be 2-D, got shape {syms.shape}")
        if syms.size and (syms.min() < 0 or syms.max() >= NUM_SYMBOLS):
            raise ValueError("symbols must be in 0..15")
        if syms.shape[0] == 0:
            # Zero-row batches cannot reshape with an inferred axis; the
            # chip table and scramble mask are float64, so the non-empty
            # output dtype is known without touching them.
            return np.zeros((0, syms.shape[1] * CHIPS_PER_SYMBOL), dtype=np.float64)
        out: np.ndarray = dispatch("spread", "spread_batch", self, syms, start_chip)
        return out

    def _spread_batch_reference(self, syms: np.ndarray, start_chip) -> np.ndarray:
        """Reference core of :meth:`spread_batch` (validated, non-empty input)."""
        chips = self._table[syms].reshape(syms.shape[0], -1)
        mask = self._scramble_slice_batch(start_chip, chips.shape[1], chips.shape[0])
        if mask is not None:
            chips = chips * mask
        return chips

    def despread_batch(self, soft_chips: np.ndarray, start_chip=0) -> DespreadResult:
        """Row-wise :meth:`despread` for a ``(R, n_chips)`` stack.

        ``start_chip`` is a shared scalar or an ``(R,)`` array of per-row
        chip offsets, as in :meth:`spread_batch`.  Returns a
        :class:`DespreadResult` whose fields carry a leading batch axis:
        ``symbols`` is ``(R, n_sym)``, ``scores`` is ``(R, n_sym, 16)``,
        ``quality`` is ``(R, n_sym)``.  Each row is bit-identical to the
        serial :meth:`despread` of that row: the stacked correlator matmul
        evaluates the same dot products, and the chip-energy reduction
        runs over the same (last) axis.
        """
        soft = np.asarray(soft_chips, dtype=float)
        if soft.ndim != 2:
            raise ValueError(f"soft_chips must be 2-D, got shape {soft.shape}")
        if soft.shape[1] % CHIPS_PER_SYMBOL != 0:
            raise ValueError(
                f"soft_chips width {soft.shape[1]} is not a multiple of {CHIPS_PER_SYMBOL}"
            )
        if soft.shape[0] == 0:
            # Zero-row batches cannot reshape with an inferred axis; build
            # the empty result with the dtypes the non-empty path yields.
            n_sym = soft.shape[1] // CHIPS_PER_SYMBOL
            return DespreadResult(
                symbols=np.zeros((0, n_sym), dtype=np.intp),
                scores=np.zeros((0, n_sym, NUM_SYMBOLS), dtype=np.float64),
                quality=np.zeros((0, n_sym), dtype=np.float64),
            )
        out: DespreadResult = dispatch("despread", "despread_batch", self, soft, start_chip)
        return out

    def _despread_batch_reference(self, soft: np.ndarray, start_chip) -> DespreadResult:
        """Reference core of :meth:`despread_batch` (validated, non-empty input)."""
        mask = self._scramble_slice_batch(start_chip, soft.shape[1], soft.shape[0])
        if mask is not None:
            soft = soft * mask
        blocks = soft.reshape(soft.shape[0], -1, CHIPS_PER_SYMBOL)
        scores = blocks @ self._table.T  # (R, n_sym, 16)
        symbols = np.argmax(scores, axis=-1)
        peak = np.take_along_axis(scores, symbols[:, :, None], axis=-1)[:, :, 0]
        energy = np.sqrt(np.sum(blocks**2, axis=-1) * CHIPS_PER_SYMBOL)
        quality = np.divide(peak, energy, out=np.zeros_like(peak), where=energy > 0)
        return DespreadResult(symbols=symbols, scores=scores, quality=quality)


class BPSKDSSS:
    """Textbook binary DSSS: each bit is spread by an L-chip PN sequence.

    This is the ``p(k)`` model of the paper's analysis (Section 5): white
    +-1 chips, L chips per information bit, correlation receiver.  The PN
    stream is a long seeded sequence, not a repeated short code, so the
    spread signal is white over any analysis window.
    """

    def __init__(self, spreading_factor: int, seed: int = 0) -> None:
        if spreading_factor < 1:
            raise ValueError(f"spreading_factor must be >= 1, got {spreading_factor}")
        self.spreading_factor = int(spreading_factor)
        self._seed = seed

    @property
    def processing_gain_db(self) -> float:
        """Processing gain L in dB."""
        return 10.0 * np.log10(self.spreading_factor)

    def _pn(self, start_chip: int, count: int) -> np.ndarray:
        # Deterministic random access into a conceptually infinite PN
        # stream: regenerate the needed span from the seed.  Spans are
        # requested sequentially in practice, so generation cost is linear.
        full = random_pn_sequence(start_chip + count, derive_seed(self._seed, "bpsk-pn"))
        return full[start_chip:]

    def spread(self, bits: np.ndarray, start_chip: int = 0) -> np.ndarray:
        """Spread +-1 (or 0/1) bits into +-1 chips."""
        b = np.asarray(bits)
        if b.ndim != 1:
            raise ValueError("bits must be 1-D")
        levels = np.where(b > 0, 1.0, -1.0) if b.dtype != np.float64 else np.sign(b)
        levels = np.where(levels == 0, 1.0, levels)
        chips = np.repeat(levels, self.spreading_factor)
        return chips * self._pn(start_chip, chips.size)

    def despread(self, soft_chips: np.ndarray, start_chip: int = 0) -> np.ndarray:
        """Correlate chips back to soft bit decisions (sign = bit)."""
        soft = np.asarray(soft_chips, dtype=float)
        if soft.size % self.spreading_factor != 0:
            raise ValueError(
                f"length {soft.size} not a multiple of L={self.spreading_factor}"
            )
        soft = soft * self._pn(start_chip, soft.size)
        return soft.reshape(-1, self.spreading_factor).sum(axis=1)
