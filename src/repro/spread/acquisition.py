"""Code-phase acquisition for direct-sequence signals.

A classic spread-spectrum receiver component the frame-level preamble
detector sits on top of: before any despreading can happen, the receiver
must find the *chip offset* of the incoming PN stream relative to its
local replica.  This module implements the standard FFT-based parallel
search — correlate the received chips against the replica at every
circular lag at once — plus a detection test against the noise floor.

(Used directly by the :class:`repro.spread.BPSKDSSS` textbook modem; the
BHSS frame path gets the equivalent service from the preamble detector,
which works at waveform level.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import as_float_array

__all__ = ["CodeAcquisition", "acquire_code_phase"]


@dataclass(frozen=True)
class CodeAcquisition:
    """Result of a code-phase search.

    Attributes
    ----------
    offset:
        Estimated chip lag of the received stream relative to the
        replica (``None`` if the detection test failed).
    metric:
        Peak-to-second-peak ratio of the correlation magnitude — the
        standard acquisition confidence measure (>~2 is a solid lock).
    correlation:
        Full circular correlation magnitude (diagnostic).
    """

    offset: int | None
    metric: float
    correlation: np.ndarray

    @property
    def acquired(self) -> bool:
        """Whether the detection test passed."""
        return self.offset is not None


def acquire_code_phase(
    received_chips,
    replica_chips,
    threshold: float = 2.0,
) -> CodeAcquisition:
    """Find the circular chip offset of ``replica_chips`` in ``received_chips``.

    Both inputs are real chip-rate sequences of equal length (one code
    period, or any window the caller chooses).  The search computes the
    circular cross-correlation via FFTs — every lag in O(N log N) — and
    accepts the peak if it exceeds ``threshold`` times the second-highest
    (non-adjacent) peak.
    """
    x = as_float_array(received_chips, "received_chips")
    c = as_float_array(replica_chips, "replica_chips")
    if x.size != c.size:
        raise ValueError(f"length mismatch: {x.size} vs {c.size}")
    if x.size < 8:
        raise ValueError("need at least 8 chips to acquire")
    if threshold <= 1.0:
        raise ValueError(f"threshold must exceed 1, got {threshold}")

    spec = np.fft.fft(x) * np.conj(np.fft.fft(c))
    corr = np.abs(np.fft.ifft(spec))
    peak_idx = int(np.argmax(corr))
    peak = float(corr[peak_idx])

    # second peak: exclude the main peak and its immediate neighbours
    mask = np.ones(corr.size, dtype=bool)
    for d in (-1, 0, 1):
        mask[(peak_idx + d) % corr.size] = False
    second = float(corr[mask].max()) if mask.any() else 0.0
    metric = peak / second if second > 0 else float("inf")

    if metric < threshold:
        return CodeAcquisition(offset=None, metric=metric, correlation=corr)
    return CodeAcquisition(offset=peak_idx, metric=metric, correlation=corr)
