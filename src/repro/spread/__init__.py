"""Spreading substrate: PN/m-sequences, Gold codes, 16-ary DSSS (802.15.4
style), binary DSSS, and an FHSS modem."""

from repro.spread.pn import LFSR, MAXIMAL_TAPS, autocorrelation, lfsr_sequence, random_pn_sequence
from repro.spread.gold import PREFERRED_PAIRS, gold_code, gold_family
from repro.spread.chiptables import (
    BASE_CHIP_BITS,
    CHIPS_PER_SYMBOL,
    NUM_SYMBOLS,
    chip_table_pm,
    ieee802154_chip_table,
    min_pairwise_hamming,
)
from repro.spread.dsss import BPSKDSSS, DespreadResult, SixteenAryDSSS
from repro.spread.fhss import FHSSChannelPlan, FHSSModem
from repro.spread.acquisition import CodeAcquisition, acquire_code_phase

__all__ = [
    "LFSR",
    "MAXIMAL_TAPS",
    "lfsr_sequence",
    "random_pn_sequence",
    "autocorrelation",
    "gold_family",
    "gold_code",
    "PREFERRED_PAIRS",
    "BASE_CHIP_BITS",
    "CHIPS_PER_SYMBOL",
    "NUM_SYMBOLS",
    "ieee802154_chip_table",
    "chip_table_pm",
    "min_pairwise_hamming",
    "SixteenAryDSSS",
    "BPSKDSSS",
    "DespreadResult",
    "FHSSChannelPlan",
    "FHSSModem",
    "CodeAcquisition",
    "acquire_code_phase",
]
