"""Pseudo-noise sequence generation (LFSR m-sequences and seeded PN chips).

DSSS spreads symbols with a pseudo-random +-1 chip sequence that the
receiver can replicate from a shared seed.  Two generators are provided:

* :class:`LFSR` — a Fibonacci linear-feedback shift register with maximal-
  length tap sets for common register sizes.  m-sequences have the classic
  two-valued autocorrelation (N vs -1) that makes code acquisition sharp.
* :func:`random_pn_sequence` — chips drawn from a seeded
  ``numpy.random.Generator``; cryptographically stronger in spirit (the
  paper's security model needs chips unpredictable to the jammer) and the
  default for the BHSS link.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["LFSR", "MAXIMAL_TAPS", "lfsr_sequence", "random_pn_sequence", "autocorrelation"]

#: Maximal-length tap positions (1-indexed from the output stage) for
#: Fibonacci LFSRs.  Values are the classic primitive-polynomial taps.
MAXIMAL_TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
}


class LFSR:
    """Fibonacci linear-feedback shift register over GF(2).

    Parameters
    ----------
    degree:
        Register length in bits.  With the default taps (from
        :data:`MAXIMAL_TAPS`) the output is an m-sequence of period
        ``2**degree - 1``.
    taps:
        Optional explicit tap positions (1-indexed, as in the polynomial
        exponents).  Overrides the maximal-length table.
    state:
        Initial register contents as an integer (non-zero).  Defaults to 1.
    """

    def __init__(self, degree: int, taps: tuple[int, ...] | None = None, state: int = 1) -> None:
        if taps is None:
            if degree not in MAXIMAL_TAPS:
                raise ValueError(
                    f"no maximal-length taps known for degree {degree}; "
                    f"supported: {sorted(MAXIMAL_TAPS)} (or pass taps explicitly)"
                )
            taps = MAXIMAL_TAPS[degree]
        if degree < 2:
            raise ValueError(f"degree must be >= 2, got {degree}")
        if any(t < 1 or t > degree for t in taps):
            raise ValueError(f"taps must be in 1..{degree}, got {taps}")
        if state <= 0 or state >= (1 << degree):
            raise ValueError(f"state must be in 1..{(1 << degree) - 1}, got {state}")
        self.degree = degree
        self.taps = tuple(sorted(set(taps), reverse=True))
        self.state = state

    @property
    def period(self) -> int:
        """Period of the output sequence for maximal taps: ``2**degree - 1``."""
        return (1 << self.degree) - 1

    def step(self) -> int:
        """Advance one step; return the output bit (0/1)."""
        out = self.state & 1
        feedback = 0
        for t in self.taps:
            feedback ^= (self.state >> (self.degree - t)) & 1
        self.state = (self.state >> 1) | (feedback << (self.degree - 1))
        return out

    def bits(self, count: int) -> np.ndarray:
        """Generate ``count`` output bits as a 0/1 uint8 array."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        out = np.empty(count, dtype=np.uint8)
        for i in range(count):
            out[i] = self.step()
        return out

    def chips(self, count: int) -> np.ndarray:
        """Generate ``count`` +-1 chips (bit 0 -> +1, bit 1 -> -1)."""
        return 1.0 - 2.0 * self.bits(count).astype(float)


def lfsr_sequence(degree: int, state: int = 1) -> np.ndarray:
    """One full period of an m-sequence as +-1 chips."""
    reg = LFSR(degree, state=state)
    return reg.chips(reg.period)


def random_pn_sequence(length: int, seed=None) -> np.ndarray:
    """Seeded +-1 PN chip sequence from a numpy Generator.

    Transmitter and receiver derive the identical sequence from the shared
    seed; the jammer, not knowing the seed, sees white chips.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    rng = make_rng(seed)
    return 1.0 - 2.0 * rng.integers(0, 2, size=length).astype(float)


def autocorrelation(chips: np.ndarray, circular: bool = True) -> np.ndarray:
    """Normalized autocorrelation of a +-1 chip sequence.

    With ``circular=True`` (default) returns the periodic autocorrelation,
    which for an m-sequence is ``1`` at lag 0 and ``-1/N`` elsewhere.
    """
    c = np.asarray(chips, dtype=float)
    if c.size == 0:
        raise ValueError("empty chip sequence")
    n = c.size
    if circular:
        spec = np.fft.fft(c)
        corr = np.fft.ifft(spec * np.conj(spec)).real
        return corr / n
    full = np.correlate(c, c, mode="full")
    return full[n - 1 :] / n
