"""IEEE 802.15.4-style 16-ary symbol-to-chip mapping.

The paper's SDR prototype uses "a 16-ary DSSS modulation similar to the one
used in IEEE 802.15.4": every 4-bit symbol maps to one of sixteen 32-chip
quasi-orthogonal sequences (spreading factor 8, processing gain ~9 dB).

The table is generated the way the 802.15.4-2011 O-QPSK PHY defines it:

* symbol 0 is a fixed base sequence;
* symbols 1-7 are the base cyclically right-rotated by 4 chips per step;
* symbols 8-15 are symbols 0-7 with every odd-indexed chip inverted
  (conjugation of the Q chips).

The family's pairwise Hamming distances are large enough that a bank of 16
correlators separates the symbols even at strongly negative chip SNR.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BASE_CHIP_BITS",
    "CHIPS_PER_SYMBOL",
    "NUM_SYMBOLS",
    "ieee802154_chip_table",
    "chip_table_pm",
    "min_pairwise_hamming",
]

#: The 802.15.4 base chip sequence (symbol 0), 32 bits.
BASE_CHIP_BITS: tuple[int, ...] = (
    1, 1, 0, 1, 1, 0, 0, 1,
    1, 1, 0, 0, 0, 0, 1, 1,
    0, 1, 0, 1, 0, 0, 1, 0,
    0, 0, 1, 0, 1, 1, 1, 0,
)

CHIPS_PER_SYMBOL = 32
NUM_SYMBOLS = 16


def ieee802154_chip_table() -> np.ndarray:
    """The 16 x 32 chip table as 0/1 bits (uint8)."""
    base = np.array(BASE_CHIP_BITS, dtype=np.uint8)
    table = np.empty((NUM_SYMBOLS, CHIPS_PER_SYMBOL), dtype=np.uint8)
    for k in range(8):
        table[k] = np.roll(base, 4 * k)
    odd = np.arange(CHIPS_PER_SYMBOL) % 2 == 1
    for k in range(8):
        row = table[k].copy()
        row[odd] ^= 1
        table[8 + k] = row
    return table


def chip_table_pm(table: np.ndarray | None = None) -> np.ndarray:
    """Chip table as +-1 floats (bit 0 -> +1, bit 1 -> -1)."""
    if table is None:
        table = ieee802154_chip_table()
    return 1.0 - 2.0 * np.asarray(table, dtype=float)


def min_pairwise_hamming(table: np.ndarray | None = None) -> int:
    """Minimum pairwise Hamming distance of the chip table rows."""
    if table is None:
        table = ieee802154_chip_table()
    t = np.asarray(table, dtype=np.int64)
    n = t.shape[0]
    best = t.shape[1]
    for i in range(n):
        for j in range(i + 1, n):
            best = min(best, int(np.sum(t[i] != t[j])))
    return best
