"""FHSS (frequency hopping spread spectrum) modem.

The FHSS baseline of the paper spreads by hopping a narrow-band signal's
carrier across sub-channels of a wide band; the receiver de-hops with the
shared pattern and band-pass filters, giving a processing gain equal to
the ratio of hop band to signal bandwidth (Section 7).

The modem here operates at complex baseband: the hop band is
``[-total_bandwidth/2, +total_bandwidth/2]``, divided into
``num_channels`` equal sub-channels, and the hop pattern is derived from a
shared seed exactly like the BHSS hop schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.fir import apply_fir, lowpass_taps
from repro.dsp.mixing import frequency_shift
from repro.utils.rng import child_rng
from repro.utils.validation import as_complex_array, ensure_positive

__all__ = ["FHSSChannelPlan", "FHSSModem"]


@dataclass(frozen=True)
class FHSSChannelPlan:
    """Division of a hop band into equal sub-channels.

    ``channel_bandwidth`` is ``total_bandwidth / num_channels`` and channel
    centres are placed symmetrically about 0 Hz.
    """

    total_bandwidth: float
    num_channels: int

    def __post_init__(self) -> None:
        ensure_positive(self.total_bandwidth, "total_bandwidth")
        if self.num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {self.num_channels}")

    @property
    def channel_bandwidth(self) -> float:
        """Width of one sub-channel in Hz."""
        return self.total_bandwidth / self.num_channels

    @property
    def processing_gain_db(self) -> float:
        """Hop-band / signal-band ratio in dB."""
        return 10.0 * np.log10(self.num_channels)

    def centre(self, channel: int) -> float:
        """Centre frequency of sub-channel ``channel`` (0-based), in Hz."""
        if not 0 <= channel < self.num_channels:
            raise ValueError(f"channel must be in 0..{self.num_channels - 1}, got {channel}")
        return (channel + 0.5) * self.channel_bandwidth - self.total_bandwidth / 2.0

    def centres(self) -> np.ndarray:
        """All sub-channel centre frequencies, in Hz."""
        return np.array([self.centre(c) for c in range(self.num_channels)])


class FHSSModem:
    """Seeded carrier hopper over an :class:`FHSSChannelPlan`.

    The modem is agnostic to the underlying narrow-band modulation: it
    takes per-hop baseband waveform segments (already at the sub-channel
    bandwidth), shifts each to its hop channel, and the receiver reverses
    the operation and low-pass filters to the sub-channel width.
    """

    def __init__(self, plan: FHSSChannelPlan, sample_rate: float, seed: int = 0, filter_taps: int = 129) -> None:
        self.plan = plan
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        if plan.total_bandwidth > sample_rate:
            raise ValueError(
                f"hop band {plan.total_bandwidth} exceeds sample rate {sample_rate}"
            )
        self.seed = seed
        cutoff = plan.channel_bandwidth / 2.0
        # The de-hop filter: half the sub-channel width each side.  A
        # degenerate single-channel plan needs no filtering.
        self._taps = (
            lowpass_taps(filter_taps, cutoff, sample_rate)
            if plan.num_channels > 1 and cutoff < sample_rate / 2
            else None
        )

    def channel_sequence(self, num_hops: int) -> np.ndarray:
        """The first ``num_hops`` hop-channel indices from the shared seed."""
        if num_hops < 0:
            raise ValueError(f"num_hops must be >= 0, got {num_hops}")
        rng = child_rng(self.seed, "fhss-hops")
        return rng.integers(0, self.plan.num_channels, size=num_hops)

    def hop_up(self, segments: list[np.ndarray]) -> np.ndarray:
        """Shift per-hop baseband segments to their hop channels and concatenate."""
        channels = self.channel_sequence(len(segments))
        out = []
        offset = 0
        for seg, ch in zip(segments, channels):
            seg = as_complex_array(seg, "segment")
            shifted = frequency_shift(seg, self.plan.centre(int(ch)), self.sample_rate)
            # keep the mixer phase continuous across segments
            out.append(shifted * np.exp(1j * 2 * np.pi * self.plan.centre(int(ch)) / self.sample_rate * offset))
            offset += seg.size
        return np.concatenate(out) if out else np.zeros(0, dtype=complex)

    def hop_down(self, waveform: np.ndarray, segment_lengths: list[int], filtered: bool = True) -> list[np.ndarray]:
        """De-hop a received waveform back to per-hop baseband segments.

        ``segment_lengths`` gives the per-hop sample counts (known from the
        shared schedule).  With ``filtered=True`` each segment is low-pass
        filtered to the sub-channel bandwidth after the shift — that filter
        is where FHSS's jamming suppression comes from.
        """
        x = as_complex_array(waveform, "waveform")
        if sum(segment_lengths) > x.size:
            raise ValueError("segment lengths exceed waveform length")
        channels = self.channel_sequence(len(segment_lengths))
        segments = []
        pos = 0
        for length, ch in zip(segment_lengths, channels):
            seg = x[pos : pos + length]
            centre = self.plan.centre(int(ch))
            down = frequency_shift(seg, -centre, self.sample_rate)
            down = down * np.exp(-1j * 2 * np.pi * centre / self.sample_rate * pos)
            if filtered and self._taps is not None:
                down = apply_fir(down, self._taps, mode="compensated")
            segments.append(down)
            pos += length
        return segments
