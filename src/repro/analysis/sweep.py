"""Parameter-sweep utilities shared by the benchmark harnesses.

Every experimental figure of the paper is a sweep (over bandwidth ratios,
jammer bandwidths, Eb/N0, hop patterns); these helpers keep the benchmark
files declarative: define the grid, get back a tidy list of records that
the table formatter and the CSV writer both consume.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.runtime import (
    ParallelExecutor,
    SweepCheckpoint,
    SweepTiming,
    canonical,
    make_checkpoint,
    resolve_checkpoint_dir,
    stable_hash,
)

__all__ = ["SweepResult", "run_sweep", "write_csv", "env_scale"]


@dataclass
class SweepResult:
    """A tidy table of sweep records.

    ``columns`` fixes the field order; ``rows`` holds one dict per grid
    point.  ``timing`` carries the sweep's wall-time telemetry when the
    result came out of :func:`run_sweep` (it does not participate in
    equality — two sweeps with identical rows are the same result).
    """

    columns: tuple[str, ...]
    rows: list[dict] = field(default_factory=list)
    timing: SweepTiming | None = field(default=None, repr=False, compare=False)

    def add(self, **record) -> None:
        """Append one record (must cover every column)."""
        missing = set(self.columns) - set(record)
        if missing:
            raise ValueError(f"record missing columns: {sorted(missing)}")
        self.rows.append({c: record[c] for c in self.columns})

    def column(self, name: str) -> list:
        """Extract one column as a list (in insertion order)."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [r[name] for r in self.rows]

    def filtered(self, **conditions) -> "SweepResult":
        """Records matching all equality conditions, as a new result."""
        rows = [r for r in self.rows if all(r.get(k) == v for k, v in conditions.items())]
        out = SweepResult(columns=self.columns)
        out.rows = rows
        return out

    def as_table_rows(self) -> list[list]:
        """Rows in column order, for the ASCII table formatter."""
        return [[r[c] for c in self.columns] for r in self.rows]


def _grid_key(columns: Sequence[str], points: list) -> str:
    """Canonical checkpoint key of a raw-grid sweep.

    Hashes the column names and the grid points; grids made of plain data
    (numbers, strings, tuples) hash directly, anything else needs an
    explicit ``checkpoint_key``.  Points whose canonical form falls back
    to ``repr`` are rejected rather than hashed: repr embeds the object
    id, so the key would change every run and resume would silently
    never match.
    """
    doc = canonical({"columns": [str(c) for c in columns], "grid": points})
    if _contains_repr_fallback(doc):
        raise ValueError(
            "checkpointing this grid requires checkpoint_key=... "
            "(its points are not canonically serializable)"
        )
    return stable_hash(doc)


def _contains_repr_fallback(doc: object) -> bool:
    if isinstance(doc, dict):
        return "__repr__" in doc or any(_contains_repr_fallback(v) for v in doc.values())
    if isinstance(doc, list):
        return any(_contains_repr_fallback(v) for v in doc)
    return False


def run_sweep(
    columns,
    grid: Iterable | None = None,
    evaluate: Callable[..., dict] | None = None,
    *,
    unpack: bool = True,
    executor: ParallelExecutor | None = None,
    cache=None,
    checkpoint: "SweepCheckpoint | str | bool | None" = None,
    checkpoint_key: str | None = None,
) -> SweepResult:
    """Evaluate a function over a grid of points — or a whole scenario.

    Passing a :class:`~repro.scenario.spec.Scenario` as the first argument
    dispatches to :func:`~repro.scenario.runner.run_scenario`: the
    scenario carries its own grid and evaluator, so ``grid``/``evaluate``
    must be omitted (``cache`` applies only on this path).

    Otherwise ``grid`` yields scalars or tuples; with ``unpack=True`` (the
    default) tuple points are splatted into ``evaluate(*point)``.  Grids
    whose *scalar* points happen to be tuples — e.g. ``(lo, hi)`` bracket
    values — must pass ``unpack=False`` to receive each point as one
    argument; the historical behavior silently splatted them.

    ``executor`` fans the grid points out over a process pool (default:
    the ``REPRO_WORKERS``-configured executor; serial when unset).
    Results are merged in grid order, so a parallel sweep is bit-identical
    to a serial one whenever ``evaluate`` is a pure function of its point
    — which holds for evaluators that build their links/jammers per call
    (shared *stateful* objects mutated across points are outside the
    guarantee).  The sweep's wall-time telemetry is attached as
    ``result.timing``.

    ``checkpoint`` enables crash-safe resume (``None`` defers to
    ``REPRO_CHECKPOINT``, ``False`` forces it off, a string / ``True``
    names the directory): completed points persist incrementally and a
    rerun of the same sweep recomputes only unfinished ones,
    bit-identically.  Records must be JSON-serializable on this path.
    The checkpoint is keyed by a canonical hash of (columns, grid) —
    pass ``checkpoint_key`` to pin it explicitly (required for grids of
    non-plain-data points, and recommended when the evaluator changes
    meaning between runs).
    """
    from repro.scenario.spec import Scenario

    if isinstance(columns, Scenario):
        if grid is not None or evaluate is not None:
            raise ValueError("a Scenario carries its own grid and evaluator")
        if checkpoint_key is not None:
            raise ValueError("a Scenario derives its own checkpoint key")
        from repro.scenario.runner import run_scenario

        return run_scenario(columns, executor=executor, cache=cache, checkpoint=checkpoint)
    if grid is None or evaluate is None:
        raise ValueError("run_sweep requires grid and evaluate (or a Scenario)")
    if cache is not None:
        raise ValueError("cache applies only to Scenario sweeps")
    points = list(grid)
    total = len(points)
    ex = executor if executor is not None else ParallelExecutor.from_env()

    def call(point):
        if unpack and isinstance(point, tuple):
            return evaluate(*point)
        return evaluate(point)

    ckpt: SweepCheckpoint | None = None
    if checkpoint is not False and (
        checkpoint is not None or resolve_checkpoint_dir() is not None
    ):
        key = checkpoint_key if checkpoint_key is not None else _grid_key(columns, points)
        ckpt = make_checkpoint(checkpoint, key, total)
    loaded: dict[int, Any] = {} if ckpt is None else ckpt.load()
    pending = [i for i in range(total) if not isinstance(loaded.get(i), dict)]
    records: list = [loaded[i] if i not in pending else None for i in range(total)]
    seconds = [0.0] * total
    wall = 0.0
    workers = 1
    retries = 0
    if pending:
        on_result: Callable[[int, object], None] | None = None
        if ckpt is not None:
            active = ckpt

            def _persist(local_index: int, value: object) -> None:
                active.record(pending[local_index], value)

            on_result = _persist
        try:
            report = ex.map_timed(call, [points[i] for i in pending], on_result=on_result)
        except BaseException:
            # Keep whatever finished: an interrupted sweep resumes from here.
            if ckpt is not None:
                ckpt.flush()
            raise
        for index, value, secs in zip(pending, report.values, report.seconds):
            records[index] = value
            seconds[index] = secs
        wall = report.wall_seconds
        workers = report.workers
        retries = report.retries
    if ckpt is not None:
        ckpt.complete()
    result = SweepResult(columns=tuple(columns))
    for record in records:
        result.add(**record)
    result.timing = SweepTiming(
        wall_seconds=wall,
        point_seconds=tuple(seconds),
        workers=workers,
        retries=retries,
    )
    return result


def write_csv(result: SweepResult, path: str) -> str:
    """Write a sweep result to CSV; returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(result.columns))
        writer.writeheader()
        writer.writerows(result.rows)
    return path


def env_scale(name: str = "REPRO_SCALE", default: float = 1.0) -> float:
    """Experiment-size multiplier from the environment.

    Benchmarks default to economical sizes (tens of packets per point);
    ``REPRO_SCALE=10`` rescales packet counts toward the paper's 10 000
    packets per point for final-quality numbers.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value
