"""Minimum-SNR threshold search and the power-advantage metric.

Section 6.3 defines the paper's headline metric: *"the power advantage
[is] the ratio of the SNRs to achieve an error performance below 50
percent packet losses without and with filter"* — i.e. how many dB of
transmit power the filtering (or hopping) mechanism saves at the 50 % PER
operating point.  This module finds those thresholds by bisection over the
transmit SNR and forms the advantage in dB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.link import LinkSimulator
from repro.jamming.base import Jammer
from repro.runtime import ParallelExecutor, ResultCache

__all__ = ["min_snr_for_per", "power_advantage_db", "ThresholdSearch"]


@dataclass(frozen=True)
class ThresholdSearch:
    """Parameters of the bisection threshold search.

    Attributes
    ----------
    target_per:
        Packet error rate defining the operating point (paper: 0.5).
    snr_low, snr_high:
        Bisection bracket in dB.  If the link already fails at
        ``snr_high`` the threshold is reported as ``snr_high`` (censored
        above); if it already succeeds at ``snr_low``, as ``snr_low``.
    tolerance_db:
        Stop when the bracket is this narrow.
    packets_per_point:
        Packets simulated per probed SNR.
    """

    target_per: float = 0.5
    snr_low: float = -10.0
    snr_high: float = 40.0
    tolerance_db: float = 0.5
    packets_per_point: int = 30

    def __post_init__(self) -> None:
        if not 0 < self.target_per < 1:
            raise ValueError("target_per must be in (0, 1)")
        if self.snr_low >= self.snr_high:
            raise ValueError("snr_low must be below snr_high")
        if self.tolerance_db <= 0:
            raise ValueError("tolerance_db must be positive")
        if self.packets_per_point < 1:
            raise ValueError("packets_per_point must be >= 1")


def min_snr_for_per(
    link: LinkSimulator,
    sjr_db: float = float("inf"),
    jammer: Jammer | None = None,
    search: ThresholdSearch | None = None,
    seed: int = 0,
    jammer_delay_samples: int = 0,
    jnr_db: float | None = None,
    executor: ParallelExecutor | None = None,
    cache: ResultCache | None = None,
) -> float:
    """Minimum SNR (dB) at which the link's PER drops below the target.

    Two jammer-power conventions are supported:

    * ``jnr_db`` set (the paper's testbed convention): the jammer's
      *absolute* power is fixed at ``jnr_db`` above the noise, and the
      search sweeps the signal power — so at a probed SNR the effective
      SJR is ``snr_db - jnr_db``.  This is what the Figure 13/14 power
      advantage is defined over (attenuators vary the transmit power
      against a fixed jammer).
    * ``sjr_db`` set: the jammer tracks the signal at a fixed power ratio
      regardless of SNR (an interference-limited what-if).

    Bisection assumes PER is monotonically non-increasing in SNR, which
    holds for every receiver in this library (more signal power never
    hurts an AWGN link).  The return value is censored at the bracket
    edges rather than raising, so sweeps over hopeless configurations
    (e.g. a perfectly matched strong jammer) stay well defined.

    The bisection itself is inherently sequential (each probe depends on
    the last verdict), but each probed SNR's packet batch parallelizes:
    ``executor``/``cache`` are passed straight through to
    :meth:`LinkSimulator.run_packets`.
    """
    s = search or ThresholdSearch()

    def per_at(snr_db: float) -> float:
        effective_sjr = snr_db - jnr_db if jnr_db is not None else sjr_db
        stats = link.run_packets(
            s.packets_per_point,
            snr_db=snr_db,
            sjr_db=effective_sjr,
            jammer=jammer,
            seed=seed,
            jammer_delay_samples=jammer_delay_samples,
            executor=executor,
            cache=cache,
        )
        return stats.packet_error_rate

    lo, hi = s.snr_low, s.snr_high
    if per_at(hi) > s.target_per:
        return hi  # censored: even the maximum probed power fails
    if per_at(lo) <= s.target_per:
        return lo  # censored: always passes within the bracket
    while hi - lo > s.tolerance_db:
        mid = 0.5 * (lo + hi)
        if per_at(mid) <= s.target_per:
            hi = mid
        else:
            lo = mid
    return hi


def power_advantage_db(
    baseline_link: LinkSimulator,
    improved_link: LinkSimulator,
    jammer_factory: Callable[[], Jammer | None],
    search: ThresholdSearch | None = None,
    seed: int = 0,
    jnr_db: float | None = None,
    sjr_db: float | None = None,
    baseline_jammer_factory: Callable[[], Jammer | None] | None = None,
    executor: ParallelExecutor | None = None,
    cache: ResultCache | None = None,
) -> tuple[float, float, float]:
    """Power advantage of one link over another at equal jamming.

    Returns ``(advantage_db, baseline_threshold, improved_threshold)``
    where ``advantage_db = baseline_threshold - improved_threshold``: how
    many fewer dB of transmit power the improved link needs for the same
    50 % PER.  Exactly one of ``jnr_db`` (fixed-jammer-power convention —
    the paper's) or ``sjr_db`` must be given.

    ``jammer_factory`` builds a fresh jammer per threshold search so
    stateful jammers (hoppers, reactive) start identically for both
    links; ``baseline_jammer_factory`` overrides the baseline's jammer
    (Section 6.4 jams the fixed-bandwidth baseline with a *matched*
    10 MHz jammer whatever the BHSS-side jammer does).
    """
    if (jnr_db is None) == (sjr_db is None):
        raise ValueError("specify exactly one of jnr_db or sjr_db")
    base_factory = baseline_jammer_factory or jammer_factory
    kwargs = dict(search=search, seed=seed, executor=executor, cache=cache)
    if jnr_db is not None:
        kwargs["jnr_db"] = jnr_db
    else:
        kwargs["sjr_db"] = sjr_db
    t_base = min_snr_for_per(baseline_link, jammer=base_factory(), **kwargs)
    t_improved = min_snr_for_per(improved_link, jammer=jammer_factory(), **kwargs)
    return (t_base - t_improved, t_base, t_improved)
