"""Analysis harness: threshold searches (power advantage) and sweeps."""

from repro.analysis.thresholds import ThresholdSearch, min_snr_for_per, power_advantage_db
from repro.analysis.sweep import SweepResult, env_scale, run_sweep, write_csv
from repro.analysis import experiments

__all__ = [
    "ThresholdSearch",
    "min_snr_for_per",
    "power_advantage_db",
    "SweepResult",
    "run_sweep",
    "write_csv",
    "env_scale",
    "experiments",
]
