"""Programmatic reproduction of every table and figure of the paper.

Each ``figure*`` / ``table*`` / ``ablation*`` / ``ext_*`` function
computes one experiment and returns a tidy
:class:`~repro.analysis.sweep.SweepResult` (or a tuple of them) — the
same rows/series the paper reports.  The benchmark files under
``benchmarks/`` call these functions and assert the paper's qualitative
findings on the results; the ``repro-bhss reproduce`` CLI subcommand and
user code call them directly.

``scale`` multiplies the per-point packet budgets of the signal-level
experiments (default from the ``REPRO_SCALE`` environment variable;
``scale=10`` approaches the paper's 10 000 packets per point).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

import numpy as np

from repro.analysis.sweep import SweepResult, env_scale, run_sweep
from repro.analysis.thresholds import ThresholdSearch, min_snr_for_per
from repro.core import BHSSConfig, ControlLogic, FHSSLink, FHSSLinkConfig, LinkSimulator, theory
from repro.core.receiver import BHSSReceiver
from repro.hopping import (
    PAPER_PARABOLIC_WEIGHTS,
    expected_bandwidth,
    expected_throughput,
    exponential_weights,
    linear_weights,
    maximin_score_db,
    optimize_parabolic_weights,
    paper_bandwidths,
)
from repro.jamming import jammer_from_spec
from repro.phy.fec import get_codec

__all__ = [
    "JNR_DB",
    "default_search",
    "figure07",
    "figure08",
    "figure09",
    "figure10",
    "figure11",
    "table1",
    "figure13",
    "figure14",
    "table2",
    "validation_ber",
    "ablation_dwells",
    "ablation_filters",
    "ablation_fec",
    "ext_fhss_vs_bhss",
    "ext_multipath",
    "ext_network",
    "ext_arena",
    "ext_protocol",
    "REGISTRY",
]

#: The jammer sits this many dB above the noise floor in every measured
#: experiment — a strong jammer, as in the paper's testbed, leaving the
#: thresholds inside the search bracket with headroom for the gains.
JNR_DB = 25.0

FS = 20e6

#: Figure 7/8's jammer powers and noise level (paper's sigma_n^2 = 0.01).
FIG7_JAMMER_POWERS_DB = [10.0, 20.0, 30.0]
FIG7_NOISE_POWER = 0.01

#: Figures 9/10: dense log grid approximating the continuous hop range 100.
FIG9_BANDWIDTHS = np.logspace(0, -2, 33)
FIG9_WEIGHTS = np.full(FIG9_BANDWIDTHS.size, 1.0 / FIG9_BANDWIDTHS.size)
FIG9_FIXED_RATIOS = [1.0, 0.3, 0.1, 0.03, 0.01]
FIG9_SJR_DB = -20.0
FIG9_L_DB = 20.0

#: Figure 11 rate equalization uses the 7-value octave set (see
#: EXPERIMENTS.md: the paper's quoted 25.4 dB pins this down).
FIG11_BANDWIDTHS = 1.0 / 2.0 ** np.arange(7)
FIG11_WEIGHTS = np.full(7, 1.0 / 7.0)
FIG11_PACKET_BITS = 500 * 8

PATTERNS = ["linear", "exponential", "parabolic"]


def _paper_config(**spec) -> BHSSConfig:
    """A paper-default configuration from a declarative field spec.

    Thin wrapper over :meth:`BHSSConfig.from_dict` — the experiments below
    describe their links as plain spec dicts, the same vocabulary scenario
    JSON files use, so every measured figure is reproducible from data.
    """
    return BHSSConfig.from_dict(spec)


def _noise(bandwidth: float, centre: float = 0.0):
    """A band-limited noise jammer from its registry spec."""
    spec = {"type": "noise", "bandwidth": float(bandwidth)}
    if centre:
        spec["centre"] = float(centre)
    return jammer_from_spec(spec, sample_rate=FS)


def default_search(packets: int = 12, tolerance_db: float = 1.0, scale: float | None = None) -> ThresholdSearch:
    """A threshold search sized by ``scale`` (default: ``REPRO_SCALE``)."""
    if scale is None:
        scale = env_scale()
    return ThresholdSearch(
        snr_low=-12.0,
        snr_high=45.0,
        tolerance_db=tolerance_db,
        packets_per_point=max(4, int(round(packets * scale))),
    )


# ---------------------------------------------------------------------------
# analytic figures (Section 5)
# ---------------------------------------------------------------------------

def _bound_record(r) -> dict:
    """One Figure-7/8 grid point: the γ bound at ratio ``r`` per jammer power."""
    gammas = [
        float(theory.improvement_factor_db(1.0, 1.0 / r, p_db, FIG7_NOISE_POWER))
        for p_db in FIG7_JAMMER_POWERS_DB
    ]
    return {
        "bp_over_bj": float(r),
        "gamma_db_10dBm": gammas[0],
        "gamma_db_20dBm": gammas[1],
        "gamma_db_30dBm": gammas[2],
    }


def figure07(num_points: int = 81) -> SweepResult:
    """Figure 7: γ upper bound vs Bp/Bj for 10/20/30 dB jammers."""
    return run_sweep(
        ("bp_over_bj", "gamma_db_10dBm", "gamma_db_20dBm", "gamma_db_30dBm"),
        np.logspace(-2, 2, num_points),
        _bound_record,
    )


def figure08(num_points: int = 61) -> SweepResult:
    """Figure 8: the Figure-7 bound zoomed to Bp/Bj in [0.5, 2]."""
    return run_sweep(
        ("bp_over_bj", "gamma_db_10dBm", "gamma_db_20dBm", "gamma_db_30dBm"),
        np.linspace(0.5, 2.0, num_points),
        _bound_record,
    )


def _fig9_record(e) -> dict:
    """One Figure-9 grid point: all BER curves at Eb/N0 ``e`` dB."""
    record = {
        "ebno_db": float(e),
        "dsss_fhss": float(theory.ber_from_ebno(float(e), FIG9_SJR_DB, FIG9_L_DB, gamma=1.0)),
    }
    for r in FIG9_FIXED_RATIOS:
        record[f"bhss_bj_{r}"] = float(
            theory.bhss_ber(
                float(e), FIG9_SJR_DB, FIG9_L_DB, FIG9_BANDWIDTHS, FIG9_WEIGHTS,
                r * FIG9_BANDWIDTHS.max(),
            )
        )
    record["bhss_bj_random"] = float(
        theory.bhss_ber(
            float(e), FIG9_SJR_DB, FIG9_L_DB, FIG9_BANDWIDTHS, FIG9_WEIGHTS,
            FIG9_BANDWIDTHS, jammer_weights=FIG9_WEIGHTS,
        )
    )
    return record


def figure09(num_points: int = 21) -> SweepResult:
    """Figure 9: BER vs Eb/N0 for DSSS/FHSS and BHSS (SJR −20 dB, L = 20 dB)."""
    columns = (
        ["ebno_db", "dsss_fhss"]
        + [f"bhss_bj_{r}" for r in FIG9_FIXED_RATIOS]
        + ["bhss_bj_random"]
    )
    return run_sweep(tuple(columns), np.linspace(0.0, 20.0, num_points), _fig9_record)


def figure10(num_points: int = 41, ebno_db: float = 15.0) -> SweepResult:
    """Figure 10: BHSS BER vs jammer bandwidth per SJR (−10/−15/−20 dB)."""

    def record(r) -> dict:
        out = {"bj_over_max_bp": float(r)}
        for sjr in [-10.0, -15.0, -20.0]:
            ber = theory.bhss_ber(
                ebno_db, sjr, FIG9_L_DB, FIG9_BANDWIDTHS, FIG9_WEIGHTS, r * FIG9_BANDWIDTHS.max()
            )
            out[f"ber_sjr_{sjr:.0f}dB"] = float(ber)
        return out

    return run_sweep(
        ("bj_over_max_bp", "ber_sjr_-10dB", "ber_sjr_-15dB", "ber_sjr_-20dB"),
        np.logspace(-2, 0, num_points),
        record,
    )


def figure11(num_points: int = 36) -> SweepResult:
    """Figure 11: normalized throughput vs Eb/N0 at equal rate."""
    ebno = np.linspace(-5.0, 30.0, num_points)
    l_dsss = theory.equal_rate_processing_gain_db(FIG9_L_DB, FIG11_BANDWIDTHS, FIG11_WEIGHTS)
    columns = (
        ["ebno_db", "dsss_fhss"]
        + [f"bhss_bj_{r}" for r in FIG9_FIXED_RATIOS]
        + ["bhss_bj_random"]
    )
    dsss_curve = theory.throughput_curve(ebno, FIG9_SJR_DB, FIG11_PACKET_BITS, l_dsss)

    def record(i, e) -> dict:
        out = {"ebno_db": float(e), "dsss_fhss": float(dsss_curve[i])}
        for r in FIG9_FIXED_RATIOS:
            out[f"bhss_bj_{r}"] = float(
                theory.throughput_curve(
                    float(e), FIG9_SJR_DB, FIG11_PACKET_BITS, FIG9_L_DB,
                    bandwidths=FIG11_BANDWIDTHS, hop_weights=FIG11_WEIGHTS,
                    jammer_bandwidths=r * FIG11_BANDWIDTHS.max(),
                )
            )
        out["bhss_bj_random"] = float(
            theory.throughput_curve(
                float(e), FIG9_SJR_DB, FIG11_PACKET_BITS, FIG9_L_DB,
                bandwidths=FIG11_BANDWIDTHS, hop_weights=FIG11_WEIGHTS,
                jammer_bandwidths=FIG11_BANDWIDTHS, jammer_weights=FIG11_WEIGHTS,
            )
        )
        return out

    return run_sweep(tuple(columns), list(enumerate(ebno)), record)


def table1(num_trials: int = 3000, seed: int = 0) -> tuple[SweepResult, SweepResult]:
    """Table 1: the three hop distributions + re-run maximin optimization.

    Returns ``(per_bandwidth_rows, summary_rows)``.
    """
    bws = paper_bandwidths()
    lin = linear_weights(7)
    exp = exponential_weights(bws)
    par_paper = PAPER_PARABOLIC_WEIGHTS
    optimized = optimize_parabolic_weights(bws, num_trials=num_trials, seed=seed)

    result = SweepResult(
        columns=(
            "bandwidth_mhz",
            "linear_pct",
            "exponential_pct",
            "parabolic_paper_pct",
            "parabolic_optimized_pct",
        )
    )
    for i, bw in enumerate(bws):
        result.add(
            bandwidth_mhz=float(bw / 1e6),
            linear_pct=float(100 * lin[i]),
            exponential_pct=float(100 * exp[i]),
            parabolic_paper_pct=float(100 * par_paper[i]),
            parabolic_optimized_pct=float(100 * optimized.weights[i]),
        )
    summary = SweepResult(
        columns=("pattern", "avg_bandwidth_mhz", "throughput_kbps", "maximin_gamma_db")
    )
    for name, w in [
        ("linear", lin),
        ("exponential", exp),
        ("parabolic (paper)", par_paper),
        ("parabolic (re-optimized)", optimized.weights),
    ]:
        summary.add(
            pattern=name,
            avg_bandwidth_mhz=float(expected_bandwidth(bws, w) / 1e6),
            throughput_kbps=float(expected_throughput(bws, w) / 1e3),
            maximin_gamma_db=float(maximin_score_db(w, bws)),
        )
    return result, summary


# ---------------------------------------------------------------------------
# measured experiments (Section 6)
# ---------------------------------------------------------------------------

def figure13(scale: float | None = None, payload_bytes: int = 4, seed: int = 17) -> tuple[SweepResult, SweepResult]:
    """Figure 13: power advantage for the 49 fixed bandwidth constellations.

    Returns ``(per_constellation, mean_by_ratio)``; the baseline is the
    eq.-(5) receiver (see DESIGN.md).
    """
    search = default_search(packets=6, tolerance_db=1.5, scale=scale)
    bandwidths = BHSSConfig.paper_default().bandwidth_set.as_array()

    def evaluate(bp, bj) -> dict:
        cfg = _paper_config(seed=seed, payload_bytes=payload_bytes, fixed_bandwidth=float(bp))
        link_filtered = LinkSimulator(cfg)
        link_baseline = LinkSimulator(cfg.as_theory_baseline())
        jammer = _noise(bj)
        t_filt = min_snr_for_per(link_filtered, jnr_db=JNR_DB, jammer=jammer, search=search, seed=3)
        t_base = min_snr_for_per(link_baseline, jnr_db=JNR_DB, jammer=jammer, search=search, seed=3)
        return {
            "bp_mhz": float(bp / 1e6),
            "bj_mhz": float(bj / 1e6),
            "ratio": float(bp / bj),
            "thr_filtered_db": float(t_filt),
            "thr_unfiltered_db": float(t_base),
            "advantage_db": float(t_base - t_filt),
        }

    per_pair = run_sweep(
        ("bp_mhz", "bj_mhz", "ratio", "thr_filtered_db", "thr_unfiltered_db", "advantage_db"),
        [(float(bp), float(bj)) for bp in bandwidths for bj in bandwidths],
        evaluate,
    )

    groups: dict[float, list[float]] = defaultdict(list)
    for row in per_pair.rows:
        groups[round(np.log2(row["ratio"]), 6)].append(row["advantage_db"])
    by_ratio = SweepResult(columns=("ratio", "advantage_db", "theory_bound_db", "num_constellations"))
    for log_ratio in sorted(groups):
        ratio = 2.0 ** log_ratio
        bound = float(theory.improvement_factor_db(ratio, 1.0, JNR_DB, 1.0))
        by_ratio.add(
            ratio=float(ratio),
            advantage_db=float(np.mean(groups[log_ratio])),
            theory_bound_db=bound,
            num_constellations=len(groups[log_ratio]),
        )
    return per_pair, by_ratio


def figure14(
    scale: float | None = None,
    payload_bytes: int = 8,
    symbols_per_hop: int = 16,
    seed: int = 17,
) -> SweepResult:
    """Figure 14: power advantage per hop pattern vs fixed jammers."""
    search = default_search(packets=8, tolerance_db=1.0, scale=scale)
    base = dict(seed=seed, payload_bytes=payload_bytes, symbols_per_hop=symbols_per_hop)
    bandwidths = _paper_config(**base).bandwidth_set.as_array()
    baseline = LinkSimulator(_paper_config(**base, fixed_bandwidth=10e6))
    t_base = min_snr_for_per(baseline, jnr_db=JNR_DB, jammer=_noise(10e6), search=search, seed=5)

    def evaluate(pattern, bj) -> dict:
        link = LinkSimulator(_paper_config(**base, pattern=pattern))
        t = min_snr_for_per(link, jnr_db=JNR_DB, jammer=_noise(bj), search=search, seed=5)
        return {
            "pattern": pattern,
            "bj_mhz": float(bj / 1e6),
            "threshold_db": float(t),
            "baseline_db": float(t_base),
            "advantage_db": float(t_base - t),
        }

    return run_sweep(
        ("pattern", "bj_mhz", "threshold_db", "baseline_db", "advantage_db"),
        [(pattern, float(bj)) for pattern in PATTERNS for bj in bandwidths],
        evaluate,
    )


def table2(
    scale: float | None = None,
    payload_bytes: int = 8,
    symbols_per_hop: int = 16,
    jammer_dwell_samples: int = 16384,
    seed: int = 23,
) -> SweepResult:
    """Table 2: power advantage matrix, hopping signal x hopping jammer."""
    search = default_search(packets=8, tolerance_db=1.0, scale=scale)
    base = dict(seed=seed, payload_bytes=payload_bytes, symbols_per_hop=symbols_per_hop)
    bandwidths = _paper_config(**base).bandwidth_set.as_array()
    baseline = LinkSimulator(_paper_config(**base, fixed_bandwidth=10e6))
    t_base = min_snr_for_per(baseline, jnr_db=JNR_DB, jammer=_noise(10e6), search=search, seed=7)

    def evaluate(sig, jam) -> dict:
        link = LinkSimulator(_paper_config(**base, pattern=sig))
        jammer = jammer_from_spec(
            {
                "type": "hopping",
                "bandwidths": [float(b) for b in bandwidths],
                "dwell_samples": jammer_dwell_samples,
                "weights": jam,
                "seed": 101,
            },
            sample_rate=FS,
        )
        t = min_snr_for_per(link, jnr_db=JNR_DB, jammer=jammer, search=search, seed=7)
        return {
            "signal_pattern": sig,
            "jammer_pattern": jam,
            "threshold_db": float(t),
            "advantage_db": float(t_base - t),
        }

    return run_sweep(
        ("signal_pattern", "jammer_pattern", "threshold_db", "advantage_db"),
        [(sig, jam) for sig in PATTERNS for jam in PATTERNS],
        evaluate,
    )


def validation_ber(scale: float | None = None, payload_bytes: int = 16, seed: int = 61) -> tuple[SweepResult, SweepResult]:
    """Validation: simulator vs eq.-(7) (waterfall + matched-jamming ≡ noise)."""
    if scale is None:
        scale = env_scale()
    packets = max(6, int(round(12 * scale)))
    cfg = _paper_config(seed=seed, payload_bytes=payload_bytes, fixed_bandwidth=10e6)
    link = LinkSimulator(cfg)

    def ber(snr_db, sjr_db=float("inf"), jammer=None, run_seed=0):
        return float(
            link.run_packets(packets, snr_db=snr_db, sjr_db=sjr_db, jammer=jammer, seed=run_seed).bit_error_rate
        )

    waterfall = SweepResult(columns=("snr_db", "ber"))
    for snr in [-18.0, -15.0, -12.0, -9.0, -6.0]:
        waterfall.add(snr_db=snr, ber=ber(snr, run_seed=1))

    jam = _noise(10e6)
    matched = SweepResult(columns=("sjr_db", "ber_jammed", "ber_unjammed_at_sjr_plus_gain"))
    for sjr in [-16.0, -13.0, -10.0]:
        matched.add(
            sjr_db=sjr,
            ber_jammed=ber(30.0, sjr_db=sjr, jammer=jam, run_seed=2),
            # full-band noise vs 10 MHz in-band jammer: 3 dB occupancy term
            ber_unjammed_at_sjr_plus_gain=ber(sjr - 3.0, run_seed=3),
        )
    return waterfall, matched


# ---------------------------------------------------------------------------
# ablations and extensions (ours)
# ---------------------------------------------------------------------------

def ablation_dwells(
    scale: float | None = None,
    payload_bytes: int = 8,
    jammer_bandwidth: float = 2.5e6,
    seed: int = 29,
) -> SweepResult:
    """Ablation: power advantage vs hop-dwell count per packet."""
    search = default_search(packets=8, tolerance_db=1.0, scale=scale)
    baseline = LinkSimulator(
        _paper_config(seed=seed, payload_bytes=payload_bytes, fixed_bandwidth=10e6)
    )
    t_base = min_snr_for_per(baseline, jnr_db=JNR_DB, jammer=_noise(10e6), search=search, seed=9)

    def evaluate(sph) -> dict:
        cfg = _paper_config(
            pattern="exponential", seed=seed, payload_bytes=payload_bytes, symbols_per_hop=sph
        )
        link = LinkSimulator(cfg)
        t = min_snr_for_per(
            link, jnr_db=JNR_DB, jammer=_noise(jammer_bandwidth), search=search, seed=9
        )
        return {
            "symbols_per_hop": sph,
            "dwells_per_packet": int(-(-cfg.frame_symbols() // sph)),
            "threshold_db": float(t),
            "advantage_db": float(t_base - t),
        }

    return run_sweep(
        ("symbols_per_hop", "dwells_per_packet", "threshold_db", "advantage_db"),
        [4, 8, 16, 32],
        evaluate,
    )


def ablation_filters(scale: float | None = None, payload_bytes: int = 4, seed: int = 37) -> SweepResult:
    """Ablation: per-filter decomposition (full / lpf-only / ef-only / none)."""
    search = default_search(packets=8, tolerance_db=1.0, scale=scale)

    def make_link(bp: float, variant: str) -> LinkSimulator:
        cfg = _paper_config(seed=seed, payload_bytes=payload_bytes, fixed_bandwidth=float(bp))
        if variant == "none":
            return LinkSimulator(cfg.without_filtering())
        kwargs = dict(sample_rate=cfg.sample_rate, pulse=cfg.pulse)
        if variant == "lpf-only":
            kwargs["peak_margin_db"] = 500.0
        elif variant == "ef-only":
            kwargs["wide_ratio"] = 1e6
        link = LinkSimulator(cfg)
        link.receiver = BHSSReceiver(cfg, control=ControlLogic(**kwargs))
        return link

    scenarios = [("narrow jammer", 10e6, 0.625e6), ("wide jammer", 0.625e6, 10e6)]
    result = SweepResult(columns=("scenario", "variant", "threshold_db"))
    for label, bp, bj in scenarios:
        for variant in ["full", "lpf-only", "ef-only", "none"]:
            t = min_snr_for_per(
                make_link(bp, variant), jnr_db=JNR_DB,
                jammer=_noise(bj), search=search, seed=11,
            )
            result.add(scenario=label, variant=variant, threshold_db=float(t))
    return result


def ablation_fec(
    scale: float | None = None,
    payload_bytes: int = 8,
    jammer_bandwidth: float = 2.5e6,
    seed: int = 41,
) -> SweepResult:
    """Ablation: FEC + cross-dwell interleaving vs uncoded."""
    search = default_search(packets=8, tolerance_db=1.0, scale=scale)
    result = SweepResult(
        columns=("fec", "code_rate", "air_symbols", "threshold_db", "coding_gain_db")
    )
    thresholds: dict[str, float] = {}
    for fec in ["none", "hamming74", "hamming1511", "rep3", "rep5"]:
        cfg = _paper_config(
            pattern="linear", seed=seed, payload_bytes=payload_bytes, symbols_per_hop=4, fec=fec
        )
        t = min_snr_for_per(
            LinkSimulator(cfg), jnr_db=JNR_DB,
            jammer=_noise(jammer_bandwidth), search=search, seed=13,
        )
        thresholds[fec] = t
        result.add(
            fec=fec,
            code_rate=float(get_codec(fec).rate),
            air_symbols=int(cfg.air_symbols()),
            threshold_db=float(t),
            coding_gain_db=float(thresholds["none"] - t),
        )
    return result


def ext_fhss_vs_bhss(scale: float | None = None, payload_bytes: int = 8, seed: int = 67) -> SweepResult:
    """Extension: empirical FHSS baseline vs BHSS at equal spectrum."""
    search = default_search(packets=8, tolerance_db=1.0, scale=scale)
    fhss = FHSSLink(FHSSLinkConfig(payload_bytes=payload_bytes, seed=seed, symbols_per_hop=4))
    bhss = LinkSimulator(
        _paper_config(
            pattern="parabolic", seed=seed, payload_bytes=payload_bytes, symbols_per_hop=16
        )
    )

    def fhss_min_snr(jammer) -> float:
        def per_at(snr_db):
            per, _ = fhss.run_packets(
                search.packets_per_point, snr_db=snr_db, sjr_db=snr_db - JNR_DB,
                jammer=jammer, seed=15,
            )
            return per

        lo, hi = search.snr_low, search.snr_high
        if per_at(hi) > search.target_per:
            return hi
        if per_at(lo) <= search.target_per:
            return lo
        while hi - lo > search.tolerance_db:
            mid = 0.5 * (lo + hi)
            if per_at(mid) <= search.target_per:
                hi = mid
            else:
                lo = mid
        return hi

    scenarios = [
        ("full-band 10 MHz", _noise(10e6)),
        ("partial-band 1.25 MHz", _noise(1.25e6, centre=2.5e6)),
        ("narrow 0.156 MHz", _noise(0.15625e6, centre=-1e6)),
    ]
    result = SweepResult(
        columns=("jammer", "fhss_threshold_db", "bhss_threshold_db", "bhss_advantage_db")
    )
    for label, jammer in scenarios:
        t_fhss = fhss_min_snr(jammer)
        t_bhss = min_snr_for_per(bhss, jnr_db=JNR_DB, jammer=jammer, search=search, seed=15)
        result.add(
            jammer=label,
            fhss_threshold_db=float(t_fhss),
            bhss_threshold_db=float(t_bhss),
            bhss_advantage_db=float(t_fhss - t_bhss),
        )
    return result


def ext_multipath(scale: float | None = None, payload_bytes: int = 8, seed: int = 97) -> SweepResult:
    """Extension: PER per hop bandwidth over multipath, ± MMSE equalizer."""
    from repro.channel import channel_from_spec
    from repro.core import BHSSTransmitter
    from repro.sync import equalize, estimate_channel, mmse_equalizer_taps

    if scale is None:
        scale = env_scale()
    packets = max(4, int(round(6 * scale)))
    # A pure-Rayleigh (no line of sight) 16-tap channel: ~1.25 MHz
    # coherence bandwidth, deep frequency selectivity for the wide hops.
    channel_taps = 16

    def run(bandwidth: float, equalized: bool) -> float:
        cfg = _paper_config(seed=seed, payload_bytes=payload_bytes, fixed_bandwidth=float(bandwidth))
        tx, rx = BHSSTransmitter(cfg), BHSSReceiver(cfg)
        channel = channel_from_spec(
            {"type": "multipath", "num_taps": channel_taps, "decay_samples": 5.3,
             "seed": 3, "line_of_sight": 0.0}
        )
        failures = 0
        for k in range(packets):
            packet = tx.transmit(packet_index=k)
            faded = channel.apply(packet.waveform)
            train = min(2048, packet.num_samples // 2)
            if equalized:
                h_est = estimate_channel(faded[:train], packet.waveform[:train], num_taps=channel_taps + 2)
                w = mmse_equalizer_taps(h_est, num_taps=256, noise_power=1e-3)
                faded = equalize(faded, w)
            else:
                phase = np.angle(np.vdot(packet.waveform[:train], faded[:train]))
                faded = faded * np.exp(-1j * phase)
            result = rx.receive(faded, packet_index=k, phase_track=True)
            failures += int(not (result.accepted and result.payload == packet.payload))
        return failures / packets

    result = SweepResult(columns=("bandwidth_mhz", "per_plain", "per_equalized"))
    for bw in [10e6, 5e6, 2.5e6, 1.25e6, 0.625e6, 0.3125e6]:
        result.add(
            bandwidth_mhz=float(bw / 1e6),
            per_plain=float(run(bw, False)),
            per_equalized=float(run(bw, True)),
        )
    return result


def ext_network(
    scale: float | None = None,
    num_links: int = 6,
    payload_bytes: int = 2,
    seed: int = 211,
) -> SweepResult:
    """Extension: network throughput and Jain fairness vs jammer count.

    ``num_links`` BHSS links share one spectrum with nearest-neighbour
    chain coupling at -20 dB; every link carries a personal jammer
    (alternating tone/noise, distinct parameters), and the sweep
    activates them 0..N at a time (:func:`jammer_count_sweep`), so the
    rows trace how aggregate goodput and Jain fairness degrade as the
    jammer population grows.
    """
    from repro.network import LinkSpec, NetworkSpec, jammer_count_sweep

    if scale is None:
        scale = env_scale()
    packets = max(2, int(round(4 * scale)))
    links = []
    for i in range(num_links):
        if i % 2 == 0:
            jammer = {"type": "tone", "frequency": float(150e3 * (i + 1))}
            sjr_db = -6.0
        else:
            jammer = {"type": "noise", "bandwidth": float(312.5e3 * (i + 1))}
            sjr_db = -8.0
        links.append(
            LinkSpec(
                name=f"n{i}",
                config=_paper_config(
                    pattern=PATTERNS[i % len(PATTERNS)],
                    seed=seed + i,
                    payload_bytes=payload_bytes,
                ),
                seed=1000 + i,
                snr_db=15.0,
                sjr_db=sjr_db,
                jammer=jammer,
            )
        )
    coupling = tuple(
        tuple(-20.0 if abs(i - j) == 1 else None for j in range(num_links))
        for i in range(num_links)
    )
    spec = NetworkSpec(
        name=f"ext-network-{num_links}",
        links=tuple(links),
        coupling_db=coupling,
        packets=packets,
        description="chain-coupled network behind the fairness-vs-jammer-count figure",
    )
    return jammer_count_sweep(spec)


def ext_arena(
    scale: float | None = None,
    payload_bytes: int = 2,
    seed: int = 223,
) -> SweepResult:
    """Extension: adversary-zoo tournament — the resilience matrix.

    Pits the adaptive jammer strategies (latent reactive, repeater,
    optimal multitone, learning follower) plus the unjammed baseline
    against a static-band link (hop range 1) and full seven-bandwidth
    randomized hopping, for two hop patterns, all at one common
    (SNR, SJR) operating point.  The rows are the tournament's
    resilience matrix; the ``jammer-advantage`` summary (mean PER
    degradation vs baseline) is in ``TournamentResult.aggregates()``
    when run through :func:`repro.arena.run_tournament` directly.
    """
    from repro.arena import ArenaSpec, run_tournament

    if scale is None:
        scale = env_scale()
    packets = max(2, int(round(6 * scale)))
    spec = ArenaSpec(
        name="ext-arena",
        config=_paper_config(seed=seed, payload_bytes=payload_bytes),
        jammers=(
            ("none", {"type": "none"}),
            ("latent", {"type": "latent-reactive", "bandwidth": 10e6,
                        "turnaround_samples": 2048}),
            ("repeater", {"type": "repeater", "delay_samples": 64, "num_taps": 3}),
            ("multitone", {"type": "multitone", "placement_bandwidth": 0.15625e6,
                           "num_tones": 4}),
            ("follower", {"type": "follower", "initial_bandwidth": 10e6}),
        ),
        patterns=("linear", "parabolic"),
        hop_ranges=(1, 7),
        snr_db=15.0,
        sjr_db=-10.0,
        packets=packets,
        seed=seed,
        description="adversary zoo vs static-band and randomized hopping",
    )
    return run_tournament(spec).to_sweep_result()


def ext_protocol(
    scale: float | None = None,
    payload_bytes: int = 16,
    seed: int = 251,
) -> SweepResult:
    """Extension: session layer vs a learning follower — delivery and re-sync.

    Runs the seed-synchronized session of :mod:`repro.protocol` against
    the learning follower jammer in two modes at each SJR: ``static``
    (hopping disabled, pinned to the widest band — the band the follower
    converges on) and ``hopping`` (randomized parabolic bandwidth
    hopping with per-epoch seed rotation).  Rows carry the session-level
    outcomes — message-delivery ratio, goodput, data-plane PER,
    desync/re-sync counts and mean re-sync latency — and the headline
    result is that randomized hopping sustains a strictly higher
    delivery ratio than the static band at equal SJR, because the
    follower's bandwidth estimate keeps chasing the rotating schedule
    instead of parking on it.
    """
    from repro.protocol import MessageTrafficSpec, SessionSpec, run_session

    if scale is None:
        scale = env_scale()
    num_messages = max(1, int(round(2 * scale)))
    # Slow hopping (one dwell spans the whole frame): each packet rides a
    # single band, so the follower's lagging bandwidth estimate misses
    # most hopped packets while it stays locked onto a static band — the
    # regime where randomized hopping's delivery advantage is starkest.
    config = _paper_config(seed=seed, payload_bytes=payload_bytes, symbols_per_hop=16)
    widest = float(np.max(config.bandwidth_set.as_array()))
    traffic = MessageTrafficSpec(num_messages=num_messages, message_bytes=24, seed=seed + 1)
    modes = (
        ("static", config.with_fixed_bandwidth(widest)),
        ("hopping", config),
    )
    combined = SweepResult(columns=("mode", "snr_db", "sjr_db", "delivery_ratio",
                                    "goodput_bps", "data_per", "desync_count",
                                    "resync_count", "mean_resync_latency", "degraded"))
    for mode, mode_config in modes:
        spec = SessionSpec(
            name=f"ext-protocol-{mode}",
            config=mode_config,
            traffic=traffic,
            jammer={"type": "follower", "initial_bandwidth": 10e6},
            snr_db=(15.0,),
            sjr_db=(-4.0, -8.0),
            seed=seed,
            packets_per_epoch=6,
            resync_retries=3,
            sync_timeout=4,
            max_slots=96,
            description="session delivery under a learning follower",
        )
        result = run_session(spec)
        for row in result.rows:
            combined.add(
                mode=mode,
                snr_db=row["snr_db"],
                sjr_db=row["sjr_db"],
                delivery_ratio=row["delivery_ratio"],
                goodput_bps=row["goodput_bps"],
                data_per=row["data_per"],
                desync_count=row["desync_count"],
                resync_count=row["resync_count"],
                mean_resync_latency=row["mean_resync_latency"],
                degraded=row["degraded"],
            )
    return combined


#: experiment name -> (callable, one-line description)
REGISTRY: dict[str, tuple[Callable, str]] = {
    "fig07": (figure07, "SNR improvement bound vs Bp/Bj (Figure 7)"),
    "fig08": (figure08, "bound zoom on ratios [0.5, 2] (Figure 8)"),
    "fig09": (figure09, "BER vs Eb/N0, BHSS vs DSSS/FHSS (Figure 9)"),
    "fig10": (figure10, "BER vs jammer bandwidth per SJR (Figure 10)"),
    "fig11": (figure11, "normalized throughput vs Eb/N0 (Figure 11)"),
    "tab1": (table1, "hop distributions + maximin optimization (Table 1)"),
    "fig13": (figure13, "power advantage, 49 fixed constellations (Figure 13)"),
    "fig14": (figure14, "power advantage per hop pattern (Figure 14)"),
    "tab2": (table2, "hopping signal x hopping jammer matrix (Table 2)"),
    "validation": (validation_ber, "simulator vs eq.-(7) cross-check"),
    "ablation-dwells": (ablation_dwells, "power advantage vs dwells per packet"),
    "ablation-filters": (ablation_filters, "per-filter decomposition"),
    "ablation-fec": (ablation_fec, "FEC + interleaving vs uncoded"),
    "ext-fhss": (ext_fhss_vs_bhss, "empirical FHSS baseline vs BHSS"),
    "ext-multipath": (ext_multipath, "multipath PER per bandwidth, +/- equalizer"),
    "ext-network": (ext_network, "network throughput + Jain fairness vs jammer count"),
    "ext-arena": (ext_arena, "adversary-zoo tournament: resilience matrix + jammer advantage"),
    "ext-protocol": (ext_protocol, "session delivery/goodput/re-sync vs a learning follower"),
}
