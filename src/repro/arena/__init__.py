"""Adaptive arena: jammer-strategy x hop-pattern x hop-range tournaments.

:class:`ArenaSpec` declares the grid as plain JSON data;
:func:`run_tournament` sweeps it over the fault-tolerant parallel runtime
(spec-hash caching, checkpoint/resume, bit-identical serial vs pool) and
returns the resilience matrix plus the jammer-advantage summary.
"""

from repro.arena.runner import (
    TOURNAMENT_COLUMNS,
    TournamentResult,
    evaluate_arena_cell,
    run_tournament,
)
from repro.arena.spec import NO_JAMMER, ArenaError, ArenaSpec

__all__ = [
    "ArenaError",
    "ArenaSpec",
    "NO_JAMMER",
    "TOURNAMENT_COLUMNS",
    "TournamentResult",
    "evaluate_arena_cell",
    "run_tournament",
]
