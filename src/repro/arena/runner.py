"""Tournament execution over the fault-tolerant parallel runtime.

:func:`run_tournament` fans an :class:`ArenaSpec`'s cells out over the
:class:`~repro.runtime.executor.ParallelExecutor` through the same spec
transport, cache, and checkpoint machinery as scenario and network runs:
workers receive only the arena's ``to_dict()`` payload plus cell
indices, rebuild link and jammer from the spec, memoize each cell under
a content hash of its exact configuration, and checkpoint completed
cells incrementally so an interrupted tournament resumes bit-identically.

The output is a **resilience matrix** — BER / PER / throughput per
(jammer, pattern, hop range) cell — plus the ``jammer-advantage``
summary: per jammer strategy, the mean PER degradation it inflicts
relative to the unjammed baseline column at the same grid coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.arena.spec import ArenaError, ArenaSpec
from repro.core.link import LinkSimulator, LinkStats
from repro.runtime import (
    ParallelExecutor,
    ResultCache,
    SweepTiming,
    make_checkpoint,
    resolve_batch,
    stable_hash,
)

if TYPE_CHECKING:
    from repro.analysis.sweep import SweepResult

__all__ = [
    "TOURNAMENT_COLUMNS",
    "TournamentResult",
    "evaluate_arena_cell",
    "run_tournament",
]

#: column order of a per-cell tournament result table.
TOURNAMENT_COLUMNS = (
    "jammer", "pattern", "num_bands", "hop_range",
    "per", "per_lo", "per_hi", "ber", "throughput_bps",
)


def _cache_token(cache: "ResultCache | str | bool | None") -> "str | bool | None":
    """Flatten a cache argument to picklable data for the spec payload."""
    if cache is None or cache is False:
        return cache
    if isinstance(cache, ResultCache):
        return cache.root
    return str(cache)


def _cell_record(
    label: str, pattern: str, num_bands: int, hop_range: float, stats: LinkStats
) -> dict:
    per_lo, per_hi = stats.per_confidence_interval()
    return {
        "jammer": label,
        "pattern": pattern,
        "num_bands": int(num_bands),
        "hop_range": float(hop_range),
        "per": stats.packet_error_rate,
        "per_lo": per_lo,
        "per_hi": per_hi,
        "ber": stats.bit_error_rate,
        "throughput_bps": stats.throughput_bps,
        # The raw counters, so callers (and the equivalence wall) can
        # reconstruct the exact LinkStats from a record or cache entry.
        "stats": {
            "num_packets": stats.num_packets,
            "num_accepted": stats.num_accepted,
            "total_bits": stats.total_bits,
            "bit_errors": stats.bit_errors,
            "data_rate_bps": stats.data_rate_bps,
            "filter_usage": dict(stats.filter_usage),
        },
    }


def evaluate_arena_cell(payload: dict, index: int) -> dict:
    """Evaluate one cell of a tournament grid.

    The module-level runner of the spec transport: ``payload`` is plain
    data — ``{"arena": ArenaSpec.to_dict(), "cache": None | False |
    <root path>}`` — and link + jammer are rebuilt from it, so the call
    is a pure function of its arguments with no fork-inherited state.
    The memo key is the *content* of the cell (derived config, jammer
    spec, operating point), not its grid position, so duplicate cells —
    e.g. the static-band column repeated across patterns — hit the same
    entry.
    """
    spec = ArenaSpec.from_dict(payload["arena"])
    token = payload.get("cache")
    if token is None:
        store = ResultCache.from_env()
    elif token is False:
        store = None
    elif isinstance(token, str):
        store = ResultCache(token)
    else:
        store = token
    config, jammer, label, pattern, num_bands = spec.build_cell(int(index))
    key = None
    if store is not None:
        key = {
            "kind": "arena.cell",
            "config": config.to_dict(),
            "jammer": jammer.spec(),
            "snr_db": float(spec.snr_db),
            "sjr_db": float(spec.sjr_db),
            "packets": int(spec.packets),
            "seed": int(spec.seed),
        }
        hit = store.get(key)
        if hit is not None:
            record = dict(hit)
            # Grid coordinates are not part of the content key: restamp
            # them so a cache hit from a sibling cell reports its own.
            record.update({"jammer": label, "pattern": pattern, "num_bands": int(num_bands)})
            return record
    link = LinkSimulator(config)
    stats = link.run_packets_batched(
        spec.packets,
        snr_db=spec.snr_db,
        sjr_db=spec.sjr_db,
        jammer=jammer,
        seed=spec.seed,
        cache=False,  # the cell-level memo above is the single cache layer
    )
    record = _cell_record(label, pattern, num_bands, config.bandwidth_set.hop_range, stats)
    if key is not None and store is not None:
        store.put(key, record)
    return record


@dataclass
class TournamentResult:
    """Per-cell records plus the tournament-level summaries.

    ``records`` holds one :func:`evaluate_arena_cell` record per cell in
    :meth:`ArenaSpec.cells` order; ``timing`` carries the fan-out
    telemetry (it does not participate in equality).
    """

    spec: ArenaSpec
    records: list[dict] = field(default_factory=list)
    timing: SweepTiming | None = field(default=None, repr=False, compare=False)

    def cell_stats(self, jammer: str, pattern: str, num_bands: int) -> LinkStats:
        """Reconstruct the exact :class:`LinkStats` of one cell."""
        for record in self.records:
            if (
                record["jammer"] == jammer
                and record["pattern"] == pattern
                and record["num_bands"] == num_bands
            ):
                return LinkStats(**record["stats"])
        raise KeyError(f"no cell ({jammer!r}, {pattern!r}, {num_bands}) in this result")

    def resilience_matrix(self, metric: str = "ber") -> dict[tuple[str, str, int], float]:
        """``(jammer, pattern, num_bands) -> metric`` over the whole grid."""
        if metric not in ("per", "ber", "throughput_bps"):
            raise ValueError(f"metric must be per/ber/throughput_bps, got {metric!r}")
        return {
            (r["jammer"], r["pattern"], r["num_bands"]): float(r[metric])
            for r in self.records
        }

    def jammer_advantage(self, metric: str = "per") -> dict[str, float]:
        """Mean per-cell degradation each jammer inflicts vs the baseline.

        For every non-baseline jammer label, averages ``metric(jammed
        cell) - metric(baseline cell)`` over the (pattern, hop range)
        grid — the attacker's advantage in PER (or BER) points at equal
        SJR.  Requires a ``{"type": "none"}`` jammer in the spec as the
        baseline column.
        """
        baseline = self.spec.baseline_label
        if baseline is None:
            raise ArenaError(
                "jammer advantage needs an unjammed baseline: add a "
                '{"type": "none"} entry to the arena\'s jammers'
            )
        matrix = self.resilience_matrix(metric)
        out: dict[str, float] = {}
        coords = [(p, k) for p in self.spec.patterns for k in self.spec.hop_ranges]
        for label in self.spec.jammer_labels:
            if label == baseline:
                continue
            deltas = [
                matrix[(label, p, k)] - matrix[(baseline, p, k)] for p, k in coords
            ]
            out[label] = float(sum(deltas) / len(deltas))
        return out

    def aggregates(self) -> dict:
        """The tournament-level summary row."""
        n = len(self.records)
        return {
            "num_cells": n,
            "mean_per": float(sum(r["per"] for r in self.records)) / n,
            "mean_ber": float(sum(r["ber"] for r in self.records)) / n,
            "jammer_advantage": (
                self.jammer_advantage() if self.spec.baseline_label is not None else {}
            ),
        }

    def to_sweep_result(self) -> "SweepResult":
        """The per-cell resilience matrix as a tidy :class:`SweepResult`."""
        from repro.analysis.sweep import SweepResult

        out = SweepResult(columns=TOURNAMENT_COLUMNS)
        for record in self.records:
            out.add(**{c: record[c] for c in TOURNAMENT_COLUMNS})
        out.timing = self.timing
        return out


def run_tournament(
    spec: ArenaSpec,
    *,
    executor: ParallelExecutor | None = None,
    cache: "ResultCache | str | bool | None" = None,
    checkpoint: "str | bool | None" = None,
) -> TournamentResult:
    """Evaluate every cell of a tournament into a :class:`TournamentResult`.

    ``executor`` defaults to the ``REPRO_WORKERS``-configured pool
    (serial when unset); cells are merged in grid order either way, and a
    parallel run is bit-identical to a serial one.  ``cache`` and
    ``checkpoint`` follow the :func:`repro.scenario.runner.run_scenario`
    conventions (``REPRO_CACHE`` / ``REPRO_CHECKPOINT`` when ``None``,
    ``False`` forces off); completed cells are persisted incrementally
    under the arena's canonical spec hash, so a rerun of the *same*
    tournament recomputes only unfinished cells.
    """
    ex = executor if executor is not None else ParallelExecutor.from_env()
    spec_dict = spec.to_dict()
    payload = {"arena": spec_dict, "cache": _cache_token(cache)}
    total = spec.num_cells
    ckpt = make_checkpoint(checkpoint, stable_hash({"arena": spec_dict}), total)
    loaded: dict[int, Any] = {} if ckpt is None else ckpt.load()
    pending = [i for i in range(total) if not isinstance(loaded.get(i), dict)]
    records: list[dict | None] = [loaded[i] if i not in pending else None for i in range(total)]
    seconds = [0.0] * total
    wall = 0.0
    workers = 1
    retries = 0
    if pending:
        on_result: Callable[[int, object], None] | None = None
        if ckpt is not None:
            active = ckpt

            def _persist(local_index: int, value: object) -> None:
                active.record(pending[local_index], value)

            on_result = _persist
        try:
            report = ex.map_spec(
                evaluate_arena_cell,
                payload,
                pending,
                on_result=on_result,
            )
        except BaseException:
            # Keep whatever finished: an interrupted run resumes from here.
            if ckpt is not None:
                ckpt.flush()
            raise
        for index, value, secs in zip(pending, report.values, report.seconds):
            records[index] = value
            seconds[index] = secs
        wall = report.wall_seconds
        workers = report.workers
        retries = report.retries
    if ckpt is not None:
        ckpt.complete()
    final: list[dict] = []
    for record in records:
        assert record is not None  # every index is either loaded or pending
        final.append(record)
    timing = SweepTiming(
        wall_seconds=wall,
        point_seconds=tuple(seconds),
        workers=workers,
        packets=spec.packets * total,
        batch_size=resolve_batch(),
        retries=retries,
    )
    return TournamentResult(spec=spec, records=final, timing=timing)
